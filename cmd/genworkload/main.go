// Command genworkload generates one of the paper's three workload
// classes and writes it as a Standard Workload Format (SWF) file.
//
// Usage:
//
//	genworkload -kind ctc -jobs 79164 -out ctc.swf
//	genworkload -kind prob -jobs 50000 -out prob.swf
//	genworkload -kind random -jobs 50000 -out random.swf
package main

import (
	"flag"
	"fmt"
	"os"

	"jobsched/internal/job"
	"jobsched/internal/trace"
	"jobsched/internal/workload"
)

func main() {
	var (
		kind = flag.String("kind", "ctc", "workload kind: ctc, prob, random")
		n    = flag.Int("jobs", 0, "number of jobs (0 = paper scale)")
		out  = flag.String("out", "", "output file (default stdout)")
		seed = flag.Int64("seed", 1, "generation seed")
	)
	flag.Parse()
	if err := run(*kind, *n, *out, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "genworkload:", err)
		os.Exit(1)
	}
}

func run(kind string, n int, out string, seed int64) error {
	var (
		jobs   []*job.Job
		header trace.Header
		err    error
	)
	switch kind {
	case "ctc":
		cfg := workload.DefaultCTCConfig()
		if n > 0 {
			cfg.SpanSeconds = cfg.SpanSeconds * int64(n) / int64(cfg.Jobs)
			cfg.Jobs = n
		}
		cfg.Seed = seed
		jobs = workload.CTC(cfg)
		header = trace.Header{
			Computer: "synthetic CTC SP2 model",
			MaxNodes: cfg.MachineNodes,
			Note:     "calibrated substitute for the CTC trace (DESIGN.md section 3)",
		}
	case "prob":
		if n == 0 {
			n = workload.ProbabilisticJobs
		}
		cfg := workload.DefaultCTCConfig()
		cfg.SpanSeconds = cfg.SpanSeconds * int64(n) / int64(cfg.Jobs)
		cfg.Jobs = n
		cfg.Seed = seed
		src := workload.CTC(cfg)
		jobs, err = workload.Probabilistic(src, n, seed+1)
		if err != nil {
			return err
		}
		header = trace.Header{
			Computer: "probability-distributed model",
			MaxNodes: job.MaxNodes(jobs),
			Note:     "Weibull submission + binned node/time distributions (paper section 6.2)",
		}
	case "random":
		cfg := workload.DefaultRandomizedConfig()
		if n > 0 {
			cfg.Jobs = n
		}
		cfg.Seed = seed
		jobs = workload.Randomized(cfg)
		header = trace.Header{
			Computer: "randomized model",
			MaxNodes: cfg.MaxNodes,
			Note:     "uniform parameters per paper table 2",
		}
	default:
		return fmt.Errorf("unknown kind %q", kind)
	}

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := trace.Write(w, header, jobs); err != nil {
		return err
	}
	s := trace.Summarize(jobs)
	fmt.Fprintf(os.Stderr, "genworkload: %d jobs, span %d s, mean nodes %.1f, mean runtime %.0f s, overestimation %.1fx\n",
		s.Jobs, s.SpanSeconds, s.MeanNodes, s.MeanRuntime, s.OverestFactor)
	return nil
}
