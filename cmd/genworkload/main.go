// Command genworkload generates one of the paper's three workload
// classes and writes it as a Standard Workload Format (SWF) file.
//
// Usage:
//
//	genworkload -kind ctc -jobs 79164 -out ctc.swf
//	genworkload -kind prob -jobs 50000 -out prob.swf
//	genworkload -kind random -jobs 50000 -out random.swf
//	genworkload -kind stream -jobs 10000000 -load 0.7 -out huge.swf
//
// The stream kind writes the calibrated randomized workload one record
// at a time under constant memory — arbitrarily large traces for the
// streaming simulation path (simulate -stream).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"jobsched/internal/job"
	"jobsched/internal/trace"
	"jobsched/internal/workload"
)

func main() {
	var (
		kind  = flag.String("kind", "ctc", "workload kind: ctc, prob, random, stream")
		n     = flag.Int("jobs", 0, "number of jobs (0 = paper scale)")
		out   = flag.String("out", "", "output file (default stdout)")
		seed  = flag.Int64("seed", 1, "generation seed")
		nodes = flag.Int("nodes", 256, "machine size for load calibration (kind=stream)")
		load  = flag.Float64("load", 0.7, "target offered load (kind=stream)")
	)
	flag.Parse()
	var err error
	if *kind == "stream" {
		err = runStream(*n, *nodes, *load, *out, *seed)
	} else {
		err = run(*kind, *n, *out, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "genworkload:", err)
		os.Exit(1)
	}
}

// runStream generates and writes jobs one at a time: memory stays flat
// no matter how many records are requested.
func runStream(n, nodes int, load float64, out string, seed int64) error {
	if n <= 0 {
		return fmt.Errorf("stream kind needs -jobs")
	}
	s, err := workload.NewStreamer(workload.CalibratedStreamConfig(n, nodes, load, seed))
	if err != nil {
		return err
	}
	f := os.Stdout
	if out != "" {
		f, err = os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
	}
	w, err := trace.NewWriter(f, trace.Header{
		Computer: "randomized model (streaming)",
		MaxNodes: nodes,
		Note:     fmt.Sprintf("calibrated to offered load %.2f on %d nodes", load, nodes),
	})
	if err != nil {
		return err
	}
	var span int64
	for {
		j, err := s.Next()
		if err != nil {
			return err
		}
		if j == nil {
			break
		}
		span = j.Submit
		if err := w.WriteJob(j); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if out != "" {
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "genworkload: %d jobs streamed, span %d s, target load %.2f on %d nodes\n",
		w.Jobs(), span, load, nodes)
	return nil
}

func run(kind string, n int, out string, seed int64) error {
	var (
		jobs   []*job.Job
		header trace.Header
		err    error
	)
	switch kind {
	case "ctc":
		cfg := workload.DefaultCTCConfig()
		if n > 0 {
			cfg.SpanSeconds = cfg.SpanSeconds * int64(n) / int64(cfg.Jobs)
			cfg.Jobs = n
		}
		cfg.Seed = seed
		jobs = workload.CTC(cfg)
		header = trace.Header{
			Computer: "synthetic CTC SP2 model",
			MaxNodes: cfg.MachineNodes,
			Note:     "calibrated substitute for the CTC trace (DESIGN.md section 3)",
		}
	case "prob":
		if n == 0 {
			n = workload.ProbabilisticJobs
		}
		cfg := workload.DefaultCTCConfig()
		cfg.SpanSeconds = cfg.SpanSeconds * int64(n) / int64(cfg.Jobs)
		cfg.Jobs = n
		cfg.Seed = seed
		src := workload.CTC(cfg)
		jobs, err = workload.Probabilistic(src, n, seed+1)
		if err != nil {
			return err
		}
		header = trace.Header{
			Computer: "probability-distributed model",
			MaxNodes: job.MaxNodes(jobs),
			Note:     "Weibull submission + binned node/time distributions (paper section 6.2)",
		}
	case "random":
		cfg := workload.DefaultRandomizedConfig()
		if n > 0 {
			cfg.Jobs = n
		}
		cfg.Seed = seed
		jobs = workload.Randomized(cfg)
		header = trace.Header{
			Computer: "randomized model",
			MaxNodes: cfg.MaxNodes,
			Note:     "uniform parameters per paper table 2",
		}
	default:
		return fmt.Errorf("unknown kind %q", kind)
	}

	w := io.Writer(os.Stdout)
	var f *os.File
	if out != "" {
		var err error
		f, err = os.Create(out)
		if err != nil {
			return err
		}
		w = f
	}
	if err := trace.Write(w, header, jobs); err != nil {
		if f != nil {
			f.Close()
		}
		return err
	}
	if f != nil {
		if err := f.Close(); err != nil {
			return err
		}
	}
	s := trace.Summarize(jobs)
	fmt.Fprintf(os.Stderr, "genworkload: %d jobs, span %d s, mean nodes %.1f, mean runtime %.0f s, overestimation %.1fx\n",
		s.Jobs, s.SpanSeconds, s.MeanNodes, s.MeanRuntime, s.OverestFactor)
	return nil
}
