// Command benchcompare is the opt-in perf-regression gate behind
// `make bench-compare` (scripts/bench-compare.sh): it compares a fresh
// bench run against the committed BENCH_*.json reports and fails when a
// tracked entry's after_ns_per_op regressed beyond the threshold.
//
// Only shape-invariant entries are tracked — benchmarks whose per-op
// work is identical in quick and full mode (fixed query mixes, fixed
// queue sizes), so the committed full-run numbers are directly
// comparable to a fresh quick run. Workload-scaled entries (the table
// grids, the deep end-to-end families) are deliberately not tracked:
// quick mode downsizes their inputs, so cross-mode ns/op comparisons
// would be meaningless.
//
// Usage: benchcompare [-threshold pct] committed.json fresh.json [...]
// (file pairs; entries missing from either side are skipped).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// tracked lists the shape-invariant benchmark entries across all
// BENCH_*.json reports. Adding a benchmark here requires that its per-op
// shape not depend on -quick.
var tracked = []string{
	// BENCH_1.json: availability-profile micros.
	"profile/EarliestFit/steps=4096",
	"profile/MinFreeMonotone/steps=4096",
	"profile/ConservativePass/queue=512",
	// BENCH_5.json: indexed pending-queue no-fit pass micros.
	"sched/QueuePassNoFit/GG-List/queue=20000",
	"sched/QueuePassNoFit/FCFS-EASY/queue=20000",
	"sched/QueuePassNoFit/FCFS-Backfilling/queue=20000",
}

type entry struct {
	Name    string  `json:"name"`
	AfterNs float64 `json:"after_ns_per_op"`
}

type report struct {
	Entries []entry `json:"benchmarks"`
}

func load(path string) map[string]float64 {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(2)
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: %s: %v\n", path, err)
		os.Exit(2)
	}
	m := make(map[string]float64, len(r.Entries))
	for _, e := range r.Entries {
		m[e.Name] = e.AfterNs
	}
	return m
}

func main() {
	threshold := flag.Float64("threshold", 25,
		"maximum allowed after_ns_per_op regression in percent")
	flag.Parse()
	if flag.NArg() == 0 || flag.NArg()%2 != 0 {
		fmt.Fprintln(os.Stderr, "usage: benchcompare [-threshold pct] <committed.json> <fresh.json> [<committed.json> <fresh.json> ...]")
		os.Exit(2)
	}

	fail, compared := false, 0
	for i := 0; i < flag.NArg(); i += 2 {
		committed, fresh := load(flag.Arg(i)), load(flag.Arg(i+1))
		for _, name := range tracked {
			c, okC := committed[name]
			f, okF := fresh[name]
			if !okC || !okF || c <= 0 {
				continue
			}
			compared++
			delta := (f/c - 1) * 100
			status := "ok"
			if delta > *threshold {
				status = "REGRESSION"
				fail = true
			}
			fmt.Printf("%-52s committed %10.0f ns/op   fresh %10.0f ns/op   %+7.1f%%   %s\n",
				name, c, f, delta, status)
		}
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchcompare: no tracked entries present in both reports")
		os.Exit(1)
	}
	if fail {
		fmt.Fprintf(os.Stderr, "benchcompare: tracked benchmark regressed beyond %.0f%%\n", *threshold)
		os.Exit(1)
	}
	fmt.Printf("benchcompare: %d tracked entries within %.0f%%\n", compared, *threshold)
}
