// Command bench is the repo's reproducible perf harness: it runs the
// availability-profile microbenches and the table-grid benches through
// testing.Benchmark and writes a machine-readable before/after report
// (default BENCH_1.json) that seeds the repo's perf trajectory.
//
// "Before" numbers come from two sources, labeled per entry:
//
//   - reference-oracle-live: the brute-force profile.Reference measured in
//     this very run on identical inputs — the original implementation is
//     kept alive precisely so the baseline stays reproducible; and
//   - seed-commit-recorded: grid numbers measured once on the seed commit
//     (the optimized kernel replaced the old code in place, so those
//     can't be re-run; the recorded values are embedded below).
//
// A second report (default BENCH_2.json) measures the telemetry layer:
// the nil-recorder fast path against the recorded pre-telemetry grid
// numbers, and the enabled-path costs (counters, JSONL to a discard
// sink). The quick smoke run additionally gates the nil-recorder path:
// it fails when the conservative grid bench regresses beyond the noise
// band of the pre-telemetry commit.
//
// A third report (default BENCH_3.json) is the deep-backlog family:
// ≥100k-step profiles and ≥100k-job queues, where the O(log S) tree
// kernel and the batched scheduling passes are measured against the
// live array (skip-ahead) kernel and the sequential one-start-per-pass
// protocol. Deep entries run at -benchtime=1x: a single iteration of
// the quadratic "before" side is already seconds.
//
// A fifth report (default BENCH_5.json) is the deep-queue family: the
// indexed pending-queue layer (internal/queue) against the slice-order
// protocol. Fixed-shape no-fit pass micros (queue=20000, identical in
// quick and full mode, so bench-compare can track them) measure one
// scheduling pass over a queue nothing in which fits; full mode adds
// the same micros at queue=100000 and end-to-end 100k-queued cells for
// every order policy × {List, depth-bounded Backfilling, EASY} plus
// Garey&Graham, each cross-checked makespan-identical between the two
// protocols.
//
// -cpuprofile / -memprofile write standard pprof profiles of the whole
// run (`go tool pprof` reads them); the heap profile is taken at exit.
//
// Usage:
//
//	go run ./cmd/bench                                    # full run, writes BENCH_1/2/3/4/5.json
//	go run ./cmd/bench -quick -out "" -out2 "" -out3 "" -out4 "" -out5 ""  # CI smoke: tiny benchtime, no files, perf gate
//	go run ./cmd/bench -quick -cpuprofile cpu.pprof ...   # profile the harness itself
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sync/atomic"
	"testing"
	"time"

	"jobsched/internal/eval"
	"jobsched/internal/job"
	"jobsched/internal/objective"
	"jobsched/internal/profile"
	"jobsched/internal/sched"
	"jobsched/internal/sim"
	"jobsched/internal/telemetry"
	"jobsched/internal/trace"
	"jobsched/internal/workload"
)

// Entry is one benchmark's before/after record.
type Entry struct {
	Name         string             `json:"name"`
	BeforeSource string             `json:"before_source"`
	BeforeNsOp   float64            `json:"before_ns_per_op"`
	AfterNsOp    float64            `json:"after_ns_per_op"`
	Speedup      float64            `json:"speedup"`
	BeforeAllocs int64              `json:"before_allocs_per_op"`
	AfterAllocs  int64              `json:"after_allocs_per_op"`
	Metrics      map[string]float64 `json:"metrics,omitempty"`
}

// Report is the BENCH_1.json schema.
type Report struct {
	Schema     string  `json:"schema"`
	GoVersion  string  `json:"go_version"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Note       string  `json:"note"`
	Entries    []Entry `json:"benchmarks"`
}

// Seed-commit grid measurements (go test -bench -benchtime=3x on the
// commit preceding the optimized profile kernel; see DESIGN.md §perf).
const (
	seedTable3NsOp     = 1191177118
	seedTable3Allocs   = 1614206
	seedBacklogNsOp    = 1154678122
	seedBacklogAllocs  = 92809
	seedTable3RefUnw   = 48836.392871445736
	seedTable3RefWgt   = 2.0620088639669605e+10
	seedBacklogRefUnw  = 3.33655521125e+06
	seedBacklogMaxQLen = 752
)

// Pre-telemetry grid measurements (the commit before the telemetry layer
// landed, same machine and flags), the "before" side of BENCH_2.json:
// the nil-recorder fast path must stay within noise of these.
const (
	pr1BacklogNsOp   = 348246859 // full backlog grid, -benchtime 0.5s
	pr1BacklogAllocs = 57250
	// pr1QuickBacklogNsOp is the quick-mode (-benchtime 10x) backlog grid
	// mean. Pre-telemetry runs on an idle container scattered ±4%, but on
	// a loaded shared host even the min-of-3 drifts up to ~25% above the
	// recorded mean (measured on the unmodified seed commit), so the
	// smoke gate fails only beyond 40%. A real per-event cost in the hot
	// loop — the grid issues millions of events per op — shows up at
	// multiples of the baseline, far above any load blip.
	pr1QuickBacklogNsOp = 4757849
	quickGateFactor     = 1.4
)

func main() {
	quick := flag.Bool("quick", false, "tiny benchtime smoke run (CI gate)")
	out := flag.String("out", "BENCH_1.json", "output path; empty writes the JSON to stdout only")
	out2 := flag.String("out2", "BENCH_2.json", "telemetry-overhead report path; empty writes to stdout only")
	out3 := flag.String("out3", "BENCH_3.json", "deep-backlog report path; empty writes to stdout only")
	out4 := flag.String("out4", "BENCH_4.json", "deep-stream report path; empty writes to stdout only")
	out5 := flag.String("out5", "BENCH_5.json", "deep-queue report path; empty writes to stdout only")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	benchtime := flag.String("benchtime", "", "override the default benchtime (10x quick, 0.5s full); deep families still run at 1x")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		// Not deferred: fatal() exits via os.Exit, so the profile is
		// stopped explicitly at the end of the happy path instead.
	}

	testing.Init()
	switch {
	case *benchtime != "":
		flag.Set("test.benchtime", *benchtime)
	case *quick:
		flag.Set("test.benchtime", "10x")
	default:
		flag.Set("test.benchtime", "0.5s")
	}

	rep := &Report{
		Schema:     "jobsched-bench/v1",
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Note: "before = naive availability profile (live profile.Reference oracle, " +
			"or recorded seed-commit grid numbers); after = optimized skip-ahead kernel",
	}

	rep.Entries = append(rep.Entries, microEntries()...)
	rep.Entries = append(rep.Entries, gridEntries(*quick)...)

	emit(rep, *out)

	rep2 := &Report{
		Schema:     "jobsched-bench/v2-telemetry",
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Note: "telemetry layer overhead on the conservative grid bench: before = " +
			"pre-telemetry commit (recorded) or the nil-recorder path (live), " +
			"after = this commit with the labeled telemetry configuration",
	}
	rep2.Entries = telemetryEntries(*quick)
	emit(rep2, *out2)

	rep3 := &Report{
		Schema:     "jobsched-bench/v3-deep-backlog",
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Note: "deep-backlog family (>=100k profile steps / >=100k queued jobs): " +
			"before = array skip-ahead kernel or sequential one-start-per-pass " +
			"protocol (both live), after = O(log S) tree kernel with batched passes",
	}
	rep3.Entries = deepEntries(*quick)
	emit(rep3, *out3)

	rep4 := &Report{
		Schema:     "jobsched-bench/v4-deep-stream",
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Note: "deep-stream family (million/10M-job runs): before = materialize the " +
			"whole workload and retain the full schedule (slice path, live), " +
			"after = streaming arrival source + aggregate sink under a hard " +
			"memory limit; peak-heap metrics carry the memory story",
	}
	rep4.Entries = streamEntries(*quick)
	emit(rep4, *out4)

	rep5 := &Report{
		Schema:     "jobsched-bench/v5-deep-queue",
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Note: "deep-queue family (indexed pending-queue layer): before = slice-order " +
			"batched protocol (FCFS/Garey&Graham) or the sequential one-start-per-pass " +
			"protocol (PSRS/SMART, their pre-index state), both live; after = queue.Index " +
			"passes with width-pruned scans, O(1) no-fit prechecks and epoch-window batching",
	}
	rep5.Entries = queueEntries(*quick)
	emit(rep5, *out5)

	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}

	if *quick {
		// Smoke gate: the nil-recorder path must stay within the noise
		// band of the pre-telemetry commit.
		nsOp := rep2.Entries[0].AfterNsOp
		if limit := float64(pr1QuickBacklogNsOp) * quickGateFactor; nsOp > limit {
			fatal(fmt.Errorf("telemetry-disabled backlog grid took %.0f ns/op, limit %.0f "+
				"(pre-telemetry %d +%d%%): the nil-recorder fast path regressed",
				nsOp, limit, int64(pr1QuickBacklogNsOp), int64(quickGateFactor*100-100)))
		}
	}
}

func emit(rep *Report, path string) {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	os.Stdout.Write(data)
	if path != "" {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}

func entry(name, source string, before, after testing.BenchmarkResult) Entry {
	e := Entry{
		Name:         name,
		BeforeSource: source,
		BeforeNsOp:   float64(before.NsPerOp()),
		AfterNsOp:    float64(after.NsPerOp()),
		BeforeAllocs: before.AllocsPerOp(),
		AfterAllocs:  after.AllocsPerOp(),
	}
	if e.AfterNsOp > 0 {
		e.Speedup = e.BeforeNsOp / e.AfterNsOp
	}
	return e
}

// microEntries measures the profile kernel against the live Reference
// oracle on identical inputs.
func microEntries() []Entry {
	const steps = 4096

	opt := buildProfile(steps)
	ref := buildReference(steps)

	fitQueries := func(fit func(int, int64, int64) int64) func(b *testing.B) {
		return func(b *testing.B) {
			r := rand.New(rand.NewSource(1))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w := 1 + r.Intn(200)
				d := int64(1 + r.Intn(10000))
				_ = fit(w, d, 0)
			}
		}
	}
	fitEntry := entry("profile/EarliestFit/steps=4096", "reference-oracle-live",
		testing.Benchmark(fitQueries(ref.EarliestFit)),
		testing.Benchmark(fitQueries(opt.EarliestFit)))

	minFree := func(mf func(int64, int64) int) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			var t int64
			for i := 0; i < b.N; i++ {
				_ = mf(t, t+600)
				t += 37
				if t > 400000 {
					t = 0
				}
			}
		}
	}
	minFreeEntry := entry("profile/MinFreeMonotone/steps=4096", "reference-oracle-live",
		testing.Benchmark(minFree(ref.MinFree)),
		testing.Benchmark(minFree(opt.MinFree)))

	// The conservative-pass macro shape: place a 512-job queue on a fresh
	// profile. Before: a new Reference per pass (the old starter allocated
	// a fresh profile every pass); after: one scratch Profile, Reset.
	type shape struct {
		w int
		d int64
	}
	r := rand.New(rand.NewSource(3))
	queue := make([]shape, 512)
	for i := range queue {
		queue[i] = shape{w: 1 + r.Intn(200), d: int64(60 + r.Intn(20000))}
	}
	passBefore := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := profile.NewReference(256, 0)
			for _, j := range queue {
				at := p.EarliestFit(j.w, j.d, 0)
				p.Reserve(j.w, at, at+j.d)
			}
		}
	})
	scratch := profile.New(256, 0)
	passAfter := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			scratch.Reset(256, 0)
			for _, j := range queue {
				at := scratch.EarliestFit(j.w, j.d, 0)
				scratch.Reserve(j.w, at, at+j.d)
			}
		}
	})
	passEntry := entry("profile/ConservativePass/queue=512", "reference-oracle-live",
		passBefore, passAfter)

	return []Entry{fitEntry, minFreeEntry, passEntry}
}

// gridEntries measures the table-grid benches (after side) against the
// recorded seed-commit numbers, and captures the reference-cell objective
// values so schedule-quality regressions are visible next to the timing.
func gridEntries(quick bool) []Entry {
	m := sim.Machine{Nodes: 256}

	ctcJobs := 2500
	backlogJobs := 800
	if quick {
		ctcJobs, backlogJobs = 300, 150
	}

	cfg := workload.DefaultCTCConfig()
	cfg.SpanSeconds = cfg.SpanSeconds * int64(ctcJobs) / int64(cfg.Jobs)
	cfg.Jobs = ctcJobs
	cfg.Seed = 1
	ctc, _ := trace.FilterMaxNodes(workload.CTC(cfg), 256)

	backlog := backlogWorkload(backlogJobs)

	table3Metrics := map[string]float64{}
	table3 := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, c := range []eval.Case{eval.Unweighted, eval.Weighted} {
				g, err := eval.Run("Table 3", m, ctc, c, eval.Options{Parallel: true})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					key := "ref_unweighted_s"
					if c == eval.Weighted {
						key = "ref_weighted_s"
					}
					table3Metrics[key] = g.Ref.Value
				}
			}
		}
	})
	t3 := entry("grid/Table3_CTC", "seed-commit-recorded",
		recorded(seedTable3NsOp, seedTable3Allocs), table3)
	t3.Metrics = table3Metrics
	if !quick {
		t3.Metrics["seed_ref_unweighted_s"] = seedTable3RefUnw
		t3.Metrics["seed_ref_weighted_s"] = seedTable3RefWgt
	}

	backlogMetrics := map[string]float64{}
	backlogRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g, err := eval.Run("Backlog", m, backlog, eval.Unweighted, eval.Options{
				Parallel: true,
				Orders:   []sched.OrderName{sched.OrderFCFS, sched.OrderPSRS},
				Starts:   []sched.StartName{sched.StartConservative, sched.StartEASY},
			})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				backlogMetrics["ref_unweighted_s"] = g.Ref.Value
				var maxQ int
				for _, c := range g.Cells {
					if c.MaxQueue > maxQ {
						maxQ = c.MaxQueue
					}
				}
				backlogMetrics["max_queue_jobs"] = float64(maxQ)
			}
		}
	})
	bl := entry("grid/TableBacklog_Conservative", "seed-commit-recorded",
		recorded(seedBacklogNsOp, seedBacklogAllocs), backlogRes)
	bl.Metrics = backlogMetrics
	if !quick {
		bl.Metrics["seed_ref_unweighted_s"] = seedBacklogRefUnw
		bl.Metrics["seed_max_queue_jobs"] = seedBacklogMaxQLen
	}

	// Sanity: the optimized kernel must not change a single scheduling
	// decision. The quick CI gate downsizes the workloads, so reference
	// values only comparable at full scale.
	if !quick {
		if v := table3Metrics["ref_unweighted_s"]; v != seedTable3RefUnw {
			fatal(fmt.Errorf("Table 3 reference cell moved: %v != %v (schedule changed!)", v, seedTable3RefUnw))
		}
		if v := backlogMetrics["ref_unweighted_s"]; v != seedBacklogRefUnw {
			fatal(fmt.Errorf("backlog reference cell moved: %v != %v (schedule changed!)", v, seedBacklogRefUnw))
		}
	}
	return []Entry{t3, bl}
}

// backlogWorkload is the saturated randomized workload of the backlog
// grid bench (shared by the perf entries and the telemetry entries so
// the numbers are comparable).
func backlogWorkload(jobs int) []*job.Job {
	bcfg := workload.DefaultRandomizedConfig()
	bcfg.Jobs = jobs
	bcfg.MaxGap = 150
	bcfg.Seed = 9
	return workload.Randomized(bcfg)
}

// telemetryEntries measures the decision-tracing layer on the
// conservative grid bench (BENCH_2.json): the nil-recorder fast path
// against the recorded pre-telemetry numbers, then the enabled paths —
// per-cell run counters and a JSONL recorder draining to io.Discard —
// against the live nil-recorder run.
func telemetryEntries(quick bool) []Entry {
	m := sim.Machine{Nodes: 256}
	backlogJobs := 800
	if quick {
		backlogJobs = 150
	}
	backlog := backlogWorkload(backlogJobs)

	grid := func(hooks func(sched.OrderName, sched.StartName) telemetry.Hooks) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, err := eval.Run("Backlog", m, backlog, eval.Unweighted, eval.Options{
					Parallel: true,
					Orders:   []sched.OrderName{sched.OrderFCFS, sched.OrderPSRS},
					Starts:   []sched.StartName{sched.StartConservative, sched.StartEASY},
					Hooks:    hooks,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	}

	// One grid op is ~350 ms in full mode, so a single testing.Benchmark
	// sample is only a couple of iterations and machine noise dominates.
	// Take the best of a few runs per configuration — min-of-N is the
	// standard noise-robust statistic for before/after comparisons.
	// Quick mode gates on an absolute recorded constant, so a single
	// sample under a transient load spike fails spuriously; min-of-3 is
	// cheap there (~50 ms per sample) and keeps the gate honest.
	runs := 3
	best := func(f func(b *testing.B)) testing.BenchmarkResult {
		r := testing.Benchmark(f)
		for i := 1; i < runs; i++ {
			if c := testing.Benchmark(f); c.NsPerOp() < r.NsPerOp() {
				r = c
			}
		}
		return r
	}

	// Parallel cells each get their own recorder from the Hooks factory,
	// so the enabled-path benches stay race-free.
	disabled := best(grid(nil))
	counters := best(grid(func(sched.OrderName, sched.StartName) telemetry.Hooks {
		return telemetry.NewCounters().Hooks()
	}))
	jsonl := best(grid(func(sched.OrderName, sched.StartName) telemetry.Hooks {
		return telemetry.Hooks{Recorder: telemetry.NewJSONL(io.Discard)}
	}))

	overhead := func(before, after testing.BenchmarkResult) float64 {
		if before.NsPerOp() == 0 {
			return 0
		}
		return (float64(after.NsPerOp())/float64(before.NsPerOp()) - 1) * 100
	}

	source := "pre-telemetry-commit-recorded"
	baseline := recorded(pr1BacklogNsOp, pr1BacklogAllocs)
	if quick {
		// The recorded baseline was measured at full benchtime; in quick
		// mode only the quick-vs-quick gate in main is meaningful, so the
		// disabled entry compares against the recorded quick mean instead.
		baseline = recorded(pr1QuickBacklogNsOp, 0)
		source = "pre-telemetry-commit-recorded-quick"
	}
	off := entry("telemetry/BacklogGrid_disabled", source, baseline, disabled)
	off.Metrics = map[string]float64{"overhead_pct": overhead(baseline, disabled)}

	cnt := entry("telemetry/BacklogGrid_counters", "nil-recorder-live", disabled, counters)
	cnt.Metrics = map[string]float64{"overhead_pct": overhead(disabled, counters)}

	jl := entry("telemetry/BacklogGrid_jsonlDiscard", "nil-recorder-live", disabled, jsonl)
	jl.Metrics = map[string]float64{"overhead_pct": overhead(disabled, jsonl)}

	return []Entry{off, cnt, jl}
}

// deepEntries is the BENCH_3.json family: profile queries and whole
// scheduling passes at deep-backlog scale, tree kernel + batched passes
// (after) against the array skip-ahead kernel + sequential protocol
// (before), both measured live. Deep entries run at -benchtime=1x — one
// iteration of the quadratic before side is already seconds — and the
// previous benchtime is restored afterwards.
func deepEntries(quick bool) []Entry {
	prev := flag.Lookup("test.benchtime").Value.String()
	flag.Set("test.benchtime", "1x")
	defer flag.Set("test.benchtime", prev)

	steps := 1 << 17
	queue := 100_000
	jobs := 100_000
	if quick {
		steps, queue, jobs = 1<<12, 2_000, 3_000
	}

	// EarliestFit over a profile whose only fit for a wide job is past
	// every step: the array kernel's skip-ahead must visit each blocking
	// run, the tree's max-pruned descent jumps straight to the tail.
	buildDeep := func(k profile.Kernel) {
		k.Reserve(2, 0, int64(steps)*10)
		for i := 0; i < steps; i++ {
			at := int64(i) * 10
			k.Reserve(1, at, at+5) // free alternates 1/2 across the span
		}
	}
	fitDeep := func(k profile.Kernel) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			span := int64(steps) * 10
			for i := 0; i < b.N; i++ {
				for from := int64(0); from < span; from += span / 64 {
					if k.EarliestFit(3, 50, from) < from {
						b.Fatal("fit before from")
					}
				}
			}
		}
	}
	arrFit := profile.New(4, 0)
	treeFit := profile.NewTree(4, 0)
	buildDeep(arrFit)
	buildDeep(treeFit)
	fitEntry := entry(fmt.Sprintf("profile/EarliestFitDeep/steps=%d", steps),
		"skip-ahead-kernel-live",
		testing.Benchmark(fitDeep(arrFit)), testing.Benchmark(fitDeep(treeFit)))
	fitEntry.Metrics = map[string]float64{"profile_steps": float64(arrFit.StepCount())}

	// A full conservative placement pass at deep scale: every queued job
	// fitted and reserved on one profile. The backlog is capability-
	// style — every job wider than half the machine, durations spread so
	// step boundaries never coalesce — so placements serialize at the
	// growing schedule tail. The array kernel re-scans every occupied
	// step in front of the tail per query (O(n²) total); the tree's
	// max-pruned descent rejects the saturated prefix wholesale and
	// stays O(n log n).
	widths := make([]int, queue)
	durs := make([]int64, queue)
	for i := range widths {
		widths[i] = 129 + (i*7)%64
		durs[i] = 60 + int64(i%1000)*7
	}
	passDeep := func(k profile.Kernel) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				k.Reset(256, 0)
				for j := range widths {
					at := k.EarliestFit(widths[j], durs[j], 0)
					k.Reserve(widths[j], at, at+durs[j])
				}
			}
		}
	}
	arrPass := profile.New(256, 0)
	treePass := profile.NewTree(256, 0)
	passEntry := entry(fmt.Sprintf("profile/ConservativePassDeep/queue=%d", queue),
		"skip-ahead-kernel-live",
		testing.Benchmark(passDeep(arrPass)), testing.Benchmark(passDeep(treePass)))
	passEntry.Metrics = map[string]float64{"final_profile_steps": float64(treePass.StepCount())}

	// End-to-end: simulate a deep backlog (every job submitted at t=0)
	// through the engine. Before: sequential one-start-per-pass protocol
	// on the array kernel; after: batched passes on the tree kernel. The
	// runs must agree on the schedule — the makespans are cross-checked.
	deepJobs := func() []*job.Job {
		js := make([]*job.Job, jobs)
		for i := range js {
			w := 1 + (i*7)%8
			if i%199 == 198 {
				w = 256
			}
			js[i] = &job.Job{ID: job.ID(i), Submit: 0, Nodes: w,
				Runtime: 60, Estimate: 60 + int64(i%4)*30}
		}
		return js
	}
	drains := []sim.Failure{{At: 3_000, Nodes: 128, Duration: 600}}
	simDeep := func(cfg sched.Config, o sched.OrderName, s sched.StartName, sequential bool, makespan *int64) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				alg, err := sched.New(o, s, cfg)
				if err != nil {
					b.Fatal(err)
				}
				alg.SetSequentialPasses(sequential)
				res, err := sim.Run(sim.Machine{Nodes: 256}, deepJobs(), alg, sim.Options{})
				if err != nil {
					b.Fatal(err)
				}
				*makespan = res.Schedule.Makespan()
			}
		}
	}
	arrayFactory := func(n int, from int64) profile.Kernel { return profile.New(n, from) }
	schedEntries := []Entry{}
	for _, c := range []struct {
		name string
		cfg  sched.Config
		s    sched.StartName
	}{
		{"FCFS-Backfilling-depth4", sched.Config{MachineNodes: 256, MaxBackfillDepth: 4}, sched.StartConservative},
		{"FCFS-EASY-drains", sched.Config{MachineNodes: 256, Announced: drains}, sched.StartEASY},
	} {
		var mkBefore, mkAfter int64
		beforeCfg := c.cfg
		beforeCfg.ProfileFactory = arrayFactory
		before := testing.Benchmark(simDeep(beforeCfg, sched.OrderFCFS, c.s, true, &mkBefore))
		after := testing.Benchmark(simDeep(c.cfg, sched.OrderFCFS, c.s, false, &mkAfter))
		if mkBefore != mkAfter {
			fatal(fmt.Errorf("deep backlog %s: batched makespan %d != sequential %d (schedule changed!)",
				c.name, mkAfter, mkBefore))
		}
		e := entry(fmt.Sprintf("sched/DeepBacklogPass/jobs=%d/%s", jobs, c.name),
			"sequential-passes-live", before, after)
		e.Metrics = map[string]float64{"makespan_s": float64(mkAfter)}
		schedEntries = append(schedEntries, e)
	}

	return append([]Entry{fitEntry, passEntry}, schedEntries...)
}

// queueEntries is the BENCH_5.json family: the indexed pending-queue
// layer against the slice-order protocol. The no-fit pass micros run at
// a fixed queue=20000 in both quick and full mode — shape-invariant, so
// bench-compare can track them across commits — and full mode adds the
// same micros at queue=100000 plus the end-to-end deep-queue grid.
func queueEntries(quick bool) []Entry {
	entries := queuePassMicros(20_000)
	if !quick {
		entries = append(entries, queuePassMicros(100_000)...)
	}
	return append(entries, deepQueueGrid(quick)...)
}

// queuePassMicros measures ONE scheduling pass over a deep queue in
// which nothing fits the free nodes — the saturated-machine state a deep
// backlog spends most of its time in. The slice protocol pays O(Q) per
// pass (the Garey&Graham scan, the EASY backfill scan, the conservative
// fits precheck); the index answers the same pass in O(log Q) cursor
// descents (or one O(1) subtree-minimum lookup). Zero jobs start, so the
// pass is repeatable without rebuilding state between iterations.
func queuePassMicros(queueLen int) []Entry {
	const machine = 256
	const free = 8

	mk := func(o sched.OrderName, s sched.StartName, indexed bool) *sched.Composite {
		alg, err := sched.New(o, s, sched.Config{MachineNodes: machine})
		if err != nil {
			fatal(err)
		}
		alg.SetIndexedQueue(indexed)
		for i := 0; i < queueLen; i++ {
			alg.Submit(&job.Job{ID: job.ID(i), Submit: 0,
				Nodes:    9 + (i*13)%(machine-8), // everything wider than free=8
				Estimate: 600 + int64(i%7)*60, Runtime: 600}, 0)
		}
		return alg
	}
	// One wide job occupies the rest of the machine: EASY needs a running
	// set to compute the head's shadow time.
	blocker := []sim.Running{{
		Job:   &job.Job{ID: 1 << 30, Nodes: machine - free, Estimate: 3600, Runtime: 3600},
		Start: 0, EstEnd: 3600,
	}}
	pass := func(alg *sched.Composite, running []sim.Running) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			now := int64(1)
			for i := 0; i < b.N; i++ {
				if picked := alg.Startable(now, free, running); len(picked) != 0 {
					b.Fatal("no-fit pass unexpectedly started jobs")
				}
				now++
			}
		}
	}

	cells := []struct {
		name    string
		o       sched.OrderName
		s       sched.StartName
		running []sim.Running
	}{
		{"GG-List", sched.OrderGG, sched.StartList, nil},
		{"FCFS-EASY", sched.OrderFCFS, sched.StartEASY, blocker},
		{"FCFS-Backfilling", sched.OrderFCFS, sched.StartConservative, blocker},
	}
	var entries []Entry
	for _, c := range cells {
		before := testing.Benchmark(pass(mk(c.o, c.s, false), c.running))
		after := testing.Benchmark(pass(mk(c.o, c.s, true), c.running))
		e := entry(fmt.Sprintf("sched/QueuePassNoFit/%s/queue=%d", c.name, queueLen),
			"slice-pass-live", before, after)
		e.Metrics = map[string]float64{"queue_jobs": float64(queueLen)}
		entries = append(entries, e)
	}
	return entries
}

// deepQueueGrid simulates a 100k-job time-zero backlog end to end for
// every order policy × {List, depth-bounded Backfilling, EASY} plus the
// Garey&Graham cell. The before side runs the pre-index protocol: the
// slice batched path for the stable orders (FCFS, Garey&Graham), the
// sequential one-start-per-pass path for the epoch orders (PSRS, SMART)
// — those only gained a batched pass with the index layer. Each cell's
// makespans are cross-checked: the protocols must agree on the schedule.
func deepQueueGrid(quick bool) []Entry {
	prev := flag.Lookup("test.benchtime").Value.String()
	flag.Set("test.benchtime", "1x")
	defer flag.Set("test.benchtime", prev)

	jobs := 100_000
	if quick {
		jobs = 1_500
	}
	mkJobs := func() []*job.Job {
		js := make([]*job.Job, jobs)
		for i := range js {
			w := 1 + (i*7)%8
			if i%199 == 198 {
				w = 256
			}
			js[i] = &job.Job{ID: job.ID(i), Submit: 0, Nodes: w,
				Runtime: 60, Estimate: 60 + int64(i%4)*30}
		}
		return js
	}

	type cell struct {
		name string
		o    sched.OrderName
		s    sched.StartName
		cfg  sched.Config
	}
	var cells []cell
	for _, o := range []sched.OrderName{sched.OrderFCFS, sched.OrderPSRS, sched.OrderSMARTFFIA, sched.OrderSMARTNFIW} {
		cells = append(cells,
			cell{fmt.Sprintf("%s-List", o), o, sched.StartList,
				sched.Config{MachineNodes: 256}},
			cell{fmt.Sprintf("%s-Backfilling-depth4", o), o, sched.StartConservative,
				sched.Config{MachineNodes: 256, MaxBackfillDepth: 4}},
			cell{fmt.Sprintf("%s-EASY", o), o, sched.StartEASY,
				sched.Config{MachineNodes: 256}},
		)
	}
	cells = append(cells, cell{"GareyGraham", sched.OrderGG, sched.StartList,
		sched.Config{MachineNodes: 256}})

	run := func(c cell, before bool, makespan *int64) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				alg, err := sched.New(c.o, c.s, c.cfg)
				if err != nil {
					b.Fatal(err)
				}
				if before {
					alg.SetIndexedQueue(false)
					if c.o != sched.OrderFCFS && c.o != sched.OrderGG {
						alg.SetSequentialPasses(true)
					}
				}
				res, err := sim.Run(sim.Machine{Nodes: 256}, mkJobs(), alg, sim.Options{})
				if err != nil {
					b.Fatal(err)
				}
				*makespan = res.Schedule.Makespan()
			}
		}
	}
	var entries []Entry
	for _, c := range cells {
		source := "slice-batched-live"
		if c.o != sched.OrderFCFS && c.o != sched.OrderGG {
			source = "sequential-slice-live"
		}
		var mkBefore, mkAfter int64
		before := testing.Benchmark(run(c, true, &mkBefore))
		after := testing.Benchmark(run(c, false, &mkAfter))
		if mkBefore != mkAfter {
			fatal(fmt.Errorf("deep queue %s: indexed makespan %d != %s makespan %d (schedule changed!)",
				c.name, mkAfter, source, mkBefore))
		}
		e := entry(fmt.Sprintf("sched/DeepQueue/jobs=%d/%s", jobs, c.name), source, before, after)
		e.Metrics = map[string]float64{"makespan_s": float64(mkAfter), "queued_jobs": float64(jobs)}
		entries = append(entries, e)
	}
	return entries
}

// peakWatch samples the heap in the background and records the largest
// observed HeapAlloc — the memory side of the streaming before/after
// story. GC once before starting so the previous side's garbage does
// not inflate the baseline.
func peakWatch(peak *uint64) (stop func()) {
	runtime.GC()
	var p atomic.Uint64
	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		for {
			old := p.Load()
			if ms.HeapAlloc <= old || p.CompareAndSwap(old, ms.HeapAlloc) {
				return
			}
		}
	}
	sample()
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(2 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				sample()
			case <-quit:
				sample()
				return
			}
		}
	}()
	return func() {
		close(quit)
		<-done
		if v := p.Load(); v > *peak {
			*peak = v
		}
	}
}

// streamEntries is the BENCH_4.json family: million-to-10M-job runs
// where the before side materializes the whole workload and retains the
// full schedule, and the after side streams arrivals from a generator
// and sinks allocations into constant-size aggregates — under a hard
// runtime/debug.SetMemoryLimit ceiling, so a regression back to O(jobs)
// memory aborts the bench instead of merely looking slow. The two sides
// must agree on the metrics: the engine guarantees stream ≡ slice.
func streamEntries(quick bool) []Entry {
	prev := flag.Lookup("test.benchtime").Value.String()
	flag.Set("test.benchtime", "1x")
	defer flag.Set("test.benchtime", prev)

	jobs := 10_000_000
	ingest := 1_000_000
	if quick {
		jobs, ingest = 30_000, 50_000
	}
	const memLimit = int64(256 << 20)
	m := sim.Machine{Nodes: 256}
	cfg := workload.CalibratedStreamConfig(jobs, 256, 0.7, 11)
	newAlg := func() sim.Scheduler {
		alg, err := sched.New(sched.OrderFCFS, sched.StartEASY, sched.Config{MachineNodes: 256})
		if err != nil {
			fatal(err)
		}
		return alg
	}

	// End-to-end simulation: slice path vs streaming path.
	var beforePeak, afterPeak uint64
	var beforeResp, beforeWgt, afterResp, afterWgt float64
	var beforeMk, afterMk int64
	before := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			stop := peakWatch(&beforePeak)
			js := workload.Randomized(cfg)
			res, err := sim.Run(m, js, newAlg(), sim.Options{})
			if err != nil {
				b.Fatal(err)
			}
			beforeResp = objective.AvgResponseTime{}.Eval(res.Schedule)
			beforeWgt = objective.AvgWeightedResponseTime{}.Eval(res.Schedule)
			beforeMk = res.Schedule.Makespan()
			stop()
		}
	})
	after := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			stop := peakWatch(&afterPeak)
			prevLimit := debug.SetMemoryLimit(memLimit)
			src, err := workload.NewStreamer(cfg)
			if err != nil {
				b.Fatal(err)
			}
			agg := &sim.Aggregates{}
			_, err = sim.RunStream(m, src, newAlg(), sim.Options{Sink: agg})
			debug.SetMemoryLimit(prevLimit)
			if err != nil {
				b.Fatal(err)
			}
			afterResp = agg.AvgResponseTime()
			afterWgt = agg.AvgWeightedResponseTime()
			afterMk = agg.Makespan
			stop()
		}
	})
	// The streaming run must reproduce the slice run bit-for-bit on the
	// exactly-summed metrics (response is an integer sum on both sides)
	// and to rounding on the float-accumulated weighted sum.
	if afterResp != beforeResp || afterMk != beforeMk {
		fatal(fmt.Errorf("deep stream: streamed avg response %v / makespan %d != slice %v / %d (schedule changed!)",
			afterResp, afterMk, beforeResp, beforeMk))
	}
	if beforeWgt != 0 && math.Abs(afterWgt-beforeWgt)/beforeWgt > 1e-9 {
		fatal(fmt.Errorf("deep stream: weighted response drifted: %v vs %v", afterWgt, beforeWgt))
	}
	simEntry := entry(fmt.Sprintf("sim/StreamEndToEnd/jobs=%d", jobs),
		"slice-path-live", before, after)
	simEntry.Metrics = map[string]float64{
		"peak_heap_before_mb": float64(beforePeak) / (1 << 20),
		"peak_heap_after_mb":  float64(afterPeak) / (1 << 20),
		"mem_limit_mb":        float64(memLimit) / (1 << 20),
		"avg_response_s":      afterResp,
		"makespan_s":          float64(afterMk),
	}
	if afterPeak > 0 {
		simEntry.Metrics["heap_shrink_factor"] = float64(beforePeak) / float64(afterPeak)
	}

	// SWF ingestion: whole-file slice load vs incremental Scanner.
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, trace.Header{Computer: "bench", MaxNodes: 256})
	if err != nil {
		fatal(err)
	}
	gen, err := workload.NewStreamer(workload.CalibratedStreamConfig(ingest, 256, 0.7, 12))
	if err != nil {
		fatal(err)
	}
	for {
		j, err := gen.Next()
		if err != nil {
			fatal(err)
		}
		if j == nil {
			break
		}
		if err := w.WriteJob(j); err != nil {
			fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	data := buf.Bytes()

	var readPeak, scanPeak uint64
	var readJobs, scanJobs int
	readBench := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			stop := peakWatch(&readPeak)
			_, js, err := trace.Read(bytes.NewReader(data))
			if err != nil {
				b.Fatal(err)
			}
			readJobs = len(js)
			stop()
		}
	})
	scanBench := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			stop := peakWatch(&scanPeak)
			sc := trace.NewScanner(bytes.NewReader(data), trace.ReadOptions{})
			n := 0
			for {
				j, err := sc.Next()
				if err != nil {
					b.Fatal(err)
				}
				if j == nil {
					break
				}
				n++
			}
			scanJobs = n
			stop()
		}
	})
	if readJobs != scanJobs {
		fatal(fmt.Errorf("deep stream: scanner yielded %d jobs, slice read %d", scanJobs, readJobs))
	}
	ingestEntry := entry(fmt.Sprintf("trace/IngestSWF/jobs=%d", ingest),
		"slice-read-live", readBench, scanBench)
	ingestEntry.Metrics = map[string]float64{
		"swf_bytes":           float64(len(data)),
		"peak_heap_before_mb": float64(readPeak) / (1 << 20),
		"peak_heap_after_mb":  float64(scanPeak) / (1 << 20),
	}

	return []Entry{simEntry, ingestEntry}
}

// recorded wraps seed-commit measurements in a BenchmarkResult so entry()
// can treat recorded and live baselines uniformly.
func recorded(nsPerOp int64, allocs int64) testing.BenchmarkResult {
	return testing.BenchmarkResult{N: 1, T: time.Duration(nsPerOp), MemAllocs: uint64(allocs)}
}

func buildProfile(reservations int) *profile.Profile {
	p := profile.New(256, 0)
	r := rand.New(rand.NewSource(42))
	for i := 0; i < reservations; i++ {
		w := 1 + r.Intn(64)
		d := int64(1 + r.Intn(5000))
		at := p.EarliestFit(w, d, int64(r.Intn(50000)))
		p.Reserve(w, at, at+d)
	}
	return p
}

func buildReference(reservations int) *profile.Reference {
	p := profile.NewReference(256, 0)
	r := rand.New(rand.NewSource(42))
	for i := 0; i < reservations; i++ {
		w := 1 + r.Intn(64)
		d := int64(1 + r.Intn(5000))
		at := p.EarliestFit(w, d, int64(r.Intn(50000)))
		p.Reserve(w, at, at+d)
	}
	return p
}
