// Command bench is the repo's reproducible perf harness: it runs the
// availability-profile microbenches and the table-grid benches through
// testing.Benchmark and writes a machine-readable before/after report
// (default BENCH_1.json) that seeds the repo's perf trajectory.
//
// "Before" numbers come from two sources, labeled per entry:
//
//   - reference-oracle-live: the brute-force profile.Reference measured in
//     this very run on identical inputs — the original implementation is
//     kept alive precisely so the baseline stays reproducible; and
//   - seed-commit-recorded: grid numbers measured once on the seed commit
//     (the optimized kernel replaced the old code in place, so those
//     can't be re-run; the recorded values are embedded below).
//
// Usage:
//
//	go run ./cmd/bench                 # full run, writes BENCH_1.json
//	go run ./cmd/bench -quick -out ""  # CI smoke: tiny benchtime, no file
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"jobsched/internal/eval"
	"jobsched/internal/profile"
	"jobsched/internal/sched"
	"jobsched/internal/sim"
	"jobsched/internal/trace"
	"jobsched/internal/workload"
)

// Entry is one benchmark's before/after record.
type Entry struct {
	Name         string             `json:"name"`
	BeforeSource string             `json:"before_source"`
	BeforeNsOp   float64            `json:"before_ns_per_op"`
	AfterNsOp    float64            `json:"after_ns_per_op"`
	Speedup      float64            `json:"speedup"`
	BeforeAllocs int64              `json:"before_allocs_per_op"`
	AfterAllocs  int64              `json:"after_allocs_per_op"`
	Metrics      map[string]float64 `json:"metrics,omitempty"`
}

// Report is the BENCH_1.json schema.
type Report struct {
	Schema     string  `json:"schema"`
	GoVersion  string  `json:"go_version"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Note       string  `json:"note"`
	Entries    []Entry `json:"benchmarks"`
}

// Seed-commit grid measurements (go test -bench -benchtime=3x on the
// commit preceding the optimized profile kernel; see DESIGN.md §perf).
const (
	seedTable3NsOp     = 1191177118
	seedTable3Allocs   = 1614206
	seedBacklogNsOp    = 1154678122
	seedBacklogAllocs  = 92809
	seedTable3RefUnw   = 48836.392871445736
	seedTable3RefWgt   = 2.0620088639669605e+10
	seedBacklogRefUnw  = 3.33655521125e+06
	seedBacklogMaxQLen = 752
)

func main() {
	quick := flag.Bool("quick", false, "tiny benchtime smoke run (CI gate)")
	out := flag.String("out", "BENCH_1.json", "output path; empty writes the JSON to stdout only")
	flag.Parse()

	testing.Init()
	if *quick {
		flag.Set("test.benchtime", "10x")
	} else {
		flag.Set("test.benchtime", "0.5s")
	}

	rep := &Report{
		Schema:     "jobsched-bench/v1",
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Note: "before = naive availability profile (live profile.Reference oracle, " +
			"or recorded seed-commit grid numbers); after = optimized skip-ahead kernel",
	}

	rep.Entries = append(rep.Entries, microEntries()...)
	rep.Entries = append(rep.Entries, gridEntries(*quick)...)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	os.Stdout.Write(data)
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}

func entry(name, source string, before, after testing.BenchmarkResult) Entry {
	e := Entry{
		Name:         name,
		BeforeSource: source,
		BeforeNsOp:   float64(before.NsPerOp()),
		AfterNsOp:    float64(after.NsPerOp()),
		BeforeAllocs: before.AllocsPerOp(),
		AfterAllocs:  after.AllocsPerOp(),
	}
	if e.AfterNsOp > 0 {
		e.Speedup = e.BeforeNsOp / e.AfterNsOp
	}
	return e
}

// microEntries measures the profile kernel against the live Reference
// oracle on identical inputs.
func microEntries() []Entry {
	const steps = 4096

	opt := buildProfile(steps)
	ref := buildReference(steps)

	fitQueries := func(fit func(int, int64, int64) int64) func(b *testing.B) {
		return func(b *testing.B) {
			r := rand.New(rand.NewSource(1))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w := 1 + r.Intn(200)
				d := int64(1 + r.Intn(10000))
				_ = fit(w, d, 0)
			}
		}
	}
	fitEntry := entry("profile/EarliestFit/steps=4096", "reference-oracle-live",
		testing.Benchmark(fitQueries(ref.EarliestFit)),
		testing.Benchmark(fitQueries(opt.EarliestFit)))

	minFree := func(mf func(int64, int64) int) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			var t int64
			for i := 0; i < b.N; i++ {
				_ = mf(t, t+600)
				t += 37
				if t > 400000 {
					t = 0
				}
			}
		}
	}
	minFreeEntry := entry("profile/MinFreeMonotone/steps=4096", "reference-oracle-live",
		testing.Benchmark(minFree(ref.MinFree)),
		testing.Benchmark(minFree(opt.MinFree)))

	// The conservative-pass macro shape: place a 512-job queue on a fresh
	// profile. Before: a new Reference per pass (the old starter allocated
	// a fresh profile every pass); after: one scratch Profile, Reset.
	type shape struct {
		w int
		d int64
	}
	r := rand.New(rand.NewSource(3))
	queue := make([]shape, 512)
	for i := range queue {
		queue[i] = shape{w: 1 + r.Intn(200), d: int64(60 + r.Intn(20000))}
	}
	passBefore := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := profile.NewReference(256, 0)
			for _, j := range queue {
				at := p.EarliestFit(j.w, j.d, 0)
				p.Reserve(j.w, at, at+j.d)
			}
		}
	})
	scratch := profile.New(256, 0)
	passAfter := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			scratch.Reset(256, 0)
			for _, j := range queue {
				at := scratch.EarliestFit(j.w, j.d, 0)
				scratch.Reserve(j.w, at, at+j.d)
			}
		}
	})
	passEntry := entry("profile/ConservativePass/queue=512", "reference-oracle-live",
		passBefore, passAfter)

	return []Entry{fitEntry, minFreeEntry, passEntry}
}

// gridEntries measures the table-grid benches (after side) against the
// recorded seed-commit numbers, and captures the reference-cell objective
// values so schedule-quality regressions are visible next to the timing.
func gridEntries(quick bool) []Entry {
	m := sim.Machine{Nodes: 256}

	ctcJobs := 2500
	backlogJobs := 800
	if quick {
		ctcJobs, backlogJobs = 300, 150
	}

	cfg := workload.DefaultCTCConfig()
	cfg.SpanSeconds = cfg.SpanSeconds * int64(ctcJobs) / int64(cfg.Jobs)
	cfg.Jobs = ctcJobs
	cfg.Seed = 1
	ctc, _ := trace.FilterMaxNodes(workload.CTC(cfg), 256)

	bcfg := workload.DefaultRandomizedConfig()
	bcfg.Jobs = backlogJobs
	bcfg.MaxGap = 150
	bcfg.Seed = 9
	backlog := workload.Randomized(bcfg)

	table3Metrics := map[string]float64{}
	table3 := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, c := range []eval.Case{eval.Unweighted, eval.Weighted} {
				g, err := eval.Run("Table 3", m, ctc, c, eval.Options{Parallel: true})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					key := "ref_unweighted_s"
					if c == eval.Weighted {
						key = "ref_weighted_s"
					}
					table3Metrics[key] = g.Ref.Value
				}
			}
		}
	})
	t3 := entry("grid/Table3_CTC", "seed-commit-recorded",
		recorded(seedTable3NsOp, seedTable3Allocs), table3)
	t3.Metrics = table3Metrics
	if !quick {
		t3.Metrics["seed_ref_unweighted_s"] = seedTable3RefUnw
		t3.Metrics["seed_ref_weighted_s"] = seedTable3RefWgt
	}

	backlogMetrics := map[string]float64{}
	backlogRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g, err := eval.Run("Backlog", m, backlog, eval.Unweighted, eval.Options{
				Parallel: true,
				Orders:   []sched.OrderName{sched.OrderFCFS, sched.OrderPSRS},
				Starts:   []sched.StartName{sched.StartConservative, sched.StartEASY},
			})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				backlogMetrics["ref_unweighted_s"] = g.Ref.Value
				var maxQ int
				for _, c := range g.Cells {
					if c.MaxQueue > maxQ {
						maxQ = c.MaxQueue
					}
				}
				backlogMetrics["max_queue_jobs"] = float64(maxQ)
			}
		}
	})
	bl := entry("grid/TableBacklog_Conservative", "seed-commit-recorded",
		recorded(seedBacklogNsOp, seedBacklogAllocs), backlogRes)
	bl.Metrics = backlogMetrics
	if !quick {
		bl.Metrics["seed_ref_unweighted_s"] = seedBacklogRefUnw
		bl.Metrics["seed_max_queue_jobs"] = seedBacklogMaxQLen
	}

	// Sanity: the optimized kernel must not change a single scheduling
	// decision. The quick CI gate downsizes the workloads, so reference
	// values only comparable at full scale.
	if !quick {
		if v := table3Metrics["ref_unweighted_s"]; v != seedTable3RefUnw {
			fatal(fmt.Errorf("Table 3 reference cell moved: %v != %v (schedule changed!)", v, seedTable3RefUnw))
		}
		if v := backlogMetrics["ref_unweighted_s"]; v != seedBacklogRefUnw {
			fatal(fmt.Errorf("backlog reference cell moved: %v != %v (schedule changed!)", v, seedBacklogRefUnw))
		}
	}
	return []Entry{t3, bl}
}

// recorded wraps seed-commit measurements in a BenchmarkResult so entry()
// can treat recorded and live baselines uniformly.
func recorded(nsPerOp int64, allocs int64) testing.BenchmarkResult {
	return testing.BenchmarkResult{N: 1, T: time.Duration(nsPerOp), MemAllocs: uint64(allocs)}
}

func buildProfile(reservations int) *profile.Profile {
	p := profile.New(256, 0)
	r := rand.New(rand.NewSource(42))
	for i := 0; i < reservations; i++ {
		w := 1 + r.Intn(64)
		d := int64(1 + r.Intn(5000))
		at := p.EarliestFit(w, d, int64(r.Intn(50000)))
		p.Reserve(w, at, at+d)
	}
	return p
}

func buildReference(reservations int) *profile.Reference {
	p := profile.NewReference(256, 0)
	r := rand.New(rand.NewSource(42))
	for i := 0; i < reservations; i++ {
		w := 1 + r.Intn(64)
		d := int64(1 + r.Intn(5000))
		at := p.EarliestFit(w, d, int64(r.Intn(50000)))
		p.Reserve(w, at, at+d)
	}
	return p
}
