// Command schedload is jobschedd's load generator and latency probe: it
// drives a session with a seeded, reproducible stream of submissions
// from concurrent workers, honors the daemon's backpressure contract
// (Retry-After on 429/503), and reports end-to-end latency percentiles.
//
// Usage:
//
//	schedload -addr host:port [-session load] [-jobs 10000] [-workers 8]
//	          [-batch 16] [-users 4] [-nodes 256] [-advance-every 32]
//	          [-no-retry] [-out bench.json] [-fingerprint] [-seed 1]
//
// With -no-retry, refused submissions are counted instead of retried —
// the overload experiment uses this to assert shedding is explicit
// (bounded 429/503 responses) rather than emergent (timeouts, resets).
// With -fingerprint, the tool prints the session fingerprint and exits,
// which the smoke script uses to compare pre-kill and post-recovery
// state.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

type jobSpec struct {
	Name     string `json:"name,omitempty"`
	User     string `json:"user,omitempty"`
	Nodes    int    `json:"nodes"`
	Estimate int64  `json:"estimate"`
	Runtime  int64  `json:"runtime,omitempty"`
	Deadline int64  `json:"deadline,omitempty"`
}

type report struct {
	Jobs        int64   `json:"jobs"`
	Batches     int64   `json:"batches"`
	Admitted    int64   `json:"admitted"`
	RateLimited int64   `json:"rate_limited_429"`
	Shed        int64   `json:"shed_503"`
	Errors      int64   `json:"errors"`
	Retries     int64   `json:"retries"`
	Seconds     float64 `json:"seconds"`
	JobsPerSec  float64 `json:"jobs_per_sec"`
	// Latency percentiles are per admitted batch, milliseconds,
	// end to end (queue wait + scheduling + WAL fsync).
	P50ms float64 `json:"p50_ms"`
	P90ms float64 `json:"p90_ms"`
	P95ms float64 `json:"p95_ms"`
	P99ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "daemon address")
		session  = flag.String("session", "load", "session name (created if absent)")
		jobs     = flag.Int("jobs", 10000, "total jobs to submit")
		workers  = flag.Int("workers", 8, "concurrent submitters")
		batch    = flag.Int("batch", 16, "jobs per submission request")
		users    = flag.Int("users", 4, "distinct user identities (admission is per user)")
		nodes    = flag.Int("nodes", 256, "machine size when creating the session")
		advEvery = flag.Int("advance-every", 32, "advance the clock after this many batches per worker (0 = never)")
		noRetry  = flag.Bool("no-retry", false, "count 429/503 instead of honoring Retry-After")
		out      = flag.String("out", "", "write the JSON report here ('-' or empty = stdout only)")
		fpOnly   = flag.Bool("fingerprint", false, "print the session fingerprint and exit")
		seed     = flag.Int64("seed", 1, "workload seed (same seed, same submission stream)")
	)
	flag.Parse()

	base := "http://" + *addr
	client := &http.Client{Timeout: 30 * time.Second}
	if *fpOnly {
		fp, err := fingerprint(client, base, *session)
		if err != nil {
			fmt.Fprintln(os.Stderr, "schedload:", err)
			os.Exit(1)
		}
		fmt.Println(fp)
		return
	}

	if err := ensureSession(client, base, *session, *nodes); err != nil {
		fmt.Fprintln(os.Stderr, "schedload:", err)
		os.Exit(1)
	}

	rep, err := drive(client, base, *session, *jobs, *workers, *batch, *users, *advEvery, *noRetry, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedload:", err)
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedload:", err)
		os.Exit(1)
	}
	fmt.Println(string(enc))
	if *out != "" && *out != "-" {
		if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "schedload:", err)
			os.Exit(1)
		}
	}
}

// ensureSession creates the session, tolerating one that already exists.
func ensureSession(client *http.Client, base, name string, nodes int) error {
	body, err := json.Marshal(map[string]any{
		"name":   name,
		"config": map[string]any{"nodes": nodes},
	})
	if err != nil {
		return err
	}
	resp, err := client.Post(base+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusConflict {
		return fmt.Errorf("creating session: %s", resp.Status)
	}
	return nil
}

func fingerprint(client *http.Client, base, name string) (string, error) {
	resp, err := client.Get(base + "/v1/sessions/" + name)
	if err != nil {
		return "", err
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("session info: %s", resp.Status)
	}
	var info struct {
		Fingerprint string `json:"fingerprint"`
		WALSeq      uint64 `json:"wal_seq"`
		Clock       int64  `json:"clock"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return "", err
	}
	return fmt.Sprintf("%s wal_seq=%d clock=%d", info.Fingerprint, info.WALSeq, info.Clock), nil
}

// drive runs the workers and aggregates the report.
func drive(client *http.Client, base, session string, jobs, workers, batch, users, advEvery int, noRetry bool, seed int64) (*report, error) {
	if workers < 1 {
		workers = 1
	}
	var (
		rep      report
		mu       sync.Mutex
		lats     []float64
		nextJob  atomic.Int64
		firstErr atomic.Value
	)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed + int64(w)))
			user := "user" + strconv.Itoa(w%users)
			batches := 0
			for {
				lo := nextJob.Add(int64(batch))
				if lo-int64(batch) >= int64(jobs) {
					return
				}
				n := batch
				if over := lo - int64(jobs); over > 0 {
					n -= int(over)
				}
				specs := make([]jobSpec, n)
				for i := range specs {
					specs[i] = jobSpec{
						Name:     fmt.Sprintf("j%d", lo-int64(batch)+int64(i)),
						User:     user,
						Nodes:    1 + r.Intn(32),
						Estimate: int64(60 * (1 + r.Intn(240))),
					}
				}
				lat, outcome, err := submit(client, base, session, user, specs, noRetry, &rep.Retries)
				if err != nil {
					firstErr.Store(err)
					return
				}
				mu.Lock()
				rep.Batches++
				switch outcome {
				case http.StatusOK:
					rep.Admitted++
					rep.Jobs += int64(n)
					lats = append(lats, lat)
				case http.StatusTooManyRequests:
					rep.RateLimited++
				case http.StatusServiceUnavailable:
					rep.Shed++
				default:
					rep.Errors++
				}
				mu.Unlock()
				batches++
				if advEvery > 0 && batches%advEvery == 0 {
					if err := advance(client, base, session, int64(batches)*30); err != nil {
						firstErr.Store(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return nil, err
	}
	rep.Seconds = time.Since(start).Seconds()
	if rep.Seconds > 0 {
		rep.JobsPerSec = float64(rep.Jobs) / rep.Seconds
	}
	sort.Float64s(lats)
	rep.P50ms = percentile(lats, 0.50)
	rep.P90ms = percentile(lats, 0.90)
	rep.P95ms = percentile(lats, 0.95)
	rep.P99ms = percentile(lats, 0.99)
	if len(lats) > 0 {
		rep.MaxMs = lats[len(lats)-1]
	}
	return &rep, nil
}

// submit posts one batch, honoring Retry-After unless noRetry. Returns
// the last attempt's latency in ms and its status code.
func submit(client *http.Client, base, session, user string, specs []jobSpec, noRetry bool, retries *int64) (float64, int, error) {
	body, err := json.Marshal(map[string]any{"jobs": specs})
	if err != nil {
		return 0, 0, err
	}
	for {
		req, err := http.NewRequest(http.MethodPost, base+"/v1/sessions/"+session+"/jobs", bytes.NewReader(body))
		if err != nil {
			return 0, 0, err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-User", user)
		t0 := time.Now()
		resp, err := client.Do(req)
		if err != nil {
			return 0, 0, err
		}
		lat := float64(time.Since(t0).Microseconds()) / 1000
		status := resp.StatusCode
		retryAfter := resp.Header.Get("Retry-After")
		drainClose(resp)
		if status == http.StatusOK || noRetry {
			return lat, status, nil
		}
		if status != http.StatusTooManyRequests && status != http.StatusServiceUnavailable {
			return lat, status, nil
		}
		secs, err := strconv.ParseFloat(retryAfter, 64)
		if err != nil || secs <= 0 {
			secs = 1
		}
		atomic.AddInt64(retries, 1)
		time.Sleep(time.Duration(secs * float64(time.Second)))
	}
}

func advance(client *http.Client, base, session string, to int64) error {
	body, err := json.Marshal(map[string]int64{"to": to})
	if err != nil {
		return err
	}
	resp, err := client.Post(base+"/v1/sessions/"+session+"/advance", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer drainClose(resp)
	// 503 during drain or overload is an accepted answer for the pacer;
	// anything else unexpected is too coarse to fail the run over.
	return nil
}

// percentile is the nearest-rank percentile of a sorted slice.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// drainClose releases a response so the connection can be reused.
func drainClose(resp *http.Response) {
	_, cerr := io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	_ = cerr // best-effort connection reuse
	cerr = resp.Body.Close()
	_ = cerr // nothing actionable on a failed close
}
