// Command jobschedd is the scheduler-as-a-service daemon: it serves the
// deterministic sim/sched core over HTTP/JSON, multiplexing independent
// machine sessions with per-user admission control, bounded queues, and
// crash recovery from a write-ahead log plus periodic snapshots.
//
// Usage:
//
//	jobschedd -addr :8080 -data ./data [-rate 100] [-burst 200]
//	          [-timeout 10s] [-snapshot-every 256] [-audit]
//	          [-addrfile path]
//
// Durability contract: a submission or advance is acknowledged only
// after it is applied and fsynced to the session's WAL, so a kill -9 at
// any moment loses no acknowledged operation — restarting on the same
// -data directory replays to the identical state (see DESIGN.md §15).
// On SIGTERM/SIGINT the daemon drains: new work is refused with 503,
// in-flight commits finish, final snapshots are flushed, and the
// process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"jobsched/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		addrFile = flag.String("addrfile", "", "write the bound address to this file once listening (for scripts using port 0)")
		dataDir  = flag.String("data", "./jobschedd-data", "data directory holding the durable sessions")
		rate     = flag.Float64("rate", 0, "per-user admitted jobs per second (0 = unlimited)")
		burst    = flag.Float64("burst", 0, "per-user burst size in jobs (0 = 2×rate)")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-request timeout, including queue wait and WAL fsync")
		snapEach = flag.Int("snapshot-every", 256, "snapshot a session after this many WAL records")
		intake   = flag.Int("intake", 256, "per-session bounded operation queue depth (full = 503)")
		audit    = flag.Bool("audit", false, "record per-session decision traces to audit.jsonl")
		drainFor = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for sessions to flush")
	)
	flag.Parse()
	log.SetPrefix("jobschedd: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	if err := run(*addr, *addrFile, *dataDir, *rate, *burst, *timeout, *snapEach, *intake, *audit, *drainFor); err != nil {
		log.Fatal(err)
	}
}

func run(addr, addrFile, dataDir string, rate, burst float64, timeout time.Duration, snapEach, intake int, audit bool, drainFor time.Duration) error {
	store, err := serve.OpenStore(dataDir, serve.StoreOptions{
		SnapshotEvery: snapEach,
		IntakeDepth:   intake,
		Audit:         audit,
		Logf:          log.Printf,
	})
	if err != nil {
		return err
	}
	srv := serve.NewServer(store, serve.ServerOptions{
		RequestTimeout: timeout,
		Rate:           rate,
		Burst:          burst,
		Logf:           log.Printf,
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("listening on %s (data: %s, rate: %g jobs/s/user)", ln.Addr(), dataDir, rate)
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			return fmt.Errorf("writing addrfile: %w", err)
		}
	}

	httpSrv := &http.Server{Handler: srv, ReadHeaderTimeout: 5 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case got := <-sig:
		log.Printf("received %v: draining", got)
	case err := <-serveErr:
		return fmt.Errorf("http server: %w", err)
	}

	// Graceful shutdown, in dependency order: refuse new mutations
	// (503 + Retry-After), let in-flight HTTP requests finish, then
	// drain the session workers and flush final snapshots.
	store.StartDraining()
	ctx, cancel := context.WithTimeout(context.Background(), drainFor)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := store.Drain(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("http server: %w", err)
	}
	log.Printf("drained cleanly")
	return nil
}
