// Command pareto demonstrates the paper's Section 2.2 methodology on the
// Example 1 chemistry scenario: it sweeps a family of schedules over the
// two conflicting criteria (drug-design response time vs. lab-course
// availability), prints the Pareto-optimal schedules with their partial-
// order ranks (Figure 1), and compares the on-line and off-line
// achievable regions (Figure 2).
//
// Usage:
//
//	pareto [-days 10] [-seed 1] [-csv out.csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"jobsched/internal/objective"
	"jobsched/internal/policy"
)

func main() {
	var (
		days = flag.Int("days", 10, "scenario length in days")
		seed = flag.Int64("seed", 1, "scenario seed")
		csv  = flag.String("csv", "", "write the point clouds as CSV")
	)
	flag.Parse()
	if err := run(*days, *seed, *csv); err != nil {
		fmt.Fprintln(os.Stderr, "pareto:", err)
		os.Exit(1)
	}
}

var reserves = []float64{0, 0.25, 0.5, 0.75, 1}

func run(days int, seed int64, csv string) error {
	sc := policy.ChemistryScenario(seed, days)
	fmt.Printf("Example 1 scenario: %d jobs, %d-node machine, %d course sessions\n\n",
		len(sc.Jobs), sc.Machine.Nodes, len(sc.Sessions))

	// Figure 1: Pareto front + partial order.
	ranked, err := policy.Figure1(sc, reserves)
	if err != nil {
		return err
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].Rank > ranked[j].Rank })
	fmt.Println("Figure 1. Schedules in the two-criteria space")
	fmt.Printf("  %-28s %-22s %-16s %s\n", "schedule", "drug response (s)", "course miss (%)", "rank")
	for _, p := range ranked {
		rank := fmt.Sprintf("%d", p.Rank)
		if p.Rank < 0 {
			rank = "dominated"
		}
		fmt.Printf("  %-28s %-22.0f %-16.1f %s\n", p.Label, p.Criteria[0], p.Criteria[1], rank)
	}
	fmt.Println()

	// Figure 2: on-line vs off-line regions.
	online, offline, err := policy.Figure2(sc, reserves)
	if err != nil {
		return err
	}
	fmt.Println("Figure 2. On-line versus off-line achievable schedules")
	summarize := func(name string, pts []objective.Point) {
		bestDrug, bestMiss := pts[0].Criteria[0], pts[0].Criteria[1]
		for _, p := range pts {
			if p.Criteria[0] < bestDrug {
				bestDrug = p.Criteria[0]
			}
			if p.Criteria[1] < bestMiss {
				bestMiss = p.Criteria[1]
			}
		}
		fmt.Printf("  %-9s %d schedules, best drug response %.0f s, best course miss %.1f%%\n",
			name, len(pts), bestDrug, bestMiss)
	}
	summarize("on-line", online)
	summarize("off-line", offline)

	if csv != "" {
		f, err := os.Create(csv)
		if err != nil {
			return err
		}
		// bufio-free writes: the first failed Fprint latches no state, so
		// every row's error and the Close error must both be surfaced.
		werr := func() error {
			if _, err := fmt.Fprintln(f, "set,label,drug_response_s,course_miss_pct,rank"); err != nil {
				return err
			}
			for _, p := range ranked {
				if _, err := fmt.Fprintf(f, "figure1,%s,%g,%g,%d\n", p.Label, p.Criteria[0], p.Criteria[1], p.Rank); err != nil {
					return err
				}
			}
			for _, p := range online {
				if _, err := fmt.Fprintf(f, "online,%s,%g,%g,\n", p.Label, p.Criteria[0], p.Criteria[1]); err != nil {
					return err
				}
			}
			for _, p := range offline {
				if _, err := fmt.Fprintf(f, "offline,%s,%g,%g,\n", p.Label, p.Criteria[0], p.Criteria[1]); err != nil {
					return err
				}
			}
			return nil
		}()
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		fmt.Printf("\n(points written to %s)\n", csv)
	}
	return nil
}
