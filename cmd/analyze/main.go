// Command analyze inspects a workload (SWF file or generated) and
// optionally simulates one algorithm over it, reporting distribution
// statistics, model-fit quality, optimality gaps against theoretical
// lower bounds, and schedule time series.
//
// Usage:
//
//	analyze -in trace.swf
//	analyze -workload ctc -jobs 5000 -simulate -order SMART-FFIA -start EASY-Backfilling
//	analyze -workload random -simulate -gantt
//	analyze -explain 42 -trace run.jsonl   # why did job 42 wait? ("-" = stdin)
//	analyze -allocs allocs.jsonl           # replay a streaming spill file
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"jobsched/internal/analysis"
	"jobsched/internal/bounds"
	"jobsched/internal/cli"
	"jobsched/internal/core"
	"jobsched/internal/job"
	"jobsched/internal/sched"
	"jobsched/internal/sim"
	"jobsched/internal/stats"
	"jobsched/internal/telemetry"
	"jobsched/internal/workload"
)

func main() {
	var (
		in        = flag.String("in", "", "SWF input file")
		wl        = flag.String("workload", "", "generate instead: ctc, prob, random")
		n         = flag.Int("jobs", 5000, "jobs for generated workloads")
		nodes     = flag.Int("nodes", 256, "machine size")
		seed      = flag.Int64("seed", 1, "generation seed")
		simulate  = flag.Bool("simulate", false, "also simulate and analyze the schedule")
		order     = flag.String("order", "FCFS", "order policy for -simulate")
		start     = flag.String("start", "EASY-Backfilling", "start policy for -simulate")
		gantt     = flag.Bool("gantt", false, "render an ASCII Gantt chart (-simulate)")
		csvDir    = flag.String("csv", "", "write utilization/backlog series CSVs here")
		explain   = flag.Int64("explain", -1, "explain this job ID from a decision trace (-trace)")
		lost      = flag.Bool("lost", false, "summarize failure aborts and budget-exhausted jobs from a decision trace (-trace)")
		traceFile = flag.String("trace", "", "JSONL decision trace for -explain/-lost (\"-\" = stdin)")
		allocs    = flag.String("allocs", "", "replay a streaming allocation spill (simulate -stream -spill) and report its metrics (\"-\" = stdin)")
	)
	flag.Parse()
	if *allocs != "" {
		if err := runAllocs(*allocs, *nodes); err != nil {
			fmt.Fprintln(os.Stderr, "analyze:", err)
			os.Exit(1)
		}
		return
	}
	if *explain >= 0 {
		if err := runExplain(*explain, *traceFile); err != nil {
			fmt.Fprintln(os.Stderr, "analyze:", err)
			os.Exit(1)
		}
		return
	}
	if *lost {
		if err := runLost(*traceFile); err != nil {
			fmt.Fprintln(os.Stderr, "analyze:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*in, *wl, *n, *nodes, *seed, *simulate, *order, *start, *gantt, *csvDir); err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
}

// runExplain is the explain mode: read a decision trace (written by
// `simulate -trace` or `evaluate -trace`) and reconstruct why the job
// waited — its blocking head, the shadow times computed against it, and
// the jobs that overtook it.
func runExplain(id int64, traceFile string) error {
	events, err := readTrace(traceFile)
	if err != nil {
		return err
	}
	fmt.Printf("== job %d (trace: %d events) ==\n", id, len(events))
	return analysis.Explain(os.Stdout, events, id)
}

// readTrace loads a JSONL decision trace ("-" = stdin).
func readTrace(traceFile string) ([]telemetry.Event, error) {
	if traceFile == "" {
		return nil, fmt.Errorf("this mode needs -trace FILE (write one with `simulate -trace`)")
	}
	var r io.Reader
	if traceFile == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(traceFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return telemetry.ReadJSONL(r)
}

// runAllocs replays an allocation spill file (one sim.AllocRecord per
// line, written by `simulate -stream -spill`) through the aggregate
// collector — the bounded-memory run's metrics, recomputed offline.
func runAllocs(path string, nodes int) error {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	agg := &sim.Aggregates{}
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec sim.AllocRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return fmt.Errorf("%s: line %d: %w", path, line, err)
		}
		if err := agg.Emit(rec.Allocation()); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	util := 0.0
	if agg.Makespan > 0 && nodes > 0 {
		util = agg.UsedArea / (float64(agg.Makespan) * float64(nodes))
	}
	fmt.Printf("== allocation spill (%d records) ==\n", agg.Jobs)
	fmt.Printf("completed jobs:             %d (%d killed at estimate, %d aborted attempts)\n",
		agg.Completed, agg.Killed, agg.AbortedAttempts)
	fmt.Printf("avg response time:          %.4g s\n", agg.AvgResponseTime())
	fmt.Printf("avg weighted response time: %.4g node-s^2\n", agg.AvgWeightedResponseTime())
	fmt.Printf("avg wait time:              %.4g s\n", agg.AvgWaitTime())
	fmt.Printf("makespan:                   %d s\n", agg.Makespan)
	fmt.Printf("utilization (%d nodes):    %.2f%%\n", nodes, util*100)
	return nil
}

// runLost is the failure-accounting mode: read a decision trace and
// summarize aborts, resubmissions and budget-exhausted (lost) jobs.
func runLost(traceFile string) error {
	events, err := readTrace(traceFile)
	if err != nil {
		return err
	}
	return analysis.LostReport(os.Stdout, events)
}

func run(in, wl string, n, nodes int, seed int64, simulate bool, order, start string, gantt bool, csvDir string) error {
	jobs, err := load(in, wl, n, nodes, seed)
	if err != nil {
		return err
	}
	fmt.Println("== workload ==")
	if err := analysis.WorkloadReport(os.Stdout, jobs, nodes); err != nil {
		return err
	}

	// Model-fit diagnostics (Section 6.2 verification).
	if m, err := workload.FitModel(jobs, nil); err == nil {
		sorted := job.SortBySubmit(job.CloneAll(jobs))
		inter := make([]float64, 0, len(sorted)-1)
		for i := 1; i < len(sorted); i++ {
			d := float64(sorted[i].Submit - sorted[i-1].Submit)
			if d < 1 {
				d = 1
			}
			inter = append(inter, d)
		}
		fmt.Printf("weibull fit:     k=%.3f λ=%.1f (interarrival KS distance %.4f)\n",
			m.Interarrival.K, m.Interarrival.Lambda,
			stats.KSAgainstCDF(inter, m.Interarrival.CDF))
	}

	// Theoretical lower bounds (Section 2.3).
	fmt.Println("\n== lower bounds (any non-preemptive schedule) ==")
	fmt.Printf("makespan:                   >= %d s\n", bounds.Makespan(jobs, nodes))
	lbResp := bounds.AvgResponseTime(jobs, nodes)
	fmt.Printf("avg response time:          >= %.4g s\n", lbResp)
	fmt.Printf("avg weighted response time: >= %.4g node-s^2\n",
		bounds.AvgWeightedResponseTime(jobs, nodes))

	if !simulate {
		return nil
	}
	alg, err := core.NewScheduler(sched.OrderName(order), sched.StartName(start), nodes, false)
	if err != nil {
		return err
	}
	res, err := core.Simulate(core.Machine{Nodes: nodes}, jobs, alg)
	if err != nil {
		return err
	}
	fmt.Printf("\n== schedule (%s) ==\n", alg.Name())
	fmt.Printf("avg response time:  %.4g s (gap vs bound: %.1f%%)\n",
		res.AvgResponse, bounds.Gap(res.AvgResponse, lbResp)*100)
	fmt.Printf("makespan:           %d s\n", res.Makespan)
	fmt.Printf("utilization:        %.1f%%\n", res.Utilization*100)
	util := analysis.UtilizationSeries(res.Schedule)
	backlog := analysis.BacklogSeries(res.Schedule)
	fmt.Printf("peak backlog:       %.0f jobs\n", analysis.MaxValue(backlog))
	fmt.Printf("mean utilization:   %.1f%% (time-weighted)\n", analysis.MeanValue(util)*100)

	if csvDir != "" {
		for _, series := range []struct {
			name    string
			samples []analysis.Sample
		}{{"utilization", util}, {"backlog", backlog}} {
			f, err := os.Create(fmt.Sprintf("%s/%s.csv", csvDir, series.name))
			if err != nil {
				return err
			}
			if err := analysis.SeriesCSV(f, series.name, series.samples); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		fmt.Printf("(series written to %s)\n", csvDir)
	}
	if gantt {
		fmt.Println()
		return analysis.Gantt(os.Stdout, res.Schedule, analysis.GanttConfig{})
	}
	return nil
}

func load(in, wl string, n, nodes int, seed int64) ([]*job.Job, error) {
	kind := wl
	if in != "" {
		kind = "swf"
	}
	if kind == "" {
		return nil, fmt.Errorf("need -in or -workload")
	}
	jobs, _, err := cli.Load(cli.LoadOptions{
		Kind: kind, Path: in, Jobs: n, MachineNodes: nodes, Seed: seed,
	})
	return jobs, err
}
