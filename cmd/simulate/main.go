// Command simulate runs a single scheduling algorithm over a single
// workload and prints detailed metrics — the "one cell" view of the
// paper's evaluation grid.
//
// Usage:
//
//	simulate -order FCFS -start EASY-Backfilling -workload ctc -jobs 10000
//	simulate -order SMART-FFIA -start Backfilling -weighted -workload random
//	simulate -workload swf -in trace.swf
//	simulate -trace run.jsonl -counters   # decision trace + run counters
//	simulate -mtbf 86400 -mttr 3600 -retries 3 -backoff 60   # failure sweep
//	simulate -stream -workload swf -in huge.swf -spill allocs.jsonl
//	simulate -stream -workload stream -jobs 10000000 -load 0.7 -memstats
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"jobsched/internal/cli"
	"jobsched/internal/core"
	"jobsched/internal/faults"
	"jobsched/internal/job"
	"jobsched/internal/sched"
	"jobsched/internal/sim"
	"jobsched/internal/telemetry"
	"jobsched/internal/trace"
)

func main() {
	var (
		order    = flag.String("order", "FCFS", "order policy: FCFS, PSRS, SMART-FFIA, SMART-NFIW, Garey&Graham")
		start    = flag.String("start", "EASY-Backfilling", "start policy: List, Backfilling, EASY-Backfilling")
		weighted = flag.Bool("weighted", false, "use the weighted objective's scheduling weights")
		wl       = flag.String("workload", "ctc", "workload: ctc, prob, random, swf (and stream with -stream)")
		in       = flag.String("in", "", "SWF input file (workload=swf)")
		jobs     = flag.Int("jobs", 10000, "number of jobs (generated workloads)")
		nodes    = flag.Int("nodes", 256, "batch partition size")
		seed     = flag.Int64("seed", 1, "generation seed")
		exact    = flag.Bool("exact", false, "replace estimates by exact runtimes (Section 6.1)")
		traceOut = flag.String("trace", "", "write a JSONL decision trace to this file (see analyze -explain)")
		counters = flag.Bool("counters", false, "print run counters (passes, backfill, profile ops)")
		stream   = flag.Bool("stream", false, "bounded-memory streaming run: pull arrivals incrementally, keep aggregates instead of the full schedule (workload=swf or stream)")
		spill    = flag.String("spill", "", "with -stream, spill finalized allocations as JSONL to this file (see analyze -allocs)")
		load     = flag.Float64("load", 0.7, "with -stream -workload stream, target offered load of the synthetic generator")
		memstats = flag.Bool("memstats", false, "sample the heap during the run and report the peak")
		fo       = cli.AddFaultFlags(flag.CommandLine)
	)
	flag.Parse()
	var err error
	if *stream {
		if fo.Enabled() {
			err = fmt.Errorf("fault injection needs the workload span up front; not supported with -stream")
		} else {
			err = runStream(*order, *start, *weighted, *wl, *in, *jobs, *nodes, *seed, *load, *spill, *counters, *memstats)
		}
	} else {
		err = run(*order, *start, *weighted, *wl, *in, *jobs, *nodes, *seed, *exact, *traceOut, *counters, *memstats, fo)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
}

// heapSampler polls the runtime's heap size in the background and
// remembers the peak — the number the streaming memory-ceiling claims
// are checked against. Sampling every few milliseconds is coarse but
// unbiased; the engine allocates steadily, not in one spike.
type heapSampler struct {
	peak atomic.Uint64
	stop chan struct{}
	done chan struct{}
}

func startHeapSampler() *heapSampler {
	s := &heapSampler{stop: make(chan struct{}), done: make(chan struct{})}
	s.sample()
	go func() {
		defer close(s.done)
		t := time.NewTicker(5 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.sample()
			case <-s.stop:
				s.sample()
				return
			}
		}
	}()
	return s
}

func (s *heapSampler) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	for {
		old := s.peak.Load()
		if ms.HeapAlloc <= old || s.peak.CompareAndSwap(old, ms.HeapAlloc) {
			return
		}
	}
}

// Peak stops the sampler and returns the largest observed heap size.
func (s *heapSampler) Peak() uint64 {
	close(s.stop)
	<-s.done
	return s.peak.Load()
}

// runStream is the bounded-memory path: arrivals are pulled from a
// streaming source and finalized allocations go to an aggregate
// collector (plus an optional JSONL spill) instead of being retained.
func runStream(order, start string, weighted bool, wl, in string, n, nodes int, seed int64, load float64, spill string, counters, memstats bool) error {
	src, err := cli.OpenSource(cli.LoadOptions{
		Kind: wl, Path: in, Jobs: n, MachineNodes: nodes, Seed: seed,
	}, load)
	if err != nil {
		return err
	}
	defer src.Close()

	var hooks telemetry.Hooks
	var cnt *telemetry.Counters
	if counters {
		cnt = telemetry.NewCounters()
		// Bound the sampled series so counters stay O(1) over a 10M-job
		// run; extrema stay exact.
		cnt.SampleCap = 4096
		hooks = cnt.Hooks()
	}
	var sampler *heapSampler
	if memstats {
		sampler = startHeapSampler()
	}

	agg := &sim.Aggregates{}
	sink := sim.Sink(agg)
	var sf *os.File
	if spill != "" {
		sf, err = os.Create(spill)
		if err != nil {
			return err
		}
		defer sf.Close()
		sink = sim.MultiSink{agg, sim.NewAllocEncoder(sf)}
	}

	s, err := core.NewSchedulerWith(sched.OrderName(order), sched.StartName(start), nodes, weighted, hooks)
	if err != nil {
		return err
	}
	started := time.Now()
	res, err := sim.RunStream(sim.Machine{Nodes: nodes}, src, s, sim.Options{
		Recorder: hooks.Recorder,
		Sink:     sink,
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(started)
	if sf != nil {
		if err := sf.Close(); err != nil {
			return fmt.Errorf("writing %s: %w", spill, err)
		}
		fmt.Fprintf(os.Stderr, "simulate: allocation spill written to %s\n", spill)
	}
	if src.Removed() > 0 {
		fmt.Fprintf(os.Stderr, "simulate: skipped %d jobs wider than %d nodes\n", src.Removed(), nodes)
	}

	util := 0.0
	if agg.Makespan > 0 {
		util = agg.UsedArea / (float64(agg.Makespan) * float64(nodes))
	}
	fmt.Printf("algorithm:                       %s\n", s.Name())
	fmt.Printf("jobs completed:                  %d (streamed)\n", agg.Completed)
	fmt.Printf("machine nodes:                   %d\n", nodes)
	fmt.Printf("average response time:           %.4g s\n", agg.AvgResponseTime())
	fmt.Printf("average weighted response time:  %.4g node-s^2\n", agg.AvgWeightedResponseTime())
	fmt.Printf("average wait time:               %.4g s\n", agg.AvgWaitTime())
	fmt.Printf("makespan:                        %d s\n", agg.Makespan)
	fmt.Printf("utilization:                     %.2f%%\n", util*100)
	fmt.Printf("max queue length:                %d\n", res.MaxQueue)
	fmt.Printf("wall time:                       %s\n", elapsed.Round(time.Millisecond))
	if sampler != nil {
		fmt.Printf("peak heap (sampled):             %.1f MiB\n", float64(sampler.Peak())/(1<<20))
	}
	if cnt != nil {
		fmt.Println("\n== run counters ==")
		return cnt.Report(os.Stdout)
	}
	return nil
}

func run(order, start string, weighted bool, wl, in string, n, nodes int, seed int64, exact bool, traceOut string, counters, memstats bool, fo *cli.FaultOptions) error {
	var sampler *heapSampler
	if memstats {
		sampler = startHeapSampler()
	}
	js, err := loadWorkload(wl, in, n, nodes, seed)
	if err != nil {
		return err
	}
	if exact {
		js = trace.WithExactEstimates(js)
	}

	// Telemetry: a JSONL trace file and/or in-process counters. Both off
	// leaves the zero Hooks — the nil-recorder fast path.
	var (
		hooks telemetry.Hooks
		cnt   *telemetry.Counters
		jl    *telemetry.JSONL
		tf    *os.File
	)
	if counters {
		cnt = telemetry.NewCounters()
		hooks = cnt.Hooks()
	}
	if traceOut != "" {
		tf, err = os.Create(traceOut)
		if err != nil {
			return err
		}
		defer tf.Close()
		jl = telemetry.NewJSONL(tf)
		hooks.Recorder = telemetry.Multi(hooks.Recorder, jl)
	}

	// Failure injection: compile the fault flags into an outage schedule
	// over the workload's span; maintenance windows are announced to the
	// scheduler so it reserves around them.
	var plan faults.Plan
	if fo.Enabled() {
		_, last := job.Span(js)
		plan, err = fo.Plan(nodes, last)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "simulate: injecting %d failures (%d announced)\n",
			len(plan.Failures), len(plan.Announced))
	}

	s, err := core.NewFailureAwareScheduler(sched.OrderName(order), sched.StartName(start),
		nodes, weighted, plan.Announced, hooks)
	if err != nil {
		return err
	}
	res, err := core.SimulateWith(core.Machine{Nodes: nodes}, js, s, sim.Options{
		Recorder: hooks.Recorder,
		Failures: plan.Failures,
		Resubmit: fo.Resubmit(),
	})
	if err != nil {
		return err
	}
	if jl != nil {
		if err := jl.Flush(); err != nil {
			return fmt.Errorf("writing %s: %w", traceOut, err)
		}
		if err := tf.Close(); err != nil {
			return fmt.Errorf("writing %s: %w", traceOut, err)
		}
		fmt.Fprintf(os.Stderr, "simulate: decision trace written to %s\n", traceOut)
	}
	fmt.Printf("algorithm:                       %s\n", s.Name())
	fmt.Printf("jobs:                            %d\n", len(js))
	fmt.Printf("machine nodes:                   %d\n", nodes)
	fmt.Printf("average response time:           %.4g s\n", res.AvgResponse)
	fmt.Printf("average weighted response time:  %.4g node-s^2\n", res.AvgWeightedResponse)
	fmt.Printf("average wait time:               %.4g s\n", res.AvgWait)
	fmt.Printf("makespan:                        %d s\n", res.Makespan)
	fmt.Printf("utilization:                     %.2f%%\n", res.Utilization*100)
	fmt.Printf("max queue length:                %d\n", res.MaxQueue)
	if fo.Enabled() {
		fmt.Printf("aborted attempts:                %d\n", res.Aborted)
		fmt.Printf("resubmissions:                   %d\n", res.Resubmits)
		fmt.Printf("lost jobs:                       %d\n", res.Lost)
	}
	if sampler != nil {
		fmt.Printf("peak heap (sampled):             %.1f MiB\n", float64(sampler.Peak())/(1<<20))
	}
	if cnt != nil {
		fmt.Println("\n== run counters ==")
		return cnt.Report(os.Stdout)
	}
	return nil
}

func loadWorkload(wl, in string, n, nodes int, seed int64) ([]*job.Job, error) {
	jobs, removed, err := cli.Load(cli.LoadOptions{
		Kind: wl, Path: in, Jobs: n, MachineNodes: nodes, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	if removed > 0 {
		fmt.Fprintf(os.Stderr, "simulate: deleted %d jobs wider than %d nodes\n", removed, nodes)
	}
	return jobs, nil
}
