// Command simulate runs a single scheduling algorithm over a single
// workload and prints detailed metrics — the "one cell" view of the
// paper's evaluation grid.
//
// Usage:
//
//	simulate -order FCFS -start EASY-Backfilling -workload ctc -jobs 10000
//	simulate -order SMART-FFIA -start Backfilling -weighted -workload random
//	simulate -workload swf -in trace.swf
//	simulate -trace run.jsonl -counters   # decision trace + run counters
//	simulate -mtbf 86400 -mttr 3600 -retries 3 -backoff 60   # failure sweep
package main

import (
	"flag"
	"fmt"
	"os"

	"jobsched/internal/cli"
	"jobsched/internal/core"
	"jobsched/internal/faults"
	"jobsched/internal/job"
	"jobsched/internal/sched"
	"jobsched/internal/sim"
	"jobsched/internal/telemetry"
	"jobsched/internal/trace"
)

func main() {
	var (
		order    = flag.String("order", "FCFS", "order policy: FCFS, PSRS, SMART-FFIA, SMART-NFIW, Garey&Graham")
		start    = flag.String("start", "EASY-Backfilling", "start policy: List, Backfilling, EASY-Backfilling")
		weighted = flag.Bool("weighted", false, "use the weighted objective's scheduling weights")
		wl       = flag.String("workload", "ctc", "workload: ctc, prob, random, swf")
		in       = flag.String("in", "", "SWF input file (workload=swf)")
		jobs     = flag.Int("jobs", 10000, "number of jobs (generated workloads)")
		nodes    = flag.Int("nodes", 256, "batch partition size")
		seed     = flag.Int64("seed", 1, "generation seed")
		exact    = flag.Bool("exact", false, "replace estimates by exact runtimes (Section 6.1)")
		traceOut = flag.String("trace", "", "write a JSONL decision trace to this file (see analyze -explain)")
		counters = flag.Bool("counters", false, "print run counters (passes, backfill, profile ops)")
		fo       = cli.AddFaultFlags(flag.CommandLine)
	)
	flag.Parse()
	if err := run(*order, *start, *weighted, *wl, *in, *jobs, *nodes, *seed, *exact, *traceOut, *counters, fo); err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
}

func run(order, start string, weighted bool, wl, in string, n, nodes int, seed int64, exact bool, traceOut string, counters bool, fo *cli.FaultOptions) error {
	js, err := loadWorkload(wl, in, n, nodes, seed)
	if err != nil {
		return err
	}
	if exact {
		js = trace.WithExactEstimates(js)
	}

	// Telemetry: a JSONL trace file and/or in-process counters. Both off
	// leaves the zero Hooks — the nil-recorder fast path.
	var (
		hooks telemetry.Hooks
		cnt   *telemetry.Counters
		jl    *telemetry.JSONL
		tf    *os.File
	)
	if counters {
		cnt = telemetry.NewCounters()
		hooks = cnt.Hooks()
	}
	if traceOut != "" {
		tf, err = os.Create(traceOut)
		if err != nil {
			return err
		}
		defer tf.Close()
		jl = telemetry.NewJSONL(tf)
		hooks.Recorder = telemetry.Multi(hooks.Recorder, jl)
	}

	// Failure injection: compile the fault flags into an outage schedule
	// over the workload's span; maintenance windows are announced to the
	// scheduler so it reserves around them.
	var plan faults.Plan
	if fo.Enabled() {
		_, last := job.Span(js)
		plan, err = fo.Plan(nodes, last)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "simulate: injecting %d failures (%d announced)\n",
			len(plan.Failures), len(plan.Announced))
	}

	s, err := core.NewFailureAwareScheduler(sched.OrderName(order), sched.StartName(start),
		nodes, weighted, plan.Announced, hooks)
	if err != nil {
		return err
	}
	res, err := core.SimulateWith(core.Machine{Nodes: nodes}, js, s, sim.Options{
		Recorder: hooks.Recorder,
		Failures: plan.Failures,
		Resubmit: fo.Resubmit(),
	})
	if err != nil {
		return err
	}
	if jl != nil {
		if err := jl.Flush(); err != nil {
			return fmt.Errorf("writing %s: %w", traceOut, err)
		}
		if err := tf.Close(); err != nil {
			return fmt.Errorf("writing %s: %w", traceOut, err)
		}
		fmt.Fprintf(os.Stderr, "simulate: decision trace written to %s\n", traceOut)
	}
	fmt.Printf("algorithm:                       %s\n", s.Name())
	fmt.Printf("jobs:                            %d\n", len(js))
	fmt.Printf("machine nodes:                   %d\n", nodes)
	fmt.Printf("average response time:           %.4g s\n", res.AvgResponse)
	fmt.Printf("average weighted response time:  %.4g node-s^2\n", res.AvgWeightedResponse)
	fmt.Printf("average wait time:               %.4g s\n", res.AvgWait)
	fmt.Printf("makespan:                        %d s\n", res.Makespan)
	fmt.Printf("utilization:                     %.2f%%\n", res.Utilization*100)
	fmt.Printf("max queue length:                %d\n", res.MaxQueue)
	if fo.Enabled() {
		fmt.Printf("aborted attempts:                %d\n", res.Aborted)
		fmt.Printf("resubmissions:                   %d\n", res.Resubmits)
		fmt.Printf("lost jobs:                       %d\n", res.Lost)
	}
	if cnt != nil {
		fmt.Println("\n== run counters ==")
		return cnt.Report(os.Stdout)
	}
	return nil
}

func loadWorkload(wl, in string, n, nodes int, seed int64) ([]*job.Job, error) {
	jobs, removed, err := cli.Load(cli.LoadOptions{
		Kind: wl, Path: in, Jobs: n, MachineNodes: nodes, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	if removed > 0 {
		fmt.Fprintf(os.Stderr, "simulate: deleted %d jobs wider than %d nodes\n", removed, nodes)
	}
	return jobs, nil
}
