// Command jobschedlint runs jobsched's repo-specific static-analysis
// suite (internal/lint): the determinism (maprange), wallclock-hygiene,
// telemetry-guard, checked-arithmetic and sim-purity analyzers, plus the
// protocol-aware contract analyzers — passprotocol (kernel batch passes
// open and close in one frame), streamcontract (Source.Next sentinel
// handling, no Sink+Validate, bounded job retention), journalsync
// (fsync-before-rename and success-only journal appends) and errflow
// (no silently dropped errors in the core layers). Together they
// mechanically enforce the invariants the paper's evaluation methodology
// assumes (replayable simulations, order-independent results, crash-safe
// evaluation). The wallclock and simpurity checks propagate transitively
// over each package's call graph, so wrapping a violation in a helper
// moves the diagnostic instead of silencing it.
//
// Usage:
//
//	jobschedlint [flags] [patterns]
//
// Patterns default to ./... (the whole module). Exit status: 0 when the
// tree is clean, 1 on findings, 2 on usage or load errors.
//
// Flags:
//
//	-json          machine-readable report (findings, suppressions, counts)
//	-suppressions  one "analyzer path reason" line per suppression (budget input)
//	-list          list the analyzers and the invariant each enforces
//	-analyzers a,b run only the named analyzers
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"jobsched/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("jobschedlint", flag.ContinueOnError)
	var (
		jsonOut      = fs.Bool("json", false, "emit a JSON report")
		suppressions = fs.Bool("suppressions", false, "list suppressed findings, one 'analyzer path reason' per line")
		list         = fs.Bool("list", false, "list analyzers and exit")
		only         = fs.String("analyzers", "", "comma-separated subset of analyzers to run")
	)
	fs.SetOutput(os.Stderr)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *only != "" {
		var err error
		analyzers, err = lint.ByName(strings.Split(*only, ",")...)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	patterns := fs.Args()
	pkgs, err := lint.Load(root, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	res := lint.Run(pkgs, analyzers)
	rel := func(name string) string {
		if r, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(r, "..") {
			return r
		}
		return name
	}

	switch {
	case *jsonOut:
		report := struct {
			Diagnostics      []lint.Diagnostic `json:"diagnostics"`
			Suppressed       []lint.Suppressed `json:"suppressed"`
			DiagnosticTotal  int               `json:"diagnostic_total"`
			SuppressedTotal  int               `json:"suppressed_total"`
			PackagesAnalyzed int               `json:"packages_analyzed"`
		}{
			Diagnostics:      relativized(res.Diagnostics, rel),
			Suppressed:       relativizedSup(res.Suppressed, rel),
			DiagnosticTotal:  len(res.Diagnostics),
			SuppressedTotal:  len(res.Suppressed),
			PackagesAnalyzed: len(pkgs),
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	case *suppressions:
		for _, s := range res.Suppressed {
			fmt.Printf("%s %s %s\n", s.Analyzer, rel(s.Pos.Filename), s.Reason)
		}
	default:
		for _, d := range res.Diagnostics {
			fmt.Printf("%s:%d:%d: %s: %s\n", rel(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
		if n := len(res.Diagnostics); n > 0 {
			fmt.Fprintf(os.Stderr, "jobschedlint: %d finding(s) in %d package(s)\n", n, len(pkgs))
		}
	}

	if len(res.Diagnostics) > 0 {
		return 1
	}
	return 0
}

func relativized(ds []lint.Diagnostic, rel func(string) string) []lint.Diagnostic {
	out := make([]lint.Diagnostic, len(ds))
	for i, d := range ds {
		d.Pos.Filename = rel(d.Pos.Filename)
		out[i] = d
	}
	return out
}

func relativizedSup(ss []lint.Suppressed, rel func(string) string) []lint.Suppressed {
	out := make([]lint.Suppressed, len(ss))
	for i, s := range ss {
		s.Pos.Filename = rel(s.Pos.Filename)
		out[i] = s
	}
	return out
}
