// Command evaluate reproduces the paper's full evaluation: Tables 1–8
// and the data series behind Figures 3–6.
//
// Usage:
//
//	evaluate [-full] [-table N] [-csv dir] [-nodes 256] [-seed 1]
//
// Without -full, scaled-down workloads (≈1/8 of the paper's job counts)
// are used so the whole run finishes in well under a minute; -full uses
// the paper-scale counts of Table 1 (79,164 / 50,000 / 50,000 jobs),
// which takes a few minutes. Shapes, not absolute values, are the
// reproduction target (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"jobsched/internal/cli"
	"jobsched/internal/eval"
	"jobsched/internal/job"
	"jobsched/internal/sched"
	"jobsched/internal/sim"
	"jobsched/internal/telemetry"
	"jobsched/internal/trace"
	"jobsched/internal/workload"
)

// robustness collects the hardening knobs of a grid run: crash-safe
// journaling with resume, error containment, the per-cell watchdog,
// sharding, and the failure-injection flags.
type robustness struct {
	journalPath string
	resume      bool
	keepGoing   bool
	cellWall    time.Duration
	shards      int
	shard       int
	fo          *cli.FaultOptions
}

func main() {
	var (
		full     = flag.Bool("full", false, "paper-scale job counts (slower)")
		scale    = flag.Int("scale", 0, "workload scale divisor (0 = default: 8, or 1 with -full); larger is faster")
		table    = flag.Int("table", 0, "only this table (1-8); 0 = all")
		csvDir   = flag.String("csv", "", "also write per-table CSV series (figures) to this directory")
		nodes    = flag.Int("nodes", 256, "batch partition size")
		seed     = flag.Int64("seed", 1, "workload generation seed")
		traceDir = flag.String("trace", "", "write one JSONL decision trace per grid cell to this directory (tables 3-6; see analyze -explain)")
		counters = flag.Bool("counters", false, "print per-cell run counters after each grid (tables 3-6)")
		merge    = flag.String("merge", "", "merge the shard journals given as positional arguments into this file, then exit")
		rb       robustness
	)
	flag.StringVar(&rb.journalPath, "journal", "", "crash-safe cell journal (JSONL); completed cells survive interruption")
	flag.BoolVar(&rb.resume, "resume", false, "restore completed cells from -journal instead of re-simulating them")
	flag.BoolVar(&rb.keepGoing, "keepgoing", false, "record a failing cell's error and continue instead of aborting the run")
	flag.DurationVar(&rb.cellWall, "cellwall", 0, "per-cell wall-clock budget (e.g. 5m); overruns become cell errors (0 = off)")
	flag.IntVar(&rb.shards, "shards", 1, "split every grid across this many worker processes; each simulates only the cells it owns")
	flag.IntVar(&rb.shard, "shard", 0, "this worker's shard index in [0, shards); requires -journal so the owned cells are recorded for -merge")
	rb.fo = cli.AddFaultFlags(flag.CommandLine)
	flag.Parse()
	if *merge != "" {
		if err := runMerge(*merge, flag.Args()); err != nil {
			fmt.Fprintln(os.Stderr, "evaluate:", err)
			os.Exit(1)
		}
		return
	}
	if rb.resume && rb.journalPath == "" {
		fmt.Fprintln(os.Stderr, "evaluate: -resume needs -journal")
		os.Exit(1)
	}
	if rb.shards > 1 && rb.journalPath == "" {
		fmt.Fprintln(os.Stderr, "evaluate: -shards needs -journal (the owned cells must be recorded for -merge)")
		os.Exit(1)
	}
	if err := run(*full, *scale, *table, *csvDir, *nodes, *seed, *traceDir, *counters, rb); err != nil {
		fmt.Fprintln(os.Stderr, "evaluate:", err)
		os.Exit(1)
	}
}

// runMerge unions shard journals (refusing mixed fingerprints) into one
// file a final `evaluate -journal merged -resume` can render from
// without re-simulating anything.
func runMerge(out string, srcs []string) error {
	if len(srcs) == 0 {
		return fmt.Errorf("-merge needs the shard journal paths as arguments")
	}
	if err := eval.MergeJournals(out, srcs...); err != nil {
		return err
	}
	j, err := eval.OpenJournal(out, true)
	if err != nil {
		return err
	}
	defer j.Close()
	fmt.Fprintf(os.Stderr, "evaluate: merged %d journals into %s (%d cells)\n",
		len(srcs), out, j.Completed())
	return nil
}

func run(full bool, scale, table int, csvDir string, nodes int, seed int64, traceDir string, counters bool, rb robustness) error {
	if scale <= 0 {
		scale = 8
		if full {
			scale = 1
		}
	}

	// ^C aborts the run cleanly between event batches: the engine polls
	// the flag, returns sim.ErrInterrupted, and journaled cells survive
	// for a -resume. A second ^C falls through to the default handler.
	var interrupted atomic.Bool
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt)
	defer signal.Stop(sigc)
	go func() {
		<-sigc
		interrupted.Store(true)
		signal.Stop(sigc)
	}()

	var journal *eval.Journal
	if rb.journalPath != "" {
		var err error
		journal, err = eval.OpenJournal(rb.journalPath, rb.resume)
		if err != nil {
			return err
		}
		defer journal.Close()
		if rb.resume && journal.Completed() > 0 {
			fmt.Fprintf(os.Stderr, "evaluate: resuming, %d cells restored from %s\n",
				journal.Completed(), rb.journalPath)
		}
	}

	// Workloads (Section 6).
	ctcCfg := workload.DefaultCTCConfig()
	ctcCfg.Jobs /= scale
	ctcCfg.SpanSeconds /= int64(scale)
	ctcCfg.Seed = seed
	ctcRaw := workload.CTC(ctcCfg)
	ctc, removed := trace.FilterMaxNodes(ctcRaw, nodes)

	m := sim.Machine{Nodes: nodes}
	want := func(n int) bool { return table == 0 || table == n }

	if want(1) {
		fmt.Println("Table 1. Number of jobs in various workloads")
		fmt.Printf("  %-26s %d (generated %d, %d deleted as wider than %d nodes)\n",
			"CTC", len(ctc), len(ctcRaw), removed, nodes)
		fmt.Printf("  %-26s %d\n", "Probability distribution", workload.ProbabilisticJobs/scale)
		fmt.Printf("  %-26s %d\n", "Randomized", workload.RandomizedJobs/scale)
		fmt.Println()
	}
	if want(2) {
		fmt.Println("Table 2. Parameters for randomized job generation")
		cfg := workload.DefaultRandomizedConfig()
		fmt.Printf("  Submission of jobs            >= 1 job per hour (gap <= %d s)\n", cfg.MaxGap)
		fmt.Printf("  Requested number of nodes     %d - %d\n", cfg.MinNodes, cfg.MaxNodes)
		fmt.Printf("  Upper limit for execution     %d s - %d s\n", cfg.MinLimit, cfg.MaxLimit)
		fmt.Printf("  Actual execution time         %d s - upper limit\n", cfg.MinRuntime)
		fmt.Println()
	}

	// Paper-scale saturated runs use the horizon-accelerated conservative
	// walk; scaled runs keep the exact semantics.
	gridOpts := eval.Options{
		Parallel:         true,
		Validate:         true,
		FastConservative: full,
		KeepGoing:        rb.keepGoing,
		CellTimeout:      rb.cellWall,
		Interrupt:        interrupted.Load,
		Journal:          journal,
		Resubmit:         rb.fo.Resubmit(),
		ShardCount:       rb.shards,
		ShardIndex:       rb.shard,
	}
	if journal != nil {
		// Stamp the journal with this evaluation's fingerprint: a -resume
		// (or a -merge input) recorded under different workloads, options
		// or fault flags is refused instead of serving stale cells. The
		// workloads are fully determined by (nodes, seed, scale), and the
		// per-table fault plans by the fault flags, so hashing those
		// inputs covers every cell value; sharding and resume knobs are
		// deliberately excluded so shards stamp identically.
		fp := eval.NewFingerprint()
		fp.Machine(m)
		fp.Int(int64(scale))
		fp.Int(seed)
		fp.Options(gridOpts)
		fp.Float(rb.fo.MTBF)
		fp.Float(rb.fo.MTTR)
		fp.Float(rb.fo.FailShape)
		fp.Float(rb.fo.RepairShape)
		fp.Int(int64(rb.fo.FailNodes))
		fp.Float(rb.fo.MaxDownFrac)
		fp.Int(rb.fo.Seed)
		fp.String(rb.fo.Maintenance)
		if err := journal.Stamp(fp.Sum()); err != nil {
			return err
		}
	}
	if rb.shards > 1 {
		fmt.Fprintf(os.Stderr, "evaluate: shard %d of %d — foreign cells are skipped; merge the shard journals to render full tables\n",
			rb.shard, rb.shards)
	}
	emit := func(name string, g *eval.Grid) error {
		if err := g.Render(os.Stdout); err != nil {
			return err
		}
		for _, c := range g.Cells {
			// Foreign cells of a sharded run are markers, not failures.
			if c.Err != "" && !strings.Contains(c.Err, "owned by shard") {
				fmt.Fprintf(os.Stderr, "evaluate: cell %s/%s failed: %s\n",
					c.Order, c.Start, firstLine(c.Err))
			}
		}
		if rb.fo.Enabled() {
			var aborted, resub, lost int
			for _, c := range g.Cells {
				aborted += c.Aborted
				resub += c.Resubmits
				lost += c.Lost
			}
			fmt.Printf("  (failures: %d aborted attempts, %d resubmissions, %d lost jobs across the grid)\n",
				aborted, resub, lost)
		}
		fmt.Println()
		if csvDir != "" {
			path := filepath.Join(csvDir, name+".csv")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := g.CSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("  (series written to %s)\n\n", path)
		}
		return nil
	}

	runBoth := func(title, name string, jobs []*workloadJob) error {
		opts := gridOpts
		if rb.fo.Enabled() {
			// One fault plan per workload, spanning its submissions; the
			// maintenance windows are announced to the schedulers.
			_, last := job.Span(jobs)
			plan, err := rb.fo.Plan(nodes, last)
			if err != nil {
				return err
			}
			opts.Failures = plan.Failures
			opts.Announced = plan.Announced
		}
		for _, c := range []eval.Case{eval.Unweighted, eval.Weighted} {
			gname := fmt.Sprintf("%s_%s", name, c)
			copts := opts
			hooks, finish := cellTelemetry(gname, traceDir, counters)
			copts.Hooks = hooks
			g, err := eval.Run(title, m, jobs, c, copts)
			if err != nil {
				return err
			}
			if err := emit(gname, g); err != nil {
				return err
			}
			if err := finish(); err != nil {
				return err
			}
		}
		return nil
	}

	if want(3) {
		fmt.Println("Table 3 / Figures 3-4. Average response time, CTC workload")
		if err := runBoth("CTC workload", "table3", ctc); err != nil {
			return err
		}
	}
	if want(4) {
		fmt.Println("Table 4 / Figure 5. Average response time, probability-distributed workload")
		prob, err := workload.Probabilistic(ctc, workload.ProbabilisticJobs/scale, seed+1)
		if err != nil {
			return err
		}
		if err := runBoth("Probability-distributed workload", "table4", prob); err != nil {
			return err
		}
	}
	if want(5) {
		fmt.Println("Table 5. Average response time, randomized workload")
		rcfg := workload.DefaultRandomizedConfig()
		rcfg.Jobs /= scale
		rcfg.Seed = seed + 2
		if err := runBoth("Randomized workload", "table5", workload.Randomized(rcfg)); err != nil {
			return err
		}
	}
	if want(6) {
		fmt.Println("Table 6 / Figure 6. CTC workload with exact job execution times")
		exact := trace.WithExactEstimates(ctc)
		if err := runBoth("CTC workload, exact runtimes", "table6", exact); err != nil {
			return err
		}
	}
	if want(7) {
		fmt.Println("Table 7. Scheduler computation time, CTC workload")
		if err := computeTimeTable("CTC workload", m, ctc, csvDir, "table7", interrupted.Load); err != nil {
			return err
		}
	}
	if want(8) {
		fmt.Println("Table 8. Scheduler computation time, probability-distributed workload")
		prob, err := workload.Probabilistic(ctc, workload.ProbabilisticJobs/scale, seed+1)
		if err != nil {
			return err
		}
		if err := computeTimeTable("Probability-distributed workload", m, prob, csvDir, "table8", interrupted.Load); err != nil {
			return err
		}
	}
	return nil
}

// workloadJob aliases the job type to keep helper signatures short.
type workloadJob = job.Job

// cellTelemetry builds the per-cell telemetry attachment for one grid run
// and a finish function that flushes trace files and prints the counter
// summary after the table renders. With both knobs off it returns a nil
// factory — the grid runs on the nil-recorder fast path. Each cell gets
// its own recorder, so the Parallel grid stays race-free; the factory is
// called from the worker goroutines and therefore locks its shared state.
func cellTelemetry(name, traceDir string, counters bool) (func(o sched.OrderName, s sched.StartName) telemetry.Hooks, func() error) {
	if traceDir == "" && !counters {
		return nil, func() error { return nil }
	}
	type cell struct {
		label string
		cnt   *telemetry.Counters
		jl    *telemetry.JSONL
		f     *os.File
	}
	var (
		mu    sync.Mutex
		cells []*cell
		fail  error
	)
	hooks := func(o sched.OrderName, s sched.StartName) telemetry.Hooks {
		c := &cell{label: fmt.Sprintf("%s/%s", o, s)}
		var h telemetry.Hooks
		if counters {
			c.cnt = telemetry.NewCounters()
			h = c.cnt.Hooks()
		}
		mu.Lock()
		defer mu.Unlock()
		if traceDir != "" && fail == nil {
			path := filepath.Join(traceDir, fmt.Sprintf("%s_%s_%s.jsonl",
				name, sanitize(string(o)), sanitize(string(s))))
			f, err := os.Create(path)
			if err != nil {
				fail = err
			} else {
				c.f = f
				c.jl = telemetry.NewJSONL(f)
				h.Recorder = telemetry.Multi(h.Recorder, c.jl)
			}
		}
		cells = append(cells, c)
		return h
	}
	finish := func() error {
		mu.Lock()
		defer mu.Unlock()
		if fail != nil {
			return fail
		}
		sort.Slice(cells, func(i, j int) bool { return cells[i].label < cells[j].label })
		for _, c := range cells {
			if c.jl == nil {
				continue
			}
			if err := c.jl.Flush(); err != nil {
				return fmt.Errorf("writing %s trace: %w", c.label, err)
			}
			if err := c.f.Close(); err != nil {
				return fmt.Errorf("writing %s trace: %w", c.label, err)
			}
		}
		if traceDir != "" {
			fmt.Fprintf(os.Stderr, "evaluate: decision traces for %s written to %s\n", name, traceDir)
		}
		if counters {
			fmt.Printf("  -- run counters (%s) --\n", name)
			for _, c := range cells {
				k := c.cnt
				var bfA, bfS int64
				for _, v := range k.BackfillAttempts {
					bfA += v
				}
				for _, v := range k.BackfillSuccesses {
					bfS += v
				}
				fmt.Printf("  %-32s passes=%-6d startable=%-6d starts=%-6d backfill=%d/%d profile-ops=%d\n",
					c.label, k.Passes, k.StartableCalls, k.Starts, bfS, bfA, k.Profile.Total())
			}
			fmt.Println()
		}
		return nil
	}
	return hooks, finish
}

// firstLine trims a multi-line cell error (panics carry their stack) to
// its headline for the per-cell summary.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// sanitize maps a policy name onto a filesystem-safe token
// ("Garey&Graham" -> "Garey-Graham").
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-':
			return r
		}
		return '-'
	}, s)
}

func computeTimeTable(title string, m sim.Machine, jobs []*workloadJob, csvDir, name string, interrupt func() bool) error {
	// Computation time must be measured serially so cells are comparable;
	// timings are not deterministic, so these tables are never journaled.
	for _, c := range []eval.Case{eval.Unweighted, eval.Weighted} {
		g, err := eval.Run(title, m, jobs, c, eval.Options{MeasureCPU: true, Interrupt: interrupt})
		if err != nil {
			return err
		}
		if err := g.RenderComputeTime(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		if csvDir != "" {
			path := filepath.Join(csvDir, fmt.Sprintf("%s_%s.csv", name, c))
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := g.CSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}
