// Chemistry walks through the paper's Section 2 methodology on the
// Example 1 department scenario: from conflicting policy rules to a
// two-criteria schedule space, the Pareto front, a partial order, and a
// scalar objective function that generates the order.
//
// Run with:
//
//	go run ./examples/chemistry
package main

import (
	"fmt"
	"log"

	"jobsched/internal/objective"
	"jobsched/internal/policy"
)

func main() {
	// Step 0 — the policy (Example 1): drug-design jobs as soon as
	// possible (rule 1), machine time for the theoretical chemistry lab
	// course (rule 5). The two rules conflict.
	sc := policy.ChemistryScenario(3, 10)
	fmt.Printf("scenario: %d jobs on %d nodes, %d course sessions\n\n",
		len(sc.Jobs), sc.Machine.Nodes, len(sc.Sessions))

	// Step 1 — determine a variety of schedules and keep the
	// Pareto-optimal ones (Figure 1).
	reserves := []float64{0, 0.25, 0.5, 0.75, 1}
	sweep, err := sc.Sweep(reserves, false)
	if err != nil {
		log.Fatal(err)
	}
	points := make([]objective.Point, len(sweep))
	for i, s := range sweep {
		points[i] = s.Point
	}
	front := objective.ParetoFront(points)
	fmt.Printf("step 1: %d schedules generated, %d Pareto-optimal\n", len(points), len(front))
	for _, p := range front {
		fmt.Printf("  %-28s drug response %6.0f s   course miss %5.1f%%\n",
			p.Label, p.Criteria[0], p.Criteria[1])
	}

	// Step 2 — a partial order: the department resolves the conflict in
	// favour of the drug design lab (it financed the machine).
	ranked := objective.RankPartialOrder(points, func(p objective.Point) float64 {
		return -p.Criteria[0]
	})
	fmt.Println("\nstep 2: partial order on the front (higher = preferred)")
	for _, p := range ranked {
		if p.Rank >= 0 {
			fmt.Printf("  rank %d: %s\n", p.Rank, p.Label)
		}
	}

	// Step 3 — derive a scalar objective that generates the order,
	// iterating over candidates as Section 2.2/2.4 prescribes: propose a
	// weighting, check mechanically, refine.
	fmt.Println("\nstep 3: searching for a schedule-cost function that generates the order")
	candidates := []struct {
		name    string
		weights []float64
	}{
		{"drugResponse + 100·missPct", []float64{1, 100}},
		{"drugResponse + 10·missPct", []float64{1, 10}},
		{"drugResponse + 1·missPct", []float64{1, 1}},
		{"drugResponse only", []float64{1, 0}},
	}
	found := false
	for _, c := range candidates {
		cost := objective.WeightedSum(c.weights)
		ok := objective.GeneratesOrder(ranked, cost)
		status := "rejected (violates the partial order)"
		if ok {
			status = "ACCEPTED — generates the partial order"
		}
		fmt.Printf("  cost = %-28s %s\n", c.name, status)
		if ok {
			found = true
			break
		}
	}
	if !found {
		fmt.Println("  no linear objective fits — refine the rules and repeat (Section 2.4)")
	}
}
