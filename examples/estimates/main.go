// Estimates reproduces the spirit of the paper's Table 6 / Figure 6 on a
// small workload: how much does each algorithm gain when users provide
// exact execution times instead of coarse upper limits? It sweeps the
// overestimation factor from exact (1×) to heavy (10×).
//
// Run with:
//
//	go run ./examples/estimates
package main

import (
	"fmt"
	"log"

	"jobsched/internal/core"
	"jobsched/internal/job"
	"jobsched/internal/sched"
	"jobsched/internal/trace"
	"jobsched/internal/workload"
)

func main() {
	const nodes = 256
	cfg := workload.DefaultCTCConfig()
	cfg.SpanSeconds = cfg.SpanSeconds * 4000 / int64(cfg.Jobs)
	cfg.Jobs = 4000
	cfg.Seed = 11
	base, _ := trace.FilterMaxNodes(workload.CTC(cfg), nodes)

	factors := []float64{1, 2, 5, 10}
	algorithms := []struct {
		order sched.OrderName
		start sched.StartName
	}{
		{sched.OrderFCFS, sched.StartEASY},
		{sched.OrderFCFS, sched.StartConservative},
		{sched.OrderSMARTFFIA, sched.StartEASY},
		{sched.OrderPSRS, sched.StartEASY},
	}

	fmt.Println("average response time (s) vs estimate accuracy (runtime × factor):")
	fmt.Printf("%-28s", "")
	for _, f := range factors {
		fmt.Printf("%10.0fx", f)
	}
	fmt.Println()
	for _, a := range algorithms {
		fmt.Printf("%-28s", fmt.Sprintf("%s/%s", a.order, a.start))
		for _, f := range factors {
			jobs := scale(base, f)
			alg, err := core.NewScheduler(a.order, a.start, nodes, false)
			if err != nil {
				log.Fatal(err)
			}
			res, err := core.Simulate(core.Machine{Nodes: nodes}, jobs, alg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%10.0f", res.AvgResponse)
		}
		fmt.Println()
	}
	fmt.Println("\nfactor 1 = the paper's exact-runtime experiment (Section 6.1, Table 6).")
}

func scale(base []*job.Job, f float64) []*job.Job {
	if f == 1 {
		return trace.WithExactEstimates(base)
	}
	return trace.ScaleEstimates(base, f)
}
