// Capacity answers the paper's introductory motivation: "a good job
// scheduling system may reduce the number of MPP nodes that are required
// to process a certain amount of jobs within a given time frame". It
// finds, for each algorithm, the smallest machine that keeps the average
// response time of a fixed workload under a target — showing how a
// better scheduler buys real hardware.
//
// Run with:
//
//	go run ./examples/capacity
package main

import (
	"fmt"
	"log"

	"jobsched/internal/core"
	"jobsched/internal/sched"
	"jobsched/internal/trace"
	"jobsched/internal/workload"
)

const (
	targetResponse = 3 * 3600 // 3 hours average response time
	workloadJobs   = 4000
)

func main() {
	cfg := workload.DefaultCTCConfig()
	cfg.SpanSeconds = cfg.SpanSeconds * workloadJobs / int64(cfg.Jobs)
	cfg.Jobs = workloadJobs
	cfg.Seed = 5
	base := workload.CTC(cfg)

	algorithms := []struct {
		order sched.OrderName
		start sched.StartName
	}{
		{sched.OrderFCFS, sched.StartList},
		{sched.OrderFCFS, sched.StartEASY},
		{sched.OrderSMARTFFIA, sched.StartEASY},
		{sched.OrderGG, sched.StartList},
	}

	fmt.Printf("smallest machine keeping avg response under %d h (%d CTC-like jobs):\n\n",
		targetResponse/3600, workloadJobs)
	for _, a := range algorithms {
		nodes, resp := smallestMachine(base, a.order, a.start)
		fmt.Printf("  %-28s %4d nodes (%.1f h avg response)\n",
			fmt.Sprintf("%s/%s", a.order, a.start), nodes, resp/3600)
	}
	fmt.Println("\nA better scheduling system serves the same workload on fewer nodes.")
}

// smallestMachine binary-searches the machine size meeting the target.
func smallestMachine(base []*core.Job, o sched.OrderName, s sched.StartName) (int, float64) {
	meets := func(nodes int) (bool, float64) {
		jobs, _ := trace.FilterMaxNodes(base, nodes)
		alg, err := core.NewScheduler(o, s, nodes, false)
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.Simulate(core.Machine{Nodes: nodes}, jobs, alg)
		if err != nil {
			log.Fatal(err)
		}
		return res.AvgResponse <= targetResponse, res.AvgResponse
	}
	lo, hi := 64, 1024
	_, respHi := meets(hi)
	for lo < hi {
		mid := (lo + hi) / 2
		ok, _ := meets(mid)
		if ok {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	_, resp := meets(lo)
	if resp > targetResponse {
		resp = respHi
	}
	return lo, resp
}
