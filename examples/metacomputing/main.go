// Metacomputing demonstrates advance reservations (paper Section 2:
// "some systems may also allow reservation of resources before the
// actual job submission. Such a feature is especially beneficial for
// multisite metacomputing"): a remote site co-allocates half the machine
// for fixed windows, and the local scheduler must provably keep those
// nodes free while still serving the local batch workload.
//
// Run with:
//
//	go run ./examples/metacomputing
package main

import (
	"fmt"
	"log"

	"jobsched/internal/core"
	"jobsched/internal/sched"
	"jobsched/internal/trace"
	"jobsched/internal/workload"
)

func main() {
	const nodes = 256
	cfg := workload.DefaultCTCConfig()
	cfg.SpanSeconds = cfg.SpanSeconds * 3000 / int64(cfg.Jobs)
	cfg.Jobs = 3000
	cfg.Seed = 23
	jobs, _ := trace.FilterMaxNodes(workload.CTC(cfg), nodes)

	// The remote site books half the machine for two-hour windows on
	// three consecutive days.
	var reservations []sched.AdvanceReservation
	for d := int64(1); d <= 3; d++ {
		reservations = append(reservations, sched.AdvanceReservation{
			Name:  fmt.Sprintf("co-allocation day %d", d),
			Nodes: nodes / 2,
			Start: d*86400 + 14*3600,
			End:   d*86400 + 16*3600,
		})
	}

	withRes, err := core.NewReservedScheduler(sched.OrderFCFS, sched.StartEASY, nodes, reservations)
	if err != nil {
		log.Fatal(err)
	}
	without, err := core.NewScheduler(sched.OrderFCFS, sched.StartEASY, nodes, false)
	if err != nil {
		log.Fatal(err)
	}

	resWith, err := core.Simulate(core.Machine{Nodes: nodes}, jobs, withRes)
	if err != nil {
		log.Fatal(err)
	}
	resWithout, err := core.Simulate(core.Machine{Nodes: nodes}, jobs, without)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("local workload: %d jobs on %d nodes; %d reserved windows of %d nodes\n\n",
		len(jobs), nodes, len(reservations), nodes/2)
	fmt.Printf("%-28s %-22s %-14s\n", "", "avg response (s)", "utilization")
	fmt.Printf("%-28s %-22.0f %.1f%%\n", "without reservations",
		resWithout.AvgResponse, resWithout.Utilization*100)
	fmt.Printf("%-28s %-22.0f %.1f%%\n", "honoring reservations",
		resWith.AvgResponse, resWith.Utilization*100)

	// Verify the hard guarantee on the produced schedule.
	for _, e := range reservations {
		worst := 0
		for _, a := range resWith.Schedule.Allocs {
			if a.Start < e.End && a.End > e.Start {
				at := a.Start
				if at < e.Start {
					at = e.Start
				}
				used := 0
				for _, b := range resWith.Schedule.Allocs {
					if b.Start <= at && at < b.End {
						used += b.Job.Nodes
					}
				}
				if used > worst {
					worst = used
				}
			}
		}
		fmt.Printf("\n%s: at most %d of %d nodes used (%d reserved — guarantee held)",
			e.Name, worst, nodes, e.Nodes)
	}
	fmt.Println()
}
