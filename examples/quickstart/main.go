// Quickstart: simulate one scheduling algorithm on a small randomized
// workload and print the headline metrics.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"jobsched/internal/core"
	"jobsched/internal/sched"
	"jobsched/internal/workload"
)

func main() {
	// A 256-node batch partition, as in the paper's Example 5.
	machine := core.Machine{Nodes: 256}

	// A small randomized workload (paper Table 2 parameters).
	cfg := workload.DefaultRandomizedConfig()
	cfg.Jobs = 2000
	cfg.Seed = 7
	jobs := workload.Randomized(cfg)

	// FCFS with EASY backfilling — the production setting at the CTC,
	// and the paper's reference algorithm.
	scheduler, err := core.NewScheduler(sched.OrderFCFS, sched.StartEASY, machine.Nodes, false)
	if err != nil {
		log.Fatal(err)
	}

	res, err := core.Simulate(machine, jobs, scheduler)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("simulated %d jobs under %s\n", len(jobs), scheduler.Name())
	fmt.Printf("  average response time: %.0f s\n", res.AvgResponse)
	fmt.Printf("  average wait time:     %.0f s\n", res.AvgWait)
	fmt.Printf("  makespan:              %d s\n", res.Makespan)
	fmt.Printf("  utilization:           %.1f%%\n", res.Utilization*100)
}
