// Combined runs the experiment the paper's administrator leaves open at
// the end of Section 7: "she must evaluate the effect of combining the
// selected algorithms". It compares three scheduling systems on Example
// 5's two time-windowed objectives — daytime average response time
// (rule 5) and night/weekend idle node time (rule 6):
//
//   - the day pick alone (SMART-FFIA with EASY backfilling),
//   - the night pick alone (Garey&Graham), and
//   - the switching combination (day pick during 7am–8pm weekdays,
//     night pick otherwise).
//
// Run with:
//
//	go run ./examples/combined
package main

import (
	"fmt"
	"log"

	"jobsched/internal/job"
	"jobsched/internal/objective"
	"jobsched/internal/sched"
	"jobsched/internal/sim"
	"jobsched/internal/trace"
	"jobsched/internal/workload"
)

func main() {
	const nodes = 256
	cfg := workload.DefaultCTCConfig()
	cfg.SpanSeconds = cfg.SpanSeconds * 6000 / int64(cfg.Jobs)
	cfg.Jobs = 6000
	cfg.Seed = 17
	jobs, _ := trace.FilterMaxNodes(workload.CTC(cfg), nodes)

	dayMetric := objective.WindowedAvgResponseTime{W: objective.PrimeTime}
	nightIdle := objective.WindowedIdleTime{W: objective.Window{StartHour: 20, EndHour: 24}}

	type system struct {
		name string
		make func() (sim.Scheduler, error)
	}
	systems := []system{
		{"day pick only (SMART-FFIA/EASY)", func() (sim.Scheduler, error) {
			return sched.New(sched.OrderSMARTFFIA, sched.StartEASY,
				sched.Config{MachineNodes: nodes})
		}},
		{"night pick only (Garey&Graham)", func() (sim.Scheduler, error) {
			return sched.New(sched.OrderGG, sched.StartList,
				sched.Config{MachineNodes: nodes, Weight: job.AreaWeight})
		}},
		{"switching combination", func() (sim.Scheduler, error) {
			return sched.NewSwitching(objective.PrimeTime,
				sched.OrderSMARTFFIA, sched.StartEASY,
				sched.OrderGG, sched.StartList,
				sched.Config{MachineNodes: nodes})
		}},
	}

	fmt.Printf("%d CTC-like jobs on %d nodes\n\n", len(jobs), nodes)
	fmt.Printf("%-36s %-22s %-20s\n", "system", "day avg response (s)", "evening idle (node-h)")
	for _, s := range systems {
		alg, err := s.make()
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(sim.Machine{Nodes: nodes}, job.CloneAll(jobs), alg,
			sim.Options{Validate: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-36s %-22.0f %-20.0f\n", s.name,
			dayMetric.Eval(res.Schedule),
			nightIdle.Eval(res.Schedule)/3600)
	}
	fmt.Println("\nThe combination tracks each pure pick on the objective it was chosen for.")
}
