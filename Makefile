GO ?= go

.PHONY: check build test vet lint fuzz-smoke race bench-smoke bench bench-compare stream-smoke serve-smoke serve-bench

# Tier-1 gate: vet + lint + lint-budget + build + race-enabled tests +
# fuzz smoke + bench smoke (see scripts/check.sh for the step list).
check:
	./scripts/check.sh

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Repo-specific static analysis (internal/lint, DESIGN.md §9 and §13):
# the full analyzer suite — including the protocol-aware contract
# analyzers (passprotocol, streamcontract, journalsync, errflow) — then
# the suppression-budget audit with its per-analyzer ceilings.
lint:
	$(GO) run ./cmd/jobschedlint ./...
	./scripts/lint-budget.sh

# Fixed-budget fuzz runs of the SWF reader, the availability-profile
# differential oracle, the tree-kernel structural invariants and the
# fault-schedule invariants — the same budgets the tier-1 gate uses.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzReadSWF$$' -fuzztime=500x ./internal/trace
	$(GO) test -run='^$$' -fuzz='^FuzzProfileOps$$' -fuzztime=500x ./internal/profile
	$(GO) test -run='^$$' -fuzz='^FuzzProfileTree$$' -fuzztime=500x ./internal/profile
	$(GO) test -run='^$$' -fuzz='^FuzzFailureSchedule$$' -fuzztime=500x ./internal/faults

race:
	$(GO) test -race ./...

# Perf-harness smoke run (tiny benchtime, no files written).
bench-smoke:
	$(GO) run ./cmd/bench -quick -out "" -out2 "" -out3 "" -out4 "" -out5 ""

# Full perf harness: regenerates BENCH_1/2/3/4/5.json (see DESIGN.md §7,
# §11, §12, §14).
bench:
	$(GO) run ./cmd/bench

# Opt-in perf-regression gate: fresh quick bench run compared against
# the committed BENCH_1/5.json on the shape-invariant tracked entries;
# >25% ns/op regression fails (see cmd/benchcompare, DESIGN.md §14).
bench-compare:
	./scripts/bench-compare.sh

# Million-job streaming run under a GOMEMLIMIT ceiling + 2-shard merge
# cross-check against single-process output (see DESIGN.md §12).
stream-smoke:
	./scripts/stream-smoke.sh

# Boot the jobschedd daemon, drive 10k submissions through schedload,
# SIGTERM drain, restart, assert a byte-identical recovered fingerprint
# (see DESIGN.md §15).
serve-smoke:
	./scripts/serve-smoke.sh

# Service latency/overload experiment: regenerates BENCH_6.json — an
# under-limit percentile run plus a 10x-overload run that must shed
# with explicit bounded 429/503 responses (see DESIGN.md §15).
serve-bench:
	./scripts/serve-bench.sh
