GO ?= go

.PHONY: check build test vet race bench-smoke bench

# Tier-1 gate: vet + build + race-enabled tests + bench smoke.
check:
	./scripts/check.sh

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Perf-harness smoke run (tiny benchtime, no file written).
bench-smoke:
	$(GO) run ./cmd/bench -quick -out ""

# Full perf harness: regenerates BENCH_1.json (see DESIGN.md §7).
bench:
	$(GO) run ./cmd/bench
