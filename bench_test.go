// Package jobsched holds the paper-reproduction benchmark harness: one
// benchmark per table and figure of the evaluation section (Tables 1–8,
// Figures 1–6), plus ablation benches for the design choices called out
// in DESIGN.md §5.
//
// Each table bench runs the full algorithm grid on a scaled-down
// deterministic workload (shapes, not absolute values, are the
// reproduction target — see EXPERIMENTS.md) and logs the rendered table;
// the reference-cell value is exported via b.ReportMetric so regressions
// in schedule quality are visible in benchmark diffs.
//
// Run with:
//
//	go test -bench=. -benchmem
package jobsched

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"jobsched/internal/eval"
	"jobsched/internal/job"
	"jobsched/internal/policy"
	"jobsched/internal/sched"
	"jobsched/internal/sim"
	"jobsched/internal/trace"
	"jobsched/internal/workload"
)

// benchJobs is the workload size of the table benches: large enough to
// exhibit backlog effects, small enough to keep `go test -bench=.` fast.
const benchJobs = 2500

var (
	benchOnce sync.Once
	benchCTC  []*job.Job
	benchProb []*job.Job
	benchRand []*job.Job
)

func loadBenchWorkloads(b *testing.B) {
	b.Helper()
	benchOnce.Do(func() {
		cfg := workload.DefaultCTCConfig()
		cfg.SpanSeconds = cfg.SpanSeconds * benchJobs / int64(cfg.Jobs)
		cfg.Jobs = benchJobs
		cfg.Seed = 1
		benchCTC, _ = trace.FilterMaxNodes(workload.CTC(cfg), 256)

		var err error
		benchProb, err = workload.Probabilistic(benchCTC, benchJobs, 2)
		if err != nil {
			panic(err)
		}

		rcfg := workload.DefaultRandomizedConfig()
		rcfg.Jobs = benchJobs
		rcfg.Seed = 3
		benchRand = workload.Randomized(rcfg)
	})
}

// gridBench runs both objective cases of one table and reports the
// reference (FCFS/EASY) values as custom metrics.
func gridBench(b *testing.B, title string, jobs []*job.Job) {
	m := sim.Machine{Nodes: 256}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, c := range []eval.Case{eval.Unweighted, eval.Weighted} {
			g, err := eval.Run(title, m, jobs, c, eval.Options{Parallel: true})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				var sb strings.Builder
				if err := g.Render(&sb); err != nil {
					b.Fatal(err)
				}
				b.Log("\n" + sb.String())
				b.ReportMetric(g.Ref.Value, "ref-"+strings.ToLower(c.String())+"-s")
			}
		}
	}
}

// BenchmarkTable3_CTC regenerates Table 3 (and the data of Figures 3–4):
// average response time of the algorithm grid on the CTC-like workload.
func BenchmarkTable3_CTC(b *testing.B) {
	loadBenchWorkloads(b)
	gridBench(b, "CTC workload", benchCTC)
}

// BenchmarkTable4_Probabilistic regenerates Table 4 (Figure 5): the
// probability-distributed workload fitted from the CTC trace.
func BenchmarkTable4_Probabilistic(b *testing.B) {
	loadBenchWorkloads(b)
	gridBench(b, "Probability-distributed workload", benchProb)
}

// BenchmarkTable5_Randomized regenerates Table 5: the fully randomized
// workload of Table 2.
func BenchmarkTable5_Randomized(b *testing.B) {
	loadBenchWorkloads(b)
	gridBench(b, "Randomized workload", benchRand)
}

// BenchmarkTable6_ExactRuntimes regenerates Table 6 (Figure 6): the CTC
// workload with exact execution times instead of user estimates.
func BenchmarkTable6_ExactRuntimes(b *testing.B) {
	loadBenchWorkloads(b)
	gridBench(b, "CTC workload, exact runtimes", trace.WithExactEstimates(benchCTC))
}

// BenchmarkTableBacklog_Conservative stresses the availability-profile
// core on a large synthetic backlog: a saturated randomized workload
// (arrival rate far above capacity, so the wait queue grows to hundreds
// of jobs) over the reservation-heavy grid columns. Conservative
// backfilling rebuilds the full reservation profile per scheduling pass,
// so this bench is dominated by profile EarliestFit/Reserve — the perf
// target of the optimized kernel (see DESIGN.md §perf and BENCH_1.json).
func BenchmarkTableBacklog_Conservative(b *testing.B) {
	cfg := workload.DefaultRandomizedConfig()
	cfg.Jobs = 800
	cfg.MaxGap = 150
	cfg.Seed = 9
	jobs := workload.Randomized(cfg)
	m := sim.Machine{Nodes: 256}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := eval.Run("Backlog workload", m, jobs, eval.Unweighted, eval.Options{
			Parallel: true,
			Orders:   []sched.OrderName{sched.OrderFCFS, sched.OrderPSRS},
			Starts:   []sched.StartName{sched.StartConservative, sched.StartEASY},
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(g.Ref.Value, "ref-unweighted-s")
			var maxQ int
			for _, c := range g.Cells {
				if c.MaxQueue > maxQ {
					maxQ = c.MaxQueue
				}
			}
			b.ReportMetric(float64(maxQ), "max-queue-jobs")
		}
	}
}

// computeTimeBench regenerates a scheduler-computation-time table
// (serial, measured cells).
func computeTimeBench(b *testing.B, title string, jobs []*job.Job) {
	m := sim.Machine{Nodes: 256}
	for i := 0; i < b.N; i++ {
		for _, c := range []eval.Case{eval.Unweighted, eval.Weighted} {
			g, err := eval.Run(title, m, jobs, c, eval.Options{MeasureCPU: true})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				var sb strings.Builder
				if err := g.RenderComputeTime(&sb); err != nil {
					b.Fatal(err)
				}
				b.Log("\n" + sb.String())
			}
		}
	}
}

// BenchmarkTable7_ComputeTimeCTC regenerates Table 7: scheduler
// computation time on the CTC workload, relative to FCFS/EASY.
func BenchmarkTable7_ComputeTimeCTC(b *testing.B) {
	loadBenchWorkloads(b)
	computeTimeBench(b, "CTC workload", benchCTC)
}

// BenchmarkTable8_ComputeTimeProb regenerates Table 8: scheduler
// computation time on the probability-distributed workload.
func BenchmarkTable8_ComputeTimeProb(b *testing.B) {
	loadBenchWorkloads(b)
	computeTimeBench(b, "Probability-distributed workload", benchProb)
}

// BenchmarkFigure1_Pareto regenerates Figure 1: the Pareto front and
// partial order of the Example 1 two-criteria schedule space.
func BenchmarkFigure1_Pareto(b *testing.B) {
	sc := policy.ChemistryScenario(1, 10)
	reserves := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := 0; i < b.N; i++ {
		pts, err := policy.Figure1(sc, reserves)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			front := 0
			for _, p := range pts {
				if p.Rank >= 0 {
					front++
				}
			}
			b.ReportMetric(float64(front), "pareto-front-size")
		}
	}
}

// BenchmarkFigure2_OnlineOffline regenerates Figure 2: the on-line
// versus off-line achievable regions.
func BenchmarkFigure2_OnlineOffline(b *testing.B) {
	sc := policy.ChemistryScenario(1, 10)
	reserves := []float64{0, 0.5, 1}
	for i := 0; i < b.N; i++ {
		online, offline, err := policy.Figure2(sc, reserves)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(online)+len(offline)), "points")
		}
	}
}

// --- Ablation benches (DESIGN.md §5) ---

func runCell(b *testing.B, jobs []*job.Job, cfg sched.Config, o sched.OrderName, s sched.StartName) float64 {
	b.Helper()
	alg, err := sched.New(o, s, cfg)
	if err != nil {
		b.Fatal(err)
	}
	res, err := sim.Run(sim.Machine{Nodes: cfg.MachineNodes}, job.CloneAll(jobs), alg, sim.Options{})
	if err != nil {
		b.Fatal(err)
	}
	var sum float64
	for _, a := range res.Schedule.Allocs {
		sum += float64(a.End - a.Job.Submit)
	}
	return sum / float64(len(res.Schedule.Allocs))
}

// BenchmarkAblationSmartGamma sweeps SMART's geometric bin factor γ
// (paper value: 2).
func BenchmarkAblationSmartGamma(b *testing.B) {
	loadBenchWorkloads(b)
	for _, gamma := range []float64{1.5, 2, 4, 8} {
		b.Run(fmt.Sprintf("gamma=%.1f", gamma), func(b *testing.B) {
			cfg := sched.Config{MachineNodes: 256, SmartGamma: gamma}
			for i := 0; i < b.N; i++ {
				v := runCell(b, benchCTC, cfg, sched.OrderSMARTFFIA, sched.StartEASY)
				if i == 0 {
					b.ReportMetric(v, "avg-response-s")
				}
			}
		})
	}
}

// BenchmarkAblationRecomputeRatio sweeps the SMART/PSRS replanning
// trigger (paper value: 2/3).
func BenchmarkAblationRecomputeRatio(b *testing.B) {
	loadBenchWorkloads(b)
	for _, ratio := range []float64{0.25, 0.5, 2.0 / 3.0, 0.9} {
		b.Run(fmt.Sprintf("ratio=%.2f", ratio), func(b *testing.B) {
			cfg := sched.Config{MachineNodes: 256, RecomputeRatio: ratio}
			for i := 0; i < b.N; i++ {
				v := runCell(b, benchCTC, cfg, sched.OrderPSRS, sched.StartEASY)
				if i == 0 {
					b.ReportMetric(v, "avg-response-s")
				}
			}
		})
	}
}

// BenchmarkAblationConservativeDepth sweeps the conservative starter's
// backfill depth bound (0 = unlimited, the paper's semantics).
func BenchmarkAblationConservativeDepth(b *testing.B) {
	loadBenchWorkloads(b)
	for _, depth := range []int{0, 10, 100, 1000} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			cfg := sched.Config{MachineNodes: 256, MaxBackfillDepth: depth}
			for i := 0; i < b.N; i++ {
				v := runCell(b, benchCTC, cfg, sched.OrderFCFS, sched.StartConservative)
				if i == 0 {
					b.ReportMetric(v, "avg-response-s")
				}
			}
		})
	}
}

// BenchmarkAblationEstimateAccuracy sweeps the user overestimation
// factor from exact to 10× (extends Table 6 into a curve).
func BenchmarkAblationEstimateAccuracy(b *testing.B) {
	loadBenchWorkloads(b)
	for _, f := range []float64{1, 2, 5, 10} {
		b.Run(fmt.Sprintf("factor=%.0fx", f), func(b *testing.B) {
			jobs := trace.ScaleEstimates(benchCTC, f)
			cfg := sched.Config{MachineNodes: 256}
			for i := 0; i < b.N; i++ {
				v := runCell(b, jobs, cfg, sched.OrderFCFS, sched.StartEASY)
				if i == 0 {
					b.ReportMetric(v, "avg-response-s")
				}
			}
		})
	}
}

// BenchmarkAblationMachineSize sweeps the batch partition size
// (capacity planning: the paper's introduction motivation).
func BenchmarkAblationMachineSize(b *testing.B) {
	loadBenchWorkloads(b)
	for _, nodes := range []int{128, 256, 384, 512} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			jobs, _ := trace.FilterMaxNodes(benchCTC, nodes)
			cfg := sched.Config{MachineNodes: nodes}
			for i := 0; i < b.N; i++ {
				v := runCell(b, jobs, cfg, sched.OrderFCFS, sched.StartEASY)
				if i == 0 {
					b.ReportMetric(v, "avg-response-s")
				}
			}
		})
	}
}
