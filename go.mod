module jobsched

go 1.22
