package profile

import (
	"math/rand"
	"testing"
)

// BenchmarkEarliestFit measures the core backfilling query against a
// profile with many future reservations — the hot path of conservative
// backfilling under deep backlog. The Reference variant runs the
// brute-force oracle on the identical query stream: it is the "before"
// number of BENCH_1.json.
func BenchmarkEarliestFit(b *testing.B) {
	for _, steps := range []int{16, 256, 4096} {
		b.Run(name("steps", steps), func(b *testing.B) {
			p := buildProfile(steps)
			r := rand.New(rand.NewSource(1))
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w := 1 + r.Intn(200)
				d := int64(1 + r.Intn(10000))
				_ = p.EarliestFit(w, d, 0)
			}
		})
	}
}

// BenchmarkEarliestFitReference is BenchmarkEarliestFit on the
// brute-force oracle (the original implementation).
func BenchmarkEarliestFitReference(b *testing.B) {
	for _, steps := range []int{16, 256, 4096} {
		b.Run(name("steps", steps), func(b *testing.B) {
			p := buildReferenceProfile(steps)
			r := rand.New(rand.NewSource(1))
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w := 1 + r.Intn(200)
				d := int64(1 + r.Intn(10000))
				_ = p.EarliestFit(w, d, 0)
			}
		})
	}
}

// BenchmarkReserve measures reservation insertion (two splits + range
// update) at several profile sizes.
func BenchmarkReserve(b *testing.B) {
	for _, steps := range []int{16, 256, 4096} {
		b.Run(name("steps", steps), func(b *testing.B) {
			base := buildProfile(steps)
			r := rand.New(rand.NewSource(2))
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := base.Clone()
				at := p.EarliestFit(1, 100, int64(r.Intn(100000)))
				p.Reserve(1, at, at+100)
			}
		})
	}
}

// BenchmarkReserveScratch is BenchmarkReserve with CloneInto into a
// reusable scratch profile instead of a fresh Clone per reservation — the
// allocation-free pattern of the conservative starter.
func BenchmarkReserveScratch(b *testing.B) {
	for _, steps := range []int{16, 256, 4096} {
		b.Run(name("steps", steps), func(b *testing.B) {
			base := buildProfile(steps)
			scratch := base.Clone()
			r := rand.New(rand.NewSource(2))
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				base.CloneInto(scratch)
				at := scratch.EarliestFit(1, 100, int64(r.Intn(100000)))
				scratch.Reserve(1, at, at+100)
			}
		})
	}
}

// BenchmarkConservativePass replays the inner loop of a conservative
// backfilling pass: reset the scratch profile and place a whole synthetic
// queue (EarliestFit + Reserve per job). This is the macro shape the
// skip-ahead scan and edge coalescing optimize.
func BenchmarkConservativePass(b *testing.B) {
	for _, queue := range []int{64, 512} {
		b.Run(name("queue", queue), func(b *testing.B) {
			r := rand.New(rand.NewSource(3))
			type jobShape struct {
				w int
				d int64
			}
			jobs := make([]jobShape, queue)
			for i := range jobs {
				jobs[i] = jobShape{w: 1 + r.Intn(200), d: int64(60 + r.Intn(20000))}
			}
			p := New(256, 0)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.Reset(256, 0)
				for _, j := range jobs {
					at := p.EarliestFit(j.w, j.d, 0)
					p.Reserve(j.w, at, at+j.d)
				}
			}
		})
	}
}

// BenchmarkMinFreeMonotone measures the cursor fast path: MinFree probed
// at monotonically increasing times, the access pattern of calendar
// admission checks.
func BenchmarkMinFreeMonotone(b *testing.B) {
	p := buildProfile(4096)
	span := int64(1) // probe stride
	b.ResetTimer()
	b.ReportAllocs()
	var t int64
	for i := 0; i < b.N; i++ {
		_ = p.MinFree(t, t+600)
		t += 37 * span
		if t > 400000 {
			t = 0
		}
	}
}

// BenchmarkMinFreeMonotoneReference is the oracle counterpart of
// BenchmarkMinFreeMonotone (full binary search every probe).
func BenchmarkMinFreeMonotoneReference(b *testing.B) {
	p := buildReferenceProfile(4096)
	b.ResetTimer()
	b.ReportAllocs()
	var t int64
	for i := 0; i < b.N; i++ {
		_ = p.MinFree(t, t+600)
		t += 37
		if t > 400000 {
			t = 0
		}
	}
}

func buildProfile(reservations int) *Profile {
	p := New(256, 0)
	r := rand.New(rand.NewSource(42))
	for i := 0; i < reservations; i++ {
		w := 1 + r.Intn(64)
		d := int64(1 + r.Intn(5000))
		at := p.EarliestFit(w, d, int64(r.Intn(50000)))
		p.Reserve(w, at, at+d)
	}
	return p
}

// buildReferenceProfile mirrors buildProfile on the oracle so both
// benches query the identical step function.
func buildReferenceProfile(reservations int) *Reference {
	p := NewReference(256, 0)
	r := rand.New(rand.NewSource(42))
	for i := 0; i < reservations; i++ {
		w := 1 + r.Intn(64)
		d := int64(1 + r.Intn(5000))
		at := p.EarliestFit(w, d, int64(r.Intn(50000)))
		p.Reserve(w, at, at+d)
	}
	return p
}

func name(k string, v int) string {
	const digits = "0123456789"
	if v == 0 {
		return k + "=0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = digits[v%10]
		v /= 10
	}
	return k + "=" + string(buf[i:])
}
