package profile

import (
	"math/rand"
	"testing"
)

// BenchmarkEarliestFit measures the core backfilling query against a
// profile with many future reservations — the hot path of conservative
// backfilling under deep backlog.
func BenchmarkEarliestFit(b *testing.B) {
	for _, steps := range []int{16, 256, 4096} {
		b.Run(name("steps", steps), func(b *testing.B) {
			p := buildProfile(steps)
			r := rand.New(rand.NewSource(1))
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w := 1 + r.Intn(200)
				d := int64(1 + r.Intn(10000))
				_ = p.EarliestFit(w, d, 0)
			}
		})
	}
}

// BenchmarkReserve measures reservation insertion (two splits + range
// update) at several profile sizes.
func BenchmarkReserve(b *testing.B) {
	for _, steps := range []int{16, 256, 4096} {
		b.Run(name("steps", steps), func(b *testing.B) {
			base := buildProfile(steps)
			r := rand.New(rand.NewSource(2))
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := base.Clone()
				at := p.EarliestFit(1, 100, int64(r.Intn(100000)))
				p.Reserve(1, at, at+100)
			}
		})
	}
}

func buildProfile(reservations int) *Profile {
	p := New(256, 0)
	r := rand.New(rand.NewSource(42))
	for i := 0; i < reservations; i++ {
		w := 1 + r.Intn(64)
		d := int64(1 + r.Intn(5000))
		at := p.EarliestFit(w, d, int64(r.Intn(50000)))
		p.Reserve(w, at, at+d)
	}
	return p
}

func name(k string, v int) string {
	const digits = "0123456789"
	if v == 0 {
		return k + "=0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = digits[v%10]
		v /= 10
	}
	return k + "=" + string(buf[i:])
}
