package profile

import (
	"fmt"
	"sort"
	"strings"
)

// Reference is the brute-force availability profile: the original, naive
// implementation kept alive verbatim as a differential-testing oracle for
// the optimized Profile. Every operation re-derives its answer from
// scratch — stepIndex binary-searches the full slice on every call, and
// EarliestFit restarts its window scan from the blocking step's index via
// a fresh binary search — so the code stays obviously correct at the cost
// of O(S²) worst-case queries.
//
// The differential tests (differential_test.go, FuzzProfileOps) drive a
// Profile and a Reference through identical operation sequences and
// assert identical results and identical canonical step functions. Do not
// "optimize" this type: its value is that it is slow and simple.
type Reference struct {
	steps []step
	nodes int
	// passNow anchors an open batched scheduling pass (see BeginPass).
	passNow int64
}

// NewReference returns a brute-force profile for a machine with the given
// node count, entirely free from time `from` on.
func NewReference(nodes int, from int64) *Reference {
	if nodes <= 0 {
		panic("profile: machine must have at least one node")
	}
	return &Reference{
		steps: []step{{at: from, free: nodes}},
		nodes: nodes,
	}
}

// Nodes returns the machine size.
func (p *Reference) Nodes() int { return p.nodes }

// SetStats is a no-op: the oracle stays uninstrumented so its operation
// mix can never perturb a differential run's counters.
func (p *Reference) SetStats(s *Stats) {}

// Reset reinitializes p to a fully free machine of the given size from
// time `from` on, reusing the step storage. Needed so the oracle can
// stand in for the optimized kernels as a scratch-profile backend in the
// backend-swap determinism tests.
func (p *Reference) Reset(nodes int, from int64) {
	if nodes <= 0 {
		panic("profile: machine must have at least one node")
	}
	p.nodes = nodes
	p.steps = append(p.steps[:0], step{at: from, free: nodes})
}

// Clone returns an independent deep copy.
func (p *Reference) Clone() *Reference {
	c := &Reference{nodes: p.nodes, steps: make([]step, len(p.steps))}
	copy(c.steps, p.steps)
	return c
}

// CloneInto copies p into dst, reusing dst's step storage.
func (p *Reference) CloneInto(dst *Reference) {
	dst.nodes = p.nodes
	dst.steps = append(dst.steps[:0], p.steps...)
}

// FreeAt returns the number of free nodes at time t. Times before the
// first step report the first step's value.
func (p *Reference) FreeAt(t int64) int {
	i := p.stepIndex(t)
	return p.steps[i].free
}

// stepIndex returns the index of the step covering time t (the last step
// with at <= t, clamped to 0).
func (p *Reference) stepIndex(t int64) int {
	// First step with at > t, minus one.
	i := sort.Search(len(p.steps), func(i int) bool { return p.steps[i].at > t })
	if i == 0 {
		return 0
	}
	return i - 1
}

// splitAt ensures a step boundary exists exactly at time t and returns its
// index. Times before the first step extend the profile backwards with
// the first step's value.
func (p *Reference) splitAt(t int64) int {
	i := sort.Search(len(p.steps), func(i int) bool { return p.steps[i].at >= t })
	if i < len(p.steps) && p.steps[i].at == t {
		return i
	}
	var free int
	if i == 0 {
		free = p.steps[0].free
	} else {
		free = p.steps[i-1].free
	}
	p.steps = append(p.steps, step{})
	copy(p.steps[i+1:], p.steps[i:])
	p.steps[i] = step{at: t, free: free}
	return i
}

// Reserve subtracts `nodes` free nodes on [start, end). It panics if the
// reservation would drive any step negative — callers must only reserve
// intervals found by EarliestFit or known to fit.
func (p *Reference) Reserve(nodes int, start, end int64) {
	if nodes <= 0 || end <= start {
		panic("profile: Reserve requires positive nodes and start < end")
	}
	i := p.splitAt(start)
	j := p.splitAt(end)
	for k := i; k < j; k++ {
		p.steps[k].free -= nodes
		if p.steps[k].free < 0 {
			panic(fmt.Sprintf("profile: overcommit at t=%d (%d free after reserving %d)",
				p.steps[k].at, p.steps[k].free, nodes))
		}
	}
	p.coalesce()
}

// ReserveClamped subtracts up to `nodes` free nodes on [start, end),
// clamping each step at zero instead of panicking on overcommit (the
// brute-force counterpart of Profile.ReserveClamped).
func (p *Reference) ReserveClamped(nodes int, start, end int64) {
	if nodes <= 0 || end <= start {
		panic("profile: ReserveClamped requires positive nodes and start < end")
	}
	i := p.splitAt(start)
	j := p.splitAt(end)
	for k := i; k < j; k++ {
		p.steps[k].free -= nodes
		if p.steps[k].free < 0 {
			p.steps[k].free = 0
		}
	}
	p.coalesce()
}

// Release adds `nodes` free nodes on [start, end). Used when a running
// job completes earlier than estimated: the remainder of its projected
// allocation is handed back.
func (p *Reference) Release(nodes int, start, end int64) {
	if nodes <= 0 || end <= start {
		panic("profile: Release requires positive nodes and start < end")
	}
	i := p.splitAt(start)
	j := p.splitAt(end)
	for k := i; k < j; k++ {
		p.steps[k].free += nodes
		if p.steps[k].free > p.nodes {
			panic(fmt.Sprintf("profile: release beyond machine size at t=%d", p.steps[k].at))
		}
	}
	p.coalesce()
}

// coalesce merges adjacent steps with equal free counts.
func (p *Reference) coalesce() {
	out := p.steps[:1]
	for _, s := range p.steps[1:] {
		if s.free == out[len(out)-1].free {
			continue
		}
		out = append(out, s)
	}
	p.steps = out
}

// EarliestFit returns the earliest time >= notBefore at which `nodes`
// nodes are simultaneously free for `duration` seconds. duration may be
// huge (estimates of long jobs); overflow is clamped to Infinity. If no
// finite start admits the job — the tail of the profile is permanently
// short of `nodes` free nodes (a reservation ending at Infinity) —
// Infinity is returned.
func (p *Reference) EarliestFit(nodes int, duration int64, notBefore int64) int64 {
	if nodes > p.nodes {
		panic(fmt.Sprintf("profile: job wants %d nodes on a %d-node machine", nodes, p.nodes))
	}
	if duration <= 0 {
		panic("profile: EarliestFit requires positive duration")
	}
	start := notBefore
	i := p.stepIndex(notBefore)
	for {
		// Advance to the first step at/after `start` with enough nodes.
		for i < len(p.steps) {
			segEnd := Infinity
			if i+1 < len(p.steps) {
				segEnd = p.steps[i+1].at
			}
			if p.steps[i].free >= nodes && segEnd > start {
				break
			}
			i++
		}
		if i >= len(p.steps) {
			// Reachable when the last step is short of `nodes` free nodes
			// (a permanent reservation): the job never fits.
			return Infinity
		}
		if p.steps[i].at > start {
			start = p.steps[i].at
		}
		// Check the window [start, start+duration) stays feasible.
		end := satEnd(start, duration)
		ok := true
		for j := i; j < len(p.steps) && p.steps[j].at < end; j++ {
			if p.steps[j].free < nodes {
				// Blocked: restart the search after the blocking step.
				start = refBlockEnd(p, j)
				i = p.stepIndex(start)
				ok = false
				break
			}
		}
		if ok {
			return start
		}
		if start == Infinity {
			return Infinity
		}
	}
}

// refBlockEnd returns the end time of the step at index j.
func refBlockEnd(p *Reference, j int) int64 {
	if j+1 < len(p.steps) {
		return p.steps[j+1].at
	}
	return Infinity
}

// MinFree returns the minimum number of free nodes over [start, end).
// Panics on an empty interval.
func (p *Reference) MinFree(start, end int64) int {
	if end <= start {
		panic("profile: MinFree requires start < end")
	}
	i := p.stepIndex(start)
	min := p.steps[i].free
	for j := i + 1; j < len(p.steps) && p.steps[j].at < end; j++ {
		if p.steps[j].free < min {
			min = p.steps[j].free
		}
	}
	return min
}

// BeginPass opens a batched scheduling pass anchored at `now`. The
// oracle defers nothing: the pass only records the anchor time.
func (p *Reference) BeginPass(now int64) { p.passNow = now }

// StartMany places each request at its earliest fit from the pass time
// and reserves it, appending the start times to `starts` — literally the
// sequential loop the batch API is specified against.
func (p *Reference) StartMany(reqs []StartReq, starts []int64) []int64 {
	return startManySequential(p, reqs, p.passNow, starts)
}

// CommitPass closes the pass. Nothing was deferred: no-op.
func (p *Reference) CommitPass() {}

// StepCount returns the number of steps (diagnostics, complexity tests).
func (p *Reference) StepCount() int { return len(p.steps) }

// String renders the profile compactly for debugging.
func (p *Reference) String() string {
	var b strings.Builder
	b.WriteString("profile[")
	for i, s := range p.steps {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%d", s.at, s.free)
	}
	b.WriteByte(']')
	return b.String()
}
