// Package profile implements the availability profile: a step function of
// free nodes over future time. It is the substrate of both backfilling
// variants — EASY uses it to compute the shadow time of the queue head,
// conservative backfilling inserts a reservation for every waiting job.
//
// The profile is a sorted slice of steps; each step holds the number of
// free nodes from its time until the next step. The final step extends to
// infinity. All times are estimated: running jobs are entered with their
// projected completion (start + estimate), which is exactly the
// information a scheduler legitimately has on-line.
package profile

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Infinity is the time horizon of the last step.
const Infinity int64 = math.MaxInt64

type step struct {
	at   int64 // step start time
	free int   // free nodes in [at, next.at)
}

// Profile is a step function of free nodes over time. The zero value is
// unusable; create profiles with New.
type Profile struct {
	steps []step
	nodes int // machine size
}

// New returns a profile for a machine with the given node count, entirely
// free from time `from` on.
func New(nodes int, from int64) *Profile {
	if nodes <= 0 {
		panic("profile: machine must have at least one node")
	}
	return &Profile{
		steps: []step{{at: from, free: nodes}},
		nodes: nodes,
	}
}

// Nodes returns the machine size.
func (p *Profile) Nodes() int { return p.nodes }

// Clone returns an independent deep copy.
func (p *Profile) Clone() *Profile {
	c := &Profile{nodes: p.nodes, steps: make([]step, len(p.steps))}
	copy(c.steps, p.steps)
	return c
}

// FreeAt returns the number of free nodes at time t. Times before the
// first step report the first step's value.
func (p *Profile) FreeAt(t int64) int {
	i := p.stepIndex(t)
	return p.steps[i].free
}

// stepIndex returns the index of the step covering time t (the last step
// with at <= t, clamped to 0).
func (p *Profile) stepIndex(t int64) int {
	// First step with at > t, minus one.
	i := sort.Search(len(p.steps), func(i int) bool { return p.steps[i].at > t })
	if i == 0 {
		return 0
	}
	return i - 1
}

// splitAt ensures a step boundary exists exactly at time t and returns its
// index. Times before the first step extend the profile backwards with
// the first step's value.
func (p *Profile) splitAt(t int64) int {
	i := sort.Search(len(p.steps), func(i int) bool { return p.steps[i].at >= t })
	if i < len(p.steps) && p.steps[i].at == t {
		return i
	}
	var free int
	if i == 0 {
		free = p.steps[0].free
	} else {
		free = p.steps[i-1].free
	}
	p.steps = append(p.steps, step{})
	copy(p.steps[i+1:], p.steps[i:])
	p.steps[i] = step{at: t, free: free}
	return i
}

// Reserve subtracts `nodes` free nodes on [start, end). It panics if the
// reservation would drive any step negative — callers must only reserve
// intervals found by EarliestFit or known to fit.
func (p *Profile) Reserve(nodes int, start, end int64) {
	if nodes <= 0 || end <= start {
		panic("profile: Reserve requires positive nodes and start < end")
	}
	i := p.splitAt(start)
	j := p.splitAt(end)
	for k := i; k < j; k++ {
		p.steps[k].free -= nodes
		if p.steps[k].free < 0 {
			panic(fmt.Sprintf("profile: overcommit at t=%d (%d free after reserving %d)",
				p.steps[k].at, p.steps[k].free, nodes))
		}
	}
	p.coalesce()
}

// Release adds `nodes` free nodes on [start, end). Used when a running
// job completes earlier than estimated: the remainder of its projected
// allocation is handed back.
func (p *Profile) Release(nodes int, start, end int64) {
	if nodes <= 0 || end <= start {
		panic("profile: Release requires positive nodes and start < end")
	}
	i := p.splitAt(start)
	j := p.splitAt(end)
	for k := i; k < j; k++ {
		p.steps[k].free += nodes
		if p.steps[k].free > p.nodes {
			panic(fmt.Sprintf("profile: release beyond machine size at t=%d", p.steps[k].at))
		}
	}
	p.coalesce()
}

// coalesce merges adjacent steps with equal free counts.
func (p *Profile) coalesce() {
	out := p.steps[:1]
	for _, s := range p.steps[1:] {
		if s.free == out[len(out)-1].free {
			continue
		}
		out = append(out, s)
	}
	p.steps = out
}

// EarliestFit returns the earliest time >= notBefore at which `nodes`
// nodes are simultaneously free for `duration` seconds. duration may be
// huge (estimates of long jobs); overflow is clamped to Infinity.
func (p *Profile) EarliestFit(nodes int, duration int64, notBefore int64) int64 {
	if nodes > p.nodes {
		panic(fmt.Sprintf("profile: job wants %d nodes on a %d-node machine", nodes, p.nodes))
	}
	if duration <= 0 {
		panic("profile: EarliestFit requires positive duration")
	}
	start := notBefore
	i := p.stepIndex(notBefore)
	for {
		// Advance to the first step at/after `start` with enough nodes.
		for i < len(p.steps) {
			segEnd := Infinity
			if i+1 < len(p.steps) {
				segEnd = p.steps[i+1].at
			}
			if p.steps[i].free >= nodes && segEnd > start {
				break
			}
			i++
		}
		if i >= len(p.steps) {
			// Unreachable: the last step always has free == nodes count of
			// an eventually-empty machine only if no permanent reservation
			// exists; guard anyway.
			return Infinity
		}
		if p.steps[i].at > start {
			start = p.steps[i].at
		}
		// Check the window [start, start+duration) stays feasible.
		end := start + duration
		if end < 0 { // overflow
			end = Infinity
		}
		ok := true
		for j := i; j < len(p.steps) && p.steps[j].at < end; j++ {
			if p.steps[j].free < nodes {
				// Blocked: restart the search after the blocking step.
				start = blockEnd(p, j)
				i = p.stepIndex(start)
				ok = false
				break
			}
		}
		if ok {
			return start
		}
		if start == Infinity {
			return Infinity
		}
	}
}

// blockEnd returns the end time of the step at index j.
func blockEnd(p *Profile, j int) int64 {
	if j+1 < len(p.steps) {
		return p.steps[j+1].at
	}
	return Infinity
}

// MinFree returns the minimum number of free nodes over [start, end).
// Panics on an empty interval.
func (p *Profile) MinFree(start, end int64) int {
	if end <= start {
		panic("profile: MinFree requires start < end")
	}
	i := p.stepIndex(start)
	min := p.steps[i].free
	for j := i + 1; j < len(p.steps) && p.steps[j].at < end; j++ {
		if p.steps[j].free < min {
			min = p.steps[j].free
		}
	}
	return min
}

// StepCount returns the number of steps (diagnostics, complexity tests).
func (p *Profile) StepCount() int { return len(p.steps) }

// String renders the profile compactly for debugging.
func (p *Profile) String() string {
	var b strings.Builder
	b.WriteString("profile[")
	for i, s := range p.steps {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%d", s.at, s.free)
	}
	b.WriteByte(']')
	return b.String()
}
