// Package profile implements the availability profile: a step function of
// free nodes over future time. It is the substrate of both backfilling
// variants — EASY uses it to compute the shadow time of the queue head,
// conservative backfilling inserts a reservation for every waiting job.
//
// The profile is a sorted slice of steps; each step holds the number of
// free nodes from its time until the next step. The final step extends to
// infinity. All times are estimated: running jobs are entered with their
// projected completion (start + estimate), which is exactly the
// information a scheduler legitimately has on-line.
//
// # Complexity
//
// Profile is the optimized kernel (S = step count):
//
//   - EarliestFit is a single forward pass, O(S) worst case: when a step
//     short of nodes blocks the candidate window, the scan skips ahead and
//     resumes from the blocking step instead of re-searching from
//     notBefore (the naive restart scan is O(S²) worst case).
//   - FreeAt/MinFree/EarliestFit locate their starting step through a
//     last-query cursor: schedulers query monotonically non-decreasing
//     times, so the covering step is almost always the cursor's step or
//     its successor, O(1) amortized; a miss falls back to binary search,
//     O(log S).
//   - Reserve/Release split at most two boundaries (memmove insert) and
//     re-coalesce only at the interval edges — inner boundaries cannot
//     merge because both sides shift by the same amount — so a reservation
//     costs O(S) memmove with zero allocations once the backing array is
//     warm. Reset reuses that array, which is what kills the allocation
//     storm in conservative backfilling's per-pass profile rebuilds.
//
// The original naive implementation is kept alive as Reference, the
// brute-force oracle of the differential tests (differential_test.go,
// FuzzProfileOps) and of cmd/bench's before/after numbers (BENCH_1.json).
package profile

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"jobsched/internal/job"
)

// Infinity is the time horizon of the last step.
const Infinity int64 = math.MaxInt64

type step struct {
	at   int64 // step start time
	free int   // free nodes in [at, next.at)
}

// Profile is a step function of free nodes over time. The zero value is
// unusable; create profiles with New (or recycle one with Reset).
//
// A Profile is not safe for concurrent use: the query cursor mutates on
// reads. Each simulation goroutine must own its profiles (the evaluation
// grid gives every cell its own scheduler, so this holds by construction).
type Profile struct {
	steps []step
	nodes int // machine size
	// cur is the query cursor: the index of the step that covered the last
	// queried time. Purely a performance hint — seekIndex re-validates it
	// on every use — so mutations only need to keep it in range lazily.
	cur int
	// stats, when attached via SetStats, counts kernel operations for the
	// telemetry layer. nil (the default) costs one branch per operation.
	stats *Stats
	// passNow anchors an open batched scheduling pass (see BeginPass).
	passNow int64
}

// New returns a profile for a machine with the given node count, entirely
// free from time `from` on.
func New(nodes int, from int64) *Profile {
	if nodes <= 0 {
		panic("profile: machine must have at least one node")
	}
	return &Profile{
		steps: []step{{at: from, free: nodes}},
		nodes: nodes,
	}
}

// Nodes returns the machine size.
func (p *Profile) Nodes() int { return p.nodes }

// Reset reinitializes p to a fully free machine of the given size from
// time `from` on, reusing the step storage. It is the scratch-profile
// entry point: a scheduler that rebuilds its reservation profile on every
// pass calls Reset instead of New and performs zero allocations once the
// backing array has grown to the working-set size.
func (p *Profile) Reset(nodes int, from int64) {
	if nodes <= 0 {
		panic("profile: machine must have at least one node")
	}
	p.nodes = nodes
	p.steps = append(p.steps[:0], step{at: from, free: nodes})
	p.cur = 0
	if p.stats != nil {
		p.stats.Resets++
	}
}

// Clone returns an independent deep copy.
func (p *Profile) Clone() *Profile {
	c := &Profile{nodes: p.nodes, steps: make([]step, len(p.steps))}
	copy(c.steps, p.steps)
	return c
}

// CloneInto copies p into dst, reusing dst's step storage (the
// allocation-free counterpart of Clone for scratch pools).
func (p *Profile) CloneInto(dst *Profile) {
	dst.nodes = p.nodes
	dst.steps = append(dst.steps[:0], p.steps...)
	dst.cur = 0
}

// FreeAt returns the number of free nodes at time t. Times before the
// first step report the first step's value.
func (p *Profile) FreeAt(t int64) int {
	if p.stats != nil {
		p.stats.FreeAt++
	}
	return p.steps[p.seekIndex(t)].free
}

// seekIndex returns the index of the step covering time t (the last step
// with at <= t, clamped to 0), starting the search at the query cursor:
// the common monotone-query case resolves in O(1), anything else falls
// back to a binary search of the relevant side.
func (p *Profile) seekIndex(t int64) int {
	i := p.cur
	if i >= len(p.steps) {
		i = len(p.steps) - 1
	}
	if p.steps[i].at > t {
		// Behind the cursor: binary search the prefix [0, i).
		j := sort.Search(i, func(k int) bool { return p.steps[k].at > t })
		if j > 0 {
			j--
		}
		p.cur = j
		return j
	}
	// At or ahead of the cursor: the covering step is almost always the
	// cursor's or one of the next few; otherwise binary search the suffix.
	for n := 0; n < 4; n++ {
		if i+1 >= len(p.steps) || p.steps[i+1].at > t {
			p.cur = i
			return i
		}
		i++
	}
	off := i + 1
	j := sort.Search(len(p.steps)-off, func(k int) bool { return p.steps[off+k].at > t })
	i = off + j - 1
	p.cur = i
	return i
}

// splitAt ensures a step boundary exists exactly at time t and returns its
// index. Times before the first step extend the profile backwards with
// the first step's value. atLeast is a lower bound on the answer (0 when
// unknown): Reserve/Release pass the start boundary's index so the end
// boundary's search skips the prefix.
func (p *Profile) splitAt(t int64, atLeast int) int {
	i := atLeast + sort.Search(len(p.steps)-atLeast,
		func(k int) bool { return p.steps[atLeast+k].at >= t })
	if i < len(p.steps) && p.steps[i].at == t {
		return i
	}
	var free int
	if i == 0 {
		free = p.steps[0].free
	} else {
		free = p.steps[i-1].free
	}
	p.steps = append(p.steps, step{})
	copy(p.steps[i+1:], p.steps[i:])
	p.steps[i] = step{at: t, free: free}
	return i
}

// Reserve subtracts `nodes` free nodes on [start, end). It panics if the
// reservation would drive any step negative — callers must only reserve
// intervals found by EarliestFit or known to fit.
func (p *Profile) Reserve(nodes int, start, end int64) {
	if nodes <= 0 || end <= start {
		panic("profile: Reserve requires positive nodes and start < end")
	}
	if p.stats != nil {
		p.stats.Reserve++
	}
	i := p.splitAt(start, 0)
	j := p.splitAt(end, i)
	for k := i; k < j; k++ {
		p.steps[k].free -= nodes
		if p.steps[k].free < 0 {
			panic(fmt.Sprintf("profile: overcommit at t=%d (%d free after reserving %d)",
				p.steps[k].at, p.steps[k].free, nodes))
		}
	}
	p.coalesceEdges(i, j)
}

// ReserveClamped subtracts up to `nodes` free nodes on [start, end),
// clamping each step at zero instead of panicking on overcommit. It
// models capacity that *disappears* rather than capacity a job occupies:
// an announced maintenance drain takes its nodes regardless of what the
// reservation profile thinks is free, and any shortfall manifests as
// aborted jobs at run time, not as a scheduler invariant violation.
func (p *Profile) ReserveClamped(nodes int, start, end int64) {
	if nodes <= 0 || end <= start {
		panic("profile: ReserveClamped requires positive nodes and start < end")
	}
	if p.stats != nil {
		p.stats.ReserveClamped++
	}
	i := p.splitAt(start, 0)
	j := p.splitAt(end, i)
	for k := i; k < j; k++ {
		p.steps[k].free -= nodes
		if p.steps[k].free < 0 {
			p.steps[k].free = 0
		}
	}
	// Clamping can equalize *interior* neighbors (two steps both pinned to
	// zero), so the edge-only coalesce of Reserve/Release is not enough:
	// sweep the whole touched range backwards, boundaries included. The
	// sweep reaches one past j because a drain entirely before the profile
	// start makes splitAt(end) insert a boundary equal to its *successor*
	// (the backward extension copies the old first step's value).
	hi := j + 1
	if hi > len(p.steps)-1 {
		hi = len(p.steps) - 1
	}
	for k := hi; k >= 1 && k >= i; k-- {
		if p.steps[k].free == p.steps[k-1].free {
			p.steps = append(p.steps[:k], p.steps[k+1:]...)
		}
	}
}

// Release adds `nodes` free nodes on [start, end). Used when a running
// job completes earlier than estimated: the remainder of its projected
// allocation is handed back.
func (p *Profile) Release(nodes int, start, end int64) {
	if nodes <= 0 || end <= start {
		panic("profile: Release requires positive nodes and start < end")
	}
	if p.stats != nil {
		p.stats.Release++
	}
	i := p.splitAt(start, 0)
	j := p.splitAt(end, i)
	for k := i; k < j; k++ {
		p.steps[k].free += nodes
		if p.steps[k].free > p.nodes {
			panic(fmt.Sprintf("profile: release beyond machine size at t=%d", p.steps[k].at))
		}
	}
	p.coalesceEdges(i, j)
}

// coalesceEdges merges equal-valued neighbors at the boundaries of a
// range update on [i, j). Interior boundaries cannot merge — both sides
// shifted by the same amount, and they differed before — so only steps i
// and j can have become redundant. Removing at most two steps keeps the
// canonical form without the naive full-slice sweep.
func (p *Profile) coalesceEdges(i, j int) {
	// The end boundary first so index i stays valid.
	if j < len(p.steps) && p.steps[j].free == p.steps[j-1].free {
		p.steps = append(p.steps[:j], p.steps[j+1:]...)
	}
	if i > 0 && p.steps[i].free == p.steps[i-1].free {
		p.steps = append(p.steps[:i], p.steps[i+1:]...)
	}
}

// EarliestFit returns the earliest time >= notBefore at which `nodes`
// nodes are simultaneously free for `duration` seconds. duration may be
// huge (estimates of long jobs); overflow is clamped to Infinity. If no
// finite start admits the job — the tail of the profile is permanently
// short of `nodes` free nodes (a reservation ending at Infinity) —
// Infinity is returned.
//
// The scan is a single forward pass with skip-ahead indexing: when a step
// short of `nodes` blocks the candidate window, the candidate start jumps
// to the end of the blocking step and the scan resumes there — earlier
// steps are never revisited, so the whole query is O(S).
func (p *Profile) EarliestFit(nodes int, duration int64, notBefore int64) int64 {
	if nodes > p.nodes {
		panic(fmt.Sprintf("profile: job wants %d nodes on a %d-node machine", nodes, p.nodes))
	}
	if duration <= 0 {
		panic("profile: EarliestFit requires positive duration")
	}
	if p.stats != nil {
		p.stats.EarliestFit++
	}
	anchor := p.seekIndex(notBefore)
	start := notBefore
	if p.steps[anchor].at > start {
		// notBefore precedes the profile: like the reference, the search
		// begins at the profile start.
		start = p.steps[anchor].at
	}
	end := satEnd(start, duration)
	for j := anchor; j < len(p.steps); j++ {
		if p.steps[j].free < nodes {
			if j+1 >= len(p.steps) {
				// The profile is permanently short of `nodes` from this
				// step on: no finite start exists.
				return Infinity
			}
			// Blocked: skip ahead. The window restarts at the end of the
			// blocking step; steps before j+1 are never revisited.
			start = p.steps[j+1].at
			end = satEnd(start, duration)
			continue
		}
		segEnd := Infinity
		if j+1 < len(p.steps) {
			segEnd = p.steps[j+1].at
		}
		if segEnd >= end {
			// Every step from the current anchor through j admits the job
			// and the feasible span now covers [start, start+duration).
			return start
		}
	}
	return Infinity
}

// MinFree returns the minimum number of free nodes over [start, end).
// Panics on an empty interval.
func (p *Profile) MinFree(start, end int64) int {
	if end <= start {
		panic("profile: MinFree requires start < end")
	}
	if p.stats != nil {
		p.stats.MinFree++
	}
	i := p.seekIndex(start)
	min := p.steps[i].free
	for j := i + 1; j < len(p.steps) && p.steps[j].at < end; j++ {
		if p.steps[j].free < min {
			min = p.steps[j].free
		}
	}
	return min
}

// BeginPass opens a batched scheduling pass anchored at `now`. The array
// kernel has no canonicalization to defer, so the pass only records the
// anchor time (and counts toward Stats.Passes for comparability with the
// tree kernel).
func (p *Profile) BeginPass(now int64) {
	p.passNow = now
	if p.stats != nil {
		p.stats.Passes++
	}
}

// StartMany places each request at its earliest fit from the pass time
// and reserves it, appending the start times to `starts`. Identical in
// effect to the equivalent sequential EarliestFit+Reserve loop (it *is*
// that loop here).
func (p *Profile) StartMany(reqs []StartReq, starts []int64) []int64 {
	if p.stats != nil {
		p.stats.BatchedStarts = job.AddSat(p.stats.BatchedStarts, int64(len(reqs)))
	}
	return startManySequential(p, reqs, p.passNow, starts)
}

// CommitPass closes the pass. Nothing was deferred: no-op.
func (p *Profile) CommitPass() {}

// StepCount returns the number of steps (diagnostics, complexity tests).
func (p *Profile) StepCount() int { return len(p.steps) }

// String renders the profile compactly for debugging.
func (p *Profile) String() string {
	var b strings.Builder
	b.WriteString("profile[")
	for i, s := range p.steps {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%d", s.at, s.free)
	}
	b.WriteByte(']')
	return b.String()
}
