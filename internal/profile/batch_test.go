package profile

import (
	"fmt"
	"math/rand"
	"testing"
)

// Metamorphic tests for the batch API: by specification (kernel.go),
// BeginPass/StartMany/CommitPass must produce a profile state and a
// start-time sequence identical to the equivalent sequential
// EarliestFit+Reserve loop — on every kernel, including the tree's
// deferred-coalescing path, and including drain-crossing and
// saturating-reserve (permanent, to-Infinity) job sets.

// seqStartLoop is the explicitly-written sequential loop the batch API is
// specified against. Deliberately NOT startManySequential: the test must
// not compare the implementation against itself.
func seqStartLoop(k Kernel, reqs []StartReq, now int64) []int64 {
	starts := make([]int64, 0, len(reqs))
	for _, r := range reqs {
		at := k.EarliestFit(r.Nodes, r.Duration, now)
		starts = append(starts, at)
		if at == Infinity {
			continue
		}
		end := at + r.Duration
		if end < at {
			end = Infinity
		}
		k.Reserve(r.Nodes, at, end)
	}
	return starts
}

// buildRandomBase drives all three kernels through an identical random
// mutation prefix: feasible reservations (some permanent), drains, and
// early releases. Returns them ready for a batch-vs-sequential trial.
func buildRandomBase(rng *rand.Rand, nodes int) (*Tree, *Profile, *Reference) {
	tree := NewTree(nodes, 0)
	opt := New(nodes, 0)
	ref := NewReference(nodes, 0)
	for i, n := 0, rng.Intn(30); i < n; i++ {
		w := 1 + rng.Intn(nodes)
		switch rng.Intn(4) {
		case 0: // plain reservation
			d := int64(1 + rng.Intn(200))
			at := ref.EarliestFit(w, d, int64(rng.Intn(300)))
			if at == Infinity {
				continue
			}
			end := satEnd(at, d)
			tree.Reserve(w, at, end)
			opt.Reserve(w, at, end)
			ref.Reserve(w, at, end)
		case 1: // drain (may overcommit, saturates at zero)
			lo := int64(rng.Intn(300))
			hi := lo + 1 + int64(rng.Intn(120))
			tree.ReserveClamped(w, lo, hi)
			opt.ReserveClamped(w, lo, hi)
			ref.ReserveClamped(w, lo, hi)
		case 2: // permanent reservation: a tail short of w nodes forever
			at := ref.EarliestFit(w, Infinity, int64(rng.Intn(100)))
			if at == Infinity {
				continue
			}
			tree.Reserve(w, at, Infinity)
			opt.Reserve(w, at, Infinity)
			ref.Reserve(w, at, Infinity)
		case 3: // release a fresh feasible slice (early completion)
			d := int64(10 + rng.Intn(100))
			at := ref.EarliestFit(w, d, int64(rng.Intn(200)))
			if at == Infinity {
				continue
			}
			end := satEnd(at, d)
			tree.Reserve(w, at, end)
			opt.Reserve(w, at, end)
			ref.Reserve(w, at, end)
			cut := at + (end-at)/2
			if cut > at {
				tree.Release(w, cut, end)
				opt.Release(w, cut, end)
				ref.Release(w, cut, end)
			}
		}
	}
	return tree, opt, ref
}

// randomReqs generates a batch, occasionally saturating (full-width or
// infinite-duration jobs) so some starts land at Infinity mid-batch.
func randomReqs(rng *rand.Rand, nodes int) []StartReq {
	reqs := make([]StartReq, 1+rng.Intn(12))
	for i := range reqs {
		w := 1 + rng.Intn(nodes)
		d := int64(1 + rng.Intn(150))
		switch rng.Intn(8) {
		case 0:
			d = Infinity // permanent: blocks the tail for later jobs
		case 1:
			w = nodes // full machine: forces serialization
		}
		reqs[i] = StartReq{Nodes: w, Duration: d}
	}
	return reqs
}

// TestStartManyMatchesSequentialLoop is the core metamorphic property:
// for random bases and random batches, StartMany ≡ the sequential loop,
// per kernel, in both the start-time sequence and the canonical profile.
func TestStartManyMatchesSequentialLoop(t *testing.T) {
	defer func(old int) { treeSmallLimit = old }(treeSmallLimit)
	limits := []int{0, 4, treeSmallLimit} // treap, promotion boundary, production default
	rng := rand.New(rand.NewSource(0xBA7C4))
	for trial := 0; trial < 300; trial++ {
		treeSmallLimit = limits[trial%len(limits)]
		nodes := 1 + rng.Intn(64)
		tree, opt, ref := buildRandomBase(rng, nodes)
		now := int64(rng.Intn(250))
		reqs := randomReqs(rng, nodes)

		for _, tc := range []struct {
			name       string
			batch, seq Kernel
		}{
			{"tree", tree.Clone(), tree.Clone()},
			{"array", opt.Clone(), opt.Clone()},
			{"reference", ref.Clone(), ref.Clone()},
		} {
			tc.batch.BeginPass(now)
			batchStarts := tc.batch.StartMany(reqs, nil)
			tc.batch.CommitPass()
			seqStarts := seqStartLoop(tc.seq, reqs, now)

			if len(batchStarts) != len(seqStarts) {
				t.Fatalf("trial %d %s: start count %d vs %d", trial, tc.name, len(batchStarts), len(seqStarts))
			}
			for i := range reqs {
				if batchStarts[i] != seqStarts[i] {
					t.Fatalf("trial %d %s: req %d %+v started at %d batched, %d sequential\nbase: %v\nnow=%d reqs=%v",
						trial, tc.name, i, reqs[i], batchStarts[i], seqStarts[i], ref, now, reqs)
				}
			}
			if tc.batch.String() != tc.seq.String() {
				t.Fatalf("trial %d %s: profiles diverged after batch\nbatched:    %v\nsequential: %v\nnow=%d reqs=%v",
					trial, tc.name, tc.batch, tc.seq, now, reqs)
			}
			if tc.batch.StepCount() != tc.seq.StepCount() {
				t.Fatalf("trial %d %s: step counts diverged: %d batched, %d sequential",
					trial, tc.name, tc.batch.StepCount(), tc.seq.StepCount())
			}
		}
		if tr := tree.Clone(); true {
			tr.BeginPass(now)
			tr.StartMany(reqs, nil)
			tr.CommitPass()
			if err := checkTreeInvariants(tr); err != nil {
				t.Fatalf("trial %d: tree invariant violated after batch: %v", trial, err)
			}
		}
	}
}

// TestStartManyMidPassDrain exercises a drain landing inside an open
// pass (the failure-aware starter reserves drains between placements):
// eager drain coalescing must compose with the deferred reservation
// edges, still matching the sequential interleaving exactly.
func TestStartManyMidPassDrain(t *testing.T) {
	defer func(old int) { treeSmallLimit = old }(treeSmallLimit)
	limits := []int{0, 4, treeSmallLimit} // treap, promotion boundary, production default
	rng := rand.New(rand.NewSource(0xD4A1))
	for trial := 0; trial < 200; trial++ {
		treeSmallLimit = limits[trial%len(limits)]
		nodes := 2 + rng.Intn(63)
		tree, _, ref := buildRandomBase(rng, nodes)
		now := int64(rng.Intn(250))
		reqs1 := randomReqs(rng, nodes)
		reqs2 := randomReqs(rng, nodes)
		dw := 1 + rng.Intn(nodes)
		dlo := now + int64(rng.Intn(100))
		dhi := dlo + 1 + int64(rng.Intn(150))

		batch := tree.Clone()
		batch.BeginPass(now)
		b1 := batch.StartMany(reqs1, nil)
		batch.ReserveClamped(dw, dlo, dhi)
		b2 := batch.StartMany(reqs2, nil)
		batch.CommitPass()

		seq := tree.Clone()
		s1 := seqStartLoop(seq, reqs1, now)
		seq.ReserveClamped(dw, dlo, dhi)
		s2 := seqStartLoop(seq, reqs2, now)

		for i := range reqs1 {
			if b1[i] != s1[i] {
				t.Fatalf("trial %d: pre-drain req %d started at %d batched, %d sequential", trial, i, b1[i], s1[i])
			}
		}
		for i := range reqs2 {
			if b2[i] != s2[i] {
				t.Fatalf("trial %d: post-drain req %d started at %d batched, %d sequential", trial, i, b2[i], s2[i])
			}
		}
		if batch.String() != seq.String() {
			t.Fatalf("trial %d: profiles diverged\nbatched:    %v\nsequential: %v\ndrain=(%d,%d,%d) base: %v",
				trial, batch, seq, dw, dlo, dhi, ref)
		}
		if err := checkTreeInvariants(batch); err != nil {
			t.Fatalf("trial %d: tree invariant violated: %v", trial, err)
		}
	}
}

// TestStartManySaturating pins the saturating edge cases by hand: a
// batch that fills the machine mid-pass must hand later jobs the exact
// post-reservation profile, and permanent jobs push followers to
// Infinity — identically on every kernel.
func TestStartManySaturating(t *testing.T) {
	defer func(old int) { treeSmallLimit = old }(treeSmallLimit)
	treeSmallLimit = 0 // the tree case must pin the treap's deferred-coalescing path
	for _, tc := range []struct {
		name string
		mk   func() Kernel
	}{
		{"tree", func() Kernel { return NewTree(8, 0) }},
		{"array", func() Kernel { return New(8, 0) }},
		{"reference", func() Kernel { return NewReference(8, 0) }},
	} {
		k := tc.mk()
		k.BeginPass(10)
		starts := k.StartMany([]StartReq{
			{Nodes: 8, Duration: 5},        // full machine: [10,15)
			{Nodes: 8, Duration: 5},        // must serialize: [15,20)
			{Nodes: 4, Duration: Infinity}, // permanent from 20 on
			{Nodes: 5, Duration: 1},        // only 4 free from 20 on: Infinity
			{Nodes: 4, Duration: 3},        // fits alongside the permanent job at 20
		}, nil)
		k.CommitPass()
		want := []int64{10, 15, 20, Infinity, 20}
		got := fmt.Sprint(starts)
		if got != fmt.Sprint(want) {
			t.Errorf("%s: starts = %v, want %v (profile %v)", tc.name, starts, want, k)
		}
	}
}
