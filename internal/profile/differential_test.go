package profile

import (
	"math/rand"
	"testing"
)

// This file implements the differential oracle: the optimized Profile and
// the brute-force Reference are driven through identical operation
// sequences decoded from a byte stream, and every observable — query
// results, canonical step functions, step counts — must match exactly.
// The same interpreter backs the seeded randomized property test and the
// FuzzProfileOps fuzz target.

// opReader decodes interpreter operands from a byte stream.
type opReader struct {
	data []byte
	pos  int
}

func (r *opReader) done() bool { return r.pos >= len(r.data) }

func (r *opReader) byte() byte {
	if r.done() {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

// time decodes a small event time; a handful of hot values force step
// collisions and coalescing.
func (r *opReader) time() int64 { return int64(r.byte()) }

// duration decodes a window length, occasionally huge to exercise the
// start+duration overflow clamp near Infinity.
func (r *opReader) duration() int64 {
	b := r.byte()
	switch b % 16 {
	case 0:
		return Infinity
	case 1:
		return Infinity - int64(r.byte())
	default:
		return 1 + int64(b)
	}
}

// reservation is a ledger entry: an interval currently reserved on both
// profiles, so that partial Releases stay feasible by construction.
type reservation struct {
	width      int
	start, end int64
}

// runDifferential interprets one op sequence against both implementations
// and fails on the first divergence.
func runDifferential(t *testing.T, data []byte) {
	t.Helper()
	r := &opReader{data: data}
	nodes := 1 + int(r.byte()%64)
	from := r.time()
	opt := New(nodes, from)
	ref := NewReference(nodes, from)
	var ledger []reservation

	check := func(op string, got, want int64) {
		if got != want {
			t.Fatalf("%s diverged: optimized %d, reference %d\noptimized: %v\nreference: %v",
				op, got, want, opt, ref)
		}
	}

	for ops := 0; !r.done() && ops < 512; ops++ {
		switch r.byte() % 7 {
		case 0: // EarliestFit
			w := 1 + int(r.byte())%nodes
			d := r.duration()
			nb := r.time()
			check("EarliestFit", opt.EarliestFit(w, d, nb), ref.EarliestFit(w, d, nb))
		case 1: // Reserve a feasible interval found by the oracle
			w := 1 + int(r.byte())%nodes
			d := r.duration()
			nb := r.time()
			at := ref.EarliestFit(w, d, nb)
			check("EarliestFit(pre-Reserve)", opt.EarliestFit(w, d, nb), at)
			if at == Infinity {
				continue
			}
			end := at + d
			if end < at { // overflow: permanent reservation
				end = Infinity
			}
			opt.Reserve(w, at, end)
			ref.Reserve(w, at, end)
			ledger = append(ledger, reservation{width: w, start: at, end: end})
		case 2: // Release the tail of an outstanding reservation
			if len(ledger) == 0 {
				continue
			}
			i := int(r.byte()) % len(ledger)
			res := ledger[i]
			span := res.end - res.start
			cut := res.start
			if span > 1 {
				cut += int64(r.byte()) % span
			}
			opt.Release(res.width, cut, res.end)
			ref.Release(res.width, cut, res.end)
			if cut == res.start {
				ledger = append(ledger[:i], ledger[i+1:]...)
			} else {
				ledger[i].end = cut
			}
		case 3: // MinFree
			lo := r.time()
			hi := lo + 1 + int64(r.byte())
			check("MinFree", int64(opt.MinFree(lo, hi)), int64(ref.MinFree(lo, hi)))
		case 4: // FreeAt
			at := r.time()
			check("FreeAt", int64(opt.FreeAt(at)), int64(ref.FreeAt(at)))
		case 5: // monotone query run: the cursor fast path must stay exact
			at := r.time()
			for k := 0; k < 4; k++ {
				check("FreeAt(monotone)", int64(opt.FreeAt(at)), int64(ref.FreeAt(at)))
				at += int64(r.byte() % 8)
			}
		case 6: // ReserveClamped: drains may overcommit freely, the kernel
			// saturates at zero (and must coalesce interior zero runs).
			w := 1 + int(r.byte())%nodes
			at := r.time()
			end := at + 1 + int64(r.byte())
			opt.ReserveClamped(w, at, end)
			ref.ReserveClamped(w, at, end)
		}
		if opt.StepCount() != ref.StepCount() {
			t.Fatalf("step counts diverged: optimized %d (%v), reference %d (%v)",
				opt.StepCount(), opt, ref.StepCount(), ref)
		}
		if opt.String() != ref.String() {
			t.Fatalf("canonical forms diverged:\noptimized: %v\nreference: %v", opt, ref)
		}
	}
}

// TestDifferentialRandomOps drives both implementations through seeded
// randomized op sequences. Any mismatch in EarliestFit, MinFree, FreeAt,
// Reserve/Release effects, coalescing, or step counts fails the test.
func TestDifferentialRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(0xD1FF))
	for seq := 0; seq < 400; seq++ {
		data := make([]byte, 64+rng.Intn(512))
		rng.Read(data)
		runDifferential(t, data)
	}
}

// TestDifferentialAdversarial pins hand-built sequences at the known
// boundary behaviors: permanently blocked tails (reservations to
// Infinity), huge durations, and queries before the profile start.
func TestDifferentialAdversarial(t *testing.T) {
	nodes := 8
	opt := New(nodes, 50)
	ref := NewReference(nodes, 50)
	mirror := func(f func(p interface {
		Reserve(int, int64, int64)
		Release(int, int64, int64)
	})) {
		f(opt)
		f(ref)
	}
	mirror(func(p interface {
		Reserve(int, int64, int64)
		Release(int, int64, int64)
	}) {
		p.Reserve(5, 60, Infinity) // permanent: only 3 free from t=60 on
		p.Reserve(3, 100, 200)     // fully blocked window inside the tail
		p.Release(5, 90, 100)      // early-completion handback before it
	})
	type q struct {
		w  int
		d  int64
		nb int64
	}
	for _, c := range []q{
		{1, 10, 0}, {1, 10, 1000}, {4, 1, 0}, {4, 1, 70},
		{4, Infinity, 0}, {1, Infinity, 0}, {8, 1, 0}, {8, 2, 0},
		{3, Infinity - 1, 55}, {1, 1, Infinity - 1},
	} {
		got := opt.EarliestFit(c.w, c.d, c.nb)
		want := ref.EarliestFit(c.w, c.d, c.nb)
		if got != want {
			t.Errorf("EarliestFit(%d,%d,%d): optimized %d, reference %d",
				c.w, c.d, c.nb, got, want)
		}
	}
	for lo := int64(0); lo < 250; lo += 7 {
		if a, b := opt.MinFree(lo, lo+13), ref.MinFree(lo, lo+13); a != b {
			t.Errorf("MinFree(%d,%d): optimized %d, reference %d", lo, lo+13, a, b)
		}
		if a, b := opt.FreeAt(lo), ref.FreeAt(lo); a != b {
			t.Errorf("FreeAt(%d): optimized %d, reference %d", lo, a, b)
		}
	}
	if opt.String() != ref.String() {
		t.Errorf("canonical forms diverged:\noptimized: %v\nreference: %v", opt, ref)
	}
}

// FuzzProfileOps is the fuzz entry of the same differential oracle: the
// fuzzer mutates the op stream, the interpreter keeps both
// implementations in lockstep. Run with
//
//	go test -fuzz FuzzProfileOps ./internal/profile
func FuzzProfileOps(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{63, 10, 1, 3, 200, 0, 17, 0, 255, 255, 1, 2, 3, 4, 5, 6, 7, 8})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 8; i++ {
		data := make([]byte, 32+rng.Intn(160))
		rng.Read(data)
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		runDifferential(t, data)
	})
}
