package profile

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// This file implements the differential oracle: the tree kernel, the
// optimized array kernel and the brute-force Reference are driven through
// identical operation sequences decoded from a byte stream, and every
// observable — query results, batch-pass start sets, canonical step
// functions, step counts — must match exactly. On divergence the byte
// stream is shrunk (chunked delta-debugging) and the failure reports the
// minimal reproducing op list, ready to be pinned as a regression test.
// The same interpreter backs the seeded randomized property test and the
// FuzzProfileOps / FuzzProfileTree fuzz targets.

// opReader decodes interpreter operands from a byte stream.
type opReader struct {
	data []byte
	pos  int
}

func (r *opReader) done() bool { return r.pos >= len(r.data) }

func (r *opReader) byte() byte {
	if r.done() {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

// time decodes a small event time; a handful of hot values force step
// collisions and coalescing.
func (r *opReader) time() int64 { return int64(r.byte()) }

// duration decodes a window length, occasionally huge to exercise the
// start+duration overflow clamp near Infinity.
func (r *opReader) duration() int64 {
	b := r.byte()
	switch b % 16 {
	case 0:
		return Infinity
	case 1:
		return Infinity - int64(r.byte())
	default:
		return 1 + int64(b)
	}
}

// reservation is a ledger entry: an interval currently reserved on all
// kernels, so that partial Releases stay feasible by construction.
type reservation struct {
	width      int
	start, end int64
}

// diffOptions tunes one interpreter run.
type diffOptions struct {
	// treeInvariants validates the tree kernel's structural invariants
	// (BST order, heap order, lazy-consistent min/max/count aggregates,
	// logarithmic height) after every operation. FuzzProfileTree sets it;
	// the pure differential paths leave it off for speed.
	treeInvariants bool
}

// diffError is a divergence found by the interpreter, at which op.
type diffError struct {
	op  int
	msg string
}

func (e *diffError) Error() string { return fmt.Sprintf("op %d: %s", e.op, e.msg) }

// interpretDifferential runs one op sequence against all three kernels in
// lockstep and returns the first divergence (nil if none). When log is
// non-nil, every decoded op is appended to it in execution order. Kernel
// panics are captured as divergences so the shrinker can chase them.
func interpretDifferential(data []byte, log *[]string, o diffOptions) (err error) {
	r := &opReader{data: data}
	nodes := 1 + int(r.byte()%64)
	from := r.time()
	// One byte picks the tree's array-mode budget, so the stream explores
	// all three regimes: pure treap, early promotion (the mode boundary),
	// and the production default.
	limit := treeSmallLimit
	switch r.byte() % 3 {
	case 0:
		limit = 0
	case 1:
		limit = 4
	}
	defer func(old int) { treeSmallLimit = old }(treeSmallLimit)
	treeSmallLimit = limit
	tree := NewTree(nodes, from)
	opt := New(nodes, from)
	ref := NewReference(nodes, from)
	spareTree, spareOpt, spareRef := &Tree{}, &Profile{}, &Reference{}
	var ledger []reservation

	opNo := 0
	logf := func(format string, args ...any) {
		if log != nil {
			*log = append(*log, fmt.Sprintf(format, args...))
		}
	}
	logf("init: nodes=%d from=%d treeLimit=%d", nodes, from, limit)

	defer func() {
		if p := recover(); p != nil {
			err = &diffError{op: opNo, msg: fmt.Sprintf("kernel panic: %v", p)}
		}
	}()

	fail := func(format string, args ...any) *diffError {
		return &diffError{op: opNo, msg: fmt.Sprintf(format, args...)}
	}
	// check3 compares tree and array results against the oracle's.
	check3 := func(op string, gotTree, gotOpt, want int64) *diffError {
		if gotTree != want || gotOpt != want {
			return fail("%s diverged: tree %d, array %d, reference %d\ntree:      %v\narray:     %v\nreference: %v",
				op, gotTree, gotOpt, want, tree, opt, ref)
		}
		return nil
	}

	for ; !r.done() && opNo < 512; opNo++ {
		switch r.byte() % 10 {
		case 0: // EarliestFit
			w := 1 + int(r.byte())%nodes
			d := r.duration()
			nb := r.time()
			logf("EarliestFit(%d, %d, %d)", w, d, nb)
			if e := check3("EarliestFit",
				tree.EarliestFit(w, d, nb), opt.EarliestFit(w, d, nb), ref.EarliestFit(w, d, nb)); e != nil {
				return e
			}
		case 1: // Reserve a feasible interval found by the oracle
			w := 1 + int(r.byte())%nodes
			d := r.duration()
			nb := r.time()
			at := ref.EarliestFit(w, d, nb)
			logf("Reserve(%d, fit@%d, d=%d) // nb=%d", w, at, d, nb)
			if e := check3("EarliestFit(pre-Reserve)",
				tree.EarliestFit(w, d, nb), opt.EarliestFit(w, d, nb), at); e != nil {
				return e
			}
			if at == Infinity {
				continue
			}
			end := satEnd(at, d)
			tree.Reserve(w, at, end)
			opt.Reserve(w, at, end)
			ref.Reserve(w, at, end)
			ledger = append(ledger, reservation{width: w, start: at, end: end})
		case 2: // Release the tail of an outstanding reservation
			if len(ledger) == 0 {
				continue
			}
			i := int(r.byte()) % len(ledger)
			res := ledger[i]
			span := res.end - res.start
			cut := res.start
			if span > 1 {
				cut += int64(r.byte()) % span
			}
			logf("Release(%d, %d, %d)", res.width, cut, res.end)
			tree.Release(res.width, cut, res.end)
			opt.Release(res.width, cut, res.end)
			ref.Release(res.width, cut, res.end)
			if cut == res.start {
				ledger = append(ledger[:i], ledger[i+1:]...)
			} else {
				ledger[i].end = cut
			}
		case 3: // MinFree
			lo := r.time()
			hi := lo + 1 + int64(r.byte())
			logf("MinFree(%d, %d)", lo, hi)
			if e := check3("MinFree",
				int64(tree.MinFree(lo, hi)), int64(opt.MinFree(lo, hi)), int64(ref.MinFree(lo, hi))); e != nil {
				return e
			}
		case 4: // FreeAt
			at := r.time()
			logf("FreeAt(%d)", at)
			if e := check3("FreeAt",
				int64(tree.FreeAt(at)), int64(opt.FreeAt(at)), int64(ref.FreeAt(at))); e != nil {
				return e
			}
		case 5: // monotone query run: the cursor fast path must stay exact
			at := r.time()
			logf("FreeAt(monotone from %d)", at)
			for k := 0; k < 4; k++ {
				if e := check3("FreeAt(monotone)",
					int64(tree.FreeAt(at)), int64(opt.FreeAt(at)), int64(ref.FreeAt(at))); e != nil {
					return e
				}
				at += int64(r.byte() % 8)
			}
		case 6: // ReserveClamped: drains may overcommit freely, the kernel
			// saturates at zero (and must coalesce interior zero runs).
			w := 1 + int(r.byte())%nodes
			at := r.time()
			end := at + 1 + int64(r.byte())
			logf("ReserveClamped(%d, %d, %d)", w, at, end)
			tree.ReserveClamped(w, at, end)
			opt.ReserveClamped(w, at, end)
			ref.ReserveClamped(w, at, end)
		case 7: // Reset: new machine size and origin, reservations void
			nodes = 1 + int(r.byte()%64)
			from = r.time()
			logf("Reset(%d, %d)", nodes, from)
			tree.Reset(nodes, from)
			opt.Reset(nodes, from)
			ref.Reset(nodes, from)
			ledger = ledger[:0]
		case 8: // CloneInto a spare and continue on the copy
			logf("CloneInto(swap)")
			tree.CloneInto(spareTree)
			opt.CloneInto(spareOpt)
			ref.CloneInto(spareRef)
			tree, spareTree = spareTree, tree
			opt, spareOpt = spareOpt, opt
			ref, spareRef = spareRef, ref
		case 9: // batch pass: BeginPass / StartMany / CommitPass
			now := r.time()
			k := 1 + int(r.byte()%4)
			reqs := make([]StartReq, 0, k)
			for n := 0; n < k; n++ {
				reqs = append(reqs, StartReq{Nodes: 1 + int(r.byte())%nodes, Duration: r.duration()})
			}
			logf("BatchPass(now=%d, reqs=%v)", now, reqs)
			tree.BeginPass(now)
			opt.BeginPass(now)
			ref.BeginPass(now)
			sTree := tree.StartMany(reqs, nil)
			sOpt := opt.StartMany(reqs, nil)
			sRef := ref.StartMany(reqs, nil)
			tree.CommitPass()
			opt.CommitPass()
			ref.CommitPass()
			for n := range reqs {
				if e := check3(fmt.Sprintf("StartMany[%d]", n), sTree[n], sOpt[n], sRef[n]); e != nil {
					return e
				}
				if sRef[n] != Infinity {
					ledger = append(ledger, reservation{
						width: reqs[n].Nodes,
						start: sRef[n],
						end:   satEnd(sRef[n], reqs[n].Duration),
					})
				}
			}
		}
		if tree.StepCount() != ref.StepCount() || opt.StepCount() != ref.StepCount() {
			return fail("step counts diverged: tree %d (%v), array %d (%v), reference %d (%v)",
				tree.StepCount(), tree, opt.StepCount(), opt, ref.StepCount(), ref)
		}
		if s := ref.String(); tree.String() != s || opt.String() != s {
			return fail("canonical forms diverged:\ntree:      %v\narray:     %v\nreference: %v", tree, opt, ref)
		}
		if o.treeInvariants {
			if e := checkTreeInvariants(tree); e != nil {
				return fail("tree invariant violated: %v\ntree: %v", e, tree)
			}
		}
	}
	return nil
}

// shrinkBytes minimizes a failing byte stream by chunked removal
// (delta-debugging): ever-smaller chunks are dropped while the input
// keeps failing. Bounded by a run budget so pathological inputs cannot
// stall a test.
func shrinkBytes(data []byte, fails func([]byte) bool) []byte {
	cur := append([]byte(nil), data...)
	budget := 3000
	for chunk := len(cur) / 2; chunk > 0; {
		removed := false
		for start := 0; start+chunk <= len(cur) && budget > 0; start += chunk {
			budget--
			cand := append(append([]byte(nil), cur[:start]...), cur[start+chunk:]...)
			if len(cand) > 0 && fails(cand) {
				cur = cand
				removed = true
				break
			}
		}
		if !removed || budget <= 0 {
			chunk /= 2
		}
		if budget <= 0 {
			break
		}
	}
	return cur
}

// runDifferential interprets one op sequence against all three kernels
// and, on divergence, fails with the shrunken minimal reproducing op
// list.
func runDifferential(t *testing.T, data []byte, o diffOptions) {
	t.Helper()
	first := interpretDifferential(data, nil, o)
	if first == nil {
		return
	}
	min := shrinkBytes(data, func(cand []byte) bool {
		return interpretDifferential(cand, nil, o) != nil
	})
	var log []string
	minErr := interpretDifferential(min, &log, o)
	t.Fatalf("differential divergence: %v\n\nminimal repro (%d bytes): %#v\nreplayed ops:\n  %s\nminimal failure: %v",
		first, len(min), min, strings.Join(log, "\n  "), minErr)
}

// TestDifferentialRandomOps drives all three kernels through seeded
// randomized op sequences. Any mismatch in EarliestFit, MinFree, FreeAt,
// Reserve/Release effects, batch-pass start sets, Reset/CloneInto state,
// coalescing, or step counts fails the test with a minimal repro.
func TestDifferentialRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(0xD1FF))
	for seq := 0; seq < 400; seq++ {
		data := make([]byte, 64+rng.Intn(512))
		rng.Read(data)
		runDifferential(t, data, diffOptions{})
	}
}

// TestDifferentialRandomOpsTreeInvariants is the structural flavor: the
// same seeded sequences with the tree's BST/heap/aggregate/height
// invariants validated after every op.
func TestDifferentialRandomOpsTreeInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(0x7EE1))
	for seq := 0; seq < 100; seq++ {
		data := make([]byte, 64+rng.Intn(512))
		rng.Read(data)
		runDifferential(t, data, diffOptions{treeInvariants: true})
	}
}

// TestDifferentialAdversarial pins hand-built sequences at the known
// boundary behaviors: permanently blocked tails (reservations to
// Infinity), huge durations, and queries before the profile start.
func TestDifferentialAdversarial(t *testing.T) {
	defer func(old int) { treeSmallLimit = old }(treeSmallLimit)
	treeSmallLimit = 0 // the boundary cases must hit the treap, not the array fallback
	nodes := 8
	tree := NewTree(nodes, 50)
	opt := New(nodes, 50)
	ref := NewReference(nodes, 50)
	for _, p := range []Kernel{tree, opt, ref} {
		p.Reserve(5, 60, Infinity) // permanent: only 3 free from t=60 on
		p.Reserve(3, 100, 200)     // fully blocked window inside the tail
		p.Release(5, 90, 100)      // early-completion handback before it
	}
	type q struct {
		w  int
		d  int64
		nb int64
	}
	for _, c := range []q{
		{1, 10, 0}, {1, 10, 1000}, {4, 1, 0}, {4, 1, 70},
		{4, Infinity, 0}, {1, Infinity, 0}, {8, 1, 0}, {8, 2, 0},
		{3, Infinity - 1, 55}, {1, 1, Infinity - 1},
	} {
		want := ref.EarliestFit(c.w, c.d, c.nb)
		if got := tree.EarliestFit(c.w, c.d, c.nb); got != want {
			t.Errorf("tree EarliestFit(%d,%d,%d): got %d, reference %d", c.w, c.d, c.nb, got, want)
		}
		if got := opt.EarliestFit(c.w, c.d, c.nb); got != want {
			t.Errorf("array EarliestFit(%d,%d,%d): got %d, reference %d", c.w, c.d, c.nb, got, want)
		}
	}
	for lo := int64(0); lo < 250; lo += 7 {
		if a, b := tree.MinFree(lo, lo+13), ref.MinFree(lo, lo+13); a != b {
			t.Errorf("tree MinFree(%d,%d): got %d, reference %d", lo, lo+13, a, b)
		}
		if a, b := opt.MinFree(lo, lo+13), ref.MinFree(lo, lo+13); a != b {
			t.Errorf("array MinFree(%d,%d): got %d, reference %d", lo, lo+13, a, b)
		}
		if a, b := tree.FreeAt(lo), ref.FreeAt(lo); a != b {
			t.Errorf("tree FreeAt(%d): got %d, reference %d", lo, a, b)
		}
		if a, b := opt.FreeAt(lo), ref.FreeAt(lo); a != b {
			t.Errorf("array FreeAt(%d): got %d, reference %d", lo, a, b)
		}
	}
	if s := ref.String(); tree.String() != s || opt.String() != s {
		t.Errorf("canonical forms diverged:\ntree:      %v\narray:     %v\nreference: %v", tree, opt, ref)
	}
	if e := checkTreeInvariants(tree); e != nil {
		t.Errorf("tree invariant violated: %v", e)
	}
}

// FuzzProfileOps is the fuzz entry of the same differential oracle: the
// fuzzer mutates the op stream, the interpreter keeps all three
// implementations in lockstep. Run with
//
//	go test -fuzz FuzzProfileOps ./internal/profile
func FuzzProfileOps(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{63, 10, 1, 3, 200, 0, 17, 0, 255, 255, 1, 2, 3, 4, 5, 6, 7, 8})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 8; i++ {
		data := make([]byte, 32+rng.Intn(160))
		rng.Read(data)
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if err := interpretDifferential(data, nil, diffOptions{}); err != nil {
			t.Fatalf("differential divergence: %v", err)
		}
	})
}

// TestDifferentialShrunkenRegressions pins, as explicit op sequences,
// the minimal repros the shrinker produced while the oracle itself was
// being validated against deliberately broken kernel builds (the byte
// streams decode differently now that the interpreter grew a small-mode
// limit operand, so the decoded ops are pinned instead). Each case
// failed pre-fix on its sabotaged build:
//
//   - batch+release: with deferred edge coalescing broken, an
//     uncoalesced equal-valued step pair survived CommitPass and the
//     step counts diverged (tree 5, oracle 4);
//   - reset+batch: the same class through the Reset path — spurious
//     steps after a reset, a one-job pass and an early release;
//   - batch aggregate: with max-aggregate maintenance broken, a batched
//     reservation left a stale subtree max (stored 36, actual 54),
//     caught by the invariant checker rather than an answer mismatch.
//
// They run in both tree regimes, so a regression in deferred coalescing
// or lazy aggregate maintenance trips here with a three-op repro
// before the randomized suites go hunting for one.
func TestDifferentialShrunkenRegressions(t *testing.T) {
	defer func(old int) { treeSmallLimit = old }(treeSmallLimit)
	for _, limit := range []int{0, treeSmallLimit} {
		treeSmallLimit = limit
		for _, tc := range []struct {
			name  string
			drive func(k Kernel)
		}{
			{"batch-release-coalesce", func(k Kernel) {
				k.BeginPass(239)
				k.StartMany([]StartReq{{Nodes: 23, Duration: 184}, {Nodes: 6, Duration: Infinity}, {Nodes: 11, Duration: 39}}, nil)
				k.CommitPass()
				k.Release(23, 239, 423)
			}},
			{"reset-batch-coalesce", func(k Kernel) {
				k.Reset(15, 139)
				k.BeginPass(166)
				k.StartMany([]StartReq{{Nodes: 5, Duration: 89}}, nil)
				k.CommitPass()
				k.Release(5, 166, 255)
			}},
			{"batch-max-aggregate", func(k Kernel) {
				k.BeginPass(0)
				k.StartMany([]StartReq{{Nodes: 1, Duration: Infinity - 1}}, nil)
				k.CommitPass()
			}},
		} {
			tree := NewTree(51, 73)
			ref := NewReference(51, 73)
			tc.drive(tree)
			tc.drive(ref)
			if tree.String() != ref.String() {
				t.Errorf("limit %d, %s: canonical forms diverged:\ntree:      %v\nreference: %v", limit, tc.name, tree, ref)
			}
			if tree.StepCount() != ref.StepCount() {
				t.Errorf("limit %d, %s: step counts diverged: tree %d, reference %d", limit, tc.name, tree.StepCount(), ref.StepCount())
			}
			if e := checkTreeInvariants(tree); e != nil {
				t.Errorf("limit %d, %s: tree invariant violated: %v", limit, tc.name, e)
			}
		}
	}
}
