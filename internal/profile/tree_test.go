package profile

import (
	"fmt"
	"math/bits"
	"math/rand"
	"testing"
)

// checkTreeInvariants validates the tree kernel's structural invariants
// without disturbing it (lazy tags are accumulated, not pushed):
//
//   - BST order: in-order keys strictly increase;
//   - heap order: every node's priority >= its children's (the treap
//     property that yields the expected-logarithmic height);
//   - aggregates: each node's count/min/max equals the recomputed
//     count/min/max of its subtree's true values (val plus the sum of
//     ancestor lazy tags);
//   - range: every true value lies in [0, machine size];
//   - balance: height <= 4*log2(count)+8 — far above the treap's
//     expected ~1.39*log2 but low enough to catch degeneration into a
//     list (splitmix64 seeding gone wrong).
func checkTreeInvariants(t *Tree) error {
	if t.small != nil {
		// Array mode: no treap to validate, but the embedded kernel must be
		// canonical (sorted, coalesced, in range) and within the budget.
		if len(t.small.steps) == 0 {
			return fmt.Errorf("empty profile: always at least one step")
		}
		if len(t.small.steps) > t.smallLimit {
			return fmt.Errorf("array mode over budget: %d steps, limit %d", len(t.small.steps), t.smallLimit)
		}
		for i, s := range t.small.steps {
			if s.free < 0 || s.free > t.size {
				return fmt.Errorf("value out of range at key %d: %d free on a %d-node machine", s.at, s.free, t.size)
			}
			if i > 0 {
				if prev := t.small.steps[i-1]; s.at <= prev.at {
					return fmt.Errorf("step order violated: key %d after %d", s.at, prev.at)
				} else if s.free == prev.free {
					return fmt.Errorf("uncoalesced steps at keys %d and %d (both %d free)", prev.at, s.at, s.free)
				}
			}
		}
		return nil
	}
	if t.root == nilNode {
		return fmt.Errorf("empty tree: the profile always has at least one step")
	}
	var lastKey int64
	seen := false
	var rec func(i int32, acc int) (count int32, min, max, height int, err error)
	rec = func(i int32, acc int) (int32, int, int, int, error) {
		n := t.pool[i]
		childAcc := acc + n.add
		cnt, height := int32(1), 1
		tv := n.val + acc
		mn, mx := tv, tv
		if n.l != nilNode {
			if t.pool[n.l].pri > n.pri {
				return 0, 0, 0, 0, fmt.Errorf("heap order violated at key %d (left child)", n.key)
			}
			c, m1, m2, h, err := rec(n.l, childAcc)
			if err != nil {
				return 0, 0, 0, 0, err
			}
			cnt += c
			if m1 < mn {
				mn = m1
			}
			if m2 > mx {
				mx = m2
			}
			if h+1 > height {
				height = h + 1
			}
		}
		// In-order position: the key check happens between the subtrees.
		if seen && n.key <= lastKey {
			return 0, 0, 0, 0, fmt.Errorf("BST order violated: key %d after %d", n.key, lastKey)
		}
		lastKey, seen = n.key, true
		if tv < 0 || tv > t.size {
			return 0, 0, 0, 0, fmt.Errorf("value out of range at key %d: %d free on a %d-node machine", n.key, tv, t.size)
		}
		if n.r != nilNode {
			if t.pool[n.r].pri > n.pri {
				return 0, 0, 0, 0, fmt.Errorf("heap order violated at key %d (right child)", n.key)
			}
			c, m1, m2, h, err := rec(n.r, childAcc)
			if err != nil {
				return 0, 0, 0, 0, err
			}
			cnt += c
			if m1 < mn {
				mn = m1
			}
			if m2 > mx {
				mx = m2
			}
			if h+1 > height {
				height = h + 1
			}
		}
		if n.count != cnt {
			return 0, 0, 0, 0, fmt.Errorf("count aggregate stale at key %d: stored %d, actual %d", n.key, n.count, cnt)
		}
		if n.min+acc != mn {
			return 0, 0, 0, 0, fmt.Errorf("min aggregate stale at key %d: stored %d, actual %d", n.key, n.min+acc, mn)
		}
		if n.max+acc != mx {
			return 0, 0, 0, 0, fmt.Errorf("max aggregate stale at key %d: stored %d, actual %d", n.key, n.max+acc, mx)
		}
		return cnt, mn, mx, height, nil
	}
	cnt, _, _, height, err := rec(t.root, 0)
	if err != nil {
		return err
	}
	if limit := 4*bits.Len32(uint32(cnt)) + 8; height > limit {
		return fmt.Errorf("tree degenerated: height %d over %d steps (limit %d)", height, cnt, limit)
	}
	return nil
}

// TestTreeHeightLogarithmic grows a large profile (tens of thousands of
// steps) and asserts the deterministic treap stays balanced — the
// property the O(log S) complexity claims rest on — and that the depth
// telemetry sees the same order of magnitude.
func TestTreeHeightLogarithmic(t *testing.T) {
	var stats Stats
	tr := NewTree(1<<20, 0)
	tr.SetStats(&stats)
	rng := rand.New(rand.NewSource(0x7EE2))
	for i := 0; i < 50000; i++ {
		at := int64(rng.Intn(1 << 30))
		tr.Reserve(1+rng.Intn(4), at, at+1+int64(rng.Intn(1<<12)))
	}
	steps := tr.StepCount()
	if steps < 10000 {
		t.Fatalf("workload too coalesced to measure balance: %d steps", steps)
	}
	height := tr.Height()
	limit := 4*bits.Len(uint(steps)) + 8
	if height > limit {
		t.Fatalf("tree degenerated: height %d over %d steps (limit %d)", height, steps, limit)
	}
	if stats.TreeMaxDepth == 0 || stats.TreeMaxDepth > int64(limit) {
		t.Fatalf("depth telemetry out of range: %d (limit %d)", stats.TreeMaxDepth, limit)
	}
	if stats.TreeRebalances == 0 {
		t.Fatalf("rebalance telemetry never incremented over %d reserves", stats.Reserve)
	}
	if err := checkTreeInvariants(tr); err != nil {
		t.Fatal(err)
	}
}

// TestTreeCloneIndependence pins Clone/CloneInto semantics: the copy
// must match the original exactly and then evolve independently.
func TestTreeCloneIndependence(t *testing.T) {
	defer func(old int) { treeSmallLimit = old }(treeSmallLimit)
	for _, limit := range []int{0, treeSmallLimit} { // treap mode and array mode
		treeSmallLimit = limit
		tr := NewTree(16, 0)
		tr.Reserve(4, 10, 50)
		tr.Reserve(8, 20, Infinity)
		before := tr.String()

		c := tr.Clone()
		if c.String() != before {
			t.Fatalf("limit %d: clone mismatch: %v vs %v", limit, c, tr)
		}
		c.Reserve(2, 5, 15)
		if tr.String() != before {
			t.Fatalf("limit %d: clone mutated the original: %v", limit, tr)
		}

		dst := &Tree{}
		tr.CloneInto(dst)
		if dst.String() != before {
			t.Fatalf("limit %d: CloneInto mismatch: %v vs %v", limit, dst, tr)
		}
		dst.Release(4, 10, 20)
		if tr.String() != before {
			t.Fatalf("limit %d: CloneInto mutated the original: %v", limit, tr)
		}
		if err := checkTreeInvariants(dst); err != nil {
			t.Fatalf("limit %d: %v", limit, err)
		}
	}
}

// TestTreeEarliestFitComplexity bounds the query cost structurally: on a
// profile with many steps but a single feasible gap pattern, one
// EarliestFit must not touch more than O(log S) nodes per blocking run.
// The proxy is the depth telemetry staying logarithmic while the step
// count grows by orders of magnitude.
func TestTreeEarliestFitComplexity(t *testing.T) {
	defer func(old int) { treeSmallLimit = old }(treeSmallLimit)
	treeSmallLimit = 0 // measure the treap at every size, not the array fallback
	for _, steps := range []int{1 << 8, 1 << 12, 1 << 16} {
		tr := NewTree(4, 0)
		// Alternating tall/short steps: 2 free on even slots, 4 on odd.
		for i := 0; i < steps; i++ {
			at := int64(i) * 10
			tr.Reserve(2, at, at+5)
		}
		var stats Stats
		tr.SetStats(&stats)
		// A 3-wide job never fits a reserved slot: the query has to skip
		// every blocking run it crosses, but each skip is one descent.
		if got := tr.EarliestFit(3, 5, 3); got != 5 {
			t.Fatalf("steps=%d: EarliestFit(3,5,3) = %d, want 5", steps, got)
		}
		limit := int64(4*bits.Len(uint(tr.StepCount())) + 8)
		if stats.TreeMaxDepth > limit {
			t.Fatalf("steps=%d: query descended %d levels (limit %d)", steps, stats.TreeMaxDepth, limit)
		}
	}
}

// FuzzProfileTree is the structure-aware fuzz target for the tree
// kernel: the op-tagged byte stream drives all three kernels through the
// shared differential interpreter, and after every operation the tree's
// BST/heap order, lazy-consistent min/max/count aggregates and height
// bound are re-validated. Run with
//
//	go test -fuzz FuzzProfileTree ./internal/profile
func FuzzProfileTree(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 9, 0, 3, 2, 5, 9, 200, 2, 1, 7, 1, 9})
	f.Add([]byte{63, 10, 1, 3, 200, 0, 17, 0, 255, 255, 9, 9, 9, 8, 7, 6, 5})
	rng := rand.New(rand.NewSource(0x7EE3))
	for i := 0; i < 8; i++ {
		data := make([]byte, 32+rng.Intn(160))
		rng.Read(data)
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if err := interpretDifferential(data, nil, diffOptions{treeInvariants: true}); err != nil {
			t.Fatalf("differential divergence: %v", err)
		}
	})
}
