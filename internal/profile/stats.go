package profile

import (
	"fmt"

	"jobsched/internal/job"
)

// Stats counts availability-profile kernel operations. It is the
// telemetry hook for profile-heavy schedulers: attach one Stats to a
// scratch profile via SetStats and every kernel call increments the
// matching counter. Detached (the default), the kernel pays a single
// nil check per operation.
//
// Counters are plain fields, not atomics: a profile is owned by one
// simulation goroutine (see the Profile doc), and so is its Stats.
type Stats struct {
	EarliestFit int64
	Reserve     int64
	// ReserveClamped counts drain reservations (announced maintenance
	// carved out of the profile with saturation at zero).
	ReserveClamped int64
	Release        int64
	FreeAt         int64
	MinFree        int64
	Resets         int64

	// Batch-pass counters (BeginPass/StartMany; see kernel.go). Passes
	// counts opened passes, BatchedStarts the requests placed through
	// StartMany. Excluded from Total: a batched start still performs its
	// EarliestFit and Reserve, which Total already counts — adding the
	// pass bookkeeping would double-count work and shift every report
	// that predates the batch API.
	Passes        int64
	BatchedStarts int64
	// Tree-kernel diagnostics: the deepest root-to-node descent observed
	// and the number of subtree reattachments (the treap's rotations).
	// Excluded from Total for the same reason — they measure shape, not
	// profile operations.
	TreeMaxDepth   int64
	TreeRebalances int64
}

// Total returns the summed operation count, saturating rather than
// wrapping on pathological counter magnitudes.
func (s *Stats) Total() int64 {
	var total int64
	for _, c := range []int64{s.EarliestFit, s.Reserve, s.ReserveClamped,
		s.Release, s.FreeAt, s.MinFree, s.Resets} {
		total = job.AddSat(total, c)
	}
	return total
}

// String renders the counters compactly for reports. The clamped-reserve,
// batch-pass and tree-shape counts only appear when nonzero, so reports
// from runs that never exercise those paths render exactly as before.
func (s *Stats) String() string {
	out := fmt.Sprintf("fit=%d reserve=%d release=%d freeAt=%d minFree=%d resets=%d",
		s.EarliestFit, s.Reserve, s.Release, s.FreeAt, s.MinFree, s.Resets)
	if s.ReserveClamped > 0 {
		out += fmt.Sprintf(" clamped=%d", s.ReserveClamped)
	}
	if s.Passes > 0 || s.BatchedStarts > 0 {
		out += fmt.Sprintf(" passes=%d batched=%d", s.Passes, s.BatchedStarts)
	}
	if s.TreeMaxDepth > 0 || s.TreeRebalances > 0 {
		out += fmt.Sprintf(" treeDepth=%d rebalances=%d", s.TreeMaxDepth, s.TreeRebalances)
	}
	return out
}

// SetStats attaches (or, with nil, detaches) an operation counter to the
// profile. The pointer survives Reset — a scratch profile keeps counting
// across the per-pass rebuilds, which is exactly the per-run total the
// telemetry layer reports.
func (p *Profile) SetStats(s *Stats) { p.stats = s }
