package profile

import "jobsched/internal/job"

// Kernel is the availability-profile operation set shared by the three
// implementations in this package:
//
//   - Tree, the O(log S) balanced-tree kernel (the production default);
//   - Profile, the array-backed skip-ahead kernel it replaced (kept as the
//     perf baseline of cmd/bench's deep-backlog family); and
//   - Reference, the brute-force oracle of the differential tests.
//
// Schedulers hold their scratch profiles through this interface so the
// backend is swappable: the determinism tests run whole evaluation grids
// against both Tree and Reference and require byte-identical tables.
//
// All three implementations realize the same canonical step function —
// identical query results, identical String()/StepCount() after every
// operation — which is what the differential oracle enforces.
type Kernel interface {
	// Nodes returns the machine size.
	Nodes() int
	// Reset reinitializes to a fully free machine, reusing storage.
	Reset(nodes int, from int64)
	// FreeAt returns the free nodes at time t.
	FreeAt(t int64) int
	// MinFree returns the minimum free nodes over [start, end).
	MinFree(start, end int64) int
	// EarliestFit returns the earliest time >= notBefore at which `nodes`
	// nodes are free for `duration` seconds (Infinity if never).
	EarliestFit(nodes int, duration int64, notBefore int64) int64
	// Reserve subtracts free nodes on [start, end); panics on overcommit.
	Reserve(nodes int, start, end int64)
	// ReserveClamped subtracts free nodes on [start, end), saturating at
	// zero (announced capacity drains).
	ReserveClamped(nodes int, start, end int64)
	// Release adds free nodes on [start, end); panics beyond machine size.
	Release(nodes int, start, end int64)
	// BeginPass opens a batched scheduling pass (see StartMany).
	BeginPass(now int64)
	// StartMany places each request at its earliest fit from the pass
	// time and reserves it, appending the start times to `starts`. The
	// resulting profile state and start-time set are identical to the
	// equivalent sequential EarliestFit+Reserve loop (the metamorphic
	// property the batch tests pin).
	StartMany(reqs []StartReq, starts []int64) []int64
	// CommitPass closes the pass, restoring the canonical form when the
	// implementation deferred coalescing work during the pass.
	CommitPass()
	// StepCount returns the number of steps (diagnostics, tests).
	StepCount() int
	// String renders the canonical step function.
	String() string
	// SetStats attaches (or detaches, with nil) an operation counter.
	SetStats(s *Stats)
}

var (
	_ Kernel = (*Tree)(nil)
	_ Kernel = (*Profile)(nil)
	_ Kernel = (*Reference)(nil)
)

// StartReq is one job in a batched scheduling pass: a node width and an
// estimated duration, in queue-priority order.
type StartReq struct {
	Nodes    int
	Duration int64
}

// satEnd returns at+duration saturated to Infinity on overflow (the
// convention every EarliestFit caller in this package uses for
// reservation ends). Times are non-negative, so job.AddSat's MaxInt64
// ceiling is exactly Infinity.
func satEnd(at, duration int64) int64 {
	return job.AddSat(at, duration)
}

// startManySequential is the shared batch-pass reference loop: place each
// request at its earliest fit from `now` and reserve it. Tree overrides
// the canonicalization schedule (deferred edge coalescing), but the
// resulting step function must be identical to this loop — that is the
// batch API's defining property.
func startManySequential(k Kernel, reqs []StartReq, now int64, starts []int64) []int64 {
	for _, r := range reqs {
		at := k.EarliestFit(r.Nodes, r.Duration, now)
		starts = append(starts, at)
		if at == Infinity {
			continue
		}
		if end := satEnd(at, r.Duration); end > at {
			k.Reserve(r.Nodes, at, end)
		}
	}
	return starts
}
