package profile

import (
	"fmt"
	"strings"

	"jobsched/internal/job"
)

// Tree is the O(log S) availability-profile kernel: the canonical step
// function is stored in a balanced binary search tree keyed by step start
// time, with per-subtree minimum/maximum free-node aggregates and lazy
// range-add tags. It replaces the array-backed Profile as the scratch
// profile of the backfilling schedulers — at deep backlogs (~100k queued
// jobs) the array kernel's O(S) memmove per reservation and O(S) fit
// scan become the simulation hot path again (BENCH_3.json), while every
// Tree operation stays logarithmic:
//
//   - Reserve/Release/ReserveClamped split at most two boundaries and
//     apply one lazy range-add, O(log S) (ReserveClamped walks the steps
//     it actually clamps, O(k + log S) for k clamped steps — drains are
//     few and short, and clamping is not expressible as a range-add);
//   - EarliestFit alternates two aggregate-guided descents — "first step
//     at/after t short of w nodes" via subtree minima and "first step
//     at/after t with w nodes free" via subtree maxima — so a query costs
//     O((b+1) log S) where b is the number of blocking runs crossed,
//     O(log S) in the common immediately-feasible case (the array
//     kernel's skip-ahead scan is O(S) regardless);
//   - FreeAt/MinFree are single descents, O(log S).
//
// Balance is a deterministic treap: node priorities are splitmix64 hashes
// of a per-tree allocation counter, so the structure — and therefore
// every operation count and telemetry reading — is identical across runs
// and worker counts. No wall clock, no math/rand.
//
// The brute-force Reference remains the differential-testing oracle: the
// oracle suite (differential_test.go, FuzzProfileOps, FuzzProfileTree)
// drives Tree, Profile and Reference through identical op sequences and
// requires identical results and identical canonical step functions.
//
// Small profiles bypass the tree entirely: while the step count stays at
// or below treeSmallLimit, operations delegate to an embedded array
// kernel (Profile) — at scheduler-typical sizes (tens to hundreds of
// steps) a contiguous array beats any pointer structure on constants,
// and the array kernel is already proven against the oracle. The first
// growth past the limit promotes the steps into the treap, where they
// stay until the next Reset. Asymptotics are unchanged (the array phase
// is bounded by the constant limit), and the differential suite drives
// the limit to 0 and to tiny values so both regimes and the promotion
// boundary sit under the oracle.
//
// A Tree is not safe for concurrent use: queries push lazy tags down the
// descent path. Each simulation goroutine must own its profiles, exactly
// as with Profile.
type Tree struct {
	pool []tnode
	free []int32 // freelist of recycled pool slots
	root int32
	size int // machine size
	seq  uint64
	// small is the array-mode kernel (nil once promoted); spare retains a
	// promoted-away Profile so Reset can return to array mode without
	// allocating. smallLimit is captured from treeSmallLimit at
	// construction.
	small      *Profile
	spare      *Profile
	smallLimit int
	// pass tracks an open batched scheduling pass: edge coalescing is
	// deferred (dirty boundary keys collected) and replayed at CommitPass,
	// so mid-pass reservations skip the per-edge delete work. The step
	// function is unaffected — only the canonical representation is
	// temporarily relaxed (equal-valued neighbors may coexist).
	inPass  bool
	passNow int64
	dirty   []int64
	stats   *Stats
}

const nilNode = int32(-1)

// treeSmallLimit is the array-mode step budget of new Trees: profiles at
// or below this many steps run on the embedded array kernel, larger ones
// promote to the treap. Tests override it (0 forces pure tree mode, tiny
// values hammer the promotion boundary).
var treeSmallLimit = 1024

// tnode is one step of the profile plus its tree bookkeeping. val/min/max
// are true values provided every ancestor's lazy tag has been pushed;
// add is the pending addition for both children's subtrees.
type tnode struct {
	key      int64
	val      int
	min, max int
	add      int
	pri      uint64
	l, r     int32
	count    int32 // subtree node count
}

// splitmix64 is the deterministic priority source of the treap: a
// well-mixed hash of the allocation counter. Deliberately not math/rand —
// tree shape must be reproducible across runs and platforms.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewTree returns a tree-backed profile for a machine with the given node
// count, entirely free from time `from` on.
func NewTree(nodes int, from int64) *Tree {
	t := &Tree{smallLimit: treeSmallLimit}
	t.Reset(nodes, from)
	return t
}

// Nodes returns the machine size.
func (t *Tree) Nodes() int { return t.size }

// SetStats attaches (or, with nil, detaches) an operation counter. The
// pointer survives Reset, like Profile's.
func (t *Tree) SetStats(s *Stats) { t.stats = s }

// Reset reinitializes t to a fully free machine of the given size from
// time `from` on, reusing the node pool (and, in array mode, the spare
// Profile from an earlier promotion). An open pass is abandoned.
func (t *Tree) Reset(nodes int, from int64) {
	if nodes <= 0 {
		panic("profile: machine must have at least one node")
	}
	t.size = nodes
	t.pool = t.pool[:0]
	t.free = t.free[:0]
	t.inPass = false
	t.dirty = t.dirty[:0]
	if t.smallLimit > 0 {
		if t.small == nil {
			if t.spare != nil {
				t.small, t.spare = t.spare, nil
			} else {
				t.small = New(nodes, from)
			}
		}
		t.small.Reset(nodes, from)
		t.root = nilNode
	} else {
		t.small = nil
		t.root = t.alloc(from, nodes)
	}
	if t.stats != nil {
		t.stats.Resets++
	}
}

// promote rebuilds the treap from the array kernel's steps (right-edge
// merges keep the treap's heap order under the deterministic priorities)
// and retires the array to the spare slot for the next Reset. Called
// after any growth past smallLimit; promotion cost is O(limit · log
// limit), amortized against the reservations that grew the profile.
func (t *Tree) promote() {
	p := t.small
	t.small = nil
	t.pool = t.pool[:0]
	t.free = t.free[:0]
	t.root = nilNode
	for _, s := range p.steps {
		t.root = t.merge(t.root, t.alloc(s.at, s.free))
	}
	t.spare = p
}

// maybePromote moves to tree mode once the array kernel outgrows the
// small-profile budget.
func (t *Tree) maybePromote() {
	if t.small != nil && len(t.small.steps) > t.smallLimit {
		t.promote()
	}
}

// Clone returns an independent deep copy (stats detached).
func (t *Tree) Clone() *Tree {
	c := &Tree{size: t.size, root: t.root, seq: t.seq, smallLimit: t.smallLimit}
	if t.small != nil {
		c.small = t.small.Clone()
		c.root = nilNode
		return c
	}
	c.pool = append([]tnode(nil), t.pool...)
	c.free = append([]int32(nil), t.free...)
	return c
}

// CloneInto copies t into dst, reusing dst's pool storage (the
// allocation-free counterpart of Clone for scratch pools). dst keeps its
// own stats attachment but adopts t's mode and small-profile budget; an
// open pass on dst is abandoned.
func (t *Tree) CloneInto(dst *Tree) {
	dst.size = t.size
	dst.smallLimit = t.smallLimit
	dst.inPass = false
	dst.dirty = dst.dirty[:0]
	if t.small != nil {
		if dst.small == nil {
			if dst.spare != nil {
				dst.small, dst.spare = dst.spare, nil
			} else {
				dst.small = New(t.size, 0)
			}
		}
		t.small.CloneInto(dst.small)
		dst.root = nilNode
		dst.pool = dst.pool[:0]
		dst.free = dst.free[:0]
		return
	}
	if dst.small != nil {
		dst.spare, dst.small = dst.small, nil
	}
	dst.root = t.root
	dst.seq = t.seq
	dst.pool = append(dst.pool[:0], t.pool...)
	dst.free = append(dst.free[:0], t.free...)
}

func (t *Tree) alloc(key int64, val int) int32 {
	pri := splitmix64(t.seq)
	t.seq++
	n := tnode{key: key, val: val, min: val, max: val, pri: pri, l: nilNode, r: nilNode, count: 1}
	if k := len(t.free); k > 0 {
		i := t.free[k-1]
		t.free = t.free[:k-1]
		t.pool[i] = n
		return i
	}
	t.pool = append(t.pool, n)
	return int32(len(t.pool) - 1)
}

func (t *Tree) recycle(i int32) { t.free = append(t.free, i) }

// applyDelta adds d to every step of subtree i (true values plus the
// pending tag for the children).
func (t *Tree) applyDelta(i int32, d int) {
	if i == nilNode || d == 0 {
		return
	}
	n := &t.pool[i]
	n.val += d
	n.min += d
	n.max += d
	n.add += d
}

// push moves i's pending tag to its children.
func (t *Tree) push(i int32) {
	n := &t.pool[i]
	if n.add != 0 {
		t.applyDelta(n.l, n.add)
		t.applyDelta(n.r, n.add)
		n.add = 0
	}
}

// pull recomputes i's aggregates from its (tag-consistent) children.
func (t *Tree) pull(i int32) {
	n := &t.pool[i]
	n.count = 1
	n.min = n.val
	n.max = n.val
	if n.l != nilNode {
		l := &t.pool[n.l]
		n.count += l.count
		if l.min < n.min {
			n.min = l.min
		}
		if l.max > n.max {
			n.max = l.max
		}
	}
	if n.r != nilNode {
		r := &t.pool[n.r]
		n.count += r.count
		if r.min < n.min {
			n.min = r.min
		}
		if r.max > n.max {
			n.max = r.max
		}
	}
}

// splitLT splits subtree i into (keys < key, keys >= key).
func (t *Tree) splitLT(i int32, key int64) (int32, int32) {
	if i == nilNode {
		return nilNode, nilNode
	}
	t.push(i)
	if t.pool[i].key < key {
		a, b := t.splitLT(t.pool[i].r, key)
		t.pool[i].r = a
		t.pull(i)
		return i, b
	}
	a, b := t.splitLT(t.pool[i].l, key)
	t.pool[i].l = b
	t.pull(i)
	return a, i
}

// splitLE splits subtree i into (keys <= key, keys > key).
func (t *Tree) splitLE(i int32, key int64) (int32, int32) {
	if i == nilNode {
		return nilNode, nilNode
	}
	t.push(i)
	if t.pool[i].key <= key {
		a, b := t.splitLE(t.pool[i].r, key)
		t.pool[i].r = a
		t.pull(i)
		return i, b
	}
	a, b := t.splitLE(t.pool[i].l, key)
	t.pool[i].l = b
	t.pull(i)
	return a, i
}

// merge joins two subtrees with disjoint, ordered key ranges. Every
// reattachment counts toward the rebalance telemetry: it is the treap's
// analog of a rotation.
func (t *Tree) merge(a, b int32) int32 {
	if a == nilNode {
		return b
	}
	if b == nilNode {
		return a
	}
	if t.stats != nil {
		t.stats.TreeRebalances++
	}
	if t.pool[a].pri >= t.pool[b].pri {
		t.push(a)
		t.pool[a].r = t.merge(t.pool[a].r, b)
		t.pull(a)
		return a
	}
	t.push(b)
	t.pool[b].l = t.merge(a, t.pool[b].l)
	t.pull(b)
	return b
}

// leftmost returns the smallest-keyed node (the tree is never empty).
func (t *Tree) leftmost() int32 {
	i := t.root
	for t.pool[i].l != nilNode {
		t.push(i)
		i = t.pool[i].l
	}
	t.push(i)
	return i
}

// floor returns the node covering time at (largest key <= at), or nilNode
// when at precedes the first step. Lazy tags along the path are pushed,
// so the returned node's val is true. The walked depth feeds the
// telemetry depth high-water mark.
func (t *Tree) floor(at int64) int32 {
	i := t.root
	best := nilNode
	depth := int64(0)
	for i != nilNode {
		depth++
		t.push(i)
		if t.pool[i].key <= at {
			best = i
			i = t.pool[i].r
		} else {
			i = t.pool[i].l
		}
	}
	if t.stats != nil && depth > t.stats.TreeMaxDepth {
		t.stats.TreeMaxDepth = depth
	}
	return best
}

// succKey returns the smallest key > key, or Infinity when none exists
// (the final step extends to infinity). Steps keyed at Infinity itself do
// exist (permanent reservations), so a hit at Infinity is fine.
func (t *Tree) succKey(key int64) (int64, bool) {
	i := t.root
	succ, ok := int64(0), false
	for i != nilNode {
		t.push(i)
		if t.pool[i].key > key {
			succ, ok = t.pool[i].key, true
			i = t.pool[i].l
		} else {
			i = t.pool[i].r
		}
	}
	return succ, ok
}

// predNode returns the node with the largest key < key, or nilNode. Lazy
// tags along the path are pushed, so the returned node's val is true.
func (t *Tree) predNode(key int64) int32 {
	i := t.root
	best := nilNode
	for i != nilNode {
		t.push(i)
		if t.pool[i].key < key {
			best = i
			i = t.pool[i].r
		} else {
			i = t.pool[i].l
		}
	}
	return best
}

// firstBelowFrom returns the first node (in key order) with key >= from
// and val < w, pruning whole subtrees through the min aggregate.
func (t *Tree) firstBelowFrom(i int32, from int64, w int) int32 {
	if i == nilNode || t.pool[i].min >= w {
		return nilNode
	}
	t.push(i)
	n := &t.pool[i]
	if n.key >= from {
		if r := t.firstBelowFrom(n.l, from, w); r != nilNode {
			return r
		}
		if n.val < w {
			return i
		}
	}
	return t.firstBelowFrom(n.r, from, w)
}

// firstFitFrom returns the first node with key >= from and val >= w,
// pruning through the max aggregate.
func (t *Tree) firstFitFrom(i int32, from int64, w int) int32 {
	if i == nilNode || t.pool[i].max < w {
		return nilNode
	}
	t.push(i)
	n := &t.pool[i]
	if n.key >= from {
		if r := t.firstFitFrom(n.l, from, w); r != nilNode {
			return r
		}
		if n.val >= w {
			return i
		}
	}
	return t.firstFitFrom(n.r, from, w)
}

// minGE returns the minimum val over nodes with key >= lo.
func (t *Tree) minGE(i int32, lo int64) int {
	if i == nilNode {
		return int(^uint(0) >> 1)
	}
	t.push(i)
	n := &t.pool[i]
	if n.key < lo {
		return t.minGE(n.r, lo)
	}
	m := n.val
	if n.r != nilNode && t.pool[n.r].min < m {
		m = t.pool[n.r].min
	}
	if lm := t.minGE(n.l, lo); lm < m {
		m = lm
	}
	return m
}

// minLT returns the minimum val over nodes with key < hi.
func (t *Tree) minLT(i int32, hi int64) int {
	if i == nilNode {
		return int(^uint(0) >> 1)
	}
	t.push(i)
	n := &t.pool[i]
	if n.key >= hi {
		return t.minLT(n.l, hi)
	}
	m := n.val
	if n.l != nilNode && t.pool[n.l].min < m {
		m = t.pool[n.l].min
	}
	if rm := t.minLT(n.r, hi); rm < m {
		m = rm
	}
	return m
}

// minRange returns the minimum val over nodes with lo <= key < hi.
func (t *Tree) minRange(i int32, lo, hi int64) int {
	if i == nilNode {
		return int(^uint(0) >> 1)
	}
	t.push(i)
	n := &t.pool[i]
	if n.key < lo {
		return t.minRange(n.r, lo, hi)
	}
	if n.key >= hi {
		return t.minRange(n.l, lo, hi)
	}
	m := n.val
	if lm := t.minGE(n.l, lo); lm < m {
		m = lm
	}
	if rm := t.minLT(n.r, hi); rm < m {
		m = rm
	}
	return m
}

// FreeAt returns the number of free nodes at time t. Times before the
// first step report the first step's value.
func (t *Tree) FreeAt(at int64) int {
	if t.stats != nil {
		t.stats.FreeAt++
	}
	if t.small != nil {
		return t.small.FreeAt(at)
	}
	i := t.floor(at)
	if i == nilNode {
		i = t.leftmost()
	}
	return t.pool[i].val
}

// MinFree returns the minimum number of free nodes over [start, end).
// Panics on an empty interval.
func (t *Tree) MinFree(start, end int64) int {
	if end <= start {
		panic("profile: MinFree requires start < end")
	}
	if t.stats != nil {
		t.stats.MinFree++
	}
	if t.small != nil {
		return t.small.MinFree(start, end)
	}
	// The covering step of `start` (or the first step, when start precedes
	// the profile) participates unconditionally — even when `end` precedes
	// its key — exactly like the other kernels; later steps participate
	// while their key stays below `end`.
	cover := t.floor(start)
	if cover == nilNode {
		cover = t.leftmost()
	}
	m := t.pool[cover].val
	if r := t.minRange(t.root, t.pool[cover].key+1, end); r < m {
		m = r
	}
	return m
}

// splitAt ensures a step boundary exists exactly at time `at`. Times
// before the first step extend the profile backwards with the first
// step's value, exactly like the array kernel and the Reference.
func (t *Tree) splitAt(at int64) {
	cover := t.floor(at)
	var val int
	if cover == nilNode {
		val = t.pool[t.leftmost()].val
	} else {
		if t.pool[cover].key == at {
			return
		}
		val = t.pool[cover].val
	}
	a, b := t.splitLT(t.root, at)
	t.root = t.merge(t.merge(a, t.alloc(at, val)), b)
}

// deleteKey removes the node with the given key (which must exist).
func (t *Tree) deleteKey(key int64) {
	a, b := t.splitLT(t.root, key)
	m, c := t.splitLE(b, key)
	t.recycle(m)
	t.root = t.merge(a, c)
}

// coalesceAt removes the step at `key` if its value equals its
// predecessor's (the canonical-form maintenance of a range-update edge).
// Missing keys are ignored — a deferred pass replay may find the work
// already done.
func (t *Tree) coalesceAt(key int64) {
	i := t.floor(key)
	if i == nilNode || t.pool[i].key != key {
		return
	}
	val := t.pool[i].val
	p := t.predNode(key)
	if p == nilNode {
		return
	}
	if t.pool[p].val == val {
		t.deleteKey(key)
	}
}

// rangeEdges prepares a range update on [start, end): boundaries are
// inserted and the edge keys recorded for (possibly deferred)
// re-coalescing.
func (t *Tree) rangeEdges(start, end int64) {
	t.splitAt(start)
	t.splitAt(end)
}

// finishEdges re-coalesces the two edges of a range update, or defers
// them to CommitPass inside a batched pass.
func (t *Tree) finishEdges(start, end int64) {
	if t.inPass {
		t.dirty = append(t.dirty, start, end)
		return
	}
	t.coalesceAt(end)
	t.coalesceAt(start)
}

// Reserve subtracts `nodes` free nodes on [start, end). It panics if the
// reservation would drive any step negative — callers must only reserve
// intervals found by EarliestFit or known to fit.
func (t *Tree) Reserve(nodes int, start, end int64) {
	if nodes <= 0 || end <= start {
		panic("profile: Reserve requires positive nodes and start < end")
	}
	if t.stats != nil {
		t.stats.Reserve++
	}
	if t.small != nil {
		t.small.Reserve(nodes, start, end)
		t.maybePromote()
		return
	}
	t.rangeEdges(start, end)
	a, b := t.splitLT(t.root, start)
	m, c := t.splitLT(b, end)
	if m != nilNode && t.pool[m].min < nodes {
		bad := t.firstBelowFrom(m, start, nodes)
		at, after := t.pool[bad].key, t.pool[bad].val-nodes
		t.root = t.merge(t.merge(a, m), c)
		panic(fmt.Sprintf("profile: overcommit at t=%d (%d free after reserving %d)",
			at, after, nodes))
	}
	t.applyDelta(m, -nodes)
	t.root = t.merge(t.merge(a, m), c)
	t.finishEdges(start, end)
}

// Release adds `nodes` free nodes on [start, end). Used when a running
// job completes earlier than estimated.
func (t *Tree) Release(nodes int, start, end int64) {
	if nodes <= 0 || end <= start {
		panic("profile: Release requires positive nodes and start < end")
	}
	if t.stats != nil {
		t.stats.Release++
	}
	if t.small != nil {
		t.small.Release(nodes, start, end)
		t.maybePromote()
		return
	}
	t.rangeEdges(start, end)
	a, b := t.splitLT(t.root, start)
	m, c := t.splitLT(b, end)
	if m != nilNode && t.pool[m].max+nodes > t.size {
		bad := t.firstFitFrom(m, start, t.size-nodes+1)
		at := t.pool[bad].key
		t.root = t.merge(t.merge(a, m), c)
		panic(fmt.Sprintf("profile: release beyond machine size at t=%d", at))
	}
	t.applyDelta(m, nodes)
	t.root = t.merge(t.merge(a, m), c)
	t.finishEdges(start, end)
}

// clampSub subtracts w from every step of subtree i, saturating at zero.
// Subtrees whose minimum stays non-negative degrade to one lazy add;
// everything else is walked, so the cost is O(k + log S) for k clamped
// steps.
func (t *Tree) clampSub(i int32, w int) {
	if i == nilNode {
		return
	}
	if t.pool[i].min >= w {
		t.applyDelta(i, -w)
		return
	}
	t.push(i)
	n := &t.pool[i]
	t.clampSub(n.l, w)
	t.clampSub(n.r, w)
	n.val -= w
	if n.val < 0 {
		n.val = 0
	}
	t.pull(i)
}

// ReserveClamped subtracts up to `nodes` free nodes on [start, end),
// clamping each step at zero instead of panicking on overcommit (the
// announced-maintenance drain operation; see Profile.ReserveClamped).
func (t *Tree) ReserveClamped(nodes int, start, end int64) {
	if nodes <= 0 || end <= start {
		panic("profile: ReserveClamped requires positive nodes and start < end")
	}
	if t.stats != nil {
		t.stats.ReserveClamped++
	}
	if t.small != nil {
		t.small.ReserveClamped(nodes, start, end)
		t.maybePromote()
		return
	}
	t.rangeEdges(start, end)
	a, b := t.splitLT(t.root, start)
	m, c := t.splitLT(b, end)
	t.clampSub(m, nodes)
	t.root = t.merge(t.merge(a, m), c)
	// Clamping can equalize interior neighbors (runs pinned to zero), so
	// the touched range is re-canonicalized wholesale: every step in
	// [start, end] plus the successor of `end` is checked against its
	// predecessor, matching the array kernel's backward sweep. Coalescing
	// stays eager even inside a pass — clamping applies non-uniform
	// deltas, so the deferred-edge bookkeeping of Reserve (which relies on
	// equal deltas everywhere but the two edges) does not cover drains.
	t.coalesceRange(start, end)
}

// coalesceRange removes every step in [start, end] (end inclusive — it is
// the range update's end boundary) plus end's successor whose value
// equals its predecessor's.
func (t *Tree) coalesceRange(start, end int64) {
	// Collect the candidate keys first: deleting while walking the tree
	// would invalidate the traversal.
	keys := t.collectKeys(t.root, start, end, nil)
	if s, ok := t.succKey(end); ok {
		keys = append(keys, s)
	}
	for _, k := range keys {
		t.coalesceAt(k)
	}
}

// collectKeys appends the keys in [lo, hi] (inclusive) in ascending order.
func (t *Tree) collectKeys(i int32, lo, hi int64, out []int64) []int64 {
	if i == nilNode {
		return out
	}
	t.push(i)
	n := &t.pool[i]
	if n.key > lo {
		out = t.collectKeys(n.l, lo, hi, out)
	}
	if n.key >= lo && n.key <= hi {
		out = append(out, n.key)
	}
	if n.key < hi {
		out = t.collectKeys(n.r, lo, hi, out)
	}
	return out
}

// efState is the scan state of EarliestFit's single pruned in-order walk.
type efState struct {
	w          int
	duration   int64
	anchor     int64 // keys below this never participate
	start, end int64 // current candidate window [start, end)
	seeking    bool  // true: hunting the next step with w nodes free
	done       bool  // true: start holds the answer
}

// efWalk visits the steps at/after s.anchor in key order, alternating two
// modes. Scanning (seeking=false): a step short of w nodes either proves
// the candidate window [start, end) feasible (key >= end) or invalidates
// it; seeking (seeking=true): the first step with w nodes free opens the
// next candidate window. Whole subtrees that cannot affect the current
// mode are skipped through the min/max aggregates, and lazy tags are
// carried down in `acc` instead of being pushed — the walk never writes,
// and each node is visited at most once, unlike a per-blocking-run
// restart from the root.
func (t *Tree) efWalk(i int32, acc int, s *efState) {
	if i == nilNode || s.done {
		return
	}
	n := &t.pool[i]
	if s.seeking {
		if n.max+acc < s.w {
			return // no step here frees enough nodes
		}
	} else if n.min+acc >= s.w {
		return // every step here admits the job: the window scans through
	}
	acc += n.add
	if n.key >= s.anchor {
		t.efWalk(n.l, acc, s)
		if s.done {
			return
		}
		v := n.val + acc - n.add // val is true modulo ancestors' tags only
		if s.seeking {
			if v >= s.w {
				s.seeking = false
				s.start = n.key
				s.end = satEnd(s.start, s.duration)
			}
		} else if v < s.w {
			if n.key >= s.end {
				s.done = true
				return
			}
			s.seeking = true
		}
	}
	t.efWalk(n.r, acc, s)
}

// EarliestFit returns the earliest time >= notBefore at which `nodes`
// nodes are simultaneously free for `duration` seconds (Infinity if no
// finite start admits the job). One pruned in-order walk (efWalk) over
// the steps at/after the covering step of notBefore: subtrees wholly
// feasible (min aggregate) or wholly infeasible (max aggregate) for the
// walk's current mode are skipped in O(1), so a query costs O(log S)
// plus the alternation frontier actually examined — never more than one
// visit per step, with no per-blocking-run restart.
func (t *Tree) EarliestFit(nodes int, duration int64, notBefore int64) int64 {
	if nodes > t.size {
		panic(fmt.Sprintf("profile: job wants %d nodes on a %d-node machine", nodes, t.size))
	}
	if duration <= 0 {
		panic("profile: EarliestFit requires positive duration")
	}
	if t.stats != nil {
		t.stats.EarliestFit++
	}
	if t.small != nil {
		return t.small.EarliestFit(nodes, duration, notBefore)
	}
	start := notBefore
	cover := t.floor(start)
	if cover == nilNode {
		// notBefore precedes the profile: the search begins at the profile
		// start, like the other kernels.
		cover = t.leftmost()
		start = t.pool[cover].key
	}
	s := efState{w: nodes, duration: duration, anchor: t.pool[cover].key, start: start}
	s.end = satEnd(start, duration)
	t.efWalk(t.root, 0, &s)
	if s.done || !s.seeking {
		// The walk ran out of steps while scanning: the final step extends
		// to infinity, so the open window completes.
		return s.start
	}
	// The profile is permanently short of `nodes` from the last blocking
	// step on: no finite start exists.
	return Infinity
}

// BeginPass opens a batched scheduling pass anchored at `now`:
// reservation edge coalescing is deferred until CommitPass, relaxing the
// canonical form mid-pass (query results are unaffected — equal-valued
// neighbors describe the same step function).
func (t *Tree) BeginPass(now int64) {
	t.inPass = true
	t.passNow = now
	t.dirty = t.dirty[:0]
	if t.stats != nil {
		t.stats.Passes++
	}
}

// StartMany places each request at its earliest fit from the pass time
// and reserves it, appending the start times to `starts`. Identical in
// effect to the sequential EarliestFit+Reserve loop (the batch tests pin
// exactly that).
func (t *Tree) StartMany(reqs []StartReq, starts []int64) []int64 {
	if t.stats != nil {
		t.stats.BatchedStarts = job.AddSat(t.stats.BatchedStarts, int64(len(reqs)))
	}
	return startManySequential(t, reqs, t.passNow, starts)
}

// CommitPass closes the pass and replays the deferred edge coalescing,
// restoring the canonical form.
func (t *Tree) CommitPass() {
	if !t.inPass {
		return
	}
	t.inPass = false
	for i := len(t.dirty) - 1; i >= 0; i-- {
		t.coalesceAt(t.dirty[i])
	}
	t.dirty = t.dirty[:0]
}

// StepCount returns the number of steps (diagnostics, complexity tests).
// Inside an open pass the count may exceed the canonical form's.
func (t *Tree) StepCount() int {
	if t.small != nil {
		return t.small.StepCount()
	}
	return int(t.pool[t.root].count)
}

// Height returns the current root-to-leaf height (balance diagnostics;
// the fuzz invariants bound it logarithmically in StepCount). Array mode
// has no tree: height 0.
func (t *Tree) Height() int {
	if t.small != nil {
		return 0
	}
	var h func(i int32) int
	h = func(i int32) int {
		if i == nilNode {
			return 0
		}
		l, r := h(t.pool[i].l), h(t.pool[i].r)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return h(t.root)
}

// String renders the profile compactly for debugging, in the shared
// canonical format of all three kernels.
func (t *Tree) String() string {
	if t.small != nil {
		return t.small.String()
	}
	var b strings.Builder
	b.WriteString("profile[")
	first := true
	var walk func(i int32)
	walk = func(i int32) {
		if i == nilNode {
			return
		}
		t.push(i)
		walk(t.pool[i].l)
		if !first {
			b.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&b, "%d:%d", t.pool[i].key, t.pool[i].val)
		walk(t.pool[i].r)
	}
	walk(t.root)
	b.WriteByte(']')
	return b.String()
}
