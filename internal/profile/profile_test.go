package profile

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewFullyFree(t *testing.T) {
	p := New(256, 1000)
	if p.Nodes() != 256 {
		t.Fatalf("Nodes = %d", p.Nodes())
	}
	if got := p.FreeAt(1000); got != 256 {
		t.Errorf("FreeAt(start) = %d", got)
	}
	if got := p.FreeAt(1 << 40); got != 256 {
		t.Errorf("FreeAt(far future) = %d", got)
	}
}

func TestNewPanicsOnBadNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(0, 0)
}

func TestReserveAndFreeAt(t *testing.T) {
	p := New(10, 0)
	p.Reserve(4, 10, 20)
	p.Reserve(2, 15, 30)
	cases := []struct {
		t    int64
		want int
	}{
		{0, 10}, {9, 10}, {10, 6}, {14, 6}, {15, 4}, {19, 4},
		{20, 8}, {29, 8}, {30, 10},
	}
	for _, c := range cases {
		if got := p.FreeAt(c.t); got != c.want {
			t.Errorf("FreeAt(%d) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestReserveOvercommitPanics(t *testing.T) {
	p := New(4, 0)
	p.Reserve(3, 0, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on overcommit")
		}
	}()
	p.Reserve(2, 5, 8)
}

func TestReleaseRestoresCapacity(t *testing.T) {
	p := New(8, 0)
	p.Reserve(8, 0, 100)
	p.Release(8, 40, 100) // early completion hands back the remainder
	if got := p.FreeAt(39); got != 0 {
		t.Errorf("FreeAt(39) = %d", got)
	}
	if got := p.FreeAt(40); got != 8 {
		t.Errorf("FreeAt(40) = %d", got)
	}
}

func TestReleaseBeyondMachinePanics(t *testing.T) {
	p := New(4, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	p.Release(1, 0, 10)
}

func TestReserveBadArgsPanics(t *testing.T) {
	p := New(4, 0)
	for _, c := range []struct {
		n    int
		s, e int64
	}{{0, 0, 10}, {1, 10, 10}, {1, 10, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %+v", c)
				}
			}()
			p.Reserve(c.n, c.s, c.e)
		}()
	}
}

func TestEarliestFitImmediate(t *testing.T) {
	p := New(10, 0)
	if got := p.EarliestFit(10, 100, 0); got != 0 {
		t.Errorf("empty machine fit = %d", got)
	}
}

func TestEarliestFitAfterDrain(t *testing.T) {
	p := New(10, 0)
	p.Reserve(8, 0, 50)
	// 6 nodes are free only from t=50.
	if got := p.EarliestFit(6, 10, 0); got != 50 {
		t.Errorf("fit = %d, want 50", got)
	}
	// 2 nodes fit immediately.
	if got := p.EarliestFit(2, 10, 0); got != 0 {
		t.Errorf("small fit = %d, want 0", got)
	}
}

func TestEarliestFitHole(t *testing.T) {
	// Free window between two busy periods, long enough only for short jobs.
	p := New(4, 0)
	p.Reserve(4, 0, 10)
	p.Reserve(4, 20, 30)
	if got := p.EarliestFit(4, 10, 0); got != 10 {
		t.Errorf("hole fit = %d, want 10", got)
	}
	// Too long for the hole: must wait until the second block drains.
	if got := p.EarliestFit(4, 11, 0); got != 30 {
		t.Errorf("long fit = %d, want 30", got)
	}
}

func TestEarliestFitNotBefore(t *testing.T) {
	p := New(4, 0)
	if got := p.EarliestFit(1, 5, 77); got != 77 {
		t.Errorf("notBefore fit = %d, want 77", got)
	}
}

func TestEarliestFitTooWidePanics(t *testing.T) {
	p := New(4, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	p.EarliestFit(5, 10, 0)
}

func TestEarliestFitHugeDurationOverflow(t *testing.T) {
	p := New(4, 0)
	p.Reserve(4, 0, 10)
	// Duration near MaxInt64 must not overflow the window check.
	if got := p.EarliestFit(1, Infinity-5, 0); got != 10 {
		t.Errorf("huge-duration fit = %d, want 10", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := New(8, 0)
	p.Reserve(4, 0, 10)
	c := p.Clone()
	c.Reserve(4, 0, 10)
	if p.FreeAt(5) != 4 {
		t.Error("Clone shares steps with the original")
	}
	if c.FreeAt(5) != 0 {
		t.Error("Clone lost the reservation")
	}
}

func TestMinFree(t *testing.T) {
	p := New(10, 0)
	p.Reserve(4, 10, 20)
	p.Reserve(2, 15, 30)
	// Free: [0,10)=10, [10,15)=6, [15,20)=4, [20,30)=8, [30,∞)=10.
	cases := []struct {
		lo, hi int64
		want   int
	}{
		{0, 10, 10},
		{0, 12, 6},
		{0, 100, 4},
		{20, 40, 8},
		{5, 16, 4},
	}
	for _, c := range cases {
		if got := p.MinFree(c.lo, c.hi); got != c.want {
			t.Errorf("MinFree(%d,%d) = %d, want %d", c.lo, c.hi, got, c.want)
		}
	}
}

func TestMinFreePanicsOnEmptyInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(4, 0).MinFree(10, 10)
}

func TestCoalesceKeepsStepsMinimal(t *testing.T) {
	p := New(8, 0)
	p.Reserve(2, 10, 20)
	p.Release(2, 10, 20) // cancel out: profile flat again
	if p.StepCount() != 1 {
		t.Errorf("StepCount = %d after cancel-out, want 1: %v", p.StepCount(), p)
	}
}

func TestString(t *testing.T) {
	p := New(4, 0)
	p.Reserve(1, 5, 6)
	if s := p.String(); !strings.Contains(s, "5:3") {
		t.Errorf("String = %q", s)
	}
}

// TestEarliestFitPermanentlyBlockedTail regresses the EarliestFit tail
// guard: a reservation ending at Infinity leaves the profile permanently
// short of nodes, so the scan runs off the end of the step slice — a case
// the original implementation marked "unreachable". Both implementations
// must report Infinity (no finite start exists) and agree everywhere
// else.
func TestEarliestFitPermanentlyBlockedTail(t *testing.T) {
	p := New(4, 0)
	ref := NewReference(4, 0)
	for _, q := range []interface {
		Reserve(int, int64, int64)
	}{p, ref} {
		q.Reserve(2, 10, Infinity) // only 2 free forever from t=10
	}
	cases := []struct {
		w    int
		d    int64
		nb   int64
		want int64
	}{
		{3, 10, 0, 0},         // fits exactly in the free head [0,10)
		{3, 11, 0, Infinity},  // needs the blocked tail: never
		{3, 1, 20, Infinity},  // notBefore already inside the blocked tail
		{2, 1000, 0, 0},       // narrow enough for the tail
		{4, 10, 0, 0},         // whole machine, exactly the head window
		{4, 11, 0, Infinity},  // whole machine, one second too long
		{3, 10, 1, Infinity},  // shifted window clips into the tail
		{1, Infinity, 5, 5},   // huge duration, narrow job: tail admits it
		{3, Infinity, 0, Infinity},
	}
	for _, c := range cases {
		if got := p.EarliestFit(c.w, c.d, c.nb); got != c.want {
			t.Errorf("optimized EarliestFit(%d,%d,%d) = %d, want %d", c.w, c.d, c.nb, got, c.want)
		}
		if got := ref.EarliestFit(c.w, c.d, c.nb); got != c.want {
			t.Errorf("reference EarliestFit(%d,%d,%d) = %d, want %d", c.w, c.d, c.nb, got, c.want)
		}
	}
}

// TestEarliestFitFullyReservedLastStep covers the extreme of the tail
// guard: the last step holds zero free nodes, so nothing fits after it.
func TestEarliestFitFullyReservedLastStep(t *testing.T) {
	p := New(4, 0)
	ref := NewReference(4, 0)
	p.Reserve(4, 10, Infinity)
	ref.Reserve(4, 10, Infinity)
	for _, impl := range []struct {
		name string
		fit  func(int, int64, int64) int64
	}{{"optimized", p.EarliestFit}, {"reference", ref.EarliestFit}} {
		if got := impl.fit(1, 10, 0); got != 0 {
			t.Errorf("%s: head window fit = %d, want 0", impl.name, got)
		}
		if got := impl.fit(1, 11, 0); got != Infinity {
			t.Errorf("%s: over-long fit = %d, want Infinity", impl.name, got)
		}
		if got := impl.fit(1, 1, 10); got != Infinity {
			t.Errorf("%s: fit inside dead tail = %d, want Infinity", impl.name, got)
		}
		if got := impl.fit(1, 1, Infinity); got != Infinity {
			t.Errorf("%s: fit at Infinity = %d, want Infinity", impl.name, got)
		}
	}
}

// TestEarliestFitMaxInt64Duration regresses the start+duration overflow
// clamp: a duration of math.MaxInt64 (= Infinity) must behave as "forever"
// without wrapping around.
func TestEarliestFitMaxInt64Duration(t *testing.T) {
	p := New(4, 0)
	ref := NewReference(4, 0)
	p.Reserve(2, 10, 20)
	ref.Reserve(2, 10, 20)
	cases := []struct {
		w    int
		nb   int64
		want int64
	}{
		{3, 0, 20}, // blocked by [10,20), feasible forever from 20
		{1, 5, 5},  // narrow enough everywhere
		{2, 0, 0},  // exactly the 2 nodes left free during [10,20): fits forever from 0
		{4, 0, 20},
	}
	for _, c := range cases {
		if got := p.EarliestFit(c.w, Infinity, c.nb); got != c.want {
			t.Errorf("optimized EarliestFit(%d,MaxInt64,%d) = %d, want %d", c.w, c.nb, got, c.want)
		}
		if got := ref.EarliestFit(c.w, Infinity, c.nb); got != c.want {
			t.Errorf("reference EarliestFit(%d,MaxInt64,%d) = %d, want %d", c.w, c.nb, got, c.want)
		}
	}
}

// TestResetReusesStorage: Reset must restore the fully-free state without
// allocating once the backing array is warm — the scratch-profile
// contract the conservative starter relies on.
func TestResetReusesStorage(t *testing.T) {
	p := New(16, 0)
	for i := int64(0); i < 20; i++ {
		p.Reserve(1, i*10, i*10+15)
	}
	p.Reset(16, 100)
	if p.StepCount() != 1 || p.FreeAt(100) != 16 || p.Nodes() != 16 {
		t.Fatalf("Reset left state %v", p)
	}
	allocs := testing.AllocsPerRun(50, func() {
		p.Reset(16, 0)
		p.Reserve(4, 10, 20)
		p.Reserve(4, 15, 30)
		_ = p.EarliestFit(16, 10, 0)
	})
	if allocs != 0 {
		t.Errorf("warm Reset+Reserve+EarliestFit allocates %.1f/run, want 0", allocs)
	}
}

// TestCloneInto: the allocation-free clone must produce an independent,
// identical profile.
func TestCloneInto(t *testing.T) {
	p := New(8, 0)
	p.Reserve(4, 0, 10)
	dst := New(1, 0)
	p.CloneInto(dst)
	if dst.String() != p.String() || dst.Nodes() != 8 {
		t.Fatalf("CloneInto mismatch: %v vs %v", dst, p)
	}
	dst.Reserve(4, 0, 10)
	if p.FreeAt(5) != 4 || dst.FreeAt(5) != 0 {
		t.Error("CloneInto shares step storage with the source")
	}
}

// TestPropertyReservationsNeverExceedCapacity drives random feasible
// reservations through the profile and asserts the invariant that free
// counts stay within [0, nodes] everywhere, and that EarliestFit returns
// a start where the reservation actually fits (Reserve does not panic).
func TestPropertyReservationsNeverExceedCapacity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const nodes = 16
		p := New(nodes, 0)
		for i := 0; i < 40; i++ {
			w := 1 + r.Intn(nodes)
			d := int64(1 + r.Intn(50))
			at := p.EarliestFit(w, d, int64(r.Intn(100)))
			p.Reserve(w, at, at+d)
		}
		for ts := int64(0); ts < 400; ts++ {
			if f := p.FreeAt(ts); f < 0 || f > nodes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyEarliestFitIsEarliest verifies minimality: no start time
// earlier than the returned one admits the job.
func TestPropertyEarliestFitIsEarliest(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const nodes = 8
		p := New(nodes, 0)
		for i := 0; i < 10; i++ {
			w := 1 + r.Intn(nodes)
			d := int64(1 + r.Intn(30))
			at := p.EarliestFit(w, d, 0)
			p.Reserve(w, at, at+d)
		}
		w := 1 + r.Intn(nodes)
		d := int64(1 + r.Intn(30))
		got := p.EarliestFit(w, d, 0)
		// Brute-force check every earlier start.
		for s := int64(0); s < got; s++ {
			ok := true
			for ts := s; ts < s+d; ts++ {
				if p.FreeAt(ts) < w {
					ok = false
					break
				}
			}
			if ok {
				return false // an earlier feasible start existed
			}
		}
		// And the returned start must itself be feasible.
		for ts := got; ts < got+d; ts++ {
			if p.FreeAt(ts) < w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
