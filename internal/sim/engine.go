package sim

import (
	"cmp"
	"container/heap"
	"errors"
	"fmt"
	"slices"
	"time"

	"jobsched/internal/job"
	"jobsched/internal/telemetry"
)

// ErrInterrupted is returned by Run when Options.Interrupt reports true:
// the run was cut short cooperatively (user signal, watchdog) and the
// partial schedule is discarded. Callers distinguish it from simulation
// errors with errors.Is.
var ErrInterrupted = errors.New("sim: run interrupted")

// Options configure a simulation run.
type Options struct {
	// Validate re-checks the produced schedule against the machine model
	// after the run (cheap; on by default in tests, optional for huge runs).
	Validate bool
	// MeasureCPU samples a monotonic clock around every scheduler call so
	// Result.SchedulerTime reproduces the computation-time experiments
	// (Tables 7–8). Slightly perturbs wall time of the simulation itself.
	MeasureCPU bool
	// MaxTime aborts the simulation if the clock passes this value
	// (0 = no limit). A safety net against schedulers that stop starting
	// jobs.
	MaxTime int64
	// Failures injects hardware outages (Section 2's uncontrollable
	// influences): at each failure's time the machine loses nodes for
	// the failure's duration; running jobs are aborted newest-first
	// until the remaining capacity suffices and are resubmitted (restart
	// from scratch, original submission time kept for the metrics).
	Failures []Failure
	// Resubmit governs retries of failure-aborted jobs: bounded budgets,
	// backoff delays, lost-job accounting. The zero value keeps the
	// historical behavior (unlimited immediate resubmission).
	Resubmit ResubmitPolicy
	// Interrupt, when non-nil, is polled once per event batch and after
	// every scheduling pass; when it reports true the run stops and
	// returns ErrInterrupted. Schedulers that implement
	// SetInterrupt(func() bool) (sched.Interruptible) additionally
	// receive the hook so a single batched pass over a deep backlog is
	// itself abandoned promptly instead of running to completion first.
	// It is the cooperative cancellation hook used by the eval watchdog
	// and signal handling — the function must be cheap and safe for
	// concurrent use with whatever sets it (typically an atomic flag or
	// a context check).
	Interrupt func() bool
	// Sink, when non-nil, receives every finalized allocation in event
	// order and Result.Schedule.Allocs stays empty — the bounded-memory
	// contract for streaming runs (see Sink). Incompatible with Validate,
	// which needs the retained schedule.
	Sink Sink
	// Recorder, when non-nil, receives the structured decision trace:
	// arrivals, starts (with the start-reason classification supplied by
	// DecisionExplainer schedulers), finishes, failure aborts, capacity
	// changes and per-query pass events. nil disables tracing at the
	// cost of one branch per event (the nil-recorder fast path gated by
	// cmd/bench).
	Recorder telemetry.Recorder
}

// DecisionExplainer is optionally implemented by schedulers that can
// classify why the job they just returned from Startable was started
// (sched.Composite delegates to its start policy). The engine merges the
// decision into the job's EventStart trace record; schedulers without it
// still produce start events, just unclassified.
type DecisionExplainer interface {
	// LastStartDecision describes the most recent start decision for j,
	// or reports false if the scheduler cannot attribute it.
	LastStartDecision(j *job.Job) (telemetry.Decision, bool)
}

// Result is the outcome of a simulation run.
type Result struct {
	Schedule *Schedule
	// SchedulerTime is the cumulative wall time spent inside the
	// scheduler's methods (only if Options.MeasureCPU).
	SchedulerTime time.Duration
	// Events is the number of discrete event batches processed.
	Events int
	// MaxQueue is the largest waiting-queue length observed (backlog
	// diagnostics; the paper discusses the backlog effect of replaying a
	// 430-node trace on 256 nodes).
	MaxQueue int
	// AbortedAttempts counts job executions cut short by injected
	// hardware failures.
	AbortedAttempts int
	// Resubmits counts post-abort resubmissions actually delivered
	// (immediate or delayed). AbortedAttempts - Resubmits = LostJobs.
	Resubmits int
	// LostJobs counts jobs dropped because their abort count exceeded
	// Options.Resubmit.MaxResubmits; they never complete and their final
	// attempt stays aborted in the schedule.
	LostJobs int
}

// completion is a pending job completion in the event heap.
type completion struct {
	at  int64
	seq int // tie-break: start order
	job *job.Job
}

type completionHeap []completion

func (h completionHeap) Len() int { return len(h) }
func (h completionHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h completionHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x interface{}) { *h = append(*h, x.(completion)) }
func (h *completionHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// newestRunning returns the most recently started running job (largest
// start time, ties broken toward the larger ID for determinism), or nil
// when nothing runs. Failure handling aborts the newest job first: it
// has the least sunk work.
func newestRunning(running map[job.ID]Running) *Running {
	var best *Running
	//lint:ignore maprange max-selection with a total tie-break on (Start, Job.ID): every iteration order yields the same victim, and sorting would allocate on the failure-handling path
	for id := range running {
		r := running[id]
		if best == nil || r.Start > best.Start ||
			(r.Start == best.Start && r.Job.ID > best.Job.ID) {
			cp := r
			best = &cp
		}
	}
	return best
}

// Run simulates the scheduler on the job stream and returns the final
// schedule. Jobs are delivered strictly in submission order; completions
// interleave by time. The machine model is Example 5's: exclusive
// variable partitions, no time sharing, jobs cancelled at their limit.
func Run(m Machine, jobs []*job.Job, s Scheduler, opt Options) (*Result, error) {
	if m.Nodes <= 0 {
		return nil, fmt.Errorf("sim: machine needs at least one node")
	}
	for _, j := range jobs {
		if err := j.Validate(m.Nodes, false); err != nil {
			return nil, err
		}
	}
	return run(m, NewSliceSource(jobs), s, opt, len(jobs))
}

// RunStream simulates the scheduler on a streaming arrival source
// without materializing the job list: jobs are pulled from src as the
// clock reaches them, one same-instant batch at a time. src must yield
// jobs in non-decreasing submission order (see Source); same-instant
// batches are sorted by ID, so RunStream over a trace and Run over the
// equivalent slice produce identical Results and telemetry.
//
// Without Options.Sink the full schedule is still retained in the
// Result; set a Sink (e.g. an Aggregates collector) for bounded-memory
// runs.
func RunStream(m Machine, src Source, s Scheduler, opt Options) (*Result, error) {
	if m.Nodes <= 0 {
		return nil, fmt.Errorf("sim: machine needs at least one node")
	}
	return run(m, src, s, opt, 0)
}

// run is the event loop shared by Run and RunStream. capHint sizes the
// retained allocation slice when the job count is known up front.
func run(m Machine, src Source, s Scheduler, opt Options, capHint int) (*Result, error) {
	sink := opt.Sink
	if sink != nil && opt.Validate {
		return nil, fmt.Errorf("sim: Validate needs the retained schedule; it cannot be combined with a Sink")
	}

	failures, err := validateFailures(opt.Failures, m.Nodes)
	if err != nil {
		return nil, err
	}
	// Failure edges: capacity deltas at failure starts and repairs.
	// Edges sharing a timestamp are coalesced into one net delta before
	// the absorb loop runs: a failure and a repair at the same instant
	// must not transiently drop capacity below the survivors' needs, or
	// running jobs get spuriously aborted even though net capacity never
	// fell (the pre-coalescing code applied negative deltas first).
	type edge struct {
		at    int64
		delta int
	}
	var raw []edge
	for _, f := range failures {
		raw = append(raw, edge{f.At, -f.Nodes}, edge{job.AddSat(f.At, f.Duration), f.Nodes})
	}
	slices.SortFunc(raw, func(a, b edge) int { return cmp.Compare(a.at, b.at) })
	var edges []edge
	for i := 0; i < len(raw); {
		j, delta := i, 0
		for j < len(raw) && raw[j].at == raw[i].at {
			delta += raw[j].delta
			j++
		}
		if delta != 0 {
			edges = append(edges, edge{raw[i].at, delta})
		}
		i = j
	}

	res := &Result{Schedule: &Schedule{
		Machine: m,
		Allocs:  make([]Allocation, 0, capHint),
	}}

	rec := opt.Recorder
	var explainer DecisionExplainer
	if rec != nil {
		explainer, _ = s.(DecisionExplainer)
	}

	// Thread the cancellation hook into the scheduler's own pass loops
	// (structural interface: sim cannot import sched). Without it a pass
	// already inside Startable runs unbounded on a deep backlog; the
	// per-event poll below only fires between batches.
	if opt.Interrupt != nil {
		if ii, ok := s.(interface{ SetInterrupt(func() bool) }); ok {
			ii.SetInterrupt(opt.Interrupt)
		}
	}

	var (
		pending    completionHeap
		free       = m.Nodes
		nextEdge   = 0
		startSeq   = 0
		schedTime  time.Duration
		runningBy  = make(map[job.ID]Running, 64)
		runningSeq = make(map[job.ID]int, 64)
		// runningAlloc maps a running job to its allocation record so a
		// failure abort can rewrite it in place (retained-schedule mode);
		// openAlloc holds the not-yet-finalized allocation in sink mode.
		runningAlloc map[job.ID]int
		openAlloc    map[job.ID]Allocation
		cancelled    = make(map[int]bool)
		// resub holds backoff-delayed resubmissions (a second event source
		// reusing the completion heap shape; seq is the abort order).
		resub    completionHeap
		resubSeq = 0
		// attempts counts failure aborts per job (drives the resubmit
		// budget, the backoff schedule and the trace Attempt field).
		attempts map[job.ID]int
	)
	if len(failures) > 0 {
		attempts = make(map[job.ID]int)
	}
	if sink == nil {
		runningAlloc = make(map[job.ID]int, 64)
	} else {
		openAlloc = make(map[job.ID]Allocation, 64)
	}

	// Streaming arrival state: a one-job peek buffer over the source and
	// a reused batch for the arrivals sharing the current instant.
	var (
		peeked     *job.Job
		srcDone    bool
		batch      []*job.Job
		lastSubmit = int64(-1)
	)
	peek := func() (*job.Job, error) {
		if peeked == nil && !srcDone {
			j, err := src.Next()
			if err != nil {
				return nil, fmt.Errorf("sim: arrival source: %w", err)
			}
			if j == nil {
				srcDone = true
				return nil, nil
			}
			if err := j.Validate(m.Nodes, false); err != nil {
				return nil, err
			}
			if j.Submit < lastSubmit {
				// A source going backwards in time would silently corrupt
				// the event order; the Source contract requires sorted input.
				return nil, fmt.Errorf("sim: arrival source yielded submit %d after %d: sources must be non-decreasing in submission time", j.Submit, lastSubmit)
			}
			lastSubmit = j.Submit
			peeked = j
		}
		return peeked, nil
	}
	emit := func(a Allocation) error {
		if err := sink.Emit(a); err != nil {
			return fmt.Errorf("sim: sink: %w", err)
		}
		return nil
	}

	timed := func(f func()) {
		if !opt.MeasureCPU {
			f()
			return
		}
		t0 := time.Now()
		f()
		schedTime += time.Since(t0)
	}

	// runningList snapshots the running set in ID order into a buffer
	// reused across scheduling rounds. Schedulers must not retain the
	// slice past the Startable call (the Scheduler contract); the engine
	// rewrites it on the next round.
	var runningBuf []Running
	runningList := func() []Running {
		runningBuf = runningBuf[:0]
		for _, r := range runningBy {
			runningBuf = append(runningBuf, r)
		}
		slices.SortFunc(runningBuf, func(a, b Running) int { return cmp.Compare(a.Job.ID, b.Job.ID) })
		return runningBuf
	}

	for {
		nxt, err := peek()
		if err != nil {
			return nil, err
		}
		if nxt == nil && pending.Len() == 0 && nextEdge >= len(edges) && resub.Len() == 0 {
			break
		}
		if opt.Interrupt != nil && opt.Interrupt() {
			return nil, ErrInterrupted
		}
		// Determine the next event time.
		now := int64(-1)
		if nxt != nil {
			now = nxt.Submit
		}
		if pending.Len() > 0 && (now < 0 || pending[0].at < now) {
			now = pending[0].at
		}
		if nextEdge < len(edges) && (now < 0 || edges[nextEdge].at < now) {
			// Failure edges only matter while work remains; a trailing
			// repair after everything finished is still consumed to keep
			// the loop finite.
			now = edges[nextEdge].at
		}
		if resub.Len() > 0 && (now < 0 || resub[0].at < now) {
			now = resub[0].at
		}
		if opt.MaxTime > 0 && now > opt.MaxTime {
			return nil, fmt.Errorf("sim: clock passed MaxTime %d with %d jobs running and %d waiting",
				opt.MaxTime, len(runningBy), s.QueueLen())
		}
		res.Events++

		// Deliver all completions at `now` first: resources freed at t are
		// available to jobs started at t. Completions of failure-aborted
		// attempts were cancelled and are skipped.
		for pending.Len() > 0 && pending[0].at == now {
			c := heap.Pop(&pending).(completion)
			if cancelled[c.seq] {
				delete(cancelled, c.seq)
				continue
			}
			free += c.job.Nodes
			delete(runningBy, c.job.ID)
			delete(runningSeq, c.job.ID)
			if sink != nil {
				a := openAlloc[c.job.ID]
				delete(openAlloc, c.job.ID)
				if err := emit(a); err != nil {
					return nil, err
				}
			}
			if rec != nil {
				rec.Record(telemetry.Event{Type: telemetry.EventFinish, At: now,
					Job: int64(c.job.ID), Nodes: c.job.Nodes, Head: telemetry.None,
					Killed: c.job.Killed()})
			}
			timed(func() { s.JobFinished(c.job, now) })
		}
		// Apply failure edges at `now`: capacity drops abort the
		// newest-started jobs until the survivors fit; repairs hand the
		// nodes back. Edges were coalesced per timestamp, so only the net
		// capacity change is applied.
		for nextEdge < len(edges) && edges[nextEdge].at == now {
			free += edges[nextEdge].delta
			if rec != nil {
				rec.Record(telemetry.Event{Type: telemetry.EventCapacity, At: now,
					Job: telemetry.None, Head: telemetry.None,
					Delta: edges[nextEdge].delta})
			}
			nextEdge++
			for free < 0 {
				victim := newestRunning(runningBy)
				if victim == nil {
					return nil, fmt.Errorf("sim: failure at %d cannot be absorbed", now)
				}
				free += victim.Job.Nodes
				// Rewrite the victim's allocation record: the attempt ends
				// now, cut short. In sink mode the open allocation is
				// finalized and emitted instead of rewritten in place.
				if sink == nil {
					a := &res.Schedule.Allocs[runningAlloc[victim.Job.ID]]
					a.End = now
					a.Aborted = true
					a.Killed = false
					delete(runningAlloc, victim.Job.ID)
				} else {
					a := openAlloc[victim.Job.ID]
					a.End = now
					a.Aborted = true
					a.Killed = false
					delete(openAlloc, victim.Job.ID)
					if err := emit(a); err != nil {
						return nil, err
					}
				}
				res.AbortedAttempts++
				cancelled[runningSeq[victim.Job.ID]] = true
				delete(runningBy, victim.Job.ID)
				delete(runningSeq, victim.Job.ID)
				// Resubmit: the job restarts from scratch; its original
				// submission time is kept so response metrics account the
				// full delay. The resubmit policy may delay the retry
				// (backoff) or drop the job entirely (budget exhausted).
				j := victim.Job
				attempts[j.ID]++
				n := attempts[j.ID]
				if rec != nil {
					rec.Record(telemetry.Event{Type: telemetry.EventAbort, At: now,
						Job: int64(j.ID), Nodes: j.Nodes, Head: telemetry.None,
						Attempt: n})
				}
				if opt.Resubmit.MaxResubmits > 0 && n > opt.Resubmit.MaxResubmits {
					res.LostJobs++
					if rec != nil {
						rec.Record(telemetry.Event{Type: telemetry.EventLost, At: now,
							Job: int64(j.ID), Nodes: j.Nodes, Head: telemetry.None,
							Attempt: n})
					}
					continue
				}
				if delay := opt.Resubmit.Delay(n); delay > 0 {
					heap.Push(&resub, completion{at: job.AddSat(now, delay), seq: resubSeq, job: j})
					resubSeq++
					continue
				}
				res.Resubmits++
				if rec != nil {
					rec.Record(telemetry.Event{Type: telemetry.EventArrival, At: now,
						Job: int64(j.ID), Nodes: j.Nodes, Head: telemetry.None,
						Resubmit: true, Attempt: n})
				}
				timed(func() { s.Submit(j, now) })
			}
		}
		// Deliver backoff-delayed resubmissions due at `now` (after the
		// failure edges so a retry never lands on capacity that vanished
		// in the same instant, before fresh arrivals so retried jobs keep
		// their seniority in submission-order delivery).
		for resub.Len() > 0 && resub[0].at == now {
			c := heap.Pop(&resub).(completion)
			res.Resubmits++
			if rec != nil {
				rec.Record(telemetry.Event{Type: telemetry.EventArrival, At: now,
					Job: int64(c.job.ID), Nodes: c.job.Nodes, Head: telemetry.None,
					Resubmit: true, Attempt: attempts[c.job.ID]})
			}
			j := c.job
			timed(func() { s.Submit(j, now) })
		}
		// Deliver all arrivals at `now`, sorted by ID within the instant:
		// the source only guarantees submit order, and the sort makes a
		// streaming run identical to one over a pre-sorted slice.
		batch = batch[:0]
		for {
			j, err := peek()
			if err != nil {
				return nil, err
			}
			if j == nil || j.Submit != now {
				break
			}
			batch = append(batch, j)
			peeked = nil
		}
		slices.SortStableFunc(batch, func(a, b *job.Job) int { return cmp.Compare(a.ID, b.ID) })
		for _, j := range batch {
			if rec != nil {
				rec.Record(telemetry.Event{Type: telemetry.EventArrival, At: now,
					Job: int64(j.ID), Nodes: j.Nodes, Head: telemetry.None})
			}
			timed(func() { s.Submit(j, now) })
		}
		if q := s.QueueLen(); q > res.MaxQueue {
			res.MaxQueue = q
		}

		// Let the scheduler start jobs until it declines.
		for {
			var starts []*job.Job
			running := runningList()
			if rec != nil {
				rec.Record(telemetry.Event{Type: telemetry.EventPass, At: now,
					Job: telemetry.None, Head: telemetry.None,
					Queue: s.QueueLen(), Free: free})
			}
			timed(func() { starts = s.Startable(now, free, running) })
			// Poll between passes too: an interrupted scheduler may have
			// abandoned its pass mid-walk and returned a truncated pick
			// list; the run is being discarded, so none of it starts.
			if opt.Interrupt != nil && opt.Interrupt() {
				return nil, ErrInterrupted
			}
			if len(starts) == 0 {
				break
			}
			for _, j := range starts {
				if j.Nodes > free {
					return nil, fmt.Errorf("sim: scheduler %s started %v with only %d nodes free",
						s.Name(), j, free)
				}
				free -= j.Nodes
				end := job.AddSat(now, j.EffectiveRuntime())
				alloc := Allocation{Job: j, Start: now, End: end, Killed: j.Killed()}
				if sink == nil {
					runningAlloc[j.ID] = len(res.Schedule.Allocs)
					res.Schedule.Allocs = append(res.Schedule.Allocs, alloc)
				} else {
					openAlloc[j.ID] = alloc
				}
				runningBy[j.ID] = Running{Job: j, Start: now, EstEnd: job.AddSat(now, j.Estimate)}
				runningSeq[j.ID] = startSeq
				heap.Push(&pending, completion{at: end, seq: startSeq, job: j})
				startSeq++
				if rec != nil {
					ev := telemetry.Event{Type: telemetry.EventStart, At: now,
						Job: int64(j.ID), Nodes: j.Nodes, Free: free,
						Head: telemetry.None}
					if explainer != nil {
						if d, ok := explainer.LastStartDecision(j); ok {
							ev.Starter = d.Starter
							ev.Reason = d.Reason
							ev.Depth = d.Depth
							ev.Head = d.Head
							ev.Shadow = d.Shadow
							ev.Spare = d.Spare
						}
					}
					rec.Record(ev)
				}
				timed(func() { s.JobStarted(j, now) })
			}
		}
	}

	if s.QueueLen() != 0 {
		return nil, fmt.Errorf("sim: scheduler %s left %d jobs waiting after all events",
			s.Name(), s.QueueLen())
	}
	res.SchedulerTime = schedTime
	if opt.Validate {
		if err := res.Schedule.Validate(); err != nil {
			return nil, err
		}
	}
	return res, nil
}
