package sim

import (
	"cmp"
	"fmt"
	"slices"

	"jobsched/internal/job"
)

// Failure models the sudden loss of hardware the paper's Section 2 names
// as an influence "which cannot be controlled by the scheduling system":
// Nodes nodes go down at time At and return after Duration seconds. Jobs
// running on lost nodes are aborted and automatically resubmitted (they
// restart from scratch — the machine model is non-preemptive and has no
// checkpointing).
type Failure struct {
	At       int64
	Nodes    int
	Duration int64
}

// validateFailures checks and sorts the failure list.
func validateFailures(failures []Failure, machineNodes int) ([]Failure, error) {
	out := append([]Failure(nil), failures...)
	for _, f := range out {
		if f.Nodes <= 0 || f.Nodes > machineNodes {
			return nil, fmt.Errorf("sim: failure loses %d of %d nodes", f.Nodes, machineNodes)
		}
		if f.Duration <= 0 || f.At < 0 {
			return nil, fmt.Errorf("sim: failure needs At >= 0 and positive duration")
		}
	}
	slices.SortFunc(out, func(a, b Failure) int { return cmp.Compare(a.At, b.At) })
	// Overlapping outages must never drive capacity negative.
	type edge struct {
		at    int64
		delta int
	}
	var edges []edge
	for _, f := range out {
		// The repair edge saturates: a failure placed near the int64
		// horizon must not wrap At + Duration into the past, where the
		// phantom repair would free nodes that never went down.
		edges = append(edges, edge{f.At, f.Nodes}, edge{job.AddSat(f.At, f.Duration), -f.Nodes})
	}
	slices.SortFunc(edges, func(a, b edge) int {
		if c := cmp.Compare(a.at, b.at); c != 0 {
			return c
		}
		return cmp.Compare(a.delta, b.delta)
	})
	down := 0
	for _, e := range edges {
		down += e.delta
		if down > machineNodes {
			return nil, fmt.Errorf("sim: overlapping failures exceed the machine")
		}
	}
	return out, nil
}

// ValidateFailures checks a failure schedule against a machine size and
// returns it sorted by onset — the same validation Run applies. Exported
// so fault-plan generators (internal/faults) and fuzz targets can reject
// invalid schedules without running a simulation.
func ValidateFailures(failures []Failure, machineNodes int) ([]Failure, error) {
	return validateFailures(failures, machineNodes)
}
