package sim

import (
	"strings"
	"testing"

	"jobsched/internal/job"
)

// fifoScheduler is a minimal correct scheduler: strict FCFS greedy list.
type fifoScheduler struct {
	queue []*job.Job
}

func (s *fifoScheduler) Name() string { return "test-fifo" }
func (s *fifoScheduler) Submit(j *job.Job, now int64) {
	s.queue = append(s.queue, j)
}
func (s *fifoScheduler) JobStarted(j *job.Job, now int64) {
	for i, q := range s.queue {
		if q == j {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return
		}
	}
}
func (s *fifoScheduler) JobFinished(j *job.Job, now int64) {}
func (s *fifoScheduler) Startable(now int64, free int, running []Running) []*job.Job {
	if len(s.queue) > 0 && s.queue[0].Nodes <= free {
		return []*job.Job{s.queue[0]}
	}
	return nil
}
func (s *fifoScheduler) QueueLen() int { return len(s.queue) }

func mkJob(id int, submit, runtime, estimate int64, nodes int) *job.Job {
	return &job.Job{
		ID: job.ID(id), Submit: submit, Runtime: runtime,
		Estimate: estimate, Nodes: nodes,
	}
}

func TestRunSequentialJobs(t *testing.T) {
	// Two 4-node jobs on a 4-node machine: must run back to back.
	jobs := []*job.Job{
		mkJob(0, 0, 100, 100, 4),
		mkJob(1, 0, 50, 50, 4),
	}
	res, err := Run(Machine{Nodes: 4}, jobs, &fifoScheduler{}, Options{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	a0 := res.Schedule.ByJobID(0)
	a1 := res.Schedule.ByJobID(1)
	if a0.Start != 0 || a0.End != 100 {
		t.Errorf("job 0: [%d,%d], want [0,100]", a0.Start, a0.End)
	}
	if a1.Start != 100 || a1.End != 150 {
		t.Errorf("job 1: [%d,%d], want [100,150]", a1.Start, a1.End)
	}
}

func TestRunParallelJobsShareMachine(t *testing.T) {
	jobs := []*job.Job{
		mkJob(0, 0, 100, 100, 2),
		mkJob(1, 0, 100, 100, 2),
	}
	res, err := Run(Machine{Nodes: 4}, jobs, &fifoScheduler{}, Options{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []job.ID{0, 1} {
		a := res.Schedule.ByJobID(id)
		if a.Start != 0 {
			t.Errorf("job %d start = %d, want 0", id, a.Start)
		}
	}
}

func TestRunRespectsSubmitTimes(t *testing.T) {
	jobs := []*job.Job{mkJob(0, 500, 10, 10, 1)}
	res, err := Run(Machine{Nodes: 4}, jobs, &fifoScheduler{}, Options{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if a := res.Schedule.ByJobID(0); a.Start != 500 {
		t.Errorf("start = %d, want 500 (submission)", a.Start)
	}
}

func TestRunKillAtLimit(t *testing.T) {
	// Runtime exceeds the estimate: the machine cancels the job at the
	// limit (Example 5 rule 2).
	jobs := []*job.Job{mkJob(0, 0, 200, 150, 1)}
	res, err := Run(Machine{Nodes: 4}, jobs, &fifoScheduler{}, Options{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	a := res.Schedule.ByJobID(0)
	if a.End-a.Start != 150 {
		t.Errorf("effective runtime = %d, want 150 (killed at limit)", a.End-a.Start)
	}
	if !a.Killed {
		t.Error("Killed flag not set")
	}
}

func TestRunFreedNodesReusableSameInstant(t *testing.T) {
	// Job 1 needs the nodes job 0 frees at t=100; it must start exactly
	// at 100, not 101.
	jobs := []*job.Job{
		mkJob(0, 0, 100, 100, 4),
		mkJob(1, 10, 20, 20, 4),
	}
	res, err := Run(Machine{Nodes: 4}, jobs, &fifoScheduler{}, Options{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if a := res.Schedule.ByJobID(1); a.Start != 100 {
		t.Errorf("start = %d, want 100", a.Start)
	}
}

func TestRunRejectsInvalidJob(t *testing.T) {
	jobs := []*job.Job{mkJob(0, 0, 10, 10, 500)} // wider than machine
	if _, err := Run(Machine{Nodes: 4}, jobs, &fifoScheduler{}, Options{}); err == nil {
		t.Fatal("invalid job accepted")
	}
}

func TestRunRejectsBadMachine(t *testing.T) {
	if _, err := Run(Machine{}, nil, &fifoScheduler{}, Options{}); err == nil {
		t.Fatal("zero-node machine accepted")
	}
}

// overcommitScheduler tries to start a job wider than the free nodes.
type overcommitScheduler struct{ fifoScheduler }

func (s *overcommitScheduler) Startable(now int64, free int, running []Running) []*job.Job {
	if len(s.queue) > 0 {
		return []*job.Job{s.queue[0]} // ignores free
	}
	return nil
}

func TestRunDetectsOvercommit(t *testing.T) {
	jobs := []*job.Job{
		mkJob(0, 0, 100, 100, 3),
		mkJob(1, 0, 100, 100, 3),
	}
	_, err := Run(Machine{Nodes: 4}, jobs, &overcommitScheduler{}, Options{})
	if err == nil || !strings.Contains(err.Error(), "free") {
		t.Fatalf("overcommit not detected: %v", err)
	}
}

// stallScheduler never starts anything.
type stallScheduler struct{ fifoScheduler }

func (s *stallScheduler) Startable(now int64, free int, running []Running) []*job.Job {
	return nil
}

func TestRunDetectsStalledScheduler(t *testing.T) {
	jobs := []*job.Job{mkJob(0, 0, 10, 10, 1)}
	_, err := Run(Machine{Nodes: 4}, jobs, &stallScheduler{}, Options{})
	if err == nil || !strings.Contains(err.Error(), "waiting") {
		t.Fatalf("stall not detected: %v", err)
	}
}

func TestRunMaxTimeAborts(t *testing.T) {
	jobs := []*job.Job{mkJob(0, 1000000, 10, 10, 1)}
	_, err := Run(Machine{Nodes: 4}, jobs, &fifoScheduler{}, Options{MaxTime: 100})
	if err == nil || !strings.Contains(err.Error(), "MaxTime") {
		t.Fatalf("MaxTime not enforced: %v", err)
	}
}

func TestRunMeasuresSchedulerTime(t *testing.T) {
	jobs := []*job.Job{mkJob(0, 0, 10, 10, 1), mkJob(1, 5, 10, 10, 1)}
	res, err := Run(Machine{Nodes: 4}, jobs, &fifoScheduler{}, Options{MeasureCPU: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.SchedulerTime <= 0 {
		t.Error("SchedulerTime not measured")
	}
}

func TestRunEventAndQueueAccounting(t *testing.T) {
	jobs := []*job.Job{
		mkJob(0, 0, 100, 100, 4),
		mkJob(1, 1, 10, 10, 4),
		mkJob(2, 2, 10, 10, 4),
	}
	res, err := Run(Machine{Nodes: 4}, jobs, &fifoScheduler{}, Options{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxQueue != 2 {
		t.Errorf("MaxQueue = %d, want 2", res.MaxQueue)
	}
	if res.Events == 0 {
		t.Error("Events not counted")
	}
}

func TestRunEmptyWorkload(t *testing.T) {
	res, err := Run(Machine{Nodes: 4}, nil, &fifoScheduler{}, Options{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Schedule.Allocs) != 0 {
		t.Error("allocations for empty workload")
	}
}

func TestRunRunningViewHidesActualRuntime(t *testing.T) {
	// The Running view must expose EstEnd = start + estimate even when
	// the actual runtime is shorter.
	probe := &runningProbe{}
	jobs := []*job.Job{
		mkJob(0, 0, 10, 1000, 2), // finishes at 10, estimated 1000
		mkJob(1, 5, 10, 10, 4),   // arrives while 0 runs; cannot start
	}
	if _, err := Run(Machine{Nodes: 4}, jobs, probe, Options{Validate: true}); err != nil {
		t.Fatal(err)
	}
	if !probe.sawEstEnd {
		t.Error("scheduler never saw EstEnd = start + estimate")
	}
}

type runningProbe struct {
	fifoScheduler
	sawEstEnd bool
}

func (s *runningProbe) Startable(now int64, free int, running []Running) []*job.Job {
	for _, r := range running {
		if r.Job.ID == 0 && r.EstEnd == r.Start+1000 {
			s.sawEstEnd = true
		}
	}
	return s.fifoScheduler.Startable(now, free, running)
}
