package sim

import (
	"testing"

	"jobsched/internal/job"
)

func alloc(id int, nodes int, submit, start, runtime int64) Allocation {
	j := &job.Job{ID: job.ID(id), Nodes: nodes, Submit: submit,
		Runtime: runtime, Estimate: runtime}
	return Allocation{Job: j, Start: start, End: start + runtime}
}

func TestScheduleValidateOK(t *testing.T) {
	s := &Schedule{
		Machine: Machine{Nodes: 4},
		Allocs: []Allocation{
			alloc(0, 2, 0, 0, 100),
			alloc(1, 2, 0, 0, 50),
			alloc(2, 4, 0, 100, 10), // starts exactly when 0 ends
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}

func TestScheduleValidateOvercommit(t *testing.T) {
	s := &Schedule{
		Machine: Machine{Nodes: 4},
		Allocs: []Allocation{
			alloc(0, 3, 0, 0, 100),
			alloc(1, 3, 0, 50, 100),
		},
	}
	if err := s.Validate(); err == nil {
		t.Fatal("overcommitted schedule accepted")
	}
}

func TestScheduleValidateEarlyStart(t *testing.T) {
	s := &Schedule{
		Machine: Machine{Nodes: 4},
		Allocs:  []Allocation{alloc(0, 1, 100, 50, 10)}, // starts before submit
	}
	if err := s.Validate(); err == nil {
		t.Fatal("pre-submission start accepted")
	}
}

func TestScheduleValidateWrongDuration(t *testing.T) {
	a := alloc(0, 1, 0, 0, 10)
	a.End = a.Start + 99
	s := &Schedule{Machine: Machine{Nodes: 4}, Allocs: []Allocation{a}}
	if err := s.Validate(); err == nil {
		t.Fatal("wrong-duration allocation accepted")
	}
}

func TestScheduleValidateKillFlag(t *testing.T) {
	j := &job.Job{ID: 0, Nodes: 1, Submit: 0, Runtime: 100, Estimate: 50}
	s := &Schedule{
		Machine: Machine{Nodes: 4},
		// Correct effective duration (50) but inconsistent flag.
		Allocs: []Allocation{{Job: j, Start: 0, End: 50, Killed: false}},
	}
	if err := s.Validate(); err == nil {
		t.Fatal("inconsistent kill flag accepted")
	}
}

func TestMakespanAndUsedArea(t *testing.T) {
	s := &Schedule{
		Machine: Machine{Nodes: 4},
		Allocs: []Allocation{
			alloc(0, 2, 0, 0, 100),
			alloc(1, 1, 0, 50, 200),
		},
	}
	if got := s.Makespan(); got != 250 {
		t.Errorf("Makespan = %d, want 250", got)
	}
	if got := s.UsedArea(); got != 2*100+1*200 {
		t.Errorf("UsedArea = %v", got)
	}
}

func TestResponseAndWaitTimes(t *testing.T) {
	a := alloc(0, 1, 10, 25, 5)
	if got := a.WaitTime(); got != 15 {
		t.Errorf("WaitTime = %d", got)
	}
	if got := a.ResponseTime(); got != 20 {
		t.Errorf("ResponseTime = %d", got)
	}
}

func TestByJobID(t *testing.T) {
	s := &Schedule{Machine: Machine{Nodes: 4},
		Allocs: []Allocation{alloc(7, 1, 0, 0, 10)}}
	if s.ByJobID(7) == nil {
		t.Error("existing job not found")
	}
	if s.ByJobID(8) != nil {
		t.Error("missing job found")
	}
}

func TestEmptySchedule(t *testing.T) {
	s := &Schedule{Machine: Machine{Nodes: 4}}
	if s.Makespan() != 0 || s.UsedArea() != 0 {
		t.Error("empty schedule has nonzero aggregates")
	}
	if err := s.Validate(); err != nil {
		t.Errorf("empty schedule invalid: %v", err)
	}
}
