package sim

import (
	"math/rand"
	"testing"

	"jobsched/internal/job"
)

func TestValidateFailures(t *testing.T) {
	ok := []Failure{{At: 100, Nodes: 2, Duration: 50}}
	if _, err := validateFailures(ok, 4); err != nil {
		t.Fatalf("valid failures rejected: %v", err)
	}
	bad := [][]Failure{
		{{At: 0, Nodes: 0, Duration: 10}},
		{{At: 0, Nodes: 5, Duration: 10}},
		{{At: 0, Nodes: 1, Duration: 0}},
		{{At: -1, Nodes: 1, Duration: 10}},
		// Overlapping outages larger than the machine.
		{{At: 0, Nodes: 3, Duration: 100}, {At: 50, Nodes: 3, Duration: 100}},
	}
	for i, fs := range bad {
		if _, err := validateFailures(fs, 4); err == nil {
			t.Errorf("bad failures %d accepted", i)
		}
	}
	// Sorting.
	sorted, err := validateFailures([]Failure{
		{At: 500, Nodes: 1, Duration: 1},
		{At: 100, Nodes: 1, Duration: 1},
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sorted[0].At != 100 {
		t.Error("failures not sorted")
	}
}

func TestFailureAbortsAndRestartsJob(t *testing.T) {
	// Machine 4. Job 0 (4 nodes, 100 s) starts at 0. At t=30 the machine
	// loses 2 nodes for 50 s: job 0 is aborted, resubmitted, cannot
	// restart until repair at t=80 (only 2 nodes up), then runs [80,180).
	jobs := []*job.Job{mkJob(0, 0, 100, 100, 4)}
	res, err := Run(Machine{Nodes: 4}, jobs, &fifoScheduler{}, Options{
		Validate: true,
		Failures: []Failure{{At: 30, Nodes: 2, Duration: 50}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AbortedAttempts != 1 {
		t.Fatalf("AbortedAttempts = %d", res.AbortedAttempts)
	}
	if len(res.Schedule.Allocs) != 2 {
		t.Fatalf("%d allocations, want 2 (abort + completion)", len(res.Schedule.Allocs))
	}
	var aborted, final *Allocation
	for i := range res.Schedule.Allocs {
		a := &res.Schedule.Allocs[i]
		if a.Aborted {
			aborted = a
		} else {
			final = a
		}
	}
	if aborted == nil || final == nil {
		t.Fatal("missing abort or completion record")
	}
	if aborted.Start != 0 || aborted.End != 30 {
		t.Errorf("aborted attempt [%d,%d), want [0,30)", aborted.Start, aborted.End)
	}
	if final.Start != 80 || final.End != 180 {
		t.Errorf("restart [%d,%d), want [80,180)", final.Start, final.End)
	}
}

func TestFailureSparesJobsThatStillFit(t *testing.T) {
	// Two 1-node jobs on a 4-node machine; losing 2 nodes at t=10 leaves
	// room for both — nothing is aborted.
	jobs := []*job.Job{
		mkJob(0, 0, 100, 100, 1),
		mkJob(1, 0, 100, 100, 1),
	}
	res, err := Run(Machine{Nodes: 4}, jobs, &fifoScheduler{}, Options{
		Validate: true,
		Failures: []Failure{{At: 10, Nodes: 2, Duration: 20}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AbortedAttempts != 0 {
		t.Fatalf("AbortedAttempts = %d, want 0", res.AbortedAttempts)
	}
}

func TestFailureAbortsNewestFirst(t *testing.T) {
	// Job 0 starts at 0 (2 nodes), job 1 at 5 (2 nodes). Losing 2 nodes
	// at t=10 aborts the newer job 1, not job 0.
	jobs := []*job.Job{
		mkJob(0, 0, 100, 100, 2),
		mkJob(1, 5, 100, 100, 2),
	}
	res, err := Run(Machine{Nodes: 4}, jobs, &fifoScheduler{}, Options{
		Validate: true,
		Failures: []Failure{{At: 10, Nodes: 2, Duration: 30}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Schedule.Allocs {
		if a.Aborted && a.Job.ID != 1 {
			t.Fatalf("aborted job %d, want the newest (1)", a.Job.ID)
		}
	}
	if res.AbortedAttempts != 1 {
		t.Fatalf("AbortedAttempts = %d", res.AbortedAttempts)
	}
}

func TestFailureCapacityRespectedDuringOutage(t *testing.T) {
	// During [100, 200) only 1 of 4 nodes is up: pointwise usage in the
	// final schedule must never exceed 1 in that window.
	r := rand.New(rand.NewSource(8))
	jobs := make([]*job.Job, 60)
	var at int64
	for i := range jobs {
		at += int64(r.Intn(10))
		run := int64(1 + r.Intn(60))
		jobs[i] = mkJob(i, at, run, run, 1+r.Intn(4))
	}
	res, err := Run(Machine{Nodes: 4}, jobs, &fifoScheduler{}, Options{
		Validate: true,
		Failures: []Failure{{At: 100, Nodes: 3, Duration: 100}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for ts := int64(100); ts < 200; ts += 7 {
		used := 0
		for _, a := range res.Schedule.Allocs {
			if a.Start <= ts && ts < a.End {
				used += a.Job.Nodes
			}
		}
		if used > 1 {
			t.Fatalf("%d nodes used at t=%d during a 3-node outage", used, ts)
		}
	}
}

func TestFailureResponseKeepsOriginalSubmit(t *testing.T) {
	// The restarted job's response time must be measured from the
	// original submission.
	jobs := []*job.Job{mkJob(0, 0, 100, 100, 4)}
	res, err := Run(Machine{Nodes: 4}, jobs, &fifoScheduler{}, Options{
		Validate: true,
		Failures: []Failure{{At: 50, Nodes: 4, Duration: 50}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Schedule.Allocs {
		if !a.Aborted {
			if a.Job.Submit != 0 {
				t.Fatalf("restart lost the original submit time: %d", a.Job.Submit)
			}
			if a.ResponseTime() != a.End {
				t.Fatalf("response %d != completion %d for submit-0 job",
					a.ResponseTime(), a.End)
			}
		}
	}
}

func TestFailureWholeMachineOutage(t *testing.T) {
	// Losing the entire machine aborts everything; all jobs complete
	// after the repair.
	jobs := []*job.Job{
		mkJob(0, 0, 100, 100, 2),
		mkJob(1, 0, 100, 100, 2),
	}
	res, err := Run(Machine{Nodes: 4}, jobs, &fifoScheduler{}, Options{
		Validate: true,
		Failures: []Failure{{At: 10, Nodes: 4, Duration: 100}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AbortedAttempts != 2 {
		t.Fatalf("AbortedAttempts = %d, want 2", res.AbortedAttempts)
	}
	completed := 0
	for _, a := range res.Schedule.Allocs {
		if !a.Aborted {
			completed++
			if a.Start < 110 {
				t.Fatalf("job restarted at %d during the outage", a.Start)
			}
		}
	}
	if completed != 2 {
		t.Fatalf("%d completions", completed)
	}
}

func TestSimultaneousFailAndRepairDoesNotAbort(t *testing.T) {
	// One outage ends exactly when the next begins: at t=100 a +2 repair
	// and a -2 failure coincide, so net capacity never changes. A 2-node
	// job running across t=100 must not be touched. Before edges were
	// coalesced per timestamp the engine applied the -2 edge first
	// (negative deltas sorted ahead at equal timestamps), free dipped
	// below zero, and the job was spuriously aborted.
	jobs := []*job.Job{mkJob(0, 0, 150, 150, 2)}
	res, err := Run(Machine{Nodes: 4}, jobs, &fifoScheduler{}, Options{
		Validate: true,
		Failures: []Failure{
			{At: 0, Nodes: 2, Duration: 100},
			{At: 100, Nodes: 2, Duration: 100},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AbortedAttempts != 0 {
		t.Fatalf("AbortedAttempts = %d, want 0 (fail+repair coincide)", res.AbortedAttempts)
	}
	if len(res.Schedule.Allocs) != 1 {
		t.Fatalf("%d allocations, want 1", len(res.Schedule.Allocs))
	}
	if a := res.Schedule.Allocs[0]; a.Start != 0 || a.End != 150 {
		t.Fatalf("job ran [%d,%d), want [0,150) uninterrupted", a.Start, a.End)
	}
}

func TestSimultaneousEdgesCoalesceToNetDelta(t *testing.T) {
	// A +2 repair coincides with a -3 failure at t=100: the net -1 delta
	// still forces an abort of the 4-node job, and capacity afterwards
	// admits only a 3-node-or-smaller restart at t=200.
	jobs := []*job.Job{mkJob(0, 0, 50, 50, 4)}
	res, err := Run(Machine{Nodes: 4}, jobs, &fifoScheduler{}, Options{
		Validate: true,
		Failures: []Failure{
			{At: 10, Nodes: 2, Duration: 90},
			{At: 100, Nodes: 3, Duration: 100},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// t=10: job aborted (loses 2 of 4 nodes). It needs 4 nodes, which
	// only exist again at t=200.
	if res.AbortedAttempts != 1 {
		t.Fatalf("AbortedAttempts = %d, want 1", res.AbortedAttempts)
	}
	for _, a := range res.Schedule.Allocs {
		if !a.Aborted && a.Start != 200 {
			t.Fatalf("restart at %d, want 200 (full machine back)", a.Start)
		}
	}
}

func TestFailureAfterAllJobsDoneIsHarmless(t *testing.T) {
	jobs := []*job.Job{mkJob(0, 0, 10, 10, 1)}
	res, err := Run(Machine{Nodes: 4}, jobs, &fifoScheduler{}, Options{
		Validate: true,
		Failures: []Failure{{At: 1000, Nodes: 4, Duration: 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AbortedAttempts != 0 || len(res.Schedule.Allocs) != 1 {
		t.Fatal("trailing failure perturbed the schedule")
	}
}

func TestFailureRejectsInvalidSpec(t *testing.T) {
	jobs := []*job.Job{mkJob(0, 0, 10, 10, 1)}
	_, err := Run(Machine{Nodes: 4}, jobs, &fifoScheduler{}, Options{
		Failures: []Failure{{At: 0, Nodes: 9, Duration: 10}},
	})
	if err == nil {
		t.Fatal("invalid failure spec accepted")
	}
}
