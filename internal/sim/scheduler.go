package sim

import "jobsched/internal/job"

// Running describes a job currently executing, as visible to a scheduler:
// its start time and its *estimated* completion. The actual completion is
// deliberately absent — on-line schedulers only know the user estimate.
type Running struct {
	Job   *job.Job
	Start int64
	// EstEnd is Start + Estimate, the projected completion a backfilling
	// scheduler may rely on.
	EstEnd int64
}

// Scheduler is the on-line decision component driven by the engine.
//
// The engine guarantees the call pattern:
//
//	Submit / JobStarted / JobFinished notifications in event order, and
//	after every batch of events at one time instant, repeated Startable
//	calls until no more jobs are started.
//
// Implementations must be deterministic: same event sequence, same
// decisions.
type Scheduler interface {
	// Name identifies the algorithm (used in tables).
	Name() string
	// Submit notifies the scheduler of a newly submitted job.
	Submit(j *job.Job, now int64)
	// JobStarted notifies that a job (previously returned by Startable)
	// began execution.
	JobStarted(j *job.Job, now int64)
	// JobFinished notifies that a running job completed (possibly earlier
	// than its estimate).
	JobFinished(j *job.Job, now int64)
	// Startable returns the jobs to start right now. free is the number
	// of currently unassigned nodes, running the jobs currently executing
	// (estimated completions only). The returned jobs must be waiting and
	// their total node request must not exceed free. The running slice is
	// owned by the engine and rewritten on the next scheduling round;
	// implementations must copy it if they need it past the call.
	Startable(now int64, free int, running []Running) []*job.Job
	// QueueLen returns the number of waiting jobs (diagnostics).
	QueueLen() int
}
