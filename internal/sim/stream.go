package sim

import (
	"encoding/json"
	"io"

	"jobsched/internal/job"
)

// Source supplies the arrival stream one job at a time: the streaming
// counterpart of the jobs slice taken by Run, letting a simulation pull
// arrivals straight off a trace file without materializing them.
//
// Next returns the next job or (nil, nil) when the stream is exhausted.
// Jobs must arrive in non-decreasing submission order — the engine
// cannot sort what it has not seen — but jobs sharing a submission time
// may come in any order: the engine sorts each same-instant batch by ID,
// so a Source and a pre-sorted slice drive byte-identical simulations.
// trace.Scanner satisfies Source directly.
type Source interface {
	Next() (*job.Job, error)
}

// SliceSource adapts an in-memory job slice to the Source interface.
type SliceSource struct {
	jobs []*job.Job
}

// NewSliceSource copies jobs and sorts the copy by (Submit, ID); the
// input slice is not modified.
func NewSliceSource(jobs []*job.Job) *SliceSource {
	sorted := append([]*job.Job(nil), jobs...)
	job.SortBySubmit(sorted)
	return &SliceSource{jobs: sorted}
}

// Next implements Source.
func (s *SliceSource) Next() (*job.Job, error) {
	if len(s.jobs) == 0 {
		return nil, nil
	}
	j := s.jobs[0]
	s.jobs = s.jobs[1:]
	return j, nil
}

// Sink receives finalized allocations as the simulation produces them.
// With a Sink set, the engine stops retaining allocations in
// Result.Schedule.Allocs — the memory contract that lets a million-job
// run complete under a fixed heap ceiling.
//
// Allocations arrive in finalization order (completion and abort event
// order), not start order. A non-nil error from Emit aborts the run.
type Sink interface {
	Emit(a Allocation) error
}

// MultiSink fans every allocation out to several sinks (e.g. aggregates
// plus a spill file). The first Emit error aborts the fan-out.
type MultiSink []Sink

// Emit implements Sink.
func (m MultiSink) Emit(a Allocation) error {
	for _, s := range m {
		if err := s.Emit(a); err != nil {
			return err
		}
	}
	return nil
}

// Aggregates is a Sink accumulating the schedule-level metrics the
// objective package computes from a retained schedule, in constant
// memory. Response and wait sums are held as int64, so they are exact;
// the weighted sum needs float64 and matches the objective package to
// within summation-order rounding.
type Aggregates struct {
	// Jobs counts finalized allocations, including failure-aborted
	// attempts; Completed excludes them (aborted attempts carry no
	// response — the restarted attempt does).
	Jobs            int64
	Completed       int64
	AbortedAttempts int64
	Killed          int64

	// ResponseSum and WaitSum are summed over non-aborted allocations.
	ResponseSum int64
	WaitSum     int64
	// WeightedSum accumulates resource-weighted responses: weight =
	// nodes × actual execution time, as in objective.AvgWeightedResponseTime.
	WeightedSum float64
	// UsedArea is the node-seconds consumed by all attempts, aborted
	// ones included (they occupied the machine until the failure).
	UsedArea float64
	// Makespan is the largest completion time seen.
	Makespan int64
}

// Emit implements Sink.
func (g *Aggregates) Emit(a Allocation) error {
	g.Jobs++
	g.UsedArea += float64(a.Job.Nodes) * float64(a.End-a.Start)
	if a.End > g.Makespan {
		g.Makespan = a.End
	}
	if a.Aborted {
		g.AbortedAttempts++
		return nil
	}
	g.Completed++
	if a.Killed {
		g.Killed++
	}
	g.ResponseSum = job.AddSat(g.ResponseSum, a.ResponseTime())
	g.WaitSum = job.AddSat(g.WaitSum, a.WaitTime())
	g.WeightedSum += float64(a.Job.Nodes) * float64(a.End-a.Start) * float64(a.ResponseTime())
	return nil
}

// AvgResponseTime mirrors objective.AvgResponseTime.
func (g *Aggregates) AvgResponseTime() float64 {
	if g.Completed == 0 {
		return 0
	}
	return float64(g.ResponseSum) / float64(g.Completed)
}

// AvgWaitTime mirrors objective.AvgWaitTime.
func (g *Aggregates) AvgWaitTime() float64 {
	if g.Completed == 0 {
		return 0
	}
	return float64(g.WaitSum) / float64(g.Completed)
}

// AvgWeightedResponseTime mirrors objective.AvgWeightedResponseTime.
func (g *Aggregates) AvgWeightedResponseTime() float64 {
	if g.Completed == 0 {
		return 0
	}
	return g.WeightedSum / float64(g.Completed)
}

// AllocRecord is the JSONL spill schema written by AllocEncoder: one
// finalized allocation per line, self-contained (job fields inlined) so
// analysis tools can replay metrics without the source trace.
type AllocRecord struct {
	Job     int64  `json:"job"`
	Nodes   int    `json:"nodes"`
	Submit  int64  `json:"submit"`
	Start   int64  `json:"start"`
	End     int64  `json:"end"`
	Killed  bool   `json:"killed,omitempty"`
	Aborted bool   `json:"aborted,omitempty"`
	User    string `json:"user,omitempty"`
}

// AllocEncoder is a Sink spilling allocations as JSONL to a writer
// (typically a file owned by the caller — the engine itself never
// touches the file system).
type AllocEncoder struct {
	enc *json.Encoder
}

// NewAllocEncoder wraps w for JSONL allocation spilling.
func NewAllocEncoder(w io.Writer) *AllocEncoder {
	return &AllocEncoder{enc: json.NewEncoder(w)}
}

// Emit implements Sink.
func (e *AllocEncoder) Emit(a Allocation) error {
	return e.enc.Encode(AllocRecord{
		Job:     int64(a.Job.ID),
		Nodes:   a.Job.Nodes,
		Submit:  a.Job.Submit,
		Start:   a.Start,
		End:     a.End,
		Killed:  a.Killed,
		Aborted: a.Aborted,
		User:    a.Job.User,
	})
}

// Allocation converts a spill record back to an allocation over a
// reconstructed job (runtime derived from the span for non-aborted
// attempts; the estimate is not recorded and is left equal).
func (r AllocRecord) Allocation() Allocation {
	span := r.End - r.Start
	return Allocation{
		Job: &job.Job{
			ID:       job.ID(r.Job),
			Submit:   r.Submit,
			Nodes:    r.Nodes,
			Runtime:  span,
			Estimate: span,
			User:     r.User,
		},
		Start:   r.Start,
		End:     r.End,
		Killed:  r.Killed,
		Aborted: r.Aborted,
	}
}
