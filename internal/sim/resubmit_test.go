package sim

import (
	"errors"
	"math"
	"testing"

	"jobsched/internal/job"
	"jobsched/internal/telemetry"
)

// TestFailureRepairOverflow is the regression test for the f.At+f.Duration
// overflow in failure handling: a repair edge past MaxInt64 used to wrap
// into the distant past, sort before every real event, and hand the
// machine a phantom extra node. Pre-fix this run produced an invalid
// 5-nodes-on-4 schedule (caught by Validate); post-fix the repair clamps
// and the third job waits its turn.
func TestFailureRepairOverflow(t *testing.T) {
	jobs := []*job.Job{
		mkJob(0, 0, 100, 100, 2),
		mkJob(1, 0, 100, 100, 2),
		mkJob(2, 0, 100, 100, 1),
	}
	res, err := Run(Machine{Nodes: 4}, jobs, &fifoScheduler{}, Options{
		Validate: true,
		Failures: []Failure{{At: math.MaxInt64 - 10, Nodes: 1, Duration: 100}},
	})
	if err != nil {
		t.Fatalf("run with near-MaxInt64 repair: %v", err)
	}
	a2 := res.Schedule.ByJobID(2)
	if a2 == nil || a2.Start != 100 {
		t.Fatalf("job 2 = %+v, want start at 100 (after jobs 0+1 free the machine)", a2)
	}
}

func TestValidateFailuresExported(t *testing.T) {
	got, err := ValidateFailures([]Failure{
		{At: 50, Nodes: 1, Duration: 10},
		{At: 0, Nodes: 2, Duration: 10},
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].At != 0 || got[1].At != 50 {
		t.Fatalf("ValidateFailures did not sort: %+v", got)
	}
	if _, err := ValidateFailures([]Failure{{At: 0, Nodes: 5, Duration: 10}}, 4); err == nil {
		t.Fatal("oversized failure accepted")
	}
	// Overlap check must survive a repair time past MaxInt64.
	if _, err := ValidateFailures([]Failure{
		{At: math.MaxInt64 - 5, Nodes: 2, Duration: 100},
		{At: math.MaxInt64 - 3, Nodes: 3, Duration: 100},
	}, 4); err == nil {
		t.Fatal("overlapping failures exceeding the machine accepted")
	}
}

func TestResubmitPolicyDelay(t *testing.T) {
	cases := []struct {
		p       ResubmitPolicy
		attempt int
		want    int64
	}{
		{ResubmitPolicy{}, 1, 0},
		{ResubmitPolicy{}, 5, 0},
		{ResubmitPolicy{BackoffBase: 10}, 1, 10},
		{ResubmitPolicy{BackoffBase: 10}, 2, 20},
		{ResubmitPolicy{BackoffBase: 10}, 3, 40},
		{ResubmitPolicy{BackoffBase: 10, BackoffFactor: 3}, 3, 90},
		{ResubmitPolicy{BackoffBase: 10, BackoffFactor: 3, BackoffCap: 50}, 3, 50},
		{ResubmitPolicy{BackoffBase: 10, BackoffCap: 15}, 2, 15},
		{ResubmitPolicy{BackoffBase: math.MaxInt64 / 2, BackoffFactor: 2}, 3, math.MaxInt64},
	}
	for _, c := range cases {
		if got := c.p.Delay(c.attempt); got != c.want {
			t.Errorf("%+v.Delay(%d) = %d, want %d", c.p, c.attempt, got, c.want)
		}
	}
}

// TestResubmitBudgetLost: a job aborted more often than its budget allows
// is dropped, accounted in LostJobs, and traced as an EventLost.
func TestResubmitBudgetLost(t *testing.T) {
	jobs := []*job.Job{mkJob(0, 0, 100, 100, 2)}
	buf := &telemetry.Buffer{}
	res, err := Run(Machine{Nodes: 2}, jobs, &fifoScheduler{}, Options{
		Validate: true,
		Failures: []Failure{
			{At: 10, Nodes: 2, Duration: 5},
			{At: 40, Nodes: 2, Duration: 5},
		},
		Resubmit: ResubmitPolicy{MaxResubmits: 1},
		Recorder: buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AbortedAttempts != 2 || res.Resubmits != 1 || res.LostJobs != 1 {
		t.Fatalf("aborted=%d resubmits=%d lost=%d, want 2/1/1",
			res.AbortedAttempts, res.Resubmits, res.LostJobs)
	}
	for _, a := range res.Schedule.Allocs {
		if !a.Aborted {
			t.Fatalf("lost job has a completed allocation: %+v", a)
		}
	}
	var lost []telemetry.Event
	for _, ev := range buf.Events() {
		if ev.Type == telemetry.EventLost {
			lost = append(lost, ev)
		}
	}
	if len(lost) != 1 || lost[0].Job != 0 || lost[0].At != 40 || lost[0].Attempt != 2 {
		t.Fatalf("lost events = %+v, want one for job 0 at t=40 attempt 2", lost)
	}
	counters := telemetry.NewCounters()
	for _, ev := range buf.Events() {
		counters.Record(ev)
	}
	if counters.Lost != 1 {
		t.Fatalf("counters.Lost = %d, want 1", counters.Lost)
	}
}

// TestResubmitBackoff: with a backoff base the retry is delivered after
// the delay, not in the abort's event batch.
func TestResubmitBackoff(t *testing.T) {
	jobs := []*job.Job{mkJob(0, 0, 100, 100, 2)}
	buf := &telemetry.Buffer{}
	res, err := Run(Machine{Nodes: 2}, jobs, &fifoScheduler{}, Options{
		Validate: true,
		Failures: []Failure{{At: 10, Nodes: 2, Duration: 5}},
		Resubmit: ResubmitPolicy{BackoffBase: 20},
		Recorder: buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AbortedAttempts != 1 || res.Resubmits != 1 || res.LostJobs != 0 {
		t.Fatalf("aborted=%d resubmits=%d lost=%d, want 1/1/0",
			res.AbortedAttempts, res.Resubmits, res.LostJobs)
	}
	var final *Allocation
	for i := range res.Schedule.Allocs {
		if !res.Schedule.Allocs[i].Aborted {
			final = &res.Schedule.Allocs[i]
		}
	}
	// Abort at 10, backoff 20 => retry delivered (and started) at 30.
	if final == nil || final.Start != 30 || final.End != 130 {
		t.Fatalf("final attempt = %+v, want [30,130]", final)
	}
	seen := false
	for _, ev := range buf.Events() {
		if ev.Type == telemetry.EventArrival && ev.Resubmit {
			seen = true
			if ev.At != 30 || ev.Attempt != 1 {
				t.Fatalf("resubmit arrival = %+v, want at=30 attempt=1", ev)
			}
		}
	}
	if !seen {
		t.Fatal("no resubmit arrival traced")
	}
}

// TestResubmitBackoffGrows: consecutive aborts of the same job space out
// exponentially (base 10, factor 2: delays 10 then 20).
func TestResubmitBackoffGrows(t *testing.T) {
	jobs := []*job.Job{mkJob(0, 0, 100, 100, 2)}
	res, err := Run(Machine{Nodes: 2}, jobs, &fifoScheduler{}, Options{
		Validate: true,
		Failures: []Failure{
			{At: 10, Nodes: 2, Duration: 1}, // abort 1 -> retry at 20
			{At: 30, Nodes: 2, Duration: 1}, // abort 2 -> retry at 50
		},
		Resubmit: ResubmitPolicy{BackoffBase: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	starts := make([]int64, 0, 3)
	for _, a := range res.Schedule.Allocs {
		starts = append(starts, a.Start)
	}
	want := []int64{0, 20, 50}
	if len(starts) != len(want) {
		t.Fatalf("got %d attempts (%v), want %v", len(starts), starts, want)
	}
	for i := range want {
		if starts[i] != want[i] {
			t.Fatalf("attempt starts = %v, want %v", starts, want)
		}
	}
	if res.Resubmits != 2 || res.LostJobs != 0 {
		t.Fatalf("resubmits=%d lost=%d, want 2/0", res.Resubmits, res.LostJobs)
	}
}

func TestInterrupt(t *testing.T) {
	jobs := []*job.Job{mkJob(0, 0, 100, 100, 1)}
	_, err := Run(Machine{Nodes: 4}, jobs, &fifoScheduler{}, Options{
		Interrupt: func() bool { return true },
	})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	// A never-firing interrupt must not disturb the run.
	res, err := Run(Machine{Nodes: 4}, jobs, &fifoScheduler{}, Options{
		Validate:  true,
		Interrupt: func() bool { return false },
	})
	if err != nil || len(res.Schedule.Allocs) != 1 {
		t.Fatalf("run with inert interrupt: %v", err)
	}
}
