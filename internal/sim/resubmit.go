package sim

import "jobsched/internal/job"

// ResubmitPolicy governs what happens to a job whose running attempt was
// aborted by a hardware failure. The zero value reproduces the engine's
// historical behavior: unlimited immediate resubmission (the job re-enters
// the scheduler's queue in the same event batch that aborted it).
//
// Real resource managers neither retry forever nor retry instantly: a job
// that keeps landing on flaky hardware is eventually dropped, and retries
// are spaced out so a repair crew (or a transient fault) has time to act.
// MaxResubmits bounds the retry budget — a job aborted more than
// MaxResubmits times is *lost*: its final attempt stays aborted in the
// schedule, Result.LostJobs is incremented, and an EventLost trace record
// is emitted. BackoffBase spaces retries: the k-th resubmission of a job
// is delivered BackoffBase * BackoffFactor^(k-1) seconds (capped at
// BackoffCap) after the abort instead of immediately.
type ResubmitPolicy struct {
	// MaxResubmits is the per-job retry budget: the number of times an
	// aborted job is resubmitted before being dropped as lost.
	// 0 means unlimited (every abort is resubmitted).
	MaxResubmits int
	// BackoffBase is the delay in seconds before the first resubmission.
	// 0 means immediate resubmission (the historical engine behavior).
	BackoffBase int64
	// BackoffFactor multiplies the delay for every further resubmission
	// of the same job. Values < 2 (including 0) default to 2.
	BackoffFactor int64
	// BackoffCap bounds the delay of any single resubmission.
	// 0 means uncapped (delays saturate at MaxInt64 eventually).
	BackoffCap int64
}

// Delay returns the resubmission delay in seconds for a job's attempt-th
// abort (attempt is 1-based). Arithmetic saturates, so a runaway backoff
// clamps at MaxInt64 rather than wrapping into the past.
func (p ResubmitPolicy) Delay(attempt int) int64 {
	if p.BackoffBase <= 0 {
		return 0
	}
	factor := p.BackoffFactor
	if factor < 2 {
		factor = 2
	}
	d := p.BackoffBase
	for i := 1; i < attempt; i++ {
		if p.BackoffCap > 0 && d >= p.BackoffCap {
			break
		}
		d = job.MulSat(d, factor)
	}
	if p.BackoffCap > 0 && d > p.BackoffCap {
		d = p.BackoffCap
	}
	return d
}
