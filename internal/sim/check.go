package sim

import "jobsched/internal/job"

// RunChecked is Run with Options.Validate forced on: every produced
// schedule is re-validated against the machine model (capacity never
// exceeds Machine.Nodes at any instant, no job starts before its
// submission, allocations last exactly the effective runtime under
// kill-at-estimate semantics — see Schedule.Validate).
//
// It exists so test suites cannot silently drop the invariant check: all
// internal/sched and internal/eval tests drive simulations through
// RunChecked (or set Options.Validate themselves), which is what stops an
// optimized availability profile from producing invalid-but-plausible
// schedules unnoticed.
func RunChecked(m Machine, jobs []*job.Job, s Scheduler, opt Options) (*Result, error) {
	opt.Validate = true
	//lint:ignore wallclock Run's only clock use is the CPU-timing measurement in engine.go, gated behind Options.MeasureCPU; forcing Validate on adds no clock reads.
	return Run(m, jobs, s, opt)
}
