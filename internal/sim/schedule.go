// Package sim implements the event-driven simulation of a space-shared
// parallel machine. It drives a Scheduler with the on-line stream of job
// submissions (Section 2 of the paper: "the scheduling system receives a
// stream of job submission data and produces a valid schedule"), records
// the resulting schedule, verifies its validity against the machine
// constraints of Example 5 (exclusive variable partitions, no time
// sharing, kill at the runtime limit), and measures the computation time
// consumed by the scheduler itself (Tables 7 and 8).
package sim

import (
	"fmt"
	"sort"

	"jobsched/internal/job"
)

// Machine is the target system: identical nodes, variable partitioning,
// exclusive access, no time sharing (Example 5).
type Machine struct {
	// Nodes is the size of the batch partition (256 in the paper).
	Nodes int
}

// Allocation records one job's placement in the final schedule.
type Allocation struct {
	Job   *job.Job
	Start int64
	// End is the completion time: Start + the job's effective runtime
	// (kill-at-limit semantics), or the abort time for attempts cut
	// short by a hardware failure.
	End int64
	// Killed reports whether the job was cancelled at its limit.
	Killed bool
	// Aborted reports an attempt cut short by a node failure (the job
	// was resubmitted and appears again later in the schedule).
	Aborted bool
}

// ResponseTime is End - Submit, the quantity averaged by the paper's
// daytime objective function.
func (a Allocation) ResponseTime() int64 { return a.End - a.Job.Submit }

// WaitTime is Start - Submit.
func (a Allocation) WaitTime() int64 { return a.Start - a.Job.Submit }

// Schedule is the final allocation of the machine to jobs. It is only
// complete after the simulation has executed all jobs ("the final
// schedule is only available after the execution of all jobs").
type Schedule struct {
	Machine Machine
	Allocs  []Allocation
}

// Makespan returns the completion time of the last job (0 when empty).
func (s *Schedule) Makespan() int64 {
	var m int64
	for _, a := range s.Allocs {
		if a.End > m {
			m = a.End
		}
	}
	return m
}

// Validate checks the schedule against the machine model:
//   - no job starts before its submission,
//   - every allocation lasts exactly the job's effective runtime,
//   - at no point in time are more than Machine.Nodes nodes in use
//     (exclusive partitions, no time sharing).
//
// A nil error means the schedule is valid in the paper's sense.
func (s *Schedule) Validate() error {
	type event struct {
		at    int64
		delta int
	}
	events := make([]event, 0, 2*len(s.Allocs))
	for i := range s.Allocs {
		a := &s.Allocs[i]
		if a.Start < a.Job.Submit {
			return fmt.Errorf("sim: %v started at %d before submission", a.Job, a.Start)
		}
		want := a.Job.EffectiveRuntime()
		if a.Aborted {
			// A failure-aborted attempt lasts anywhere in [0, runtime).
			if a.End < a.Start || a.End-a.Start >= want {
				return fmt.Errorf("sim: aborted %v ran %d s, want < %d", a.Job, a.End-a.Start, want)
			}
		} else {
			if a.End-a.Start != want {
				return fmt.Errorf("sim: %v ran %d s, want %d", a.Job, a.End-a.Start, want)
			}
			if a.Killed != a.Job.Killed() {
				return fmt.Errorf("sim: %v kill flag %v inconsistent", a.Job, a.Killed)
			}
		}
		if a.End > a.Start {
			events = append(events,
				event{at: a.Start, delta: a.Job.Nodes},
				event{at: a.End, delta: -a.Job.Nodes})
		}
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		// Process releases before acquisitions at equal times: a node freed
		// at t may be reused from t on.
		return events[i].delta < events[j].delta
	})
	used := 0
	for _, e := range events {
		used += e.delta
		if used > s.Machine.Nodes {
			return fmt.Errorf("sim: %d nodes in use at t=%d on a %d-node machine",
				used, e.at, s.Machine.Nodes)
		}
		if used < 0 {
			return fmt.Errorf("sim: negative usage at t=%d", e.at)
		}
	}
	return nil
}

// UsedArea returns the summed node-seconds actually consumed by jobs.
func (s *Schedule) UsedArea() float64 {
	var sum float64
	for _, a := range s.Allocs {
		sum += float64(a.Job.Nodes) * float64(a.End-a.Start)
	}
	return sum
}

// ByJobID returns the allocation for a given job ID, or nil.
func (s *Schedule) ByJobID(id job.ID) *Allocation {
	for i := range s.Allocs {
		if s.Allocs[i].Job.ID == id {
			return &s.Allocs[i]
		}
	}
	return nil
}
