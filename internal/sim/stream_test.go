package sim

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"jobsched/internal/job"
	"jobsched/internal/telemetry"
)

// fileOrderSource replays a fixed slice verbatim — including any
// within-instant disorder — the way a trace scanner would.
type fileOrderSource struct {
	jobs []*job.Job
	i    int
}

func (s *fileOrderSource) Next() (*job.Job, error) {
	if s.i >= len(s.jobs) {
		return nil, nil
	}
	j := s.jobs[s.i]
	s.i++
	return j, nil
}

// randomWorkload builds a deterministic pseudo-random workload with
// plenty of same-instant ties, delivered in file order (sorted by submit
// only; IDs shuffled within each instant).
func randomWorkload(seed int64, n, nodes int) []*job.Job {
	rng := rand.New(rand.NewSource(seed))
	jobs := make([]*job.Job, 0, n)
	t := int64(0)
	for i := 0; i < n; i++ {
		if rng.Intn(3) > 0 { // ~2/3 of jobs tie with the previous instant
			t += int64(rng.Intn(50))
		}
		runtime := int64(1 + rng.Intn(200))
		estimate := runtime + int64(rng.Intn(100))
		jobs = append(jobs, &job.Job{
			ID: job.ID(1000 + i), Submit: t,
			Runtime: runtime, Estimate: estimate,
			Nodes: 1 + rng.Intn(nodes),
		})
	}
	// Shuffle IDs within each submit instant so the file order disagrees
	// with ID order (the engine must re-sort each batch).
	for lo := 0; lo < len(jobs); {
		hi := lo
		for hi < len(jobs) && jobs[hi].Submit == jobs[lo].Submit {
			hi++
		}
		rng.Shuffle(hi-lo, func(a, b int) {
			jobs[lo+a], jobs[lo+b] = jobs[lo+b], jobs[lo+a]
		})
		lo = hi
	}
	return jobs
}

// TestRunStreamMatchesRun is the streaming differential: pulling
// arrivals from a file-order source must reproduce the slice run
// exactly — same Result, same schedule, same telemetry event stream.
func TestRunStreamMatchesRun(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  Options
	}{
		{"plain", Options{Validate: true}},
		{"failures", Options{Validate: true,
			Failures: []Failure{{At: 40, Nodes: 3, Duration: 60}, {At: 300, Nodes: 2, Duration: 30}}}},
		{"failures-backoff", Options{Validate: true,
			Failures: []Failure{{At: 40, Nodes: 3, Duration: 60}},
			Resubmit: ResubmitPolicy{MaxResubmits: 2, BackoffBase: 10, BackoffFactor: 2}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			jobs := randomWorkload(7, 400, 4)

			sliceOpt := tc.opt
			var sliceTrace telemetry.Buffer
			sliceOpt.Recorder = &sliceTrace
			want, err := Run(Machine{Nodes: 4}, jobs, &fifoScheduler{}, sliceOpt)
			if err != nil {
				t.Fatal(err)
			}

			streamOpt := tc.opt
			var streamTrace telemetry.Buffer
			streamOpt.Recorder = &streamTrace
			got, err := RunStream(Machine{Nodes: 4}, &fileOrderSource{jobs: jobs}, &fifoScheduler{}, streamOpt)
			if err != nil {
				t.Fatal(err)
			}

			if !reflect.DeepEqual(want, got) {
				t.Errorf("streamed Result differs from slice Result:\n%+v\nvs\n%+v", got, want)
			}
			if !reflect.DeepEqual(sliceTrace.Events(), streamTrace.Events()) {
				t.Errorf("telemetry differs: %d vs %d events", sliceTrace.Len(), streamTrace.Len())
				for i := range sliceTrace.Events() {
					if i < streamTrace.Len() && sliceTrace.Events()[i] != streamTrace.Events()[i] {
						t.Fatalf("first divergence at event %d:\n%+v\nvs\n%+v",
							i, sliceTrace.Events()[i], streamTrace.Events()[i])
					}
				}
			}
		})
	}
}

// TestRunSinkMatchesRetainedSchedule: a sinked run must leave the
// retained schedule empty and deliver, via the sink, exactly the
// allocations a retained run records (as a set — the sink emits in
// finalization order, the schedule in start order).
func TestRunSinkMatchesRetainedSchedule(t *testing.T) {
	jobs := randomWorkload(11, 300, 4)
	opt := Options{Failures: []Failure{{At: 50, Nodes: 3, Duration: 40}}}
	want, err := Run(Machine{Nodes: 4}, jobs, &fifoScheduler{}, opt)
	if err != nil {
		t.Fatal(err)
	}

	var got []Allocation
	collect := sinkFunc(func(a Allocation) error { got = append(got, a); return nil })
	opt.Sink = collect
	res, err := Run(Machine{Nodes: 4}, jobs, &fifoScheduler{}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Schedule.Allocs) != 0 {
		t.Errorf("sink mode retained %d allocations", len(res.Schedule.Allocs))
	}
	if res.Events != want.Events || res.MaxQueue != want.MaxQueue ||
		res.AbortedAttempts != want.AbortedAttempts || res.Resubmits != want.Resubmits {
		t.Errorf("counters differ: %+v vs %+v", res, want)
	}
	if len(got) != len(want.Schedule.Allocs) {
		t.Fatalf("sink saw %d allocations, schedule has %d", len(got), len(want.Schedule.Allocs))
	}
	key := func(a Allocation) string {
		return fmt.Sprintf("%d/%d/%d/%v/%v", a.Job.ID, a.Start, a.End, a.Killed, a.Aborted)
	}
	seen := make(map[string]int)
	for _, a := range want.Schedule.Allocs {
		seen[key(a)]++
	}
	for _, a := range got {
		if seen[key(a)] == 0 {
			t.Errorf("sink emitted allocation not in retained schedule: %+v", a)
			continue
		}
		seen[key(a)]--
	}
	// Emission order: non-decreasing finalization time.
	for i := 1; i < len(got); i++ {
		if got[i].End < got[i-1].End {
			t.Errorf("sink emission not in finalization order: %d after %d", got[i].End, got[i-1].End)
		}
	}
}

type sinkFunc func(Allocation) error

func (f sinkFunc) Emit(a Allocation) error { return f(a) }

// TestAggregatesMatchSchedule: the constant-memory aggregates must
// reproduce the metrics computed from a retained schedule.
func TestAggregatesMatchSchedule(t *testing.T) {
	jobs := randomWorkload(13, 500, 4)
	opt := Options{Failures: []Failure{{At: 70, Nodes: 2, Duration: 25}}}
	want, err := Run(Machine{Nodes: 4}, jobs, &fifoScheduler{}, opt)
	if err != nil {
		t.Fatal(err)
	}

	var agg Aggregates
	streamOpt := opt
	streamOpt.Sink = &agg
	if _, err := RunStream(Machine{Nodes: 4}, &fileOrderSource{jobs: jobs}, &fifoScheduler{}, streamOpt); err != nil {
		t.Fatal(err)
	}

	// Reference values straight off the retained schedule, mirroring the
	// objective package's aborted-attempt handling.
	var respSum, waitSum, makespan int64
	var weighted, area float64
	var completed, aborted, killed int64
	for _, a := range want.Schedule.Allocs {
		area += float64(a.Job.Nodes) * float64(a.End-a.Start)
		if a.End > makespan {
			makespan = a.End
		}
		if a.Aborted {
			aborted++
			continue
		}
		completed++
		if a.Killed {
			killed++
		}
		respSum += a.ResponseTime()
		waitSum += a.WaitTime()
		weighted += float64(a.Job.Nodes) * float64(a.End-a.Start) * float64(a.ResponseTime())
	}
	if agg.Jobs != int64(len(want.Schedule.Allocs)) || agg.Completed != completed ||
		agg.AbortedAttempts != aborted || agg.Killed != killed {
		t.Errorf("counts: %+v; want %d/%d/%d/%d", agg, len(want.Schedule.Allocs), completed, aborted, killed)
	}
	if agg.ResponseSum != respSum || agg.WaitSum != waitSum || agg.Makespan != makespan {
		t.Errorf("sums: resp %d want %d, wait %d want %d, makespan %d want %d",
			agg.ResponseSum, respSum, agg.WaitSum, waitSum, agg.Makespan, makespan)
	}
	if agg.UsedArea != area {
		t.Errorf("used area %g, want %g", agg.UsedArea, area)
	}
	if rel := math.Abs(agg.WeightedSum-weighted) / weighted; rel > 1e-12 {
		t.Errorf("weighted sum %g, want %g (rel %g)", agg.WeightedSum, weighted, rel)
	}
	wantAvg := float64(respSum) / float64(completed)
	if agg.AvgResponseTime() != wantAvg {
		t.Errorf("AvgResponseTime %g, want %g", agg.AvgResponseTime(), wantAvg)
	}
}

func TestAllocEncoderRoundTrip(t *testing.T) {
	jobs := randomWorkload(17, 50, 4)
	var buf bytes.Buffer
	var agg Aggregates
	opt := Options{Sink: MultiSink{&agg, NewAllocEncoder(&buf)}}
	if _, err := Run(Machine{Nodes: 4}, jobs, &fifoScheduler{}, opt); err != nil {
		t.Fatal(err)
	}
	var n int64
	sc := bufio.NewScanner(&buf)
	var replay Aggregates
	for sc.Scan() {
		var r AllocRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("line %d: %v", n+1, err)
		}
		if err := replay.Emit(r.Allocation()); err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != agg.Jobs {
		t.Fatalf("spill has %d records, aggregates saw %d", n, agg.Jobs)
	}
	// The spill is self-contained: replaying it reproduces the sums.
	if replay.ResponseSum != agg.ResponseSum || replay.WaitSum != agg.WaitSum ||
		replay.Makespan != agg.Makespan || replay.UsedArea != agg.UsedArea {
		t.Errorf("replayed aggregates differ: %+v vs %+v", replay, agg)
	}
}

func TestRunStreamSourceErrorPropagates(t *testing.T) {
	boom := errors.New("disk on fire")
	src := &erringSource{after: 3, err: boom}
	_, err := RunStream(Machine{Nodes: 4}, src, &fifoScheduler{}, Options{})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("source error lost: %v", err)
	}
	if !strings.Contains(err.Error(), "arrival source") {
		t.Errorf("error %q does not name the source", err)
	}
}

type erringSource struct {
	after int
	err   error
}

func (s *erringSource) Next() (*job.Job, error) {
	if s.after == 0 {
		return nil, s.err
	}
	s.after--
	return &job.Job{ID: job.ID(s.after), Submit: 0, Runtime: 10, Estimate: 10, Nodes: 1}, nil
}

func TestRunStreamRejectsBackwardsSource(t *testing.T) {
	jobs := []*job.Job{
		mkJob(0, 100, 10, 10, 1),
		mkJob(1, 50, 10, 10, 1),
	}
	_, err := RunStream(Machine{Nodes: 4}, &fileOrderSource{jobs: jobs}, &fifoScheduler{}, Options{})
	if err == nil || !strings.Contains(err.Error(), "non-decreasing") {
		t.Fatalf("backwards source accepted: %v", err)
	}
}

func TestSinkIncompatibleWithValidate(t *testing.T) {
	var agg Aggregates
	_, err := Run(Machine{Nodes: 4}, nil, &fifoScheduler{}, Options{Validate: true, Sink: &agg})
	if err == nil || !strings.Contains(err.Error(), "Validate") {
		t.Fatalf("Validate+Sink accepted: %v", err)
	}
}

func TestSinkErrorAbortsRun(t *testing.T) {
	boom := errors.New("spill full")
	opt := Options{Sink: sinkFunc(func(Allocation) error { return boom })}
	jobs := []*job.Job{mkJob(0, 0, 10, 10, 1)}
	_, err := Run(Machine{Nodes: 4}, jobs, &fifoScheduler{}, opt)
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("sink error lost: %v", err)
	}
}
