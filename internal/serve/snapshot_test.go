package serve

import (
	"os"
	"path/filepath"
	"testing"
)

// buildSession makes a session with a mix of pending, running, retired,
// expired, and shed jobs — every state class a snapshot must carry.
func buildSession(t *testing.T) *Session {
	t.Helper()
	sess, err := NewSession("snap", Config{Nodes: 16, MaxPending: 4})
	if err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, sess, []JobSpec{
		{Name: "a", User: "u1", Nodes: 8, Estimate: 100},
		{Name: "b", User: "u1", Nodes: 8, Estimate: 200, Runtime: 150},
		{Name: "c", User: "u2", Nodes: 16, Estimate: 300},             // waits for a+b
		{Name: "d", User: "u2", Nodes: 1, Estimate: 50, Deadline: 80}, // expires waiting
	})
	if err := sess.Advance(120); err != nil { // a done, d expired at 81
		t.Fatal(err)
	}
	// Overflow the bounded queue: 4 pending max, c is pending plus these.
	mustSubmit(t, sess, []JobSpec{
		{Name: "e", Nodes: 1, Estimate: 10}, {Name: "f", Nodes: 1, Estimate: 10},
		{Name: "g", Nodes: 1, Estimate: 10}, {Name: "h", Nodes: 1, Estimate: 10},
		{Name: "shed-me", Nodes: 1, Estimate: 10},
	})
	return sess
}

func mustSubmit(t *testing.T, sess *Session, specs []JobSpec) []SubmitResult {
	t.Helper()
	rs, err := sess.Submit(specs)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

// TestSnapshotRoundTrip: capture → write → read → restore reproduces
// the exact fingerprint, and the restored session keeps making the same
// decisions as the original.
func TestSnapshotRoundTrip(t *testing.T) {
	sess := buildSession(t)
	dir := t.TempDir()
	want := sess.Fingerprint()
	snap := sess.Snapshot(42)
	if err := writeSnapshot(dir, snap); err != nil {
		t.Fatal(err)
	}

	got, err := readSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("snapshot missing after write")
	}
	if got.WALSeq != 42 {
		t.Fatalf("WALSeq = %d, want 42", got.WALSeq)
	}
	restored, err := RestoreSession(got)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Fingerprint() != want {
		t.Fatalf("restored fingerprint %016x != original %016x", restored.Fingerprint(), want)
	}

	// The futures must agree too, not just the instantaneous state.
	if err := sess.Advance(5000); err != nil {
		t.Fatal(err)
	}
	if err := restored.Advance(5000); err != nil {
		t.Fatal(err)
	}
	if sess.Fingerprint() != restored.Fingerprint() {
		t.Fatal("original and restored sessions diverged after further advancing")
	}
	if sess.Agg() != restored.Agg() {
		t.Fatalf("aggregates diverged: %+v vs %+v", sess.Agg(), restored.Agg())
	}
}

// TestSnapshotIgnoresTornTemp: a crash mid-write leaves snapshot.json.tmp;
// recovery must use the last published snapshot and clean the temp up.
func TestSnapshotIgnoresTornTemp(t *testing.T) {
	sess := buildSession(t)
	dir := t.TempDir()
	if err := writeSnapshot(dir, sess.Snapshot(7)); err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, snapshotFile+".tmp")
	if err := os.WriteFile(torn, []byte(`{"version":1,"name":"snap","clo`), 0o644); err != nil {
		t.Fatal(err)
	}
	snap, err := readSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.WALSeq != 7 {
		t.Fatalf("published snapshot not used: %+v", snap)
	}
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Fatal("torn temp file not cleaned up")
	}

	// With no published snapshot at all, a torn temp means "no snapshot".
	empty := t.TempDir()
	if err := os.WriteFile(filepath.Join(empty, snapshotFile+".tmp"), []byte("gar"), 0o644); err != nil {
		t.Fatal(err)
	}
	snap, err = readSnapshot(empty)
	if err != nil || snap != nil {
		t.Fatalf("torn temp without published snapshot: snap=%v err=%v", snap, err)
	}
}

// TestRestoreRefusesTamperedSnapshot: the self-check fingerprint catches
// a snapshot whose content was altered after capture.
func TestRestoreRefusesTamperedSnapshot(t *testing.T) {
	sess := buildSession(t)
	snap := sess.Snapshot(1)
	snap.Agg.Completed++ // silent corruption
	if _, err := RestoreSession(snap); err == nil {
		t.Fatal("tampered snapshot restored without complaint")
	}
}
