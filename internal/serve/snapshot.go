package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// snapshotFile is the snapshot's name inside a session directory.
const snapshotFile = "snapshot.json"

// snapJob is one job's durable state inside a snapshot.
type snapJob struct {
	ID     int64   `json:"id"`
	Spec   JobSpec `json:"spec"`
	Submit int64   `json:"submit"`
	Start  int64   `json:"start,omitempty"`
	End    int64   `json:"end,omitempty"`
	// Seq is the start order (running jobs only): it breaks completion
	// ties, so restoring it keeps event delivery byte-identical.
	Seq    int    `json:"seq,omitempty"`
	Status string `json:"status,omitempty"`
}

// Snapshot is a session's full durable state at one WAL position:
// restoring it and replaying the WAL records after WALSeq reconstructs
// the session exactly. Pending jobs are stored in arrival order (the
// order the order policy saw them), running jobs in start order.
type Snapshot struct {
	Version  int        `json:"version"`
	Name     string     `json:"name"`
	Config   Config     `json:"config"`
	Clock    int64      `json:"clock"`
	NextID   int64      `json:"next_id"`
	StartSeq int        `json:"start_seq"`
	WALSeq   uint64     `json:"wal_seq"`
	Agg      Aggregates `json:"agg"`
	Pending  []snapJob  `json:"pending"`
	Running  []snapJob  `json:"running"`
	Retired  []snapJob  `json:"retired"`
	// Fingerprint is the state fingerprint at capture time; restore
	// recomputes it and refuses a snapshot that does not round-trip, so
	// a corrupt or hand-edited snapshot cannot silently resurrect a
	// session into a state no client was ever acked.
	Fingerprint string `json:"fingerprint"`
}

// writeSnapshot atomically replaces the session's snapshot. A crash at
// any point leaves either the old or the new snapshot intact — never a
// torn one (the kill-mid-write recovery test pins this).
func writeSnapshot(dir string, snap *Snapshot) error {
	data, err := json.MarshalIndent(snap, "", " ")
	if err != nil {
		return fmt.Errorf("serve: snapshot: %w", err)
	}
	return writeFileAtomic(dir, snapshotFile, data)
}

// writeFileAtomic durably replaces dir/name: write to a temp file,
// fsync it, rename over the target, fsync the directory. The content
// fsync before the rename is what makes the rename a commit point — a
// crash can leave the old file or the new one, never a torn mix.
func writeFileAtomic(dir, name string, data []byte) error {
	tmp := filepath.Join(dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("serve: writing %s: %w", name, err)
	}
	if _, err := f.Write(data); err != nil {
		cerr := f.Close()
		_ = cerr // the write failure is the actionable error
		return fmt.Errorf("serve: writing %s: %w", name, err)
	}
	if err := f.Sync(); err != nil {
		cerr := f.Close()
		_ = cerr // the sync failure is the actionable error
		return fmt.Errorf("serve: syncing %s: %w", name, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("serve: closing %s: %w", name, err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return fmt.Errorf("serve: publishing %s: %w", name, err)
	}
	// Durably record the rename itself: without the directory fsync a
	// crash can forget the new name while keeping the new inode.
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("serve: syncing dir for %s: %w", name, err)
	}
	if err := d.Sync(); err != nil {
		cerr := d.Close()
		_ = cerr // the sync failure is the actionable error
		return fmt.Errorf("serve: syncing dir for %s: %w", name, err)
	}
	if err := d.Close(); err != nil {
		return fmt.Errorf("serve: syncing dir for %s: %w", name, err)
	}
	return nil
}

// readSnapshot loads the session snapshot, or returns (nil, nil) when
// none has been written yet. A leftover temp file from a crash
// mid-write is ignored (and cleaned up) — the rename never happened, so
// the previous snapshot (or the bare WAL) is the durable truth.
func readSnapshot(dir string) (*Snapshot, error) {
	if err := os.Remove(filepath.Join(dir, snapshotFile+".tmp")); err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("serve: snapshot: %w", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, snapshotFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("serve: snapshot: %w", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("serve: snapshot %s: %w", filepath.Join(dir, snapshotFile), err)
	}
	if snap.Version != 1 {
		return nil, fmt.Errorf("serve: snapshot %s: unsupported version %d", filepath.Join(dir, snapshotFile), snap.Version)
	}
	return &snap, nil
}
