package serve

import (
	"errors"
	"sync"
	"time"
)

// ErrRateLimited is the admission controller's refusal; the HTTP layer
// maps it to 429 with a Retry-After.
var ErrRateLimited = errors.New("serve: rate limited")

// ErrBatchTooLarge refuses a single submission bigger than the per-user
// burst: no amount of waiting ever admits it, so unlike ErrRateLimited
// it is not retriable — the client must split the batch. The HTTP layer
// maps it to 413 with no Retry-After.
var ErrBatchTooLarge = errors.New("serve: submission exceeds per-user burst")

// Buckets is a per-user token-bucket admission controller: each user
// accrues Rate tokens per second up to Burst, and a submission of n
// jobs spends n tokens. Refusals are cheap (no allocation, no queueing)
// and come with the delay after which the request would succeed, so
// clients can back off precisely instead of hammering. Safe for
// concurrent use.
type Buckets struct {
	rate  float64
	burst float64
	// now is injectable for tests; the daemon passes time.Now. Admission
	// is intentionally wall-clock — it shapes real request load and is
	// invisible to the deterministic session state.
	now func() time.Time

	mu    sync.Mutex
	users map[string]*bucket
	// lastSweep gates the O(users) refill sweep: re-running it before a
	// single token could have accrued cannot free anything, so while
	// saturated the insert path skips it instead of paying a full scan
	// per request.
	lastSweep time.Time
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxUsers is a hard bound on the bucket map: before an insert would
// exceed it, refilled (idle) buckets are swept — forgetting a full
// bucket is lossless, an idle user re-enters with a full bucket anyway
// — and if nothing has refilled, an arbitrary bucket is evicted in
// O(1). An adversary cycling user names can therefore neither grow
// memory without bound nor force a full-map scan per request.
const maxUsers = 16384

// NewBuckets builds the controller. rate <= 0 disables admission
// control (every request admitted).
func NewBuckets(rate, burst float64, now func() time.Time) *Buckets {
	if burst < 1 {
		burst = 1
	}
	if now == nil {
		now = time.Now
	}
	return &Buckets{rate: rate, burst: burst, now: now, users: make(map[string]*bucket)}
}

// AllowN spends n tokens from user's bucket. When the bucket is short
// it spends nothing and returns the wait until n tokens will have
// accrued (minimum 1s granularity is the caller's concern).
func (b *Buckets) AllowN(user string, n int) (ok bool, retryAfter time.Duration) {
	if b == nil || b.rate <= 0 {
		return true, 0
	}
	need := float64(n)
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.now()
	u := b.users[user]
	if u == nil {
		if len(b.users) >= maxUsers {
			b.makeRoom(t)
		}
		u = &bucket{tokens: b.burst, last: t}
		b.users[user] = u
	} else {
		u.tokens += t.Sub(u.last).Seconds() * b.rate
		if u.tokens > b.burst {
			u.tokens = b.burst
		}
		u.last = t
	}
	if u.tokens >= need {
		u.tokens -= need
		return true, 0
	}
	// A request larger than the burst can never accrue enough; quote the
	// full-bucket wait. Callers should refuse such requests up front via
	// MaxBatch/ErrBatchTooLarge — a finite retry-after here would loop a
	// well-behaved client forever.
	short := need - u.tokens
	if need > b.burst {
		short = b.burst - u.tokens
	}
	return false, time.Duration(short / b.rate * float64(time.Second))
}

// MaxBatch is the largest single submission the per-user burst can ever
// admit; 0 means unlimited (admission disabled). Requests above it
// should be refused with ErrBatchTooLarge rather than sent to AllowN,
// whose retriable refusal would never stop.
func (b *Buckets) MaxBatch() int {
	if b == nil || b.rate <= 0 {
		return 0
	}
	return int(b.burst)
}

// makeRoom enforces maxUsers ahead of an insert: sweep refilled
// buckets, but only if at least one token could have accrued since the
// last sweep (otherwise it cannot free anything and would be an
// O(users) scan per request while saturated); if the map is still full,
// evict an arbitrary bucket in O(1). Forgetting a live bucket forgives
// at most one burst of debt — bounded, and under a flood of unique
// names the victim is almost surely one of the flood's own single-use
// entries. Requires b.mu.
func (b *Buckets) makeRoom(t time.Time) {
	if t.Sub(b.lastSweep).Seconds()*b.rate >= 1 {
		b.sweep(t)
		b.lastSweep = t
	}
	if len(b.users) < maxUsers {
		return
	}
	for name := range b.users {
		delete(b.users, name)
		return
	}
}

// sweep drops buckets that have re-filled (idle users). Requires b.mu.
func (b *Buckets) sweep(t time.Time) {
	for name, u := range b.users {
		if u.tokens+t.Sub(u.last).Seconds()*b.rate >= b.burst {
			delete(b.users, name)
		}
	}
}
