package serve

import (
	"errors"
	"sync"
	"time"
)

// ErrRateLimited is the admission controller's refusal; the HTTP layer
// maps it to 429 with a Retry-After.
var ErrRateLimited = errors.New("serve: rate limited")

// Buckets is a per-user token-bucket admission controller: each user
// accrues Rate tokens per second up to Burst, and a submission of n
// jobs spends n tokens. Refusals are cheap (no allocation, no queueing)
// and come with the delay after which the request would succeed, so
// clients can back off precisely instead of hammering. Safe for
// concurrent use.
type Buckets struct {
	rate  float64
	burst float64
	// now is injectable for tests; the daemon passes time.Now. Admission
	// is intentionally wall-clock — it shapes real request load and is
	// invisible to the deterministic session state.
	now func() time.Time

	mu    sync.Mutex
	users map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxUsers bounds the bucket map; beyond it, full buckets are swept
// (forgetting a full bucket is lossless — an idle user re-enters with a
// full bucket anyway), so an adversary cycling user names cannot grow
// memory without bound.
const maxUsers = 16384

// NewBuckets builds the controller. rate <= 0 disables admission
// control (every request admitted).
func NewBuckets(rate, burst float64, now func() time.Time) *Buckets {
	if burst < 1 {
		burst = 1
	}
	if now == nil {
		now = time.Now
	}
	return &Buckets{rate: rate, burst: burst, now: now, users: make(map[string]*bucket)}
}

// AllowN spends n tokens from user's bucket. When the bucket is short
// it spends nothing and returns the wait until n tokens will have
// accrued (minimum 1s granularity is the caller's concern).
func (b *Buckets) AllowN(user string, n int) (ok bool, retryAfter time.Duration) {
	if b == nil || b.rate <= 0 {
		return true, 0
	}
	need := float64(n)
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.now()
	u := b.users[user]
	if u == nil {
		if len(b.users) >= maxUsers {
			b.sweep()
		}
		u = &bucket{tokens: b.burst, last: t}
		b.users[user] = u
	} else {
		u.tokens += t.Sub(u.last).Seconds() * b.rate
		if u.tokens > b.burst {
			u.tokens = b.burst
		}
		u.last = t
	}
	if u.tokens >= need {
		u.tokens -= need
		return true, 0
	}
	// A request larger than the burst can never accrue enough; quote the
	// full-bucket wait so the client learns to split the batch.
	short := need - u.tokens
	if need > b.burst {
		short = b.burst - u.tokens
	}
	return false, time.Duration(short / b.rate * float64(time.Second))
}

// sweep drops buckets that have re-filled (idle users). Requires b.mu.
func (b *Buckets) sweep() {
	t := b.now()
	for name, u := range b.users {
		if u.tokens+t.Sub(u.last).Seconds()*b.rate >= b.burst {
			delete(b.users, name)
		}
	}
}
