package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"jobsched/internal/telemetry"
)

// Sentinel errors the HTTP layer maps to status codes.
var (
	// ErrNotFound: the named session does not exist.
	ErrNotFound = errors.New("serve: session not found")
	// ErrExists: session creation collided with an existing name.
	ErrExists = errors.New("serve: session already exists")
	// ErrBusy: the session's bounded intake queue is full — explicit
	// load-shedding, mapped to 503 + Retry-After.
	ErrBusy = errors.New("serve: session busy, submission queue full")
	// ErrDraining: the daemon is shutting down and refuses new work.
	ErrDraining = errors.New("serve: daemon draining")
)

const (
	configFile = "config.json"
	walFile    = "wal.jsonl"
	auditFile  = "audit.jsonl"
)

// StoreOptions tune the service layer; zero values take defaults.
type StoreOptions struct {
	// SnapshotEvery triggers a snapshot after this many committed WAL
	// records (default 256). Snapshots only accelerate recovery — the
	// WAL alone is always sufficient.
	SnapshotEvery int
	// IntakeDepth bounds each session's pending-operation queue
	// (default 256); a full queue sheds with ErrBusy instead of queueing
	// unboundedly.
	IntakeDepth int
	// BatchMax caps how many queued operations one commit groups under a
	// single WAL fsync (default 64).
	BatchMax int
	// Audit enables the per-session decision-trace file (audit.jsonl).
	Audit bool
	// Logf receives operational warnings (snapshot failures, recovery
	// events); nil discards them.
	Logf func(format string, args ...any)
}

func (o StoreOptions) withDefaults() StoreOptions {
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 256
	}
	if o.IntakeDepth == 0 {
		o.IntakeDepth = 256
	}
	if o.BatchMax == 0 {
		o.BatchMax = 64
	}
	return o
}

func (o StoreOptions) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Store multiplexes the durable sessions under one data directory. All
// methods are safe for concurrent use.
type Store struct {
	dir string
	opt StoreOptions

	mu       sync.Mutex
	sessions map[string]*handle
	draining bool
}

// OpenStore opens (creating if needed) the data directory and recovers
// every session found in it. A session that fails recovery fails the
// open: serving a subset would silently answer "not found" for state
// that exists on disk.
func OpenStore(dir string, opt StoreOptions) (*Store, error) {
	opt = opt.withDefaults()
	root := filepath.Join(dir, "sessions")
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("serve: store: %w", err)
	}
	st := &Store{dir: dir, opt: opt, sessions: make(map[string]*handle)}
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("serve: store: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		h, err := openHandle(name, filepath.Join(root, name), opt)
		if err != nil {
			st.closeAll()
			return nil, fmt.Errorf("serve: recovering session %s: %w", name, err)
		}
		st.sessions[name] = h
		opt.logf("session %s recovered: clock=%d wal_seq=%d", name, h.clockNow(), h.walSeqNow())
	}
	return st, nil
}

// closeAll abandons all handles without draining (open-failure path).
func (s *Store) closeAll() {
	for _, h := range s.sessions {
		h.closeIntake()
		<-h.done
	}
}

// Create makes a new durable session and starts its worker.
func (s *Store) Create(name string, cfg Config) error {
	if !nameRE.MatchString(name) {
		return rejectf("serve: invalid session name %q", name)
	}
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return ErrDraining
	}
	if _, ok := s.sessions[name]; ok {
		return ErrExists
	}
	dir := filepath.Join(s.dir, "sessions", name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("serve: create: %w", err)
	}
	data, err := json.MarshalIndent(cfg, "", " ")
	if err != nil {
		return fmt.Errorf("serve: create: %w", err)
	}
	// The config is written atomically (tmp+rename, both fsynced): a
	// crash mid-create leaves either no config — an empty directory the
	// next open treats as garbage — or a complete one.
	if err := writeFileAtomic(dir, configFile, data); err != nil {
		return err
	}
	h, err := openHandle(name, dir, s.opt)
	if err != nil {
		return err
	}
	s.sessions[name] = h
	return nil
}

// get resolves a session handle.
func (s *Store) get(name string) (*handle, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.sessions[name]
	if !ok {
		return nil, ErrNotFound
	}
	return h, nil
}

// Names lists the sessions, sorted.
func (s *Store) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.sessions))
	for name := range s.sessions {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Submit enqueues a batch submission on the named session and waits for
// its commit (applied + fsynced) or failure.
func (s *Store) Submit(ctx context.Context, name string, specs []JobSpec) ([]SubmitResult, error) {
	h, err := s.get(name)
	if err != nil {
		return nil, err
	}
	if s.isDraining() {
		return nil, ErrDraining
	}
	res, err := h.do(ctx, &work{ctx: ctx, op: opSubmit, specs: specs})
	return res.results, err
}

// Advance moves the named session's clock, waiting for the commit.
func (s *Store) Advance(ctx context.Context, name string, to int64) error {
	h, err := s.get(name)
	if err != nil {
		return err
	}
	if s.isDraining() {
		return ErrDraining
	}
	_, err = h.do(ctx, &work{ctx: ctx, op: opAdvance, at: to})
	return err
}

func (s *Store) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// SessionInfo is a session's externally visible summary.
type SessionInfo struct {
	Name    string     `json:"name"`
	Config  Config     `json:"config"`
	Clock   int64      `json:"clock"`
	Pending int        `json:"pending"`
	Running int        `json:"running"`
	Agg     Aggregates `json:"agg"`
	WALSeq  uint64     `json:"wal_seq"`
	// Fingerprint is the state hash crash-recovery equality is checked
	// against (hex).
	Fingerprint string `json:"fingerprint"`
}

// Info summarizes the named session.
func (s *Store) Info(name string) (SessionInfo, error) {
	h, err := s.get(name)
	if err != nil {
		return SessionInfo{}, err
	}
	return h.info()
}

// Job returns one job's record from the named session.
func (s *Store) Job(name string, id int64) (JobInfo, error) {
	h, err := s.get(name)
	if err != nil {
		return JobInfo{}, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.broken != nil {
		return JobInfo{}, h.broken
	}
	ji, ok := h.sess.Job(id)
	if !ok {
		return JobInfo{}, fmt.Errorf("serve: job %d: %w", id, ErrNotFound)
	}
	return ji, nil
}

// StartDraining flips the store into drain mode: new sessions and new
// mutations are refused with ErrDraining, reads keep serving. Call
// before shutting the HTTP listener down so in-flight requests get the
// explicit refusal rather than a connection reset.
func (s *Store) StartDraining() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.draining = true
}

// Drain closes every session's intake, waits for the workers to commit
// what was already queued, flush final snapshots, and close their logs.
// It returns the first finalization error (the daemon exits nonzero on
// it, so a failed final flush is loud, not silent).
func (s *Store) Drain(ctx context.Context) error {
	s.StartDraining()
	s.mu.Lock()
	handles := make([]*handle, 0, len(s.sessions))
	for _, h := range s.sessions {
		handles = append(handles, h)
	}
	s.mu.Unlock()
	var firstErr error
	for _, h := range handles {
		h.closeIntake()
	}
	for _, h := range handles {
		select {
		case <-h.done:
			if err := h.finalErr(); err != nil && firstErr == nil {
				firstErr = err
			}
		case <-ctx.Done():
			return fmt.Errorf("serve: drain: %w", ctx.Err())
		}
	}
	return firstErr
}

// work is one mutation awaiting the session worker.
type work struct {
	ctx   context.Context
	op    string
	specs []JobSpec
	at    int64
	reply chan workResult
}

type workResult struct {
	results []SubmitResult
	err     error
}

// handle owns one session: a bounded intake queue feeding a single
// worker goroutine that applies operations, group-commits them to the
// WAL, and snapshots periodically. The worker is the only writer of the
// session state; read endpoints take mu for point-in-time views.
type handle struct {
	name string
	dir  string
	opt  StoreOptions

	// sendMu guards closed/intake against a concurrent close: a send on
	// a closed channel panics, so senders hold the read lock.
	sendMu sync.RWMutex
	closed bool
	intake chan *work
	done   chan struct{}

	mu        sync.Mutex
	sess      *Session
	wal       *WAL
	auditF    *os.File
	audit     *telemetry.JSONL
	sinceSnap int
	// broken records an unrecoverable failure (disk reload failed); the
	// session refuses everything until restart.
	broken error
	// finErr is the finalization outcome, valid once done is closed.
	finErr error
}

// openHandle recovers the session from its directory and starts its
// worker.
func openHandle(name, dir string, opt StoreOptions) (*handle, error) {
	h := &handle{
		name:   name,
		dir:    dir,
		opt:    opt,
		intake: make(chan *work, opt.IntakeDepth),
		done:   make(chan struct{}),
	}
	if opt.Audit {
		f, err := os.OpenFile(filepath.Join(dir, auditFile), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("serve: audit log: %w", err)
		}
		h.auditF = f
		h.audit = telemetry.NewJSONL(f)
	}
	sess, wal, err := loadSession(name, dir, h.audit)
	if err != nil {
		if h.auditF != nil {
			cerr := h.auditF.Close()
			_ = cerr // the load failure is the actionable error
		}
		return nil, err
	}
	h.sess, h.wal = sess, wal
	go h.worker()
	return h, nil
}

// loadSession rebuilds a session from its directory: config, then
// snapshot (if any), then WAL replay of the suffix past the snapshot.
// audit is the concrete recorder, not the Recorder interface, so a nil
// pointer stays nil-comparable (a typed nil wrapped in the interface
// would pass the nil checks and then be invoked).
func loadSession(name, dir string, audit *telemetry.JSONL) (*Session, *WAL, error) {
	data, err := os.ReadFile(filepath.Join(dir, configFile))
	if err != nil {
		return nil, nil, fmt.Errorf("serve: session %s: reading config: %w", name, err)
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, nil, fmt.Errorf("serve: session %s: config: %w", name, err)
	}
	snap, err := readSnapshot(dir)
	if err != nil {
		return nil, nil, err
	}
	wal, recs, err := OpenWAL(filepath.Join(dir, walFile))
	if err != nil {
		return nil, nil, err
	}
	var sess *Session
	var from uint64
	if snap != nil {
		sess, err = RestoreSession(snap)
		if err != nil {
			cerr := wal.Close()
			_ = cerr // the restore failure is the actionable error
			return nil, nil, err
		}
		from = snap.WALSeq
		if from > wal.LastSeq() {
			cerr := wal.Close()
			_ = cerr // the gap is the actionable error
			return nil, nil, fmt.Errorf("serve: session %s: snapshot is at seq %d but wal ends at %d", name, from, wal.LastSeq())
		}
	} else {
		sess, err = NewSession(name, cfg)
		if err != nil {
			cerr := wal.Close()
			_ = cerr // the construction failure is the actionable error
			return nil, nil, err
		}
	}
	if audit != nil {
		sess.SetAudit(audit)
	}
	for _, rec := range recs {
		if rec.Seq <= from {
			continue
		}
		if err := sess.Apply(rec); err != nil {
			cerr := wal.Close()
			_ = cerr // the replay failure is the actionable error
			return nil, nil, fmt.Errorf("serve: session %s: replaying wal: %w", name, err)
		}
	}
	return sess, wal, nil
}

// do enqueues a mutation and waits for its outcome.
func (h *handle) do(ctx context.Context, w *work) (workResult, error) {
	w.reply = make(chan workResult, 1)
	h.sendMu.RLock()
	if h.closed {
		h.sendMu.RUnlock()
		return workResult{}, ErrDraining
	}
	select {
	case h.intake <- w:
		h.sendMu.RUnlock()
	default:
		h.sendMu.RUnlock()
		return workResult{}, ErrBusy
	}
	// The reply always comes: workers answer every dequeued work, and
	// drain commits the queue before exiting. Waiting on ctx here would
	// abandon the reply, not cancel the work — cancellation is threaded
	// into the apply itself via the session's interrupt hook.
	res := <-w.reply
	return res, res.err
}

func (h *handle) closeIntake() {
	h.sendMu.Lock()
	defer h.sendMu.Unlock()
	if !h.closed {
		h.closed = true
		close(h.intake)
	}
}

func (h *handle) finalErr() error {
	<-h.done
	return h.finErr
}

func (h *handle) info() (SessionInfo, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.broken != nil {
		return SessionInfo{}, h.broken
	}
	p, r := h.sess.Counts()
	return SessionInfo{
		Name:        h.name,
		Config:      h.sess.ConfigValue(),
		Clock:       h.sess.Clock(),
		Pending:     p,
		Running:     r,
		Agg:         h.sess.Agg(),
		WALSeq:      h.wal.LastSeq(),
		Fingerprint: fmt.Sprintf("%016x", h.sess.Fingerprint()),
	}, nil
}

func (h *handle) clockNow() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sess.Clock()
}

func (h *handle) walSeqNow() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.wal.LastSeq()
}

// worker is the session's single writer: it drains the intake queue in
// batches and commits each batch under one WAL fsync.
func (h *handle) worker() {
	defer close(h.done)
	for {
		w, ok := <-h.intake
		if !ok {
			h.finErr = h.finalize()
			return
		}
		batch := []*work{w}
		for len(batch) < h.opt.BatchMax {
			w2, ok2, more := tryRecv(h.intake)
			if !ok2 {
				if !more {
					h.commit(batch)
					h.finErr = h.finalize()
					return
				}
				break
			}
			batch = append(batch, w2)
		}
		h.commit(batch)
	}
}

// tryRecv is a non-blocking receive: (value, received, channelStillOpen).
func tryRecv(ch chan *work) (*work, bool, bool) {
	select {
	case w, ok := <-ch:
		if !ok {
			return nil, false, false
		}
		return w, true, true
	default:
		return nil, false, true
	}
}

// commit applies a batch to the session, appends the resulting records
// under a single fsync, and only then acknowledges — the WAL therefore
// holds exactly the operations clients were (or are about to be) acked.
// A failure mid-apply (panic, interrupt, invariant breach) poisons the
// in-memory state; commit heals it by reloading from disk, which
// excludes every unlogged operation, and fails the whole batch so no
// client confuses a rolled-back op for a committed one.
func (h *handle) commit(batch []*work) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.broken != nil {
		for _, w := range batch {
			w.reply <- workResult{err: h.broken}
		}
		return
	}
	var (
		recs    []Record
		applied []*work
		results []workResult
	)
	for i, w := range batch {
		if err := w.ctx.Err(); err != nil {
			// Cancelled while queued: drop before touching state — no WAL
			// growth, no replay cost.
			w.reply <- workResult{err: fmt.Errorf("serve: request abandoned before apply: %w", err)}
			continue
		}
		res, rec, poison := h.applyOne(w)
		if poison != nil {
			h.recoverLocked(poison)
			// %w preserves the cause's sentinels (ErrInterrupted, deadline)
			// so the HTTP layer maps a timed-out apply to 504, not 500.
			failErr := fmt.Errorf("serve: session reloaded after failed apply (%w): operation rolled back, safe to retry", poison)
			for _, aw := range applied {
				aw.reply <- workResult{err: failErr}
			}
			w.reply <- workResult{err: failErr}
			for _, rest := range batch[i+1:] {
				rest.reply <- workResult{err: failErr}
			}
			return
		}
		if rec == nil {
			// Clean rejection: no state change, answer immediately.
			w.reply <- res
			continue
		}
		recs = append(recs, *rec)
		applied = append(applied, w)
		results = append(results, res)
	}
	if len(recs) == 0 {
		return
	}
	if err := h.wal.Append(recs); err != nil {
		// Unknown durability: reload from disk (OpenWAL truncates any torn
		// tail) and report the outcome as unknown.
		h.recoverLocked(err)
		failErr := fmt.Errorf("serve: wal append failed, outcome unknown after reload: %w", err)
		for _, w := range applied {
			w.reply <- workResult{err: failErr}
		}
		return
	}
	for i, w := range applied {
		w.reply <- results[i]
	}
	h.sinceSnap += len(recs)
	if h.sinceSnap >= h.opt.SnapshotEvery {
		h.snapshotLocked()
	}
}

// applyOne runs one operation against the session with the request's
// cancellation threaded into the scheduler's pass loops. Returns the
// client-visible result, the WAL record to commit (nil for clean
// rejections), and a non-nil poison error when the in-memory state can
// no longer be trusted.
func (h *handle) applyOne(w *work) (res workResult, rec *Record, poison error) {
	defer func() {
		if r := recover(); r != nil {
			poison = fmt.Errorf("panic in apply: %v", r)
			res = workResult{err: poison}
		}
	}()
	ctx := w.ctx
	h.sess.SetInterrupt(func() bool { return ctx.Err() != nil })
	defer h.sess.SetInterrupt(nil)
	switch w.op {
	case opSubmit:
		rs, err := h.sess.Submit(w.specs)
		if err != nil {
			if errors.Is(err, ErrRejected) {
				return workResult{err: err}, nil, nil
			}
			return workResult{err: err}, nil, err
		}
		return workResult{results: rs}, &Record{Op: opSubmit, At: h.sess.Clock(), Jobs: w.specs}, nil
	case opAdvance:
		if err := h.sess.Advance(w.at); err != nil {
			if errors.Is(err, ErrRejected) {
				return workResult{err: err}, nil, nil
			}
			return workResult{err: err}, nil, err
		}
		return workResult{}, &Record{Op: opAdvance, At: w.at}, nil
	default:
		return workResult{err: fmt.Errorf("serve: unknown op %q", w.op)}, nil, nil
	}
}

// recoverLocked heals a poisoned in-memory session by reloading from
// disk — the WAL holds exactly the committed operations, so the reload
// excludes whatever just failed. Requires h.mu.
func (h *handle) recoverLocked(cause error) {
	h.opt.logf("session %s: reloading after: %v", h.name, cause)
	if err := h.wal.Close(); err != nil {
		h.opt.logf("session %s: closing wal before reload: %v", h.name, err)
	}
	sess, wal, err := loadSession(h.name, h.dir, h.audit)
	if err != nil {
		// Disk state unreadable: the session is out of service until a
		// restart (or operator repair); refusing loudly beats serving a
		// state that diverged from what clients were acked.
		h.broken = fmt.Errorf("serve: session %s unavailable after failed reload: %w", h.name, err)
		h.opt.logf("%v", h.broken)
		return
	}
	h.sess, h.wal = sess, wal
	h.sinceSnap = 0
}

// snapshotLocked writes a snapshot at the current WAL position. Failure
// is non-fatal — the WAL alone still recovers — but logged loudly.
// Requires h.mu.
func (h *handle) snapshotLocked() {
	if h.audit != nil {
		// The audit trace rides the snapshot cadence to disk; its loss
		// window is bounded without paying an fsync per event.
		if err := h.audit.Flush(); err != nil {
			h.opt.logf("session %s: audit flush: %v", h.name, err)
		}
	}
	snap := h.sess.Snapshot(h.wal.LastSeq())
	if err := writeSnapshot(h.dir, snap); err != nil {
		h.opt.logf("session %s: snapshot: %v", h.name, err)
		return
	}
	h.sinceSnap = 0
}

// finalize runs at worker exit: final snapshot, flush and close the
// audit trail, close the WAL.
func (h *handle) finalize() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	var firstErr error
	if h.broken == nil && h.sinceSnap > 0 {
		snap := h.sess.Snapshot(h.wal.LastSeq())
		if err := writeSnapshot(h.dir, snap); err != nil {
			firstErr = err
		} else {
			h.sinceSnap = 0
		}
	}
	if h.audit != nil {
		if err := h.audit.Flush(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := h.auditF.Sync(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := h.auditF.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := h.wal.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
