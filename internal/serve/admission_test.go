package serve

import (
	"fmt"
	"testing"
	"time"
)

// fakeClock is an injectable deterministic clock for admission tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time       { return c.t }
func (c *fakeClock) tick(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock            { return &fakeClock{t: time.Unix(1000, 0)} }

func TestBucketsBurstThenRefill(t *testing.T) {
	clk := newFakeClock()
	b := NewBuckets(10, 20, clk.now)

	// The full burst is admitted instantly.
	if ok, _ := b.AllowN("u", 20); !ok {
		t.Fatal("burst refused")
	}
	// Then the bucket is dry: refusal quotes the accrual wait.
	ok, wait := b.AllowN("u", 5)
	if ok {
		t.Fatal("over-burst admitted")
	}
	if wait != 500*time.Millisecond {
		t.Fatalf("retry-after %v, want 500ms (5 tokens at 10/s)", wait)
	}
	// A refusal spends nothing: the same request succeeds exactly after
	// the quoted wait.
	clk.tick(wait)
	if ok, _ := b.AllowN("u", 5); !ok {
		t.Fatal("admission after quoted wait refused")
	}
	// Tokens cap at the burst, not beyond.
	clk.tick(time.Hour)
	if ok, _ := b.AllowN("u", 20); !ok {
		t.Fatal("refilled burst refused")
	}
	if ok, _ := b.AllowN("u", 1); ok {
		t.Fatal("bucket exceeded its burst after a long idle")
	}
}

func TestBucketsPerUserIsolation(t *testing.T) {
	clk := newFakeClock()
	b := NewBuckets(1, 1, clk.now)
	if ok, _ := b.AllowN("heavy", 1); !ok {
		t.Fatal("first request refused")
	}
	if ok, _ := b.AllowN("heavy", 1); ok {
		t.Fatal("heavy user not limited")
	}
	// Another user's bucket is untouched by heavy's consumption.
	if ok, _ := b.AllowN("light", 1); !ok {
		t.Fatal("light user starved by heavy user")
	}
}

// TestBucketsOverBurstRequest: a batch larger than the burst can never
// succeed; the quote is the full-bucket wait so the client learns to
// split rather than waiting forever.
func TestBucketsOverBurstRequest(t *testing.T) {
	clk := newFakeClock()
	b := NewBuckets(10, 20, clk.now)
	ok, wait := b.AllowN("u", 100)
	if ok {
		t.Fatal("over-burst batch admitted")
	}
	if wait != 0 {
		t.Fatalf("full bucket should quote 0 wait (the batch must be split), got %v", wait)
	}
}

// TestBucketsMaxBatch: MaxBatch is the split threshold callers refuse
// above (ErrBatchTooLarge) instead of letting AllowN 429 forever.
func TestBucketsMaxBatch(t *testing.T) {
	if got := NewBuckets(10, 20, nil).MaxBatch(); got != 20 {
		t.Fatalf("MaxBatch = %d, want 20", got)
	}
	if got := NewBuckets(0, 0, nil).MaxBatch(); got != 0 {
		t.Fatalf("disabled MaxBatch = %d, want 0 (unlimited)", got)
	}
	var b *Buckets
	if got := b.MaxBatch(); got != 0 {
		t.Fatalf("nil MaxBatch = %d, want 0 (unlimited)", got)
	}
}

func TestBucketsDisabledAndNil(t *testing.T) {
	if ok, _ := NewBuckets(0, 0, nil).AllowN("u", 1<<30); !ok {
		t.Fatal("rate 0 must admit everything")
	}
	var b *Buckets
	if ok, _ := b.AllowN("u", 1); !ok {
		t.Fatal("nil buckets must admit everything")
	}
}

// TestBucketsBoundedUsers: cycling user names cannot grow the map
// without bound — full (idle) buckets are swept.
func TestBucketsBoundedUsers(t *testing.T) {
	clk := newFakeClock()
	b := NewBuckets(10, 20, clk.now)
	for i := 0; i < 3*maxUsers; i++ {
		// Spend nothing (1 token then idle-refill via tick) so every
		// bucket is sweepable by the time the map fills.
		if ok, _ := b.AllowN(fmt.Sprintf("u%d", i), 1); !ok {
			t.Fatalf("user %d refused", i)
		}
		clk.tick(time.Second)
	}
	b.mu.Lock()
	n := len(b.users)
	b.mu.Unlock()
	if n > maxUsers {
		t.Fatalf("user map grew to %d, bound is %d", n, maxUsers)
	}
}

// TestBucketsHardCapUnderFlood: the adversarial case — a flood of
// unique names that drain their buckets with the clock frozen, so the
// refill sweep can never free anything. The map must still respect the
// hard cap (arbitrary O(1) eviction), and the gated sweep must not
// rescan the whole map per insert.
func TestBucketsHardCapUnderFlood(t *testing.T) {
	clk := newFakeClock()
	b := NewBuckets(10, 20, clk.now)
	for i := 0; i < maxUsers+1000; i++ {
		if ok, _ := b.AllowN(fmt.Sprintf("u%d", i), 20); !ok {
			t.Fatalf("user %d refused its first burst", i)
		}
	}
	b.mu.Lock()
	n := len(b.users)
	swept := b.lastSweep
	b.mu.Unlock()
	if n > maxUsers {
		t.Fatalf("user map grew to %d under flood, bound is %d", n, maxUsers)
	}
	// The sweep ran once when the cap was first hit and then stayed
	// gated (no token could have accrued on a frozen clock).
	if swept != clk.t {
		t.Fatalf("lastSweep = %v, want %v", swept, clk.t)
	}
	// A returning user still gets a fresh bucket after eviction made room.
	if ok, _ := b.AllowN("late", 20); !ok {
		t.Fatal("new user refused while at the cap")
	}
}
