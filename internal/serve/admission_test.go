package serve

import (
	"fmt"
	"testing"
	"time"
)

// fakeClock is an injectable deterministic clock for admission tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time       { return c.t }
func (c *fakeClock) tick(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock            { return &fakeClock{t: time.Unix(1000, 0)} }

func TestBucketsBurstThenRefill(t *testing.T) {
	clk := newFakeClock()
	b := NewBuckets(10, 20, clk.now)

	// The full burst is admitted instantly.
	if ok, _ := b.AllowN("u", 20); !ok {
		t.Fatal("burst refused")
	}
	// Then the bucket is dry: refusal quotes the accrual wait.
	ok, wait := b.AllowN("u", 5)
	if ok {
		t.Fatal("over-burst admitted")
	}
	if wait != 500*time.Millisecond {
		t.Fatalf("retry-after %v, want 500ms (5 tokens at 10/s)", wait)
	}
	// A refusal spends nothing: the same request succeeds exactly after
	// the quoted wait.
	clk.tick(wait)
	if ok, _ := b.AllowN("u", 5); !ok {
		t.Fatal("admission after quoted wait refused")
	}
	// Tokens cap at the burst, not beyond.
	clk.tick(time.Hour)
	if ok, _ := b.AllowN("u", 20); !ok {
		t.Fatal("refilled burst refused")
	}
	if ok, _ := b.AllowN("u", 1); ok {
		t.Fatal("bucket exceeded its burst after a long idle")
	}
}

func TestBucketsPerUserIsolation(t *testing.T) {
	clk := newFakeClock()
	b := NewBuckets(1, 1, clk.now)
	if ok, _ := b.AllowN("heavy", 1); !ok {
		t.Fatal("first request refused")
	}
	if ok, _ := b.AllowN("heavy", 1); ok {
		t.Fatal("heavy user not limited")
	}
	// Another user's bucket is untouched by heavy's consumption.
	if ok, _ := b.AllowN("light", 1); !ok {
		t.Fatal("light user starved by heavy user")
	}
}

// TestBucketsOverBurstRequest: a batch larger than the burst can never
// succeed; the quote is the full-bucket wait so the client learns to
// split rather than waiting forever.
func TestBucketsOverBurstRequest(t *testing.T) {
	clk := newFakeClock()
	b := NewBuckets(10, 20, clk.now)
	ok, wait := b.AllowN("u", 100)
	if ok {
		t.Fatal("over-burst batch admitted")
	}
	if wait != 0 {
		t.Fatalf("full bucket should quote 0 wait (the batch must be split), got %v", wait)
	}
}

func TestBucketsDisabledAndNil(t *testing.T) {
	if ok, _ := NewBuckets(0, 0, nil).AllowN("u", 1<<30); !ok {
		t.Fatal("rate 0 must admit everything")
	}
	var b *Buckets
	if ok, _ := b.AllowN("u", 1); !ok {
		t.Fatal("nil buckets must admit everything")
	}
}

// TestBucketsBoundedUsers: cycling user names cannot grow the map
// without bound — full (idle) buckets are swept.
func TestBucketsBoundedUsers(t *testing.T) {
	clk := newFakeClock()
	b := NewBuckets(10, 20, clk.now)
	for i := 0; i < 3*maxUsers; i++ {
		// Spend nothing (1 token then idle-refill via tick) so every
		// bucket is sweepable by the time the map fills.
		if ok, _ := b.AllowN(fmt.Sprintf("u%d", i), 1); !ok {
			t.Fatalf("user %d refused", i)
		}
		clk.tick(time.Second)
	}
	b.mu.Lock()
	n := len(b.users)
	b.mu.Unlock()
	if n > maxUsers {
		t.Fatalf("user map grew to %d, bound is %d", n, maxUsers)
	}
}
