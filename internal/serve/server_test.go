package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, sopt StoreOptions, opt ServerOptions) (*Server, *Store) {
	t.Helper()
	store, err := OpenStore(t.TempDir(), sopt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := store.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return NewServer(store, opt), store
}

func doJSON(t *testing.T, srv http.Handler, method, path, user string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	if user != "" {
		req.Header.Set("X-User", user)
	}
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	return w
}

func TestServerEndToEnd(t *testing.T) {
	srv, _ := newTestServer(t, StoreOptions{}, ServerOptions{})

	if w := doJSON(t, srv, "GET", "/healthz", "", nil); w.Code != 200 {
		t.Fatalf("healthz: %d", w.Code)
	}
	w := doJSON(t, srv, "POST", "/v1/sessions", "", createRequest{Name: "m1", Config: Config{Nodes: 64}})
	if w.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", w.Code, w.Body)
	}
	// Duplicate name conflicts.
	if w := doJSON(t, srv, "POST", "/v1/sessions", "", createRequest{Name: "m1", Config: Config{Nodes: 64}}); w.Code != http.StatusConflict {
		t.Fatalf("duplicate create: %d", w.Code)
	}
	// Invalid config is a 400.
	if w := doJSON(t, srv, "POST", "/v1/sessions", "", createRequest{Name: "bad", Config: Config{Nodes: -1}}); w.Code != http.StatusBadRequest {
		t.Fatalf("invalid create: %d", w.Code)
	}
	// SMART without allow_unstable is refused, with the reason named.
	w = doJSON(t, srv, "POST", "/v1/sessions", "", createRequest{Name: "sm", Config: Config{Nodes: 8, Order: "SMART-FFIA"}})
	if w.Code != http.StatusBadRequest || !strings.Contains(w.Body.String(), "allow_unstable") {
		t.Fatalf("unstable order: %d %s", w.Code, w.Body)
	}

	w = doJSON(t, srv, "POST", "/v1/sessions/m1/jobs", "alice", submitRequest{Jobs: []JobSpec{
		{Name: "a", Nodes: 64, Estimate: 100},
		{Name: "b", Nodes: 8, Estimate: 50},
	}})
	if w.Code != http.StatusOK {
		t.Fatalf("submit: %d %s", w.Code, w.Body)
	}
	var sr submitResponse
	if err := json.Unmarshal(w.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Results) != 2 || sr.Results[0].ID != 1 {
		t.Fatalf("submit results: %+v", sr)
	}

	if w := doJSON(t, srv, "POST", "/v1/sessions/m1/advance", "", advanceRequest{To: 100}); w.Code != http.StatusOK {
		t.Fatalf("advance: %d %s", w.Code, w.Body)
	}
	w = doJSON(t, srv, "GET", "/v1/sessions/m1/jobs/1", "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("job get: %d", w.Code)
	}
	var ji JobInfo
	if err := json.Unmarshal(w.Body.Bytes(), &ji); err != nil {
		t.Fatal(err)
	}
	if ji.Status != StatusDone || ji.End != 100 {
		t.Fatalf("job 1: %+v", ji)
	}
	if w := doJSON(t, srv, "GET", "/v1/sessions/m1/jobs/99", "", nil); w.Code != http.StatusNotFound {
		t.Fatalf("unknown job: %d", w.Code)
	}
	if w := doJSON(t, srv, "GET", "/v1/sessions/nope", "", nil); w.Code != http.StatusNotFound {
		t.Fatalf("unknown session: %d", w.Code)
	}

	// Submissions to a bad body are 400, not 500.
	req := httptest.NewRequest("POST", "/v1/sessions/m1/jobs", strings.NewReader("{not json"))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad body: %d", rec.Code)
	}
}

// TestServerRateLimit429: admission refusals are 429 with a concrete
// Retry-After, and waiting that long succeeds.
func TestServerRateLimit429(t *testing.T) {
	srv, _ := newTestServer(t, StoreOptions{}, ServerOptions{Rate: 100, Burst: 10})
	// Deterministic clock for the bucket.
	clk := newFakeClock()
	srv.buckets = NewBuckets(100, 10, clk.now)

	if w := doJSON(t, srv, "POST", "/v1/sessions", "", createRequest{Name: "m1", Config: Config{Nodes: 64}}); w.Code != http.StatusCreated {
		t.Fatalf("create: %d", w.Code)
	}
	job := submitRequest{Jobs: []JobSpec{{Nodes: 1, Estimate: 60}}}
	for i := 0; i < 10; i++ {
		if w := doJSON(t, srv, "POST", "/v1/sessions/m1/jobs", "alice", job); w.Code != http.StatusOK {
			t.Fatalf("burst submit %d: %d %s", i, w.Code, w.Body)
		}
	}
	w := doJSON(t, srv, "POST", "/v1/sessions/m1/jobs", "alice", job)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-burst: %d, want 429", w.Code)
	}
	if ra := w.Header().Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want 1 (sub-second waits round up)", ra)
	}
	// Another user is unaffected.
	if w := doJSON(t, srv, "POST", "/v1/sessions/m1/jobs", "bob", job); w.Code != http.StatusOK {
		t.Fatalf("bob: %d", w.Code)
	}
	// After the quoted wait, alice is admitted again.
	clk.tick(time.Second)
	if w := doJSON(t, srv, "POST", "/v1/sessions/m1/jobs", "alice", job); w.Code != http.StatusOK {
		t.Fatalf("alice after backoff: %d", w.Code)
	}
	var st ServerStats
	if w := doJSON(t, srv, "GET", "/v1/stats", "", nil); w.Code != 200 {
		t.Fatal("stats")
	} else if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.RateLimited != 1 || st.Admitted != 12 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestServerOverBurstBatch413: a single batch larger than the per-user
// burst can never be admitted at any rate, so it is refused with a
// terminal 413 (split the batch) instead of a retriable 429 — a client
// honoring Retry-After would otherwise resubmit the same batch forever.
func TestServerOverBurstBatch413(t *testing.T) {
	srv, _ := newTestServer(t, StoreOptions{}, ServerOptions{Rate: 100, Burst: 2})
	if w := doJSON(t, srv, "POST", "/v1/sessions", "", createRequest{Name: "m1", Config: Config{Nodes: 64}}); w.Code != http.StatusCreated {
		t.Fatalf("create: %d", w.Code)
	}
	big := submitRequest{Jobs: []JobSpec{
		{Nodes: 1, Estimate: 60}, {Nodes: 1, Estimate: 60}, {Nodes: 1, Estimate: 60},
	}}
	w := doJSON(t, srv, "POST", "/v1/sessions/m1/jobs", "alice", big)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-burst batch: %d %s, want 413", w.Code, w.Body)
	}
	if ra := w.Header().Get("Retry-After"); ra != "" {
		t.Fatalf("413 carries Retry-After %q; it must not invite a retry of the same batch", ra)
	}
	if !strings.Contains(w.Body.String(), "split") {
		t.Fatalf("413 body does not tell the client to split: %s", w.Body)
	}
	// The refusal spent no tokens: a burst-sized batch still goes through.
	ok := submitRequest{Jobs: []JobSpec{{Nodes: 1, Estimate: 60}, {Nodes: 1, Estimate: 60}}}
	if w := doJSON(t, srv, "POST", "/v1/sessions/m1/jobs", "alice", ok); w.Code != http.StatusOK {
		t.Fatalf("burst-sized batch after 413: %d %s", w.Code, w.Body)
	}
}

// TestServerShedsWhenIntakeFull: with the worker wedged and the bounded
// queue full, submissions get an immediate 503 + Retry-After instead of
// queueing without bound.
func TestServerShedsWhenIntakeFull(t *testing.T) {
	srv, store := newTestServer(t, StoreOptions{IntakeDepth: 2, BatchMax: 1}, ServerOptions{})
	if w := doJSON(t, srv, "POST", "/v1/sessions", "", createRequest{Name: "m1", Config: Config{Nodes: 64}}); w.Code != http.StatusCreated {
		t.Fatalf("create: %d", w.Code)
	}
	h, err := store.get("m1")
	if err != nil {
		t.Fatal(err)
	}
	// Wedge the worker: grab the session lock, feed it one work (BatchMax
	// 1, so it takes exactly that one and blocks in commit on the lock),
	// then fill the bounded queue behind it.
	h.mu.Lock()
	var pending []*work
	wedge := &work{ctx: context.Background(), op: opAdvance, at: 1, reply: make(chan workResult, 1)}
	h.intake <- wedge
	pending = append(pending, wedge)
	deadline := time.Now().Add(5 * time.Second)
	for len(h.intake) > 0 {
		if time.Now().After(deadline) {
			h.mu.Unlock()
			t.Fatal("worker never picked up the wedge work")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 2; i++ {
		w := &work{ctx: context.Background(), op: opAdvance, at: int64(10 + i), reply: make(chan workResult, 1)}
		h.intake <- w
		pending = append(pending, w)
	}
	// The HTTP path now sheds instantly (no blocking send).
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		done <- doJSON(t, srv, "POST", "/v1/sessions/m1/jobs", "u", submitRequest{Jobs: []JobSpec{{Nodes: 1, Estimate: 60}}})
	}()
	var w *httptest.ResponseRecorder
	select {
	case w = <-done:
	case <-time.After(5 * time.Second):
		h.mu.Unlock()
		t.Fatal("full intake blocked the request instead of shedding")
	}
	if w.Code != http.StatusServiceUnavailable {
		h.mu.Unlock()
		t.Fatalf("full intake: %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		h.mu.Unlock()
		t.Fatal("503 without Retry-After")
	}
	h.mu.Unlock()
	// Unwedged, the queued works drain and answer.
	for _, p := range pending {
		select {
		case <-p.reply:
		case <-time.After(5 * time.Second):
			t.Fatal("queued work never answered after unwedge")
		}
	}
}

// TestServerDrainRefusesNewWork: draining answers 503 on mutations and
// on health, while reads keep serving.
func TestServerDrainRefusesNewWork(t *testing.T) {
	srv, store := newTestServer(t, StoreOptions{}, ServerOptions{})
	if w := doJSON(t, srv, "POST", "/v1/sessions", "", createRequest{Name: "m1", Config: Config{Nodes: 8}}); w.Code != http.StatusCreated {
		t.Fatalf("create: %d", w.Code)
	}
	if w := doJSON(t, srv, "POST", "/v1/sessions/m1/jobs", "u", submitRequest{Jobs: []JobSpec{{Nodes: 1, Estimate: 60}}}); w.Code != http.StatusOK {
		t.Fatalf("submit: %d", w.Code)
	}
	store.StartDraining()
	if w := doJSON(t, srv, "POST", "/v1/sessions/m1/jobs", "u", submitRequest{Jobs: []JobSpec{{Nodes: 1, Estimate: 60}}}); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", w.Code)
	}
	if w := doJSON(t, srv, "POST", "/v1/sessions", "", createRequest{Name: "m2", Config: Config{Nodes: 8}}); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("create while draining: %d, want 503", w.Code)
	}
	if w := doJSON(t, srv, "GET", "/healthz", "", nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d, want 503", w.Code)
	}
	// Reads still work.
	if w := doJSON(t, srv, "GET", "/v1/sessions/m1", "", nil); w.Code != http.StatusOK {
		t.Fatalf("read while draining: %d", w.Code)
	}
	if w := doJSON(t, srv, "GET", "/v1/sessions/m1/jobs/1", "", nil); w.Code != http.StatusOK {
		t.Fatalf("job read while draining: %d", w.Code)
	}
}

// TestServerPanicContained: a handler panic answers 500 and the daemon
// keeps serving; the panic counter records it.
func TestServerPanicContained(t *testing.T) {
	srv, _ := newTestServer(t, StoreOptions{}, ServerOptions{})
	srv.mux.HandleFunc("GET /boom", func(http.ResponseWriter, *http.Request) { panic("kaboom") })
	if w := doJSON(t, srv, "GET", "/boom", "", nil); w.Code != http.StatusInternalServerError {
		t.Fatalf("panic: %d, want 500", w.Code)
	}
	if w := doJSON(t, srv, "GET", "/healthz", "", nil); w.Code != http.StatusOK {
		t.Fatalf("daemon down after handler panic: %d", w.Code)
	}
	if got := srv.panics.Load(); got != 1 {
		t.Fatalf("panic counter = %d", got)
	}
}

// TestServerRequestTimeout504: a request whose budget expires mid-apply
// is cancelled through the interrupt hook and answers 504; the session
// recovers and keeps serving.
func TestServerRequestTimeout504(t *testing.T) {
	srv, store := newTestServer(t, StoreOptions{}, ServerOptions{RequestTimeout: time.Nanosecond})
	// Create through the store directly (the server's timeout would kill
	// even the create's Info read).
	if err := store.Create("m1", Config{Nodes: 8}); err != nil {
		t.Fatal(err)
	}
	w := doJSON(t, srv, "POST", "/v1/sessions/m1/jobs", "u", submitRequest{Jobs: []JobSpec{{Nodes: 1, Estimate: 60}}})
	if w.Code != http.StatusGatewayTimeout && w.Code != http.StatusRequestTimeout {
		t.Fatalf("expired budget: %d %s, want 504/408", w.Code, w.Body)
	}
	// The daemon still serves with a sane budget: swap the timeout via a
	// fresh server over the same (recovered) store.
	srv2 := NewServer(store, ServerOptions{})
	if w := doJSON(t, srv2, "POST", "/v1/sessions/m1/jobs", "u", submitRequest{Jobs: []JobSpec{{Nodes: 1, Estimate: 60}}}); w.Code != http.StatusOK {
		t.Fatalf("submit after recovery: %d %s", w.Code, w.Body)
	}
	info, err := store.Info("m1")
	if err != nil {
		t.Fatal(err)
	}
	if info.Agg.Submitted != 1 {
		t.Fatalf("submitted = %d, want exactly the acked one", info.Agg.Submitted)
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int64
	}{{0, 1}, {time.Millisecond, 1}, {time.Second, 1}, {1500 * time.Millisecond, 2}, {3 * time.Second, 3}}
	for _, c := range cases {
		if got := retryAfterSeconds(c.d); got != c.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestSessionNameValidation(t *testing.T) {
	store, err := OpenStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := store.Drain(context.Background()); err != nil {
			t.Error(err)
		}
	}()
	for _, bad := range []string{"", ".", "..", "a/b", "a\\b", "../etc", strings.Repeat("x", 100), ".hidden"} {
		if err := store.Create(bad, Config{Nodes: 8}); err == nil {
			t.Errorf("name %q accepted", bad)
		}
	}
	if err := store.Create("ok-name_1.2", Config{Nodes: 8}); err != nil {
		t.Errorf("valid name refused: %v", err)
	}
}
