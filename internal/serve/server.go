package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// ServerOptions tune the HTTP layer; zero values take defaults.
type ServerOptions struct {
	// RequestTimeout bounds each mutating request end to end — queue
	// wait, scheduling passes, WAL fsync (default 10s). Expiry cancels
	// the in-flight work through the session's interrupt hook.
	RequestTimeout time.Duration
	// Rate and Burst configure per-user admission (tokens = jobs per
	// second); Rate <= 0 admits everything.
	Rate  float64
	Burst float64
	// Logf receives request-layer warnings; nil discards them.
	Logf func(format string, args ...any)
}

func (o ServerOptions) withDefaults() ServerOptions {
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 10 * time.Second
	}
	if o.Burst == 0 {
		o.Burst = 2 * o.Rate
	}
	return o
}

// ServerStats are the daemon's cumulative request counters, exposed at
// /v1/stats so the load generator can assert shedding is explicit
// (bounded 429/503, zero connection drops) rather than emergent.
type ServerStats struct {
	Requests    int64 `json:"requests"`
	Admitted    int64 `json:"admitted"`
	RateLimited int64 `json:"rate_limited"`
	Shed        int64 `json:"shed"`
	Rejected    int64 `json:"rejected"`
	Timeouts    int64 `json:"timeouts"`
	Panics      int64 `json:"panics"`
}

// Server is the HTTP front end over a Store.
type Server struct {
	store   *Store
	opt     ServerOptions
	buckets *Buckets
	mux     *http.ServeMux

	requests    atomic.Int64
	admitted    atomic.Int64
	rateLimited atomic.Int64
	shed        atomic.Int64
	rejected    atomic.Int64
	timeouts    atomic.Int64
	panics      atomic.Int64
}

// NewServer wires the API routes over the store.
func NewServer(store *Store, opt ServerOptions) *Server {
	opt = opt.withDefaults()
	s := &Server{
		store:   store,
		opt:     opt,
		buckets: NewBuckets(opt.Rate, opt.Burst, nil),
		mux:     http.NewServeMux(),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/sessions", s.handleList)
	s.mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	s.mux.HandleFunc("GET /v1/sessions/{name}", s.handleInfo)
	s.mux.HandleFunc("POST /v1/sessions/{name}/jobs", s.handleSubmit)
	s.mux.HandleFunc("POST /v1/sessions/{name}/advance", s.handleAdvance)
	s.mux.HandleFunc("GET /v1/sessions/{name}/jobs/{id}", s.handleJob)
	return s
}

// ServeHTTP implements http.Handler with the cross-cutting concerns:
// request counting, per-request timeout, and panic containment (one
// handler crash answers 500 without taking the daemon down).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	ctx, cancel := context.WithTimeout(r.Context(), s.opt.RequestTimeout)
	defer cancel()
	defer func() {
		if rec := recover(); rec != nil {
			s.panics.Add(1)
			s.logf("panic serving %s %s: %v", r.Method, r.URL.Path, rec)
			// Best-effort: if the handler already wrote, this is a no-op on
			// a hijacked/written connection and the client sees a truncated
			// response, which is still a visible failure.
			http.Error(w, "internal error", http.StatusInternalServerError)
		}
	}()
	s.mux.ServeHTTP(w, r.WithContext(ctx))
}

func (s *Server) logf(format string, args ...any) {
	if s.opt.Logf != nil {
		s.opt.Logf(format, args...)
	}
}

// writeJSON answers with a JSON body. A failed write means the client
// went away; the request-level counters already recorded the outcome.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	err := json.NewEncoder(w).Encode(v)
	_ = err // client disconnected mid-response; nothing actionable
}

type errorBody struct {
	Error string `json:"error"`
	// RetryAfter echoes the Retry-After header in seconds, when set.
	RetryAfter int64 `json:"retry_after,omitempty"`
}

// writeError maps a service error to its status code and backoff
// contract: 429/503 always carry Retry-After so well-behaved clients
// never need to guess.
func (s *Server) writeError(w http.ResponseWriter, err error, retryAfter time.Duration) {
	var (
		status int
		ra     int64
	)
	switch {
	case errors.Is(err, ErrRejected):
		status = http.StatusBadRequest
		s.rejected.Add(1)
	case errors.Is(err, ErrBatchTooLarge):
		// Deliberately no Retry-After: resubmitting the same batch can
		// never succeed, the client must split it.
		status = http.StatusRequestEntityTooLarge
		s.rejected.Add(1)
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrExists):
		status = http.StatusConflict
	case errors.Is(err, ErrRateLimited):
		status = http.StatusTooManyRequests
		ra = retryAfterSeconds(retryAfter)
		s.rateLimited.Add(1)
	case errors.Is(err, ErrBusy), errors.Is(err, ErrDraining):
		status = http.StatusServiceUnavailable
		ra = 1
		s.shed.Add(1)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, ErrInterrupted):
		status = http.StatusGatewayTimeout
		s.timeouts.Add(1)
	case errors.Is(err, context.Canceled):
		// Client went away; 499-style. No standard code — use 408.
		status = http.StatusRequestTimeout
	default:
		status = http.StatusInternalServerError
	}
	if ra > 0 {
		w.Header().Set("Retry-After", strconv.FormatInt(ra, 10))
	}
	writeJSON(w, status, errorBody{Error: err.Error(), RetryAfter: ra})
}

// retryAfterSeconds rounds a backoff up to whole seconds (minimum 1:
// Retry-After has one-second granularity and 0 reads as "immediately").
func retryAfterSeconds(d time.Duration) int64 {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.store.isDraining() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, ServerStats{
		Requests:    s.requests.Load(),
		Admitted:    s.admitted.Load(),
		RateLimited: s.rateLimited.Load(),
		Shed:        s.shed.Load(),
		Rejected:    s.rejected.Load(),
		Timeouts:    s.timeouts.Load(),
		Panics:      s.panics.Load(),
	})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"sessions": s.store.Names()})
}

type createRequest struct {
	Name   string `json:"name"`
	Config Config `json:"config"`
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req createRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeError(w, err, 0)
		return
	}
	if err := s.store.Create(req.Name, req.Config); err != nil {
		s.writeError(w, err, 0)
		return
	}
	info, err := s.store.Info(req.Name)
	if err != nil {
		s.writeError(w, err, 0)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	info, err := s.store.Info(r.PathValue("name"))
	if err != nil {
		s.writeError(w, err, 0)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

type submitRequest struct {
	Jobs []JobSpec `json:"jobs"`
}

type submitResponse struct {
	Results []SubmitResult `json:"results"`
	Clock   int64          `json:"clock"`
}

// handleSubmit is the admission-controlled write path: rate limit
// first (cheapest refusal), then the bounded intake queue, then the
// durable commit.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeError(w, err, 0)
		return
	}
	if len(req.Jobs) == 0 {
		s.writeError(w, rejectf("serve: empty submission"), 0)
		return
	}
	user := r.Header.Get("X-User")
	if user == "" {
		user = "anonymous"
	}
	if max := s.buckets.MaxBatch(); max > 0 && len(req.Jobs) > max {
		// A batch over the burst is unsatisfiable at any rate — a 429
		// would have a well-behaved Retry-After-honoring client loop
		// forever on the same refusal.
		s.writeError(w, fmt.Errorf("%w: batch of %d jobs exceeds the per-user burst of %d, split the submission", ErrBatchTooLarge, len(req.Jobs), max), 0)
		return
	}
	if ok, wait := s.buckets.AllowN(user, len(req.Jobs)); !ok {
		s.writeError(w, fmt.Errorf("%w: user %s exceeds %g jobs/s", ErrRateLimited, user, s.opt.Rate), wait)
		return
	}
	results, err := s.store.Submit(r.Context(), r.PathValue("name"), req.Jobs)
	if err != nil {
		s.writeError(w, err, 0)
		return
	}
	s.admitted.Add(1)
	info, ierr := s.store.Info(r.PathValue("name"))
	if ierr != nil {
		// The commit succeeded; report it even if the clock read raced a
		// recovery.
		writeJSON(w, http.StatusOK, submitResponse{Results: results})
		return
	}
	writeJSON(w, http.StatusOK, submitResponse{Results: results, Clock: info.Clock})
}

type advanceRequest struct {
	To int64 `json:"to"`
}

func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	var req advanceRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeError(w, err, 0)
		return
	}
	name := r.PathValue("name")
	if err := s.store.Advance(r.Context(), name, req.To); err != nil {
		s.writeError(w, err, 0)
		return
	}
	info, err := s.store.Info(name)
	if err != nil {
		s.writeError(w, err, 0)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		s.writeError(w, rejectf("serve: bad job id %q", r.PathValue("id")), 0)
		return
	}
	ji, err := s.store.Job(r.PathValue("name"), id)
	if err != nil {
		s.writeError(w, err, 0)
		return
	}
	writeJSON(w, http.StatusOK, ji)
}

// decodeBody parses a JSON request body, bounding it so a misbehaving
// client cannot balloon memory (1 MiB is thousands of job specs).
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return rejectf("serve: bad request body: %v", err)
	}
	return nil
}
