package serve

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), walFile)
	w, recs, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || w.LastSeq() != 0 {
		t.Fatalf("fresh wal not empty: %d recs, seq %d", len(recs), w.LastSeq())
	}
	batch1 := []Record{
		{Op: opSubmit, At: 0, Jobs: []JobSpec{{Nodes: 4, Estimate: 100}}},
		{Op: opAdvance, At: 50},
	}
	if err := w.Append(batch1); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]Record{{Op: opAdvance, At: 99}}); err != nil {
		t.Fatal(err)
	}
	if w.LastSeq() != 3 {
		t.Fatalf("LastSeq = %d, want 3", w.LastSeq())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, recs, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer closeWAL(t, w2)
	if len(recs) != 3 {
		t.Fatalf("reopened wal has %d records, want 3", len(recs))
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i)+1 {
			t.Fatalf("record %d has seq %d", i, rec.Seq)
		}
	}
	if recs[0].Op != opSubmit || len(recs[0].Jobs) != 1 || recs[0].Jobs[0].Nodes != 4 {
		t.Fatalf("submit record did not round-trip: %+v", recs[0])
	}
	if recs[2].Op != opAdvance || recs[2].At != 99 {
		t.Fatalf("advance record did not round-trip: %+v", recs[2])
	}
}

// TestWALTornTailRecovered pins the crash contract: a partial final
// line (kill -9 mid-append) is dropped, truncated off the file, and
// appending resumes on a clean boundary with the right sequence.
func TestWALTornTailRecovered(t *testing.T) {
	path := filepath.Join(t.TempDir(), walFile)
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]Record{{Op: opAdvance, At: 10}, {Op: opAdvance, At: 20}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for _, torn := range []string{
		`{"seq":3,"op":"adv`,        // cut mid-record
		`{"seq":3}`,                 // parsed but empty op (zero-filled tail)
		"\x00\x00\x00\x00",          // block of zeroes
		`{"seq":3,"op":"advance","`, // cut mid-key
		// Valid JSON torn exactly at the closing brace (no newline): never
		// acked, so it must be dropped — accepting it would glue the next
		// append onto the same line.
		`{"seq":3,"op":"advance","at":25}`,
	} {
		if err := os.WriteFile(path, append(append([]byte{}, clean...), torn...), 0o644); err != nil {
			t.Fatal(err)
		}
		w2, recs, err := OpenWAL(path)
		if err != nil {
			t.Fatalf("torn tail %q refused: %v", torn, err)
		}
		if len(recs) != 2 {
			t.Fatalf("torn tail %q: %d records, want 2", torn, len(recs))
		}
		if err := w2.Append([]Record{{Op: opAdvance, At: 30}}); err != nil {
			t.Fatal(err)
		}
		if err := w2.Close(); err != nil {
			t.Fatal(err)
		}
		_, recs, err = OpenWAL(path)
		if err != nil {
			t.Fatalf("after torn-tail truncate + append: %v", err)
		}
		if len(recs) != 3 || recs[2].Seq != 3 || recs[2].At != 30 {
			t.Fatalf("append after truncation wrong: %+v", recs)
		}
		if err := os.WriteFile(path, clean, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWALRefusesMidFileCorruption: a torn or garbled record that is NOT
// the final line means committed operations are missing; recovery must
// refuse rather than replay to a state clients were never acked.
func TestWALRefusesMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), walFile)
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]Record{{Op: opAdvance, At: 10}, {Op: opAdvance, At: 20}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	corrupt := "garbage\n" + lines[1]
	if err := os.WriteFile(path, []byte(corrupt), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenWAL(path); err == nil {
		t.Fatal("mid-file corruption accepted")
	}

	// A sequence gap is the same refusal: record 2 without record 1.
	if err := os.WriteFile(path, []byte(lines[1]), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenWAL(path); err == nil {
		t.Fatal("sequence gap accepted")
	}
}

func closeWAL(t *testing.T, w *WAL) {
	t.Helper()
	if err := w.Close(); err != nil {
		t.Errorf("wal close: %v", err)
	}
}
