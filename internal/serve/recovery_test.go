package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// randomSpecs draws a small submission batch.
func randomSpecs(r *rand.Rand, nodes int) []JobSpec {
	specs := make([]JobSpec, 1+r.Intn(3))
	for i := range specs {
		specs[i] = JobSpec{
			Name:     fmt.Sprintf("u%d", r.Intn(100)),
			User:     fmt.Sprintf("user%d", r.Intn(4)),
			Nodes:    1 + r.Intn(nodes),
			Estimate: int64(30 + r.Intn(500)),
		}
		if r.Intn(4) == 0 {
			specs[i].Runtime = specs[i].Estimate / 2
		}
		if r.Intn(5) == 0 {
			specs[i].Deadline = int64(r.Intn(3000))
		}
	}
	return specs
}

// TestRecoveryPropertyRandomOps is the crash-recovery property test: a
// random operation sequence applied through the durable store, with the
// store torn down and reopened at random points (and a snapshot cadence
// small enough that replay exercises snapshot+suffix), must track a
// plain in-memory session applying the same sequence — fingerprints
// equal at every reopen and at the end.
func TestRecoveryPropertyRandomOps(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		r := rand.New(rand.NewSource(seed))
		dir := t.TempDir()
		const nodes = 32
		opt := StoreOptions{SnapshotEvery: 5, IntakeDepth: 8, BatchMax: 4}

		ref, err := NewSession("prop", Config{Nodes: nodes, MaxPending: 50})
		if err != nil {
			t.Fatal(err)
		}
		store, err := OpenStore(dir, opt)
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Create("prop", Config{Nodes: nodes, MaxPending: 50}); err != nil {
			t.Fatal(err)
		}

		ctx := context.Background()
		clock := int64(0)
		for op := 0; op < 120; op++ {
			switch r.Intn(4) {
			case 0, 1:
				specs := randomSpecs(r, nodes)
				if _, err := store.Submit(ctx, "prop", specs); err != nil {
					t.Fatalf("seed %d op %d submit: %v", seed, op, err)
				}
				if _, err := ref.Submit(specs); err != nil {
					t.Fatalf("seed %d op %d ref submit: %v", seed, op, err)
				}
			case 2:
				clock += int64(r.Intn(200))
				if err := store.Advance(ctx, "prop", clock); err != nil {
					t.Fatalf("seed %d op %d advance: %v", seed, op, err)
				}
				if err := ref.Advance(clock); err != nil {
					t.Fatalf("seed %d op %d ref advance: %v", seed, op, err)
				}
			case 3:
				if r.Intn(3) != 0 {
					continue
				}
				// Tear the store down (graceful here; the torn-tail and
				// kill -9 paths get their own tests) and recover.
				if err := store.Drain(ctx); err != nil {
					t.Fatalf("seed %d op %d drain: %v", seed, op, err)
				}
				store, err = OpenStore(dir, opt)
				if err != nil {
					t.Fatalf("seed %d op %d reopen: %v", seed, op, err)
				}
				info, err := store.Info("prop")
				if err != nil {
					t.Fatal(err)
				}
				if want := fmt.Sprintf("%016x", ref.Fingerprint()); info.Fingerprint != want {
					t.Fatalf("seed %d op %d: recovered fingerprint %s, want %s", seed, op, info.Fingerprint, want)
				}
			}
		}
		info, err := store.Info("prop")
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("%016x", ref.Fingerprint()); info.Fingerprint != want {
			t.Fatalf("seed %d final: fingerprint %s, want %s", seed, info.Fingerprint, want)
		}
		if info.Agg != ref.Agg() {
			t.Fatalf("seed %d final aggregates: %+v vs %+v", seed, info.Agg, ref.Agg())
		}
		if err := store.Drain(ctx); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRecoveryTornWALTail simulates kill -9 mid-append: committed
// operations survive, the torn line is discarded, and the store keeps
// accepting work.
func TestRecoveryTornWALTail(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	store, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Create("s", Config{Nodes: 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Submit(ctx, "s", []JobSpec{{Nodes: 4, Estimate: 100}}); err != nil {
		t.Fatal(err)
	}
	if err := store.Advance(ctx, "s", 40); err != nil {
		t.Fatal(err)
	}
	pre, err := store.Info("s")
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	// Append half a record, as a crash mid-write would leave.
	walPath := filepath.Join(dir, "sessions", "s", walFile)
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":3,"op":"subm`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	store, err = OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatalf("torn tail must recover, got %v", err)
	}
	post, err := store.Info("s")
	if err != nil {
		t.Fatal(err)
	}
	if post.Fingerprint != pre.Fingerprint {
		t.Fatalf("recovered fingerprint %s != pre-crash %s", post.Fingerprint, pre.Fingerprint)
	}
	if post.WALSeq != 2 {
		t.Fatalf("wal seq %d after torn-tail recovery, want 2", post.WALSeq)
	}
	// And the truncated log accepts new commits on a clean boundary.
	if _, err := store.Submit(ctx, "s", []JobSpec{{Nodes: 2, Estimate: 50}}); err != nil {
		t.Fatal(err)
	}
	if err := store.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	store, err = OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if info, err := store.Info("s"); err != nil || info.WALSeq != 3 {
		t.Fatalf("after post-recovery commit: info=%+v err=%v", info, err)
	}
	if err := store.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// countdownCtx reports no error for the first n Err() calls, then a
// deadline — a request whose budget expires after the pre-apply check
// but during the apply itself.
type countdownCtx struct {
	context.Context
	n int
}

func (c *countdownCtx) Err() error {
	if c.n > 0 {
		c.n--
		return nil
	}
	return context.DeadlineExceeded
}

// TestRecoveryPoisonPreservesCause: an operation interrupted mid-apply
// poisons and reloads the session, but the reply must still carry the
// interrupt sentinel — the HTTP layer maps it to 504, not a generic
// 500 — and the session keeps serving afterwards.
func TestRecoveryPoisonPreservesCause(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Create("s", Config{Nodes: 8}); err != nil {
		t.Fatal(err)
	}
	// n=1: the commit loop's pre-apply Err() check passes, the interrupt
	// hook's first poll inside Advance fires.
	ctx := &countdownCtx{Context: context.Background(), n: 1}
	err = store.Advance(ctx, "s", 100)
	if err == nil {
		t.Fatal("mid-apply interrupt not surfaced")
	}
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("poisoned apply lost its cause: got %v, want errors.Is ErrInterrupted", err)
	}
	// The reload healed the session: the same advance now commits.
	if err := store.Advance(context.Background(), "s", 100); err != nil {
		t.Fatalf("advance after reload: %v", err)
	}
	if info, err := store.Info("s"); err != nil || info.Clock != 100 {
		t.Fatalf("after reload: info=%+v err=%v", info, err)
	}
	if err := store.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryTornSnapshotTemp simulates kill -9 mid-snapshot-write:
// the temp file is ignored and the WAL (plus any previously published
// snapshot) recovers the state.
func TestRecoveryTornSnapshotTemp(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	// SnapshotEvery 3 so a snapshot is published mid-sequence.
	store, err := OpenStore(dir, StoreOptions{SnapshotEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Create("s", Config{Nodes: 8}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := store.Submit(ctx, "s", []JobSpec{{Nodes: 1, Estimate: 60}}); err != nil {
			t.Fatal(err)
		}
	}
	pre, err := store.Info("s")
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	sdir := filepath.Join(dir, "sessions", "s")
	if _, err := os.Stat(filepath.Join(sdir, snapshotFile)); err != nil {
		t.Fatalf("expected a published snapshot: %v", err)
	}
	if err := os.WriteFile(filepath.Join(sdir, snapshotFile+".tmp"), []byte(`{"version":1,"na`), 0o644); err != nil {
		t.Fatal(err)
	}

	store, err = OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatalf("torn snapshot temp must recover: %v", err)
	}
	post, err := store.Info("s")
	if err != nil {
		t.Fatal(err)
	}
	if post.Fingerprint != pre.Fingerprint {
		t.Fatalf("recovered %s != pre-crash %s", post.Fingerprint, pre.Fingerprint)
	}
	if err := store.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryRefusesCorruptSnapshot: a published-but-tampered snapshot
// must fail the open loudly, not serve a state clients were never acked.
func TestRecoveryRefusesCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	store, err := OpenStore(dir, StoreOptions{SnapshotEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Create("s", Config{Nodes: 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Submit(ctx, "s", []JobSpec{{Nodes: 1, Estimate: 60}}); err != nil {
		t.Fatal(err)
	}
	if err := store.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, "sessions", "s", snapshotFile)
	data, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	tampered := []byte(string(data))
	// Flip the submitted counter inside the published snapshot.
	tampered = []byte(replaceOnce(t, string(tampered), `"submitted": 1`, `"submitted": 2`))
	if err := os.WriteFile(snapPath, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir, StoreOptions{}); err == nil {
		t.Fatal("tampered snapshot served")
	}
}

func replaceOnce(t *testing.T, s, old, new string) string {
	t.Helper()
	i := indexOf(s, old)
	if i < 0 {
		t.Fatalf("%q not found in snapshot", old)
	}
	return s[:i] + new + s[i+len(old):]
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
