package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// daemon wraps one jobschedd subprocess for the e2e crash tests.
type daemon struct {
	t    *testing.T
	cmd  *exec.Cmd
	base string
	logs *bytes.Buffer
}

func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "jobschedd")
	cmd := exec.Command("go", "build", "-o", bin, "jobsched/cmd/jobschedd")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building daemon: %v\n%s", err, out)
	}
	return bin
}

func startDaemon(t *testing.T, bin, dataDir string, extra ...string) *daemon {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	args := append([]string{"-addr", "127.0.0.1:0", "-addrfile", addrFile, "-data", dataDir}, extra...)
	cmd := exec.Command(bin, args...)
	logs := &bytes.Buffer{}
	cmd.Stdout = logs
	cmd.Stderr = logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{t: t, cmd: cmd, logs: logs}
	t.Cleanup(func() {
		if d.cmd.ProcessState == nil {
			kerr := d.cmd.Process.Kill()
			_ = kerr // already-dead processes are fine here
			werr := d.cmd.Wait()
			_ = werr // cleanup of an intentionally killed process
		}
	})
	deadline := time.Now().Add(15 * time.Second)
	for {
		data, err := os.ReadFile(addrFile)
		if err == nil && len(data) > 0 {
			d.base = "http://" + strings.TrimSpace(string(data))
			return d
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never wrote its address; logs:\n%s", logs)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (d *daemon) post(path string, body any) (*http.Response, []byte, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return nil, nil, err
	}
	resp, err := http.Post(d.base+path, "application/json", bytes.NewReader(data))
	if err != nil {
		return nil, nil, err
	}
	defer func() {
		cerr := resp.Body.Close()
		_ = cerr // body already fully read below
	}()
	var out bytes.Buffer
	_, rerr := out.ReadFrom(resp.Body)
	return resp, out.Bytes(), rerr
}

func (d *daemon) fingerprint(session string) (string, error) {
	resp, err := http.Get(d.base + "/v1/sessions/" + session)
	if err != nil {
		return "", err
	}
	defer func() {
		cerr := resp.Body.Close()
		_ = cerr // body already decoded
	}()
	if resp.StatusCode != 200 {
		return "", fmt.Errorf("info: %s", resp.Status)
	}
	var info struct {
		Fingerprint string `json:"fingerprint"`
		WALSeq      uint64 `json:"wal_seq"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return "", err
	}
	return fmt.Sprintf("%s@%d", info.Fingerprint, info.WALSeq), nil
}

// TestDaemonKillMinus9Recovery is the tentpole acceptance test: kill -9
// the daemon — first at a quiescent point, then mid-traffic — and
// verify the restart replays to the exact acknowledged state.
func TestDaemonKillMinus9Recovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses and builds the daemon")
	}
	bin := buildDaemon(t)
	dataDir := filepath.Join(t.TempDir(), "data")

	// Phase 1: quiescent kill. Submit, capture the fingerprint, kill -9,
	// restart: the fingerprint must be identical.
	d := startDaemon(t, bin, dataDir, "-snapshot-every", "16")
	if resp, body, err := d.post("/v1/sessions", map[string]any{"name": "m", "config": map[string]any{"nodes": 64}}); err != nil || resp.StatusCode != 201 {
		t.Fatalf("create: %v %s", err, body)
	}
	for i := 0; i < 10; i++ {
		resp, body, err := d.post("/v1/sessions/m/jobs", map[string]any{"jobs": []map[string]any{
			{"nodes": 1 + i%8, "estimate": 100 + 10*i},
		}})
		if err != nil || resp.StatusCode != 200 {
			t.Fatalf("submit %d: %v %s", i, err, body)
		}
	}
	if resp, body, err := d.post("/v1/sessions/m/advance", map[string]int64{"to": 250}); err != nil || resp.StatusCode != 200 {
		t.Fatalf("advance: %v %s", err, body)
	}
	before, err := d.fingerprint("m")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	werr := d.cmd.Wait()
	_ = werr // kill -9 makes a non-zero exit; that is the point

	d = startDaemon(t, bin, dataDir)
	after, err := d.fingerprint("m")
	if err != nil {
		t.Fatalf("recovery failed: %v\nlogs:\n%s", err, d.logs)
	}
	if after != before {
		t.Fatalf("state after kill -9: %s, want %s", after, before)
	}

	// Phase 2: kill mid-traffic. Concurrent submitters record which
	// submissions were acknowledged; every acked ID must survive.
	var (
		mu    sync.Mutex
		acked []int64
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, body, err := d.post("/v1/sessions/m/jobs", map[string]any{"jobs": []map[string]any{
					{"nodes": 1, "estimate": 60, "name": fmt.Sprintf("w%d-%d", w, i)},
				}})
				if err != nil {
					return // connection died at the kill: unacked, fine
				}
				if resp.StatusCode != 200 {
					continue
				}
				var sr struct {
					Results []struct {
						ID int64 `json:"id"`
					} `json:"results"`
				}
				if jerr := json.Unmarshal(body, &sr); jerr == nil && len(sr.Results) == 1 {
					mu.Lock()
					acked = append(acked, sr.Results[0].ID)
					mu.Unlock()
				}
			}
		}(w)
	}
	time.Sleep(300 * time.Millisecond) // let traffic build
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	werr = d.cmd.Wait()
	_ = werr // kill -9 exit is expected

	d = startDaemon(t, bin, dataDir)
	fp1, err := d.fingerprint("m")
	if err != nil {
		t.Fatalf("recovery after mid-traffic kill: %v\nlogs:\n%s", err, d.logs)
	}
	mu.Lock()
	ackedIDs := append([]int64(nil), acked...)
	mu.Unlock()
	if len(ackedIDs) == 0 {
		t.Fatal("no submissions were acked before the kill; the test raced to nothing")
	}
	for _, id := range ackedIDs {
		resp, err := http.Get(d.base + fmt.Sprintf("/v1/sessions/m/jobs/%d", id))
		if err != nil {
			t.Fatal(err)
		}
		code := resp.StatusCode
		cerr := resp.Body.Close()
		_ = cerr // status code is all this check needs
		if code != 200 {
			t.Fatalf("acked job %d lost by kill -9 (status %d)", id, code)
		}
	}

	// Recovery is deterministic: a second restart replays to the same
	// fingerprint.
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	werr = d.cmd.Wait()
	_ = werr // kill -9 exit is expected
	d = startDaemon(t, bin, dataDir)
	fp2, err := d.fingerprint("m")
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Fatalf("two recoveries of the same log disagree: %s vs %s", fp1, fp2)
	}
}

// TestDaemonSIGTERMDrainsCleanly: SIGTERM refuses new work, flushes,
// and exits 0; the restart sees the identical state.
func TestDaemonSIGTERMDrainsCleanly(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses and builds the daemon")
	}
	bin := buildDaemon(t)
	dataDir := filepath.Join(t.TempDir(), "data")
	d := startDaemon(t, bin, dataDir)
	if resp, body, err := d.post("/v1/sessions", map[string]any{"name": "m", "config": map[string]any{"nodes": 16}}); err != nil || resp.StatusCode != 201 {
		t.Fatalf("create: %v %s", err, body)
	}
	if resp, body, err := d.post("/v1/sessions/m/jobs", map[string]any{"jobs": []map[string]any{{"nodes": 4, "estimate": 100}}}); err != nil || resp.StatusCode != 200 {
		t.Fatalf("submit: %v %s", err, body)
	}
	before, err := d.fingerprint("m")
	if err != nil {
		t.Fatal(err)
	}

	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("SIGTERM exit: %v\nlogs:\n%s", err, d.logs)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not drain within 30s\nlogs:\n%s", d.logs)
	}
	if !strings.Contains(d.logs.String(), "drained cleanly") {
		t.Fatalf("drain not logged:\n%s", d.logs)
	}

	d = startDaemon(t, bin, dataDir)
	after, err := d.fingerprint("m")
	if err != nil {
		t.Fatal(err)
	}
	if after != before {
		t.Fatalf("state after SIGTERM drain: %s, want %s", after, before)
	}
}
