package serve

import (
	"container/heap"
	"errors"
	"fmt"
	"regexp"

	"jobsched/internal/job"
	"jobsched/internal/sched"
	"jobsched/internal/sim"
	"jobsched/internal/telemetry"
)

// ErrInterrupted is returned by a session operation abandoned by the
// cooperative cancellation hook (request timeout, client disconnect).
// The in-memory state may be half-mutated: the owner must reload the
// session from disk before applying anything else.
var ErrInterrupted = errors.New("serve: operation interrupted")

// ErrRejected marks clean, no-mutation rejections (invalid spec, bad
// advance target): the session state is untouched, no recovery needed,
// and the HTTP layer maps it to a 4xx instead of a 5xx.
var ErrRejected = errors.New("serve: rejected")

func rejectf(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, ErrRejected)...)
}

// Config is a session's machine and policy configuration, fixed at
// creation and stored durably next to its WAL.
type Config struct {
	// Nodes is the machine size.
	Nodes int `json:"nodes"`
	// Order and Start select the scheduling algorithm (sched.OrderName /
	// sched.StartName); empty defaults to FCFS / EASY-Backfilling.
	// Recovery is byte-identical for removal-stable orders (FCFS,
	// Garey&Graham); SMART/PSRS sessions restore to a content-equivalent
	// queue whose replan counters restart, which can change future (not
	// past) decisions — the API refuses them unless AllowUnstable.
	Order string `json:"order,omitempty"`
	Start string `json:"start,omitempty"`
	// MaxPending bounds the waiting queue: submissions beyond it are
	// shed (recorded, never scheduled) instead of growing memory without
	// bound. Default 10000.
	MaxPending int `json:"max_pending,omitempty"`
	// DoneHistory bounds how many finished/expired/shed job records stay
	// queryable; older ones are evicted. Default 10000.
	DoneHistory int `json:"done_history,omitempty"`
	// AllowUnstable permits SMART/PSRS order policies despite their
	// weaker (content-equivalent, not counter-identical) recovery.
	AllowUnstable bool `json:"allow_unstable,omitempty"`
}

const (
	defaultMaxPending  = 10000
	defaultDoneHistory = 10000
)

func (c Config) withDefaults() Config {
	if c.Order == "" {
		c.Order = string(sched.OrderFCFS)
	}
	if c.Start == "" {
		c.Start = string(sched.StartEASY)
	}
	if c.MaxPending == 0 {
		c.MaxPending = defaultMaxPending
	}
	if c.DoneHistory == 0 {
		c.DoneHistory = defaultDoneHistory
	}
	return c
}

var nameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// Validate checks the configuration, including that the order/start
// pair constructs (the same check sched.New applies).
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.Nodes <= 0 {
		return rejectf("serve: session needs nodes > 0")
	}
	if c.MaxPending < 0 || c.DoneHistory < 0 {
		return rejectf("serve: max_pending and done_history must be >= 0")
	}
	switch sched.OrderName(c.Order) {
	case sched.OrderFCFS, sched.OrderGG:
	case sched.OrderPSRS, sched.OrderSMARTFFIA, sched.OrderSMARTNFIW:
		if !c.AllowUnstable {
			return rejectf("serve: order %q replans from counters that do not survive recovery; set allow_unstable to accept content-equivalent restores", c.Order)
		}
	default:
		return rejectf("serve: unknown order policy %q", c.Order)
	}
	if _, err := sched.New(sched.OrderName(c.Order), sched.StartName(c.Start), sched.Config{MachineNodes: c.Nodes}); err != nil {
		return rejectf("serve: %v", err)
	}
	return nil
}

// JobSpec is a client-submitted job. Times are logical (session clock
// units): the session is a deterministic simulation driven by explicit
// advance operations, which is what makes crash recovery replayable.
type JobSpec struct {
	Name string `json:"name,omitempty"`
	User string `json:"user,omitempty"`
	// Nodes is the job's width; Estimate the client's runtime bound.
	Nodes    int   `json:"nodes"`
	Estimate int64 `json:"estimate"`
	// Runtime is the simulated execution time (0 = Estimate). Like the
	// core machine model, a job is killed at its estimate.
	Runtime int64 `json:"runtime,omitempty"`
	// Deadline, when > 0, is the latest session clock at which the job
	// may still start; a job still waiting past it is expired and
	// withdrawn (0 = no deadline).
	Deadline int64 `json:"deadline,omitempty"`
}

func (sp JobSpec) normalized() JobSpec {
	if sp.Runtime == 0 {
		sp.Runtime = sp.Estimate
	}
	return sp
}

func (sp JobSpec) validate(machineNodes int) error {
	if sp.Nodes <= 0 {
		return rejectf("serve: job needs nodes > 0")
	}
	if sp.Nodes > machineNodes {
		return rejectf("serve: job needs %d nodes, machine has %d", sp.Nodes, machineNodes)
	}
	if sp.Estimate <= 0 {
		return rejectf("serve: job needs estimate > 0")
	}
	if sp.Runtime < 0 || sp.Deadline < 0 {
		return rejectf("serve: runtime and deadline must be >= 0")
	}
	return nil
}

// JobStatus is a job's lifecycle state in a session.
type JobStatus string

const (
	StatusPending JobStatus = "pending"
	StatusRunning JobStatus = "running"
	StatusDone    JobStatus = "done"
	// StatusExpired marks a job whose deadline passed before it started.
	StatusExpired JobStatus = "expired"
	// StatusShed marks a job refused by the bounded pending queue.
	StatusShed JobStatus = "shed"
)

// SubmitResult is the per-job outcome of a submit operation.
type SubmitResult struct {
	ID     int64     `json:"id"`
	Status JobStatus `json:"status"`
}

// Aggregates are the session's running totals. They are part of the
// fingerprinted state, so recovery provably reconstructs them.
type Aggregates struct {
	Submitted int64 `json:"submitted"`
	Started   int64 `json:"started"`
	Completed int64 `json:"completed"`
	Expired   int64 `json:"expired"`
	Shed      int64 `json:"shed"`
	// SumWait totals start-submit over started jobs; SumResponse totals
	// end-submit over completed ones (saturating).
	SumWait     int64 `json:"sum_wait"`
	SumResponse int64 `json:"sum_response"`
}

// jobState is a job's live record.
type jobState struct {
	id     job.ID
	spec   JobSpec
	status JobStatus
	submit int64
	start  int64
	end    int64
	seq    int      // start order; breaks completion ties
	j      *job.Job // live core job (pending/running only)
}

// completionEvent and deadlineEvent are the session's two event heaps.
type completionEvent struct {
	at  int64
	seq int
	id  job.ID
}

type completionQueue []completionEvent

func (h completionQueue) Len() int { return len(h) }
func (h completionQueue) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h completionQueue) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *completionQueue) Push(x any)   { *h = append(*h, x.(completionEvent)) }
func (h *completionQueue) Pop() any {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

type deadlineEvent struct {
	at int64
	id job.ID
}

type deadlineQueue []deadlineEvent

func (h deadlineQueue) Len() int { return len(h) }
func (h deadlineQueue) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].id < h[j].id
}
func (h deadlineQueue) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *deadlineQueue) Push(x any)   { *h = append(*h, x.(deadlineEvent)) }
func (h *deadlineQueue) Pop() any {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// Session is one machine's live scheduling state: a deterministic
// logical-clock event engine around a sched.Composite. Its state is a
// pure function of the operation sequence (submit/advance), which is
// the invariant WAL replay and snapshot restore rely on. A Session is
// not safe for concurrent use; the per-session store worker is its
// single writer.
type Session struct {
	name string
	cfg  Config
	sch  *sched.Composite

	clock    int64
	nextID   int64
	free     int
	startSeq int

	jobs map[job.ID]*jobState
	// pendingOrder is the arrival order of pending jobs (entries whose
	// status moved on are skipped and lazily compacted); pendingN counts
	// the live ones.
	pendingOrder []job.ID
	pendingN     int
	running      map[job.ID]*jobState
	completions  completionQueue
	deadlines    deadlineQueue
	// retired is the bounded eviction ring over done/expired/shed jobs,
	// oldest first.
	retired []job.ID
	agg     Aggregates

	// audit receives the decision trace (nil = off); replaying marks
	// recovery replay, which re-applies state without re-emitting audit.
	audit     telemetry.Recorder
	replaying bool
	// interrupt is polled between event instants and threaded into the
	// scheduler's pass loops. The hook must be sticky (once true, stays
	// true for the rest of the operation — a context check is): a
	// transient hook could truncate a pass without the operation
	// noticing, committing a state replay would not reproduce.
	interrupt func() bool

	runBuf []sim.Running
}

// NewSession builds an empty session. The config must already be
// validated (Config.Validate).
func NewSession(name string, cfg Config) (*Session, error) {
	if !nameRE.MatchString(name) {
		return nil, rejectf("serve: invalid session name %q", name)
	}
	cfg = cfg.withDefaults()
	sch, err := sched.New(sched.OrderName(cfg.Order), sched.StartName(cfg.Start), sched.Config{MachineNodes: cfg.Nodes})
	if err != nil {
		return nil, rejectf("serve: %v", err)
	}
	return &Session{
		name:    name,
		cfg:     cfg,
		sch:     sch,
		free:    cfg.Nodes,
		nextID:  1,
		jobs:    make(map[job.ID]*jobState),
		running: make(map[job.ID]*jobState),
	}, nil
}

// SetAudit installs the audit-trace recorder (nil = off).
func (s *Session) SetAudit(rec telemetry.Recorder) { s.audit = rec }

// SetInterrupt installs the cooperative cancellation hook for the next
// operations (nil = never). See the field comment for the stickiness
// requirement.
func (s *Session) SetInterrupt(f func() bool) {
	s.interrupt = f
	s.sch.SetInterrupt(f)
}

// Name returns the session name.
func (s *Session) Name() string { return s.name }

// Clock returns the session's logical time.
func (s *Session) Clock() int64 { return s.clock }

// Counts returns (pending, running) job counts.
func (s *Session) Counts() (pending, running int) { return s.pendingN, len(s.running) }

// Agg returns the session's running totals.
func (s *Session) Agg() Aggregates { return s.agg }

// ConfigValue returns the session's configuration.
func (s *Session) ConfigValue() Config { return s.cfg }

func stopNow(f func() bool) bool { return f != nil && f() }

// Submit validates and applies a batch of job submissions at the
// current clock. Validation happens before any mutation, so a rejected
// batch (ErrRejected) leaves the session untouched; any other error
// means the state is poisoned and must be reloaded from disk.
func (s *Session) Submit(specs []JobSpec) ([]SubmitResult, error) {
	if len(specs) == 0 {
		return nil, rejectf("serve: empty submission")
	}
	norm := make([]JobSpec, len(specs))
	for i, sp := range specs {
		norm[i] = sp.normalized()
		if err := norm[i].validate(s.cfg.Nodes); err != nil {
			return nil, err
		}
	}
	results := make([]SubmitResult, 0, len(norm))
	for _, sp := range norm {
		id := job.ID(s.nextID)
		s.nextID++
		st := &jobState{id: id, spec: sp, submit: s.clock}
		s.jobs[id] = st
		switch {
		case s.pendingN >= s.cfg.MaxPending:
			// Bounded queue: record the refusal durably (it is part of
			// the replayed state) but never schedule the job.
			st.status = StatusShed
			s.agg.Shed++
			s.retire(st)
		case sp.Deadline > 0 && sp.Deadline < s.clock:
			st.status = StatusExpired
			s.agg.Expired++
			s.retire(st)
		default:
			st.status = StatusPending
			st.j = &job.Job{ID: id, Name: sp.Name, User: sp.User, Nodes: sp.Nodes,
				Submit: s.clock, Estimate: sp.Estimate, Runtime: sp.Runtime}
			s.pendingOrder = append(s.pendingOrder, id)
			s.pendingN++
			if sp.Deadline > 0 {
				heap.Push(&s.deadlines, deadlineEvent{at: sp.Deadline, id: id})
			}
			s.agg.Submitted++
			s.sch.Submit(st.j, s.clock)
			if s.audit != nil && !s.replaying {
				s.audit.Record(telemetry.Event{Type: telemetry.EventArrival, At: s.clock,
					Job: int64(id), Nodes: sp.Nodes, Head: telemetry.None})
			}
		}
		results = append(results, SubmitResult{ID: int64(id), Status: st.status})
	}
	if err := s.runPasses(); err != nil {
		return nil, err
	}
	s.maybeCompact()
	return results, nil
}

// Advance moves the session clock to `to`, delivering completions,
// expiring deadlines, and running scheduling passes at every event
// instant in between. Advancing to or before the current clock is a
// deterministic no-op (idempotent under client retries). Any non-nil
// error except ErrRejected poisons the state.
func (s *Session) Advance(to int64) error {
	if to < 0 {
		return rejectf("serve: advance target must be >= 0")
	}
	for s.clock < to {
		if stopNow(s.interrupt) {
			return ErrInterrupted
		}
		t := to
		if s.completions.Len() > 0 && s.completions[0].at < t {
			t = s.completions[0].at
		}
		if d, ok := s.earliestDeadline(); ok {
			// Expiry takes effect the instant after the deadline: at the
			// deadline itself the job may still start.
			if x := job.AddSat(d, 1); x < t {
				t = x
			}
		}
		s.clock = t
		for s.completions.Len() > 0 && s.completions[0].at == t {
			ev := heap.Pop(&s.completions).(completionEvent)
			s.finish(ev.id, t)
		}
		s.expireDeadlines(t)
		if err := s.runPasses(); err != nil {
			return err
		}
	}
	s.maybeCompact()
	return nil
}

// earliestDeadline peeks the next live deadline, skipping entries whose
// jobs already started or retired (lazy deletion).
func (s *Session) earliestDeadline() (int64, bool) {
	for s.deadlines.Len() > 0 {
		ev := s.deadlines[0]
		st := s.jobs[ev.id]
		if st == nil || st.status != StatusPending {
			heap.Pop(&s.deadlines)
			continue
		}
		return ev.at, true
	}
	return 0, false
}

// expireDeadlines withdraws every still-pending job whose deadline lies
// strictly before now.
func (s *Session) expireDeadlines(now int64) {
	for s.deadlines.Len() > 0 {
		ev := s.deadlines[0]
		st := s.jobs[ev.id]
		if st == nil || st.status != StatusPending {
			heap.Pop(&s.deadlines)
			continue
		}
		if ev.at >= now {
			return
		}
		heap.Pop(&s.deadlines)
		s.sch.Withdraw(st.j, now)
		st.status = StatusExpired
		st.j = nil
		s.pendingN--
		s.agg.Expired++
		s.retire(st)
		if s.audit != nil && !s.replaying {
			s.audit.Record(telemetry.Event{Type: telemetry.EventLost, At: now,
				Job: int64(st.id), Nodes: st.spec.Nodes, Head: telemetry.None})
		}
	}
}

// finish delivers one completion: free the nodes, settle the record,
// notify the scheduler.
func (s *Session) finish(id job.ID, now int64) {
	st := s.running[id]
	if st == nil {
		return
	}
	delete(s.running, id)
	s.free += st.spec.Nodes
	st.status = StatusDone
	s.agg.Completed++
	s.agg.SumResponse = job.AddSat(s.agg.SumResponse, st.end-st.submit)
	j := st.j
	st.j = nil
	s.retire(st)
	if s.audit != nil && !s.replaying {
		s.audit.Record(telemetry.Event{Type: telemetry.EventFinish, At: now,
			Job: int64(id), Nodes: st.spec.Nodes, Head: telemetry.None, Killed: j.Killed()})
	}
	s.sch.JobFinished(j, now)
}

// runPasses lets the scheduler start jobs at the current instant until
// it declines, mirroring the sim engine's pass loop.
func (s *Session) runPasses() error {
	for {
		if stopNow(s.interrupt) {
			return ErrInterrupted
		}
		starts := s.sch.Startable(s.clock, s.free, s.runningList())
		if len(starts) == 0 {
			return nil
		}
		for _, j := range starts {
			if j.Nodes > s.free {
				return fmt.Errorf("serve: session %s: scheduler started %v with only %d nodes free", s.name, j, s.free)
			}
			st := s.jobs[j.ID]
			if st == nil || st.status != StatusPending {
				return fmt.Errorf("serve: session %s: scheduler started unknown or non-pending job %d", s.name, j.ID)
			}
			s.free -= j.Nodes
			st.status = StatusRunning
			st.start = s.clock
			st.end = job.AddSat(s.clock, j.EffectiveRuntime())
			st.seq = s.startSeq
			s.startSeq++
			s.pendingN--
			s.running[j.ID] = st
			heap.Push(&s.completions, completionEvent{at: st.end, seq: st.seq, id: j.ID})
			s.agg.Started++
			s.agg.SumWait = job.AddSat(s.agg.SumWait, st.start-st.submit)
			if s.audit != nil && !s.replaying {
				s.audit.Record(telemetry.Event{Type: telemetry.EventStart, At: s.clock,
					Job: int64(j.ID), Nodes: j.Nodes, Free: s.free, Head: telemetry.None})
			}
			s.sch.JobStarted(j, s.clock)
		}
	}
}

// runningList snapshots the running set in ID order (the sim engine's
// contract with Startable) into a reused buffer.
func (s *Session) runningList() []sim.Running {
	s.runBuf = s.runBuf[:0]
	for _, id := range s.runningIDs() {
		st := s.running[id]
		s.runBuf = append(s.runBuf, sim.Running{Job: st.j, Start: st.start,
			EstEnd: job.AddSat(st.start, st.spec.Estimate)})
	}
	return s.runBuf
}

// runningIDs returns the running job IDs sorted ascending.
func (s *Session) runningIDs() []job.ID {
	ids := make([]job.ID, 0, len(s.running))
	for id := range s.running {
		ids = append(ids, id)
	}
	sortIDs(ids)
	return ids
}

func sortIDs(ids []job.ID) {
	for i := 1; i < len(ids); i++ {
		for k := i; k > 0 && ids[k] < ids[k-1]; k-- {
			ids[k], ids[k-1] = ids[k-1], ids[k]
		}
	}
}

// retire appends a settled job to the bounded history ring, evicting
// the oldest records beyond DoneHistory.
func (s *Session) retire(st *jobState) {
	s.retired = append(s.retired, st.id)
	for len(s.retired) > s.cfg.DoneHistory {
		old := s.retired[0]
		s.retired = s.retired[1:]
		delete(s.jobs, old)
	}
}

// maybeCompact sweeps pendingOrder's tombstones (entries whose job
// started or retired) once they dominate the slice. The sweep preserves
// arrival order, so it never changes fingerprints or snapshots.
func (s *Session) maybeCompact() {
	if len(s.pendingOrder) < 64 || len(s.pendingOrder) < 2*s.pendingN {
		return
	}
	live := s.pendingOrder[:0]
	for _, id := range s.pendingOrder {
		if st := s.jobs[id]; st != nil && st.status == StatusPending {
			live = append(live, id)
		}
	}
	s.pendingOrder = live
}

// pendingIDs returns the pending jobs in arrival order.
func (s *Session) pendingIDs() []job.ID {
	out := make([]job.ID, 0, s.pendingN)
	for _, id := range s.pendingOrder {
		if st := s.jobs[id]; st != nil && st.status == StatusPending {
			out = append(out, id)
		}
	}
	return out
}

// Apply replays one WAL record. Replay must never cleanly reject: the
// record committed once, so a rejection here means the log does not
// match the state and the session must not serve.
func (s *Session) Apply(rec Record) error {
	s.replaying = true
	defer func() { s.replaying = false }()
	switch rec.Op {
	case opSubmit:
		_, err := s.Submit(rec.Jobs)
		if errors.Is(err, ErrRejected) {
			return fmt.Errorf("serve: session %s: wal record %d no longer applies: %v", s.name, rec.Seq, err)
		}
		return err
	case opAdvance:
		err := s.Advance(rec.At)
		if errors.Is(err, ErrRejected) {
			return fmt.Errorf("serve: session %s: wal record %d no longer applies: %v", s.name, rec.Seq, err)
		}
		return err
	default:
		return fmt.Errorf("serve: session %s: wal record %d has unknown op %q", s.name, rec.Seq, rec.Op)
	}
}
