package serve

import (
	"fmt"
	"sort"

	"jobsched/internal/eval"
	"jobsched/internal/job"
)

// Fingerprint hashes the session's complete observable state: config,
// clocks, counters, and every live and retired job record. Two sessions
// with equal fingerprints serve identical answers to every query and
// make identical future scheduling decisions (for removal-stable order
// policies) — this is the equality the crash-recovery tests assert.
func (s *Session) Fingerprint() uint64 {
	fp := eval.NewFingerprint()
	fp.String("serve-session-v1")
	fp.String(s.name)
	fp.Int(int64(s.cfg.Nodes))
	fp.String(s.cfg.Order)
	fp.String(s.cfg.Start)
	fp.Int(int64(s.cfg.MaxPending))
	fp.Int(int64(s.cfg.DoneHistory))
	fp.Int(s.clock)
	fp.Int(s.nextID)
	fp.Int(int64(s.startSeq))
	fp.Int(int64(s.free))
	fp.Int(s.agg.Submitted)
	fp.Int(s.agg.Started)
	fp.Int(s.agg.Completed)
	fp.Int(s.agg.Expired)
	fp.Int(s.agg.Shed)
	fp.Int(s.agg.SumWait)
	fp.Int(s.agg.SumResponse)
	hashJob := func(st *jobState) {
		fp.Int(int64(st.id))
		fp.String(string(st.status))
		fp.String(st.spec.Name)
		fp.String(st.spec.User)
		fp.Int(int64(st.spec.Nodes))
		fp.Int(st.spec.Estimate)
		fp.Int(st.spec.Runtime)
		fp.Int(st.spec.Deadline)
		fp.Int(st.submit)
		fp.Int(st.start)
		fp.Int(st.end)
		fp.Int(int64(st.seq))
	}
	fp.String("pending")
	for _, id := range s.pendingIDs() {
		hashJob(s.jobs[id])
	}
	fp.String("running")
	for _, st := range s.runningByStart() {
		hashJob(st)
	}
	fp.String("retired")
	for _, id := range s.retired {
		if st := s.jobs[id]; st != nil {
			hashJob(st)
		}
	}
	return fp.Sum()
}

// runningByStart returns the running jobs in start order — the order
// completion ties resolve in, and the canonical snapshot order.
func (s *Session) runningByStart() []*jobState {
	out := make([]*jobState, 0, len(s.running))
	for _, id := range s.runningIDs() {
		out = append(out, s.running[id])
	}
	sort.Slice(out, func(i, k int) bool { return out[i].seq < out[k].seq })
	return out
}

// Snapshot captures the session's durable state as of WAL sequence
// walSeq (every record up to and including it is folded in).
func (s *Session) Snapshot(walSeq uint64) *Snapshot {
	snap := &Snapshot{
		Version:  1,
		Name:     s.name,
		Config:   s.cfg,
		Clock:    s.clock,
		NextID:   s.nextID,
		StartSeq: s.startSeq,
		WALSeq:   walSeq,
		Agg:      s.agg,
	}
	toSnap := func(st *jobState) snapJob {
		return snapJob{ID: int64(st.id), Spec: st.spec, Submit: st.submit,
			Start: st.start, End: st.end, Seq: st.seq, Status: string(st.status)}
	}
	for _, id := range s.pendingIDs() {
		snap.Pending = append(snap.Pending, toSnap(s.jobs[id]))
	}
	for _, st := range s.runningByStart() {
		snap.Running = append(snap.Running, toSnap(st))
	}
	for _, id := range s.retired {
		if st := s.jobs[id]; st != nil {
			snap.Retired = append(snap.Retired, toSnap(st))
		}
	}
	snap.Fingerprint = fmt.Sprintf("%016x", s.Fingerprint())
	return snap
}

// RestoreSession rebuilds a session from a snapshot and verifies the
// result round-trips to the recorded fingerprint; a snapshot that does
// not reproduce its own fingerprint is refused rather than served.
func RestoreSession(snap *Snapshot) (*Session, error) {
	s, err := NewSession(snap.Name, snap.Config)
	if err != nil {
		return nil, fmt.Errorf("serve: restore: %w", err)
	}
	s.clock = snap.Clock
	s.nextID = snap.NextID
	s.startSeq = snap.StartSeq
	s.agg = snap.Agg
	s.replaying = true
	defer func() { s.replaying = false }()

	// Pending jobs re-enter the order policy in arrival order — the same
	// Push sequence the original session performed, so removal-stable
	// orders rebuild the identical queue.
	for _, sj := range snap.Pending {
		sp := sj.Spec.normalized()
		st := &jobState{id: job.ID(sj.ID), spec: sp, status: StatusPending, submit: sj.Submit}
		st.j = &job.Job{ID: st.id, Name: sp.Name, User: sp.User, Nodes: sp.Nodes,
			Submit: sj.Submit, Estimate: sp.Estimate, Runtime: sp.Runtime}
		s.jobs[st.id] = st
		s.pendingOrder = append(s.pendingOrder, st.id)
		s.pendingN++
		if sp.Deadline > 0 {
			s.deadlines = append(s.deadlines, deadlineEvent{at: sp.Deadline, id: st.id})
		}
		s.sch.Submit(st.j, sj.Submit)
	}
	fixDeadlineHeap(&s.deadlines)

	for _, sj := range snap.Running {
		sp := sj.Spec.normalized()
		st := &jobState{id: job.ID(sj.ID), spec: sp, status: StatusRunning,
			submit: sj.Submit, start: sj.Start, end: sj.End, seq: sj.Seq}
		st.j = &job.Job{ID: st.id, Name: sp.Name, User: sp.User, Nodes: sp.Nodes,
			Submit: sj.Submit, Estimate: sp.Estimate, Runtime: sp.Runtime}
		if s.free < sp.Nodes {
			return nil, fmt.Errorf("serve: restore %s: running jobs oversubscribe the machine", snap.Name)
		}
		s.free -= sp.Nodes
		s.jobs[st.id] = st
		s.running[st.id] = st
		s.completions = append(s.completions, completionEvent{at: st.end, seq: st.seq, id: st.id})
	}
	fixCompletionHeap(&s.completions)

	for _, sj := range snap.Retired {
		sp := sj.Spec.normalized()
		st := &jobState{id: job.ID(sj.ID), spec: sp, status: JobStatus(sj.Status),
			submit: sj.Submit, start: sj.Start, end: sj.End, seq: sj.Seq}
		switch st.status {
		case StatusDone, StatusExpired, StatusShed:
		default:
			return nil, fmt.Errorf("serve: restore %s: retired job %d has live status %q", snap.Name, sj.ID, sj.Status)
		}
		s.jobs[st.id] = st
		s.retired = append(s.retired, st.id)
	}

	if got := fmt.Sprintf("%016x", s.Fingerprint()); got != snap.Fingerprint {
		return nil, fmt.Errorf("serve: restore %s: snapshot does not round-trip (fingerprint %s, recorded %s) — refusing to serve a state no client was acked",
			snap.Name, got, snap.Fingerprint)
	}
	return s, nil
}

// fixCompletionHeap re-establishes the heap invariant after bulk loads.
func fixCompletionHeap(h *completionQueue) {
	sort.Slice(*h, func(i, k int) bool { return h.Less(i, k) })
}

// fixDeadlineHeap re-establishes the heap invariant after bulk loads.
func fixDeadlineHeap(h *deadlineQueue) {
	sort.Slice(*h, func(i, k int) bool { return h.Less(i, k) })
}

// JobInfo is a job's externally visible record.
type JobInfo struct {
	ID       int64     `json:"id"`
	Name     string    `json:"name,omitempty"`
	User     string    `json:"user,omitempty"`
	Nodes    int       `json:"nodes"`
	Estimate int64     `json:"estimate"`
	Deadline int64     `json:"deadline,omitempty"`
	Status   JobStatus `json:"status"`
	Submit   int64     `json:"submit"`
	Start    int64     `json:"start,omitempty"`
	End      int64     `json:"end,omitempty"`
}

// Job returns one job's record, or false when the ID is unknown (never
// issued, or evicted from the bounded history).
func (s *Session) Job(id int64) (JobInfo, bool) {
	st, ok := s.jobs[job.ID(id)]
	if !ok {
		return JobInfo{}, false
	}
	info := JobInfo{ID: int64(st.id), Name: st.spec.Name, User: st.spec.User,
		Nodes: st.spec.Nodes, Estimate: st.spec.Estimate, Deadline: st.spec.Deadline,
		Status: st.status, Submit: st.submit}
	switch st.status {
	case StatusRunning:
		info.Start = st.start
	case StatusDone:
		info.Start, info.End = st.start, st.end
	}
	return info, true
}
