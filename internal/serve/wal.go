// Package serve is jobschedd's service layer: it multiplexes many
// independent machine sessions, each a deterministic logical-time
// scheduler built from the sim/sched core, behind an HTTP/JSON API with
// admission control, bounded queues, and crash recovery.
//
// Durability model. Every session lives in its own directory holding a
// config file, a write-ahead log (WAL) of committed operations, and a
// periodic snapshot. An operation is applied to the in-memory session
// first, then appended to the WAL with an fsync, and only then
// acknowledged to the client — so the WAL records exactly the
// fully-applied operation sequence and replaying it (optionally on top
// of a snapshot) reconstructs byte-identical session state. A crash
// between apply and fsync loses only unacknowledged work; a failure
// mid-apply (panic, cancelled request) poisons the in-memory state and
// is healed by re-loading from disk, which by construction excludes the
// failed operation.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// Operation names in the WAL.
const (
	opSubmit  = "submit"
	opAdvance = "advance"
)

// Record is one committed operation in a session's write-ahead log.
// Records are JSON lines with strictly consecutive sequence numbers
// starting at 1; the snapshot stores the sequence number of the last
// operation folded into it, so recovery replays only the suffix.
type Record struct {
	Seq uint64 `json:"seq"`
	Op  string `json:"op"`
	// At is the session clock the operation committed at (submit) or the
	// advance target (advance).
	At   int64     `json:"at"`
	Jobs []JobSpec `json:"jobs,omitempty"`
}

// WAL is an append-only fsynced operation log. It is not safe for
// concurrent use; the per-session worker is its single writer.
type WAL struct {
	f       *os.File
	path    string
	nextSeq uint64
	buf     bytes.Buffer
}

// OpenWAL opens (creating if absent) the log at path and returns the
// committed records in order. A torn final line — the footprint of a
// crash mid-write — is dropped and truncated away before appending
// resumes; a torn or out-of-sequence record anywhere else is corruption
// and refused, because silently skipping committed operations would
// replay to a different state than the one clients were acked. A record
// only counts as committed if its trailing newline made it to disk:
// acks happen after the newline-inclusive buffer is fsynced, so an
// unterminated final line — even one that unmarshals cleanly, a write
// torn exactly at the closing brace — was never acknowledged, and
// keeping it would leave the next append gluing two records onto one
// unparseable line.
func OpenWAL(path string) (*WAL, []Record, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("serve: wal: %w", err)
	}
	var (
		recs     []Record
		validEnd int
		lineNo   int
	)
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // unterminated final line: torn even if it parses, drop it
		}
		end := off + nl + 1
		line := data[off : off+nl]
		lineNo++
		var rec Record
		if uerr := json.Unmarshal(line, &rec); uerr != nil || rec.Op == "" {
			if end == len(data) {
				break // torn tail: crash mid-append, drop it
			}
			return nil, nil, fmt.Errorf("serve: wal %s: corrupt record at line %d", path, lineNo)
		}
		if rec.Seq != uint64(len(recs))+1 {
			return nil, nil, fmt.Errorf("serve: wal %s: line %d has seq %d, want %d (log is missing committed operations)",
				path, lineNo, rec.Seq, len(recs)+1)
		}
		recs = append(recs, rec)
		validEnd = end
		off = end
	}

	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: wal: %w", err)
	}
	if validEnd < len(data) {
		// Drop the torn tail on disk too, so the next append starts on a
		// clean line boundary.
		if err := f.Truncate(int64(validEnd)); err != nil {
			cerr := f.Close()
			_ = cerr // the truncate failure is the actionable error
			return nil, nil, fmt.Errorf("serve: wal: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(validEnd), 0); err != nil {
		cerr := f.Close()
		_ = cerr // the seek failure is the actionable error
		return nil, nil, fmt.Errorf("serve: wal: %w", err)
	}
	return &WAL{f: f, path: path, nextSeq: uint64(len(recs)) + 1}, recs, nil
}

// LastSeq returns the sequence number of the last committed record
// (0 when the log is empty).
func (w *WAL) LastSeq() uint64 { return w.nextSeq - 1 }

// Append assigns consecutive sequence numbers to recs, writes them as
// one buffer, and fsyncs — a whole client batch costs a single write
// and a single fsync (group commit). On any error the log must be
// considered of unknown durability: the caller reloads from disk.
func (w *WAL) Append(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	w.buf.Reset()
	for i := range recs {
		recs[i].Seq = w.nextSeq + uint64(i)
		line, err := json.Marshal(recs[i])
		if err != nil {
			return fmt.Errorf("serve: wal: %w", err)
		}
		w.buf.Write(line)
		w.buf.WriteByte('\n')
	}
	if _, err := w.f.Write(w.buf.Bytes()); err != nil {
		return fmt.Errorf("serve: wal append: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("serve: wal sync: %w", err)
	}
	w.nextSeq += uint64(len(recs))
	return nil
}

// Close releases the underlying file. Appended records are already
// synced; Close never loses data.
func (w *WAL) Close() error { return w.f.Close() }
