package serve

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"jobsched/internal/job"
	"jobsched/internal/sched"
	"jobsched/internal/sim"
)

func TestSessionLifecycle(t *testing.T) {
	sess, err := NewSession("m1", Config{Nodes: 16})
	if err != nil {
		t.Fatal(err)
	}
	rs := mustSubmit(t, sess, []JobSpec{
		{Name: "wide", Nodes: 16, Estimate: 100},
		{Name: "narrow", Nodes: 4, Estimate: 50},
	})
	if rs[0].ID != 1 || rs[1].ID != 2 {
		t.Fatalf("ids not dense from 1: %+v", rs)
	}
	// wide occupies the whole machine; narrow waits behind it (FCFS).
	if ji, _ := sess.Job(1); ji.Status != StatusRunning {
		t.Fatalf("job 1 = %v, want running", ji.Status)
	}
	if ji, _ := sess.Job(2); ji.Status != StatusPending {
		t.Fatalf("job 2 = %v, want pending", ji.Status)
	}
	if err := sess.Advance(100); err != nil {
		t.Fatal(err)
	}
	ji, _ := sess.Job(1)
	if ji.Status != StatusDone || ji.End != 100 {
		t.Fatalf("job 1 after advance: %+v", ji)
	}
	if ji, _ := sess.Job(2); ji.Status != StatusRunning || ji.Start != 100 {
		t.Fatalf("job 2 should start the instant 1 completes: %+v", ji)
	}
	if err := sess.Advance(200); err != nil {
		t.Fatal(err)
	}
	agg := sess.Agg()
	if agg.Completed != 2 || agg.SumWait != 100 || agg.SumResponse != 100+150 {
		t.Fatalf("aggregates wrong: %+v", agg)
	}
}

// TestAdvanceIdempotent: re-advancing to the past must be a clean no-op
// (client retries of a committed advance replay harmlessly).
func TestAdvanceIdempotent(t *testing.T) {
	sess, err := NewSession("m1", Config{Nodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, sess, []JobSpec{{Nodes: 8, Estimate: 100}})
	if err := sess.Advance(500); err != nil {
		t.Fatal(err)
	}
	fp := sess.Fingerprint()
	if err := sess.Advance(300); err != nil {
		t.Fatalf("advance into the past must no-op, got %v", err)
	}
	if err := sess.Advance(500); err != nil {
		t.Fatal(err)
	}
	if sess.Fingerprint() != fp {
		t.Fatal("idempotent advances changed state")
	}
}

// TestDeadlineSemantics: a job may start at clock == deadline but is
// expired (withdrawn, never started) one instant later.
func TestDeadlineSemantics(t *testing.T) {
	sess, err := NewSession("m1", Config{Nodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Blocker holds the machine until t=100.
	mustSubmit(t, sess, []JobSpec{{Name: "blocker", Nodes: 8, Estimate: 100}})
	// Deadline exactly at the release instant: starts.
	mustSubmit(t, sess, []JobSpec{{Name: "ontime", Nodes: 8, Estimate: 10, Deadline: 100}})
	if err := sess.Advance(100); err != nil {
		t.Fatal(err)
	}
	if ji, _ := sess.Job(2); ji.Status != StatusRunning || ji.Start != 100 {
		t.Fatalf("deadline==start instant must still start: %+v", ji)
	}

	// This one's deadline passes while it waits: expired, machine stays free.
	mustSubmit(t, sess, []JobSpec{{Name: "late", Nodes: 8, Estimate: 10, Deadline: 105}})
	if err := sess.Advance(200); err != nil {
		t.Fatal(err)
	}
	ji, _ := sess.Job(3)
	if ji.Status != StatusExpired {
		t.Fatalf("job past its deadline = %v, want expired", ji.Status)
	}
	if agg := sess.Agg(); agg.Expired != 1 {
		t.Fatalf("expired count = %d", agg.Expired)
	}

	// Expiry must advance the clock even with no completions pending:
	// a lone deadlined job in an empty machine expires at deadline+1.
	sess2, err := NewSession("m2", Config{Nodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, sess2, []JobSpec{{Nodes: 8, Estimate: 10, Deadline: 50}})
	if ji, _ := sess2.Job(1); ji.Status != StatusRunning {
		t.Fatalf("empty machine must start the job immediately: %v", ji.Status)
	}

	// Submitted already past its deadline: expired on arrival.
	if err := sess2.Advance(100); err != nil {
		t.Fatal(err)
	}
	rs := mustSubmit(t, sess2, []JobSpec{{Nodes: 1, Estimate: 5, Deadline: 60}})
	if rs[0].Status != StatusExpired {
		t.Fatalf("deadline in the past on submit = %v, want expired", rs[0].Status)
	}
}

// TestBoundedPendingQueueSheds: beyond MaxPending, submissions are
// recorded as shed and never scheduled.
func TestBoundedPendingQueueSheds(t *testing.T) {
	sess, err := NewSession("m1", Config{Nodes: 1, MaxPending: 2})
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]JobSpec, 5)
	for i := range specs {
		specs[i] = JobSpec{Nodes: 1, Estimate: 100}
	}
	rs := mustSubmit(t, sess, specs)
	// The whole batch lands at one instant before any pass runs (engine
	// semantics: arrivals, then passes), so the queue bound admits jobs
	// 1 and 2 and sheds 3–5; job 1 then starts in the pass.
	want := []JobStatus{StatusPending, StatusPending, StatusShed, StatusShed, StatusShed}
	for i, r := range rs {
		if r.Status != want[i] {
			t.Fatalf("job %d = %v, want %v", i+1, r.Status, want[i])
		}
	}
	if ji, _ := sess.Job(1); ji.Status != StatusRunning {
		t.Fatalf("job 1 = %v, want running after the pass", ji.Status)
	}
	if agg := sess.Agg(); agg.Shed != 3 || agg.Submitted != 2 {
		t.Fatalf("aggregates: %+v", agg)
	}
	// Shed jobs stay queryable until evicted.
	if ji, ok := sess.Job(5); !ok || ji.Status != StatusShed {
		t.Fatalf("shed job not queryable: %+v ok=%v", ji, ok)
	}
}

func TestSubmitValidationLeavesStateUntouched(t *testing.T) {
	sess, err := NewSession("m1", Config{Nodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	fp := sess.Fingerprint()
	_, err = sess.Submit([]JobSpec{
		{Nodes: 2, Estimate: 10},
		{Nodes: 99, Estimate: 10}, // wider than the machine
	})
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("want ErrRejected, got %v", err)
	}
	if sess.Fingerprint() != fp {
		t.Fatal("rejected batch mutated the session")
	}
	if _, err := sess.Submit(nil); !errors.Is(err, ErrRejected) {
		t.Fatalf("empty submit: %v", err)
	}
}

// TestSessionMatchesEngine: the service's incremental event loop and
// the batch sim engine are two drivers of the same scheduler; fed the
// same workload they must produce identical placements.
func TestSessionMatchesEngine(t *testing.T) {
	for _, start := range []sched.StartName{sched.StartList, sched.StartEASY, sched.StartConservative} {
		r := rand.New(rand.NewSource(7))
		const n, nodes = 300, 64
		jobs := make([]*job.Job, n)
		for i := range jobs {
			jobs[i] = &job.Job{
				Nodes:    1 + r.Intn(nodes),
				Submit:   int64(r.Intn(5000)),
				Estimate: int64(60 + r.Intn(2000)),
			}
			jobs[i].Runtime = jobs[i].Estimate / 2
		}
		sort.Slice(jobs, func(i, k int) bool { return jobs[i].Submit < jobs[k].Submit })
		// IDs follow submission order, which is exactly how the session
		// numbers them.
		for i := range jobs {
			jobs[i].ID = job.ID(i + 1)
		}

		ref, err := sched.New(sched.OrderFCFS, start, sched.Config{MachineNodes: nodes})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.RunChecked(sim.Machine{Nodes: nodes}, jobs, ref, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		wantStart := make(map[job.ID]int64, n)
		for _, a := range res.Schedule.Allocs {
			wantStart[a.Job.ID] = a.Start
		}

		sess, err := NewSession("m1", Config{Nodes: nodes, Start: string(start)})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(jobs); {
			k := i
			for k < len(jobs) && jobs[k].Submit == jobs[i].Submit {
				k++
			}
			if err := sess.Advance(jobs[i].Submit); err != nil {
				t.Fatal(err)
			}
			specs := make([]JobSpec, 0, k-i)
			for _, j := range jobs[i:k] {
				specs = append(specs, JobSpec{Nodes: j.Nodes, Estimate: j.Estimate, Runtime: j.Runtime})
			}
			rs := mustSubmit(t, sess, specs)
			for bi, j := range jobs[i:k] {
				if job.ID(rs[bi].ID) != j.ID {
					t.Fatalf("%s: session assigned id %d where engine job %d expected", start, rs[bi].ID, j.ID)
				}
			}
			i = k
		}
		if err := sess.Advance(res.Schedule.Makespan() + 1); err != nil {
			t.Fatal(err)
		}
		if agg := sess.Agg(); agg.Completed != n {
			t.Fatalf("%s: %d jobs completed, want %d", start, agg.Completed, n)
		}
		for id, want := range wantStart {
			ji, ok := sess.Job(int64(id))
			if !ok {
				t.Fatalf("%s: job %d missing from session", start, id)
			}
			if ji.Start != want {
				t.Fatalf("%s: job %d started at %d in the session, %d under the engine", start, id, ji.Start, want)
			}
		}
	}
}

// TestSessionInterruptPoisons: an interrupt raised mid-operation
// surfaces ErrInterrupted (the store reloads the session from disk).
func TestSessionInterruptPoisons(t *testing.T) {
	sess, err := NewSession("m1", Config{Nodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, sess, []JobSpec{{Nodes: 8, Estimate: 100}, {Nodes: 8, Estimate: 100}})
	sess.SetInterrupt(func() bool { return true })
	if err := sess.Advance(1000); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
}
