package workload

import (
	"math"
	"sort"
	"testing"

	"jobsched/internal/job"
	"jobsched/internal/trace"
)

func TestFitModelAndGenerate(t *testing.T) {
	src := CTC(smallCTC(10000, 11))
	m, err := FitModel(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Interarrival.K <= 0 || m.Interarrival.Lambda <= 0 {
		t.Fatalf("degenerate Weibull fit: %+v", m.Interarrival)
	}
	gen := m.Generate(5000, 12)
	if len(gen) != 5000 {
		t.Fatalf("generated %d jobs", len(gen))
	}
	for i, j := range gen {
		if err := j.Validate(m.MaxNodes, true); err != nil {
			t.Fatalf("generated job invalid: %v", err)
		}
		if j.ID != job.ID(i) {
			t.Fatalf("IDs not dense")
		}
	}
	if !sort.SliceIsSorted(gen, func(a, b int) bool { return gen[a].Submit < gen[b].Submit }) {
		t.Fatal("not in submission order")
	}
}

func TestGeneratedResemblesSource(t *testing.T) {
	// The paper's consistency requirement: "this generates a workload
	// that is very similar to the CTC data set". Compare coarse
	// statistics between source and generated workload.
	src := CTC(smallCTC(20000, 13))
	gen, err := Probabilistic(src, 20000, 14)
	if err != nil {
		t.Fatal(err)
	}
	ss, gs := trace.Summarize(src), trace.Summarize(gen)
	relErr := func(a, b float64) float64 { return math.Abs(a-b) / a }
	if e := relErr(ss.MeanNodes, gs.MeanNodes); e > 0.10 {
		t.Errorf("mean nodes: src %.1f gen %.1f (%.0f%% off)", ss.MeanNodes, gs.MeanNodes, e*100)
	}
	if e := relErr(ss.MeanRuntime, gs.MeanRuntime); e > 0.25 {
		t.Errorf("mean runtime: src %.0f gen %.0f (%.0f%% off)", ss.MeanRuntime, gs.MeanRuntime, e*100)
	}
	if e := relErr(ss.MeanInterarr, gs.MeanInterarr); e > 0.30 {
		t.Errorf("mean interarrival: src %.0f gen %.0f (%.0f%% off)", ss.MeanInterarr, gs.MeanInterarr, e*100)
	}
}

func TestGenerateOnlyObservedNodeCounts(t *testing.T) {
	src := CTC(smallCTC(5000, 15))
	m, err := FitModel(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	observed := map[int]bool{}
	for _, j := range src {
		observed[j.Nodes] = true
	}
	for _, j := range m.Generate(3000, 16) {
		if !observed[j.Nodes] {
			t.Fatalf("generated unobserved node count %d", j.Nodes)
		}
	}
}

func TestFitModelRejectsTinyInput(t *testing.T) {
	if _, err := FitModel(nil, nil); err == nil {
		t.Error("nil accepted")
	}
	one := []*job.Job{{ID: 0, Nodes: 1, Estimate: 10, Runtime: 5}}
	if _, err := FitModel(one, nil); err == nil {
		t.Error("single job accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	src := CTC(smallCTC(3000, 17))
	m, err := FitModel(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := m.Generate(1000, 18)
	b := m.Generate(1000, 18)
	for i := range a {
		if *a[i] != *b[i] {
			t.Fatal("Generate not deterministic")
		}
	}
}

func TestGeneratePanicsOnBadN(t *testing.T) {
	src := CTC(smallCTC(3000, 19))
	m, err := FitModel(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	m.Generate(0, 1)
}
