package workload

import (
	"fmt"
	"sort"

	"jobsched/internal/job"
	"jobsched/internal/stats"
)

// Model is the probability-distribution workload model of Section 6.2,
// extracted from a workload trace: "a Weibull distribution matches best
// the submission times of the jobs in the trace. ... bins are created for
// every possible requested resource number (between 1 and 256), various
// ranges of requested time and of actual execution length. Then
// probability values are calculated for each bin from the CTC trace."
type Model struct {
	// Interarrival is the Weibull fit of the submission process.
	Interarrival stats.Weibull
	// Joint carries, per node count, the binned requested-time and
	// actual-runtime distributions.
	Joint *stats.JointHistogram
	// MaxNodes is the widest job observed.
	MaxNodes int
}

// FitModel extracts a Model from a trace. timeBins are the bounds of the
// requested/actual time ranges; nil selects geometric bins ]0,64],
// ]64,128], … ]·, 2^17] covering up to ~36 h, a resolution comparable to
// the paper's "various ranges".
func FitModel(jobs []*job.Job, timeBins []int64) (*Model, error) {
	if len(jobs) < 2 {
		return nil, fmt.Errorf("workload: need at least 2 jobs to fit a model")
	}
	if timeBins == nil {
		timeBins = stats.GeometricBounds(64, 2, 131072)
	}
	sorted := job.SortBySubmit(job.CloneAll(jobs))

	inter := make([]float64, 0, len(sorted)-1)
	for i := 1; i < len(sorted); i++ {
		d := float64(sorted[i].Submit - sorted[i-1].Submit)
		if d < 1 {
			d = 1 // Weibull support is positive; merge simultaneous submits
		}
		inter = append(inter, d)
	}
	w, err := stats.FitWeibull(inter)
	if err != nil {
		return nil, fmt.Errorf("workload: interarrival fit: %w", err)
	}

	m := &Model{Interarrival: w, Joint: stats.NewJointHistogram(timeBins)}
	for _, j := range sorted {
		m.Joint.Add(j.Nodes, j.Estimate, j.Runtime)
		if j.Nodes > m.MaxNodes {
			m.MaxNodes = j.Nodes
		}
	}
	return m, nil
}

// Generate samples n jobs from the model. Submission times are cumulated
// Weibull interarrivals; node counts, requested times and actual runtimes
// come from the fitted bins; runtime <= estimate is enforced.
func (m *Model) Generate(n int, seed int64) []*job.Job {
	if n <= 0 {
		panic("workload: Generate needs n > 0")
	}
	rArr := stats.Split(seed, 10)
	rJob := stats.Split(seed, 11)
	jobs := make([]*job.Job, n)
	var t int64
	for i := 0; i < n; i++ {
		t += int64(m.Interarrival.Sample(rArr))
		nodes, est, run := m.Joint.Sample(rJob)
		jobs[i] = &job.Job{
			ID:       job.ID(i),
			Submit:   t,
			Nodes:    nodes,
			Estimate: est,
			Runtime:  run,
		}
	}
	sort.SliceStable(jobs, func(a, b int) bool { return jobs[a].Submit < jobs[b].Submit })
	job.Renumber(jobs)
	if err := validateAll(jobs, m.MaxNodes); err != nil {
		panic(err)
	}
	return jobs
}

// Probabilistic is the convenience path used by the evaluation: fit a
// model to the given trace and sample n jobs. It mirrors the paper's
// "this generates a workload that is very similar to the CTC data set".
func Probabilistic(trace []*job.Job, n int, seed int64) ([]*job.Job, error) {
	m, err := FitModel(trace, nil)
	if err != nil {
		return nil, err
	}
	return m.Generate(n, seed), nil
}
