package workload

import (
	"jobsched/internal/job"
	"jobsched/internal/stats"
)

// RandomizedConfig holds the Table 2 parameters of the paper's fully
// randomized workload ("totally randomized data ... to determine the
// performance of scheduling algorithms even in case of unusual job
// combinations"), with all parameters equally distributed.
type RandomizedConfig struct {
	// Jobs is the number of jobs (paper: 50,000).
	Jobs int
	// MaxGap is the largest interarrival gap in seconds. Table 2 demands
	// at least one job per hour: 3600.
	MaxGap int64
	// MinNodes/MaxNodes bound the node request (1–256).
	MinNodes, MaxNodes int
	// MinLimit/MaxLimit bound the execution-time upper limit
	// (5 min – 24 h).
	MinLimit, MaxLimit int64
	// MinRuntime bounds the actual execution time below (1 s); the upper
	// bound is the sampled limit.
	MinRuntime int64
	// Seed drives the sampling.
	Seed int64
}

// DefaultRandomizedConfig returns the Table 2 parameters at paper scale.
func DefaultRandomizedConfig() RandomizedConfig {
	return RandomizedConfig{
		Jobs:       RandomizedJobs,
		MaxGap:     3600,
		MinNodes:   1,
		MaxNodes:   256,
		MinLimit:   300,
		MaxLimit:   86400,
		MinRuntime: 1,
		Seed:       1,
	}
}

// Randomized generates the Table 2 workload.
func Randomized(cfg RandomizedConfig) []*job.Job {
	if cfg.Jobs <= 0 || cfg.MinNodes < 1 || cfg.MaxNodes < cfg.MinNodes ||
		cfg.MinLimit < 1 || cfg.MaxLimit < cfg.MinLimit || cfg.MinRuntime < 1 {
		panic("workload: invalid randomized config")
	}
	rArr := stats.Split(cfg.Seed, 20)
	rJob := stats.Split(cfg.Seed, 21)
	arrivals := stats.UniformArrivals(rArr, cfg.Jobs, cfg.MaxGap)
	jobs := make([]*job.Job, cfg.Jobs)
	for i := range jobs {
		limit := stats.UniformInt(rJob, cfg.MinLimit, cfg.MaxLimit)
		runtime := stats.UniformInt(rJob, cfg.MinRuntime, limit)
		jobs[i] = &job.Job{
			ID:       job.ID(i),
			Submit:   arrivals[i],
			Nodes:    int(stats.UniformInt(rJob, int64(cfg.MinNodes), int64(cfg.MaxNodes))),
			Estimate: limit,
			Runtime:  runtime,
		}
	}
	if err := validateAll(jobs, cfg.MaxNodes); err != nil {
		panic(err)
	}
	return jobs
}
