package workload

import (
	"math"
	"sort"
	"testing"

	"jobsched/internal/job"
	"jobsched/internal/trace"
)

// smallCTC returns a scaled-down CTC config for test speed.
func smallCTC(jobs int, seed int64) CTCConfig {
	cfg := DefaultCTCConfig()
	cfg.SpanSeconds = cfg.SpanSeconds * int64(jobs) / int64(cfg.Jobs)
	cfg.Jobs = jobs
	cfg.Seed = seed
	return cfg
}

func TestCTCJobCount(t *testing.T) {
	jobs := CTC(smallCTC(5000, 1))
	if len(jobs) != 5000 {
		t.Fatalf("generated %d jobs", len(jobs))
	}
}

func TestCTCPaperScaleConstant(t *testing.T) {
	// Table 1 job counts.
	if CTCJobs != 79164 || ProbabilisticJobs != 50000 || RandomizedJobs != 50000 {
		t.Fatal("Table 1 constants drifted")
	}
	if DefaultCTCConfig().Jobs != CTCJobs {
		t.Fatal("default config not paper scale")
	}
}

func TestCTCJobsAreValidAndSorted(t *testing.T) {
	jobs := CTC(smallCTC(5000, 2))
	for i, j := range jobs {
		if err := j.Validate(430, true); err != nil {
			t.Fatalf("job %d invalid: %v", i, err)
		}
		if j.ID != job.ID(i) {
			t.Fatalf("IDs not dense: %d at %d", j.ID, i)
		}
	}
	if !sort.SliceIsSorted(jobs, func(a, b int) bool {
		return jobs[a].Submit < jobs[b].Submit
	}) {
		t.Fatal("jobs not in submission order")
	}
}

func TestCTCWideJobFractionMatchesPaper(t *testing.T) {
	// "less than 0.2% of all jobs require more than 256 nodes" — allow
	// up to 0.5% for sampling noise at moderate size, and require the
	// tail to exist at paper-relevant sizes.
	jobs := CTC(smallCTC(30000, 3))
	wide := 0
	for _, j := range jobs {
		if j.Nodes > 256 {
			wide++
		}
	}
	frac := float64(wide) / float64(len(jobs))
	if frac > 0.005 {
		t.Errorf("wide-job fraction = %.4f%%, want < 0.5%%", frac*100)
	}
	if wide == 0 {
		t.Error("no jobs above 256 nodes at all; tail missing")
	}
}

func TestCTCOfferedLoadNearTarget(t *testing.T) {
	cfg := smallCTC(20000, 4)
	jobs := CTC(cfg)
	load := trace.OfferedLoad(jobs, cfg.MachineNodes)
	if math.Abs(load-cfg.TargetLoad) > 0.12 {
		t.Errorf("offered load = %.3f, want ≈ %.2f", load, cfg.TargetLoad)
	}
}

func TestCTCEstimatesAreLimitClasses(t *testing.T) {
	jobs := CTC(smallCTC(2000, 5))
	classes := map[int64]bool{}
	for _, c := range loadLevelerClasses {
		classes[c] = true
	}
	for _, j := range jobs {
		if !classes[j.Estimate] {
			t.Fatalf("estimate %d is not a limit class", j.Estimate)
		}
		if j.Runtime > j.Estimate {
			t.Fatalf("runtime above limit")
		}
	}
}

func TestCTCOverestimationPresent(t *testing.T) {
	jobs := CTC(smallCTC(5000, 6))
	s := trace.Summarize(jobs)
	if s.OverestFactor < 1.5 {
		t.Errorf("mean overestimation = %.2f, want substantial (> 1.5)", s.OverestFactor)
	}
}

func TestCTCDeterministicAcrossCalls(t *testing.T) {
	a := CTC(smallCTC(1000, 7))
	b := CTC(smallCTC(1000, 7))
	for i := range a {
		if *a[i] != *b[i] {
			t.Fatalf("job %d differs between runs with equal seeds", i)
		}
	}
	c := CTC(smallCTC(1000, 8))
	same := true
	for i := range a {
		if *a[i] != *c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestCTCDailyCycleVisible(t *testing.T) {
	jobs := CTC(smallCTC(20000, 9))
	day, night := 0, 0
	for _, j := range jobs {
		h := (j.Submit % 86400) / 3600
		if h >= 7 && h < 20 {
			day++
		} else {
			night++
		}
	}
	frac := float64(day) / float64(day+night)
	if frac < 0.65 {
		t.Errorf("prime-time submission fraction = %.2f, want > 0.65", frac)
	}
}

func TestCTCPanicsOnBadConfig(t *testing.T) {
	for _, cfg := range []CTCConfig{
		{},
		{Jobs: 10},
		{Jobs: 10, MachineNodes: 4},
		{Jobs: 10, MachineNodes: 4, SpanSeconds: 100},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %+v", cfg)
				}
			}()
			CTC(cfg)
		}()
	}
}

func TestRuntimeRangeMeanApproximation(t *testing.T) {
	lo, hi := runtimeRange(5000)
	mean := (hi - lo) / math.Log(hi/lo)
	if math.Abs(mean-5000)/5000 > 0.02 {
		t.Errorf("calibrated mean = %v, want ≈ 5000", mean)
	}
	// Unreachable target clamps at the largest class.
	_, hi = runtimeRange(1e12)
	if hi != float64(loadLevelerClasses[len(loadLevelerClasses)-1]) {
		t.Errorf("uncapped hi = %v", hi)
	}
}
