package workload

import (
	"fmt"
	"math/rand"

	"jobsched/internal/job"
	"jobsched/internal/stats"
)

// Streamer generates the Table 2 randomized workload one job at a time,
// in submission order, under constant memory — the synthetic arrival
// source for million-job streaming simulations (it satisfies
// sim.Source). For the same config it yields exactly the jobs
// Randomized returns, in the same order: the two share the RNG streams
// and sampling order, and the differential test pins that equivalence.
type Streamer struct {
	cfg  RandomizedConfig
	rArr *rand.Rand
	rJob *rand.Rand
	i    int
	t    int64
}

// NewStreamer validates the config (same constraints as Randomized) and
// positions the stream before the first job.
func NewStreamer(cfg RandomizedConfig) (*Streamer, error) {
	if cfg.Jobs <= 0 || cfg.MinNodes < 1 || cfg.MaxNodes < cfg.MinNodes ||
		cfg.MinLimit < 1 || cfg.MaxLimit < cfg.MinLimit || cfg.MinRuntime < 1 {
		return nil, fmt.Errorf("workload: invalid randomized config")
	}
	return &Streamer{
		cfg:  cfg,
		rArr: stats.Split(cfg.Seed, 20),
		rJob: stats.Split(cfg.Seed, 21),
	}, nil
}

// Next returns the next job, or (nil, nil) once cfg.Jobs have been
// yielded. Submission times are non-decreasing by construction.
func (s *Streamer) Next() (*job.Job, error) {
	if s.i >= s.cfg.Jobs {
		return nil, nil
	}
	s.t += stats.UniformInt(s.rArr, 0, s.cfg.MaxGap)
	limit := stats.UniformInt(s.rJob, s.cfg.MinLimit, s.cfg.MaxLimit)
	runtime := stats.UniformInt(s.rJob, s.cfg.MinRuntime, limit)
	j := &job.Job{
		ID:       job.ID(s.i),
		Submit:   s.t,
		Nodes:    int(stats.UniformInt(s.rJob, int64(s.cfg.MinNodes), int64(s.cfg.MaxNodes))),
		Estimate: limit,
		Runtime:  runtime,
	}
	s.i++
	if err := j.Validate(s.cfg.MaxNodes, true); err != nil {
		return nil, fmt.Errorf("workload: generated invalid job: %w", err)
	}
	return j, nil
}

// Generated returns the number of jobs yielded so far.
func (s *Streamer) Generated() int { return s.i }

// CalibratedStreamConfig returns a RandomizedConfig for n jobs whose
// arrival rate is calibrated so the offered load on a machine of the
// given node count is approximately the target fraction of capacity
// (0 < load): the mean interarrival gap is set to
// E[nodes]·E[runtime] / (load·machineNodes). The paper's Table 2 rate
// (one job per hour on 256 nodes) oversubscribes the machine several
// times over, which is fine for a 50k-job saturation study but makes a
// 10M-job run accumulate an unbounded backlog; a load below 1 keeps
// the queue — and the simulator's memory — bounded.
func CalibratedStreamConfig(n, machineNodes int, load float64, seed int64) RandomizedConfig {
	cfg := DefaultRandomizedConfig()
	cfg.Jobs = n
	cfg.Seed = seed
	if machineNodes > 0 {
		cfg.MaxNodes = machineNodes
	}
	if load > 0 {
		meanNodes := float64(cfg.MinNodes+cfg.MaxNodes) / 2
		meanLimit := float64(cfg.MinLimit+cfg.MaxLimit) / 2
		meanRuntime := (float64(cfg.MinRuntime) + meanLimit) / 2
		meanGap := meanNodes * meanRuntime / (load * float64(machineNodes))
		cfg.MaxGap = int64(2 * meanGap)
		if cfg.MaxGap < 1 {
			cfg.MaxGap = 1
		}
	}
	return cfg
}
