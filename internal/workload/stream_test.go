package workload

import (
	"testing"

	"jobsched/internal/job"
)

// TestStreamerMatchesRandomized: the streaming generator must yield
// exactly the jobs the slice generator produces, in order.
func TestStreamerMatchesRandomized(t *testing.T) {
	cfg := DefaultRandomizedConfig()
	cfg.Jobs = 2000
	cfg.Seed = 42
	want := Randomized(cfg)
	s, err := NewStreamer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var got []*job.Job
	for {
		j, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if j == nil {
			break
		}
		got = append(got, j)
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d jobs, slice generator %d", len(got), len(want))
	}
	if s.Generated() != cfg.Jobs {
		t.Errorf("Generated() = %d", s.Generated())
	}
	for i := range want {
		if *got[i] != *want[i] {
			t.Fatalf("job %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
	// Exhausted stream keeps returning (nil, nil).
	if j, err := s.Next(); j != nil || err != nil {
		t.Errorf("post-end Next: %v, %v", j, err)
	}
}

func TestStreamerSubmitNonDecreasing(t *testing.T) {
	s, err := NewStreamer(CalibratedStreamConfig(500, 128, 0.7, 9))
	if err != nil {
		t.Fatal(err)
	}
	last := int64(-1)
	for {
		j, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if j == nil {
			break
		}
		if j.Submit < last {
			t.Fatalf("submit went backwards: %d after %d", j.Submit, last)
		}
		last = j.Submit
	}
}

func TestStreamerRejectsBadConfig(t *testing.T) {
	cfg := DefaultRandomizedConfig()
	cfg.Jobs = 0
	if _, err := NewStreamer(cfg); err == nil {
		t.Fatal("zero-job config accepted")
	}
}

// TestCalibratedLoad: the calibrated config's offered load (total job
// area over machine capacity across the submission span) must land near
// the target.
func TestCalibratedLoad(t *testing.T) {
	const nodes = 256
	for _, load := range []float64{0.5, 0.8} {
		cfg := CalibratedStreamConfig(20000, nodes, load, 3)
		jobs := Randomized(cfg)
		var area float64
		for _, j := range jobs {
			area += float64(j.Nodes) * float64(j.Runtime)
		}
		_, last := job.Span(jobs)
		got := area / (float64(last) * nodes)
		if got < load*0.85 || got > load*1.15 {
			t.Errorf("target load %.2f: offered %.3f", load, got)
		}
	}
}
