package workload

import (
	"math"
	"sort"

	"jobsched/internal/job"
	"jobsched/internal/stats"
)

// CTCConfig parameterizes the synthetic CTC trace model. The defaults
// are calibrated to the published characteristics of the CTC SP2 batch
// workload (Hotovy, JSSPP'96; Feitelson's Parallel Workloads Archive):
// 430-node batch partition, ~11 months, power-of-two–biased job widths
// with < 0.2% of jobs above 256 nodes, LoadLeveler runtime-limit classes,
// substantial user overestimation, day/week submission cycles, and
// ≈ 55–60% offered load.
type CTCConfig struct {
	// Jobs is the number of jobs to generate (paper: 79,164).
	Jobs int
	// MachineNodes is the traced machine's batch partition (430).
	MachineNodes int
	// SpanSeconds is the target trace duration (~11 months).
	SpanSeconds int64
	// TargetLoad is the offered utilization on MachineNodes (0.58).
	TargetLoad float64
	// Seed drives all sampling.
	Seed int64
}

// DefaultCTCConfig returns the paper-scale configuration.
func DefaultCTCConfig() CTCConfig {
	return CTCConfig{
		Jobs:         CTCJobs,
		MachineNodes: 430,
		SpanSeconds:  334 * 24 * 3600, // July 1996 – May 1997
		// 0.66 offered load on 430 nodes ≈ 1.10 on the 256-node batch
		// partition — the sustained-overload regime whose growing backlog
		// the paper reports for the replayed trace ("a machine with 256
		// nodes will experience a larger backlog which results in a longer
		// average response time"). Calibrated against the Table 3 shapes;
		// see EXPERIMENTS.md.
		TargetLoad: 0.66,
		Seed:       1,
	}
}

// ctcNodeDist is the job-width distribution: strong mass on small and
// power-of-two widths, a thin tail above 256 nodes (< 0.2% of jobs, the
// fraction the paper deletes when replaying on the 256-node machine).
func ctcNodeDist() *stats.Discrete {
	values := []int64{1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 24, 32, 48, 64, 96, 128, 160, 200, 256, 288, 330, 430}
	weights := []float64{
		0.24, 0.09, 0.03, 0.10, 0.02, 0.02, 0.10, 0.02, 0.02, 0.10,
		0.02, 0.08, 0.015, 0.06, 0.01, 0.035, 0.004, 0.003, 0.013,
		0.0008, 0.0006, 0.0005,
	}
	return stats.NewDiscrete(values, weights)
}

// loadLevelerClasses are the runtime-limit classes users pick from
// (LoadLeveler queue limits at the CTC): 15 min to 18 h.
var loadLevelerClasses = []int64{900, 1800, 3600, 7200, 14400, 21600, 43200, 64800}

// CTC generates the synthetic CTC-like trace. Jobs are returned in
// submission order with dense IDs; every job satisfies strict validation
// (runtime <= estimate <= largest class).
func CTC(cfg CTCConfig) []*job.Job {
	if cfg.Jobs <= 0 || cfg.MachineNodes <= 0 || cfg.SpanSeconds <= 0 || cfg.TargetLoad <= 0 {
		panic("workload: invalid CTC config")
	}
	rArr := stats.Split(cfg.Seed, 1)
	rNode := stats.Split(cfg.Seed, 2)
	rRun := stats.Split(cfg.Seed, 3)
	rEst := stats.Split(cfg.Seed, 4)

	nodes := ctcNodeDist()
	rate := stats.DailyWeeklyRate(0.25, 0.5)

	// Calibrate the peak arrival rate so that cfg.Jobs arrivals span
	// roughly cfg.SpanSeconds: peak = n / (meanModulation × span).
	meanMod := meanModulation(rate)
	peak := float64(cfg.Jobs) / (meanMod * float64(cfg.SpanSeconds))
	arrivals := stats.PoissonArrivals(rArr, cfg.Jobs, peak, 7*24*3600, rate)

	// Calibrate runtimes so the offered load hits the target:
	// meanArea = TargetLoad × MachineNodes × Span / Jobs. Widths and
	// runtimes are sampled independently (log-uniform runtimes), then the
	// runtime scale is set from the achieved mean width.
	jobs := make([]*job.Job, cfg.Jobs)
	var meanNodes float64
	widths := make([]int, cfg.Jobs)
	for i := range widths {
		widths[i] = int(nodes.Sample(rNode))
		meanNodes += float64(widths[i])
	}
	meanNodes /= float64(cfg.Jobs)
	wantMeanArea := cfg.TargetLoad * float64(cfg.MachineNodes) * float64(cfg.SpanSeconds) / float64(cfg.Jobs)
	wantMeanRuntime := wantMeanArea / meanNodes
	lo, hi := runtimeRange(wantMeanRuntime)

	for i := range jobs {
		runtime := int64(stats.LogUniform(rRun, lo, hi))
		if runtime < 1 {
			runtime = 1
		}
		maxClass := loadLevelerClasses[len(loadLevelerClasses)-1]
		if runtime > maxClass {
			runtime = maxClass
		}
		// Users overestimate: pick the smallest limit class covering
		// runtime × f with f log-uniform in [1, 8].
		f := stats.LogUniform(rEst, 1, 8)
		want := int64(float64(runtime) * f)
		estimate := maxClass
		for _, c := range loadLevelerClasses {
			if c >= want && c >= runtime {
				estimate = c
				break
			}
		}
		jobs[i] = &job.Job{
			ID:       job.ID(i),
			Submit:   arrivals[i],
			Nodes:    widths[i],
			Runtime:  runtime,
			Estimate: estimate,
		}
	}
	sort.SliceStable(jobs, func(a, b int) bool { return jobs[a].Submit < jobs[b].Submit })
	job.Renumber(jobs)
	if err := validateAll(jobs, cfg.MachineNodes); err != nil {
		panic(err)
	}
	return jobs
}

// runtimeRange returns log-uniform bounds [lo, hi] whose mean
// (hi-lo)/ln(hi/lo) approximates the wanted mean runtime, anchored at a
// 10-second minimum and capped at the largest limit class.
func runtimeRange(wantMean float64) (lo, hi float64) {
	lo = 10
	maxClass := float64(loadLevelerClasses[len(loadLevelerClasses)-1])
	// Solve (hi-lo)/ln(hi/lo) = wantMean for hi by bisection.
	f := func(h float64) float64 {
		return (h - lo) / logRatio(h, lo)
	}
	a, b := lo*1.01, maxClass
	if f(b) <= wantMean {
		return lo, maxClass
	}
	for i := 0; i < 100; i++ {
		mid := (a + b) / 2
		if f(mid) < wantMean {
			a = mid
		} else {
			b = mid
		}
	}
	return lo, (a + b) / 2
}

func logRatio(h, l float64) float64 {
	return math.Log(h / l)
}

// meanModulation numerically averages a rate function over one week.
func meanModulation(rate stats.RateFunc) float64 {
	const step = 600 // 10-minute resolution
	var sum float64
	n := 0
	for t := int64(0); t < 7*24*3600; t += step {
		sum += rate(t)
		n++
	}
	return sum / float64(n)
}
