package workload

import (
	"sort"
	"testing"

	"jobsched/internal/job"
)

func smallFeitelson(jobs int, seed int64) FeitelsonConfig {
	cfg := DefaultFeitelsonConfig()
	cfg.Jobs = jobs
	cfg.Seed = seed
	return cfg
}

func TestFeitelsonJobCountAndValidity(t *testing.T) {
	jobs := Feitelson(smallFeitelson(5000, 1))
	if len(jobs) != 5000 {
		t.Fatalf("generated %d jobs", len(jobs))
	}
	for i, j := range jobs {
		if err := j.Validate(256, true); err != nil {
			t.Fatal(err)
		}
		if j.ID != job.ID(i) {
			t.Fatal("IDs not dense")
		}
	}
	if !sort.SliceIsSorted(jobs, func(a, b int) bool {
		return jobs[a].Submit < jobs[b].Submit
	}) {
		t.Fatal("not in submission order")
	}
}

func TestFeitelsonPow2Emphasis(t *testing.T) {
	jobs := Feitelson(smallFeitelson(30000, 2))
	pow2, other := 0, 0
	for _, j := range jobs {
		if j.Nodes&(j.Nodes-1) == 0 {
			pow2++
		} else {
			other++
		}
	}
	frac := float64(pow2) / float64(pow2+other)
	// Powers of two are 9 of 256 sizes but must attract a large share.
	if frac < 0.5 {
		t.Errorf("power-of-two fraction = %.2f, want > 0.5", frac)
	}
}

func TestFeitelsonSizeLengthCorrelation(t *testing.T) {
	jobs := Feitelson(smallFeitelson(30000, 3))
	var smallSum, smallN, bigSum, bigN float64
	for _, j := range jobs {
		if j.Nodes <= 4 {
			smallSum += float64(j.Runtime)
			smallN++
		} else if j.Nodes >= 64 {
			bigSum += float64(j.Runtime)
			bigN++
		}
	}
	if smallN == 0 || bigN == 0 {
		t.Fatal("size classes not populated")
	}
	if bigSum/bigN <= smallSum/smallN {
		t.Errorf("big jobs (%.0f s mean) not longer than small jobs (%.0f s mean)",
			bigSum/bigN, smallSum/smallN)
	}
}

func TestFeitelsonBurstsRepeatJobs(t *testing.T) {
	jobs := Feitelson(smallFeitelson(20000, 4))
	// Bursts resubmit identical (nodes, runtime) pairs: the number of
	// distinct pairs must be clearly below the job count.
	type key struct {
		n int
		r int64
	}
	distinct := map[key]bool{}
	for _, j := range jobs {
		distinct[key{j.Nodes, j.Runtime}] = true
	}
	if frac := float64(len(distinct)) / float64(len(jobs)); frac > 0.6 {
		t.Errorf("distinct job fraction = %.2f — bursts missing", frac)
	}
}

func TestFeitelsonDeterministic(t *testing.T) {
	a := Feitelson(smallFeitelson(1000, 5))
	b := Feitelson(smallFeitelson(1000, 5))
	for i := range a {
		if *a[i] != *b[i] {
			t.Fatal("not deterministic")
		}
	}
}

func TestFeitelsonPanicsOnBadConfig(t *testing.T) {
	bad := []FeitelsonConfig{
		{},
		{Jobs: 10, MaxNodes: 8, MeanInterarrival: 0, Pow2Boost: 0.2, RepeatProb: 0.5},
		{Jobs: 10, MaxNodes: 8, MeanInterarrival: 60, Pow2Boost: 1, RepeatProb: 0.5},
		{Jobs: 10, MaxNodes: 8, MeanInterarrival: 60, Pow2Boost: 0.2, RepeatProb: 1},
	}
	for _, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %+v", cfg)
				}
			}()
			Feitelson(cfg)
		}()
	}
}
