package workload

import (
	"math"
	"sort"

	"jobsched/internal/job"
	"jobsched/internal/stats"
)

// FeitelsonConfig parameterizes the Feitelson'96 synthetic workload
// model, the canonical generator of the Parallel Workloads Archive the
// paper cites as [1] (and whose metrics methodology is [3]). The model's
// signature properties: job sizes follow a harmonic distribution with
// extra mass on powers of two and on size 1; runtimes are two-stage
// hyperexponential with the mean correlated to job size; jobs repeat in
// bursts (a user resubmits the same program several times).
type FeitelsonConfig struct {
	// Jobs is the number of jobs to generate.
	Jobs int
	// MaxNodes is the largest job size (machine width).
	MaxNodes int
	// MeanInterarrival is the mean gap between *distinct* job arrivals
	// in seconds; repeats of a job follow their predecessor immediately
	// after completion-like gaps.
	MeanInterarrival float64
	// Pow2Boost is the extra probability mass attracted by power-of-two
	// sizes (model value ≈ 0.25 of total).
	Pow2Boost float64
	// RepeatProb is the probability that a job is resubmitted again
	// (geometric burst lengths; model value 0.9 gives mean 10 runs —
	// we default to a tamer 0.75).
	RepeatProb float64
	// Seed drives the sampling.
	Seed int64
}

// DefaultFeitelsonConfig returns a 256-node configuration sized to the
// paper's artificial workloads.
func DefaultFeitelsonConfig() FeitelsonConfig {
	return FeitelsonConfig{
		Jobs:             ProbabilisticJobs,
		MaxNodes:         256,
		MeanInterarrival: 900,
		Pow2Boost:        0.25,
		RepeatProb:       0.75,
		Seed:             1,
	}
}

// Feitelson generates the synthetic workload. Jobs are returned in
// submission order with dense IDs and strict validity.
func Feitelson(cfg FeitelsonConfig) []*job.Job {
	if cfg.Jobs <= 0 || cfg.MaxNodes <= 0 || cfg.MeanInterarrival <= 0 ||
		cfg.Pow2Boost < 0 || cfg.Pow2Boost >= 1 ||
		cfg.RepeatProb < 0 || cfg.RepeatProb >= 1 {
		panic("workload: invalid Feitelson config")
	}
	rSize := stats.Split(cfg.Seed, 41)
	rTime := stats.Split(cfg.Seed, 42)
	rArr := stats.Split(cfg.Seed, 43)
	sizes := feitelsonSizeDist(cfg.MaxNodes, cfg.Pow2Boost)

	jobs := make([]*job.Job, 0, cfg.Jobs)
	var t int64
	for len(jobs) < cfg.Jobs {
		t += int64(stats.Exponential(rArr, cfg.MeanInterarrival))
		nodes := int(sizes.Sample(rSize))
		runtime := feitelsonRuntime(rTime, nodes, cfg.MaxNodes)
		// Burst: the job repeats with probability RepeatProb, each
		// repeat submitted a short think-time after the previous.
		at := t
		for {
			est := runtime * stats.UniformInt(rTime, 1, 5)
			jobs = append(jobs, &job.Job{
				ID:       job.ID(len(jobs)),
				Submit:   at,
				Nodes:    nodes,
				Runtime:  runtime,
				Estimate: est,
			})
			if len(jobs) >= cfg.Jobs || rTime.Float64() >= cfg.RepeatProb {
				break
			}
			at += runtime + int64(stats.Exponential(rArr, 120))
		}
	}
	sort.SliceStable(jobs, func(a, b int) bool { return jobs[a].Submit < jobs[b].Submit })
	job.Renumber(jobs)
	if err := validateAll(jobs, cfg.MaxNodes); err != nil {
		panic(err)
	}
	return jobs
}

// feitelsonSizeDist builds the harmonic size distribution with
// power-of-two emphasis: P(n) ∝ 1/n^1.5 for general n, with the boost
// fraction redistributed onto powers of two (and size 1).
func feitelsonSizeDist(maxNodes int, boost float64) *stats.Discrete {
	values := make([]int64, maxNodes)
	weights := make([]float64, maxNodes)
	var base, pow2 float64
	isPow2 := func(n int) bool { return n&(n-1) == 0 }
	for n := 1; n <= maxNodes; n++ {
		values[n-1] = int64(n)
		weights[n-1] = 1 / math.Pow(float64(n), 1.5)
		base += weights[n-1]
		if isPow2(n) {
			pow2 += weights[n-1]
		}
	}
	// Scale power-of-two entries so they carry `boost` extra relative
	// mass.
	factor := 1 + boost*base/pow2
	for n := 1; n <= maxNodes; n++ {
		if isPow2(n) {
			weights[n-1] *= factor
		}
	}
	return stats.NewDiscrete(values, weights)
}

// feitelsonRuntime draws a two-stage hyperexponential runtime whose
// long-branch probability grows with job size (bigger jobs run longer),
// the model's size/length correlation.
func feitelsonRuntime(r interface {
	Float64() float64
	ExpFloat64() float64
}, nodes, maxNodes int) int64 {
	pLong := 0.2 + 0.5*float64(nodes)/float64(maxNodes)
	var mean float64
	if r.Float64() < pLong {
		mean = 7200 // long branch: mean 2 h
	} else {
		mean = 600 // short branch: mean 10 min
	}
	t := int64(r.ExpFloat64() * mean)
	if t < 1 {
		t = 1
	}
	if t > 86400 {
		t = 86400
	}
	return t
}
