// Package workload implements the three workload classes of the paper's
// Section 6:
//
//   - a CTC-like trace model (substituting the real Cornell Theory Center
//     trace, which is not redistributable — see DESIGN.md §3),
//   - a probability-distribution workload fitted from a trace
//     (Weibull submission model + per-node-count time histograms), and
//   - a fully randomized workload (Table 2).
//
// All generators are deterministic given a seed.
package workload

import (
	"fmt"

	"jobsched/internal/job"
)

// Paper-scale job counts (Table 1).
const (
	// CTCJobs is the CTC workload size of Table 1.
	CTCJobs = 79164
	// ProbabilisticJobs is the probability-distribution workload size.
	ProbabilisticJobs = 50000
	// RandomizedJobs is the randomized workload size.
	RandomizedJobs = 50000
)

// Validate checks every generated job against the machine and strict
// kill-at-limit consistency; generators call it before returning.
func validateAll(jobs []*job.Job, maxNodes int) error {
	for _, j := range jobs {
		if err := j.Validate(maxNodes, true); err != nil {
			return fmt.Errorf("workload: generated invalid job: %w", err)
		}
	}
	return nil
}
