package workload

import (
	"testing"
	"testing/quick"

	"jobsched/internal/job"
)

func smallRandomized(jobs int, seed int64) RandomizedConfig {
	cfg := DefaultRandomizedConfig()
	cfg.Jobs = jobs
	cfg.Seed = seed
	return cfg
}

func TestRandomizedTable2Ranges(t *testing.T) {
	// Table 2: submission ≥ 1 job/hour; nodes 1–256; limit 5 min–24 h;
	// actual 1 s–limit.
	jobs := Randomized(smallRandomized(20000, 1))
	prev := int64(0)
	for _, j := range jobs {
		if gap := j.Submit - prev; gap < 0 || gap > 3600 {
			t.Fatalf("interarrival gap %d outside [0,3600]", gap)
		}
		prev = j.Submit
		if j.Nodes < 1 || j.Nodes > 256 {
			t.Fatalf("nodes %d outside [1,256]", j.Nodes)
		}
		if j.Estimate < 300 || j.Estimate > 86400 {
			t.Fatalf("limit %d outside [300,86400]", j.Estimate)
		}
		if j.Runtime < 1 || j.Runtime > j.Estimate {
			t.Fatalf("runtime %d outside [1,limit]", j.Runtime)
		}
	}
}

func TestRandomizedCoversExtremes(t *testing.T) {
	jobs := Randomized(smallRandomized(50000, 2))
	var sawThin, sawWide, sawShortLimit, sawLongLimit bool
	for _, j := range jobs {
		if j.Nodes == 1 {
			sawThin = true
		}
		if j.Nodes == 256 {
			sawWide = true
		}
		if j.Estimate < 600 {
			sawShortLimit = true
		}
		if j.Estimate > 80000 {
			sawLongLimit = true
		}
	}
	if !sawThin || !sawWide || !sawShortLimit || !sawLongLimit {
		t.Errorf("extremes not covered: thin=%v wide=%v short=%v long=%v",
			sawThin, sawWide, sawShortLimit, sawLongLimit)
	}
}

func TestRandomizedDeterministic(t *testing.T) {
	a := Randomized(smallRandomized(1000, 3))
	b := Randomized(smallRandomized(1000, 3))
	for i := range a {
		if *a[i] != *b[i] {
			t.Fatal("not deterministic")
		}
	}
}

func TestRandomizedJobsValidProperty(t *testing.T) {
	f := func(seed int64) bool {
		jobs := Randomized(smallRandomized(200, seed))
		for i, j := range jobs {
			if j.Validate(256, true) != nil || j.ID != job.ID(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomizedPanicsOnBadConfig(t *testing.T) {
	bad := []RandomizedConfig{
		{},
		{Jobs: 10, MinNodes: 0, MaxNodes: 5, MinLimit: 1, MaxLimit: 2, MinRuntime: 1},
		{Jobs: 10, MinNodes: 5, MaxNodes: 4, MinLimit: 1, MaxLimit: 2, MinRuntime: 1},
		{Jobs: 10, MinNodes: 1, MaxNodes: 4, MinLimit: 9, MaxLimit: 2, MinRuntime: 1},
		{Jobs: 10, MinNodes: 1, MaxNodes: 4, MinLimit: 1, MaxLimit: 2, MinRuntime: 0},
	}
	for _, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %+v", cfg)
				}
			}()
			Randomized(cfg)
		}()
	}
}
