package workload

import (
	"testing"

	"jobsched/internal/job"
	"jobsched/internal/stats"
)

// TestProbabilisticModelKS applies the paper's Section 6.2 verification
// ("conformity with future real job data is essential and must be
// verified") mechanically: Kolmogorov–Smirnov tests between the source
// trace and the generated workload on the distributions the model is
// supposed to preserve.
func TestProbabilisticModelKS(t *testing.T) {
	src := CTC(smallCTC(20000, 41))
	gen, err := Probabilistic(src, 20000, 42)
	if err != nil {
		t.Fatal(err)
	}

	interarrivals := func(jobs []*job.Job) []float64 {
		sorted := job.SortBySubmit(job.CloneAll(jobs))
		out := make([]float64, 0, len(sorted)-1)
		for i := 1; i < len(sorted); i++ {
			out = append(out, float64(sorted[i].Submit-sorted[i-1].Submit))
		}
		return out
	}
	runtimes := func(jobs []*job.Job) []float64 {
		out := make([]float64, len(jobs))
		for i, j := range jobs {
			out[i] = float64(j.Runtime)
		}
		return out
	}
	nodes := func(jobs []*job.Job) []float64 {
		out := make([]float64, len(jobs))
		for i, j := range jobs {
			out[i] = float64(j.Nodes)
		}
		return out
	}

	// The model is an approximation (Weibull interarrivals, binned
	// times), so instead of a strict hypothesis test at huge n — which
	// rejects any approximation — we require the KS distance itself to
	// be small: distributions within a few percent everywhere.
	cases := []struct {
		name    string
		a, b    []float64
		maxDist float64
	}{
		{"interarrival", interarrivals(src), interarrivals(gen), 0.08},
		{"runtime", runtimes(src), runtimes(gen), 0.05},
		{"nodes", nodes(src), nodes(gen), 0.03},
	}
	for _, c := range cases {
		d := stats.KSStatistic(c.a, c.b)
		if d > c.maxDist {
			t.Errorf("%s: KS distance %.4f > %.4f", c.name, d, c.maxDist)
		} else {
			t.Logf("%s: KS distance %.4f (bound %.4f)", c.name, d, c.maxDist)
		}
	}
}

// TestWeibullFitQuality validates the fitted submission model against
// its own sample — the one-sample KS distance of the source
// interarrivals against the fitted Weibull CDF must be moderate (the
// true process is only approximately Weibull; the paper's phrasing is
// "a Weibull distribution matches best").
func TestWeibullFitQuality(t *testing.T) {
	src := CTC(smallCTC(20000, 43))
	m, err := FitModel(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	sorted := job.SortBySubmit(job.CloneAll(src))
	inter := make([]float64, 0, len(sorted)-1)
	for i := 1; i < len(sorted); i++ {
		d := float64(sorted[i].Submit - sorted[i-1].Submit)
		if d < 1 {
			d = 1
		}
		inter = append(inter, d)
	}
	d := stats.KSAgainstCDF(inter, m.Interarrival.CDF)
	if d > 0.10 {
		t.Errorf("Weibull fit KS distance %.4f > 0.10 — fit degraded", d)
	} else {
		t.Logf("Weibull fit KS distance %.4f", d)
	}
}
