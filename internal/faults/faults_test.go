package faults

import (
	"reflect"
	"testing"

	"jobsched/internal/job"
	"jobsched/internal/sim"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{
		MachineNodes: 16, Horizon: 200_000, Seed: 42,
		MTBF: 5_000, MTTR: 600, FailShape: 0.7, RepairShape: 2,
		NodesPerFailure: 2,
		Maintenance: []Window{
			{At: 10_000, Duration: 1_000, Nodes: 4, Every: 50_000},
		},
	}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config produced different plans")
	}
	if len(a.Failures) == 0 || a.Stochastic() == 0 || len(a.Announced) == 0 {
		t.Fatalf("plan unexpectedly empty: %d failures, %d stochastic, %d announced",
			len(a.Failures), a.Stochastic(), len(a.Announced))
	}
}

func TestGenerateExponentialRate(t *testing.T) {
	cfg := Config{
		MachineNodes: 16, Horizon: 1_000_000, Seed: 7,
		MTBF: 10_000, MTTR: 300,
	}
	p, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Expect roughly horizon/MTBF = 100 failures; allow a generous band.
	n := p.Stochastic()
	if n < 50 || n > 200 {
		t.Fatalf("got %d stochastic failures for MTBF 10k over 1M s, want ~100", n)
	}
	for _, f := range p.Failures {
		if f.At < 0 || f.At >= cfg.Horizon {
			t.Fatalf("failure onset %d outside [0, horizon)", f.At)
		}
		if f.Duration < 1 || f.Nodes < 1 {
			t.Fatalf("degenerate failure %+v", f)
		}
	}
}

func TestGenerateShapeMatters(t *testing.T) {
	base := Config{MachineNodes: 16, Horizon: 500_000, Seed: 3, MTBF: 5_000, MTTR: 300}
	bursty, regular := base, base
	bursty.FailShape = 0.5
	regular.FailShape = 3
	a, err := Generate(bursty)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(regular)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Failures, b.Failures) {
		t.Fatal("shape parameter had no effect on the plan")
	}
}

func TestMaintenanceExpansion(t *testing.T) {
	cfg := Config{
		MachineNodes: 8, Horizon: 1_000,
		Maintenance: []Window{
			{At: 100, Duration: 50, Nodes: 8},                     // one-shot
			{At: 0, Duration: 10, Nodes: 1, Every: 300, Count: 2}, // bounded recurrence
			{At: 200, Duration: 20, Nodes: 2, Every: 400},         // recur to horizon
		},
	}
	p, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := []sim.Failure{
		{At: 0, Nodes: 1, Duration: 10},
		{At: 100, Nodes: 8, Duration: 50},
		{At: 200, Nodes: 2, Duration: 20},
		{At: 300, Nodes: 1, Duration: 10},
		{At: 600, Nodes: 2, Duration: 20},
	}
	if !reflect.DeepEqual(p.Announced, want) {
		t.Fatalf("announced = %+v, want %+v", p.Announced, want)
	}
	// With no stochastic process the full plan IS the maintenance plan.
	if !reflect.DeepEqual(p.Failures, p.Announced) {
		t.Fatalf("failures = %+v, want the announced windows only", p.Failures)
	}
}

func TestConcurrencyCap(t *testing.T) {
	cfg := Config{
		MachineNodes: 10, Horizon: 100_000, Seed: 11,
		MTBF: 50, MTTR: 5_000, // repairs far slower than failures: heavy overlap
		NodesPerFailure: 4, MaxDownFraction: 0.5,
	}
	p, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Failures) == 0 {
		t.Fatal("no failures generated")
	}
	for _, f := range p.Failures {
		if d := downAt(p.Failures, f.At); d > 5 {
			t.Fatalf("%d nodes down at t=%d, cap is 5", d, f.At)
		}
	}
}

func TestGenerateSimulates(t *testing.T) {
	// End-to-end: a generated plan drives a real simulation without
	// tripping any engine or schedule invariant.
	cfg := Config{
		MachineNodes: 8, Horizon: 20_000, Seed: 5,
		MTBF: 1_000, MTTR: 200,
		Maintenance: []Window{{At: 5_000, Duration: 500, Nodes: 4}},
	}
	p, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]*job.Job, 40)
	for i := range jobs {
		jobs[i] = &job.Job{
			ID: job.ID(i), Submit: int64(i) * 250,
			Runtime: 300, Estimate: 300, Nodes: 1 + i%4,
		}
	}
	res, err := sim.RunChecked(sim.Machine{Nodes: 8}, jobs, newFIFO(), sim.Options{
		Failures: p.Failures,
	})
	if err != nil {
		t.Fatal(err)
	}
	completed := 0
	for _, a := range res.Schedule.Allocs {
		if !a.Aborted {
			completed++
		}
	}
	if completed != len(jobs) {
		t.Fatalf("%d of %d jobs completed", completed, len(jobs))
	}
}

func TestConfigErrors(t *testing.T) {
	bad := []Config{
		{MachineNodes: 0},
		{MachineNodes: 4, MTBF: 100},                        // MTTR missing
		{MachineNodes: 4, MTBF: 100, MTTR: 10},              // horizon missing
		{MachineNodes: 4, MTBF: -1, MTTR: 10, Horizon: 100}, // negative rate
		{MachineNodes: 4, NodesPerFailure: 5, MTBF: 1, MTTR: 1, Horizon: 10},
		{MachineNodes: 4, MaxDownFraction: 2, MTBF: 1, MTTR: 1, Horizon: 10},
		{MachineNodes: 4, Maintenance: []Window{{At: -1, Duration: 5, Nodes: 1}}},
		{MachineNodes: 4, Maintenance: []Window{{At: 0, Duration: 0, Nodes: 1}}},
		{MachineNodes: 4, Maintenance: []Window{{At: 0, Duration: 5, Nodes: 9}}},
		{MachineNodes: 4, Maintenance: []Window{{At: 0, Duration: 5, Nodes: 1, Every: 3}}},  // period < duration
		{MachineNodes: 4, Maintenance: []Window{{At: 0, Duration: 5, Nodes: 1, Every: 10}}}, // unbounded, no horizon
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}
