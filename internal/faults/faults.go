// Package faults generates hardware-outage schedules for the simulator:
// seeded stochastic node-failure processes (exponential or Weibull
// MTBF/MTTR) and scheduled maintenance drains, compiled deterministically
// into a validated []sim.Failure.
//
// The paper's Section 2 names machine influences "which cannot be
// controlled by the scheduling system"; hand-written failure lists cover
// unit tests, but failure-sweep experiments need *models*: a mean time
// between failures, a mean time to repair, a shape knob for burstiness,
// and maintenance windows that — unlike surprise failures — are announced
// to the scheduler in advance so failure-aware backfilling can reserve
// around them (sched.Config.Announced).
//
// Everything is reproducible: the same Config yields bit-identical plans
// on every run and platform, because all randomness flows from
// stats.Split(Seed, stream) and sampling order is fixed (every candidate
// event consumes its random draws even when the concurrency cap later
// rejects it).
package faults

import (
	"fmt"
	"math"

	"jobsched/internal/job"
	"jobsched/internal/sim"
	"jobsched/internal/stats"
)

// Window is a scheduled maintenance drain: Nodes nodes are taken down at
// At for Duration seconds, optionally recurring every Every seconds.
// Unlike stochastic failures, windows are announced: they appear in
// Plan.Announced so schedulers can plan around them.
type Window struct {
	// At is the onset of the first occurrence (seconds, >= 0).
	At int64
	// Duration is the length of each occurrence (seconds, > 0).
	Duration int64
	// Nodes is how many nodes the drain takes down (1..MachineNodes).
	Nodes int
	// Every is the recurrence period (0 = one-shot).
	Every int64
	// Count bounds the number of occurrences when Every > 0;
	// 0 means recur until Config.Horizon.
	Count int
}

// Config parameterizes a failure plan.
type Config struct {
	// MachineNodes is the machine size the plan must respect.
	MachineNodes int
	// Horizon bounds event onsets: no failure or window occurrence starts
	// at or after Horizon. Required for stochastic failures and unbounded
	// recurring windows.
	Horizon int64
	// Seed drives all randomness (two independent streams are derived:
	// failure gaps and repair durations).
	Seed int64

	// MTBF is the mean time between stochastic failure onsets in seconds
	// (0 disables the stochastic process).
	MTBF float64
	// MTTR is the mean time to repair in seconds (required when MTBF > 0).
	MTTR float64
	// FailShape is the Weibull shape of the inter-failure gaps:
	// 1 (or 0, the default) is exponential — the memoryless baseline;
	// < 1 yields bursty failures, > 1 regular wear-out style failures.
	FailShape float64
	// RepairShape is the Weibull shape of the repair durations
	// (0 defaults to 1 = exponential).
	RepairShape float64
	// NodesPerFailure is how many nodes one stochastic failure takes down
	// (0 defaults to 1).
	NodesPerFailure int
	// MaxDownFraction caps the fraction of the machine that stochastic
	// failures may hold down simultaneously (counting overlap with
	// maintenance windows); candidate events beyond the cap are dropped.
	// 0 defaults to 0.5; the cap keeps generated plans absorbable so
	// sim.Run never faces more concurrent downtime than the machine.
	MaxDownFraction float64

	// Maintenance lists announced drain windows.
	Maintenance []Window
}

// Plan is a compiled failure schedule. Failures is everything the engine
// injects (stochastic outages plus maintenance occurrences), validated
// and sorted by onset; Announced is the maintenance subset — the windows
// known in advance — in the form schedulers accept.
type Plan struct {
	Failures  []sim.Failure
	Announced []sim.Failure
}

// Stochastic returns the number of non-announced (surprise) outages.
func (p Plan) Stochastic() int { return len(p.Failures) - len(p.Announced) }

// Generate compiles the configuration into a validated failure plan.
// Identical configurations yield identical plans.
func Generate(cfg Config) (Plan, error) {
	if cfg.MachineNodes <= 0 {
		return Plan{}, fmt.Errorf("faults: machine needs at least one node")
	}
	if cfg.MTBF < 0 || cfg.MTTR < 0 {
		return Plan{}, fmt.Errorf("faults: MTBF/MTTR must be >= 0")
	}
	if cfg.MTBF > 0 && cfg.MTTR == 0 {
		return Plan{}, fmt.Errorf("faults: MTBF %.0f needs a positive MTTR", cfg.MTBF)
	}
	if cfg.MTBF > 0 && cfg.Horizon <= 0 {
		return Plan{}, fmt.Errorf("faults: stochastic failures need a positive horizon")
	}
	nodesPer := cfg.NodesPerFailure
	if nodesPer == 0 {
		nodesPer = 1
	}
	if nodesPer < 0 || nodesPer > cfg.MachineNodes {
		return Plan{}, fmt.Errorf("faults: %d nodes per failure on a %d-node machine",
			cfg.NodesPerFailure, cfg.MachineNodes)
	}
	frac := cfg.MaxDownFraction
	if frac == 0 {
		frac = 0.5
	}
	if frac < 0 || frac > 1 || math.IsNaN(frac) {
		return Plan{}, fmt.Errorf("faults: MaxDownFraction %v outside (0, 1]", cfg.MaxDownFraction)
	}
	capNodes := int(frac * float64(cfg.MachineNodes))
	if capNodes < 1 {
		capNodes = 1
	}

	announced, err := expandMaintenance(cfg)
	if err != nil {
		return Plan{}, err
	}

	all := append([]sim.Failure(nil), announced...)
	if cfg.MTBF > 0 {
		// Stream 0: inter-failure gaps; stream 1: repair durations.
		gaps := stats.Split(cfg.Seed, 0)
		repairs := stats.Split(cfg.Seed, 1)
		gapDist, err := weibullWithMean(cfg.MTBF, cfg.FailShape)
		if err != nil {
			return Plan{}, fmt.Errorf("faults: failure process: %w", err)
		}
		repDist, err := weibullWithMean(cfg.MTTR, cfg.RepairShape)
		if err != nil {
			return Plan{}, fmt.Errorf("faults: repair process: %w", err)
		}
		var t int64
		for {
			// Both draws happen before the cap check so that widening or
			// narrowing the cap never shifts the random stream of later
			// events — plans stay comparable across cap settings.
			gap := toSeconds(gapDist.Sample(gaps))
			dur := toSeconds(repDist.Sample(repairs))
			t = job.AddSat(t, gap)
			if t >= cfg.Horizon {
				break
			}
			end := job.AddSat(t, dur)
			n := capNodes - maxDownOverlap(all, t, end)
			if n > nodesPer {
				n = nodesPer
			}
			if n <= 0 {
				continue // cap saturated during this outage: drop it
			}
			all = append(all, sim.Failure{At: t, Nodes: n, Duration: dur})
		}
	}

	failures, err := sim.ValidateFailures(all, cfg.MachineNodes)
	if err != nil {
		return Plan{}, fmt.Errorf("faults: generated plan invalid: %w", err)
	}
	ann, err := sim.ValidateFailures(announced, cfg.MachineNodes)
	if err != nil {
		return Plan{}, fmt.Errorf("faults: maintenance plan invalid: %w", err)
	}
	return Plan{Failures: failures, Announced: ann}, nil
}

// expandMaintenance unrolls recurring windows into concrete occurrences.
func expandMaintenance(cfg Config) ([]sim.Failure, error) {
	var out []sim.Failure
	for i, w := range cfg.Maintenance {
		if w.Nodes <= 0 || w.Nodes > cfg.MachineNodes {
			return nil, fmt.Errorf("faults: window %d drains %d of %d nodes", i, w.Nodes, cfg.MachineNodes)
		}
		if w.At < 0 || w.Duration <= 0 {
			return nil, fmt.Errorf("faults: window %d needs At >= 0 and positive duration", i)
		}
		if w.Every < 0 || w.Count < 0 {
			return nil, fmt.Errorf("faults: window %d has negative recurrence", i)
		}
		if w.Every == 0 {
			out = append(out, sim.Failure{At: w.At, Nodes: w.Nodes, Duration: w.Duration})
			continue
		}
		if w.Every <= w.Duration {
			return nil, fmt.Errorf("faults: window %d recurs every %d s but lasts %d s", i, w.Every, w.Duration)
		}
		if w.Count == 0 && cfg.Horizon <= 0 {
			return nil, fmt.Errorf("faults: unbounded recurring window %d needs a horizon", i)
		}
		at := w.At
		for k := 0; ; k++ {
			if w.Count > 0 && k >= w.Count {
				break
			}
			if cfg.Horizon > 0 && at >= cfg.Horizon {
				break
			}
			out = append(out, sim.Failure{At: at, Nodes: w.Nodes, Duration: w.Duration})
			at = job.AddSat(at, w.Every)
		}
	}
	return out, nil
}

// weibullWithMean builds a Weibull with the given mean and shape
// (shape <= 0 defaults to 1, the exponential distribution).
func weibullWithMean(mean, shape float64) (stats.Weibull, error) {
	if mean <= 0 || math.IsNaN(mean) || math.IsInf(mean, 0) {
		return stats.Weibull{}, fmt.Errorf("mean %v must be positive and finite", mean)
	}
	if shape == 0 {
		shape = 1
	}
	if shape < 0 || math.IsNaN(shape) || math.IsInf(shape, 0) {
		return stats.Weibull{}, fmt.Errorf("shape %v must be positive and finite", shape)
	}
	// mean = λ·Γ(1+1/k)  =>  λ = mean / Γ(1+1/k).
	g := math.Gamma(1 + 1/shape)
	if g <= 0 || math.IsInf(g, 0) || math.IsNaN(g) {
		return stats.Weibull{}, fmt.Errorf("shape %v is numerically degenerate", shape)
	}
	return stats.Weibull{K: shape, Lambda: mean / g}, nil
}

// toSeconds rounds a sampled duration to whole seconds, clamped to >= 1
// (the simulator's clock is integral and zero-length events are invalid)
// and saturating far below MaxInt64 so later additions cannot wrap.
func toSeconds(x float64) int64 {
	if math.IsNaN(x) || x < 1 {
		return 1
	}
	if x >= math.MaxInt64/4 {
		return math.MaxInt64 / 4
	}
	return int64(math.Round(x))
}

// maxDownOverlap returns the maximum number of nodes already down at any
// instant of [at, end) under the accepted failures. Down-counts change
// only at failure onsets, so scanning `at` plus every onset inside the
// interval is exact. Quadratic in the plan size — fine for the plan
// lengths real sweeps use (thousands), and generation runs once per
// experiment, not per cell.
func maxDownOverlap(fs []sim.Failure, at, end int64) int {
	max := downAt(fs, at)
	for _, f := range fs {
		if f.At > at && f.At < end {
			if d := downAt(fs, f.At); d > max {
				max = d
			}
		}
	}
	return max
}

// downAt returns the number of nodes down at instant t.
func downAt(fs []sim.Failure, t int64) int {
	down := 0
	for _, f := range fs {
		if f.At <= t && t < job.AddSat(f.At, f.Duration) {
			down += f.Nodes
		}
	}
	return down
}
