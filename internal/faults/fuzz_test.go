package faults

import (
	"math"
	"reflect"
	"testing"

	"jobsched/internal/job"
	"jobsched/internal/sim"
)

// fifo is a minimal correct FCFS scheduler for driving fuzz simulations.
type fifo struct{ queue []*job.Job }

func newFIFO() *fifo          { return &fifo{} }
func (s *fifo) Name() string  { return "faults-fuzz-fifo" }
func (s *fifo) QueueLen() int { return len(s.queue) }
func (s *fifo) Submit(j *job.Job, now int64) {
	s.queue = append(s.queue, j)
}
func (s *fifo) JobStarted(j *job.Job, now int64) {
	for i, q := range s.queue {
		if q == j {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return
		}
	}
}
func (s *fifo) JobFinished(j *job.Job, now int64) {}
func (s *fifo) Startable(now int64, free int, running []sim.Running) []*job.Job {
	if len(s.queue) > 0 && s.queue[0].Nodes <= free {
		return []*job.Job{s.queue[0]}
	}
	return nil
}

// FuzzFailureSchedule compiles fuzzed fault configurations and simulates
// a fixed workload under them, checking the invariant chain end to end:
// the generated plan validates, the run's schedule validates (capacity
// never exceeded, via RunChecked), no instant has more nodes in use than
// the machine minus the nodes down at that instant (no job runs on downed
// hardware), generation is deterministic, and every job either completes
// or is accounted lost.
func FuzzFailureSchedule(f *testing.F) {
	f.Add(int64(1), 500.0, 100.0, 1.0, 1.0, 1, int64(0), int64(0), 0, int64(0), 0)
	f.Add(int64(2), 100.0, 400.0, 0.5, 2.0, 3, int64(1000), int64(200), 4, int64(0), 0)
	f.Add(int64(3), 50.0, 50.0, 3.0, 0.7, 2, int64(0), int64(100), 2, int64(900), 1)
	f.Add(int64(4), 0.0, 0.0, 0.0, 0.0, 0, int64(500), int64(50), 8, int64(600), 3)
	f.Fuzz(func(t *testing.T, seed int64, mtbf, mttr, fshape, rshape float64,
		nodesPer int, maintAt, maintDur int64, maintNodes int, maintEvery int64, retries int) {

		const machineNodes = 8
		const horizon = 5_000

		// Clamp rates so a hostile input cannot explode the plan size or
		// the simulation length; the generator's own validation handles
		// truly invalid values via the unclamped maintenance fields.
		cfg := Config{MachineNodes: machineNodes, Horizon: horizon, Seed: seed}
		if mtbf != 0 {
			cfg.MTBF = clampF(mtbf, 40, 2_000)
			cfg.MTTR = clampF(mttr, 1, 500)
			cfg.FailShape = clampF(fshape, 0.3, 5)
			cfg.RepairShape = clampF(rshape, 0.3, 5)
			cfg.NodesPerFailure = 1 + abs(nodesPer)%machineNodes
		}
		if maintDur != 0 {
			cfg.Maintenance = []Window{{
				At: maintAt, Duration: maintDur, Nodes: maintNodes,
				Every: maintEvery, Count: abs(abs(retries) % 4),
			}}
		}

		plan, err := Generate(cfg)
		if err != nil {
			return // invalid config rejected up front: nothing to simulate
		}
		again, err := Generate(cfg)
		if err != nil || !reflect.DeepEqual(plan, again) {
			t.Fatalf("generation not deterministic (err=%v)", err)
		}
		if _, err := sim.ValidateFailures(plan.Failures, machineNodes); err != nil {
			t.Fatalf("generated plan does not validate: %v", err)
		}

		jobs := make([]*job.Job, 24)
		for i := range jobs {
			jobs[i] = &job.Job{
				ID: job.ID(i), Submit: int64(i) * 150,
				Runtime: int64(50 + 40*(i%5)), Estimate: int64(50 + 40*(i%5)),
				Nodes: 1 + i%4,
			}
		}
		res, err := sim.RunChecked(sim.Machine{Nodes: machineNodes}, jobs, newFIFO(), sim.Options{
			Failures: plan.Failures,
			Resubmit: sim.ResubmitPolicy{MaxResubmits: abs(retries) % 4},
		})
		if err != nil {
			t.Fatalf("simulation failed under generated plan: %v", err)
		}

		// Accounting: every job completes or is lost, never both.
		completed := map[job.ID]bool{}
		for _, a := range res.Schedule.Allocs {
			if !a.Aborted {
				if completed[a.Job.ID] {
					t.Fatalf("job %d completed twice", a.Job.ID)
				}
				completed[a.Job.ID] = true
			}
		}
		if len(completed)+res.LostJobs != len(jobs) {
			t.Fatalf("%d completed + %d lost != %d jobs", len(completed), res.LostJobs, len(jobs))
		}

		// No job runs on a down node: at every failure onset, nodes in use
		// plus nodes down must fit the machine. (Usage and downtime change
		// only at event instants, and the schedule's own capacity check is
		// done by RunChecked; onsets are where downtime jumps.)
		for _, fl := range plan.Failures {
			used := 0
			for _, a := range res.Schedule.Allocs {
				if a.Start <= fl.At && fl.At < a.End {
					used += a.Job.Nodes
				}
			}
			if d := downAt(plan.Failures, fl.At); used+d > machineNodes {
				t.Fatalf("t=%d: %d nodes in use with %d down on a %d-node machine",
					fl.At, used, d, machineNodes)
			}
		}
	})
}

func clampF(x, lo, hi float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return lo
	}
	x = math.Abs(x)
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func abs(x int) int {
	if x < 0 {
		if x == math.MinInt {
			return math.MaxInt
		}
		return -x
	}
	return x
}
