package moldable

import (
	"math/rand"
	"testing"

	"jobsched/internal/job"
	"jobsched/internal/sched"
	"jobsched/internal/sim"
)

func TestSpecRuntimeAmdahl(t *testing.T) {
	s := Spec{Min: 1, Max: 64, SerialFraction: 0.1, Work: 1000}
	// Width 1: the full sequential work.
	if got := s.Runtime(1); got != 1000 {
		t.Errorf("runtime(1) = %d, want 1000", got)
	}
	// Width 10: 1000·(0.1 + 0.9/10) = 190.
	if got := s.Runtime(10); got != 190 {
		t.Errorf("runtime(10) = %d, want 190", got)
	}
	// Monotone non-increasing in width.
	prev := s.Runtime(1)
	for w := 2; w <= 64; w++ {
		cur := s.Runtime(w)
		if cur > prev {
			t.Fatalf("runtime not monotone at width %d: %d > %d", w, cur, prev)
		}
		prev = cur
	}
	// Clamping.
	if s.Runtime(0) != s.Runtime(1) || s.Runtime(1000) != s.Runtime(64) {
		t.Error("width clamping broken")
	}
}

func TestSpecEfficiencyDecreases(t *testing.T) {
	s := Spec{Min: 1, Max: 64, SerialFraction: 0.05, Work: 10000}
	if e := s.Efficiency(1); e < 0.99 {
		t.Errorf("efficiency(1) = %v, want ≈ 1", e)
	}
	if s.Efficiency(64) >= s.Efficiency(2) {
		t.Error("efficiency must fall with width")
	}
}

func rigidWorkload(n, nodes int, seed int64) []*job.Job {
	r := rand.New(rand.NewSource(seed))
	jobs := make([]*job.Job, n)
	var at int64
	for i := range jobs {
		at += int64(r.Intn(60))
		run := int64(60 + r.Intn(3600))
		jobs[i] = &job.Job{
			ID: job.ID(i), Submit: at,
			Nodes:    1 + r.Intn(nodes/2),
			Runtime:  run,
			Estimate: run * int64(1+r.Intn(3)),
		}
	}
	return jobs
}

func TestFromRigidPreservesRequestedRuntime(t *testing.T) {
	jobs := rigidWorkload(100, 64, 1)
	w, err := FromRigid(jobs, 64, 2, 0.01, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range w.Jobs {
		spec := w.Specs[j.ID]
		got := spec.Runtime(j.Nodes)
		// Ceil effects allow ±1%.
		diff := float64(got-j.Runtime) / float64(j.Runtime)
		if diff < -0.02 || diff > 0.02 {
			t.Fatalf("job %d: runtime at requested width %d = %d, original %d",
				j.ID, j.Nodes, got, j.Runtime)
		}
		if spec.Min > j.Nodes || spec.Max < j.Nodes {
			t.Fatalf("job %d: range [%d,%d] excludes requested %d",
				j.ID, spec.Min, spec.Max, j.Nodes)
		}
		if spec.Min < 1 || spec.Max > 64 {
			t.Fatalf("range [%d,%d] outside machine", spec.Min, spec.Max)
		}
	}
}

func TestFromRigidRejectsBadParams(t *testing.T) {
	jobs := rigidWorkload(5, 64, 2)
	if _, err := FromRigid(jobs, 64, 0.5, 0.01, 0.3, 1); err == nil {
		t.Error("flex < 1 accepted")
	}
	if _, err := FromRigid(jobs, 64, 2, 0, 0.3, 1); err == nil {
		t.Error("zero minF accepted")
	}
	if _, err := FromRigid(jobs, 64, 2, 0.5, 0.4, 1); err == nil {
		t.Error("inverted fractions accepted")
	}
	if _, err := FromRigid(jobs, 64, 2, 0.1, 1, 1); err == nil {
		t.Error("maxF = 1 accepted")
	}
}

func TestAdaptiveCompletesAllJobs(t *testing.T) {
	const nodes = 64
	jobs := rigidWorkload(300, nodes, 3)
	w, err := FromRigid(jobs, nodes, 2, 0.01, 0.3, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []WidthPolicy{Greedy, Requested, EfficiencyCap} {
		// Each run needs a fresh clone: Adaptive mutates the jobs.
		wc, err := FromRigid(jobs, nodes, 2, 0.01, 0.3, 8)
		if err != nil {
			t.Fatal(err)
		}
		alg := NewAdaptive(wc, policy, nodes)
		res, err := sim.Run(sim.Machine{Nodes: nodes}, wc.Jobs, alg,
			sim.Options{Validate: true})
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if len(res.Schedule.Allocs) != len(jobs) {
			t.Fatalf("%s: %d of %d jobs", policy, len(res.Schedule.Allocs), len(jobs))
		}
		for _, a := range res.Schedule.Allocs {
			spec := w.Specs[a.Job.ID]
			if a.Job.Nodes < spec.Min || a.Job.Nodes > spec.Max {
				t.Fatalf("%s: job %d started at width %d outside [%d,%d]",
					policy, a.Job.ID, a.Job.Nodes, spec.Min, spec.Max)
			}
		}
	}
}

func TestAdaptiveBeatsRigidOnBlockedWorkload(t *testing.T) {
	// Example 3's payoff: when wide jobs block a rigid FCFS queue,
	// adaptive partitioning squeezes them into what is free.
	const nodes = 16
	jobs := []*job.Job{
		{ID: 0, Submit: 0, Nodes: 12, Runtime: 1000, Estimate: 1000},
		{ID: 1, Submit: 1, Nodes: 12, Runtime: 1000, Estimate: 1000},
		{ID: 2, Submit: 2, Nodes: 12, Runtime: 1000, Estimate: 1000},
	}
	w, err := FromRigid(jobs, nodes, 4, 0.01, 0.05, 9)
	if err != nil {
		t.Fatal(err)
	}
	alg := NewAdaptive(w, Greedy, nodes)
	res, err := sim.Run(sim.Machine{Nodes: nodes}, w.Jobs, alg, sim.Options{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	rigid, err := sched.New(sched.OrderFCFS, sched.StartList, sched.Config{MachineNodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	rres, err := sim.Run(sim.Machine{Nodes: nodes}, job.CloneAll(jobs), rigid,
		sim.Options{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Makespan() >= rres.Schedule.Makespan() {
		t.Errorf("adaptive makespan %d not better than rigid %d",
			res.Schedule.Makespan(), rres.Schedule.Makespan())
	}
}

func TestAdaptiveEstimatePreservesOverestimation(t *testing.T) {
	const nodes = 16
	jobs := []*job.Job{
		{ID: 0, Submit: 0, Nodes: 8, Runtime: 100, Estimate: 300}, // 3× over
	}
	w, err := FromRigid(jobs, nodes, 2, 0.01, 0.05, 10)
	if err != nil {
		t.Fatal(err)
	}
	alg := NewAdaptive(w, Greedy, nodes)
	res, err := sim.Run(sim.Machine{Nodes: nodes}, w.Jobs, alg, sim.Options{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	a := res.Schedule.Allocs[0]
	ratio := float64(a.Job.Estimate) / float64(a.Job.Runtime)
	if ratio < 2.9 || ratio > 3.1 {
		t.Errorf("overestimation factor after remold = %.2f, want ≈ 3", ratio)
	}
}

func TestAdaptiveRigidFallbackWithoutSpec(t *testing.T) {
	const nodes = 8
	j0 := &job.Job{ID: 0, Submit: 0, Nodes: 4, Runtime: 10, Estimate: 10}
	w := &Workload{Jobs: []*job.Job{j0}, Specs: map[job.ID]Spec{}}
	alg := NewAdaptive(w, Greedy, nodes)
	res, err := sim.Run(sim.Machine{Nodes: nodes}, w.Jobs, alg, sim.Options{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Allocs[0].Job.Nodes != 4 {
		t.Error("spec-less job was remolded")
	}
}

func TestWidthPolicyStrings(t *testing.T) {
	if Greedy.String() != "greedy" || Requested.String() != "requested" ||
		EfficiencyCap.String() != "efficiency-cap" {
		t.Error("policy names")
	}
	if WidthPolicy(99).String() != "unknown" {
		t.Error("unknown policy name")
	}
}
