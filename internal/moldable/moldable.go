// Package moldable implements adaptive partitioning (the paper's
// Example 3 and the "range of acceptable values, like the number of
// processors for a malleable job" of Section 2): jobs that accept any
// width within a range, a machine-level speedup model, and an adaptive
// FCFS scheduler that chooses each job's partition at start time. It
// demonstrates the paper's point that "the number of resources allocated
// to job i depends on other jobs executed concurrently with job i" — and
// therefore why trace replay must be interpreted carefully.
package moldable

import (
	"fmt"
	"math"

	"jobsched/internal/job"
	"jobsched/internal/sim"
	"jobsched/internal/stats"
)

// Spec describes one moldable job's width flexibility and speedup.
type Spec struct {
	// Min and Max bound the acceptable partition width.
	Min, Max int
	// SerialFraction is Amdahl's f: runtime(w) = Work·(f + (1-f)/w).
	SerialFraction float64
	// Work is the sequential execution time (the 1-node runtime).
	Work int64
}

// Runtime returns the execution time on the given width under Amdahl's
// law. Width is clamped into [Min, Max].
func (s Spec) Runtime(width int) int64 {
	if width < s.Min {
		width = s.Min
	}
	if width > s.Max {
		width = s.Max
	}
	t := float64(s.Work) * (s.SerialFraction + (1-s.SerialFraction)/float64(width))
	if t < 1 {
		t = 1
	}
	return int64(math.Ceil(t))
}

// Efficiency returns the parallel efficiency at the given width:
// speedup(w)/w.
func (s Spec) Efficiency(width int) float64 {
	seq := float64(s.Work)
	return seq / (float64(s.Runtime(width)) * float64(width))
}

// Workload couples rigid submission data with per-job moldability.
type Workload struct {
	Jobs  []*job.Job
	Specs map[job.ID]Spec
}

// FromRigid derives a moldable workload from a rigid one: the original
// requested width becomes the user's preference; the acceptable range is
// [width/flex, width·flex] (clamped to the machine), and the sequential
// work is back-computed so that the original runtime is exactly the
// runtime at the requested width. Serial fractions are sampled
// log-uniformly in [minF, maxF].
func FromRigid(jobs []*job.Job, machineNodes int, flex float64, minF, maxF float64, seed int64) (*Workload, error) {
	if flex < 1 {
		return nil, fmt.Errorf("moldable: flex must be >= 1")
	}
	if minF <= 0 || maxF < minF || maxF >= 1 {
		return nil, fmt.Errorf("moldable: serial fractions must satisfy 0 < minF <= maxF < 1")
	}
	r := stats.Split(seed, 31)
	w := &Workload{
		Jobs:  job.CloneAll(jobs),
		Specs: make(map[job.ID]Spec, len(jobs)),
	}
	for _, j := range w.Jobs {
		f := stats.LogUniform(r, minF, maxF)
		// Work from runtime(width) = Work·(f + (1-f)/width).
		denom := f + (1-f)/float64(j.Nodes)
		work := float64(j.Runtime) / denom
		spec := Spec{
			Min:            maxInt(1, int(float64(j.Nodes)/flex)),
			Max:            minInt(machineNodes, int(math.Ceil(float64(j.Nodes)*flex))),
			SerialFraction: f,
			Work:           int64(math.Ceil(work)),
		}
		w.Specs[j.ID] = spec
	}
	return w, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// WidthPolicy selects the partition width for the queue head.
type WidthPolicy int

const (
	// Greedy takes all free nodes up to Max.
	Greedy WidthPolicy = iota
	// Requested keeps the user's original width (degenerates to rigid
	// FCFS; the control arm of the adaptive-partitioning experiment).
	Requested
	// EfficiencyCap takes free nodes only while parallel efficiency
	// stays above 50%.
	EfficiencyCap
)

func (p WidthPolicy) String() string {
	switch p {
	case Greedy:
		return "greedy"
	case Requested:
		return "requested"
	case EfficiencyCap:
		return "efficiency-cap"
	default:
		return "unknown"
	}
}

// Adaptive is an FCFS scheduler with adaptive partitioning: the queue
// head starts as soon as its *minimum* width fits, on a partition chosen
// by the width policy. It mutates the job's width, runtime and estimate
// at start time (scaling the estimate so the user's overestimation
// factor is preserved), which is exactly the Example 3 effect.
type Adaptive struct {
	specs   map[job.ID]Spec
	policy  WidthPolicy
	machine int
	queue   []*job.Job
}

var _ sim.Scheduler = (*Adaptive)(nil)

// NewAdaptive builds the adaptive FCFS scheduler for the workload.
func NewAdaptive(w *Workload, policy WidthPolicy, machineNodes int) *Adaptive {
	return &Adaptive{specs: w.Specs, policy: policy, machine: machineNodes}
}

// Name implements sim.Scheduler.
func (a *Adaptive) Name() string {
	return fmt.Sprintf("Adaptive-FCFS(%s)", a.policy)
}

// Submit implements sim.Scheduler.
func (a *Adaptive) Submit(j *job.Job, now int64) { a.queue = append(a.queue, j) }

// JobStarted implements sim.Scheduler.
func (a *Adaptive) JobStarted(j *job.Job, now int64) {
	for i, q := range a.queue {
		if q == j {
			a.queue = append(a.queue[:i], a.queue[i+1:]...)
			return
		}
	}
}

// JobFinished implements sim.Scheduler.
func (a *Adaptive) JobFinished(j *job.Job, now int64) {}

// Startable implements sim.Scheduler.
func (a *Adaptive) Startable(now int64, free int, running []sim.Running) []*job.Job {
	if len(a.queue) == 0 || free <= 0 {
		return nil
	}
	head := a.queue[0]
	spec, ok := a.specs[head.ID]
	if !ok {
		// No spec: treat as rigid.
		if head.Nodes <= free {
			return []*job.Job{head}
		}
		return nil
	}
	if spec.Min > free {
		return nil
	}
	width := a.chooseWidth(head, spec, free)
	// Remold the job in place before the engine reads its shape.
	overFactor := float64(head.Estimate) / float64(head.Runtime)
	head.Nodes = width
	head.Runtime = spec.Runtime(width)
	est := int64(float64(head.Runtime) * overFactor)
	if est < head.Runtime {
		est = head.Runtime
	}
	head.Estimate = est
	return []*job.Job{head}
}

func (a *Adaptive) chooseWidth(j *job.Job, spec Spec, free int) int {
	switch a.policy {
	case Requested:
		w := j.Nodes
		if w > free {
			w = free
		}
		return clamp(w, spec.Min, minInt(spec.Max, free))
	case EfficiencyCap:
		best := spec.Min
		for w := spec.Min; w <= minInt(spec.Max, free); w++ {
			if spec.Efficiency(w) >= 0.5 {
				best = w
			}
		}
		return best
	default: // Greedy
		return clamp(free, spec.Min, spec.Max)
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// QueueLen implements sim.Scheduler.
func (a *Adaptive) QueueLen() int { return len(a.queue) }
