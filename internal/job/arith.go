// Checked int64 arithmetic for simulation-time and resource-area values.
//
// Simulation times are int64 seconds and node counts are ints; products
// (area = nodes × time) and sums (completion = start + estimate) of
// paper-scale values fit comfortably, but the simulator also accepts
// traces and synthetic workloads with adversarial magnitudes, and the
// availability-profile kernel deliberately works near profile.Infinity
// (MaxInt64). A silent wraparound there does not crash — it produces a
// plausible-looking negative time that corrupts every downstream table.
// These helpers saturate at the int64 extremes instead, which keeps
// comparisons ("is this before the horizon?") monotone under overflow.
//
// The checkedarith analyzer (internal/lint) flags raw int64 `*` and `+`
// expressions in the time-accounting packages so new arithmetic either
// routes through these helpers or carries an explicit justification.
package job

import "math"

// AddSat returns a+b, saturating at math.MinInt64/math.MaxInt64 instead
// of wrapping.
func AddSat(a, b int64) int64 {
	s := a + b
	// Overflow iff both operands share a sign and the sum does not.
	if (a >= 0) == (b >= 0) && (s >= 0) != (a >= 0) {
		if a >= 0 {
			return math.MaxInt64
		}
		return math.MinInt64
	}
	return s
}

// SubSat returns a-b, saturating at the int64 extremes.
func SubSat(a, b int64) int64 {
	d := a - b
	// Overflow iff the operands have different signs and the result does
	// not have the sign of a.
	if (a >= 0) != (b >= 0) && (d >= 0) != (a >= 0) {
		if a >= 0 {
			return math.MaxInt64
		}
		return math.MinInt64
	}
	return d
}

// MulSat returns a*b, saturating at the int64 extremes.
func MulSat(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	// MinInt64 * -1 wraps back to MinInt64 and passes the division
	// check below (Go defines MinInt64 / -1 as MinInt64), so handle the
	// negation-overflow pair explicitly.
	if (a == math.MinInt64 && b == -1) || (b == math.MinInt64 && a == -1) {
		return math.MaxInt64
	}
	p := a * b
	if p/b != a {
		if (a > 0) == (b > 0) {
			return math.MaxInt64
		}
		return math.MinInt64
	}
	return p
}

// MulArea returns the resource area nodes × seconds as an int64,
// saturating on overflow — the integer companion of Job.Area for callers
// that must stay in exact time units.
func MulArea(nodes int, seconds int64) int64 {
	return MulSat(int64(nodes), seconds)
}
