package job

import (
	"math"
	"math/big"
	"testing"
)

func TestAddSat(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 0, 0},
		{1, 2, 3},
		{-5, 3, -2},
		{math.MaxInt64, 1, math.MaxInt64},
		{math.MaxInt64, math.MaxInt64, math.MaxInt64},
		{math.MinInt64, -1, math.MinInt64},
		{math.MinInt64, math.MinInt64, math.MinInt64},
		{math.MaxInt64, math.MinInt64, -1}, // exact, no saturation
		{math.MaxInt64 - 10, 10, math.MaxInt64},
		{math.MaxInt64 - 10, 11, math.MaxInt64},
	}
	for _, c := range cases {
		if got := AddSat(c.a, c.b); got != c.want {
			t.Errorf("AddSat(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestSubSat(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 0, 0},
		{5, 3, 2},
		{3, 5, -2},
		{math.MinInt64, 1, math.MinInt64},
		{math.MaxInt64, -1, math.MaxInt64},
		{math.MinInt64, math.MinInt64, 0},
		{0, math.MinInt64, math.MaxInt64}, // -MinInt64 overflows; saturate
	}
	for _, c := range cases {
		if got := SubSat(c.a, c.b); got != c.want {
			t.Errorf("SubSat(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestMulSat(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, math.MaxInt64, 0},
		{math.MinInt64, 0, 0},
		{3, 4, 12},
		{-3, 4, -12},
		{math.MaxInt64, 2, math.MaxInt64},
		{math.MaxInt64, -2, math.MinInt64},
		{math.MinInt64, -1, math.MaxInt64},
		{math.MinInt64, 2, math.MinInt64},
		{1 << 32, 1 << 32, math.MaxInt64},
	}
	for _, c := range cases {
		if got := MulSat(c.a, c.b); got != c.want {
			t.Errorf("MulSat(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestMulArea(t *testing.T) {
	if got := MulArea(256, 3600); got != 256*3600 {
		t.Fatalf("MulArea(256, 3600) = %d", got)
	}
	if got := MulArea(1<<20, math.MaxInt64/2); got != math.MaxInt64 {
		t.Fatalf("MulArea overflow: got %d, want MaxInt64", got)
	}
}

// TestSatAgainstBig cross-checks the saturating ops against arbitrary-
// precision arithmetic over a grid of boundary-heavy operands.
func TestSatAgainstBig(t *testing.T) {
	vals := []int64{
		math.MinInt64, math.MinInt64 + 1, math.MinInt64 / 2,
		-(1 << 32), -3, -1, 0, 1, 2, 3600,
		1 << 31, 1 << 32, math.MaxInt64 / 2, math.MaxInt64 - 1, math.MaxInt64,
	}
	lo := big.NewInt(math.MinInt64)
	hi := big.NewInt(math.MaxInt64)
	clamp := func(z *big.Int) int64 {
		if z.Cmp(hi) > 0 {
			return math.MaxInt64
		}
		if z.Cmp(lo) < 0 {
			return math.MinInt64
		}
		return z.Int64()
	}
	var z big.Int
	for _, a := range vals {
		for _, b := range vals {
			ba, bb := big.NewInt(a), big.NewInt(b)
			if want := clamp(z.Add(ba, bb)); AddSat(a, b) != want {
				t.Fatalf("AddSat(%d, %d) = %d, want %d", a, b, AddSat(a, b), want)
			}
			if want := clamp(z.Sub(ba, bb)); SubSat(a, b) != want {
				t.Fatalf("SubSat(%d, %d) = %d, want %d", a, b, SubSat(a, b), want)
			}
			if want := clamp(z.Mul(ba, bb)); MulSat(a, b) != want {
				t.Fatalf("MulSat(%d, %d) = %d, want %d", a, b, MulSat(a, b), want)
			}
		}
	}
}
