package job

import "sort"

// SortBySubmit orders jobs by submission time, breaking ties by ID.
// It sorts in place and also returns the slice for chaining.
func SortBySubmit(jobs []*Job) []*Job {
	sort.SliceStable(jobs, func(a, b int) bool {
		if jobs[a].Submit != jobs[b].Submit {
			return jobs[a].Submit < jobs[b].Submit
		}
		return jobs[a].ID < jobs[b].ID
	})
	return jobs
}

// SortByID orders jobs by ID in place and returns the slice.
func SortByID(jobs []*Job) []*Job {
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].ID < jobs[b].ID })
	return jobs
}

// Renumber assigns dense IDs 0..n-1 in the current slice order.
func Renumber(jobs []*Job) {
	for i, j := range jobs {
		j.ID = ID(i)
	}
}

// MaxNodes returns the largest node request in the slice (0 if empty).
func MaxNodes(jobs []*Job) int {
	max := 0
	for _, j := range jobs {
		if j.Nodes > max {
			max = j.Nodes
		}
	}
	return max
}

// TotalArea returns the summed actual resource consumption of the jobs.
func TotalArea(jobs []*Job) float64 {
	var sum float64
	for _, j := range jobs {
		sum += j.Area()
	}
	return sum
}

// Span returns the earliest submission and the latest possible completion
// (submit + estimate) over the slice. Both are 0 for an empty slice.
func Span(jobs []*Job) (first, last int64) {
	if len(jobs) == 0 {
		return 0, 0
	}
	first = jobs[0].Submit
	for _, j := range jobs {
		if j.Submit < first {
			first = j.Submit
		}
		if end := AddSat(j.Submit, j.Estimate); end > last {
			last = end
		}
	}
	return first, last
}
