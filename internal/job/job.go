// Package job defines the rigid parallel job model used throughout the
// simulator and the scheduling algorithms.
//
// A job carries the submission data of the paper's Example 5: the exact
// number of nodes it needs (rigid job model), a user-provided upper limit
// for its execution time (the estimate), and its submission time. The
// actual runtime is known to the simulator but never to a scheduler.
package job

import (
	"errors"
	"fmt"
)

// ID identifies a job within a workload. IDs are assigned densely from 0 in
// submission order by the workload generators and the trace reader.
type ID int64

// Job is a rigid parallel job. All time fields are in seconds from the
// start of the workload's time frame.
type Job struct {
	// ID is the job's position in the workload (dense, submission order).
	ID ID
	// Name is an optional human-readable label (trace job name).
	Name string
	// User is an optional owner label used by policy examples.
	User string
	// Nodes is the exact number of nodes the job requires (rigid model).
	Nodes int
	// Submit is the submission time.
	Submit int64
	// Estimate is the user-provided upper limit for the execution time.
	// A job running past its estimate is cancelled by the machine.
	Estimate int64
	// Runtime is the actual execution time. Schedulers must not read it;
	// only the simulator and the objective functions may.
	Runtime int64
	// Class is an optional priority class used by policy examples
	// (e.g. drug-design jobs vs. lab-course jobs in Example 1).
	Class string
}

// Validation errors returned by Validate.
var (
	ErrNoNodes         = errors.New("job: node request must be positive")
	ErrBadEstimate     = errors.New("job: estimate must be positive")
	ErrBadRuntime      = errors.New("job: runtime must be positive")
	ErrNegativeSubmit  = errors.New("job: submission time must not be negative")
	ErrRuntimeOverrun  = errors.New("job: runtime exceeds estimate")
	ErrNodesExceedZero = errors.New("job: node request exceeds machine size")
)

// Validate reports whether the job's submission data is well formed.
// maxNodes is the machine size; pass 0 to skip the width check.
// strict additionally requires Runtime <= Estimate (generators guarantee
// it; traces replayed with kill-at-limit semantics may violate it).
func (j *Job) Validate(maxNodes int, strict bool) error {
	switch {
	case j.Nodes <= 0:
		return fmt.Errorf("job %d: %w", j.ID, ErrNoNodes)
	case j.Estimate <= 0:
		return fmt.Errorf("job %d: %w", j.ID, ErrBadEstimate)
	case j.Runtime <= 0:
		return fmt.Errorf("job %d: %w", j.ID, ErrBadRuntime)
	case j.Submit < 0:
		return fmt.Errorf("job %d: %w", j.ID, ErrNegativeSubmit)
	}
	if maxNodes > 0 && j.Nodes > maxNodes {
		return fmt.Errorf("job %d: %d nodes: %w", j.ID, j.Nodes, ErrNodesExceedZero)
	}
	if strict && j.Runtime > j.Estimate {
		return fmt.Errorf("job %d: runtime %d > estimate %d: %w",
			j.ID, j.Runtime, j.Estimate, ErrRuntimeOverrun)
	}
	return nil
}

// Area is the actual resource consumption of the job: nodes × runtime.
// The paper uses it as the job weight of the weighted response-time
// objective ("the product of the execution time and the number of
// required nodes").
func (j *Job) Area() float64 { return float64(j.Nodes) * float64(j.Runtime) }

// EstimatedArea is the projected resource consumption: nodes × estimate.
// It is the only weight a scheduler may use on-line.
func (j *Job) EstimatedArea() float64 { return float64(j.Nodes) * float64(j.Estimate) }

// EffectiveRuntime is the time the job actually occupies the machine under
// kill-at-limit semantics: min(Runtime, Estimate).
func (j *Job) EffectiveRuntime() int64 {
	if j.Runtime > j.Estimate {
		return j.Estimate
	}
	return j.Runtime
}

// Killed reports whether kill-at-limit semantics would cancel the job.
func (j *Job) Killed() bool { return j.Runtime > j.Estimate }

// String implements fmt.Stringer.
func (j *Job) String() string {
	return fmt.Sprintf("job %d (%d nodes, submit %d, est %d, run %d)",
		j.ID, j.Nodes, j.Submit, j.Estimate, j.Runtime)
}

// Clone returns a deep copy of the job.
func (j *Job) Clone() *Job {
	c := *j
	return &c
}

// CloneAll deep-copies a slice of jobs.
func CloneAll(jobs []*Job) []*Job {
	out := make([]*Job, len(jobs))
	for i, j := range jobs {
		out[i] = j.Clone()
	}
	return out
}

// WeightFunc assigns a scheduling weight to a job. Order policies that use
// weights (SMART, PSRS) are parameterized by one of these so the same code
// serves the unweighted and the weighted objective.
type WeightFunc func(*Job) float64

// UnitWeight gives every job weight 1 (average response time objective).
func UnitWeight(*Job) float64 { return 1 }

// AreaWeight gives a job its estimated resource consumption as weight
// (average weighted response time objective; on-line, only the estimate
// is known, so the estimated area is used).
func AreaWeight(j *Job) float64 { return j.EstimatedArea() }

// ActualAreaWeight gives a job its actual resource consumption as weight.
// Objective functions use it; schedulers must not.
func ActualAreaWeight(j *Job) float64 { return j.Area() }
