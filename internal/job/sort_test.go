package job

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSortBySubmitStableOnTies(t *testing.T) {
	jobs := []*Job{
		{ID: 3, Submit: 50},
		{ID: 1, Submit: 50},
		{ID: 2, Submit: 10},
	}
	SortBySubmit(jobs)
	wantIDs := []ID{2, 1, 3} // ties broken by ID
	for i, w := range wantIDs {
		if jobs[i].ID != w {
			t.Fatalf("pos %d: got ID %d, want %d", i, jobs[i].ID, w)
		}
	}
}

func TestSortBySubmitProperty(t *testing.T) {
	f := func(submits []int16) bool {
		jobs := make([]*Job, len(submits))
		for i, s := range submits {
			v := int64(s)
			if v < 0 {
				v = -v
			}
			jobs[i] = &Job{ID: ID(i), Submit: v}
		}
		SortBySubmit(jobs)
		return sort.SliceIsSorted(jobs, func(a, b int) bool {
			if jobs[a].Submit != jobs[b].Submit {
				return jobs[a].Submit < jobs[b].Submit
			}
			return jobs[a].ID < jobs[b].ID
		})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSortByID(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	jobs := make([]*Job, 50)
	for i := range jobs {
		jobs[i] = &Job{ID: ID(r.Intn(1000))}
	}
	SortByID(jobs)
	for i := 1; i < len(jobs); i++ {
		if jobs[i-1].ID > jobs[i].ID {
			t.Fatal("not sorted by ID")
		}
	}
}

func TestRenumber(t *testing.T) {
	jobs := []*Job{{ID: 42}, {ID: 7}, {ID: 99}}
	Renumber(jobs)
	for i, j := range jobs {
		if j.ID != ID(i) {
			t.Fatalf("pos %d has ID %d", i, j.ID)
		}
	}
}

func TestMaxNodes(t *testing.T) {
	if got := MaxNodes(nil); got != 0 {
		t.Errorf("MaxNodes(nil) = %d", got)
	}
	jobs := []*Job{{Nodes: 3}, {Nodes: 17}, {Nodes: 5}}
	if got := MaxNodes(jobs); got != 17 {
		t.Errorf("MaxNodes = %d, want 17", got)
	}
}

func TestTotalArea(t *testing.T) {
	jobs := []*Job{
		{Nodes: 2, Runtime: 10},
		{Nodes: 3, Runtime: 100},
	}
	if got := TotalArea(jobs); got != 2*10+3*100 {
		t.Errorf("TotalArea = %v", got)
	}
}

func TestSpan(t *testing.T) {
	first, last := Span(nil)
	if first != 0 || last != 0 {
		t.Errorf("Span(nil) = %d,%d", first, last)
	}
	jobs := []*Job{
		{Submit: 100, Estimate: 50},
		{Submit: 20, Estimate: 10},
		{Submit: 60, Estimate: 1000},
	}
	first, last = Span(jobs)
	if first != 20 {
		t.Errorf("first = %d, want 20", first)
	}
	if last != 1060 {
		t.Errorf("last = %d, want 1060", last)
	}
}

// TestSpanNearMaxInt64 is the regression test for the checkedarith
// finding in Span: submit + estimate wrapped negative for jobs whose
// projected completion overflows int64, so the wrapped end lost the
// `end > last` comparison and Span under-reported the horizon. The
// saturating add keeps the comparison monotone.
func TestSpanNearMaxInt64(t *testing.T) {
	const maxI64 = int64(^uint64(0) >> 1)
	jobs := []*Job{
		{ID: 0, Nodes: 1, Submit: 100, Estimate: 50, Runtime: 50},
		{ID: 1, Nodes: 1, Submit: maxI64 - 10, Estimate: 100, Runtime: 100},
	}
	first, last := Span(jobs)
	if first != 100 {
		t.Fatalf("first = %d, want 100", first)
	}
	if last != maxI64 {
		t.Fatalf("last = %d, want MaxInt64 (pre-fix: wrapped end lost the comparison, last = %d)", last, int64(150))
	}
}
