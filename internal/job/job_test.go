package job

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func valid() *Job {
	return &Job{ID: 1, Nodes: 4, Submit: 100, Estimate: 3600, Runtime: 1800}
}

func TestValidateOK(t *testing.T) {
	if err := valid().Validate(256, true); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Job)
		want   error
		strict bool
		max    int
	}{
		{"zero nodes", func(j *Job) { j.Nodes = 0 }, ErrNoNodes, true, 256},
		{"negative nodes", func(j *Job) { j.Nodes = -3 }, ErrNoNodes, true, 256},
		{"zero estimate", func(j *Job) { j.Estimate = 0 }, ErrBadEstimate, true, 256},
		{"zero runtime", func(j *Job) { j.Runtime = 0 }, ErrBadRuntime, true, 256},
		{"negative submit", func(j *Job) { j.Submit = -1 }, ErrNegativeSubmit, true, 256},
		{"too wide", func(j *Job) { j.Nodes = 300 }, ErrNodesExceedZero, true, 256},
		{"overrun strict", func(j *Job) { j.Runtime = j.Estimate + 1 }, ErrRuntimeOverrun, true, 256},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			j := valid()
			tc.mutate(j)
			err := j.Validate(tc.max, tc.strict)
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

func TestValidateNonStrictAllowsOverrun(t *testing.T) {
	j := valid()
	j.Runtime = j.Estimate + 100
	if err := j.Validate(256, false); err != nil {
		t.Fatalf("non-strict validation rejected overrun: %v", err)
	}
}

func TestValidateSkipsWidthCheckWhenZero(t *testing.T) {
	j := valid()
	j.Nodes = 100000
	if err := j.Validate(0, true); err != nil {
		t.Fatalf("maxNodes=0 must skip the width check: %v", err)
	}
}

func TestAreaAndWeights(t *testing.T) {
	j := valid() // 4 nodes × 1800 s actual, 3600 s estimated
	if got := j.Area(); got != 4*1800 {
		t.Errorf("Area = %v, want %v", got, 4*1800)
	}
	if got := j.EstimatedArea(); got != 4*3600 {
		t.Errorf("EstimatedArea = %v, want %v", got, 4*3600)
	}
	if got := UnitWeight(j); got != 1 {
		t.Errorf("UnitWeight = %v", got)
	}
	if got := AreaWeight(j); got != j.EstimatedArea() {
		t.Errorf("AreaWeight = %v, want estimated area %v", got, j.EstimatedArea())
	}
	if got := ActualAreaWeight(j); got != j.Area() {
		t.Errorf("ActualAreaWeight = %v, want area %v", got, j.Area())
	}
}

func TestEffectiveRuntimeAndKilled(t *testing.T) {
	j := valid()
	if j.Killed() {
		t.Error("job within limit reported killed")
	}
	if got := j.EffectiveRuntime(); got != j.Runtime {
		t.Errorf("EffectiveRuntime = %d, want %d", got, j.Runtime)
	}
	j.Runtime = j.Estimate + 500
	if !j.Killed() {
		t.Error("overrunning job not reported killed")
	}
	if got := j.EffectiveRuntime(); got != j.Estimate {
		t.Errorf("EffectiveRuntime after overrun = %d, want estimate %d", got, j.Estimate)
	}
}

func TestCloneIndependence(t *testing.T) {
	j := valid()
	c := j.Clone()
	c.Nodes = 99
	c.Runtime = 7
	if j.Nodes == 99 || j.Runtime == 7 {
		t.Fatal("Clone shares state with the original")
	}
}

func TestCloneAll(t *testing.T) {
	in := []*Job{valid(), valid()}
	out := CloneAll(in)
	if len(out) != 2 {
		t.Fatalf("CloneAll len = %d", len(out))
	}
	out[0].Nodes = 77
	if in[0].Nodes == 77 {
		t.Fatal("CloneAll shares job pointers")
	}
}

func TestStringMentionsFields(t *testing.T) {
	s := valid().String()
	for _, want := range []string{"job 1", "4 nodes", "submit 100"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestEffectiveRuntimeProperty(t *testing.T) {
	// Property: effective runtime is always min(runtime, estimate) and
	// never exceeds either bound.
	f := func(runtime, estimate int16) bool {
		r, e := int64(runtime), int64(estimate)
		if r <= 0 {
			r = 1 - r
		}
		if e <= 0 {
			e = 1 - e
		}
		j := &Job{Nodes: 1, Estimate: e + 1, Runtime: r + 1}
		eff := j.EffectiveRuntime()
		return eff <= j.Runtime && eff <= j.Estimate &&
			(eff == j.Runtime || eff == j.Estimate)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
