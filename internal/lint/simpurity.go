package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// simPurityScope: the embeddable simulation core. These packages are
// linked into every driver (CLI, eval grids, benches, future services);
// process-global effects — stdout chatter, file handles, environment
// reads — would make them unusable as a library and non-reproducible as
// an experiment.
var simPurityScope = []string{
	"jobsched/internal/sim",
	"jobsched/internal/sched",
	"jobsched/internal/profile",
	"jobsched/internal/objective",
	// The streaming arrival path: sources feed the engine directly, so
	// the same embeddability rules apply — a Scanner reads from an
	// io.Reader handed in by the caller, never from a file it opened.
	"jobsched/internal/trace",
	"jobsched/internal/workload",
}

// impureImports are the packages that carry process-global I/O.
var impureImports = map[string]string{
	"os":        "process/file-system access",
	"io/ioutil": "file I/O (and deprecated)",
	"io/fs":     "file-system access",
	"log":       "writes to process-global stderr",
	"net":       "network I/O",
	"net/http":  "network I/O",
	"os/exec":   "subprocess execution",
}

// stdoutPrinters are the fmt functions that write to process stdout.
var stdoutPrinters = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
}

// fprintFuncs are the fmt functions whose first argument picks the
// writer; aimed at os.Stdout or os.Stderr they are process-stream writes
// in disguise.
var fprintFuncs = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// SimPurityAnalyzer returns the core-purity analyzer: the simulation
// core must not import I/O packages or print to stdout. Results leave
// the core as returned values (schedules, metrics, telemetry events);
// rendering them is the CLI layer's job.
//
// Printing is checked transitively over the package-local call graph: a
// function calling a helper that (through any chain of package-local
// calls) reaches a process-stream write is flagged at the call edge too,
// so wrapping the print in a helper moves the diagnostics around but
// never silences them.
func SimPurityAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "simpurity",
		Doc:  "the simulation core stays embeddable: no os/file/network imports, no printing (transitively through helpers)",
	}
	a.Run = func(pass *Pass) {
		if !inScope(pass.Pkg.Path, simPurityScope) {
			return
		}
		for _, f := range pass.Pkg.Files {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if why, bad := impureImports[path]; bad {
					pass.Reportf(imp.Pos(), "import %q in the simulation core (%s): return data to the caller instead, or suppress with //lint:ignore simpurity <reason>", path, why)
				}
			}
		}

		g := pass.Pkg.buildCallGraph()
		direct := map[*types.Func][]effect{}
		for _, fn := range g.order {
			fd := g.decls[fn]
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				// Builtin print/println write to stderr and escape any Writer
				// abstraction.
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
					if _, isBuiltin := pass.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin &&
						(id.Name == "print" || id.Name == "println") {
						direct[fn] = append(direct[fn], effect{kind: effectStdout, pos: call.Pos(), desc: "builtin " + id.Name})
						pass.Reportf(call.Pos(), "builtin %s in the simulation core: debugging output must not reach the process streams", id.Name)
					}
					return true
				}
				callee := pass.Pkg.calleeFunc(call)
				if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "fmt" {
					return true
				}
				if stdoutPrinters[callee.Name()] {
					direct[fn] = append(direct[fn], effect{kind: effectStdout, pos: call.Pos(), desc: "fmt." + callee.Name()})
					pass.Reportf(call.Pos(), "fmt.%s writes to process stdout from the simulation core: take an io.Writer or return the data", callee.Name())
					return true
				}
				if fprintFuncs[callee.Name()] && len(call.Args) > 0 {
					if w, isStream := pass.Pkg.processStream(call.Args[0]); isStream {
						direct[fn] = append(direct[fn], effect{kind: effectStdout, pos: call.Pos(), desc: "fmt." + callee.Name() + "(" + w + ", …)"})
						pass.Reportf(call.Pos(), "fmt.%s to %s from the simulation core: process streams are the CLI layer's; take an io.Writer or return the data", callee.Name(), w)
					}
				}
				return true
			})
		}

		// Transitive propagation: helpers do not launder process-stream
		// writes; every package-local call edge into the printing subgraph
		// is reported with the originating primitive.
		closed := propagateEffects(g, direct)
		for _, fn := range g.order {
			for _, cs := range g.calls[fn] {
				if e := effectsOfKinds(closed[cs.callee], effectStdout); e != nil {
					pass.Reportf(cs.pos, "call to %s transitively writes to the process streams (%s): the simulation core must stay embeddable", cs.callee.Name(), pass.Pkg.originLabel(e))
				}
			}
		}
	}
	return a
}
