package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// simPurityScope: the embeddable simulation core. These packages are
// linked into every driver (CLI, eval grids, benches, future services);
// process-global effects — stdout chatter, file handles, environment
// reads — would make them unusable as a library and non-reproducible as
// an experiment.
var simPurityScope = []string{
	"jobsched/internal/sim",
	"jobsched/internal/sched",
	"jobsched/internal/profile",
	"jobsched/internal/objective",
	// The streaming arrival path: sources feed the engine directly, so
	// the same embeddability rules apply — a Scanner reads from an
	// io.Reader handed in by the caller, never from a file it opened.
	"jobsched/internal/trace",
	"jobsched/internal/workload",
}

// impureImports are the packages that carry process-global I/O.
var impureImports = map[string]string{
	"os":        "process/file-system access",
	"io/ioutil": "file I/O (and deprecated)",
	"io/fs":     "file-system access",
	"log":       "writes to process-global stderr",
	"net":       "network I/O",
	"net/http":  "network I/O",
	"os/exec":   "subprocess execution",
}

// stdoutPrinters are the fmt functions that write to process stdout.
var stdoutPrinters = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
}

// SimPurityAnalyzer returns the core-purity analyzer: the simulation
// core must not import I/O packages or print to stdout. Results leave
// the core as returned values (schedules, metrics, telemetry events);
// rendering them is the CLI layer's job.
func SimPurityAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "simpurity",
		Doc:  "the simulation core stays embeddable: no os/file/network imports, no printing",
	}
	a.Run = func(pass *Pass) {
		if !inScope(pass.Pkg.Path, simPurityScope) {
			return
		}
		for _, f := range pass.Pkg.Files {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if why, bad := impureImports[path]; bad {
					pass.Reportf(imp.Pos(), "import %q in the simulation core (%s): return data to the caller instead, or suppress with //lint:ignore simpurity <reason>", path, why)
				}
			}
		}
		pass.Pkg.inspectWithStack(func(n ast.Node, _ []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			// Builtin print/println write to stderr and escape any Writer
			// abstraction.
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if _, isBuiltin := pass.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin &&
					(id.Name == "print" || id.Name == "println") {
					pass.Reportf(call.Pos(), "builtin %s in the simulation core: debugging output must not reach the process streams", id.Name)
				}
				return true
			}
			fn := pass.Pkg.calleeFunc(call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if fn.Pkg().Path() == "fmt" && stdoutPrinters[fn.Name()] {
				pass.Reportf(call.Pos(), "fmt.%s writes to process stdout from the simulation core: take an io.Writer or return the data", fn.Name())
			}
			return true
		})
	}
	return a
}
