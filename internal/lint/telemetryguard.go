package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

const telemetryPkgPath = "jobsched/internal/telemetry"

// TelemetryGuardAnalyzer returns the nil-recorder-gate analyzer: every
// call through the telemetry.Recorder interface must be dominated by a
// nil check on the same receiver expression. The nil-recorder fast path
// is a measured property (cmd/bench, BENCH_2.json): tracing disabled
// costs one branch per decision point. An unguarded rec.Record either
// panics on the nil path or forces the caller to keep a non-nil no-op
// recorder alive — both regressions.
//
// Two guard shapes are accepted:
//
//	if rec != nil { … rec.Record(ev) … }        // enclosing if (or a && conjunct)
//	if rec == nil { return } …; rec.Record(ev)  // early return in a preceding statement
//
// The analyzer runs everywhere in internal/ except the telemetry package
// itself, whose internals (e.g. the Multi fan-out over non-nil entries)
// own their invariants.
func TelemetryGuardAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "telemetryguard",
		Doc:  "telemetry.Recorder calls must be dominated by a nil check",
	}
	a.Run = func(pass *Pass) {
		if !inScope(pass.Pkg.Path, []string{"jobsched/internal"}) || pass.Pkg.Path == telemetryPkgPath {
			return
		}
		pass.Pkg.inspectWithStack(func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if !pass.Pkg.isRecorderInterface(sel.X) {
				return true
			}
			recv := flattenExpr(sel.X)
			if recv == "" {
				pass.Reportf(call.Pos(), "telemetry.Recorder method called on a non-trivial expression %s: bind it to a variable and nil-check it first", types.ExprString(sel.X))
				return true
			}
			if !nilGuarded(recv, n, stack) {
				pass.Reportf(call.Pos(), "%s.%s is not dominated by a `%s != nil` check: the nil-recorder fast path (BENCH_2.json gate) would panic or force allocation", recv, sel.Sel.Name, recv)
			}
			return true
		})
	}
	return a
}

// isRecorderInterface reports whether e's static type is the
// telemetry.Recorder interface.
func (p *Package) isRecorderInterface(e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	if obj.Pkg().Path() != telemetryPkgPath || obj.Name() != "Recorder" {
		return false
	}
	_, isIface := named.Underlying().(*types.Interface)
	return isIface
}

// nilGuarded reports whether the node is dominated by a nil check on the
// receiver chain `recv`.
func nilGuarded(recv string, node ast.Node, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch anc := stack[i].(type) {
		case *ast.IfStmt:
			// Guarded when the call sits in the *body* of `if recv != nil`.
			if containsNode(anc.Body, node) {
				for _, c := range conjuncts(anc.Cond) {
					if k, ok := nilComparison(c, token.NEQ); ok && k == recv {
						return true
					}
				}
			}
		case *ast.BlockStmt:
			// Guarded when an earlier statement of the block is
			// `if recv == nil { …terminal… }`.
			idx := -1
			for j, s := range anc.List {
				if containsNode(s, node) {
					idx = j
					break
				}
			}
			for j := 0; j < idx; j++ {
				ifs, ok := anc.List[j].(*ast.IfStmt)
				if !ok || ifs.Else != nil || !terminalBlock(ifs.Body) {
					continue
				}
				if k, ok := nilComparison(ifs.Cond, token.EQL); ok && k == recv {
					return true
				}
			}
		case *ast.FuncLit:
			// A function literal may run long after the guard it is
			// lexically inside was evaluated; require a guard within the
			// literal itself (inner ancestors were already checked).
			if containsNode(anc.Body, node) {
				return false
			}
		}
	}
	return false
}

// containsNode reports whether outer's source range covers inner.
func containsNode(outer, inner ast.Node) bool {
	return outer.Pos() <= inner.Pos() && inner.End() <= outer.End()
}

// terminalBlock reports whether the block's last statement leaves the
// enclosing scope (return/continue/break/goto or panic).
func terminalBlock(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
