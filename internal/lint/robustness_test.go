package lint

import (
	"fmt"
	"sort"
	"testing"
)

// renderResult serializes a Result into a canonical string so two runs
// can be compared byte for byte.
func renderResult(res Result) string {
	out := ""
	for _, d := range res.Diagnostics {
		out += fmt.Sprintf("D %s %s:%d:%d %s\n", d.Analyzer, d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message)
	}
	for _, s := range res.Suppressed {
		out += fmt.Sprintf("S %s %s:%d:%d %s\n", s.Analyzer, s.Pos.Filename, s.Pos.Line, s.Pos.Column, s.Reason)
	}
	return out
}

// requireSorted asserts the diagnostics arrive in the driver's
// documented order (file, line, column, analyzer).
func requireSorted(t *testing.T, label string, ds []Diagnostic) {
	t.Helper()
	if !sort.SliceIsSorted(ds, func(i, j int) bool { return lessPos(ds[i], ds[j]) }) {
		t.Errorf("%s: diagnostics not sorted", label)
	}
}

// TestDriverRobustness is the whole-framework smoke test: the full
// analyzer suite over the entire module and over every corpus fixture
// must complete without panicking, produce sorted output, and produce
// the same output on a second run over the same loaded packages — the
// call-graph propagation, the suppression machinery, and every analyzer
// walk must be deterministic, because the tier-1 gate diffs this output.
func TestDriverRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}

	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("module load returned no packages")
	}

	first := Run(pkgs, Analyzers())
	requireSorted(t, "module run 1", first.Diagnostics)
	second := Run(pkgs, Analyzers())
	requireSorted(t, "module run 2", second.Diagnostics)
	if a, b := renderResult(first), renderResult(second); a != b {
		t.Errorf("module analysis is not deterministic across runs:\n--- run 1\n%s--- run 2\n%s", a, b)
	}

	// Every corpus fixture, under its in-scope path, against the FULL
	// suite — not just its own analyzer. Cross-analyzer walks over
	// adversarial fixtures are where panics hide (nil type info, wanted
	// diagnostics from one analyzer tripping another's assumptions).
	for _, tc := range corpusCases {
		tc := tc
		t.Run(tc.dir, func(t *testing.T) {
			pkg, err := LoadDir(tc.dir, tc.importPath)
			if err != nil {
				t.Fatalf("loading corpus: %v", err)
			}
			one := Run([]*Package{pkg}, Analyzers())
			requireSorted(t, tc.dir, one.Diagnostics)
			two := Run([]*Package{pkg}, Analyzers())
			if a, b := renderResult(one), renderResult(two); a != b {
				t.Errorf("corpus analysis not deterministic:\n--- run 1\n%s--- run 2\n%s", a, b)
			}
		})
	}
}
