package lint

import (
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the backtick-delimited expectation regexps of a
// `// want ...` comment. A line may carry several expectations.
var wantRe = regexp.MustCompile("`([^`]+)`")

// expectation is one // want entry: a regexp the diagnostic message on
// that (file, line) must match.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// parseWants collects the // want expectations of a loaded package.
func parseWants(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := pkg.Fset.Position(c.Pos())
				text := c.Text
				idx := strings.Index(text, "want `")
				if idx < 0 {
					continue
				}
				ms := wantRe.FindAllStringSubmatch(text[idx:], -1)
				if len(ms) == 0 {
					t.Fatalf("%s: want comment without a backtick-quoted pattern: %s", pos, text)
				}
				for _, m := range ms {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, m[1], err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return wants
}

// corpusCases maps each analyzer to its fixture directory and the
// synthetic import path that places the fixture in (or out of) the
// analyzer's scope.
var corpusCases = []struct {
	analyzer   string
	dir        string
	importPath string
}{
	{"maprange", "testdata/maprange", "jobsched/internal/sim/fixture"},
	{"wallclock", "testdata/wallclock", "jobsched/internal/workload/fixture"},
	{"wallclock", "testdata/wallclock_allow", "jobsched/internal/sim"},
	{"wallclock", "testdata/wallclock_transitive", "jobsched/internal/sim"},
	{"telemetryguard", "testdata/telemetryguard", "jobsched/internal/sched/fixture"},
	{"checkedarith", "testdata/checkedarith", "jobsched/internal/objective/fixture"},
	{"checkedarith", "testdata/checkedarith_helpers", "jobsched/internal/job"},
	{"simpurity", "testdata/simpurity", "jobsched/internal/profile/fixture"},
	{"simpurity", "testdata/simpurity_transitive", "jobsched/internal/sched/fixture"},
	{"passprotocol", "testdata/passprotocol", "jobsched/internal/sched/fixture"},
	{"streamcontract", "testdata/streamcontract", "jobsched/internal/cli/fixture"},
	{"streamcontract", "testdata/streamcontract_sim", "jobsched/internal/sim"},
	{"journalsync", "testdata/journalsync", "jobsched/internal/eval/fixture"},
	{"errflow", "testdata/errflow", "jobsched/internal/trace/fixture"},
}

// TestAnalyzerCorpus runs every analyzer over its golden fixture
// directory and checks the findings against the // want annotations:
// every expectation must be matched by a diagnostic on its line, and
// every diagnostic must be expected.
func TestAnalyzerCorpus(t *testing.T) {
	for _, tc := range corpusCases {
		tc := tc
		t.Run(tc.dir, func(t *testing.T) {
			pkg, err := LoadDir(tc.dir, tc.importPath)
			if err != nil {
				t.Fatalf("loading corpus: %v", err)
			}
			analyzers, err := ByName(tc.analyzer)
			if err != nil {
				t.Fatal(err)
			}
			res := Run([]*Package{pkg}, analyzers)
			wants := parseWants(t, pkg)

			for _, d := range res.Diagnostics {
				found := false
				for _, w := range wants {
					if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
						continue
					}
					if w.pattern.MatchString(d.Message) {
						w.matched = true
						found = true
						break
					}
				}
				if !found {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("%s:%d: expected a %s diagnostic matching %q, got none",
						w.file, w.line, tc.analyzer, w.pattern)
				}
			}
			if len(res.Suppressed) != 0 {
				t.Errorf("corpus fixtures must not use suppressions, got %d", len(res.Suppressed))
			}
		})
	}
}

// TestScopeFiltering re-loads an analyzer's corpus under an import path
// outside its scope: every finding must vanish. This pins the scoping
// logic itself (a regression here would silently blind the gate).
func TestScopeFiltering(t *testing.T) {
	cases := []struct {
		analyzer string
		dir      string
		path     string
	}{
		{"maprange", "testdata/maprange", "jobsched/cmd/render"},
		{"checkedarith", "testdata/checkedarith", "jobsched/internal/stats"},
		{"simpurity", "testdata/simpurity", "jobsched/internal/cli"},
		{"wallclock", "testdata/wallclock", "jobsched/cmd/bench"},
		{"passprotocol", "testdata/passprotocol", "jobsched/internal/profile"},
		{"streamcontract", "testdata/streamcontract_sim", "jobsched/internal/stats"},
		{"journalsync", "testdata/journalsync", "jobsched/internal/sim"},
		{"errflow", "testdata/errflow", "jobsched/internal/cli"},
	}
	for _, tc := range cases {
		pkg, err := LoadDir(tc.dir, tc.path)
		if err != nil {
			t.Fatalf("loading corpus: %v", err)
		}
		analyzers, err := ByName(tc.analyzer)
		if err != nil {
			t.Fatal(err)
		}
		res := Run([]*Package{pkg}, analyzers)
		if len(res.Diagnostics) != 0 {
			t.Errorf("%s out of scope as %s: want 0 diagnostics, got %d (first: %s)",
				tc.dir, tc.path, len(res.Diagnostics), res.Diagnostics[0])
		}
	}
}

// TestCorpusCoversAllAnalyzers keeps the corpus honest: adding an
// analyzer without fixtures must fail the suite.
func TestCorpusCoversAllAnalyzers(t *testing.T) {
	covered := map[string]bool{}
	for _, tc := range corpusCases {
		covered[tc.analyzer] = true
	}
	for _, a := range Analyzers() {
		if !covered[a.Name] {
			t.Errorf("analyzer %s has no corpus entry in corpusCases", a.Name)
		}
	}
}

// TestAnalyzerMetadata pins names and docs (they appear in directives
// and diagnostics, so renames are breaking changes).
func TestAnalyzerMetadata(t *testing.T) {
	want := []string{"maprange", "wallclock", "telemetryguard", "checkedarith", "simpurity",
		"passprotocol", "streamcontract", "journalsync", "errflow"}
	all := Analyzers()
	if len(all) != len(want) {
		t.Fatalf("Analyzers() = %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("analyzer %d = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %s has no Run", a.Name)
		}
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Error("ByName(nosuch) should fail")
	}
}
