package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the module.
type Package struct {
	// Path is the import path ("jobsched/internal/sim").
	Path string
	// Dir is the absolute directory the sources were read from.
	Dir string
	// Fset positions the syntax trees (shared across all packages of a
	// load so cross-package positions stay comparable).
	Fset *token.FileSet
	// Files are the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Types and Info carry the go/types results.
	Types *types.Package
	Info  *types.Info
}

// Load parses and type-checks module packages rooted at moduleRoot
// (the directory holding go.mod). Patterns follow a minimal subset of
// the go tool's syntax: "./..." loads every package, "./dir/..." a
// subtree, "./dir" a single package. Test files and testdata/ trees are
// excluded — the gate's build/test steps own those.
func Load(moduleRoot string, patterns ...string) ([]*Package, error) {
	moduleRoot, err := filepath.Abs(moduleRoot)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(moduleRoot)
	if err != nil {
		return nil, err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs := map[string]bool{}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
		}
		if pat == "." || pat == "./" || pat == "" {
			pat = "."
		}
		root := filepath.Join(moduleRoot, filepath.FromSlash(pat))
		if !recursive {
			dirs[root] = true
			continue
		}
		err := filepath.Walk(root, func(path string, fi os.FileInfo, err error) error {
			if err != nil {
				return err
			}
			if !fi.IsDir() {
				return nil
			}
			name := fi.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			dirs[path] = true
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	var dirList []string
	for d := range dirs {
		dirList = append(dirList, d)
	}
	sort.Strings(dirList)

	fset := token.NewFileSet()
	// The source importer type-checks imported packages from source and
	// caches them; sharing one instance across the load keeps the cost
	// of the standard library to a single pass.
	imp := importer.ForCompiler(fset, "source", nil)

	var pkgs []*Package
	for _, dir := range dirList {
		rel, err := filepath.Rel(moduleRoot, dir)
		if err != nil {
			return nil, err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := loadDir(fset, imp, dir, importPath)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// LoadDir parses and type-checks a single directory as the given import
// path — the corpus-test entry point, where testdata fixtures emulate
// in-scope packages via a synthetic import path.
func LoadDir(dir, importPath string) (*Package, error) {
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	pkg, err := loadDir(fset, imp, dir, importPath)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("lint: no Go sources in %s", dir)
	}
	return pkg, nil
}

func loadDir(fset *token.FileSet, imp types.Importer, dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	return &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// modulePath reads the module path from go.mod under root.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: %s is not a module root: %w", root, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "module") {
			rest := strings.TrimSpace(strings.TrimPrefix(line, "module"))
			rest = strings.Trim(rest, `"`)
			if rest != "" {
				return rest, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}

// FindModuleRoot walks upward from dir to the nearest go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// hasPathPrefix reports whether the import path is the prefix itself or
// lies beneath it ("jobsched/internal/sim" matches prefix
// "jobsched/internal/sim" and "jobsched/internal" but not
// "jobsched/internal/simx").
func hasPathPrefix(path, prefix string) bool {
	return path == prefix || strings.HasPrefix(path, prefix+"/")
}

// inScope reports whether the package lies under any of the prefixes.
func inScope(pkgPath string, prefixes []string) bool {
	for _, p := range prefixes {
		if hasPathPrefix(pkgPath, p) {
			return true
		}
	}
	return false
}
