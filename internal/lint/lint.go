// Package lint is jobsched's repo-specific static-analysis framework.
//
// The paper's evaluation methodology (Sections 2–4) is only sound if the
// simulation is a deterministic, replayable function of the workload:
// Tables 1–8 compare algorithm families, so nothing in the pipeline may
// depend on wall-clock time, map iteration order, or unseeded
// randomness. Those invariants used to be a social contract enforced by
// review; this package makes them machine-checked. It is built on the
// standard library only (go/parser, go/types, go/importer — no
// golang.org/x/tools dependency) so the gate runs on a bare toolchain.
//
// A lint run loads every package of the module (see Load), runs each
// registered Analyzer over the typed syntax trees, and splits the raw
// findings into active diagnostics and suppressed ones. A finding is
// suppressed by an explicit, justified directive placed on the flagged
// line or on the line directly above it:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The reason is mandatory — a directive without one is itself reported
// (analyzer name "lintdirective") — and suppressions are budgeted by
// scripts/lint-budget.sh so they cannot accrete silently.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding of one analyzer, positioned in the source.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Suppressed is a finding neutralized by a //lint:ignore directive; the
// justification travels with it so reports and budgets can show it.
type Suppressed struct {
	Diagnostic
	Reason string `json:"reason"`
}

// Analyzer is one named check. Run inspects a single type-checked
// package and reports findings through the pass.
type Analyzer struct {
	// Name is the identifier used in diagnostics and ignore directives.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Run executes the check over one package.
	Run func(*Pass)
}

// Pass is the per-(analyzer, package) reporting context.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Result is the outcome of a lint run.
type Result struct {
	// Diagnostics are the active findings, sorted by position.
	Diagnostics []Diagnostic `json:"diagnostics"`
	// Suppressed are findings neutralized by a justified ignore
	// directive, sorted by position.
	Suppressed []Suppressed `json:"suppressed"`
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	pos       token.Position
	analyzers map[string]bool
	reason    string
	malformed string // non-empty: why the directive is invalid
}

const ignorePrefix = "//lint:ignore"

// parseIgnores extracts the ignore directives of one file, keyed by the
// source line they apply to. A directive on line L covers findings on
// line L (trailing comment) and line L+1 (comment above the statement).
func parseIgnores(fset *token.FileSet, f *ast.File) []ignoreDirective {
	var out []ignoreDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, ignorePrefix)
			d := ignoreDirective{pos: fset.Position(c.Pos())}
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // e.g. //lint:ignoreXYZ — not our directive
			}
			fields := strings.Fields(rest)
			switch {
			case len(fields) == 0:
				d.malformed = "missing analyzer name and reason"
			case len(fields) == 1:
				d.malformed = fmt.Sprintf("missing reason after analyzer %q (suppressions must be justified)", fields[0])
			default:
				d.analyzers = map[string]bool{}
				for _, a := range strings.Split(fields[0], ",") {
					d.analyzers[a] = true
				}
				d.reason = strings.Join(fields[1:], " ")
			}
			out = append(out, d)
		}
	}
	return out
}

// Run executes the analyzers over the packages and applies suppression.
func Run(pkgs []*Package, analyzers []*Analyzer) Result {
	var res Result
	for _, pkg := range pkgs {
		// Collect this package's directives: (file, line) -> directive.
		type lineKey struct {
			file string
			line int
		}
		directives := map[lineKey]*ignoreDirective{}
		for _, f := range pkg.Files {
			for _, d := range parseIgnores(pkg.Fset, f) {
				d := d
				if d.malformed != "" {
					res.Diagnostics = append(res.Diagnostics, Diagnostic{
						Analyzer: "lintdirective",
						Pos:      d.pos,
						Message:  "malformed //lint:ignore directive: " + d.malformed,
					})
					continue
				}
				directives[lineKey{d.pos.Filename, d.pos.Line}] = &d
			}
		}
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg}
			a.Run(pass)
			for _, diag := range pass.diags {
				var dir *ignoreDirective
				// Same line (trailing comment) or the line above.
				if d, ok := directives[lineKey{diag.Pos.Filename, diag.Pos.Line}]; ok && d.analyzers[a.Name] {
					dir = d
				} else if d, ok := directives[lineKey{diag.Pos.Filename, diag.Pos.Line - 1}]; ok && d.analyzers[a.Name] {
					dir = d
				}
				if dir != nil {
					res.Suppressed = append(res.Suppressed, Suppressed{Diagnostic: diag, Reason: dir.reason})
				} else {
					res.Diagnostics = append(res.Diagnostics, diag)
				}
			}
		}
	}
	sortDiags(res.Diagnostics)
	sort.Slice(res.Suppressed, func(i, j int) bool {
		return lessPos(res.Suppressed[i].Diagnostic, res.Suppressed[j].Diagnostic)
	})
	return res
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool { return lessPos(ds[i], ds[j]) })
}

func lessPos(a, b Diagnostic) bool {
	if a.Pos.Filename != b.Pos.Filename {
		return a.Pos.Filename < b.Pos.Filename
	}
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	if a.Pos.Column != b.Pos.Column {
		return a.Pos.Column < b.Pos.Column
	}
	return a.Analyzer < b.Analyzer
}

// Analyzers returns the full default analyzer suite.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapRangeAnalyzer(),
		WallclockAnalyzer(),
		TelemetryGuardAnalyzer(),
		CheckedArithAnalyzer(),
		SimPurityAnalyzer(),
		PassProtocolAnalyzer(),
		StreamContractAnalyzer(),
		JournalSyncAnalyzer(),
		ErrFlowAnalyzer(),
	}
}

// ByName returns the named analyzers from the default suite, in the
// given order.
func ByName(names ...string) ([]*Analyzer, error) {
	all := Analyzers()
	var out []*Analyzer
	for _, n := range names {
		found := false
		for _, a := range all {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
	}
	return out, nil
}
