package lint

import (
	"go/ast"
	"go/token"
)

// checkedArithScope: the packages that do exact time/area accounting.
// Times are int64 seconds and areas are nodes × seconds; a wraparound
// there yields a plausible negative value that corrupts metrics instead
// of crashing (the Window.overlap hang and the validateFailures
// repair-edge overflow are the canonical examples). The engine and the
// fault generators joined the scope when failure injection started doing
// At + Duration arithmetic on adversarial schedules. internal/profile
// joined when the tree kernel grew subtree aggregates: its end-time and
// area computations run against Infinity (= MaxInt64) deadline jobs, the
// exact inputs that wrap raw arithmetic. internal/queue joined with the
// pending-queue index: its maxE aggregate stores raw job estimates and
// its counters feed telemetry totals, both int64 domains where a wrap
// would silently misprune a scan.
var checkedArithScope = []string{
	"jobsched/internal/job",
	"jobsched/internal/objective",
	"jobsched/internal/sim",
	"jobsched/internal/faults",
	"jobsched/internal/profile",
	"jobsched/internal/queue",
}

// checkedArithHelpers are the saturating helpers in internal/job/arith.go
// whose bodies are the one place raw int64 arithmetic is expected.
var checkedArithHelpers = map[string]bool{
	"AddSat": true, "SubSat": true, "MulSat": true, "MulArea": true,
}

// CheckedArithAnalyzer returns the time-arithmetic overflow analyzer:
// inside the time-accounting packages, a non-constant int64 product, a
// sum of two non-constant int64 operands, or an int64 += is flagged
// unless it goes through the checked helpers (job.MulArea, job.AddSat,
// …) or carries a justification. Constant-folded expressions and
// var+constant sums are exempt: the compiler checks the former, and the
// latter cannot overflow for in-range simulation times by more than the
// constant, which the paper-scale invariants cover.
func CheckedArithAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "checkedarith",
		Doc:  "int64 time/area arithmetic must use the checked helpers in internal/job/arith.go",
	}
	a.Run = func(pass *Pass) {
		if !inScope(pass.Pkg.Path, checkedArithScope) {
			return
		}
		pass.Pkg.inspectWithStack(func(n ast.Node, stack []ast.Node) bool {
			if pass.Pkg.Path == "jobsched/internal/job" && checkedArithHelpers[enclosingFuncName(stack)] {
				return true // the helpers implement the raw arithmetic
			}
			switch n := n.(type) {
			case *ast.BinaryExpr:
				tv, ok := pass.Pkg.Info.Types[n]
				if !ok || !isInt64(tv.Type) || tv.Value != nil {
					return true // not int64, or constant-folded
				}
				if isDuration(tv.Type) {
					return true // CPU-timing bookkeeping, not simulation time
				}
				switch n.Op {
				case token.MUL:
					pass.Reportf(n.OpPos, "unchecked int64 multiplication %s: overflow wraps silently; use job.MulSat/job.MulArea or suppress with //lint:ignore checkedarith <reason>", exprSnippet(n))
				case token.ADD:
					if isConstOperand(pass.Pkg, n.X) || isConstOperand(pass.Pkg, n.Y) {
						return true
					}
					pass.Reportf(n.OpPos, "unchecked int64 addition %s: overflow wraps silently; use job.AddSat or suppress with //lint:ignore checkedarith <reason>", exprSnippet(n))
				}
			case *ast.AssignStmt:
				if n.Tok != token.ADD_ASSIGN || len(n.Lhs) != 1 {
					return true
				}
				tv, ok := pass.Pkg.Info.Types[n.Lhs[0]]
				if !ok || !isInt64(tv.Type) {
					return true
				}
				if isDuration(tv.Type) {
					return true // CPU-timing bookkeeping, not simulation time
				}
				pass.Reportf(n.TokPos, "unchecked int64 accumulation into %s: overflow wraps silently; use job.AddSat or suppress with //lint:ignore checkedarith <reason>", exprSnippet(n.Lhs[0]))
			}
			return true
		})
	}
	return a
}

func isConstOperand(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && tv.Value != nil
}

// exprSnippet renders a short description of the expression for the
// diagnostic message.
func exprSnippet(e ast.Expr) string {
	s := flattenExpr(e)
	if s != "" {
		return s
	}
	if b, ok := e.(*ast.BinaryExpr); ok {
		x, y := flattenExpr(b.X), flattenExpr(b.Y)
		if x == "" {
			x = "…"
		}
		if y == "" {
			y = "…"
		}
		return x + " " + b.Op.String() + " " + y
	}
	return "expression"
}
