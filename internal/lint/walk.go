package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// inspectWithStack walks every file of the package, calling fn with each
// node and the stack of its ancestors (outermost first, not including
// the node itself). Returning false prunes the subtree.
func (p *Package) inspectWithStack(fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			desc := fn(n, stack)
			if desc {
				stack = append(stack, n)
			}
			return desc
		})
	}
}

// flattenExpr renders an ident/selector chain ("s.rec", "opt.Recorder")
// as a stable string key, or "" if the expression is not a pure chain
// (calls, indexing, …). Parens are looked through.
func flattenExpr(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.ParenExpr:
		return flattenExpr(e.X)
	case *ast.SelectorExpr:
		base := flattenExpr(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}

// conjuncts splits a condition on && (through parens).
func conjuncts(e ast.Expr) []ast.Expr {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return conjuncts(e.X)
	case *ast.BinaryExpr:
		if e.Op == token.LAND {
			return append(conjuncts(e.X), conjuncts(e.Y)...)
		}
	}
	return []ast.Expr{e}
}

// nilComparison reports whether e is `<chain> op nil` (either operand
// order) and returns the chain's flattened key.
func nilComparison(e ast.Expr, op token.Token) (string, bool) {
	b, ok := e.(*ast.BinaryExpr)
	if !ok || b.Op != op {
		return "", false
	}
	if isNilIdent(b.Y) {
		if k := flattenExpr(b.X); k != "" {
			return k, true
		}
	}
	if isNilIdent(b.X) {
		if k := flattenExpr(b.Y); k != "" {
			return k, true
		}
	}
	return "", false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (package-level function, method, or interface method), or nil.
func (p *Package) calleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

// isInt64 reports whether t's core type is exactly int64.
func isInt64(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Int64
}

// isDuration reports whether t is exactly time.Duration. Duration's core
// type is int64, so it passes isInt64 — but Duration values are CPU-time
// bookkeeping (nanoseconds since a measurement started), not simulation
// times, and overflow there needs 292 years of wall clock.
func isDuration(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "time" && obj.Name() == "Duration"
}

// enclosingFuncName returns the name of the innermost enclosing function
// declaration on the stack ("" inside a function literal or at file
// scope).
func enclosingFuncName(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.FuncLit:
			return ""
		case *ast.FuncDecl:
			return n.Name.Name
		}
	}
	return ""
}

// processStream reports whether e denotes os.Stdout or os.Stderr (the
// package-level vars of the real os package, not a shadowing local) and
// returns its printable name.
func (p *Package) processStream(e ast.Expr) (string, bool) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "os" {
		return "", false
	}
	if sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr" {
		return "os." + sel.Sel.Name, true
	}
	return "", false
}

// fileOf returns the *ast.File containing pos.
func (p *Package) fileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// baseFilename returns the basename of the file holding pos.
func (p *Package) baseFilename(pos token.Pos) string {
	name := p.Fset.Position(pos).Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name
}
