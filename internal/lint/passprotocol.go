package lint

import (
	"go/ast"
	"go/types"
)

// passProtocolScope: the packages that drive profile kernels through the
// batched scheduling pass API (PR 6's BeginPass/StartMany/CommitPass
// protocol). internal/profile itself — the three implementations — is
// deliberately out of scope: it owns the pass state and manipulates it
// below the protocol.
var passProtocolScope = []string{
	"jobsched/internal/sched",
	"jobsched/internal/sim",
	"jobsched/internal/eval",
}

const profilePkgPath = "jobsched/internal/profile"

// passClobberMethods are the kernel operations that must not run between
// BeginPass and CommitPass: they discard or re-anchor the pass state
// (Reset and CloneInto zero the in-pass flag; a nested BeginPass drops
// the deferred coalescing queue), leaving a Tree kernel permanently
// non-canonical. Reserve/Release/EarliestFit remain legal mid-pass —
// they are exactly what StartMany performs — so this is not a blanket
// mutation ban but the protocol's safety boundary.
var passClobberMethods = map[string]string{
	"Reset":     "reinitializes the kernel and silently discards the open pass",
	"BeginPass": "re-opens the pass and drops the deferred coalescing queue of the first",
	"CloneInto": "copies kernel state while its canonical form is relaxed",
}

// isKernelMethod reports whether the call invokes the named method on a
// profile kernel (the Kernel interface or any of the implementations —
// every method declared in internal/profile), returning the receiver
// chain key.
func isKernelMethod(p *Package, call *ast.CallExpr, name string) (recv string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || sel.Sel.Name != name {
		return "", false
	}
	fn := p.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil || !hasPathPrefix(fn.Pkg().Path(), profilePkgPath) {
		return "", false
	}
	if sig, isSig := fn.Type().(*types.Signature); !isSig || sig.Recv() == nil {
		return "", false
	}
	return flattenExpr(sel.X), true
}

// PassProtocolAnalyzer returns the batch-pass contract analyzer. The
// kernel pass protocol is three calls — BeginPass(now), StartMany or the
// equivalent EarliestFit+Reserve loop, CommitPass() — and the Tree
// kernel defers reservation-edge coalescing for the whole pass, so a
// pass that never commits leaves the profile permanently non-canonical:
// every later query runs against a relaxed step function and the
// byte-identical-tables guarantee is gone. The analyzer enforces, per
// function:
//
//   - every BeginPass is paired with a CommitPass on the same receiver
//     in the same enclosing block (or an immediately-deferred
//     CommitPass), so the pass cannot leak out of the frame that opened
//     it;
//   - no return statement sits between BeginPass and CommitPass (an
//     early return would leave the pass open) unless the CommitPass is
//     deferred;
//   - no pass-clobbering operation (Reset, nested BeginPass, CloneInto)
//     runs on the receiver mid-pass;
//   - CommitPass never appears without a BeginPass on the same receiver
//     in the same function — the pass opens and closes in one frame.
func PassProtocolAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "passprotocol",
		Doc:  "kernel batch passes must open and close in one frame: BeginPass paired with CommitPass on all paths, no mid-pass clobbering",
	}
	a.Run = func(pass *Pass) {
		if !inScope(pass.Pkg.Path, passProtocolScope) {
			return
		}
		g := pass.Pkg.buildCallGraph()
		for _, fn := range g.order {
			checkPassProtocol(pass, g.decls[fn].Body)
		}
	}
	return a
}

// passCall is one pass-protocol-relevant call found in a statement.
type passCall struct {
	call *ast.CallExpr
	recv string
	name string
}

// findPassCalls collects the pass-protocol calls in a node's subtree, in
// source order. Deferred calls are reported with name "defer:"+method.
func findPassCalls(p *Package, root ast.Node) []passCall {
	var out []passCall
	names := []string{"BeginPass", "CommitPass", "Reset", "CloneInto"}
	ast.Inspect(root, func(n ast.Node) bool {
		deferred := false
		var call *ast.CallExpr
		switch n := n.(type) {
		case *ast.DeferStmt:
			deferred, call = true, n.Call
		case *ast.CallExpr:
			call = n
		default:
			return true
		}
		for _, name := range names {
			if recv, ok := isKernelMethod(p, call, name); ok {
				if deferred {
					name = "defer:" + name
				}
				out = append(out, passCall{call: call, recv: recv, name: name})
				break
			}
		}
		return !deferred // the DeferStmt's call was classified already
	})
	return out
}

// checkPassProtocol walks every block of the function body and audits
// each BeginPass found there against the pairing rules.
func checkPassProtocol(pass *Pass, body *ast.BlockStmt) {
	all := findPassCalls(pass.Pkg, body)
	if len(all) == 0 {
		return
	}

	// Rule: CommitPass (non-deferred) requires a BeginPass on the same
	// receiver somewhere in the function — the pass opens and closes in
	// one frame, never split across helpers.
	begins := map[string]bool{}
	for _, c := range all {
		if c.name == "BeginPass" {
			begins[c.recv] = true
		}
	}
	for _, c := range all {
		if (c.name == "CommitPass" || c.name == "defer:CommitPass") && !begins[c.recv] {
			pass.Reportf(c.call.Pos(), "%s.CommitPass without a BeginPass on %s in this function: the pass protocol opens and closes in one frame", c.recv, c.recv)
		}
	}

	// Audit each BeginPass in its enclosing block.
	ast.Inspect(body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, stmt := range block.List {
			recv, ok := beginPassStmt(pass.Pkg, stmt)
			if !ok {
				continue
			}
			auditPass(pass, block.List[i+1:], stmt, recv)
		}
		return true
	})
}

// beginPassStmt reports whether the statement is a direct
// `recv.BeginPass(now)` call statement.
func beginPassStmt(p *Package, stmt ast.Stmt) (string, bool) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return "", false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	return isKernelMethod(p, call, "BeginPass")
}

// auditPass checks the statements following a BeginPass in its block:
// the pass must be committed (a later CommitPass on the same receiver in
// the same block, or an immediately-following deferred CommitPass), no
// return may interleave unless the commit is deferred, and no
// pass-clobbering kernel call may run mid-pass.
func auditPass(pass *Pass, rest []ast.Stmt, begin ast.Stmt, recv string) {
	// An immediately-following `defer recv.CommitPass()` covers every
	// exit path, early returns included.
	if len(rest) > 0 {
		if ds, ok := rest[0].(*ast.DeferStmt); ok {
			if r, ok := isKernelMethod(pass.Pkg, ds.Call, "CommitPass"); ok && r == recv {
				return
			}
		}
	}

	for _, stmt := range rest {
		// Does this statement commit the pass at its own statement level?
		if es, ok := stmt.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if r, ok := isKernelMethod(pass.Pkg, call, "CommitPass"); ok && r == recv {
					return // pass closed; the audit of the span below already ran
				}
			}
		}
		// Mid-pass statements: no escapes, no clobbering.
		bad := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ReturnStmt:
				pass.Reportf(n.Pos(), "return between %s.BeginPass and %s.CommitPass leaves the pass open (deferred coalescing never replays): commit before returning or defer the commit", recv, recv)
			case *ast.FuncLit:
				return false // a literal's body runs elsewhere in time
			case *ast.CallExpr:
				for _, name := range []string{"Reset", "BeginPass", "CloneInto"} {
					if r, ok := isKernelMethod(pass.Pkg, n, name); ok && r == recv {
						pass.Reportf(n.Pos(), "%s.%s between BeginPass and CommitPass %s: close the pass first", recv, name, passClobberMethods[name])
						bad = true
					}
				}
				// A nested conditional CommitPass closes the pass on some
				// paths only; treat it as closing for audit purposes to
				// avoid cascading reports.
				if r, ok := isKernelMethod(pass.Pkg, n, "CommitPass"); ok && r == recv {
					bad = true
				}
			}
			return true
		})
		if bad {
			return
		}
	}
	pass.Reportf(begin.Pos(), "%s.BeginPass is never committed in this block: pair it with %s.CommitPass (or defer the commit immediately) so the kernel's canonical form is restored on every path", recv, recv)
}
