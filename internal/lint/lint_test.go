package lint

import (
	"strings"
	"testing"
)

// loadSuppressionFixture loads the suppression corpus under an in-scope
// path and runs the maprange analyzer over it.
func loadSuppressionFixture(t *testing.T) Result {
	t.Helper()
	pkg, err := LoadDir("testdata/suppression", "jobsched/internal/sim/fixture")
	if err != nil {
		t.Fatalf("loading suppression corpus: %v", err)
	}
	analyzers, err := ByName("maprange")
	if err != nil {
		t.Fatal(err)
	}
	return Run([]*Package{pkg}, analyzers)
}

// TestSuppressionMachinery exercises the //lint:ignore rules end to end:
// justified directives (above and trailing) suppress and carry their
// reason; a reason-less directive is rejected and leaves the finding
// active; a directive only covers the analyzers it names; a
// comma-separated list covers several.
func TestSuppressionMachinery(t *testing.T) {
	res := loadSuppressionFixture(t)

	// Suppressed: justifiedAbove, justifiedTrailing, multiName.
	if len(res.Suppressed) != 3 {
		t.Fatalf("suppressed = %d, want 3: %v", len(res.Suppressed), res.Suppressed)
	}
	reasons := map[string]bool{}
	for _, s := range res.Suppressed {
		if s.Analyzer != "maprange" {
			t.Errorf("suppressed analyzer = %q, want maprange", s.Analyzer)
		}
		if s.Reason == "" {
			t.Errorf("suppression at %v lost its reason", s.Pos)
		}
		reasons[s.Reason] = true
	}
	for _, want := range []string{
		"test fixture: order independence argued elsewhere",
		"trailing-comment form",
		"covers both analyzers",
	} {
		if !reasons[want] {
			t.Errorf("missing suppression reason %q (got %v)", want, reasons)
		}
	}

	// Active: missingReason's finding, wrongAnalyzer's finding, and the
	// malformed-directive report itself.
	var malformed, stillActive int
	for _, d := range res.Diagnostics {
		switch d.Analyzer {
		case "lintdirective":
			malformed++
			if !strings.Contains(d.Message, "missing reason") {
				t.Errorf("malformed-directive message = %q", d.Message)
			}
		case "maprange":
			stillActive++
		default:
			t.Errorf("unexpected analyzer %q in %s", d.Analyzer, d)
		}
	}
	if malformed != 1 {
		t.Errorf("lintdirective diagnostics = %d, want 1", malformed)
	}
	if stillActive != 2 {
		t.Errorf("active maprange diagnostics = %d, want 2 (missing-reason and wrong-analyzer sites): %v",
			stillActive, res.Diagnostics)
	}
}

// TestParseIgnoresMalformed pins the directive grammar details.
func TestParseIgnoresMalformed(t *testing.T) {
	pkg, err := LoadDir("testdata/suppression", "jobsched/internal/sim/fixture")
	if err != nil {
		t.Fatal(err)
	}
	var all []ignoreDirective
	for _, f := range pkg.Files {
		all = append(all, parseIgnores(pkg.Fset, f)...)
	}
	if len(all) != 5 {
		t.Fatalf("parsed %d directives, want 5", len(all))
	}
	var bad int
	for _, d := range all {
		if d.malformed != "" {
			bad++
			continue
		}
		if d.reason == "" || len(d.analyzers) == 0 {
			t.Errorf("well-formed directive at %v missing pieces: %+v", d.pos, d)
		}
	}
	if bad != 1 {
		t.Errorf("malformed directives = %d, want 1", bad)
	}
}

// TestLoadModule loads the real module and sanity-checks package
// identities — the shapes the driver depends on.
func TestLoadModule(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./internal/sim", "./internal/telemetry")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
	paths := map[string]bool{}
	for _, p := range pkgs {
		paths[p.Path] = true
		if len(p.Files) == 0 {
			t.Errorf("%s: no files", p.Path)
		}
		if p.Types == nil || p.Info == nil {
			t.Errorf("%s: not type-checked", p.Path)
		}
		for _, f := range p.Files {
			name := p.Fset.Position(f.Pos()).Filename
			if strings.HasSuffix(name, "_test.go") {
				t.Errorf("%s: test file %s loaded", p.Path, name)
			}
		}
	}
	if !paths["jobsched/internal/sim"] || !paths["jobsched/internal/telemetry"] {
		t.Errorf("unexpected package set: %v", paths)
	}
}

// TestTreeIsClean is the in-process version of the tier-1 gate step:
// the full default suite over the whole module must produce no active
// diagnostics, and every suppression in the tree must carry a reason.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(pkgs, Analyzers())
	for _, d := range res.Diagnostics {
		t.Errorf("tree not lint-clean: %s", d)
	}
	for _, s := range res.Suppressed {
		if strings.TrimSpace(s.Reason) == "" {
			t.Errorf("suppression without reason at %v", s.Pos)
		}
	}
}

// TestHasPathPrefix pins the scope-matching corner cases.
func TestHasPathPrefix(t *testing.T) {
	cases := []struct {
		path, prefix string
		want         bool
	}{
		{"jobsched/internal/sim", "jobsched/internal/sim", true},
		{"jobsched/internal/sim/fixture", "jobsched/internal/sim", true},
		{"jobsched/internal/simx", "jobsched/internal/sim", false},
		{"jobsched/internal", "jobsched/internal/sim", false},
	}
	for _, c := range cases {
		if got := hasPathPrefix(c.path, c.prefix); got != c.want {
			t.Errorf("hasPathPrefix(%q, %q) = %v, want %v", c.path, c.prefix, got, c.want)
		}
	}
}
