package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// journalSyncScope: the evaluation layer owns the crash-safe journal and
// the rendered result files, and the service layer owns the session WAL
// and snapshots; durability discipline is enforced in both.
var journalSyncScope = []string{
	"jobsched/internal/eval",
	"jobsched/internal/serve",
}

const evalPkgPath = "jobsched/internal/eval"

// JournalSyncAnalyzer returns the journal-durability analyzer. The
// journal's crash-safety argument (DESIGN §10) rests on three write
// disciplines that nothing in the type system enforces:
//
//   - every (*os.File).Write/WriteString is followed by a Sync on the
//     same file in the same function — an unsynced append can vanish in
//     a crash after the cell was reported complete, silently dropping
//     work on resume;
//   - os.Rename publishes a file only after its content is on disk: the
//     rename must be preceded (in the same function) by an fsync —
//     directly, or through a package-local call that transitively
//     reaches (*os.File).Sync (e.g. Journal.Record, which syncs every
//     line);
//   - Journal.Record is append-on-success only: recording a cell whose
//     Err field is set would make a transient failure permanent, because
//     resume trusts journaled cells and never re-runs them.
func JournalSyncAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "journalsync",
		Doc:  "journal durability: fsync after write and before rename, and never journal a failed cell",
	}
	a.Run = func(pass *Pass) {
		if !inScope(pass.Pkg.Path, journalSyncScope) {
			return
		}
		checkWriteSync(pass)
		checkRenameSync(pass)
		checkSuccessOnly(pass)
	}
	return a
}

// isOSFile reports whether t is *os.File.
func isOSFile(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "os" && obj.Name() == "File"
}

// osFileMethodCall reports whether the call invokes the named method on
// an *os.File value, returning the receiver chain key.
func (p *Package) osFileMethodCall(call *ast.CallExpr, name string) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return "", false
	}
	tv, ok := p.Info.Types[sel.X]
	if !ok || !isOSFile(tv.Type) {
		return "", false
	}
	return flattenExpr(sel.X), true
}

// checkWriteSync flags (*os.File).Write/WriteString calls with no later
// Sync on the same receiver chain in the same function.
func checkWriteSync(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Last Sync position per receiver chain.
			syncAfter := map[string]token.Pos{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if recv, ok := pass.Pkg.osFileMethodCall(call, "Sync"); ok && recv != "" {
					if call.Pos() > syncAfter[recv] {
						syncAfter[recv] = call.Pos()
					}
				}
				return true
			})
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, name := range []string{"Write", "WriteString"} {
					recv, ok := pass.Pkg.osFileMethodCall(call, name)
					if !ok {
						continue
					}
					if recv == "" || syncAfter[recv] < call.Pos() {
						pass.Reportf(call.Pos(), "%s on %q without a later %s.Sync() in this function: an unsynced journal write can vanish in a crash after the cell was reported complete", name, recv, recv)
					}
				}
				return true
			})
		}
	}
}

// syncReachers computes, over the package-local call graph, the set of
// declared functions that directly or transitively call (*os.File).Sync.
func syncReachers(pass *Pass, g *callGraph) map[*types.Func]bool {
	reaches := map[*types.Func]bool{}
	for _, fn := range g.order {
		ast.Inspect(g.decls[fn].Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, isSync := pass.Pkg.osFileMethodCall(call, "Sync"); isSync {
				reaches[fn] = true
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range g.order {
			if reaches[fn] {
				continue
			}
			for _, cs := range g.calls[fn] {
				if reaches[cs.callee] {
					reaches[fn] = true
					changed = true
					break
				}
			}
		}
	}
	return reaches
}

// checkRenameSync flags os.Rename calls not preceded (in the same
// function) by an fsync — a direct (*os.File).Sync, or a package-local
// call that transitively reaches one.
func checkRenameSync(pass *Pass) {
	g := pass.Pkg.buildCallGraph()
	reaches := syncReachers(pass, g)
	for _, fn := range g.order {
		var lastSync token.Pos
		ast.Inspect(g.decls[fn].Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, isSync := pass.Pkg.osFileMethodCall(call, "Sync"); isSync {
				if call.Pos() > lastSync {
					lastSync = call.Pos()
				}
				return true
			}
			callee := pass.Pkg.calleeFunc(call)
			if callee == nil || callee.Pkg() == nil {
				return true
			}
			if callee.Pkg() == pass.Pkg.Types && reaches[callee] {
				if call.Pos() > lastSync {
					lastSync = call.Pos()
				}
				return true
			}
			if callee.Pkg().Path() == "os" && callee.Name() == "Rename" {
				if lastSync == token.NoPos || lastSync > call.Pos() {
					pass.Reportf(call.Pos(), "os.Rename without a preceding fsync in this function: rename publishes the file name before its content is durable; Sync the temp file (directly or via a syncing helper) first")
				}
			}
			return true
		})
	}
}

// journalRecordCall reports whether the call is Journal.Record — a
// method named Record on a receiver whose (possibly pointer) type is
// named Journal and declared under internal/eval (the fixture corpus
// defines its own). Returns the cell argument, by convention the last.
func (p *Package) journalRecordCall(call *ast.CallExpr) (ast.Expr, bool) {
	fn := p.calleeFunc(call)
	if fn == nil || fn.Name() != "Record" || fn.Pkg() == nil || !hasPathPrefix(fn.Pkg().Path(), evalPkgPath) {
		return nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || len(call.Args) == 0 {
		return nil, false
	}
	t := sig.Recv().Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Journal" {
		return nil, false
	}
	return call.Args[len(call.Args)-1], true
}

// checkSuccessOnly flags Journal.Record calls whose cell argument
// visibly carries an error: a composite literal setting Err to a
// non-empty value, or an identifier whose Err field was assigned earlier
// in the function.
func checkSuccessOnly(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Chains whose .Err field is assigned in this function, with the
			// position of the first such assignment.
			errSet := map[string]token.Pos{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok {
					return true
				}
				for _, lhs := range as.Lhs {
					sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
					if !ok || sel.Sel.Name != "Err" {
						continue
					}
					if key := flattenExpr(sel.X); key != "" {
						if cur, seen := errSet[key]; !seen || as.Pos() < cur {
							errSet[key] = as.Pos()
						}
					}
				}
				return true
			})
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				cellArg, ok := pass.Pkg.journalRecordCall(call)
				if !ok {
					return true
				}
				if cl, isLit := ast.Unparen(cellArg).(*ast.CompositeLit); isLit {
					for _, el := range cl.Elts {
						kv, ok := el.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Err" && !isEmptyString(kv.Value) {
							pass.Reportf(call.Pos(), "Journal.Record of a cell with Err set: the journal is append-on-success only — a journaled failure is trusted by resume and never re-runs")
						}
					}
					return true
				}
				if key := flattenExpr(cellArg); key != "" {
					if pos, tainted := errSet[key]; tainted && pos < call.Pos() {
						pass.Reportf(call.Pos(), "Journal.Record of %q after its Err field was assigned: the journal is append-on-success only — a journaled failure is trusted by resume and never re-runs", key)
					}
				}
				return true
			})
		}
	}
}

func isEmptyString(e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && lit.Kind == token.STRING && (lit.Value == `""` || lit.Value == "``")
}
