package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// mapRangeScope lists the packages whose outputs feed the paper tables:
// any map-iteration-order dependence here silently perturbs results
// across runs and Go releases.
var mapRangeScope = []string{
	"jobsched/internal/sim",
	"jobsched/internal/sched",
	"jobsched/internal/profile",
	"jobsched/internal/eval",
	"jobsched/internal/analysis",
}

// MapRangeAnalyzer returns the determinism analyzer: `for … range` over
// a map inside the simulation core is flagged unless the loop body is
// provably order-insensitive. The analyzer proves order-insensitivity
// for three shapes:
//
//   - the loop binds neither key nor value (pure iteration counting);
//   - every statement is commutative integer aggregation (x++/x--,
//     integer += -= |= &= ^= *=) or a delete from the ranged map;
//   - every statement appends to one slice and the statement directly
//     after the loop sorts that slice (sort.Slice/Sort/Stable/...).
//
// Anything else — including floating-point accumulation, whose result
// depends on summation order — needs a sort or a justified
// //lint:ignore maprange directive.
func MapRangeAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "maprange",
		Doc:  "map iteration in the simulation core must be order-insensitive or sorted",
	}
	a.Run = func(pass *Pass) {
		if !inScope(pass.Pkg.Path, mapRangeScope) {
			return
		}
		pass.Pkg.inspectWithStack(func(n ast.Node, stack []ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Pkg.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if reason := mapLoopOrderRisk(pass.Pkg, rng, stack); reason != "" {
				pass.Reportf(rng.For, "range over map %s: %s (iteration order is randomized; sort the keys, restructure, or suppress with //lint:ignore maprange <reason>)",
					types.ExprString(rng.X), reason)
			}
			return true
		})
	}
	return a
}

// mapLoopOrderRisk classifies a map range loop; "" means provably
// order-insensitive, otherwise it describes the risk.
func mapLoopOrderRisk(pkg *Package, rng *ast.RangeStmt, stack []ast.Node) string {
	// Shape 1: `for range m` — neither key nor value bound.
	if rng.Key == nil && rng.Value == nil {
		return ""
	}

	rangedKey := flattenExpr(rng.X)

	// Track the single slice the body may append to (shape 3).
	appendTarget := ""
	sawAppend := false

	var classify func(s ast.Stmt) string
	classify = func(s ast.Stmt) string {
		switch s := s.(type) {
		case *ast.IncDecStmt:
			return "" // x++ / x-- is commutative
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return "multi-assignment in loop body"
			}
			switch s.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN,
				token.AND_ASSIGN, token.XOR_ASSIGN, token.MUL_ASSIGN:
				if tv, ok := pkg.Info.Types[s.Lhs[0]]; ok {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
						return "" // commutative integer aggregation
					}
				}
				return "non-integer compound assignment (order-sensitive accumulation)"
			case token.ASSIGN:
				// slice = append(slice, …): candidate for append-then-sort.
				if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
					if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" && len(call.Args) >= 2 {
						dst := flattenExpr(s.Lhs[0])
						if dst != "" && dst == flattenExpr(call.Args[0]) {
							if appendTarget == "" || appendTarget == dst {
								appendTarget = dst
								sawAppend = true
								return ""
							}
							return "appends to more than one slice"
						}
					}
				}
				return "assignment whose value depends on iteration order"
			}
			return "assignment whose value depends on iteration order"
		case *ast.ExprStmt:
			// delete(rangedMap, k) removes entries; order-irrelevant.
			if call, ok := s.X.(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "delete" && len(call.Args) == 2 {
					if rangedKey != "" && flattenExpr(call.Args[0]) == rangedKey {
						return ""
					}
				}
			}
			return "call with iteration-order-dependent effects"
		case *ast.BlockStmt:
			for _, inner := range s.List {
				if r := classify(inner); r != "" {
					return r
				}
			}
			return ""
		}
		return "loop body is not a recognized order-insensitive aggregation"
	}

	for _, s := range rng.Body.List {
		if r := classify(s); r != "" {
			return r
		}
	}

	if sawAppend {
		if nextStmtSorts(pkg, rng, stack, appendTarget) {
			return ""
		}
		return "collects map entries into " + appendTarget + " without sorting it immediately after the loop"
	}
	return ""
}

// nextStmtSorts reports whether the statement directly following the
// range loop in its enclosing block is a sort call on the named slice.
func nextStmtSorts(pkg *Package, rng *ast.RangeStmt, stack []ast.Node, slice string) bool {
	if len(stack) == 0 {
		return false
	}
	block, ok := stack[len(stack)-1].(*ast.BlockStmt)
	if !ok {
		return false
	}
	for i, s := range block.List {
		if s != ast.Stmt(rng) {
			continue
		}
		if i+1 >= len(block.List) {
			return false
		}
		expr, ok := block.List[i+1].(*ast.ExprStmt)
		if !ok {
			return false
		}
		call, ok := expr.X.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return false
		}
		fn := pkg.calleeFunc(call)
		if fn == nil || fn.Pkg() == nil {
			return false
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return false
		}
		return flattenExpr(call.Args[0]) == slice
	}
	return false
}
