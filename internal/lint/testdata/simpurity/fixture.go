// Corpus for the simpurity analyzer. Loaded with the synthetic import
// path jobsched/internal/profile/fixture — inside the embeddable core.
package fixture

import (
	"fmt"
	"io"
	"os" // want `import "os" in the simulation core`
	"strings"
)

// flaggedPrint writes to process stdout.
func flaggedPrint(v int) {
	fmt.Println("value", v) // want `fmt.Println writes to process stdout`
}

// flaggedPrintf likewise.
func flaggedPrintf(v int) {
	fmt.Printf("value %d\n", v) // want `fmt.Printf writes to process stdout`
}

// flaggedBuiltin: the predeclared println escapes any Writer.
func flaggedBuiltin(v int) {
	println(v) // want `builtin println in the simulation core`
}

// useOS keeps the flagged import referenced so the fixture type-checks.
func useOS() string {
	return os.DevNull
}

// flaggedFprintStdout: naming the stream explicitly is still a process
// write, not an injected Writer.
func flaggedFprintStdout(v int) {
	fmt.Fprintf(os.Stdout, "value %d\n", v) // want `fmt.Fprintf to os.Stdout from the simulation core`
}

// flaggedFprintStderr likewise.
func flaggedFprintStderr(v int) {
	fmt.Fprintln(os.Stderr, "value", v) // want `fmt.Fprintln to os.Stderr from the simulation core`
}

// okWriter: rendering through an injected io.Writer is the sanctioned
// shape.
func okWriter(w io.Writer, v int) {
	fmt.Fprintf(w, "value %d\n", v)
}

// okErrorf: error construction is not I/O.
func okErrorf(v int) error {
	return fmt.Errorf("bad value %d", v)
}

// okBuilder: in-memory formatting is fine.
func okBuilder(parts []string) string {
	var b strings.Builder
	for _, p := range parts {
		b.WriteString(p)
	}
	return b.String()
}
