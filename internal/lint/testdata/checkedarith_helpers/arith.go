// Corpus for the checkedarith helper exemption: loaded with the import
// path jobsched/internal/job, the bodies of the checked helpers
// themselves may use raw int64 arithmetic (they implement the checks).
// Arithmetic in any other function of the package is still flagged.
package job

func AddSat(a, b int64) int64 {
	s := a + b
	if (a >= 0) == (b >= 0) && (s >= 0) != (a >= 0) {
		if a >= 0 {
			return 1<<63 - 1
		}
		return -1 << 63
	}
	return s
}

func MulSat(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	p := a * b
	if p/b != a {
		return 1<<63 - 1
	}
	return p
}

func notAHelper(a, b int64) int64 {
	return a + b // want `unchecked int64 addition`
}
