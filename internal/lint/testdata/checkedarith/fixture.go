// Corpus for the checkedarith (time-arithmetic overflow) analyzer.
// Loaded with the synthetic import path
// jobsched/internal/objective/fixture — inside the time-accounting
// scope.
package fixture

import "time"

type alloc struct {
	start, end int64
	nodes      int
}

// flaggedProduct is the area = nodes × time pattern.
func flaggedProduct(a alloc) int64 {
	return int64(a.nodes) * (a.end - a.start) // want `unchecked int64 multiplication`
}

// flaggedSum adds two non-constant times.
func flaggedSum(start, estimate int64) int64 {
	return start + estimate // want `unchecked int64 addition`
}

// flaggedAccumulate: += on an int64 accumulator.
func flaggedAccumulate(spans []int64) int64 {
	var total int64
	for _, s := range spans {
		total += s // want `unchecked int64 accumulation into total`
	}
	return total
}

// okVarPlusConstant: adding a literal cannot overflow by more than the
// literal; exempt to keep the signal/noise ratio useful.
func okVarPlusConstant(t int64) int64 {
	return t + 3600
}

// okConstantFolded: the compiler evaluates and range-checks this.
func okConstantFolded() int64 {
	const day = 24 * 3600
	return day * 7
}

// okFloat: float64 arithmetic loses precision but does not wrap.
func okFloat(a alloc) float64 {
	return float64(a.nodes) * float64(a.end-a.start)
}

// okSmallInts: only int64 carries simulation times.
func okSmallInts(a, b int32) int32 {
	return a * b
}

// okSubtraction: spans (end - start) stay in range for ordered times.
func okSubtraction(a alloc) int64 {
	return a.end - a.start
}

// okDuration: time.Duration shares int64's core type but carries CPU-time
// bookkeeping, not simulation times — overflowing it needs 292 years of
// wall clock, so the saturating helpers would only add noise.
func okDuration(d, e time.Duration) time.Duration {
	d += e
	return d + e
}
