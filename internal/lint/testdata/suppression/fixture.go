// Corpus for the suppression machinery itself (exercised by
// TestSuppressionMachinery, not the want-comment harness). Loaded with
// the synthetic import path jobsched/internal/sim/fixture.
package fixture

// justifiedAbove: a well-formed directive on the line above the finding
// suppresses it and records the reason.
func justifiedAbove(m map[int]int) int {
	last := 0
	//lint:ignore maprange test fixture: order independence argued elsewhere
	for _, v := range m {
		last = v
	}
	return last
}

// justifiedTrailing: a well-formed directive on the finding's own line.
func justifiedTrailing(m map[int]int) int {
	last := 0
	for _, v := range m { //lint:ignore maprange trailing-comment form
		last = v
	}
	return last
}

// missingReason: a directive without a justification is rejected — the
// finding stays active and the directive itself is reported.
func missingReason(m map[int]int) int {
	last := 0
	//lint:ignore maprange
	for _, v := range m {
		last = v
	}
	return last
}

// wrongAnalyzer: a directive only silences the analyzers it names.
func wrongAnalyzer(m map[int]int) int {
	last := 0
	//lint:ignore wallclock reason that names the wrong analyzer
	for _, v := range m {
		last = v
	}
	return last
}

// multiName: one directive may name several analyzers.
func multiName(m map[int]int) int {
	last := 0
	//lint:ignore wallclock,maprange covers both analyzers
	for _, v := range m {
		last = v
	}
	return last
}
