// Corpus for the streamcontract analyzer's caller-side rules. Loaded
// with the synthetic import path jobsched/internal/cli/fixture — a
// driver wiring sources and sinks into the engine.
package fixture

import (
	"jobsched/internal/job"
	"jobsched/internal/sim"
)

// flaggedNoNilCheck dereferences the done sentinel on the first
// exhausted source.
func flaggedNoNilCheck(src sim.Source) (job.ID, error) {
	j, err := src.Next() // want `Source.Next result "j" is never nil-checked`
	if err != nil {
		return 0, err
	}
	return j.ID, nil
}

// flaggedBlankErr: a decode failure mid-stream must stop the run.
func flaggedBlankErr(src sim.Source) *job.Job {
	j, _ := src.Next() // want `Source.Next error discarded with _`
	if j == nil {
		return nil
	}
	return j
}

// flaggedBlankJob: dropping the job drops the sentinel with it.
func flaggedBlankJob(src sim.Source) error {
	_, err := src.Next() // want `Source.Next job result discarded with _`
	return err
}

// okDrainLoop: the canonical consumption loop.
func okDrainLoop(src sim.Source) (int, error) {
	n := 0
	for {
		j, err := src.Next()
		if err != nil {
			return n, err
		}
		if j == nil {
			return n, nil
		}
		n++
	}
}

// flaggedOptionsLiteral: validation needs the retained schedule that
// streaming never materializes.
func flaggedOptionsLiteral(s sim.Sink) sim.Options {
	return sim.Options{Validate: true, Sink: s} // want `sim.Options combines Sink with Validate: true`
}

// flaggedFieldPair: the same combination assembled field by field.
func flaggedFieldPair(opt *sim.Options, s sim.Sink) {
	opt.Validate = true
	opt.Sink = s // want `opt sets both Sink and Validate: true`
}

// okValidateOnly: a batch run may validate.
func okValidateOnly() sim.Options {
	return sim.Options{Validate: true}
}

// okSinkOnly: a streaming run may sink.
func okSinkOnly(s sim.Sink) sim.Options {
	return sim.Options{Sink: s}
}

// okSinkNilLiteral: an explicit nil sink is not streaming mode.
func okSinkNilLiteral() sim.Options {
	return sim.Options{Validate: true, Sink: nil}
}
