// The non-allowlisted file of the transitive-wallclock corpus: calls
// into the clock-tainted subgraph of engine.go are violations even
// though the primitive read lives on the allowlist — the exemption is
// positional and does not travel with helpers.
package sim

import "math/rand"

// flaggedWrapper re-exports the allowlisted clock read to the rest of
// the package.
func flaggedWrapper() int64 {
	return measureNow() // want `call to measureNow transitively reads the wall clock \(time.Now at engine.go:\d+\)`
}

// flaggedDeep: propagation closes over chains, not just direct calls.
func flaggedDeep() int64 {
	return flaggedWrapper() // want `call to flaggedWrapper transitively reads the wall clock`
}

// drawGlobal is a direct global-randomness violation in a
// non-allowlisted file.
func drawGlobal() int64 {
	return rand.Int63() // want `package-level rand.Int63 draws from the process-global generator`
}

// flaggedRandCaller carries the callee's randomness transitively.
func flaggedRandCaller() int64 {
	return drawGlobal() // want `call to drawGlobal transitively draws process-global randomness \(rand.Int63 at helpers.go:\d+\)`
}

// okPure: calling a pure sibling stays silent.
func okPure() int64 {
	return pureSum(3, 4)
}

func pureSum(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
