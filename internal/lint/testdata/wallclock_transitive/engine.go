// Corpus for the wallclock analyzer's transitive propagation. Loaded
// with the synthetic import path jobsched/internal/sim, so this file —
// named engine.go — sits on the CPU-timing allowlist: its direct clock
// reads are sanctioned and produce no diagnostics.
package sim

import "time"

// measureNow is a direct clock read in the allowlisted file: no report
// here, but the effect is recorded and propagates to callers outside
// this file.
func measureNow() int64 {
	return time.Now().UnixNano()
}

// okWiring: calling the tainted helper from within the allowlisted file
// is the measurement plumbing the exemption exists for.
func okWiring() int64 {
	return measureNow()
}
