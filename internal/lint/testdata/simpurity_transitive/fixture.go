// Corpus for the simpurity analyzer's transitive propagation. Loaded
// with the synthetic import path jobsched/internal/sched/fixture —
// inside the embeddable core, where wrapping a print in a helper must
// move the diagnostics around, never silence them.
package fixture

import "fmt"

// emit is the direct violation the helpers below launder.
func emit(msg string) {
	fmt.Println(msg) // want `fmt.Println writes to process stdout`
}

// flaggedHelper reaches the print through one call.
func flaggedHelper() {
	emit("pass done") // want `call to emit transitively writes to the process streams \(fmt.Println at fixture.go:\d+\)`
}

// flaggedDeep reaches it through two.
func flaggedDeep() {
	flaggedHelper() // want `call to flaggedHelper transitively writes to the process streams`
}

// flaggedClosure: function literals attribute to their enclosing
// declaration, so the laundering is caught inside closures too.
func flaggedClosure() func() {
	return func() {
		emit("from closure") // want `call to emit transitively writes to the process streams`
	}
}

// okFormat: pure formatting does not taint callers.
func okFormat(v int) string {
	return describe(v)
}

func describe(v int) string {
	return fmt.Sprintf("v=%d", v)
}
