// Corpus for the passprotocol analyzer. Loaded with the synthetic
// import path jobsched/internal/sched/fixture — a scheduler-side driver
// of the real profile kernels, where the BeginPass/CommitPass pairing
// rules apply.
package fixture

import "jobsched/internal/profile"

// okPaired: the canonical batch pass.
func okPaired(t *profile.Tree, reqs []profile.StartReq) []int64 {
	var starts []int64
	t.BeginPass(0)
	starts = t.StartMany(reqs, starts)
	t.CommitPass()
	return starts
}

// okDeferred: an immediately-deferred commit covers every exit path,
// early returns included.
func okDeferred(t *profile.Tree, reqs []profile.StartReq) []int64 {
	t.BeginPass(0)
	defer t.CommitPass()
	if len(reqs) == 0 {
		return nil
	}
	return t.StartMany(reqs, nil)
}

// okMidPassReserve: EarliestFit+Reserve mid-pass is exactly the loop
// StartMany performs — queries and reservations are legal inside a pass.
func okMidPassReserve(t *profile.Tree) {
	t.BeginPass(0)
	at := t.EarliestFit(4, 100, 0)
	if at != profile.Infinity {
		t.Reserve(4, at, at+100)
	}
	t.CommitPass()
}

// flaggedEarlyReturn: the error path escapes with the pass still open.
func flaggedEarlyReturn(t *profile.Tree, reqs []profile.StartReq) []int64 {
	t.BeginPass(0)
	if len(reqs) == 0 {
		return nil // want `return between t.BeginPass and t.CommitPass leaves the pass open`
	}
	starts := t.StartMany(reqs, nil)
	t.CommitPass()
	return starts
}

// flaggedNeverCommitted: the pass is opened and simply dropped.
func flaggedNeverCommitted(t *profile.Tree, reqs []profile.StartReq) {
	t.BeginPass(0) // want `t.BeginPass is never committed in this block`
	t.StartMany(reqs, nil)
}

// flaggedOrphanCommit: a commit with no begin in the same function means
// the pass was opened elsewhere — the protocol never splits frames.
func flaggedOrphanCommit(t *profile.Tree) {
	t.CommitPass() // want `t.CommitPass without a BeginPass on t in this function`
}

// flaggedMidPassReset: Reset discards the open pass.
func flaggedMidPassReset(t *profile.Tree) {
	t.BeginPass(0)
	t.Reset(8, 0) // want `t.Reset between BeginPass and CommitPass`
	t.CommitPass()
}

// flaggedNestedBegin: re-opening drops the first pass's deferred work.
func flaggedNestedBegin(t *profile.Tree) {
	t.BeginPass(0)
	t.BeginPass(1) // want `t.BeginPass between BeginPass and CommitPass`
	t.CommitPass()
}

// flaggedCloneMidPass: copying a kernel whose canonical form is relaxed.
func flaggedCloneMidPass(t, dst *profile.Tree) {
	t.BeginPass(0)
	t.CloneInto(dst) // want `t.CloneInto between BeginPass and CommitPass`
	t.CommitPass()
}

// okDistinctReceivers: passes on different kernels are independent.
func okDistinctReceivers(a, b *profile.Tree, reqs []profile.StartReq) {
	a.BeginPass(0)
	b.Reset(4, 0)
	a.StartMany(reqs, nil)
	a.CommitPass()
}
