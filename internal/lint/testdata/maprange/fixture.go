// Corpus for the maprange (determinism) analyzer. Loaded by the test
// harness with the synthetic import path jobsched/internal/sim/fixture,
// which puts it inside the analyzer's simulation-core scope.
package fixture

import "sort"

// flaggedSideEffect: the body's effect depends on which key comes first.
func flaggedSideEffect(m map[int]int) int {
	last := 0
	for _, v := range m { // want `range over map m: assignment whose value depends on iteration order`
		last = v
	}
	return last
}

// flaggedFloatSum: float accumulation is order-sensitive (FP addition is
// not associative).
func flaggedFloatSum(m map[int]float64) float64 {
	var sum float64
	for _, v := range m { // want `non-integer compound assignment`
		sum += v
	}
	return sum
}

// flaggedCollectNoSort: keys are collected but never sorted.
func flaggedCollectNoSort(m map[string]bool) []string {
	var keys []string
	for k := range m { // want `collects map entries into keys without sorting`
		keys = append(keys, k)
	}
	return keys
}

// flaggedCall: arbitrary calls may observe the order.
func flaggedCall(m map[int]int, f func(int)) {
	for k := range m { // want `call with iteration-order-dependent effects`
		f(k)
	}
}

// okPureCount binds no loop variables.
func okPureCount(m map[int]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// okIntAggregate: integer sums/maxima-by-or are commutative.
func okIntAggregate(m map[string]int64) int64 {
	var total int64
	for _, v := range m {
		total += v
	}
	return total
}

// okDelete: deleting from the ranged map is order-irrelevant.
func okDelete(m map[int]int) {
	for k := range m {
		delete(m, k)
	}
}

// okCollectThenSort: the canonical sorted-keys idiom.
func okCollectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// okSliceRange: ranging over a slice is ordered.
func okSliceRange(s []int, f func(int)) {
	for _, v := range s {
		f(v)
	}
}
