// Corpus for the wallclock/randomness-hygiene analyzer. Loaded with the
// synthetic import path jobsched/internal/workload/fixture: inside the
// internal tree, not on the CPU-timing allowlist, and outside
// internal/stats (so even seeded constructors are flagged toward the
// stats wrappers).
package fixture

import (
	"math/rand"
	"time"
)

func flaggedNow() int64 {
	return time.Now().Unix() // want `time.Now reads the wall clock`
}

func flaggedSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since reads the wall clock`
}

func flaggedSleep() {
	time.Sleep(time.Second) // want `time.Sleep reads the wall clock`
}

func flaggedAfterFunc() *time.Timer {
	return time.AfterFunc(time.Second, func() {}) // want `time.AfterFunc reads the wall clock`
}

func flaggedGlobalRand() int {
	return rand.Intn(10) // want `package-level rand.Intn draws from the process-global generator`
}

func flaggedConstructorOutsideStats(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want `rand.New outside internal/stats` `rand.NewSource outside internal/stats`
}

// okSeededMethods: methods on an explicit *rand.Rand carry their seed.
func okSeededMethods(r *rand.Rand) int64 {
	return r.Int63n(100)
}

// okDurationArithmetic: time.Duration values and conversions are pure.
func okDurationArithmetic(d time.Duration) float64 {
	return d.Seconds() + (3 * time.Second).Seconds()
}
