// Corpus for the telemetryguard analyzer. Loaded with the synthetic
// import path jobsched/internal/sched/fixture; imports the real
// telemetry package so the Recorder interface type matches.
package fixture

import "jobsched/internal/telemetry"

type starter struct {
	rec telemetry.Recorder
}

// flaggedUnguarded is the regression shape of ISSUE 3's satellite: the
// nil guard around an emission was dropped.
func (s *starter) flaggedUnguarded(now int64) {
	s.rec.Record(telemetry.Event{At: now}) // want `s.rec.Record is not dominated by a .s.rec != nil. check`
}

// flaggedOuterGuardInnerClosure: the closure may outlive the guard.
func (s *starter) flaggedOuterGuardInnerClosure() func() {
	if s.rec != nil {
		return func() {
			s.rec.Record(telemetry.Event{}) // want `s.rec.Record is not dominated`
		}
	}
	return func() {}
}

// flaggedGuardOnOtherVar: the checked chain must be the receiver chain.
func flaggedGuardOnOtherVar(a, b telemetry.Recorder) {
	if a != nil {
		b.Record(telemetry.Event{}) // want `b.Record is not dominated`
	}
}

// flaggedNonTrivialReceiver: calls through an arbitrary expression
// cannot be guard-checked; bind to a variable first.
func flaggedNonTrivialReceiver(pick func() telemetry.Recorder) {
	pick().Record(telemetry.Event{}) // want `called on a non-trivial expression`
}

// okDirectGuard is the canonical emission site.
func (s *starter) okDirectGuard(now int64) {
	if s.rec != nil {
		s.rec.Record(telemetry.Event{At: now})
	}
}

// okConjunctGuard mirrors the conservative starter's combined condition.
func (s *starter) okConjunctGuard(depth int) {
	if depth == 0 && s.rec != nil && depth < 10 {
		s.rec.Record(telemetry.Event{Depth: depth})
	}
}

// okEarlyReturn mirrors the guard-return shape.
func okEarlyReturn(rec telemetry.Recorder) {
	if rec == nil {
		return
	}
	rec.Record(telemetry.Event{})
	rec.Record(telemetry.Event{Depth: 1})
}

// okGuardedClosure: the guard sits inside the literal that emits.
func (s *starter) okGuardedClosure() func() {
	return func() {
		if s.rec != nil {
			s.rec.Record(telemetry.Event{})
		}
	}
}

// okConcreteBuffer: calls on a concrete recorder implementation (not the
// interface) are the implementation's own business.
func okConcreteBuffer(b *telemetry.Buffer) {
	b.Record(telemetry.Event{})
}
