// Corpus for the errflow analyzer. Loaded with the synthetic import
// path jobsched/internal/trace/fixture — inside the layers whose errors
// carry correctness information.
package fixture

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"
)

func run() error { return nil }

func produce() (int, error) { return 0, nil }

// flaggedDropped: the error evaporates.
func flaggedDropped() {
	run() // want `run returns an error that is never checked`
}

// flaggedDefer: the classic — Close is where buffered write errors
// surface.
func flaggedDefer(f *os.File) {
	defer f.Close() // want `defer f.Close returns an error that is never checked`
}

// flaggedGo: a goroutine's error return has nowhere to go.
func flaggedGo() {
	go run() // want `go run returns an error that is never checked`
}

// flaggedBlankNoReason: the discard itself is fine, the silence is not.
func flaggedBlankNoReason() {
	_ = run() // want `error discarded with ._. and no reason`
}

// okBlankWithReason: the comment states why the error cannot matter.
func okBlankWithReason() {
	// best-effort: the trace here is advisory and a failure only skips it
	_ = run()
}

func okBlankSameLine() {
	_ = run() // advisory: failure only skips the optional trace
}

// flaggedBlankInTuple: the error slot of a multi-value result.
func flaggedBlankInTuple(w io.Writer) int {
	n, _ := w.Write([]byte("x")) // want `error discarded with ._. and no reason`
	return n
}

// okCheckedTuple: the non-error results may be blanked freely.
func okCheckedTuple() error {
	_, err := produce()
	return err
}

// okChecked: the ordinary shape.
func okChecked() error {
	if err := run(); err != nil {
		return err
	}
	return nil
}

// okStderr: best-effort diagnostics to the process error stream.
func okStderr(msg string) {
	fmt.Fprintln(os.Stderr, msg)
}

// okInfallibleBuffer: bytes.Buffer writes are documented to never fail.
func okInfallibleBuffer(b *bytes.Buffer) {
	b.WriteString("x")
	fmt.Fprintf(b, "%d", 1)
}

// okInfallibleBuilder: strings.Builder likewise.
func okInfallibleBuilder(sb *strings.Builder) {
	sb.WriteString("y")
}

// okNoError: calls without an error result are none of this analyzer's
// business.
func okNoError(xs []int) {
	sort(xs)
}

func sort(xs []int) {
	for i := range xs {
		_ = i
	} // the loop only exists to use the argument
}
