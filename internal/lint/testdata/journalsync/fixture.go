// Corpus for the journalsync analyzer. Loaded with the synthetic import
// path jobsched/internal/eval/fixture — inside the evaluation layer's
// durability boundary. The local Journal/Cell types mirror the real
// journal's shape so the success-only rule can be pinned without
// importing the package under test.
package fixture

import (
	"fmt"
	"os"
)

// flaggedUnsyncedWrite: the append may sit in the page cache when the
// caller reports the cell complete.
func flaggedUnsyncedWrite(f *os.File, line []byte) error {
	_, err := f.Write(line) // want `Write on "f" without a later f.Sync\(\)`
	return err
}

// flaggedUnsyncedWriteString: same rule, string flavor.
func flaggedUnsyncedWriteString(f *os.File) error {
	_, err := f.WriteString("cell\n") // want `WriteString on "f" without a later f.Sync\(\)`
	return err
}

// okWriteThenSync: the journal discipline.
func okWriteThenSync(f *os.File, line []byte) error {
	if _, err := f.Write(line); err != nil {
		return err
	}
	return f.Sync()
}

// flaggedRenameNoSync: rename publishes the name before the bytes are
// durable.
func flaggedRenameNoSync(tmp, dst string) error {
	return os.Rename(tmp, dst) // want `os.Rename without a preceding fsync`
}

// okRenameAfterSync: direct fsync before publishing.
func okRenameAfterSync(f *os.File, tmp, dst string) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return os.Rename(tmp, dst)
}

// okRenameViaHelper: the fsync may live in a package-local helper — the
// analyzer closes over the call graph.
func okRenameViaHelper(f *os.File, tmp, dst string) error {
	if err := flush(f); err != nil {
		return err
	}
	return os.Rename(tmp, dst)
}

func flush(f *os.File) error {
	if _, err := f.WriteString("tail\n"); err != nil {
		return err
	}
	return f.Sync()
}

// Journal mirrors the real journal for the success-only rule.
type Journal struct{ f *os.File }

// Cell mirrors eval.Cell's error-carrying shape.
type Cell struct {
	Value float64
	Err   string
}

// Record appends one cell line and fsyncs, like the real journal.
func (j *Journal) Record(grid string, c Cell) error {
	line := fmt.Sprintf("%s %g %s\n", grid, c.Value, c.Err)
	if _, err := j.f.WriteString(line); err != nil {
		return err
	}
	return j.f.Sync()
}

// flaggedRecordErrLiteral journals a failure outright.
func flaggedRecordErrLiteral(j *Journal) error {
	return j.Record("grid", Cell{Value: 1, Err: "simulate: boom"}) // want `Journal.Record of a cell with Err set`
}

// flaggedRecordTainted journals a cell after marking it failed.
func flaggedRecordTainted(j *Journal, c Cell, err error) error {
	c.Err = err.Error()
	return j.Record("grid", c) // want `Journal.Record of "c" after its Err field was assigned`
}

// okRecordClean: success-only appends.
func okRecordClean(j *Journal, c Cell) error {
	return j.Record("grid", c)
}

// okRecordEmptyErrLiteral: an explicit empty Err is not a failure.
func okRecordEmptyErrLiteral(j *Journal) error {
	return j.Record("grid", Cell{Value: 2, Err: ""})
}
