// Corpus for the streamcontract analyzer's retention rule, which
// applies only inside the engine package itself. Loaded with the
// synthetic import path jobsched/internal/sim.
package sim

import "jobsched/internal/job"

// flaggedRetain grows a job slice with no reset in sight: the O(stream)
// footprint streaming mode exists to avoid.
func flaggedRetain(jobs []*job.Job, j *job.Job) []*job.Job {
	jobs = append(jobs, j) // want `append grows job slice "jobs" without a jobs = jobs\[:0\] reset`
	return jobs
}

// flaggedFieldRetain: the same leak through a struct field.
type collector struct {
	kept []*job.Job
}

func (c *collector) flaggedAdd(j *job.Job) {
	c.kept = append(c.kept, j) // want `append grows job slice "c.kept" without a c.kept = c.kept\[:0\] reset`
}

// okBatchReuse: the engine's sanctioned pattern — truncate, refill.
func okBatchReuse(batch []*job.Job, js []*job.Job) []*job.Job {
	batch = batch[:0]
	for _, j := range js {
		batch = append(batch, j)
	}
	return batch
}

// okOtherSlices: only job slices are the retention hazard.
func okOtherSlices(starts []int64, at int64) []int64 {
	return append(starts, at)
}
