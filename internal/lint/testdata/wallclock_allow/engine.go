// Allowlist corpus for the wallclock analyzer: loaded with the import
// path jobsched/internal/sim and this file named engine.go, it emulates
// the sanctioned CPU-timing site (the Tables 7–8 scheduler-time
// measurement). No findings expected.
package sim

import "time"

// MeasuredCall times a scheduler invocation — the one legitimate
// wall-clock read in the simulation core.
func MeasuredCall(f func()) time.Duration {
	t0 := time.Now()
	f()
	return time.Since(t0)
}
