package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// The protocol analyzers need to see through helpers: a wall-clock read
// wrapped in a package-local function, or a kernel pass opened in one
// function and closed in another, is invisible to purely per-call-site
// checks. callGraph is the minimal cross-function infrastructure that
// closes the gap — a package-local static call graph over the declared
// functions and methods, built from the typed syntax trees alone (no
// x/tools). Calls through function values and interfaces of other
// packages are out of reach by design; the analyzers that use the graph
// are explicit about that boundary.
type callGraph struct {
	// decls maps each declared function or method to its syntax.
	decls map[*types.Func]*ast.FuncDecl
	// order lists the declared functions in source order (files sorted by
	// name, declarations by position) so iteration is deterministic.
	order []*types.Func
	// calls lists, per declared function, the package-local calls its
	// body makes (function literals attribute to the enclosing
	// declaration), in source order.
	calls map[*types.Func][]callSite
}

// callSite is one package-local call edge: the callee and the position
// of the call expression in the caller's body.
type callSite struct {
	callee *types.Func
	pos    token.Pos
}

// buildCallGraph constructs the package-local call graph.
func (p *Package) buildCallGraph() *callGraph {
	g := &callGraph{
		decls: map[*types.Func]*ast.FuncDecl{},
		calls: map[*types.Func][]callSite{},
	}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.decls[fn] = fd
			g.order = append(g.order, fn)
		}
	}
	for _, fn := range g.order {
		fd := g.decls[fn]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := p.calleeFunc(call)
			if callee == nil || callee.Pkg() != p.Types {
				return true
			}
			if _, declared := g.decls[callee]; !declared {
				return true // e.g. an interface method of this package
			}
			g.calls[fn] = append(g.calls[fn], callSite{callee: callee, pos: call.Pos()})
			return true
		})
	}
	return g
}

// effectKind classifies an impure primitive for purity propagation.
type effectKind int

const (
	effectWallclock effectKind = iota
	effectGlobalRand
	effectStdout
	numEffectKinds
)

// effect is one impure primitive reachable from a function: the kind,
// the primitive call's position, and a short description ("time.Now",
// "fmt.Println") for diagnostics.
type effect struct {
	kind effectKind
	pos  token.Pos
	desc string
}

// propagateEffects closes the direct per-function effect sets over the
// call graph: a function carries every effect of every package-local
// function it (transitively) calls. The result keeps one representative
// effect per kind — the one with the smallest position, so diagnostics
// are deterministic and name the same origin on every run. Recursion
// (direct or mutual) is handled by fixed-point iteration: with at most
// one effect per kind and monotone merging, the sets stabilize in at
// most numEffectKinds passes over the graph.
func propagateEffects(g *callGraph, direct map[*types.Func][]effect) map[*types.Func][]effect {
	// closed[fn][kind] is the minimal-position effect of that kind.
	closed := map[*types.Func]*[numEffectKinds]*effect{}
	slot := func(fn *types.Func) *[numEffectKinds]*effect {
		s := closed[fn]
		if s == nil {
			s = &[numEffectKinds]*effect{}
			closed[fn] = s
		}
		return s
	}
	merge := func(dst *[numEffectKinds]*effect, e effect) bool {
		cur := dst[e.kind]
		if cur == nil || e.pos < cur.pos {
			e := e
			dst[e.kind] = &e
			return true
		}
		return false
	}
	for fn, effs := range direct {
		s := slot(fn)
		for _, e := range effs {
			merge(s, e)
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range g.order {
			s := slot(fn)
			for _, cs := range g.calls[fn] {
				if callee := closed[cs.callee]; callee != nil {
					for _, e := range callee {
						if e != nil && merge(s, *e) {
							changed = true
						}
					}
				}
			}
		}
	}
	out := map[*types.Func][]effect{}
	for fn, s := range closed {
		for _, e := range s {
			if e != nil {
				out[fn] = append(out[fn], *e)
			}
		}
	}
	return out
}

// effectsOfKinds filters a function's effect set to the given kinds,
// returning the minimal-position match or nil.
func effectsOfKinds(effs []effect, kinds ...effectKind) *effect {
	var best *effect
	for i := range effs {
		e := &effs[i]
		for _, k := range kinds {
			if e.kind == k && (best == nil || e.pos < best.pos) {
				best = e
			}
		}
	}
	return best
}

// originLabel renders an effect origin for a diagnostic: the primitive
// and its basename:line position ("time.Now at engine.go:42").
func (p *Package) originLabel(e *effect) string {
	pos := p.Fset.Position(e.pos)
	return fmt.Sprintf("%s at %s:%d", e.desc, p.baseFilename(e.pos), pos.Line)
}
