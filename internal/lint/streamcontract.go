package lint

import (
	"go/ast"
	"go/types"
)

// streamContractScope: everything that produces or consumes streaming
// arrivals — the engine itself, the trace readers that implement Source,
// and the CLI/eval drivers that wire them together.
var streamContractScope = []string{
	"jobsched/internal",
	"jobsched/cmd",
}

const (
	jobPkgPath = "jobsched/internal/job"
	simPkgPath = "jobsched/internal/sim"
)

// StreamContractAnalyzer returns the streaming-protocol analyzer. The
// sim.Source contract has three load-bearing conventions that the type
// system cannot express, and each has a cheap syntactic witness:
//
//   - Next returns (nil, nil) as the done sentinel. A caller that never
//     compares the returned *job.Job against nil will dereference the
//     sentinel on the first exhausted source; every Next call site must
//     have a nil check on the job result (and must not blank the error).
//   - Options.Validate replays the whole schedule against a fresh
//     profile after the run — it needs the full allocation slice, which
//     streaming mode (Sink != nil) deliberately never materializes. The
//     engine rejects the combination at run time; the analyzer rejects
//     the literal or the assignment pair statically, before a grid
//     sweep burns an hour to hit the error.
//   - Streaming exists to bound memory: RunStream holds O(batch), not
//     O(jobs). Growing a []*job.Job inside internal/sim without a
//     same-function x = x[:0] reset reintroduces the O(jobs) footprint
//     the mode was built to avoid.
func StreamContractAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "streamcontract",
		Doc:  "streaming protocol: handle Source.Next's nil-job done sentinel, never combine Sink with Validate, no unbounded job-slice growth in the engine",
	}
	a.Run = func(pass *Pass) {
		if !inScope(pass.Pkg.Path, streamContractScope) {
			return
		}
		checkNextSentinel(pass)
		checkSinkValidate(pass)
		if pass.Pkg.Path == simPkgPath {
			checkJobRetention(pass)
		}
	}
	return a
}

// isJobPtr reports whether t is *jobsched/internal/job.Job.
func isJobPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == jobPkgPath && obj.Name() == "Job"
}

// isErrorType reports whether t is the universe error type.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// sourceNextCall reports whether the call invokes a method named Next
// whose results are exactly (*job.Job, error) — the sim.Source shape,
// whatever concrete source implements it.
func (p *Package) sourceNextCall(call *ast.CallExpr) bool {
	fn := p.calleeFunc(call)
	if fn == nil || fn.Name() != "Next" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Results().Len() != 2 {
		return false
	}
	return isJobPtr(sig.Results().At(0).Type()) && isErrorType(sig.Results().At(1).Type())
}

// checkNextSentinel flags Source.Next call sites whose job result is
// never nil-checked in the enclosing function, and error results blanked
// with _.
func checkNextSentinel(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Collect the idents nil-compared anywhere in the function.
			nilChecked := map[string]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				b, ok := n.(*ast.BinaryExpr)
				if !ok {
					return true
				}
				if key, ok := nilComparison(b, b.Op); ok {
					nilChecked[key] = true
				}
				return true
			})
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 2 {
					return true
				}
				call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
				if !ok || !pass.Pkg.sourceNextCall(call) {
					return true
				}
				jobKey := flattenExpr(as.Lhs[0])
				errKey := flattenExpr(as.Lhs[1])
				if errKey == "_" {
					pass.Reportf(as.Lhs[1].Pos(), "Source.Next error discarded with _: a failed decode mid-stream must stop the run, not masquerade as end-of-stream")
				}
				switch {
				case jobKey == "_":
					pass.Reportf(as.Lhs[0].Pos(), "Source.Next job result discarded with _: the nil job IS the done sentinel; dropping it makes the stream end undetectable")
				case !nilChecked[jobKey]:
					pass.Reportf(call.Pos(), "Source.Next result %q is never nil-checked in this function: Next returns (nil, nil) as the done sentinel, and the first exhausted source will be dereferenced", jobKey)
				}
				return true
			})
		}
	}
}

// simOptionsType reports whether t (or *t) is sim.Options.
func isSimOptions(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == simPkgPath && obj.Name() == "Options"
}

func isTrueIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "true"
}

func isNilExpr(e ast.Expr) bool {
	return isNilIdent(ast.Unparen(e))
}

// checkSinkValidate statically rejects the Sink+Validate combination the
// engine refuses at run time: in sim.Options composite literals, and in
// same-function field-assignment pairs on the same options value.
func checkSinkValidate(pass *Pass) {
	// Composite literals.
	pass.Pkg.inspectWithStack(func(n ast.Node, stack []ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		tv, ok := pass.Pkg.Info.Types[cl]
		if !ok || !isSimOptions(tv.Type) {
			return true
		}
		var validatePos ast.Expr
		sink := false
		for _, el := range cl.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			switch key.Name {
			case "Validate":
				if isTrueIdent(kv.Value) {
					validatePos = kv.Value
				}
			case "Sink":
				if !isNilExpr(kv.Value) {
					sink = true
				}
			}
		}
		if validatePos != nil && sink {
			pass.Reportf(validatePos.Pos(), "sim.Options combines Sink with Validate: true — validation replays the full allocation slice that streaming mode never materializes; the engine rejects this at run time")
		}
		return true
	})

	// Field-assignment pairs within one function.
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			type fieldSet struct {
				validate ast.Node
				sink     ast.Node
			}
			sets := map[string]*fieldSet{} // options chain key → fields set
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
					return true
				}
				sel, ok := ast.Unparen(as.Lhs[0]).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				tv, ok := pass.Pkg.Info.Types[sel.X]
				if !ok || !isSimOptions(tv.Type) {
					return true
				}
				base := flattenExpr(sel.X)
				if base == "" {
					return true
				}
				fs := sets[base]
				if fs == nil {
					fs = &fieldSet{}
					sets[base] = fs
				}
				switch sel.Sel.Name {
				case "Validate":
					if isTrueIdent(as.Rhs[0]) {
						fs.validate = as
					}
				case "Sink":
					if !isNilExpr(as.Rhs[0]) {
						fs.sink = as
					}
				}
				if fs.validate != nil && fs.sink != nil {
					// Report at the later of the two assignments, once.
					later := fs.validate
					if fs.sink.Pos() > later.Pos() {
						later = fs.sink
					}
					pass.Reportf(later.Pos(), "%s sets both Sink and Validate: true — streaming never materializes the allocation slice validation replays; the engine rejects this at run time", base)
					fs.validate, fs.sink = nil, nil // one report per pair
				}
				return true
			})
		}
	}
}

// checkJobRetention flags append calls growing a []*job.Job inside
// internal/sim when the enclosing function never resets the slice with
// x = x[:0]. The engine's batch buffer is the sanctioned pattern:
// appended to per batch, truncated before the next.
func checkJobRetention(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Collect slice keys reset via x = x[:0] in this function.
			resets := map[string]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
					return true
				}
				sl, ok := ast.Unparen(as.Rhs[0]).(*ast.SliceExpr)
				if !ok || sl.Low != nil || sl.High == nil {
					return true
				}
				if lit, ok := sl.High.(*ast.BasicLit); !ok || lit.Value != "0" {
					return true
				}
				key := flattenExpr(as.Lhs[0])
				if key != "" && key == flattenExpr(sl.X) {
					resets[key] = true
				}
				return true
			})
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok || id.Name != "append" || len(call.Args) == 0 {
					return true
				}
				if _, isBuiltin := pass.Pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
					return true
				}
				tv, ok := pass.Pkg.Info.Types[call.Args[0]]
				if !ok {
					return true
				}
				sl, ok := tv.Type.Underlying().(*types.Slice)
				if !ok || !isJobPtr(sl.Elem()) {
					return true
				}
				key := flattenExpr(call.Args[0])
				if key == "" || resets[key] {
					return true
				}
				pass.Reportf(call.Pos(), "append grows job slice %q without a %s = %s[:0] reset in this function: RunStream exists to hold O(batch) jobs, not O(stream)", key, key, key)
				return true
			})
		}
	}
}
