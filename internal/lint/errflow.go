package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// errFlowScope: the layers whose errors carry correctness information —
// a swallowed error here silently corrupts a simulation result, a
// journal, or a rendered table. cmd/ is excluded: main functions
// terminate on error by construction and the CLI owns its own exit
// discipline.
var errFlowScope = []string{
	"jobsched/internal/sim",
	"jobsched/internal/sched",
	"jobsched/internal/profile",
	"jobsched/internal/eval",
	"jobsched/internal/trace",
	"jobsched/internal/faults",
	"jobsched/internal/serve",
}

// infallibleWriters are receiver types whose Write* methods are
// documented to always return a nil error; dropping those results is
// conventional Go.
func isInfallibleWriter(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() + "." + obj.Name() {
	case "bytes.Buffer", "strings.Builder":
		return true
	}
	return false
}

// ErrFlowAnalyzer returns the unchecked-error analyzer for the
// simulation, scheduling, profile, evaluation, trace, and fault layers.
// Two disciplines:
//
//   - a call whose (final) result is an error must not stand alone as a
//     statement, a defer, or a go statement — the error vanishes. The
//     classic victim is `defer f.Close()` on a file that was written:
//     close is where buffered write errors surface.
//   - discarding an error with `_` is allowed, but only with a reason: a
//     comment on the same line or the line directly above. An unexplained
//     `_ = run()` is indistinguishable from a forgotten check.
//
// Exempt: methods on *bytes.Buffer and *strings.Builder (documented to
// never fail) and fmt.Fprint* aimed at them or at os.Stderr (best-effort
// diagnostics).
func ErrFlowAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "errflow",
		Doc:  "errors in the sim/sched/profile/eval/trace/faults layers are checked, or discarded with a stated reason",
	}
	a.Run = func(pass *Pass) {
		if !inScope(pass.Pkg.Path, errFlowScope) {
			return
		}
		for _, f := range pass.Pkg.Files {
			commented := commentLines(pass, f)
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ExprStmt:
					if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
						reportUnchecked(pass, call, "")
					}
				case *ast.DeferStmt:
					reportUnchecked(pass, n.Call, "defer ")
				case *ast.GoStmt:
					reportUnchecked(pass, n.Call, "go ")
				case *ast.AssignStmt:
					checkBlankDiscard(pass, n, commented)
				}
				return true
			})
		}
	}
	return a
}

// callErrorResult reports whether the call's (final) result is an error,
// unless the callee is exempt.
func callErrorResult(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Pkg.Info.Types[call]
	if !ok {
		return false
	}
	var last types.Type
	switch t := tv.Type.(type) {
	case *types.Tuple:
		if t.Len() == 0 {
			return false
		}
		last = t.At(t.Len() - 1).Type()
	default:
		last = t
	}
	if last == nil || !isErrorType(last) {
		return false
	}
	fn := pass.Pkg.calleeFunc(call)
	if fn == nil {
		return true // calls through function values still return errors
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && isInfallibleWriter(sig.Recv().Type()) {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && fprintFuncs[fn.Name()] && len(call.Args) > 0 {
		if w, ok := pass.Pkg.processStream(call.Args[0]); ok && w == "os.Stderr" {
			return false // best-effort diagnostics
		}
		if tv, ok := pass.Pkg.Info.Types[call.Args[0]]; ok && isInfallibleWriter(tv.Type) {
			return false
		}
	}
	return true
}

func reportUnchecked(pass *Pass, call *ast.CallExpr, prefix string) {
	if !callErrorResult(pass, call) {
		return
	}
	name := flattenExpr(call.Fun)
	if name == "" {
		name = "call"
	}
	pass.Reportf(call.Pos(), "%s%s returns an error that is never checked: handle it, or discard with `_ =` plus a reason comment", prefix, name)
}

// commentLines returns the set of line numbers carrying a comment in f.
// Machine-directed comments — lint directives and the corpus's // want
// expectations — are not reasons and do not count.
func commentLines(pass *Pass, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if strings.HasPrefix(text, "lint:ignore") || strings.HasPrefix(text, "want `") {
				continue
			}
			start := pass.Pkg.Fset.Position(c.Pos()).Line
			end := pass.Pkg.Fset.Position(c.End()).Line
			for l := start; l <= end; l++ {
				lines[l] = true
			}
		}
	}
	return lines
}

// checkBlankDiscard flags `_` in an error result position when neither
// the assignment's line nor the one above carries a comment stating why.
func checkBlankDiscard(pass *Pass, as *ast.AssignStmt, commented map[int]bool) {
	blankAt := func(lhs ast.Expr, t types.Type) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" || !isErrorType(t) {
			return
		}
		line := pass.Pkg.Fset.Position(as.Pos()).Line
		if commented[line] || commented[line-1] {
			return
		}
		pass.Reportf(id.Pos(), "error discarded with `_` and no reason: add a comment on this line or the line above saying why the error cannot matter, or handle it")
	}
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		tv, ok := pass.Pkg.Info.Types[as.Rhs[0]]
		if !ok {
			return
		}
		tuple, ok := tv.Type.(*types.Tuple)
		if !ok || tuple.Len() != len(as.Lhs) {
			return
		}
		for i, lhs := range as.Lhs {
			blankAt(lhs, tuple.At(i).Type())
		}
		return
	}
	if len(as.Rhs) == len(as.Lhs) {
		for i, lhs := range as.Lhs {
			if tv, ok := pass.Pkg.Info.Types[as.Rhs[i]]; ok {
				blankAt(lhs, tv.Type)
			}
		}
	}
}
