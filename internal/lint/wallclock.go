package lint

import (
	"go/ast"
	"go/types"
)

// wallclockScope: the whole internal tree is a deterministic function of
// the workload; only the two CPU-timing sites and the seeded-RNG
// constructors are exempt.
var wallclockScope = []string{"jobsched/internal"}

// wallclockAllowedFiles maps (package path, file basename) pairs that
// may read the wall clock: the scheduler-computation-time measurement of
// Tables 7–8 (sim engine) and the grid duration diagnostic (eval).
var wallclockAllowedFiles = map[[2]string]bool{
	{"jobsched/internal/sim", "engine.go"}: true,
	{"jobsched/internal/eval", "grid.go"}:  true,
}

// wallclockTimeFuncs are the time-package functions that observe the
// wall clock (or block on it).
var wallclockTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// seededRandConstructors build RNGs from an explicit seed and are the
// one sanctioned way to randomness — but only inside internal/stats,
// which wraps them behind stats.NewRand/stats.Split.
var seededRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

// WallclockAnalyzer returns the wallclock/randomness-hygiene analyzer:
// simulation results must be replayable, so reading the wall clock or
// drawing from the process-global math/rand state anywhere in
// internal/... is flagged. Seeded *rand.Rand methods are fine (the
// receiver carries the seed); the package-level rand functions are not.
func WallclockAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "wallclock",
		Doc:  "no wall-clock reads or unseeded global randomness in the simulation tree",
	}
	a.Run = func(pass *Pass) {
		if !inScope(pass.Pkg.Path, wallclockScope) {
			return
		}
		pass.Pkg.inspectWithStack(func(n ast.Node, _ []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pass.Pkg.calleeFunc(call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods (e.g. on a seeded *rand.Rand) are fine
			}
			switch fn.Pkg().Path() {
			case "time":
				if !wallclockTimeFuncs[fn.Name()] {
					return true
				}
				file := pass.Pkg.baseFilename(call.Pos())
				if wallclockAllowedFiles[[2]string{pass.Pkg.Path, file}] {
					return true // sanctioned CPU-timing site
				}
				pass.Reportf(call.Pos(), "time.%s reads the wall clock: simulation results must be a function of the workload alone (allowlisted: the CPU-timing sites in sim/engine.go and eval/grid.go; elsewhere suppress with //lint:ignore wallclock <reason>)", fn.Name())
			case "math/rand", "math/rand/v2":
				if seededRandConstructors[fn.Name()] {
					if hasPathPrefix(pass.Pkg.Path, "jobsched/internal/stats") {
						return true // the sanctioned seeded-RNG constructors
					}
					pass.Reportf(call.Pos(), "rand.%s outside internal/stats: construct RNGs via stats.NewRand/stats.Split so seeds stay explicit and streams splittable", fn.Name())
					return true
				}
				pass.Reportf(call.Pos(), "package-level rand.%s draws from the process-global generator: take an explicit seeded *rand.Rand (stats.NewRand) instead", fn.Name())
			}
			return true
		})
	}
	return a
}
