package lint

import (
	"go/ast"
	"go/types"
)

// wallclockScope: the whole internal tree is a deterministic function of
// the workload; only the two CPU-timing sites and the seeded-RNG
// constructors are exempt.
var wallclockScope = []string{"jobsched/internal"}

// wallclockAllowedFiles maps (package path, file basename) pairs that
// may read the wall clock: the scheduler-computation-time measurement of
// Tables 7–8 (sim engine) and the grid duration diagnostic (eval).
var wallclockAllowedFiles = map[[2]string]bool{
	{"jobsched/internal/sim", "engine.go"}: true,
	{"jobsched/internal/eval", "grid.go"}:  true,
}

// wallclockTimeFuncs are the time-package functions that observe the
// wall clock (or block on it).
var wallclockTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// seededRandConstructors build RNGs from an explicit seed and are the
// one sanctioned way to randomness — but only inside internal/stats,
// which wraps them behind stats.NewRand/stats.Split.
var seededRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

// WallclockAnalyzer returns the wallclock/randomness-hygiene analyzer:
// simulation results must be replayable, so reading the wall clock or
// drawing from the process-global math/rand state anywhere in
// internal/... is flagged. Seeded *rand.Rand methods are fine (the
// receiver carries the seed); the package-level rand functions are not.
//
// The check is transitive over the package-local call graph: a function
// that calls a helper which (through any chain of package-local calls)
// reaches a wall-clock read carries the violation too, and every call
// edge into the tainted subgraph from a non-allowlisted file is flagged.
// This closes the laundering hole where a clock read lives in an
// allowlisted file (sim/engine.go, eval/grid.go) but is re-exported to
// the rest of the package through a helper — the allowlist covers the
// measurement sites, not wrappers around them.
func WallclockAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "wallclock",
		Doc:  "no wall-clock reads or unseeded global randomness in the simulation tree, transitively through package-local helpers",
	}
	a.Run = func(pass *Pass) {
		if !inScope(pass.Pkg.Path, wallclockScope) {
			return
		}
		allowed := func(pos ast.Node) bool {
			return wallclockAllowedFiles[[2]string{pass.Pkg.Path, pass.Pkg.baseFilename(pos.Pos())}]
		}

		// Pass 1: direct primitive sites. Each is recorded as an effect of
		// its enclosing declaration (for propagation) and reported in place
		// unless its file is allowlisted.
		g := pass.Pkg.buildCallGraph()
		direct := map[*types.Func][]effect{}
		for _, fn := range g.order {
			fd := g.decls[fn]
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := pass.Pkg.calleeFunc(call)
				if callee == nil || callee.Pkg() == nil {
					return true
				}
				if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
					return true // methods (e.g. on a seeded *rand.Rand) are fine
				}
				switch callee.Pkg().Path() {
				case "time":
					if !wallclockTimeFuncs[callee.Name()] {
						return true
					}
					direct[fn] = append(direct[fn], effect{kind: effectWallclock, pos: call.Pos(), desc: "time." + callee.Name()})
					if allowed(call) {
						return true // sanctioned CPU-timing site
					}
					pass.Reportf(call.Pos(), "time.%s reads the wall clock: simulation results must be a function of the workload alone (allowlisted: the CPU-timing sites in sim/engine.go and eval/grid.go; elsewhere suppress with //lint:ignore wallclock <reason>)", callee.Name())
				case "math/rand", "math/rand/v2":
					if seededRandConstructors[callee.Name()] {
						if hasPathPrefix(pass.Pkg.Path, "jobsched/internal/stats") {
							return true // the sanctioned seeded-RNG constructors
						}
						direct[fn] = append(direct[fn], effect{kind: effectGlobalRand, pos: call.Pos(), desc: "rand." + callee.Name()})
						pass.Reportf(call.Pos(), "rand.%s outside internal/stats: construct RNGs via stats.NewRand/stats.Split so seeds stay explicit and streams splittable", callee.Name())
						return true
					}
					direct[fn] = append(direct[fn], effect{kind: effectGlobalRand, pos: call.Pos(), desc: "rand." + callee.Name()})
					pass.Reportf(call.Pos(), "package-level rand.%s draws from the process-global generator: take an explicit seeded *rand.Rand (stats.NewRand) instead", callee.Name())
				}
				return true
			})
		}

		// Pass 2: transitive propagation. Every package-local call edge
		// from a non-allowlisted file into a function whose closure reaches
		// a clock or global-rand primitive is a violation of its own — the
		// purity exemption is positional and does not travel with helpers.
		closed := propagateEffects(g, direct)
		for _, fn := range g.order {
			for _, cs := range g.calls[fn] {
				effs := closed[cs.callee]
				if len(effs) == 0 {
					continue
				}
				if wallclockAllowedFiles[[2]string{pass.Pkg.Path, pass.Pkg.baseFilename(cs.pos)}] {
					continue // wiring within the allowlisted measurement file
				}
				if e := effectsOfKinds(effs, effectWallclock); e != nil {
					pass.Reportf(cs.pos, "call to %s transitively reads the wall clock (%s): the CPU-timing exemption covers the allowlisted file, not helpers that re-export it", cs.callee.Name(), pass.Pkg.originLabel(e))
				}
				if e := effectsOfKinds(effs, effectGlobalRand); e != nil {
					pass.Reportf(cs.pos, "call to %s transitively draws process-global randomness (%s): thread an explicit seeded *rand.Rand instead", cs.callee.Name(), pass.Pkg.originLabel(e))
				}
			}
		}
	}
	return a
}
