package sched

import (
	"math/rand"
	"testing"

	"jobsched/internal/job"
	"jobsched/internal/profile"
	"jobsched/internal/sim"
)

// reservations computes each queued job's projected start under
// conservative semantics: walk the order, give every job the earliest
// fit, reserve it. Mirrors ConservativeStarter's internal walk.
func reservations(ordered []*job.Job, now int64, running []sim.Running, m int) map[job.ID]int64 {
	p := profile.New(m, now)
	for _, r := range running {
		end := r.EstEnd
		if end <= now {
			end = now + 1
		}
		p.Reserve(r.Job.Nodes, now, end)
	}
	out := make(map[job.ID]int64, len(ordered))
	for _, jj := range ordered {
		t := p.EarliestFit(jj.Nodes, jj.Estimate, now)
		out[jj.ID] = t
		end := t + jj.Estimate
		if end < t {
			end = profile.Infinity
		}
		p.Reserve(jj.Nodes, t, end)
	}
	return out
}

// conservativeAssertingStarter wraps the conservative starter and checks
// its defining invariant at every decision: starting the picked job must
// not delay the projected start of any job ahead of it in the priority
// order ("conservative backfill will not increase the projected
// completion time of a job submitted before the job used for
// backfilling").
type conservativeAssertingStarter struct {
	inner     *ConservativeStarter
	t         *testing.T
	backfills int
}

func (s *conservativeAssertingStarter) Name() string { return s.inner.Name() }

func (s *conservativeAssertingStarter) Pick(ordered []*job.Job, now int64, free int, running []sim.Running, m int) *job.Job {
	picked := s.inner.Pick(ordered, now, free, running, m)
	if picked == nil || len(ordered) == 0 || picked == ordered[0] {
		return picked
	}
	// Projected starts of the jobs ahead of the picked one, before and
	// after the pick (picked treated as running afterwards).
	var ahead []*job.Job
	for _, jj := range ordered {
		if jj == picked {
			break
		}
		ahead = append(ahead, jj)
	}
	before := reservations(ordered, now, running, m)
	after := reservations(ahead, now,
		append(append([]sim.Running(nil), running...),
			sim.Running{Job: picked, Start: now, EstEnd: now + picked.Estimate}), m)
	s.backfills++
	for _, jj := range ahead {
		if after[jj.ID] > before[jj.ID] {
			s.t.Errorf("backfill of %v at t=%d delayed projected start of %v: %d → %d",
				picked, now, jj, before[jj.ID], after[jj.ID])
		}
	}
	return picked
}

func TestConservativeBackfillNeverDelaysEarlierJobs(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	const nodes = 8
	jobs := randomJobs(r, 400, nodes)
	wrapper := &conservativeAssertingStarter{inner: NewConservativeStarter(0), t: t}
	alg := Compose(NewFCFSOrder("FCFS"), wrapper, nodes)
	if _, err := sim.RunChecked(sim.Machine{Nodes: nodes}, job.CloneAll(jobs), alg,
		sim.Options{Validate: true}); err != nil {
		t.Fatal(err)
	}
	if wrapper.backfills == 0 {
		t.Fatal("no backfills exercised")
	}
	t.Logf("checked %d backfill decisions", wrapper.backfills)
}

// TestConservativeBackfillInvariantUnderSMARTOrder repeats the invariant
// check with a reordering policy (the paper applies conservative
// backfilling to SMART/PSRS orders too).
func TestConservativeBackfillInvariantUnderSMARTOrder(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	const nodes = 8
	jobs := randomJobs(r, 300, nodes)
	wrapper := &conservativeAssertingStarter{inner: NewConservativeStarter(0), t: t}
	alg := Compose(NewSMARTOrder(FFIA, Config{MachineNodes: nodes}.withDefaults()), wrapper, nodes)
	if _, err := sim.RunChecked(sim.Machine{Nodes: nodes}, job.CloneAll(jobs), alg,
		sim.Options{Validate: true}); err != nil {
		t.Fatal(err)
	}
	t.Logf("checked %d backfill decisions", wrapper.backfills)
}
