package sched

import (
	"testing"

	"jobsched/internal/job"
)

func TestPSRSPlanContainsAllJobsOnce(t *testing.T) {
	o := NewPSRSOrder(Config{MachineNodes: 8})
	jobs := []*job.Job{
		j(0, 1, 100), j(1, 8, 50), j(2, 4, 3000), j(3, 5, 7), j(4, 3, 100),
		j(5, 2, 10), j(6, 7, 99),
	}
	plan := o.computePlan(jobs)
	if len(plan) != len(jobs) {
		t.Fatalf("plan has %d jobs, want %d", len(plan), len(jobs))
	}
	seen := map[job.ID]bool{}
	for _, p := range plan {
		if seen[p.ID] {
			t.Fatalf("job %d duplicated", p.ID)
		}
		seen[p.ID] = true
	}
}

func TestPSRSSmithRatioOrder(t *testing.T) {
	// Unit weights: modified Smith ratio = 1/(nodes × est) → small-area
	// jobs first. Two small jobs with very different areas, no wide jobs:
	// the preemptive completion times preserve the ratio order, so the
	// plan must start with the small-area job.
	o := NewPSRSOrder(Config{MachineNodes: 8})
	small := j(0, 1, 10) // area 10
	big := j(1, 4, 1000) // area 4000
	plan := o.computePlan([]*job.Job{big, small})
	if plan[0] != small {
		t.Errorf("plan = %v, want small-area job first", ids(plan))
	}
}

func TestPSRSWeightedDegeneracy(t *testing.T) {
	// Weight = estimated area ⇒ modified Smith ratio = 1 for all jobs:
	// ties broken by ID, so the ratio order equals submission order.
	c := Config{MachineNodes: 8, Weight: job.AreaWeight}
	o := NewPSRSOrder(c)
	jobs := []*job.Job{j(0, 1, 1000), j(1, 4, 10), j(2, 2, 500)}
	for _, jj := range jobs {
		if r := o.modifiedSmith(jj); r != 1 {
			t.Fatalf("modified Smith ratio = %v, want 1 (degenerate)", r)
		}
	}
}

func TestPSRSPreemptiveCompletionsSmallJobs(t *testing.T) {
	// Two 1-node jobs on a 2-node machine run concurrently from 0.
	o := NewPSRSOrder(Config{MachineNodes: 2})
	a, b := j(0, 1, 10), j(1, 1, 20)
	comp := o.preemptiveCompletions([]*job.Job{a, b})
	if comp[a.ID] != 10 {
		t.Errorf("a completes at %v, want 10", comp[a.ID])
	}
	if comp[b.ID] != 20 {
		t.Errorf("b completes at %v, want 20", comp[b.ID])
	}
}

func TestPSRSPreemptiveListSemantics(t *testing.T) {
	// Machine 4. Order: a(3n,10), b(2n,10), c(1n,10). b does not fit at
	// t=0 (only 1 free) and blocks the list; c must NOT start before b
	// (greedy list, not free-for-all).
	o := NewPSRSOrder(Config{MachineNodes: 4})
	a, b, c := j(0, 3, 10), j(1, 2, 10), j(2, 1, 10)
	comp := o.preemptiveCompletions([]*job.Job{a, b, c})
	if comp[a.ID] != 10 {
		t.Errorf("a at %v, want 10", comp[a.ID])
	}
	if comp[b.ID] != 20 {
		t.Errorf("b at %v, want 20 (starts when a drains)", comp[b.ID])
	}
	if comp[c.ID] != 20 {
		t.Errorf("c at %v, want 20 (starts with b)", comp[c.ID])
	}
}

func TestPSRSWideJobPreempts(t *testing.T) {
	// Machine 4. Order: small(1n, est 100) then wide(3n... wide means
	// > 2 nodes on a 4-node machine: use 4n, est 10). The wide job
	// cannot start (only 3 free), waits; after waiting 10 (= its est) it
	// preempts the small job, runs [10,20), and the small job resumes,
	// finishing at 110.
	o := NewPSRSOrder(Config{MachineNodes: 4})
	small := j(0, 1, 100)
	wide := j(1, 4, 10)
	comp := o.preemptiveCompletions([]*job.Job{small, wide})
	if comp[wide.ID] != 20 {
		t.Errorf("wide completes at %v, want 20", comp[wide.ID])
	}
	if comp[small.ID] != 110 {
		t.Errorf("small completes at %v, want 110 (preempted for 10)", comp[small.ID])
	}
}

func TestPSRSWideJobStartsWithoutPreemptionWhenMachineDrains(t *testing.T) {
	// Small job est 5 finishes before the wide job's patience (est 50)
	// runs out → wide starts at 5 without preemption.
	o := NewPSRSOrder(Config{MachineNodes: 4})
	small := j(0, 1, 5)
	wide := j(1, 4, 50)
	comp := o.preemptiveCompletions([]*job.Job{small, wide})
	if comp[small.ID] != 5 {
		t.Errorf("small at %v, want 5", comp[small.ID])
	}
	if comp[wide.ID] != 55 {
		t.Errorf("wide at %v, want 55", comp[wide.ID])
	}
}

func TestPSRSWideFirstInEmptyMachine(t *testing.T) {
	// A wide job at the head of an empty machine starts immediately.
	o := NewPSRSOrder(Config{MachineNodes: 4})
	wide := j(0, 4, 10)
	later := j(1, 1, 10)
	comp := o.preemptiveCompletions([]*job.Job{wide, later})
	if comp[wide.ID] != 10 {
		t.Errorf("wide at %v, want 10", comp[wide.ID])
	}
	if comp[later.ID] != 20 {
		t.Errorf("later at %v, want 20", comp[later.ID])
	}
}

func TestGeomSeqBin(t *testing.T) {
	cases := []struct {
		t      float64
		offset float64
		want   int
	}{
		{1, 1, 0}, {2, 1, 1}, {3, 1, 2}, {4, 1, 2}, {5, 1, 3},
		{1.5, 1.5, 0}, {3, 1.5, 1}, {6, 1.5, 2},
	}
	for _, c := range cases {
		if got := geomSeqBin(c.t, c.offset); got != c.want {
			t.Errorf("geomSeqBin(%v, %v) = %d, want %d", c.t, c.offset, got, c.want)
		}
	}
	// Pathological inputs clamp instead of looping forever.
	if got := geomSeqBin(1e300, 1); got != 128 {
		t.Errorf("clamp = %d, want 128", got)
	}
}

func TestPSRSAlternationStartsWithSmall(t *testing.T) {
	// One wide and one small job completing in the same geometric era:
	// the final order starts with the small bin.
	o := NewPSRSOrder(Config{MachineNodes: 4})
	small := j(0, 1, 2) // completes at 2 in the preemptive schedule
	wide := j(1, 4, 2)  // wide (> 2 nodes)
	plan := o.computePlan([]*job.Job{wide, small})
	if plan[0] != small {
		t.Errorf("plan = %v, want the small job first", ids(plan))
	}
}

func TestPSRSOrderLifecycle(t *testing.T) {
	o := NewPSRSOrder(Config{MachineNodes: 4})
	a, b := j(0, 1, 10), j(1, 2, 20)
	o.Push(a, 0)
	o.Push(b, 0)
	if o.Len() != 2 {
		t.Fatalf("Len = %d", o.Len())
	}
	if got := o.Ordered(0); len(got) != 2 {
		t.Fatalf("Ordered = %v", ids(got))
	}
	o.Remove(b, 0)
	if o.Len() != 1 {
		t.Fatalf("Len = %d after remove", o.Len())
	}
	if got := o.Ordered(0); len(got) != 1 || got[0] != a {
		t.Fatalf("Ordered = %v, want [a]", ids(got))
	}
}
