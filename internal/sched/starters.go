package sched

import (
	"sort"

	"jobsched/internal/job"
	"jobsched/internal/profile"
	"jobsched/internal/sim"
	"jobsched/internal/telemetry"
)

// Instrumented is implemented by start policies that accept telemetry
// hooks: a trace recorder for backfill-attempt events and an
// availability-profile operation counter for their scratch profiles.
// sched.New attaches Config.Hooks to every instrumented starter.
type Instrumented interface {
	Instrument(h telemetry.Hooks)
}

// FailureAware is implemented by start policies that can plan around
// announced capacity drains (maintenance windows): the windows become
// capacity steps in the reservation profile, so the policy reserves
// around them instead of starting jobs the drain would abort. Surprise
// failures are, by definition, not announced — only scheduled
// maintenance is legitimate scheduler knowledge.
type FailureAware interface {
	// Announce hands the policy the maintenance windows, as sim.Failure
	// values (the same shape faults.Plan.Announced produces). The slice
	// must not be mutated afterwards.
	Announce(windows []sim.Failure)
}

// reserveDrains carves announced maintenance windows out of a reservation
// profile via clamped reservation: a drain takes its nodes regardless of
// how much the profile thinks is free (overlap with running jobs shows up
// as aborts at run time, not as a profile invariant violation). Windows
// are clipped to [now, horizon).
func reserveDrains(p profile.Kernel, announced []sim.Failure, now, horizon int64) {
	for _, f := range announced {
		end := job.AddSat(f.At, f.Duration)
		if end <= now || f.At >= horizon {
			continue
		}
		start := f.At
		if start < now {
			start = now
		}
		if end > horizon {
			end = horizon
		}
		if end > start {
			p.ReserveClamped(f.Nodes, start, end)
		}
	}
}

// drainsPending reports whether any announced window still extends past
// `now` (only those can influence scheduling decisions).
func drainsPending(announced []sim.Failure, now int64) bool {
	for _, f := range announced {
		if job.AddSat(f.At, f.Duration) > now {
			return true
		}
	}
	return false
}

// decided stashes the classifications of the current pass's successful
// picks so the engine (through Composite's sim.DecisionExplainer) can
// merge each one into its job's start event. A batched pass starts many
// jobs before the engine asks for any decision, so the stash holds the
// whole pass; every Pick/PickMany entry point resets it. Like the
// starters themselves, it is owned by one simulation goroutine.
type decided struct {
	jobs []*job.Job
	decs []telemetry.Decision
}

func (d *decided) reset() {
	d.jobs, d.decs = d.jobs[:0], d.decs[:0]
}

func (d *decided) stash(j *job.Job, dec telemetry.Decision) {
	d.jobs = append(d.jobs, j)
	d.decs = append(d.decs, dec)
}

// LastStartDecision implements sim.DecisionExplainer for the embedding
// starter. Newest entry wins (a pass never picks the same job twice, but
// the scan order keeps the semantics of the old single-slot stash).
func (d *decided) LastStartDecision(j *job.Job) (telemetry.Decision, bool) {
	if j == nil {
		return telemetry.Decision{}, false
	}
	for i := len(d.jobs) - 1; i >= 0; i-- {
		if d.jobs[i] == j {
			return d.decs[i], true
		}
	}
	return telemetry.Decision{}, false
}

// removeJob deletes the first occurrence of j from q, preserving the
// order of the remaining jobs (the batched passes simulate the order
// policy's Remove on their private queue copy). Head removal — by far
// the common case: backfilling mostly starts a queue prefix — is O(1) by
// reslicing; only a mid-queue backfill pick pays the memmove, which
// keeps deep-backlog (100k-queue) passes linear.
func removeJob(q []*job.Job, j *job.Job) []*job.Job {
	if len(q) > 0 && q[0] == j {
		return q[1:]
	}
	for i, x := range q {
		if x == j {
			return append(q[:i], q[i+1:]...)
		}
	}
	return q
}

// ensureScratch reuses (after Reset) or creates a starter's scratch
// profile with the configured backend, attaching the op counters.
func ensureScratch(scratch profile.Kernel, f ProfileFactory, stats *profile.Stats, nodes int, now int64) profile.Kernel {
	if scratch == nil {
		scratch = makeScratch(f, nodes, now)
		scratch.SetStats(stats)
		return scratch
	}
	scratch.Reset(nodes, now)
	return scratch
}

// ListStarter implements the greedy list schedule of Section 5.1: the
// next job in the list is started as soon as the necessary resources are
// available; the head is never skipped.
type ListStarter struct {
	decided
	picked    []*job.Job
	interrupt func() bool
}

// NewListStarter returns the strict list start policy.
func NewListStarter() *ListStarter { return &ListStarter{} }

// Name implements Starter.
func (*ListStarter) Name() string { return string(StartList) }

// SetInterrupt implements Interruptible.
func (s *ListStarter) SetInterrupt(f func() bool) { s.interrupt = f }

// Pick implements Starter.
func (s *ListStarter) Pick(ordered []*job.Job, now int64, free int, running []sim.Running, machineNodes int) *job.Job {
	s.reset()
	if len(ordered) == 0 || ordered[0].Nodes > free {
		return nil
	}
	s.stash(ordered[0], telemetry.Decision{
		Starter: s.Name(), Reason: telemetry.ReasonHeadOfQueue, Head: telemetry.None,
	})
	return ordered[0]
}

// PickMany implements BatchStarter: the startable prefix of the queue.
// The head is never skipped, so the sequential loop starts consecutive
// heads until one does not fit — exactly this prefix.
func (s *ListStarter) PickMany(ordered []*job.Job, now int64, free int, running []sim.Running, machineNodes int) []*job.Job {
	s.reset()
	s.picked = s.picked[:0]
	for i, j := range ordered {
		if j.Nodes > free || stopAt(s.interrupt, i) {
			break
		}
		s.stash(j, telemetry.Decision{
			Starter: s.Name(), Reason: telemetry.ReasonHeadOfQueue, Head: telemetry.None,
		})
		s.picked = append(s.picked, j)
		free -= j.Nodes
	}
	return s.picked
}

// GareyGrahamStarter implements the classical list scheduling of Garey
// and Graham [6] (Section 5.3): always start the next job for which
// enough resources are available, scanning the whole queue. It needs no
// execution-time knowledge; backfilling is of no benefit because it
// already starts anything that fits.
type GareyGrahamStarter struct {
	decided
	picked    []*job.Job
	interrupt func() bool
}

// NewGareyGrahamStarter returns the free-for-all start policy.
func NewGareyGrahamStarter() *GareyGrahamStarter { return &GareyGrahamStarter{} }

// Name implements Starter.
func (*GareyGrahamStarter) Name() string { return string(StartList) }

// SetInterrupt implements Interruptible.
func (s *GareyGrahamStarter) SetInterrupt(f func() bool) { s.interrupt = f }

// Pick implements Starter.
func (s *GareyGrahamStarter) Pick(ordered []*job.Job, now int64, free int, running []sim.Running, machineNodes int) *job.Job {
	s.reset()
	for i, j := range ordered {
		if j.Nodes <= free {
			d := telemetry.Decision{
				Starter: s.Name(), Reason: telemetry.ReasonScanFit,
				Depth: i, Head: telemetry.None,
			}
			if i > 0 {
				d.Head = int64(ordered[0].ID)
			}
			s.stash(j, d)
			return j
		}
	}
	return nil
}

// PickMany implements BatchStarter with a single forward scan. The
// sequential loop rescans the remaining queue after every start, but free
// nodes only shrink during a pass, so a job that did not fit earlier can
// never fit later: the rescans would re-skip exactly the jobs this scan
// already skipped. Depth counts the skipped (unstarted) jobs before each
// pick — its index in the remaining queue — and Head is the first job
// that failed to fit, which stays the remaining head for the whole pass.
func (s *GareyGrahamStarter) PickMany(ordered []*job.Job, now int64, free int, running []sim.Running, machineNodes int) []*job.Job {
	s.reset()
	s.picked = s.picked[:0]
	depth := 0
	headID := telemetry.None
	for i, j := range ordered {
		if stopAt(s.interrupt, i) {
			break
		}
		if j.Nodes <= free {
			d := telemetry.Decision{
				Starter: s.Name(), Reason: telemetry.ReasonScanFit,
				Depth: depth, Head: telemetry.None,
			}
			if depth > 0 {
				d.Head = headID
			}
			s.stash(j, d)
			s.picked = append(s.picked, j)
			free -= j.Nodes
			if free <= 0 {
				break
			}
			continue
		}
		if depth == 0 {
			headID = int64(j.ID)
		}
		depth++
	}
	return s.picked
}

// EASYStarter implements Lifka's aggressive backfilling [10] as described
// by Feitelson and Weil [4] (Section 5.2): only the queue head holds a
// reservation. A lower-priority job may start now if it fits into the
// free nodes and either terminates (by its estimate) before the head's
// shadow time or only uses nodes the head will not need then. EASY "will
// not postpone the projected execution of the next job in the list" but
// may delay jobs further down — and, because projections use estimates,
// may even delay the head when a running job finishes early.
type EASYStarter struct {
	decided
	// ends is the reusable shadow-time sort buffer (Pick is called once
	// per scheduling decision; allocating a running-list copy each time
	// is measurable under deep backlogs). Not safe for concurrent use.
	ends []sim.Running
	// rec receives backfill-attempt events (nil = tracing disabled);
	// stats counts the drain profile's kernel operations.
	rec   telemetry.Recorder
	stats *profile.Stats
	// announced holds the maintenance windows (FailureAware); when any
	// window is still pending, Pick switches from the sorted-completions
	// shadow computation to a profile-based one that carves the drains
	// out of future capacity.
	announced []sim.Failure
	// scratch is the reusable drain-aware availability profile (only
	// allocated when windows are announced); factory selects its backend.
	scratch profile.Kernel
	factory ProfileFactory
	// picked/rem/runBuf are PickMany's reusable pass buffers.
	picked []*job.Job
	rem    []*job.Job
	runBuf []sim.Running
	// interrupt is the cooperative cancellation hook (Interruptible).
	interrupt func() bool
}

// NewEASYStarter returns the EASY backfilling start policy.
func NewEASYStarter() *EASYStarter { return &EASYStarter{} }

// Name implements Starter.
func (*EASYStarter) Name() string { return string(StartEASY) }

// SetInterrupt implements Interruptible.
func (s *EASYStarter) SetInterrupt(f func() bool) { s.interrupt = f }

// Instrument implements Instrumented.
func (s *EASYStarter) Instrument(h telemetry.Hooks) {
	s.rec = h.Recorder
	s.stats = h.ProfileStats
	if s.scratch != nil {
		s.scratch.SetStats(s.stats)
	}
}

// Announce implements FailureAware.
func (s *EASYStarter) Announce(windows []sim.Failure) { s.announced = windows }

// SetProfileFactory implements ProfileBacked.
func (s *EASYStarter) SetProfileFactory(f ProfileFactory) { s.factory, s.scratch = f, nil }

// Pick implements Starter.
func (s *EASYStarter) Pick(ordered []*job.Job, now int64, free int, running []sim.Running, machineNodes int) *job.Job {
	s.reset()
	if len(ordered) == 0 {
		return nil
	}
	if drainsPending(s.announced, now) {
		s.buildDrainProfile(now, running, machineNodes)
		return s.drainPickOne(ordered, now, free)
	}
	return s.pickOne(ordered, now, free, running)
}

// PickMany implements BatchStarter as the literal sequential loop over a
// private queue copy — except that the drain-aware path builds its
// availability profile once per pass and extends it incrementally with
// each started job, instead of rebuilding it per start. The incremental
// Reserve equals the rebuild: a started job passed the profile fit check,
// so within its reservation window the drains' zero-clamp was not active
// and plain subtraction commutes with the clamped drain subtraction.
func (s *EASYStarter) PickMany(ordered []*job.Job, now int64, free int, running []sim.Running, machineNodes int) []*job.Job {
	s.reset()
	s.picked = s.picked[:0]
	if len(ordered) == 0 {
		return nil
	}
	rem := append(s.rem[:0], ordered...)
	if drainsPending(s.announced, now) {
		s.buildDrainProfile(now, running, machineNodes)
		p := s.scratch
		p.BeginPass(now)
		for len(rem) > 0 && free > 0 && !stopNow(s.interrupt) {
			j := s.drainPickOne(rem, now, free)
			if j == nil {
				break
			}
			s.picked = append(s.picked, j)
			free -= j.Nodes
			end := job.AddSat(now, j.Estimate)
			if end <= now {
				end = now + 1
			}
			p.Reserve(j.Nodes, now, end)
			rem = removeJob(rem, j)
		}
		p.CommitPass()
		s.rem = rem[:0]
		return s.picked
	}
	runLocal := append(s.runBuf[:0], running...)
	for len(rem) > 0 && free > 0 && !stopNow(s.interrupt) {
		j := s.pickOne(rem, now, free, runLocal)
		if j == nil {
			break
		}
		s.picked = append(s.picked, j)
		free -= j.Nodes
		runLocal = append(runLocal, sim.Running{Job: j, Start: now, EstEnd: job.AddSat(now, j.Estimate)})
		rem = removeJob(rem, j)
	}
	s.rem, s.runBuf = rem[:0], runLocal[:0]
	return s.picked
}

// pickOne is the fault-free EASY decision against an explicit running
// list (Pick's body; PickMany feeds it the pass-local queue and running
// copies).
func (s *EASYStarter) pickOne(ordered []*job.Job, now int64, free int, running []sim.Running) *job.Job {
	head := ordered[0]
	if head.Nodes <= free {
		s.stash(head, telemetry.Decision{
			Starter: s.Name(), Reason: telemetry.ReasonHeadOfQueue, Head: telemetry.None,
		})
		return head
	}
	if len(ordered) == 1 {
		return nil
	}
	s.ends = append(s.ends[:0], running...)
	shadow, spare := shadowTime(head, now, free, s.ends)
	if s.rec != nil {
		s.rec.Record(telemetry.Event{Type: telemetry.EventBackfill, At: now,
			Job: telemetry.None, Starter: s.Name(), Head: int64(head.ID),
			Shadow: shadow, Spare: spare})
	}
	for i, j := range ordered[1:] {
		if stopAt(s.interrupt, i) {
			return nil
		}
		if j.Nodes > free {
			continue
		}
		if now+j.Estimate <= shadow {
			s.stash(j, telemetry.Decision{
				Starter: s.Name(), Reason: telemetry.ReasonBackfillBeforeShadow,
				Depth: i + 1, Head: int64(head.ID), Shadow: shadow, Spare: spare,
			})
			return j
		}
		if j.Nodes <= spare {
			s.stash(j, telemetry.Decision{
				Starter: s.Name(), Reason: telemetry.ReasonBackfillSpareNodes,
				Depth: i + 1, Head: int64(head.ID), Shadow: shadow, Spare: spare,
			})
			return j
		}
	}
	return nil
}

// buildDrainProfile rebuilds the scratch profile for EASY's failure-aware
// variant: future capacity with the running jobs reserved and the
// announced drains carved out.
func (s *EASYStarter) buildDrainProfile(now int64, running []sim.Running, machineNodes int) {
	s.scratch = ensureScratch(s.scratch, s.factory, s.stats, machineNodes, now)
	p := s.scratch
	for _, r := range running {
		end := r.EstEnd
		if end <= now {
			// A job running past its estimate would have been killed; be
			// defensive against malformed Running data.
			end = now + 1
		}
		p.Reserve(r.Job.Nodes, now, end)
	}
	reserveDrains(p, s.announced, now, profile.Infinity)
}

// drainPickOne is EASY's failure-aware decision, used while announced
// maintenance windows are pending: future capacity is modeled by the
// drain-aware scratch profile, the shadow time is the profile's earliest
// fit for the head (which therefore lands *after* any drain the head
// cannot straddle), and a job only starts now if the profile admits its
// whole estimated run from now — so nobody is started straight into a
// known drain.
func (s *EASYStarter) drainPickOne(ordered []*job.Job, now int64, free int) *job.Job {
	p := s.scratch
	// fit: physically startable now (free nodes respect active outages)
	// and the profile admits the whole estimated run starting now.
	fit := func(j *job.Job) bool {
		return j.Nodes <= free && p.EarliestFit(j.Nodes, j.Estimate, now) == now
	}
	head := ordered[0]
	if fit(head) {
		s.stash(head, telemetry.Decision{
			Starter: s.Name(), Reason: telemetry.ReasonHeadOfQueue, Head: telemetry.None,
		})
		return head
	}
	if len(ordered) == 1 {
		return nil
	}
	shadow := p.EarliestFit(head.Nodes, head.Estimate, now)
	spare := 0
	if shadow < profile.Infinity {
		if sp := p.FreeAt(shadow) - head.Nodes; sp > 0 {
			spare = sp
		}
	}
	if s.rec != nil {
		s.rec.Record(telemetry.Event{Type: telemetry.EventBackfill, At: now,
			Job: telemetry.None, Starter: s.Name(), Head: int64(head.ID),
			Shadow: shadow, Spare: spare})
	}
	for i, j := range ordered[1:] {
		if stopAt(s.interrupt, i) {
			return nil
		}
		if !fit(j) {
			continue
		}
		if job.AddSat(now, j.Estimate) <= shadow {
			s.stash(j, telemetry.Decision{
				Starter: s.Name(), Reason: telemetry.ReasonBackfillBeforeShadow,
				Depth: i + 1, Head: int64(head.ID), Shadow: shadow, Spare: spare,
			})
			return j
		}
		if j.Nodes <= spare {
			s.stash(j, telemetry.Decision{
				Starter: s.Name(), Reason: telemetry.ReasonBackfillSpareNodes,
				Depth: i + 1, Head: int64(head.ID), Shadow: shadow, Spare: spare,
			})
			return j
		}
	}
	return nil
}

// shadowTime computes the head job's reservation: the earliest estimated
// time at which enough nodes drain for the head, and the spare nodes left
// over at that time after the head starts. ends is sorted in place (the
// caller passes an owned copy of the running list).
func shadowTime(head *job.Job, now int64, free int, ends []sim.Running) (shadow int64, spare int) {
	sort.Slice(ends, func(a, b int) bool {
		if ends[a].EstEnd != ends[b].EstEnd {
			return ends[a].EstEnd < ends[b].EstEnd
		}
		return ends[a].Job.ID < ends[b].Job.ID
	})
	avail := free
	for _, r := range ends {
		avail += r.Job.Nodes
		if avail >= head.Nodes {
			return maxInt64(r.EstEnd, now), avail - head.Nodes
		}
	}
	// The head fits on the drained machine only if it fits at all; the
	// simulator validates widths, so this is unreachable for valid jobs
	// unless the queue head is wider than the machine.
	return profile.Infinity, 0
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// ConservativeStarter implements conservative backfilling (Section 5.2):
// every queued job holds a reservation; backfilling "will not increase
// the projected completion time of a job submitted before the job used
// for backfilling". Because the order policies of this package may
// reorder the queue (SMART/PSRS), the reservation profile is rebuilt from
// the current priority order at every scheduling pass (compression); a
// job starts if and only if its reserved start is now.
type ConservativeStarter struct {
	decided
	// maxDepth bounds how many queued jobs are walked per pass
	// (0 = unlimited, the paper's semantics).
	maxDepth int
	// rec receives backfill-attempt events; stats counts the scratch
	// profile's kernel operations (both nil = telemetry disabled).
	rec   telemetry.Recorder
	stats *profile.Stats
	// fast enables the horizon acceleration: reservations starting at or
	// beyond now + max(queue estimates) are skipped and reservation ends
	// are clipped to that horizon. Start-now decisions agree with the
	// exact walk except when an intermediate job's fit window crosses the
	// horizon (rare; the ablation bench quantifies the quality effect);
	// it turns the O(queue²) pass into a near-linear one and makes
	// paper-scale saturated runs tractable.
	fast bool
	// scratch is the reusable reservation profile. Pick rebuilds the full
	// reservation state on every pass (compression); recycling the step
	// storage via Reset removes the per-pass allocation storm. A Starter
	// is owned by one simulation goroutine, so this is not a race.
	// factory selects the backend (default: the O(log S) tree kernel).
	scratch profile.Kernel
	factory ProfileFactory
	// announced holds maintenance windows (FailureAware): each pass carves
	// them out of the scratch profile, so reservations — and therefore
	// start-now decisions — route around known drains.
	announced []sim.Failure
	// picked/rem/runBuf are PickMany's reusable pass buffers.
	picked []*job.Job
	rem    []*job.Job
	runBuf []sim.Running
	// sufMin is pickManyExact's reusable suffix-min-of-widths buffer:
	// sufMin[i] = narrowest job in ordered[i:], the O(1) "can anything
	// still start" probe behind the no-fit fast path and the post-pick
	// early stop.
	sufMin []int
	// interrupt is the cooperative cancellation hook (Interruptible).
	interrupt func() bool
}

// NewConservativeStarter returns the exact conservative backfilling
// start policy. maxDepth > 0 bounds the reservation walk
// (ablation/production tractability); 0 keeps the full semantics.
func NewConservativeStarter(maxDepth int) *ConservativeStarter {
	return &ConservativeStarter{maxDepth: maxDepth}
}

// NewFastConservativeStarter returns the horizon-accelerated variant
// (see the fast field): same policy, near-linear scheduling passes,
// negligibly different decisions in horizon-crossing corner cases.
func NewFastConservativeStarter(maxDepth int) *ConservativeStarter {
	return &ConservativeStarter{maxDepth: maxDepth, fast: true}
}

// Name implements Starter.
func (*ConservativeStarter) Name() string { return string(StartConservative) }

// SetInterrupt implements Interruptible.
func (s *ConservativeStarter) SetInterrupt(f func() bool) { s.interrupt = f }

// Announce implements FailureAware.
func (s *ConservativeStarter) Announce(windows []sim.Failure) { s.announced = windows }

// Instrument implements Instrumented.
func (s *ConservativeStarter) Instrument(h telemetry.Hooks) {
	s.rec = h.Recorder
	s.stats = h.ProfileStats
	if s.scratch != nil {
		s.scratch.SetStats(s.stats)
	}
}

// SetProfileFactory implements ProfileBacked.
func (s *ConservativeStarter) SetProfileFactory(f ProfileFactory) { s.factory, s.scratch = f, nil }

// Pick implements Starter.
func (s *ConservativeStarter) Pick(ordered []*job.Job, now int64, free int, running []sim.Running, machineNodes int) *job.Job {
	s.reset()
	return s.pickOne(ordered, now, free, running, machineNodes)
}

// pickOne is the full sequential decision (Pick's historical body): build
// the reservation profile from scratch, walk the queue, start the first
// job whose reservation is due now.
func (s *ConservativeStarter) pickOne(ordered []*job.Job, now int64, free int, running []sim.Running, machineNodes int) *job.Job {
	if len(ordered) == 0 || free <= 0 {
		return nil
	}
	// Fast path: nothing in the queue fits the free nodes, so no
	// reservation can be "now".
	fits := false
	for i, j := range ordered {
		if stopAt(s.interrupt, i) {
			return nil
		}
		if j.Nodes <= free {
			fits = true
			break
		}
	}
	if !fits {
		return nil
	}
	depth := len(ordered)
	if s.maxDepth > 0 && depth > s.maxDepth {
		depth = s.maxDepth
	}

	// Horizon acceleration (fast mode): only reservations intersecting
	// [now, now + max queue estimate) can influence a start-now decision,
	// so far-future reservations are skipped and ends clipped. The
	// intermediate placements feeding the walk may shift in corner cases
	// (a fit window crossing the horizon), which is the documented
	// approximation of fast mode.
	horizon := profile.Infinity
	if s.fast {
		var maxEst int64
		for _, j := range ordered[:depth] {
			if j.Estimate > maxEst {
				maxEst = j.Estimate
			}
		}
		// Saturating add: a huge estimate near Infinity degrades to the
		// exact (unaccelerated) walk instead of wrapping negative.
		horizon = job.AddSat(now, maxEst)
	}

	s.scratch = ensureScratch(s.scratch, s.factory, s.stats, machineNodes, now)
	p := s.scratch
	for _, r := range running {
		end := r.EstEnd
		if end <= now {
			// A job running past its estimate would have been killed; be
			// defensive against malformed Running data.
			end = now + 1
		}
		if end > horizon {
			end = horizon
		}
		p.Reserve(r.Job.Nodes, now, end)
	}
	// Announced drains come after the running reservations: ReserveClamped
	// saturates at zero where a drain overlaps capacity the running set
	// already holds (those jobs will be aborted by the engine; the profile
	// must simply not promise that capacity to anyone else).
	reserveDrains(p, s.announced, now, horizon)
	for i, j := range ordered[:depth] {
		if stopAt(s.interrupt, i) {
			return nil
		}
		t := p.EarliestFit(j.Nodes, j.Estimate, now)
		if t == now {
			// The profile assumes the machine's nominal size; an injected
			// hardware outage can shrink the real free count below it, so
			// re-check physical availability before starting.
			if j.Nodes <= free {
				d := telemetry.Decision{
					Starter: s.Name(), Reason: telemetry.ReasonReservationDueNow,
					Depth: i, Head: telemetry.None,
				}
				if i > 0 {
					d.Head = int64(ordered[0].ID)
				}
				s.stash(j, d)
				return j
			}
			// Cannot physically start: reserve at now so later queue jobs
			// still respect this job's priority claim.
		}
		if i == 0 && s.rec != nil && len(ordered) > 1 {
			// The head did not start now: everything deeper in this walk
			// is a backfill attempt against the head's reservation.
			s.rec.Record(telemetry.Event{Type: telemetry.EventBackfill, At: now,
				Job: telemetry.None, Starter: s.Name(), Head: int64(j.ID)})
		}
		if t >= horizon {
			continue // cannot influence any start-now decision
		}
		end := job.AddSat(t, j.Estimate)
		if end > horizon {
			end = horizon
		}
		if end > t {
			p.Reserve(j.Nodes, t, end)
		}
	}
	return nil
}

// PickMany implements BatchStarter. Exact mode runs the whole pass as
// one continued profile walk (pickManyExact); fast mode restarts the
// sequential decision per start, because its skip horizon depends on the
// maximum estimate over the *remaining* queue and so legitimately moves
// as jobs leave it.
func (s *ConservativeStarter) PickMany(ordered []*job.Job, now int64, free int, running []sim.Running, machineNodes int) []*job.Job {
	s.reset()
	s.picked = s.picked[:0]
	if !s.fast {
		return s.pickManyExact(ordered, now, free, running, machineNodes)
	}
	rem := append(s.rem[:0], ordered...)
	runLocal := append(s.runBuf[:0], running...)
	for len(rem) > 0 && free > 0 && !stopNow(s.interrupt) {
		j := s.pickOne(rem, now, free, runLocal, machineNodes)
		if j == nil {
			break
		}
		s.picked = append(s.picked, j)
		free -= j.Nodes
		runLocal = append(runLocal, sim.Running{Job: j, Start: now, EstEnd: job.AddSat(now, j.Estimate)})
		rem = removeJob(rem, j)
	}
	s.rem, s.runBuf = rem[:0], runLocal[:0]
	return s.picked
}

// pickManyExact computes an exact conservative pass with ONE profile
// build and ONE queue walk, where the sequential protocol rebuilds and
// rewalks after every start. Equivalence: when a job starts, the next
// sequential rebuild differs from the current profile only by that job's
// running reservation, which is added here immediately; re-walked
// unstarted jobs keep their placements because (a) the started job's fit
// check passed *on top of* their reservations, so each old window stays
// feasible, and (b) capacity only shrank, so no earlier fit can open.
// The depth budget counts unstarted jobs only — each sequential walk
// indexes maxDepth jobs of its remaining (started-jobs-removed) queue.
func (s *ConservativeStarter) pickManyExact(ordered []*job.Job, now int64, free int, running []sim.Running, machineNodes int) []*job.Job {
	if len(ordered) == 0 || free <= 0 {
		return s.picked
	}
	// Same fast path as the sequential walk: nothing fits, nothing to do
	// (and no backfill event — the sequential pass never walks either).
	// The suffix minima also drive the post-pick early stop below.
	if cap(s.sufMin) < len(ordered) {
		s.sufMin = make([]int, len(ordered))
	}
	s.sufMin = s.sufMin[:len(ordered)]
	minW := ordered[len(ordered)-1].Nodes
	for i := len(ordered) - 1; i >= 0; i-- {
		if ordered[i].Nodes < minW {
			minW = ordered[i].Nodes
		}
		s.sufMin[i] = minW
	}
	if s.sufMin[0] > free {
		return s.picked
	}

	s.scratch = ensureScratch(s.scratch, s.factory, s.stats, machineNodes, now)
	p := s.scratch
	for _, r := range running {
		end := r.EstEnd
		if end <= now {
			end = now + 1
		}
		p.Reserve(r.Job.Nodes, now, end)
	}
	reserveDrains(p, s.announced, now, profile.Infinity)

	p.BeginPass(now)
	walked := 0 // unstarted jobs examined: the remaining-queue index
	headID := telemetry.None
	for pos, j := range ordered {
		if free <= 0 {
			break // the sequential protocol stops passing at zero free
		}
		if s.maxDepth > 0 && walked >= s.maxDepth {
			break
		}
		if stopAt(s.interrupt, pos) {
			break // interrupted: partial pass, run is being discarded
		}
		t := p.EarliestFit(j.Nodes, j.Estimate, now)
		if t == now && j.Nodes <= free {
			d := telemetry.Decision{
				Starter: s.Name(), Reason: telemetry.ReasonReservationDueNow,
				Depth: walked, Head: telemetry.None,
			}
			if walked > 0 {
				d.Head = headID
			}
			s.stash(j, d)
			s.picked = append(s.picked, j)
			free -= j.Nodes
			// The reservation the next sequential rebuild would hold for
			// this now-running job. Its fit check passed on the drained
			// profile, so the plain Reserve commutes with the drains'
			// zero-clamp inside the window.
			end := job.AddSat(now, j.Estimate)
			if end <= now {
				end = now + 1
			}
			p.Reserve(j.Nodes, now, end)
			// Early stop: a start-now fit needs Nodes <= free, so if no
			// job past this one is narrow enough for the shrunken free,
			// no further pick is possible and the remaining reservations
			// cannot influence any decision this pass — mirroring the
			// sequential protocol, whose next pass exits on its width
			// precheck without touching the profile.
			if pos+1 == len(ordered) || s.sufMin[pos+1] > free {
				break
			}
			continue
		}
		if walked == 0 {
			// First unstarted job: the remaining head for the rest of the
			// pass (capacity only shrinks, so it cannot start later).
			headID = int64(j.ID)
			if s.rec != nil && len(ordered)-len(s.picked) > 1 {
				s.rec.Record(telemetry.Event{Type: telemetry.EventBackfill, At: now,
					Job: telemetry.None, Starter: s.Name(), Head: int64(j.ID)})
			}
		}
		walked++
		if t >= profile.Infinity {
			continue // never placeable: holds no reservation
		}
		end := job.AddSat(t, j.Estimate)
		if end > t {
			p.Reserve(j.Nodes, t, end)
		}
	}
	p.CommitPass()
	return s.picked
}
