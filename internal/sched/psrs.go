package sched

import (
	"cmp"
	"slices"

	"jobsched/internal/job"
	"jobsched/internal/queue"
	"jobsched/internal/telemetry"
)

// PSRSOrder adapts the PSRS algorithm (Schwiegelshohn [13]) to the
// on-line setting, exactly as the paper does for SMART: PSRS generates a
// preemptive schedule for the waiting-job snapshot, the preemptive
// schedule is converted into a non-preemptive job *order* via two
// geometric bin sequences, and a greedy list schedule (optionally with
// backfilling) consumes that order. Replanning is lazy (replanner).
//
// Modified Smith ratio of a job: weight / (nodes × execution time),
// largest first. With the weighted objective (weight = nodes × time) the
// ratio is 1 for every job — PSRS ordering then carries no information,
// which matches the paper's observation that job order does not matter
// for weighted response time when no resources idle.
type PSRSOrder struct {
	weight  job.WeightFunc
	machine int
	rp      *replanner
}

// NewPSRSOrder builds the PSRS order policy from the configuration.
func NewPSRSOrder(cfg Config) *PSRSOrder {
	cfg = cfg.withDefaults()
	o := &PSRSOrder{weight: cfg.Weight, machine: cfg.MachineNodes}
	o.rp = newReplanner(cfg.RecomputeRatio, o.computePlan)
	return o
}

// Name implements Orderer.
func (o *PSRSOrder) Name() string { return string(OrderPSRS) }

// Push implements Orderer.
func (o *PSRSOrder) Push(j *job.Job, now int64) { o.rp.push(j) }

// Remove implements Orderer.
func (o *PSRSOrder) Remove(j *job.Job, now int64) { o.rp.remove(j) }

// Ordered implements Orderer.
func (o *PSRSOrder) Ordered(now int64) []*job.Job { return o.rp.ordered() }

// OrderedIter implements IndexedOrderer.
func (o *PSRSOrder) OrderedIter(now int64) *queue.Index { return o.rp.index() }

// SetIndexed implements IndexedOrderer.
func (o *PSRSOrder) SetIndexed(on bool) { o.rp.setIndexed(on) }

// BatchWindow implements EpochOrderer: PSRS order is removal-stable
// within a plan epoch (see replanner.batchWindow).
func (o *PSRSOrder) BatchWindow() int { return o.rp.batchWindow() }

// Instrument implements Instrumented: attaches the queue-index counter.
func (o *PSRSOrder) Instrument(h telemetry.Hooks) { o.rp.ix.SetStats(h.QueueStats) }

// Len implements Orderer.
func (o *PSRSOrder) Len() int { return o.rp.len() }

// Recomputations returns how often the plan was recomputed (diagnostics).
func (o *PSRSOrder) Recomputations() int { return o.rp.recomputations }

// modifiedSmith returns weight / (nodes × estimate).
func (o *PSRSOrder) modifiedSmith(j *job.Job) float64 {
	return o.weight(j) / (float64(j.Nodes) * float64(j.Estimate))
}

// computePlan runs PSRS over a waiting-job snapshot: ratio sort,
// preemptive schedule construction, bin conversion.
func (o *PSRSOrder) computePlan(jobs []*job.Job) []*job.Job {
	if len(jobs) <= 1 {
		return append([]*job.Job(nil), jobs...)
	}
	// Step 1: modified Smith ratio, largest first; ties by ID.
	ratio := append([]*job.Job(nil), jobs...)
	slices.SortStableFunc(ratio, func(a, b *job.Job) int {
		ra, rb := o.modifiedSmith(a), o.modifiedSmith(b)
		if ra != rb {
			if ra > rb {
				return -1
			}
			return 1
		}
		return cmp.Compare(a.ID, b.ID)
	})

	// Step 2: preemptive schedule; gives each job a completion time.
	completion := o.preemptiveCompletions(ratio)

	// Conversion: two geometric sequences of time instants with factor 2
	// and different offsets define bins — one sequence for jobs causing
	// preemption (wide: > 50% of the nodes), one for all other (small)
	// jobs. Jobs map to bins by preemptive completion time; within a bin
	// the Smith order is kept; the final order alternates small, wide,
	// small, … starting with the small sequence.
	half := o.machine / 2
	smallBins := make(map[int][]*job.Job)
	wideBins := make(map[int][]*job.Job)
	maxBin := 0
	for _, j := range ratio {
		c := completion[j.ID]
		if j.Nodes > half {
			k := geomSeqBin(c, 1.5) // offset 1.5·2^k
			wideBins[k] = append(wideBins[k], j)
			if k > maxBin {
				maxBin = k
			}
		} else {
			k := geomSeqBin(c, 1.0) // offset 1·2^k
			smallBins[k] = append(smallBins[k], j)
			if k > maxBin {
				maxBin = k
			}
		}
	}
	plan := make([]*job.Job, 0, len(jobs))
	for k := 0; k <= maxBin; k++ {
		plan = append(plan, smallBins[k]...)
		plan = append(plan, wideBins[k]...)
	}
	return plan
}

// geomSeqBin returns the smallest k >= 0 with t <= offset·2^k.
func geomSeqBin(t float64, offset float64) int {
	bound := offset
	k := 0
	for t > bound {
		bound *= 2
		k++
		if k > 128 {
			return 128 // clamp pathological inputs
		}
	}
	return k
}

// preemptiveCompletions builds PSRS's preemptive schedule for the ratio-
// ordered snapshot (all jobs available at virtual time 0, durations = user
// estimates) and returns each job's completion time.
//
// Small jobs (≤ 50% of the nodes) are list-scheduled greedily in ratio
// order. A wide job at the queue head preempts all running jobs once it
// "has been waiting for some time" — interpreted (documented substitution,
// DESIGN.md §2.4) as: the earliest of (a) enough nodes draining naturally
// or (b) its waiting time reaching its own execution time. Preempted jobs
// resume after the wide job with their remaining processing time.
func (o *PSRSOrder) preemptiveCompletions(ratio []*job.Job) map[job.ID]float64 {
	type running struct {
		j         *job.Job
		remaining float64
		since     float64 // segment start
	}
	completion := make(map[job.ID]float64, len(ratio))
	var (
		active  []*running
		free    = o.machine
		t       float64
		queue   = append([]*job.Job(nil), ratio...)
		waiting = -1.0 // head wide job's wait start; <0 = not waiting
	)
	half := o.machine / 2

	finishSegment := func(r *running, now float64) {
		r.remaining -= now - r.since
		r.since = now
	}
	completeDone := func(now float64) {
		kept := active[:0]
		for _, r := range active {
			finishSegment(r, now)
			if r.remaining <= 1e-9 {
				completion[r.j.ID] = now
				free += r.j.Nodes
			} else {
				kept = append(kept, r)
			}
		}
		active = kept
	}

	for len(queue) > 0 || len(active) > 0 {
		// Start jobs per list semantics.
		for len(queue) > 0 {
			head := queue[0]
			if head.Nodes <= half {
				if head.Nodes <= free {
					active = append(active, &running{j: head, remaining: float64(head.Estimate), since: t})
					free -= head.Nodes
					queue = queue[1:]
					waiting = -1
					continue
				}
				break // list semantics: the head waits
			}
			// Wide job at the head.
			if head.Nodes <= free {
				active = append(active, &running{j: head, remaining: float64(head.Estimate), since: t})
				free -= head.Nodes
				queue = queue[1:]
				waiting = -1
				continue
			}
			if waiting < 0 {
				waiting = t
			}
			if t-waiting >= float64(head.Estimate) {
				// Preempt everything; run the wide job exclusively.
				for _, r := range active {
					finishSegment(r, t)
				}
				preempted := active
				active = []*running{{j: head, remaining: float64(head.Estimate), since: t}}
				free = o.machine - head.Nodes
				queue = queue[1:]
				waiting = -1
				t += float64(head.Estimate)
				completion[head.ID] = t
				// Resume preempted jobs (they fitted together before, so
				// they fit again on the drained machine).
				active = nil
				free = o.machine
				for _, r := range preempted {
					r.since = t
					active = append(active, r)
					free -= r.j.Nodes
				}
				continue
			}
			break
		}
		if len(active) == 0 && len(queue) == 0 {
			break
		}
		// Advance to the next event: earliest running completion, or the
		// wide head's preemption deadline.
		next := -1.0
		for _, r := range active {
			end := r.since + r.remaining
			if next < 0 || end < next {
				next = end
			}
		}
		if waiting >= 0 && len(queue) > 0 {
			deadline := waiting + float64(queue[0].Estimate)
			if next < 0 || deadline < next {
				next = deadline
			}
		}
		if next < 0 {
			// No running jobs and the head cannot start: only possible for
			// a wide head on an empty machine — handled above; guard.
			break
		}
		if next < t {
			next = t
		}
		t = next
		completeDone(t)
	}
	// Any jobs never scheduled (defensive): complete them at the horizon.
	for _, j := range ratio {
		if _, ok := completion[j.ID]; !ok {
			completion[j.ID] = t + float64(j.Estimate)
		}
	}
	return completion
}
