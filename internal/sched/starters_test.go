package sched

import (
	"testing"

	"jobsched/internal/job"
	"jobsched/internal/sim"
)

func j(id int, nodes int, est int64) *job.Job {
	return &job.Job{ID: job.ID(id), Nodes: nodes, Estimate: est, Runtime: est}
}

func run(id int, nodes int, start, est int64) sim.Running {
	jj := j(id, nodes, est)
	return sim.Running{Job: jj, Start: start, EstEnd: start + est}
}

func TestListStarterHeadOnly(t *testing.T) {
	s := NewListStarter()
	q := []*job.Job{j(0, 4, 10), j(1, 1, 10)}
	// Head fits: returned.
	if got := s.Pick(q, 0, 4, nil, 4); got != q[0] {
		t.Errorf("head fits but not picked")
	}
	// Head does not fit: nothing starts even though job 1 would fit —
	// strict list semantics never skip the head.
	if got := s.Pick(q, 0, 2, nil, 4); got != nil {
		t.Errorf("list starter skipped the head: %v", got)
	}
	if got := s.Pick(nil, 0, 4, nil, 4); got != nil {
		t.Errorf("empty queue returned %v", got)
	}
}

func TestGareyGrahamSkipsBlockedHead(t *testing.T) {
	s := NewGareyGrahamStarter()
	q := []*job.Job{j(0, 4, 10), j(1, 1, 10), j(2, 2, 10)}
	// Head too wide for 2 free nodes; G&G starts the first fitting job.
	if got := s.Pick(q, 0, 2, nil, 4); got != q[1] {
		t.Errorf("G&G picked %v, want job 1", got)
	}
	// Nothing fits.
	if got := s.Pick(q, 0, 0, nil, 4); got != nil {
		t.Errorf("G&G picked %v with 0 free", got)
	}
}

func TestEASYStartsHeadWhenItFits(t *testing.T) {
	s := NewEASYStarter()
	q := []*job.Job{j(0, 2, 10)}
	if got := s.Pick(q, 0, 2, nil, 4); got != q[0] {
		t.Error("EASY did not start a fitting head")
	}
}

func TestEASYBackfillBeforeShadow(t *testing.T) {
	// Machine 4. Running: 2 nodes until t=10. Head needs 4 → shadow 10.
	// A 2-node job estimated to end by 10 may backfill.
	s := NewEASYStarter()
	running := []sim.Running{run(100, 2, 0, 10)}
	head := j(0, 4, 10)
	fits := j(1, 2, 8) // now(2)+8 = 10 <= shadow 10
	q := []*job.Job{head, fits}
	if got := s.Pick(q, 2, 2, running, 4); got != fits {
		t.Errorf("EASY refused a shadow-safe backfill, got %v", got)
	}
}

func TestEASYRefusesShadowViolation(t *testing.T) {
	// Same setup, but the candidate would run past the shadow and needs
	// more than the spare nodes.
	s := NewEASYStarter()
	running := []sim.Running{run(100, 2, 0, 10)}
	head := j(0, 4, 10) // shadow 10, spare (2+2)-4 = 0
	tooLong := j(1, 2, 9)
	q := []*job.Job{head, tooLong}
	if got := s.Pick(q, 2, 2, running, 4); got != nil {
		t.Errorf("EASY backfilled a job delaying the head: %v", got)
	}
}

func TestEASYSpareNodeBackfill(t *testing.T) {
	// Machine 5: running 3 nodes until 10; head needs 4 → shadow 10,
	// spare (2+3)-4 = 1. A 1-node job of any length may backfill.
	s := NewEASYStarter()
	running := []sim.Running{run(100, 3, 0, 10)}
	head := j(0, 4, 10)
	longThin := j(1, 1, 100000)
	q := []*job.Job{head, longThin}
	if got := s.Pick(q, 2, 2, running, 5); got != longThin {
		t.Errorf("EASY refused a spare-node backfill, got %v", got)
	}
}

func TestEASYSkipsOversizedCandidates(t *testing.T) {
	// A candidate wider than the free nodes cannot backfill even if it
	// would finish before the shadow.
	s := NewEASYStarter()
	running := []sim.Running{run(100, 3, 0, 10)}
	head := j(0, 4, 10)
	wide := j(1, 3, 1)
	short := j(2, 1, 1)
	q := []*job.Job{head, wide, short}
	if got := s.Pick(q, 0, 2, running, 5); got != short {
		t.Errorf("EASY picked %v, want the fitting short job", got)
	}
}

func TestEASYSingleWaitingJobNoBackfill(t *testing.T) {
	s := NewEASYStarter()
	running := []sim.Running{run(100, 3, 0, 10)}
	q := []*job.Job{j(0, 4, 10)}
	if got := s.Pick(q, 0, 2, running, 5); got != nil {
		t.Errorf("picked %v with only a blocked head", got)
	}
}

func TestConservativeStartsHead(t *testing.T) {
	s := NewConservativeStarter(0)
	q := []*job.Job{j(0, 2, 10)}
	if got := s.Pick(q, 0, 4, nil, 4); got != q[0] {
		t.Error("conservative did not start a fitting head")
	}
}

func TestConservativeBackfillsIntoHole(t *testing.T) {
	// Machine 4, 2 nodes busy until 10. Head needs 4 (reserved at 10).
	// A 2-node 8-second job fits the hole [2,10) exactly.
	s := NewConservativeStarter(0)
	running := []sim.Running{run(100, 2, 0, 10)}
	q := []*job.Job{j(0, 4, 100), j(1, 2, 8)}
	if got := s.Pick(q, 2, 2, running, 4); got != q[1] {
		t.Errorf("conservative refused a hole-filling backfill, got %v", got)
	}
}

func TestConservativeRespectsEveryReservation(t *testing.T) {
	// Machine 4, 2 busy until 10. Queue: head 4n (reserved [10,110)),
	// second 2n est 8 (fits hole [2,10), reserved now → started first
	// call). A third job must not steal the hole from the second.
	s := NewConservativeStarter(0)
	running := []sim.Running{run(100, 2, 0, 10)}
	head := j(0, 4, 100)
	second := j(1, 2, 8)
	third := j(2, 2, 8)
	q := []*job.Job{head, second, third}
	// First pick: the second job (hole is its reservation).
	if got := s.Pick(q, 2, 2, running, 4); got != second {
		t.Fatalf("first pick = %v, want job 1", got)
	}
	// Simulate job 1 started: it becomes running, hole capacity gone.
	running2 := append(running, run(1, 2, 2, 8))
	q2 := []*job.Job{head, third}
	if got := s.Pick(q2, 2, 0, running2, 4); got != nil {
		t.Errorf("conservative started %v with zero free nodes", got)
	}
}

func TestConservativeBlockedByEarlierReservation(t *testing.T) {
	// Machine 4, 3 busy until 10. Head 2n est 5: cannot start now
	// (only 1 free), reserved [10,15). A 1-node job estimated 4 s fits
	// now and does not collide with the head's reservation.
	s := NewConservativeStarter(0)
	running := []sim.Running{run(100, 3, 0, 10)}
	head := j(0, 2, 5)
	thin := j(1, 1, 4)
	q := []*job.Job{head, thin}
	if got := s.Pick(q, 2, 1, running, 4); got != thin {
		t.Fatalf("pick = %v, want the thin job", got)
	}
	// A 1-node job running 20 s would overlap [10,15) where free =
	// 4-3(head... ) — head reserved 2 of 4 from 10; running job ends at
	// 10 → free at [10,15) = 4-2 = 2 ≥ 1, so even the long job fits.
	long := j(2, 1, 20)
	q = []*job.Job{head, long}
	if got := s.Pick(q, 2, 1, running, 4); got != long {
		t.Errorf("pick = %v, want the long thin job (no reservation conflict)", got)
	}
}

func TestConservativeRefusesReservationConflict(t *testing.T) {
	// Machine 4, 3 busy until 10. Head 4n est 5 → reserved [10,15).
	// A 1-node job estimated 20 s would occupy [2,22) and push the head
	// past 10 → conservative must refuse it.
	s := NewConservativeStarter(0)
	running := []sim.Running{run(100, 3, 0, 10)}
	head := j(0, 4, 5)
	long := j(1, 1, 20)
	q := []*job.Job{head, long}
	if got := s.Pick(q, 2, 1, running, 4); got != nil {
		t.Errorf("conservative violated the head reservation with %v", got)
	}
}

func TestConservativeOutageRecheckKeepsPriorityClaim(t *testing.T) {
	// The reservation profile assumes the machine's nominal size, so an
	// injected hardware outage can make a reservation come due (t == now)
	// while the physical free count cannot host the job. The starter must
	// re-check `free` — and, crucially, still reserve the blocked job at
	// now so later queue jobs cannot jump its priority claim.
	for _, mk := range []struct {
		name string
		s    func() *ConservativeStarter
	}{
		{"exact", func() *ConservativeStarter { return NewConservativeStarter(0) }},
		{"fast", func() *ConservativeStarter { return NewFastConservativeStarter(0) }},
	} {
		t.Run(mk.name, func(t *testing.T) {
			// Machine nominally 4, nothing running, but an outage holds 2
			// nodes: free = 2. Head wants all 4 → EarliestFit says now, the
			// physical re-check refuses it.
			head := j(0, 4, 10)
			behind := j(1, 2, 5)
			q := []*job.Job{head, behind}

			s := mk.s()
			if got := s.Pick(q, 0, 2, nil, 4); got != nil {
				t.Fatalf("started %v during the outage, want nil (head 4n > 2 free, "+
					"behind blocked by the head's claim)", got)
			}

			// Sanity: without the head's claim the 2-node job starts at once
			// on the same outage state.
			s2 := mk.s()
			if got := s2.Pick([]*job.Job{behind}, 0, 2, nil, 4); got != behind {
				t.Fatalf("pick = %v, want the 2-node job (fits the 2 free nodes)", got)
			}
		})
	}
}

func TestConservativeOutageRecheckEndToEnd(t *testing.T) {
	// Full simulation of the outage re-check: a 2-node outage covers
	// [0,50). The 4-node head cannot physically start before the repair,
	// and the 2-node job behind it must not overtake (its backfill would
	// collide with the head's reservation).
	head := &job.Job{ID: 0, Nodes: 4, Submit: 0, Runtime: 10, Estimate: 10}
	behind := &job.Job{ID: 1, Nodes: 2, Submit: 0, Runtime: 5, Estimate: 5}
	c, err := New(OrderFCFS, StartConservative, Config{MachineNodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Machine{Nodes: 4}, []*job.Job{head, behind}, c, sim.Options{
		Validate: true,
		Failures: []sim.Failure{{At: 0, Nodes: 2, Duration: 50}},
	})
	if err != nil {
		t.Fatal(err)
	}
	starts := map[job.ID]int64{}
	for _, a := range res.Schedule.Allocs {
		if !a.Aborted {
			starts[a.Job.ID] = a.Start
		}
	}
	if starts[0] != 50 {
		t.Errorf("head started at %d, want 50 (after repair)", starts[0])
	}
	if starts[1] < starts[0]+10 {
		t.Errorf("queued job started at %d, overtaking the head (head [%d,%d))",
			starts[1], starts[0], starts[0]+10)
	}
}

func TestConservativeDepthBound(t *testing.T) {
	// With depth 1 only the head is examined; a fitting job further down
	// is invisible.
	s := NewConservativeStarter(1)
	running := []sim.Running{run(100, 2, 0, 10)}
	q := []*job.Job{j(0, 4, 100), j(1, 2, 8)}
	if got := s.Pick(q, 2, 2, running, 4); got != nil {
		t.Errorf("depth-bounded conservative returned %v", got)
	}
}

func TestConservativeEmptyAndNoFit(t *testing.T) {
	s := NewConservativeStarter(0)
	if got := s.Pick(nil, 0, 4, nil, 4); got != nil {
		t.Error("empty queue")
	}
	q := []*job.Job{j(0, 4, 10)}
	if got := s.Pick(q, 0, 0, nil, 4); got != nil {
		t.Error("zero free nodes")
	}
	// Fast path: nothing fits the free count.
	if got := s.Pick(q, 0, 3, nil, 4); got != nil {
		t.Error("nothing fits but something was picked")
	}
}

func TestStarterNames(t *testing.T) {
	if NewListStarter().Name() != "List" {
		t.Error("list name")
	}
	if NewGareyGrahamStarter().Name() != "List" {
		t.Error("G&G reports the list column name")
	}
	if NewEASYStarter().Name() != "EASY-Backfilling" {
		t.Error("EASY name")
	}
	if NewConservativeStarter(0).Name() != "Backfilling" {
		t.Error("conservative name")
	}
}
