package sched

import (
	"testing"

	"jobsched/internal/job"
)

func cfg4() Config {
	return Config{MachineNodes: 4}.withDefaults()
}

func TestGeometricBin(t *testing.T) {
	cases := []struct {
		t    int64
		want int
	}{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1024, 10},
	}
	for _, c := range cases {
		if got := geometricBin(c.t, 2); got != c.want {
			t.Errorf("geometricBin(%d) = %d, want %d", c.t, got, c.want)
		}
	}
	// γ = 4: ]0,1], ]1,4], ]4,16] …
	if got := geometricBin(16, 4); got != 2 {
		t.Errorf("geometricBin(16, γ=4) = %d, want 2", got)
	}
}

func TestSMARTPlanContainsAllJobsOnce(t *testing.T) {
	o := NewSMARTOrder(FFIA, cfg4())
	jobs := []*job.Job{
		j(0, 1, 100), j(1, 2, 50), j(2, 4, 3000), j(3, 1, 7), j(4, 3, 100),
	}
	plan := o.computePlan(jobs)
	if len(plan) != len(jobs) {
		t.Fatalf("plan has %d jobs, want %d", len(plan), len(jobs))
	}
	seen := map[job.ID]bool{}
	for _, p := range plan {
		if seen[p.ID] {
			t.Fatalf("job %d duplicated", p.ID)
		}
		seen[p.ID] = true
	}
}

func TestSMARTShelfPackingFFIA(t *testing.T) {
	// All jobs in one bin (same estimate 100). Machine 4 nodes.
	// Areas: j0 = 100, j1 = 200, j2 = 300, j3 = 400 → FFIA order
	// j0(1n), j1(2n), j2(3n), j3(4n). Shelves: {j0,j1} (3 nodes),
	// j2 next: 3+3 > 4 → first fit tries shelf 0 (3+3>4) → new shelf
	// {j2}; j3: shelf0 3+4>4, shelf1 3+4>4 → new shelf {j3}.
	o := NewSMARTOrder(FFIA, cfg4())
	jobs := []*job.Job{j(0, 1, 100), j(1, 2, 100), j(2, 3, 100), j(3, 4, 100)}
	shelves := o.packBin(jobs)
	if len(shelves) != 3 {
		t.Fatalf("got %d shelves, want 3", len(shelves))
	}
	if len(shelves[0].jobs) != 2 || shelves[0].usedNodes != 3 {
		t.Errorf("shelf 0 = %d jobs / %d nodes, want 2 / 3",
			len(shelves[0].jobs), shelves[0].usedNodes)
	}
}

func TestSMARTShelfPackingNFIWNextFitOnly(t *testing.T) {
	// NFIW uses only the current shelf: with unit weights the sort key
	// is nodes ascending → 1,1,4,4 on a 4-node machine packs
	// {1,1} → new {4} → new {4}: 3 shelves. First-fit would reuse
	// earlier shelves; next-fit must not.
	o := NewSMARTOrder(NFIW, cfg4())
	jobs := []*job.Job{j(0, 1, 100), j(1, 1, 100), j(2, 4, 100), j(3, 4, 100)}
	shelves := o.packBin(jobs)
	if len(shelves) != 3 {
		t.Fatalf("got %d shelves, want 3", len(shelves))
	}
	if shelves[0].usedNodes != 2 {
		t.Errorf("shelf 0 nodes = %d, want 2", shelves[0].usedNodes)
	}
}

func TestSMARTSmithRuleOrdersShelves(t *testing.T) {
	// Two bins: short jobs (est 10) and long jobs (est 1000), unit
	// weights. Short shelf ratio = n/10 ≫ long shelf ratio = n/1000 →
	// short jobs must precede long ones in the plan.
	o := NewSMARTOrder(FFIA, cfg4())
	long1, long2 := j(0, 2, 1000), j(1, 2, 1000)
	short1, short2 := j(2, 2, 10), j(3, 2, 10)
	plan := o.computePlan([]*job.Job{long1, long2, short1, short2})
	pos := map[job.ID]int{}
	for i, p := range plan {
		pos[p.ID] = i
	}
	if pos[short1.ID] > pos[long1.ID] || pos[short2.ID] > pos[long2.ID] {
		t.Errorf("Smith rule violated: plan order %v", ids(plan))
	}
}

func TestSMARTWeightedSmithRule(t *testing.T) {
	// With area weights a long shelf can outrank a short one: one
	// huge-area long job (4n × 1000) vs a tiny short job (1n × 10).
	// Long ratio = 4000/1000 = 4 > short ratio = 10/10 = 1.
	c := cfg4()
	c.Weight = job.AreaWeight
	o := NewSMARTOrder(FFIA, c)
	long := j(0, 4, 1000)
	short := j(1, 1, 10)
	plan := o.computePlan([]*job.Job{short, long})
	if plan[0] != long {
		t.Errorf("weighted Smith rule: plan order %v, want long first", ids(plan))
	}
}

func TestSMARTGammaChangesBinning(t *testing.T) {
	// With γ=2, estimates 100 and 150 land in different bins (bin 7:
	// ]64,128] vs bin 8: ]128,256]); with γ=16 they share a bin.
	if geometricBin(100, 2) == geometricBin(150, 2) {
		t.Error("γ=2 should separate 100 and 150")
	}
	if geometricBin(100, 16) != geometricBin(150, 16) {
		t.Error("γ=16 should merge 100 and 150")
	}
}

func TestSMARTOrderLifecycle(t *testing.T) {
	o := NewSMARTOrder(FFIA, cfg4())
	a, b, c := j(0, 1, 10), j(1, 1, 10), j(2, 1, 10)
	o.Push(a, 0)
	o.Push(b, 0)
	if o.Len() != 2 {
		t.Fatalf("Len = %d", o.Len())
	}
	got := o.Ordered(0)
	if len(got) != 2 {
		t.Fatalf("Ordered = %v", ids(got))
	}
	o.Remove(a, 1)
	o.Push(c, 1)
	if o.Len() != 2 {
		t.Fatalf("Len after remove/push = %d", o.Len())
	}
	got = o.Ordered(1)
	seen := map[job.ID]bool{}
	for _, g := range got {
		seen[g.ID] = true
	}
	if seen[a.ID] || !seen[b.ID] || !seen[c.ID] {
		t.Fatalf("Ordered after lifecycle = %v", ids(got))
	}
}

func TestSMARTNames(t *testing.T) {
	if NewSMARTOrder(FFIA, cfg4()).Name() != "SMART-FFIA" {
		t.Error("FFIA name")
	}
	if NewSMARTOrder(NFIW, cfg4()).Name() != "SMART-NFIW" {
		t.Error("NFIW name")
	}
}

func TestSMARTPanicsOnBadGamma(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	c := cfg4()
	c.SmartGamma = 1
	NewSMARTOrder(FFIA, c)
}

func ids(jobs []*job.Job) []job.ID {
	out := make([]job.ID, len(jobs))
	for i, jj := range jobs {
		out[i] = jj.ID
	}
	return out
}
