package sched

// The IndexedStarter implementations: each start policy's batched pass
// against the order policy's queue.Index instead of a materialized
// ordered slice. Every method mirrors its slice counterpart (PickMany /
// the pick-one loop) decision for decision — same jobs, same order, same
// telemetry — the property the batch-equivalence and indexed-differential
// tests pin. The wins are structural: no O(Q) slice walk per pass,
// width-pruned scans that skip runs of too-wide jobs in O(log Q), an
// O(1) "nothing fits" precheck for the conservative walk, and an
// O(log Q) horizon lookup for its fast mode.

import (
	"jobsched/internal/job"
	"jobsched/internal/profile"
	"jobsched/internal/queue"
	"jobsched/internal/sim"
	"jobsched/internal/telemetry"
)

var (
	_ IndexedStarter = (*ListStarter)(nil)
	_ IndexedStarter = (*GareyGrahamStarter)(nil)
	_ IndexedStarter = (*EASYStarter)(nil)
	_ IndexedStarter = (*ConservativeStarter)(nil)
)

// PickManyIndexed implements IndexedStarter: the startable prefix of the
// queue (see PickMany), iterated via cursor.
func (s *ListStarter) PickManyIndexed(ix *queue.Index, now int64, free int, running []sim.Running, machineNodes, limit int) []*job.Job {
	s.reset()
	s.picked = s.picked[:0]
	it := ix.Iter()
	for j := it.Next(); j != nil; j = it.Next() {
		if j.Nodes > free || stopAt(s.interrupt, len(s.picked)) {
			break
		}
		if limit > 0 && len(s.picked) >= limit {
			break
		}
		s.stash(j, telemetry.Decision{
			Starter: s.Name(), Reason: telemetry.ReasonHeadOfQueue, Head: telemetry.None,
		})
		s.picked = append(s.picked, j)
		free -= j.Nodes
	}
	return s.picked
}

// PickManyIndexed implements IndexedStarter with a single width-pruned
// forward scan (see PickMany for the equivalence argument). The skipped
// (too-wide) jobs are never touched: the cursor jumps over each run of
// misfits in O(log Q). Depth — the pick's index in the remaining queue,
// equal to the skips so far — is reconstructed as rank minus prior picks,
// and Head (the first job that failed to fit) is the job ranked exactly
// at the pick count when the first gap appears: until then every
// lower-ranked job was picked.
func (s *GareyGrahamStarter) PickManyIndexed(ix *queue.Index, now int64, free int, running []sim.Running, machineNodes, limit int) []*job.Job {
	s.reset()
	s.picked = s.picked[:0]
	headID := telemetry.None
	headSet := false
	it := ix.Iter()
	for free > 0 && (limit <= 0 || len(s.picked) < limit) && !stopNow(s.interrupt) {
		j := it.NextFit(free)
		if j == nil {
			break
		}
		depth := ix.Rank(it.Slot()) - len(s.picked)
		d := telemetry.Decision{
			Starter: s.Name(), Reason: telemetry.ReasonScanFit,
			Depth: depth, Head: telemetry.None,
		}
		if depth > 0 {
			if !headSet {
				if h, _ := ix.Select(len(s.picked)); h != nil {
					headID = int64(h.ID)
				}
				headSet = true
			}
			d.Head = headID
		}
		s.stash(j, d)
		s.picked = append(s.picked, j)
		free -= j.Nodes
	}
	return s.picked
}

// PickManyIndexed implements IndexedStarter: the sequential EASY loop
// with picked jobs hidden pass-locally instead of copied out of a
// private queue (see PickMany for the drain-profile argument).
func (s *EASYStarter) PickManyIndexed(ix *queue.Index, now int64, free int, running []sim.Running, machineNodes, limit int) []*job.Job {
	s.reset()
	s.picked = s.picked[:0]
	if ix.Len() == 0 {
		return nil
	}
	if drainsPending(s.announced, now) {
		s.buildDrainProfile(now, running, machineNodes)
		p := s.scratch
		p.BeginPass(now)
		for ix.Len() > 0 && free > 0 && !stopNow(s.interrupt) {
			if limit > 0 && len(s.picked) >= limit {
				break
			}
			j := s.drainPickOneIx(ix, now, free)
			if j == nil {
				break
			}
			s.picked = append(s.picked, j)
			free -= j.Nodes
			end := job.AddSat(now, j.Estimate)
			if end <= now {
				end = now + 1
			}
			p.Reserve(j.Nodes, now, end)
			ix.Hide(j)
		}
		p.CommitPass()
		ix.UnhideAll()
		return s.picked
	}
	runLocal := append(s.runBuf[:0], running...)
	for ix.Len() > 0 && free > 0 && !stopNow(s.interrupt) {
		if limit > 0 && len(s.picked) >= limit {
			break
		}
		j := s.pickOneIx(ix, now, free, runLocal)
		if j == nil {
			break
		}
		s.picked = append(s.picked, j)
		free -= j.Nodes
		runLocal = append(runLocal, sim.Running{Job: j, Start: now, EstEnd: job.AddSat(now, j.Estimate)})
		ix.Hide(j)
	}
	s.runBuf = runLocal[:0]
	ix.UnhideAll()
	return s.picked
}

// pickOneIx is pickOne against the index: the backfill scan visits only
// candidates that fit the free nodes (width-pruned), never the runs of
// too-wide jobs between them. Depth = the candidate's rank in the
// remaining (visible) order, which is exactly its index in the slice
// pickOne's queue.
func (s *EASYStarter) pickOneIx(ix *queue.Index, now int64, free int, running []sim.Running) *job.Job {
	head, headSlot := ix.First()
	if head == nil {
		return nil
	}
	if head.Nodes <= free {
		s.stash(head, telemetry.Decision{
			Starter: s.Name(), Reason: telemetry.ReasonHeadOfQueue, Head: telemetry.None,
		})
		return head
	}
	if ix.Len() == 1 {
		return nil
	}
	s.ends = append(s.ends[:0], running...)
	shadow, spare := shadowTime(head, now, free, s.ends)
	if s.rec != nil {
		s.rec.Record(telemetry.Event{Type: telemetry.EventBackfill, At: now,
			Job: telemetry.None, Starter: s.Name(), Head: int64(head.ID),
			Shadow: shadow, Spare: spare})
	}
	it := ix.IterAfter(headSlot)
	for j, k := it.NextFit(free), 0; j != nil; j, k = it.NextFit(free), k+1 {
		if stopAt(s.interrupt, k) {
			return nil
		}
		if now+j.Estimate <= shadow {
			s.stash(j, telemetry.Decision{
				Starter: s.Name(), Reason: telemetry.ReasonBackfillBeforeShadow,
				Depth: ix.Rank(it.Slot()), Head: int64(head.ID), Shadow: shadow, Spare: spare,
			})
			return j
		}
		if j.Nodes <= spare {
			s.stash(j, telemetry.Decision{
				Starter: s.Name(), Reason: telemetry.ReasonBackfillSpareNodes,
				Depth: ix.Rank(it.Slot()), Head: int64(head.ID), Shadow: shadow, Spare: spare,
			})
			return j
		}
	}
	return nil
}

// drainPickOneIx is drainPickOne against the index. The width index only
// prunes the physical half of the fit check; each surviving candidate
// still pays its profile query, exactly like the slice walk.
func (s *EASYStarter) drainPickOneIx(ix *queue.Index, now int64, free int) *job.Job {
	p := s.scratch
	fit := func(j *job.Job) bool {
		return j.Nodes <= free && p.EarliestFit(j.Nodes, j.Estimate, now) == now
	}
	head, headSlot := ix.First()
	if head == nil {
		return nil
	}
	if fit(head) {
		s.stash(head, telemetry.Decision{
			Starter: s.Name(), Reason: telemetry.ReasonHeadOfQueue, Head: telemetry.None,
		})
		return head
	}
	if ix.Len() == 1 {
		return nil
	}
	shadow := p.EarliestFit(head.Nodes, head.Estimate, now)
	spare := 0
	if shadow < profile.Infinity {
		if sp := p.FreeAt(shadow) - head.Nodes; sp > 0 {
			spare = sp
		}
	}
	if s.rec != nil {
		s.rec.Record(telemetry.Event{Type: telemetry.EventBackfill, At: now,
			Job: telemetry.None, Starter: s.Name(), Head: int64(head.ID),
			Shadow: shadow, Spare: spare})
	}
	it := ix.IterAfter(headSlot)
	for j, k := it.NextFit(free), 0; j != nil; j, k = it.NextFit(free), k+1 {
		if stopAt(s.interrupt, k) {
			return nil
		}
		if p.EarliestFit(j.Nodes, j.Estimate, now) != now {
			continue
		}
		if job.AddSat(now, j.Estimate) <= shadow {
			s.stash(j, telemetry.Decision{
				Starter: s.Name(), Reason: telemetry.ReasonBackfillBeforeShadow,
				Depth: ix.Rank(it.Slot()), Head: int64(head.ID), Shadow: shadow, Spare: spare,
			})
			return j
		}
		if j.Nodes <= spare {
			s.stash(j, telemetry.Decision{
				Starter: s.Name(), Reason: telemetry.ReasonBackfillSpareNodes,
				Depth: ix.Rank(it.Slot()), Head: int64(head.ID), Shadow: shadow, Spare: spare,
			})
			return j
		}
	}
	return nil
}

// PickManyIndexed implements IndexedStarter (see PickMany: exact mode is
// one continued profile walk, fast mode restarts the decision per start
// because its horizon moves with the remaining queue).
func (s *ConservativeStarter) PickManyIndexed(ix *queue.Index, now int64, free int, running []sim.Running, machineNodes, limit int) []*job.Job {
	s.reset()
	s.picked = s.picked[:0]
	if !s.fast {
		return s.pickManyExactIx(ix, now, free, running, machineNodes, limit)
	}
	runLocal := append(s.runBuf[:0], running...)
	for ix.Len() > 0 && free > 0 && !stopNow(s.interrupt) {
		if limit > 0 && len(s.picked) >= limit {
			break
		}
		j := s.pickOneIx(ix, now, free, runLocal, machineNodes)
		if j == nil {
			break
		}
		s.picked = append(s.picked, j)
		free -= j.Nodes
		runLocal = append(runLocal, sim.Running{Job: j, Start: now, EstEnd: job.AddSat(now, j.Estimate)})
		ix.Hide(j)
	}
	s.runBuf = runLocal[:0]
	ix.UnhideAll()
	return s.picked
}

// pickOneIx is the conservative pickOne against the index. Two index
// wins over the slice walk: the "nothing in the queue fits" precheck —
// an O(Q) scan per pass on the slice path, and the dominant cost of
// saturated deep-backlog passes — collapses to one O(1) subtree-minimum
// lookup, and fast mode's walk horizon (max estimate over the walked
// prefix) is an O(log Q) range query instead of a prefix scan. The
// reservation walk itself still visits the first depth jobs: every
// unstarted job holds a reservation that constrains later placements,
// wide or not.
func (s *ConservativeStarter) pickOneIx(ix *queue.Index, now int64, free int, running []sim.Running, machineNodes int) *job.Job {
	if ix.Len() == 0 || free <= 0 {
		return nil
	}
	if ix.MinNodes() > free {
		return nil
	}
	depth := ix.Len()
	if s.maxDepth > 0 && depth > s.maxDepth {
		depth = s.maxDepth
	}
	horizon := profile.Infinity
	if s.fast {
		// Saturating add: a huge estimate near Infinity degrades to the
		// exact (unaccelerated) walk instead of wrapping negative.
		horizon = job.AddSat(now, ix.MaxEstimateFirst(depth))
	}

	s.scratch = ensureScratch(s.scratch, s.factory, s.stats, machineNodes, now)
	p := s.scratch
	for _, r := range running {
		end := r.EstEnd
		if end <= now {
			// A job running past its estimate would have been killed; be
			// defensive against malformed Running data.
			end = now + 1
		}
		if end > horizon {
			end = horizon
		}
		p.Reserve(r.Job.Nodes, now, end)
	}
	reserveDrains(p, s.announced, now, horizon)
	it := ix.Iter()
	var first *job.Job
	for j, i := it.Next(), 0; j != nil && i < depth; j, i = it.Next(), i+1 {
		if stopAt(s.interrupt, i) {
			return nil
		}
		if i == 0 {
			first = j
		}
		t := p.EarliestFit(j.Nodes, j.Estimate, now)
		if t == now {
			if j.Nodes <= free {
				d := telemetry.Decision{
					Starter: s.Name(), Reason: telemetry.ReasonReservationDueNow,
					Depth: i, Head: telemetry.None,
				}
				if i > 0 {
					d.Head = int64(first.ID)
				}
				s.stash(j, d)
				return j
			}
			// Cannot physically start: reserve at now so later queue jobs
			// still respect this job's priority claim.
		}
		if i == 0 && s.rec != nil && ix.Len() > 1 {
			s.rec.Record(telemetry.Event{Type: telemetry.EventBackfill, At: now,
				Job: telemetry.None, Starter: s.Name(), Head: int64(j.ID)})
		}
		if t >= horizon {
			continue // cannot influence any start-now decision
		}
		end := job.AddSat(t, j.Estimate)
		if end > horizon {
			end = horizon
		}
		if end > t {
			p.Reserve(j.Nodes, t, end)
		}
	}
	return nil
}

// pickManyExactIx is pickManyExact against the index: one profile build,
// one cursor walk (see pickManyExact for the equivalence argument), with
// the O(1) no-fit precheck in front and the batch bounded by the epoch
// window when the order policy requires it.
func (s *ConservativeStarter) pickManyExactIx(ix *queue.Index, now int64, free int, running []sim.Running, machineNodes, limit int) []*job.Job {
	if ix.Len() == 0 || free <= 0 {
		return s.picked
	}
	// Same fast path as the sequential walk: nothing fits, nothing to do
	// (and no backfill event — the sequential pass never walks either).
	if ix.MinNodes() > free {
		return s.picked
	}

	s.scratch = ensureScratch(s.scratch, s.factory, s.stats, machineNodes, now)
	p := s.scratch
	for _, r := range running {
		end := r.EstEnd
		if end <= now {
			end = now + 1
		}
		p.Reserve(r.Job.Nodes, now, end)
	}
	reserveDrains(p, s.announced, now, profile.Infinity)

	p.BeginPass(now)
	walked := 0 // unstarted jobs examined: the remaining-queue index
	headID := telemetry.None
	it := ix.Iter()
	for j, pos := it.Next(), 0; j != nil; j, pos = it.Next(), pos+1 {
		if free <= 0 {
			break // the sequential protocol stops passing at zero free
		}
		if s.maxDepth > 0 && walked >= s.maxDepth {
			break
		}
		if limit > 0 && len(s.picked) >= limit {
			break
		}
		if stopAt(s.interrupt, pos) {
			break // interrupted: partial pass, run is being discarded
		}
		t := p.EarliestFit(j.Nodes, j.Estimate, now)
		if t == now && j.Nodes <= free {
			d := telemetry.Decision{
				Starter: s.Name(), Reason: telemetry.ReasonReservationDueNow,
				Depth: walked, Head: telemetry.None,
			}
			if walked > 0 {
				d.Head = headID
			}
			s.stash(j, d)
			s.picked = append(s.picked, j)
			free -= j.Nodes
			// The reservation the next sequential rebuild would hold for
			// this now-running job (see pickManyExact).
			end := job.AddSat(now, j.Estimate)
			if end <= now {
				end = now + 1
			}
			p.Reserve(j.Nodes, now, end)
			// Early stop: a start-now fit needs Nodes <= free, so if no
			// job past the cursor is narrow enough for the shrunken free,
			// no further pick is possible and the remaining reservations
			// cannot influence any decision this pass — mirroring the
			// sequential protocol, whose next pass exits on its width
			// precheck without touching the profile.
			if probe := it; probe.NextFit(free) == nil {
				break
			}
			continue
		}
		if walked == 0 {
			// First unstarted job: the remaining head for the rest of the
			// pass (capacity only shrinks, so it cannot start later).
			headID = int64(j.ID)
			if s.rec != nil && ix.Len()-len(s.picked) > 1 {
				s.rec.Record(telemetry.Event{Type: telemetry.EventBackfill, At: now,
					Job: telemetry.None, Starter: s.Name(), Head: int64(j.ID)})
			}
		}
		walked++
		if t >= profile.Infinity {
			continue // never placeable: holds no reservation
		}
		end := job.AddSat(t, j.Estimate)
		if end > t {
			p.Reserve(j.Nodes, t, end)
		}
	}
	p.CommitPass()
	return s.picked
}
