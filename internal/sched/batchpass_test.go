package sched

import (
	"fmt"
	"math/rand"
	"testing"

	"jobsched/internal/job"
	"jobsched/internal/profile"
	"jobsched/internal/sim"
	"jobsched/internal/telemetry"
)

// Batched scheduling passes (BatchStarter.PickMany) are specified to be
// observationally equivalent to the engine's Pick-until-nil protocol:
// the same jobs start at the same instants with the same classified
// decisions, on every grid algorithm, with and without announced drains,
// and regardless of which profile kernel backs the starter's scratch
// state. These tests pin that equivalence end to end through the engine.

// runTraced simulates jobs under alg and returns the schedule plus the
// recorded start events (decisions included). EventPass/EventBackfill
// counts legitimately differ between the protocols — a batched pass is
// one Startable call and one walk — so only start events are compared.
func runTraced(t *testing.T, alg *Composite, jobs []*job.Job, nodes int) (*sim.Schedule, []telemetry.Event) {
	t.Helper()
	buf := &telemetry.Buffer{}
	res, err := sim.RunChecked(sim.Machine{Nodes: nodes}, job.CloneAll(jobs), alg,
		sim.Options{Validate: true, Recorder: buf})
	if err != nil {
		t.Fatalf("%s: %v", alg.Name(), err)
	}
	var starts []telemetry.Event
	for _, ev := range buf.Events() {
		if ev.Type == telemetry.EventStart {
			starts = append(starts, ev)
		}
	}
	return res.Schedule, starts
}

// scheduleFingerprint renders per-job placements in a canonical order.
func scheduleFingerprint(s *sim.Schedule) string {
	out := ""
	for _, a := range s.Allocs {
		out += fmt.Sprintf("%d@[%d,%d)k=%v;", a.Job.ID, a.Start, a.End, a.Killed)
	}
	return out
}

// batchGridCases enumerates the algorithm configurations under test:
// every grid cell, conservative in exact/fast/depth-bounded flavors,
// with and without announced maintenance windows.
func batchGridCases(nodes int) []struct {
	name string
	mk   func() (*Composite, error)
} {
	drains := []sim.Failure{
		{At: 120, Nodes: nodes, Duration: 60},
		{At: 400, Nodes: nodes / 2, Duration: 100},
	}
	var cases []struct {
		name string
		mk   func() (*Composite, error)
	}
	add := func(name string, o OrderName, s StartName, cfg Config) {
		cfg.MachineNodes = nodes
		cases = append(cases, struct {
			name string
			mk   func() (*Composite, error)
		}{name, func() (*Composite, error) { return New(o, s, cfg) }})
	}
	for _, o := range GridOrders() {
		for _, s := range GridStarts() {
			add(fmt.Sprintf("%s/%s", o, s), o, s, Config{})
		}
	}
	add("FCFS/Backfilling-fast", OrderFCFS, StartConservative, Config{FastConservative: true})
	add("FCFS/Backfilling-depth3", OrderFCFS, StartConservative, Config{MaxBackfillDepth: 3})
	add("FCFS/Backfilling-drains", OrderFCFS, StartConservative, Config{Announced: drains})
	add("FCFS/Backfilling-fast-drains", OrderFCFS, StartConservative,
		Config{FastConservative: true, Announced: drains})
	add("FCFS/EASY-drains", OrderFCFS, StartEASY, Config{Announced: drains})
	add("GG-drains", OrderGG, StartList, Config{Announced: drains})
	return cases
}

// TestBatchedPassesMatchSequential is the end-to-end equivalence gate:
// for every algorithm configuration and several random workloads, the
// batched engine run must produce a byte-identical schedule AND
// identical start events (time, free-node accounting, reason, depth,
// head, shadow, spare) to the forced-sequential run.
func TestBatchedPassesMatchSequential(t *testing.T) {
	const nodes = 16
	for seed := int64(1); seed <= 4; seed++ {
		jobs := randomJobs(rand.New(rand.NewSource(seed)), 250, nodes)
		for _, tc := range batchGridCases(nodes) {
			batched, err := tc.mk()
			if err != nil {
				t.Fatal(err)
			}
			sequential, err := tc.mk()
			if err != nil {
				t.Fatal(err)
			}
			sequential.SetSequentialPasses(true)

			bs, bev := runTraced(t, batched, jobs, nodes)
			ss, sev := runTraced(t, sequential, jobs, nodes)

			if bf, sf := scheduleFingerprint(bs), scheduleFingerprint(ss); bf != sf {
				t.Fatalf("seed %d %s: batched schedule diverged from sequential\nbatched:    %s\nsequential: %s",
					seed, tc.name, bf, sf)
			}
			if len(bev) != len(sev) {
				t.Fatalf("seed %d %s: %d start events batched, %d sequential",
					seed, tc.name, len(bev), len(sev))
			}
			for i := range bev {
				if bev[i] != sev[i] {
					t.Fatalf("seed %d %s: start event %d diverged\nbatched:    %+v\nsequential: %+v",
						seed, tc.name, i, bev[i], sev[i])
				}
			}
		}
	}
}

// TestProfileBackendIndependence pins that whole schedules do not depend
// on which kernel backs the starters' scratch profiles: the tree
// (default), the array kernel, and the brute-force reference oracle must
// yield identical schedules and start events for every configuration.
func TestProfileBackendIndependence(t *testing.T) {
	const nodes = 16
	factories := []struct {
		name string
		f    ProfileFactory
	}{
		{"tree", nil},
		{"array", func(n int, from int64) profile.Kernel { return profile.New(n, from) }},
		{"reference", func(n int, from int64) profile.Kernel { return profile.NewReference(n, from) }},
	}
	jobs := randomJobs(rand.New(rand.NewSource(7)), 200, nodes)
	for _, tc := range batchGridCases(nodes) {
		var baseSched string
		var baseEv []telemetry.Event
		for fi, fac := range factories {
			alg, err := tc.mk()
			if err != nil {
				t.Fatal(err)
			}
			alg.SetProfileFactory(fac.f)
			s, ev := runTraced(t, alg, jobs, nodes)
			if fi == 0 {
				baseSched, baseEv = scheduleFingerprint(s), ev
				continue
			}
			if got := scheduleFingerprint(s); got != baseSched {
				t.Fatalf("%s: %s backend diverged from tree\n%s\nvs\n%s",
					tc.name, fac.name, got, baseSched)
			}
			if len(ev) != len(baseEv) {
				t.Fatalf("%s: %s backend has %d start events, tree %d",
					tc.name, fac.name, len(ev), len(baseEv))
			}
			for i := range ev {
				if ev[i] != baseEv[i] {
					t.Fatalf("%s: %s backend start event %d diverged\n%+v\nvs tree\n%+v",
						tc.name, fac.name, i, ev[i], baseEv[i])
				}
			}
		}
	}
}

// TestBatchedPassStartsManyPerPass is the non-vacuity check: on a
// saturated FCFS/List workload where many queued jobs fit at one drain
// instant, a single batched pass must actually start more than one job
// (otherwise the equivalence tests above would be comparing two
// sequential implementations).
func TestBatchedPassStartsManyPerPass(t *testing.T) {
	const nodes = 8
	// One machine-filling job, then eight 1-node jobs submitted while it
	// runs: when it completes, all eight start in the same pass.
	jobs := []*job.Job{{ID: 0, Submit: 0, Nodes: nodes, Estimate: 100, Runtime: 100}}
	for i := 1; i <= nodes; i++ {
		jobs = append(jobs, &job.Job{ID: job.ID(i), Submit: 1, Nodes: 1, Estimate: 50, Runtime: 50})
	}
	alg, err := New(OrderFCFS, StartList, Config{MachineNodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	buf := &telemetry.Buffer{}
	if _, err := sim.RunChecked(sim.Machine{Nodes: nodes}, job.CloneAll(jobs), alg,
		sim.Options{Validate: true, Recorder: buf}); err != nil {
		t.Fatal(err)
	}
	// Count starts per (pass) by tracking EventPass boundaries.
	maxPerPass, cur := 0, 0
	for _, ev := range buf.Events() {
		switch ev.Type {
		case telemetry.EventPass:
			if cur > maxPerPass {
				maxPerPass = cur
			}
			cur = 0
		case telemetry.EventStart:
			cur++
		}
	}
	if cur > maxPerPass {
		maxPerPass = cur
	}
	if maxPerPass < nodes {
		t.Fatalf("batched pass started at most %d jobs, want %d in one pass", maxPerPass, nodes)
	}
}
