package sched

import (
	"fmt"
	"sort"

	"jobsched/internal/job"
	"jobsched/internal/profile"
	"jobsched/internal/sim"
	"jobsched/internal/telemetry"
)

// AdvanceReservation is a promise of nodes for a fixed future interval,
// made before any job submission — the Section 2 feature "especially
// beneficial for multisite metacomputing [17]" (a remote site
// co-allocates the nodes), and the hard form of Example 4's lab-course
// rule. The scheduler must leave Nodes nodes unused during [Start, End).
type AdvanceReservation struct {
	Name  string
	Nodes int
	Start int64
	End   int64
}

// Calendar is a validated set of advance reservations.
type Calendar struct {
	entries []AdvanceReservation
	machine int
}

// NewCalendar validates and stores the reservations for a machine of the
// given size: positive widths, positive intervals, and no instant where
// the summed reservations exceed the machine.
func NewCalendar(machineNodes int, entries []AdvanceReservation) (*Calendar, error) {
	if machineNodes <= 0 {
		return nil, fmt.Errorf("sched: calendar needs a machine")
	}
	c := &Calendar{machine: machineNodes}
	for _, e := range entries {
		if e.Nodes <= 0 || e.Nodes > machineNodes {
			return nil, fmt.Errorf("sched: reservation %q wants %d of %d nodes",
				e.Name, e.Nodes, machineNodes)
		}
		if e.End <= e.Start || e.Start < 0 {
			return nil, fmt.Errorf("sched: reservation %q has empty interval [%d,%d)",
				e.Name, e.Start, e.End)
		}
		c.entries = append(c.entries, e)
	}
	sort.Slice(c.entries, func(i, j int) bool { return c.entries[i].Start < c.entries[j].Start })
	// Overcommit check via a throwaway profile.
	p := profile.New(machineNodes, 0)
	for _, e := range c.entries {
		if p.MinFree(e.Start, e.End) < e.Nodes {
			return nil, fmt.Errorf("sched: reservations overcommit the machine during %q", e.Name)
		}
		p.Reserve(e.Nodes, e.Start, e.End)
	}
	return c, nil
}

// Entries returns the reservations, ascending by start.
func (c *Calendar) Entries() []AdvanceReservation { return c.entries }

// ReservedStarter enforces a reservation calendar around any start
// policy: a job is admissible only if running it from now (for its full
// estimate) cannot intrude on any reserved interval, given the estimated
// completions of the running jobs. The inner policy chooses among the
// admissible jobs.
type ReservedStarter struct {
	inner Starter
	cal   *Calendar
	// scratch is the reusable running+calendar profile (rebuilt per Pick;
	// Reset recycles the step storage). Owned by one simulation goroutine.
	// factory selects its backend (default: the O(log S) tree kernel).
	scratch profile.Kernel
	factory ProfileFactory
	// stats counts the scratch profile's kernel ops (telemetry; may be nil).
	stats *profile.Stats
}

// NewReservedStarter wraps a start policy with the calendar.
func NewReservedStarter(inner Starter, cal *Calendar) *ReservedStarter {
	return &ReservedStarter{inner: inner, cal: cal}
}

// Name implements Starter.
func (s *ReservedStarter) Name() string {
	return s.inner.Name() + "+reservations"
}

// Instrument implements Instrumented: the hooks reach the inner policy,
// and the wrapper's own scratch profile joins the op counting.
func (s *ReservedStarter) Instrument(h telemetry.Hooks) {
	if in, ok := s.inner.(Instrumented); ok {
		in.Instrument(h)
	}
	s.stats = h.ProfileStats
	if s.scratch != nil {
		s.scratch.SetStats(s.stats)
	}
}

// SetProfileFactory implements ProfileBacked for the wrapper's own
// scratch profile and forwards the swap to the inner policy.
func (s *ReservedStarter) SetProfileFactory(f ProfileFactory) {
	s.factory, s.scratch = f, nil
	if pb, ok := s.inner.(ProfileBacked); ok {
		pb.SetProfileFactory(f)
	}
}

// LastStartDecision implements sim.DecisionExplainer by delegating to the
// inner policy (the wrapper only pre-filters the queue; the inner policy
// makes — and classifies — the start decision).
func (s *ReservedStarter) LastStartDecision(j *job.Job) (telemetry.Decision, bool) {
	if d, ok := s.inner.(sim.DecisionExplainer); ok {
		return d.LastStartDecision(j)
	}
	return telemetry.Decision{}, false
}

// Pick implements Starter. The wrapper prunes exactly the jobs whose
// start *now* would intrude on a reserved window (given the estimated
// completions of the running jobs) and delegates everything else to the
// inner policy unchanged — with an empty calendar it is fully
// transparent, so strict-list semantics survive the wrapping.
func (s *ReservedStarter) Pick(ordered []*job.Job, now int64, free int, running []sim.Running, m int) *job.Job {
	if len(ordered) == 0 || free <= 0 {
		return nil
	}
	if len(s.cal.entries) == 0 {
		return s.inner.Pick(ordered, now, free, running, m)
	}
	// Availability profile: running jobs by their estimates plus all
	// future reservation windows.
	s.scratch = ensureScratch(s.scratch, s.factory, s.stats, m, now)
	p := s.scratch
	for _, r := range running {
		end := r.EstEnd
		if end <= now {
			end = now + 1
		}
		p.Reserve(r.Job.Nodes, now, end)
	}
	feasible := true
	for _, e := range s.cal.entries {
		if e.End <= now {
			continue
		}
		start := e.Start
		if start < now {
			start = now
		}
		if p.MinFree(start, e.End) < e.Nodes {
			// Running jobs already intrude (their estimates overlap a
			// reservation admitted before it was known — cannot happen
			// with construction-time calendars, but stay safe).
			feasible = false
			break
		}
		p.Reserve(e.Nodes, start, e.End)
	}
	if !feasible {
		return nil
	}
	admissible := ordered[:0:0]
	for _, j := range ordered {
		if s.violatesCalendar(p, j, now) {
			continue
		}
		admissible = append(admissible, j)
	}
	if len(admissible) == 0 {
		return nil
	}
	return s.inner.Pick(admissible, now, free, running, m)
}

// violatesCalendar reports whether starting j now would intrude on a
// reserved window: for every calendar entry overlapping [now, now+est),
// the profile (running + calendar) must keep j.Nodes spare capacity
// throughout the overlap. Jobs that merely do not fit the free nodes are
// NOT filtered — that decision belongs to the inner policy.
func (s *ReservedStarter) violatesCalendar(p profile.Kernel, j *job.Job, now int64) bool {
	jobEnd := now + j.Estimate
	if jobEnd < now { // overflow
		jobEnd = profile.Infinity
	}
	for _, e := range s.cal.entries {
		if e.End <= now || e.Start >= jobEnd {
			continue
		}
		lo := e.Start
		if lo < now {
			lo = now
		}
		hi := e.End
		if hi > jobEnd {
			hi = jobEnd
		}
		if hi <= lo {
			continue
		}
		if p.MinFree(lo, hi) < j.Nodes {
			return true
		}
	}
	return false
}
