package sched

import (
	"fmt"

	"jobsched/internal/job"
	"jobsched/internal/objective"
	"jobsched/internal/sim"
	"jobsched/internal/telemetry"
)

// Switching combines two scheduling algorithms by time of day — the
// final step of the paper's evaluation example, which the administrator
// leaves open ("in addition she must evaluate the effect of combining
// the selected algorithms"): one algorithm serves the prime-time
// response-time objective (Example 5 rule 5), the other the off-hours
// load objective (rule 6).
//
// Both regimes' order policies observe every queue event so that a
// regime change never loses state; at each scheduling decision the
// active regime's order and start policy decide. The regime is chosen by
// a Window (prime time → day regime).
type Switching struct {
	window     objective.Window
	dayOrder   Orderer
	nightOrder Orderer
	dayStart   Starter
	nightStart Starter
	machine    int
	// queueLen tracks membership centrally (both orderers agree).
	queueLen int
}

var _ sim.Scheduler = (*Switching)(nil)

// NewSwitching composes the day and night algorithms. The paper's
// administrator would pass her picks: day = SMART or PSRS with
// backfilling (best unweighted), night = Garey&Graham (best weighted).
func NewSwitching(window objective.Window, dayOrder OrderName, dayStart StartName,
	nightOrder OrderName, nightStart StartName, cfg Config) (*Switching, error) {
	cfg = cfg.withDefaults()
	if cfg.MachineNodes <= 0 {
		return nil, fmt.Errorf("sched: switching needs MachineNodes > 0")
	}
	day, err := New(dayOrder, dayStart, cfg)
	if err != nil {
		return nil, err
	}
	// The night objective is the weighted one; its SMART/PSRS weights
	// should be area weights regardless of the day configuration.
	nightCfg := cfg
	nightCfg.Weight = job.AreaWeight
	night, err := New(nightOrder, nightStart, nightCfg)
	if err != nil {
		return nil, err
	}
	return &Switching{
		window:     window,
		dayOrder:   day.order,
		nightOrder: night.order,
		dayStart:   day.start,
		nightStart: night.start,
		machine:    cfg.MachineNodes,
	}, nil
}

// Name implements sim.Scheduler.
func (s *Switching) Name() string {
	return fmt.Sprintf("Switching(%s/%s ; %s/%s)",
		s.dayOrder.Name(), s.dayStart.Name(), s.nightOrder.Name(), s.nightStart.Name())
}

// Submit implements sim.Scheduler.
func (s *Switching) Submit(j *job.Job, now int64) {
	s.dayOrder.Push(j, now)
	s.nightOrder.Push(j, now)
	s.queueLen++
}

// JobStarted implements sim.Scheduler.
func (s *Switching) JobStarted(j *job.Job, now int64) {
	s.dayOrder.Remove(j, now)
	s.nightOrder.Remove(j, now)
	s.queueLen--
}

// JobFinished implements sim.Scheduler.
func (s *Switching) JobFinished(j *job.Job, now int64) {}

// Startable implements sim.Scheduler: the active regime decides.
func (s *Switching) Startable(now int64, free int, running []sim.Running) []*job.Job {
	if s.queueLen == 0 || free <= 0 {
		return nil
	}
	var (
		ord Orderer
		st  Starter
	)
	if s.window.Contains(now) {
		ord, st = s.dayOrder, s.dayStart
	} else {
		ord, st = s.nightOrder, s.nightStart
	}
	j := st.Pick(ord.Ordered(now), now, free, running, s.machine)
	if j == nil {
		return nil
	}
	return []*job.Job{j}
}

// QueueLen implements sim.Scheduler.
func (s *Switching) QueueLen() int { return s.queueLen }

// LastStartDecision implements sim.DecisionExplainer: the regime whose
// start policy picked the job answers (starters match on the exact job
// pointer of their most recent pick, so only one regime responds).
func (s *Switching) LastStartDecision(j *job.Job) (telemetry.Decision, bool) {
	if d, ok := s.dayStart.(sim.DecisionExplainer); ok {
		if dec, found := d.LastStartDecision(j); found {
			return dec, true
		}
	}
	if d, ok := s.nightStart.(sim.DecisionExplainer); ok {
		if dec, found := d.LastStartDecision(j); found {
			return dec, true
		}
	}
	return telemetry.Decision{}, false
}
