package sched

import "jobsched/internal/job"

// replanner is the shared on-line adaptation machinery of SMART and PSRS
// (paper Section 5.4): the off-line algorithm only computes an *order* of
// the currently waiting jobs; newly submitted jobs are appended in
// submission order until a recomputation triggers. "In order to reduce
// the number of recomputations ... the schedule is recalculated when the
// ratio between the already scheduled jobs in the wait queue to all the
// jobs in this queue exceeds a certain value" — interpreted as: replan
// once the started fraction of the last plan exceeds RecomputeRatio, or
// once unplanned arrivals exceed 1-RecomputeRatio of the queue.
type replanner struct {
	ratio float64
	// plan is the current priority order; its prefix tail after removals.
	plan []*job.Job
	// unplanned holds arrivals since the last computation, submission order.
	unplanned []*job.Job
	// planSize is the plan length at computation time; startedFromPlan
	// counts removals from the plan since.
	planSize        int
	startedFromPlan int
	// compute produces a fresh plan over all waiting jobs.
	compute func(jobs []*job.Job) []*job.Job
	// recomputations counts plan recomputations (diagnostics/ablation).
	recomputations int
	// combined caches plan+unplanned between queue mutations: Ordered is
	// called once per scheduling decision and must not reallocate a
	// queue-sized slice each time under deep backlogs.
	combined []*job.Job
	dirty    bool
}

func newReplanner(ratio float64, compute func([]*job.Job) []*job.Job) *replanner {
	if ratio <= 0 || ratio > 1 {
		panic("sched: recompute ratio must be in (0,1]")
	}
	return &replanner{ratio: ratio, compute: compute}
}

func (r *replanner) push(j *job.Job) {
	r.unplanned = append(r.unplanned, j)
	r.dirty = true
}

func (r *replanner) remove(j *job.Job) {
	r.dirty = true
	for i, q := range r.plan {
		if q == j {
			r.plan = append(r.plan[:i], r.plan[i+1:]...)
			r.startedFromPlan++
			return
		}
	}
	for i, q := range r.unplanned {
		if q == j {
			r.unplanned = append(r.unplanned[:i], r.unplanned[i+1:]...)
			return
		}
	}
}

func (r *replanner) len() int { return len(r.plan) + len(r.unplanned) }

func (r *replanner) stale() bool {
	n := r.len()
	if n == 0 {
		return false
	}
	if len(r.plan) == 0 {
		return true
	}
	if float64(r.startedFromPlan) > r.ratio*float64(r.planSize) {
		return true
	}
	return float64(len(r.unplanned)) > (1-r.ratio)*float64(n)
}

// ordered returns the current priority order, replanning if stale. The
// returned slice is owned by the replanner and valid until the next
// queue mutation; callers must not retain or modify it.
func (r *replanner) ordered() []*job.Job {
	if r.stale() {
		all := make([]*job.Job, 0, r.len())
		all = append(all, r.plan...)
		all = append(all, r.unplanned...)
		r.plan = r.compute(all)
		if len(r.plan) != len(all) {
			panic("sched: replan changed the job set")
		}
		r.unplanned = r.unplanned[:0]
		r.planSize = len(r.plan)
		r.startedFromPlan = 0
		r.recomputations++
		r.dirty = true
	}
	if len(r.unplanned) == 0 {
		return r.plan
	}
	if r.dirty {
		r.combined = r.combined[:0]
		r.combined = append(r.combined, r.plan...)
		r.combined = append(r.combined, r.unplanned...)
		r.dirty = false
	}
	return r.combined
}
