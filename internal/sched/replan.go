package sched

import (
	"jobsched/internal/job"
	"jobsched/internal/queue"
)

// replanner is the shared on-line adaptation machinery of SMART and PSRS
// (paper Section 5.4): the off-line algorithm only computes an *order* of
// the currently waiting jobs; newly submitted jobs are appended in
// submission order until a recomputation triggers. "In order to reduce
// the number of recomputations ... the schedule is recalculated when the
// ratio between the already scheduled jobs in the wait queue to all the
// jobs in this queue exceeds a certain value" — interpreted as: replan
// once the started fraction of the last plan exceeds RecomputeRatio, or
// once unplanned arrivals exceed 1-RecomputeRatio of the queue.
type replanner struct {
	ratio float64
	// plan is the current priority order; its tail after planHead. Jobs
	// almost always leave from the front (the plan head has top priority),
	// so head removal is O(1) with the dead prefix compacted only when it
	// dominates — the same deque discipline as FCFSOrder.
	plan     []*job.Job
	planHead int
	// unplanned holds arrivals since the last computation, submission order.
	unplanned []*job.Job
	// planSize is the plan length at computation time; startedFromPlan
	// counts removals from the plan since.
	planSize        int
	startedFromPlan int
	// compute produces a fresh plan over all waiting jobs.
	compute func(jobs []*job.Job) []*job.Job
	// recomputations counts plan recomputations (diagnostics/ablation).
	recomputations int
	// combined caches plan+unplanned between queue mutations: Ordered is
	// called once per scheduling decision and must not reallocate a
	// queue-sized slice each time under deep backlogs.
	combined []*job.Job
	dirty    bool
	// ix mirrors plan tail + unplanned as an indexed queue, rebuilt once
	// per plan epoch; indexed gates its maintenance (the slice path is
	// the differential oracle and must not pay or depend on the index).
	ix      *queue.Index
	indexed bool
}

func newReplanner(ratio float64, compute func([]*job.Job) []*job.Job) *replanner {
	if ratio <= 0 || ratio > 1 {
		panic("sched: recompute ratio must be in (0,1]")
	}
	return &replanner{ratio: ratio, compute: compute, ix: queue.NewIndex(), indexed: true}
}

func (r *replanner) push(j *job.Job) {
	r.unplanned = append(r.unplanned, j)
	r.dirty = true
	if r.indexed {
		r.ix.Push(j)
	}
}

func (r *replanner) remove(j *job.Job) {
	r.dirty = true
	if r.indexed {
		r.ix.Remove(j)
	}
	if r.planHead < len(r.plan) && r.plan[r.planHead] == j {
		r.plan[r.planHead] = nil // release for GC; the slot is dead
		r.planHead++
		r.startedFromPlan++
		if r.planHead == len(r.plan) {
			r.plan, r.planHead = r.plan[:0], 0
		} else if r.planHead > 64 && r.planHead > len(r.plan)/2 {
			n := copy(r.plan, r.plan[r.planHead:])
			clearTail := r.plan[n:]
			for i := range clearTail {
				clearTail[i] = nil
			}
			r.plan, r.planHead = r.plan[:n], 0
		}
		return
	}
	for i := r.planHead; i < len(r.plan); i++ {
		if r.plan[i] == j {
			copy(r.plan[i:], r.plan[i+1:])
			r.plan[len(r.plan)-1] = nil
			r.plan = r.plan[:len(r.plan)-1]
			r.startedFromPlan++
			return
		}
	}
	for i, q := range r.unplanned {
		if q == j {
			r.unplanned = append(r.unplanned[:i], r.unplanned[i+1:]...)
			return
		}
	}
}

// planLen returns the live plan-tail length.
func (r *replanner) planLen() int { return len(r.plan) - r.planHead }

func (r *replanner) len() int { return r.planLen() + len(r.unplanned) }

func (r *replanner) stale() bool {
	n := r.len()
	if n == 0 {
		return false
	}
	if r.planLen() == 0 {
		return true
	}
	if float64(r.startedFromPlan) > r.ratio*float64(r.planSize) {
		return true
	}
	return float64(len(r.unplanned)) > (1-r.ratio)*float64(n)
}

// ensureFresh replans if stale, starting a new plan epoch: plan order,
// trigger counters and the queue index are all rebuilt.
func (r *replanner) ensureFresh() {
	if !r.stale() {
		return
	}
	all := make([]*job.Job, 0, r.len())
	all = append(all, r.plan[r.planHead:]...)
	all = append(all, r.unplanned...)
	r.plan = r.compute(all)
	if len(r.plan) != len(all) {
		panic("sched: replan changed the job set")
	}
	r.planHead = 0
	r.unplanned = r.unplanned[:0]
	r.planSize = len(r.plan)
	r.startedFromPlan = 0
	r.recomputations++
	r.dirty = true
	if r.indexed {
		r.ix.Rebuild(r.plan)
	}
}

// ordered returns the current priority order, replanning if stale. The
// returned slice is owned by the replanner and valid until the next
// queue mutation; callers must not retain or modify it.
func (r *replanner) ordered() []*job.Job {
	r.ensureFresh()
	if len(r.unplanned) == 0 {
		return r.plan[r.planHead:]
	}
	if r.dirty {
		r.combined = r.combined[:0]
		r.combined = append(r.combined, r.plan[r.planHead:]...)
		r.combined = append(r.combined, r.unplanned...)
		r.dirty = false
	}
	return r.combined
}

// index returns the indexed view of the current priority order,
// replanning if stale — the O(log Q) counterpart of ordered.
func (r *replanner) index() *queue.Index {
	r.ensureFresh()
	return r.ix
}

// setIndexed toggles index maintenance. Turning it on resynchronizes the
// index from the current order (turning it off leaves a stale index that
// must not be consulted — Composite gates on the same switch).
func (r *replanner) setIndexed(on bool) {
	if on && !r.indexed {
		r.ix.Rebuild(r.plan[r.planHead:], r.unplanned)
	}
	r.indexed = on
}

// batchWindow returns how many consecutive picks of the current order are
// provably replan-free: the sequential protocol re-checks staleness
// before every pick, so a batch of w picks is exact iff no removal prefix
// of length i < w triggers stale(). Removals within an epoch never
// reorder the remaining jobs (plan and unplanned both keep relative
// order), so the only instability is the replan itself — bounding the
// batch to this window makes PickMany over the epoch snapshot exactly
// equal to the pick-one protocol, with the engine's next Startable call
// re-entering ordered()/index() at the same queue state the sequential
// run would have re-checked.
//
// The worst case over which picks actually happen is all-from-plan: it
// maximally advances startedFromPlan and planLen decay together, and the
// unplanned trigger's denominator shrinks identically for any removal.
// okAfter is monotone nonincreasing in i, so a binary search against the
// exact float comparisons of stale() finds the window in O(log Q).
func (r *replanner) batchWindow() int {
	n := r.len()
	if n == 0 {
		return 0
	}
	okAfter := func(i int) bool {
		if r.planLen()-i <= 0 {
			return false
		}
		if float64(r.startedFromPlan+i) > r.ratio*float64(r.planSize) {
			return false
		}
		return float64(len(r.unplanned)) <= (1-r.ratio)*float64(n-i)
	}
	// The last stale check a full drain performs is after n-1 removals
	// (the n-th pick needs no order left behind it), and okAfter is only
	// monotone while the plan tail is nonempty — cap the search there.
	lo, hi := 0, n-1
	if p := r.planLen() - 1; hi > p {
		hi = p
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if okAfter(mid) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	// lo = max removals that provably keep the epoch; the first pick is
	// always from the current order, so the window is one more.
	return lo + 1
}
