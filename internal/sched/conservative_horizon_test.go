package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"jobsched/internal/job"
	"jobsched/internal/profile"
	"jobsched/internal/sim"
)

// naiveConservativePick is the unoptimized reference walk: full
// reservations, no horizon clipping. The production ConservativeStarter
// must make exactly the same decision on every input.
func naiveConservativePick(ordered []*job.Job, now int64, free int, running []sim.Running, machineNodes int) *job.Job {
	if len(ordered) == 0 || free <= 0 {
		return nil
	}
	fits := false
	for _, j := range ordered {
		if j.Nodes <= free {
			fits = true
			break
		}
	}
	if !fits {
		return nil
	}
	p := profile.New(machineNodes, now)
	for _, r := range running {
		end := r.EstEnd
		if end <= now {
			end = now + 1
		}
		p.Reserve(r.Job.Nodes, now, end)
	}
	for _, j := range ordered {
		t := p.EarliestFit(j.Nodes, j.Estimate, now)
		if t == now {
			return j
		}
		end := t + j.Estimate
		if end < t {
			end = profile.Infinity
		}
		p.Reserve(j.Nodes, t, end)
	}
	return nil
}

// TestConservativeExactMatchesNaive pins the default (exact) starter to
// the reference walk: identical picks on every input.
func TestConservativeExactMatchesNaive(t *testing.T) {
	s := NewConservativeStarter(0)
	if err := quickCheckPicks(s, 500); err != nil {
		t.Fatal(err)
	}
}

// TestConservativeFastAgreesOnTypicalStates checks that the
// horizon-accelerated variant makes the same decisions as the exact walk
// on a broad deterministic sample of machine states. Fast mode is a
// documented approximation — corner cases with fit windows crossing the
// horizon may differ — so this test uses a fixed random source rather
// than claiming universal equality.
func TestConservativeFastAgreesOnTypicalStates(t *testing.T) {
	s := NewFastConservativeStarter(0)
	if err := quickCheckPicks(s, 500); err != nil {
		t.Fatal(err)
	}
}

func quickCheckPicks(s *ConservativeStarter, samples int) error {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const nodes = 32
		// Random running set.
		var running []sim.Running
		used := 0
		now := int64(1000 + r.Intn(1000))
		for used < nodes-1 && r.Intn(3) > 0 {
			w := 1 + r.Intn(nodes-used)
			est := int64(1 + r.Intn(500))
			start := now - int64(r.Intn(int(est)))
			running = append(running, sim.Running{
				Job:   &job.Job{ID: job.ID(10000 + len(running)), Nodes: w, Estimate: est},
				Start: start, EstEnd: start + est,
			})
			used += w
		}
		free := nodes - used
		// Random queue with wildly mixed estimates (stresses the horizon).
		q := make([]*job.Job, 1+r.Intn(40))
		for i := range q {
			est := int64(1 + r.Intn(2000))
			if r.Intn(4) == 0 {
				est = int64(1 + r.Intn(10)) // very short
			}
			q[i] = &job.Job{ID: job.ID(i), Nodes: 1 + r.Intn(nodes), Estimate: est, Runtime: est}
		}
		got := s.Pick(q, now, free, running, nodes)
		want := naiveConservativePick(q, now, free, running, nodes)
		return got == want
	}
	return quick.Check(f, &quick.Config{
		MaxCount: samples,
		Rand:     rand.New(rand.NewSource(5)), // deterministic sample
	})
}

// TestConservativeFastEndToEnd compares complete schedules produced with
// the fast and the exact starter over deterministic random workloads.
// Individual placements may differ (fast mode is an approximation), but
// the schedule quality must stay within a few percent — the property the
// paper-scale runs rely on.
func TestConservativeFastEndToEnd(t *testing.T) {
	for _, seed := range []int64{77, 78, 79} {
		r := rand.New(rand.NewSource(seed))
		const nodes = 16
		jobs := randomJobs(r, 400, nodes)

		avgResponse := func(st Starter) float64 {
			alg := Compose(NewFCFSOrder("FCFS"), st, nodes)
			res, err := sim.RunChecked(sim.Machine{Nodes: nodes}, job.CloneAll(jobs), alg,
				sim.Options{Validate: true})
			if err != nil {
				t.Fatal(err)
			}
			var sum float64
			for _, a := range res.Schedule.Allocs {
				sum += float64(a.End - a.Job.Submit)
			}
			return sum / float64(len(res.Schedule.Allocs))
		}
		fast := avgResponse(NewFastConservativeStarter(0))
		exact := avgResponse(NewConservativeStarter(0))
		rel := (fast - exact) / exact
		if rel < 0 {
			rel = -rel
		}
		if rel > 0.05 {
			t.Errorf("seed %d: fast avg response %.0f deviates %.1f%% from exact %.0f",
				seed, fast, rel*100, exact)
		}
	}
}

// pickFunc adapts a function to the Starter interface.
type pickFunc struct {
	fn   func([]*job.Job, int64, int, []sim.Running, int) *job.Job
	name string
}

func (p *pickFunc) Name() string { return p.name }
func (p *pickFunc) Pick(ordered []*job.Job, now int64, free int, running []sim.Running, m int) *job.Job {
	return p.fn(ordered, now, free, running, m)
}
