// Package sched implements the scheduling algorithms of the paper's
// Section 5 as compositions of an order policy and a start policy.
//
// The paper evaluates a grid: {FCFS, PSRS, SMART-FFIA, SMART-NFIW,
// Garey&Graham} × {plain list scheduling, conservative backfilling, EASY
// backfilling}. The order policy maintains the waiting queue in start
// priority order (SMART and PSRS are off-line algorithms adapted on-line:
// they only *reorder* the queue and are recomputed lazily); the start
// policy decides which waiting job, if any, starts at the current instant.
package sched

import (
	"fmt"

	"jobsched/internal/job"
	"jobsched/internal/profile"
	"jobsched/internal/queue"
	"jobsched/internal/sim"
	"jobsched/internal/telemetry"
)

// Orderer maintains the waiting queue in start-priority order.
type Orderer interface {
	// Name identifies the order policy.
	Name() string
	// Push adds a newly submitted job.
	Push(j *job.Job, now int64)
	// Remove takes a started job out of the queue.
	Remove(j *job.Job, now int64)
	// Ordered returns the waiting jobs in priority order. The slice is
	// owned by the caller of a single Startable round and must not be
	// retained.
	Ordered(now int64) []*job.Job
	// Len returns the number of waiting jobs.
	Len() int
}

// Starter decides which job to start next, given the priority order.
// It returns at most one job per call; the engine calls again with updated
// state until nil is returned, which keeps reservation-based policies
// trivially consistent.
type Starter interface {
	// Name identifies the start policy.
	Name() string
	// Pick returns the next job to start now, or nil. machineNodes is the
	// total machine size; free the currently unassigned nodes; running the
	// executing jobs with their *estimated* completions.
	Pick(ordered []*job.Job, now int64, free int, running []sim.Running, machineNodes int) *job.Job
}

// BatchStarter is implemented by start policies that can compute a whole
// scheduling pass at once: PickMany returns, in start order, exactly the
// jobs the engine's Pick-until-nil loop would have started at `now` —
// same jobs, same order, same decisions — while sharing the expensive
// per-pass state (the reservation profile rebuild) across the batch.
// Composite uses it only when the order policy is order-stable under
// removal (StableOrderer), because the equivalence argument assumes the
// remaining queue keeps its relative order as started jobs leave it.
type BatchStarter interface {
	Starter
	// PickMany returns the maximal set of jobs startable now, in the
	// order Pick would have returned them. The returned slice is only
	// valid until the next Pick/PickMany call.
	PickMany(ordered []*job.Job, now int64, free int, running []sim.Running, machineNodes int) []*job.Job
}

// StableOrderer marks order policies whose Ordered sequence is invariant
// under Remove: taking a started job out never reorders the remaining
// jobs (FCFS, Garey&Graham). SMART and PSRS are not stable — removals
// advance their replan trigger, which can rebuild the plan mid-pass —
// but they are epoch-stable (EpochOrderer), which admits bounded batches.
type StableOrderer interface {
	// StableUnderRemoval is a marker; implementations do nothing.
	StableUnderRemoval()
}

// EpochOrderer is implemented by order policies whose order is
// removal-stable *within a plan epoch*: removals never reorder the
// remaining jobs, but a replan — triggered by the removal counters —
// rebuilds the whole order (SMART, PSRS). BatchWindow returns how many
// consecutive picks of the current order are provably replan-free, so a
// batched pass truncated to the window is exactly equivalent to the
// sequential pick-one protocol: the engine's follow-up Startable call
// re-enters the order policy at the same queue state at which the
// sequential run would have re-checked the replan trigger.
type EpochOrderer interface {
	Orderer
	// BatchWindow returns the maximal safe batch size for the current
	// epoch (≥ 1 when the queue is nonempty). Call after Ordered or
	// OrderedIter — i.e. against a fresh plan.
	BatchWindow() int
}

// IndexedOrderer is implemented by order policies that maintain their
// priority order as a queue.Index, replacing the O(Q) Ordered slice
// materialization per pass with O(log Q) cursor iteration and
// width-pruned scans. Ordered stays available as the compatibility
// adapter and differential oracle.
type IndexedOrderer interface {
	Orderer
	// OrderedIter returns the indexed view of the current priority order
	// (replanning first, exactly where Ordered would). The index is owned
	// by the order policy; callers must restore any pass-local hiding
	// before returning control.
	OrderedIter(now int64) *queue.Index
	// SetIndexed toggles index maintenance; turning it on resynchronizes
	// the index from the slice order. Composite.SetIndexedQueue drives it.
	SetIndexed(on bool)
}

// IndexedStarter is implemented by start policies that can compute a
// batched pass against an indexed queue view (the O(log Q) counterpart
// of BatchStarter.PickMany — same jobs, same order, same decisions).
type IndexedStarter interface {
	Starter
	// PickManyIndexed returns the jobs startable now, in the order Pick
	// would have returned them, bounded by limit when limit > 0 (the
	// epoch batch window; 0 = unlimited). Implementations must leave the
	// index exactly as found (hidden entries restored). The returned
	// slice is only valid until the next Pick/PickMany call.
	PickManyIndexed(ix *queue.Index, now int64, free int, running []sim.Running, machineNodes, limit int) []*job.Job
}

// ProfileFactory constructs a scratch availability profile. The default
// (nil) builds the O(log S) tree kernel; tests and benches inject
// profile.New (the array kernel) or profile.NewReference (the
// brute-force oracle) to pin backend-independence of whole schedules.
type ProfileFactory func(nodes int, from int64) profile.Kernel

// makeScratch applies the factory default.
func makeScratch(f ProfileFactory, nodes int, from int64) profile.Kernel {
	if f == nil {
		return profile.NewTree(nodes, from)
	}
	return f(nodes, from)
}

// ProfileBacked is implemented by start policies that hold scratch
// availability profiles and accept a backend swap. Swapping drops the
// current scratch state (it is rebuilt per pass anyway).
type ProfileBacked interface {
	SetProfileFactory(f ProfileFactory)
}

// Composite combines an Orderer and a Starter into a sim.Scheduler.
type Composite struct {
	order   Orderer
	start   Starter
	machine int
	// decider is the start policy's sim.DecisionExplainer view, resolved
	// once at composition (nil when the policy cannot classify starts).
	decider sim.DecisionExplainer
	// batch is the start policy's BatchStarter view; set when the order
	// policy is StableOrderer (unbounded batches) or EpochOrderer
	// (batches truncated to the epoch window), the preconditions for a
	// batched pass being equivalent to the Pick-until-nil loop.
	batch BatchStarter
	// stable records the StableOrderer marker; epoch the EpochOrderer
	// view (nil for stable orders). Exactly one is set when batching.
	stable bool
	epoch  EpochOrderer
	// ixOrder/ixStart are the indexed-protocol views, set when both sides
	// support it and batching is sound; indexed (default true) gates the
	// indexed path at run time (SetIndexedQueue).
	ixOrder IndexedOrderer
	ixStart IndexedStarter
	indexed bool
	// sequentialPasses forces the one-job-per-Startable path even when a
	// batched pass is available (differential tests and A/B benches).
	sequentialPasses bool
	// interrupt is the cooperative cancellation hook (Interruptible),
	// polled between and inside batched passes; nil = never interrupt.
	interrupt func() bool
	// passDone is the predicted post-start state of the last fruitful
	// batched pass: when the engine's follow-up Startable call matches it
	// exactly, the pass was complete and the confirmation walk is skipped
	// (see Startable).
	passDone passMemo
}

// passMemo is the state signature a completed batched pass predicts for
// the engine's confirmation call.
type passMemo struct {
	valid      bool
	now        int64
	free       int
	queueLen   int
	runningLen int
}

var _ sim.Scheduler = (*Composite)(nil)
var _ sim.DecisionExplainer = (*Composite)(nil)

// Compose builds a scheduler from an order and a start policy for a
// machine of the given size.
func Compose(order Orderer, start Starter, machineNodes int) *Composite {
	if machineNodes <= 0 {
		panic("sched: machine must have at least one node")
	}
	c := &Composite{order: order, start: start, machine: machineNodes, indexed: true}
	c.decider, _ = start.(sim.DecisionExplainer)
	_, c.stable = order.(StableOrderer)
	if !c.stable {
		c.epoch, _ = order.(EpochOrderer)
	}
	if c.stable || c.epoch != nil {
		c.batch, _ = start.(BatchStarter)
		if io, ok := order.(IndexedOrderer); ok {
			if is, ok := start.(IndexedStarter); ok {
				c.ixOrder, c.ixStart = io, is
			}
		}
	}
	return c
}

// SetIndexedQueue enables (default) or disables the indexed-queue
// protocol: OrderedIter/PickManyIndexed with O(log Q) iteration and
// width-pruned scans. Off, the order policy stops maintaining its index
// and passes run the slice protocol — the differential oracle and the
// pre-index baseline for A/B benches. Both sides start identical jobs in
// identical order.
func (c *Composite) SetIndexedQueue(on bool) {
	c.indexed = on
	if io, ok := c.order.(IndexedOrderer); ok {
		io.SetIndexed(on)
	}
}

// SetSequentialPasses forces (true) or re-enables (false) the
// one-job-per-Startable protocol. Batched and sequential passes start
// identical jobs in identical order; the switch exists so equivalence
// tests and benches can run both sides.
func (c *Composite) SetSequentialPasses(on bool) { c.sequentialPasses = on }

// SetProfileFactory swaps the start policy's scratch-profile backend
// (no-op for policies without one). sched.New calls it with
// Config.ProfileFactory; hand-composed schedulers may call it directly.
func (c *Composite) SetProfileFactory(f ProfileFactory) {
	if pb, ok := c.start.(ProfileBacked); ok {
		pb.SetProfileFactory(f)
	}
}

// Name returns "<order>/<starter>", e.g. "FCFS/EASY-Backfilling".
func (c *Composite) Name() string {
	return c.order.Name() + "/" + c.start.Name()
}

// Submit implements sim.Scheduler.
func (c *Composite) Submit(j *job.Job, now int64) { c.order.Push(j, now) }

// JobStarted implements sim.Scheduler.
func (c *Composite) JobStarted(j *job.Job, now int64) { c.order.Remove(j, now) }

// JobFinished implements sim.Scheduler. Order policies in this package do
// not react to completions (reservation state is rebuilt by the starters).
func (c *Composite) JobFinished(j *job.Job, now int64) {}

// Startable implements sim.Scheduler. With a batch-capable start policy
// over a removal-stable order, one call computes the whole pass; the
// engine's follow-up call (after starting the batch) finds nothing new
// and terminates the pass. Epoch-stable orders (SMART/PSRS) batch too,
// truncated to the replan-free window. Otherwise one job per call, as
// before. The indexed protocol (default) runs the same passes against
// the order policy's queue.Index instead of the materialized slice.
func (c *Composite) Startable(now int64, free int, running []sim.Running) []*job.Job {
	if c.order.Len() == 0 || free <= 0 {
		return nil
	}
	if c.batch == nil || c.sequentialPasses {
		j := c.start.Pick(c.order.Ordered(now), now, free, running, c.machine)
		if j == nil {
			return nil
		}
		return []*job.Job{j}
	}

	if c.ixOrder != nil && c.indexed {
		ix := c.ixOrder.OrderedIter(now)
		// A batched pass is complete: PickMany returns every job startable
		// at `now` (the property the batch equivalence tests pin), so the
		// engine's follow-up Startable call — its loop-termination check —
		// would walk the whole queue only to find nothing. If the state is
		// exactly the one the last fruitful pass predicted (same instant,
		// picked jobs moved from queue to running, their nodes debited),
		// answer it without the walk. Any other intervening change (a
		// same-instant outage, resubmit, or kill) breaks the signature and
		// forces the full pass. An epoch order's follow-up OrderedIter is
		// itself the replan-trigger check and has already run at exactly
		// the sequential protocol's point — the memo (set only when the
		// pass ended below the epoch window, so its removals provably left
		// the trigger cold) skips just the fruitless walk behind it.
		if m := &c.passDone; m.valid {
			m.valid = false
			if now == m.now && free == m.free &&
				ix.Len() == m.queueLen && len(running) == m.runningLen {
				return nil
			}
		}
		limit := 0
		if c.epoch != nil {
			limit = c.epoch.BatchWindow()
		}
		picked := c.ixStart.PickManyIndexed(ix, now, free, running, c.machine, limit)
		// An interrupted pass may have been abandoned mid-walk: its picks
		// are a prefix of the full pass, so the completion memo must not
		// claim the follow-up call needs no walk.
		if len(picked) > 0 && (c.stable || len(picked) < limit) && !stopNow(c.interrupt) {
			c.passDone = c.memoAfter(now, free, ix.Len(), len(running), picked)
		}
		return picked
	}

	ordered := c.order.Ordered(now)
	if m := &c.passDone; m.valid {
		m.valid = false
		if now == m.now && free == m.free &&
			len(ordered) == m.queueLen && len(running) == m.runningLen {
			return nil
		}
	}
	picked := c.batch.PickMany(ordered, now, free, running, c.machine)
	complete := c.stable
	if c.epoch != nil {
		// Truncate to the epoch's replan-free window; the engine's next
		// pass resumes at the queue state the sequential protocol would
		// have re-checked the replan trigger at. A pass ending below the
		// window was not truncated — it is the full pick-until-nil output,
		// and its removals provably leave the replan trigger cold, so the
		// follow-up call may answer from the memo.
		w := c.epoch.BatchWindow()
		if len(picked) > w {
			picked = picked[:w]
		} else if len(picked) < w {
			complete = true
		}
	}
	if complete && len(picked) > 0 && !stopNow(c.interrupt) {
		c.passDone = c.memoAfter(now, free, len(ordered), len(running), picked)
	}
	return picked
}

// memoAfter predicts the post-start state signature of a fruitful pass.
func (c *Composite) memoAfter(now int64, free, queueLen, runningLen int, picked []*job.Job) passMemo {
	width := 0
	for _, j := range picked {
		width += j.Nodes
	}
	return passMemo{valid: true, now: now, free: free - width,
		queueLen: queueLen - len(picked), runningLen: runningLen + len(picked)}
}

// QueueLen implements sim.Scheduler.
func (c *Composite) QueueLen() int { return c.order.Len() }

// LastStartDecision implements sim.DecisionExplainer by delegating to the
// start policy.
func (c *Composite) LastStartDecision(j *job.Job) (telemetry.Decision, bool) {
	if c.decider == nil {
		return telemetry.Decision{}, false
	}
	return c.decider.LastStartDecision(j)
}

// Instrument attaches telemetry hooks to the start and order policies
// (no-op for policies that are not Instrumented — order policies accept
// the queue-index op counter). sched.New calls it with Config.Hooks;
// hand-composed schedulers may call it directly.
func (c *Composite) Instrument(h telemetry.Hooks) {
	if in, ok := c.start.(Instrumented); ok {
		in.Instrument(h)
	}
	if in, ok := c.order.(Instrumented); ok {
		in.Instrument(h)
	}
}

// Announce hands announced maintenance windows to the start policy (no-op
// when the policy is not FailureAware — plain list scheduling and
// Garey&Graham have no projection to adjust; the engine still enforces
// the capacity loss either way). sched.New calls it with Config.Announced;
// hand-composed schedulers may call it directly.
func (c *Composite) Announce(windows []sim.Failure) {
	if fa, ok := c.start.(FailureAware); ok {
		fa.Announce(windows)
	}
}

// WrapStarter returns a new Composite whose start policy is wrap(old
// start policy) — used to layer cross-cutting admission rules (advance
// reservations, policy windows) over any grid algorithm.
func WrapStarter(c *Composite, wrap func(Starter) Starter) *Composite {
	return Compose(c.order, wrap(c.start), c.machine)
}

// OrderName selects an order policy.
type OrderName string

// Order policy names as they appear in the paper's tables.
const (
	OrderFCFS      OrderName = "FCFS"
	OrderPSRS      OrderName = "PSRS"
	OrderSMARTFFIA OrderName = "SMART-FFIA"
	OrderSMARTNFIW OrderName = "SMART-NFIW"
	OrderGG        OrderName = "Garey&Graham"
)

// StartName selects a start policy.
type StartName string

// Start policy names as they appear in the paper's tables.
const (
	StartList         StartName = "List"
	StartConservative StartName = "Backfilling"
	StartEASY         StartName = "EASY-Backfilling"
)

// Config parameterizes algorithm construction.
type Config struct {
	// MachineNodes is the size of the batch partition.
	MachineNodes int
	// Weight is the scheduling weight used by SMART and PSRS. Defaults to
	// job.UnitWeight (the unweighted objective); use job.AreaWeight for
	// the weighted objective.
	Weight job.WeightFunc
	// SmartGamma is SMART's geometric bin factor (paper: 2).
	SmartGamma float64
	// RecomputeRatio triggers SMART/PSRS replanning once this fraction of
	// the last plan has started (paper: 2/3).
	RecomputeRatio float64
	// MaxBackfillDepth bounds how many queued jobs the conservative
	// starter walks per pass (0 = unlimited, the paper's semantics).
	// Production installations bound this for tractability; an ablation
	// bench measures the effect.
	MaxBackfillDepth int
	// FastConservative selects the horizon-accelerated conservative
	// walk (near-linear passes, negligibly different decisions in
	// horizon-crossing corner cases) — used for paper-scale saturated
	// runs. See ConservativeStarter.
	FastConservative bool
	// Hooks attaches the telemetry layer (decision-trace recorder and
	// availability-profile op counters) to the start policy. The zero
	// value disables telemetry at the cost of one branch per decision
	// point.
	Hooks telemetry.Hooks
	// Announced lists maintenance windows known to the scheduler in
	// advance (faults.Plan.Announced): failure-aware start policies
	// (conservative and EASY backfilling) reserve around them instead of
	// starting jobs the drain would abort. Empty keeps every policy's
	// historical behavior bit-for-bit.
	Announced []sim.Failure
	// ProfileFactory selects the scratch availability-profile backend for
	// profile-backed start policies. Nil uses the O(log S) tree kernel;
	// differential tests inject the array kernel or the brute-force
	// reference to pin that whole schedules are backend-independent.
	ProfileFactory ProfileFactory
}

func (c Config) withDefaults() Config {
	if c.Weight == nil {
		c.Weight = job.UnitWeight
	}
	if c.SmartGamma == 0 {
		c.SmartGamma = 2
	}
	if c.RecomputeRatio == 0 {
		c.RecomputeRatio = 2.0 / 3.0
	}
	return c
}

// New builds one cell of the paper's algorithm grid. Garey&Graham ignores
// the start policy argument (backfilling "will be of no benefit for this
// method"): it always uses its own free-for-all start policy.
func New(order OrderName, start StartName, cfg Config) (*Composite, error) {
	cfg = cfg.withDefaults()
	if cfg.MachineNodes <= 0 {
		return nil, fmt.Errorf("sched: config needs MachineNodes > 0")
	}

	if order == OrderGG {
		c := Compose(NewFCFSOrder(string(OrderGG)), NewGareyGrahamStarter(), cfg.MachineNodes)
		c.Instrument(cfg.Hooks)
		if len(cfg.Announced) > 0 {
			c.Announce(cfg.Announced)
		}
		if cfg.ProfileFactory != nil {
			c.SetProfileFactory(cfg.ProfileFactory)
		}
		return c, nil
	}

	var ord Orderer
	switch order {
	case OrderFCFS:
		ord = NewFCFSOrder(string(OrderFCFS))
	case OrderPSRS:
		ord = NewPSRSOrder(cfg)
	case OrderSMARTFFIA:
		ord = NewSMARTOrder(FFIA, cfg)
	case OrderSMARTNFIW:
		ord = NewSMARTOrder(NFIW, cfg)
	default:
		return nil, fmt.Errorf("sched: unknown order policy %q", order)
	}

	var st Starter
	switch start {
	case StartList:
		st = NewListStarter()
	case StartConservative:
		if cfg.FastConservative {
			st = NewFastConservativeStarter(cfg.MaxBackfillDepth)
		} else {
			st = NewConservativeStarter(cfg.MaxBackfillDepth)
		}
	case StartEASY:
		st = NewEASYStarter()
	default:
		return nil, fmt.Errorf("sched: unknown start policy %q", start)
	}
	c := Compose(ord, st, cfg.MachineNodes)
	c.Instrument(cfg.Hooks)
	if len(cfg.Announced) > 0 {
		c.Announce(cfg.Announced)
	}
	if cfg.ProfileFactory != nil {
		c.SetProfileFactory(cfg.ProfileFactory)
	}
	return c, nil
}

// GridOrders returns the order policies of the paper's tables, in row order.
func GridOrders() []OrderName {
	return []OrderName{OrderFCFS, OrderPSRS, OrderSMARTFFIA, OrderSMARTNFIW, OrderGG}
}

// GridStarts returns the start policies of the paper's tables, in column order.
func GridStarts() []StartName {
	return []StartName{StartList, StartConservative, StartEASY}
}
