package sched

import (
	"math/rand"
	"reflect"
	"testing"

	"jobsched/internal/job"
	"jobsched/internal/sim"
)

// The drain-awareness tests: failure-aware starters must reserve around
// announced maintenance windows so that jobs route around the drain
// instead of starting, getting aborted, and burning a resubmit.

// fullDrain is a machine-wide maintenance window [50, 100) on 4 nodes.
var fullDrain = []sim.Failure{{At: 50, Nodes: 4, Duration: 50}}

func drainJob(id int, submit, runtime, estimate int64, nodes int) *job.Job {
	return &job.Job{ID: job.ID(id), Submit: submit, Runtime: runtime,
		Estimate: estimate, Nodes: nodes}
}

// TestConservativeRoutesAroundDrain: a 4-node job whose estimate crosses
// the announced drain must wait until the repair instead of starting at
// t=0 and being aborted mid-flight.
func TestConservativeRoutesAroundDrain(t *testing.T) {
	const nodes = 4
	jobs := []*job.Job{drainJob(1, 0, 80, 80, 4)}

	for _, fast := range []bool{false, true} {
		alg, err := New(OrderFCFS, StartConservative, Config{
			MachineNodes:     nodes,
			FastConservative: fast,
			Announced:        fullDrain,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.RunChecked(sim.Machine{Nodes: nodes}, job.CloneAll(jobs), alg,
			sim.Options{Failures: fullDrain})
		if err != nil {
			t.Fatalf("fast=%v: %v", fast, err)
		}
		if res.AbortedAttempts != 0 {
			t.Errorf("fast=%v: %d aborts, want 0 (drain was announced)",
				fast, res.AbortedAttempts)
		}
		if got := res.Schedule.Allocs[0].Start; got != 100 {
			t.Errorf("fast=%v: job started at %d, want 100 (after the drain)", fast, got)
		}
	}

	// The unaware baseline shows why: without the announcement the same
	// job starts at 0 and the drain aborts it.
	alg, err := New(OrderFCFS, StartConservative, Config{MachineNodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunChecked(sim.Machine{Nodes: nodes}, job.CloneAll(jobs), alg,
		sim.Options{Failures: fullDrain})
	if err != nil {
		t.Fatal(err)
	}
	if res.AbortedAttempts == 0 {
		t.Error("unaware conservative run saw no abort; test scenario is not exercising the drain")
	}
}

// TestEASYRoutesAroundDrain: the head is blocked until the repair at 100,
// and a short narrow job backfills at t=0 because it completes before the
// drain begins.
func TestEASYRoutesAroundDrain(t *testing.T) {
	const nodes = 4
	jobs := []*job.Job{
		drainJob(1, 0, 80, 80, 4), // head: cannot fit before the drain
		drainJob(2, 0, 40, 40, 2), // backfills: done by t=40 < 50
	}
	alg, err := New(OrderFCFS, StartEASY, Config{
		MachineNodes: nodes,
		Announced:    fullDrain,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunChecked(sim.Machine{Nodes: nodes}, job.CloneAll(jobs), alg,
		sim.Options{Failures: fullDrain})
	if err != nil {
		t.Fatal(err)
	}
	if res.AbortedAttempts != 0 {
		t.Errorf("%d aborts, want 0 (drain was announced)", res.AbortedAttempts)
	}
	starts := map[job.ID]int64{}
	for _, a := range res.Schedule.Allocs {
		starts[a.Job.ID] = a.Start
	}
	if starts[1] != 100 {
		t.Errorf("head started at %d, want 100 (after the drain)", starts[1])
	}
	if starts[2] != 0 {
		t.Errorf("backfill job started at %d, want 0 (fits before the drain)", starts[2])
	}
}

// TestEASYDrainRefusesCrossingBackfill: a candidate that would still be
// running when the drain begins must not backfill even though free nodes
// and the shadow time would both allow it in a fault-free profile.
func TestEASYDrainRefusesCrossingBackfill(t *testing.T) {
	const nodes = 4
	jobs := []*job.Job{
		drainJob(1, 0, 80, 80, 4), // head blocked until 100
		drainJob(2, 0, 60, 60, 2), // would cross the drain: 0+60 > 50
	}
	alg, err := New(OrderFCFS, StartEASY, Config{
		MachineNodes: nodes,
		Announced:    fullDrain,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunChecked(sim.Machine{Nodes: nodes}, job.CloneAll(jobs), alg,
		sim.Options{Failures: fullDrain})
	if err != nil {
		t.Fatal(err)
	}
	if res.AbortedAttempts != 0 {
		t.Errorf("%d aborts, want 0", res.AbortedAttempts)
	}
	for _, a := range res.Schedule.Allocs {
		if a.Job.ID == 2 && a.Start < 100 {
			t.Errorf("crossing candidate started at %d; must wait for the repair", a.Start)
		}
	}
}

// TestAnnounceEmptyKeepsDecisionsIdentical: announcing nothing (or only
// windows already in the past) must leave every start decision exactly as
// in an unannounced run — the legacy code paths stay engaged.
func TestAnnounceEmptyKeepsDecisionsIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	const nodes = 16
	jobs := randomJobs(r, 200, nodes)
	for _, s := range []StartName{StartConservative, StartEASY} {
		base, err := New(OrderFCFS, s, Config{MachineNodes: nodes})
		if err != nil {
			t.Fatal(err)
		}
		announced, err := New(OrderFCFS, s, Config{MachineNodes: nodes})
		if err != nil {
			t.Fatal(err)
		}
		announced.Announce(nil)
		announced.Announce([]sim.Failure{}) // still empty

		bres, err := sim.RunChecked(sim.Machine{Nodes: nodes}, job.CloneAll(jobs), base, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ares, err := sim.RunChecked(sim.Machine{Nodes: nodes}, job.CloneAll(jobs), announced, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(bres.Schedule.Allocs, ares.Schedule.Allocs) {
			t.Errorf("%s: empty Announce changed the schedule", s)
		}
	}
}

// TestAnnounceNonAwareStarterIsNoop: List scheduling and Garey&Graham do
// not implement FailureAware; Announce must be a harmless no-op and the
// engine still enforces the drain by aborting.
func TestAnnounceNonAwareStarterIsNoop(t *testing.T) {
	const nodes = 4
	jobs := []*job.Job{drainJob(1, 0, 80, 80, 4)}
	for _, o := range []OrderName{OrderFCFS, OrderGG} {
		alg, err := New(o, StartList, Config{MachineNodes: nodes, Announced: fullDrain})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.RunChecked(sim.Machine{Nodes: nodes}, job.CloneAll(jobs), alg,
			sim.Options{Failures: fullDrain})
		if err != nil {
			t.Fatal(err)
		}
		if res.AbortedAttempts == 0 {
			t.Errorf("%s/List: expected the unannounced drain to abort the greedy start", o)
		}
		if len(res.Schedule.Allocs) == 0 ||
			res.Schedule.Allocs[len(res.Schedule.Allocs)-1].End == 0 {
			t.Errorf("%s/List: job never completed after resubmit", o)
		}
	}
}
