package sched

import (
	"errors"
	"math/rand"
	"testing"

	"jobsched/internal/job"
	"jobsched/internal/profile"
	"jobsched/internal/sim"
	"jobsched/internal/telemetry"
)

// deepBacklog builds the pathological pass the interrupt hook exists
// for: a 100-node machine with 99 nodes held until t=10000, a queue
// head too wide to start now, and n narrow jobs whose estimates are too
// long for the pre-drain window — so a conservative pass walks all n
// jobs, paying an EarliestFit + Reserve each, and starts none of them.
func deepBacklog(n int) (queue []*job.Job, running []sim.Running) {
	holder := &job.Job{ID: 0, Nodes: 99, Submit: 0, Estimate: 10000, Runtime: 10000}
	running = []sim.Running{{Job: holder, Start: 0, EstEnd: 10000}}
	queue = append(queue, &job.Job{ID: 1, Nodes: 100, Submit: 1, Estimate: 1000, Runtime: 1000})
	for i := 0; i < n; i++ {
		queue = append(queue, &job.Job{ID: job.ID(2 + i), Nodes: 1, Submit: 1, Estimate: 20000, Runtime: 100})
	}
	return queue, running
}

// TestBatchedPassPollsInterrupt pins the satellite fix: a raised
// interrupt hook bounds the work of a single batched conservative pass.
// Before the fix the pass walked the whole queue (one EarliestFit and
// one Reserve per job, ~2n profile ops) regardless of the hook; with
// the in-pass polls the op count stays below a small constant.
func TestBatchedPassPollsInterrupt(t *testing.T) {
	const n = 20000
	queue, running := deepBacklog(n)

	for _, indexed := range []bool{true, false} {
		var stats profile.Stats
		c := Compose(NewFCFSOrder(string(OrderFCFS)), NewConservativeStarter(0), 100)
		c.SetIndexedQueue(indexed)
		c.Instrument(telemetry.Hooks{ProfileStats: &stats})
		for _, j := range queue {
			c.Submit(j, 1)
		}

		// Sanity: the uninterrupted pass really is a full-queue walk (the
		// scenario would otherwise not exercise the fix).
		picked := c.Startable(1, 1, running)
		if len(picked) != 0 {
			t.Fatalf("indexed=%v: expected a fruitless pass, started %d jobs", indexed, len(picked))
		}
		if stats.Total() < int64(n) {
			t.Fatalf("indexed=%v: uninterrupted pass did only %d profile ops, want >= %d (scenario too easy)",
				indexed, stats.Total(), n)
		}

		stats = profile.Stats{}
		c.SetInterrupt(func() bool { return true })
		picked = c.Startable(1, 1, running)
		if len(picked) != 0 {
			t.Fatalf("indexed=%v: interrupted pass started %d jobs", indexed, len(picked))
		}
		if got := stats.Total(); got > 8*interruptStride {
			t.Errorf("indexed=%v: interrupted pass did %d profile ops, want <= %d — the pass ignored the hook",
				indexed, got, 8*interruptStride)
		}
	}
}

// TestRunInterruptBoundsPassWork pins the engine half: sim.Run threads
// Options.Interrupt into the scheduler's pass loops, so a hook raised
// mid-pass aborts the run after a bounded amount of profile work
// instead of finishing an unbounded walk first.
func TestRunInterruptBoundsPassWork(t *testing.T) {
	const n = 20000
	queue, _ := deepBacklog(n)
	holder := &job.Job{ID: 1000000, Nodes: 99, Submit: 0, Estimate: 10000, Runtime: 10000}
	jobs := append([]*job.Job{holder}, queue...)

	var stats profile.Stats
	c := Compose(NewFCFSOrder(string(OrderFCFS)), NewConservativeStarter(0), 100)
	c.Instrument(telemetry.Hooks{ProfileStats: &stats})

	// The hook fires once the deep queue exists — i.e. inside the t=1
	// scheduling pass, after the engine's top-of-batch poll already ran.
	interrupted := func() bool { return c.QueueLen() > n }
	_, err := sim.Run(sim.Machine{Nodes: 100}, jobs, c, sim.Options{Interrupt: interrupted})
	if !errors.Is(err, sim.ErrInterrupted) {
		t.Fatalf("Run returned %v, want ErrInterrupted", err)
	}
	if got := stats.Total(); got > 8*interruptStride {
		t.Errorf("interrupted run did %d profile ops, want <= %d — the pass ran unbounded", got, 8*interruptStride)
	}
}

// TestInterruptNeverRaisedIsByteIdentical guards the zero-cost contract:
// installing a hook that never fires must not change any decision.
func TestInterruptNeverRaisedIsByteIdentical(t *testing.T) {
	jobs := randomJobs(rand.New(rand.NewSource(99991)), 400, 64)
	for _, order := range GridOrders() {
		for _, start := range GridStarts() {
			base, err := New(order, start, Config{MachineNodes: 64})
			if err != nil {
				t.Fatal(err)
			}
			hooked, err := New(order, start, Config{MachineNodes: 64})
			if err != nil {
				t.Fatal(err)
			}
			hooked.SetInterrupt(func() bool { return false })

			r1, err := sim.Run(sim.Machine{Nodes: 64}, job.CloneAll(jobs), base, sim.Options{})
			if err != nil {
				t.Fatal(err)
			}
			r2, err := sim.Run(sim.Machine{Nodes: 64}, job.CloneAll(jobs), hooked, sim.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if len(r1.Schedule.Allocs) != len(r2.Schedule.Allocs) {
				t.Fatalf("%s/%s: alloc count diverged with a cold hook", order, start)
			}
			for i := range r1.Schedule.Allocs {
				a, b := r1.Schedule.Allocs[i], r2.Schedule.Allocs[i]
				if a.Job.ID != b.Job.ID || a.Start != b.Start || a.End != b.End {
					t.Fatalf("%s/%s: alloc %d diverged with a cold hook: %+v vs %+v",
						order, start, i, a, b)
				}
			}
		}
	}
}

// TestWithdrawRemovesPendingJob covers the service-layer entry point:
// a withdrawn job never starts, and the memo invalidation keeps the
// next pass honest (it must re-walk, not answer from the stale memo).
func TestWithdrawRemovesPendingJob(t *testing.T) {
	c := Compose(NewFCFSOrder(string(OrderFCFS)), NewEASYStarter(), 10)
	a := &job.Job{ID: 1, Nodes: 10, Submit: 0, Estimate: 100, Runtime: 100}
	b := &job.Job{ID: 2, Nodes: 4, Submit: 0, Estimate: 50, Runtime: 50}
	c.Submit(a, 0)
	c.Submit(b, 0)

	picked := c.Startable(0, 10, nil)
	if len(picked) != 1 || picked[0] != a {
		t.Fatalf("expected head start, got %v", picked)
	}
	c.JobStarted(a, 0)

	// Withdraw b before it can start; the queue must drain to empty.
	c.Withdraw(b, 0)
	if c.QueueLen() != 0 {
		t.Fatalf("queue length %d after withdraw, want 0", c.QueueLen())
	}
	if picked := c.Startable(0, 0, []sim.Running{{Job: a, Start: 0, EstEnd: 100}}); len(picked) != 0 {
		t.Fatalf("withdrawn job started: %v", picked)
	}
}
