package sched

import (
	"math/rand"
	"strings"
	"testing"

	"jobsched/internal/job"
	"jobsched/internal/objective"
	"jobsched/internal/sim"
)

func newSwitching(t *testing.T, nodes int) *Switching {
	t.Helper()
	s, err := NewSwitching(objective.PrimeTime,
		OrderSMARTFFIA, StartEASY, // day: best unweighted pick
		OrderGG, StartList, // night: best weighted pick
		Config{MachineNodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSwitchingName(t *testing.T) {
	s := newSwitching(t, 16)
	if !strings.Contains(s.Name(), "SMART-FFIA") || !strings.Contains(s.Name(), "Garey&Graham") {
		t.Errorf("Name = %q", s.Name())
	}
}

func TestSwitchingRejectsBadConfig(t *testing.T) {
	if _, err := NewSwitching(objective.PrimeTime, OrderFCFS, StartList,
		OrderGG, StartList, Config{}); err == nil {
		t.Error("zero machine accepted")
	}
	if _, err := NewSwitching(objective.PrimeTime, "bogus", StartList,
		OrderGG, StartList, Config{MachineNodes: 4}); err == nil {
		t.Error("bogus day order accepted")
	}
	if _, err := NewSwitching(objective.PrimeTime, OrderFCFS, StartList,
		"bogus", StartList, Config{MachineNodes: 4}); err == nil {
		t.Error("bogus night order accepted")
	}
}

func TestSwitchingCompletesAllJobs(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	const nodes = 16
	jobs := make([]*job.Job, 400)
	var at int64
	for i := range jobs {
		at += int64(r.Intn(600)) // spans several day/night transitions
		est := int64(1 + r.Intn(7200))
		jobs[i] = &job.Job{ID: job.ID(i), Submit: at, Nodes: 1 + r.Intn(nodes),
			Estimate: est, Runtime: 1 + r.Int63n(est)}
	}
	s := newSwitching(t, nodes)
	res, err := sim.RunChecked(sim.Machine{Nodes: nodes}, job.CloneAll(jobs), s,
		sim.Options{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Schedule.Allocs) != len(jobs) {
		t.Fatalf("%d of %d jobs completed", len(res.Schedule.Allocs), len(jobs))
	}
}

func TestSwitchingUsesDayRegimeDuringPrimeTime(t *testing.T) {
	// During prime time the day regime (EASY over SMART order) decides:
	// a blocked head must not prevent a backfill. At night the G&G
	// regime decides: any fitting job starts.
	s := newSwitching(t, 4)
	head := j(0, 4, 10)
	small := j(1, 1, 5)
	s.Submit(head, 8*3600)
	s.Submit(small, 8*3600)
	running := []sim.Running{
		{Job: j(99, 3, 1000), Start: 8 * 3600, EstEnd: 8*3600 + 1000},
	}
	// Monday 8am: prime time; EASY may backfill the small job (head
	// shadow at 8am+1000, small ends by then).
	got := s.Startable(8*3600, 1, running)
	if len(got) != 1 || got[0] != small {
		t.Fatalf("day regime pick = %v, want the small job", got)
	}
}

func TestSwitchingNightRegime(t *testing.T) {
	s := newSwitching(t, 4)
	head := j(0, 4, 10)
	small := j(1, 1, 100000) // huge estimate: EASY would refuse (spare 0)
	s.Submit(head, 2*3600)
	s.Submit(small, 2*3600)
	running := []sim.Running{
		{Job: j(99, 3, 1000), Start: 2 * 3600, EstEnd: 2*3600 + 1000},
	}
	// Monday 2am: night regime is G&G — starts anything that fits,
	// regardless of estimates.
	got := s.Startable(2*3600, 1, running)
	if len(got) != 1 || got[0] != small {
		t.Fatalf("night regime pick = %v, want the long thin job", got)
	}
}

func TestSwitchingQueueAccounting(t *testing.T) {
	s := newSwitching(t, 8)
	a, b := j(0, 1, 10), j(1, 2, 10)
	s.Submit(a, 0)
	s.Submit(b, 0)
	if s.QueueLen() != 2 {
		t.Fatalf("QueueLen = %d", s.QueueLen())
	}
	s.JobStarted(a, 0)
	if s.QueueLen() != 1 {
		t.Fatalf("QueueLen after start = %d", s.QueueLen())
	}
	if got := s.Startable(0, 0, nil); got != nil {
		t.Error("Startable with zero free nodes")
	}
}

// TestSwitchingImprovesBothObjectives runs the combination experiment
// the paper leaves open: the switching scheduler should track the day
// algorithm on the daytime objective and the night algorithm on the
// night objective, beating each pure algorithm on the objective it was
// not designed for.
func TestSwitchingImprovesBothObjectives(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	const nodes = 32
	jobs := make([]*job.Job, 1500)
	var at int64
	for i := range jobs {
		at += int64(r.Intn(300))
		est := int64(60 + r.Intn(14400))
		jobs[i] = &job.Job{ID: job.ID(i), Submit: at, Nodes: 1 + r.Intn(nodes),
			Estimate: est, Runtime: 1 + r.Int63n(est)}
	}
	dayMetric := objective.WindowedAvgResponseTime{W: objective.PrimeTime}

	runScheduler := func(s sim.Scheduler) float64 {
		res, err := sim.RunChecked(sim.Machine{Nodes: nodes}, job.CloneAll(jobs), s,
			sim.Options{Validate: true})
		if err != nil {
			t.Fatal(err)
		}
		return dayMetric.Eval(res.Schedule)
	}

	sw := newSwitching(t, nodes)
	swDay := runScheduler(sw)

	nightOnly, err := New(OrderGG, StartList, Config{MachineNodes: nodes, Weight: job.AreaWeight})
	if err != nil {
		t.Fatal(err)
	}
	ggDay := runScheduler(nightOnly)

	// The switching scheduler must not be dramatically worse than pure
	// G&G on the day objective (it uses the day-tuned algorithm there).
	if swDay > ggDay*1.5 {
		t.Errorf("switching day response %.0f ≫ pure G&G %.0f", swDay, ggDay)
	}
	t.Logf("day response: switching %.0f, pure-G&G %.0f", swDay, ggDay)
}
