package sched

import "jobsched/internal/job"

// FCFSOrder keeps waiting jobs in submission order (Section 5.1). It is
// fair — a job's completion is independent of later submissions — and
// needs no execution-time knowledge.
type FCFSOrder struct {
	name  string
	queue []*job.Job
}

// NewFCFSOrder returns a submission-order queue with the given display
// name (Garey&Graham reuses it under its own name).
func NewFCFSOrder(name string) *FCFSOrder {
	return &FCFSOrder{name: name}
}

// Name implements Orderer.
func (o *FCFSOrder) Name() string { return o.name }

// Push implements Orderer. The engine delivers submissions in time order,
// so appending preserves FCFS order.
func (o *FCFSOrder) Push(j *job.Job, now int64) {
	o.queue = append(o.queue, j)
}

// Remove implements Orderer.
func (o *FCFSOrder) Remove(j *job.Job, now int64) {
	for i, q := range o.queue {
		if q == j {
			o.queue = append(o.queue[:i], o.queue[i+1:]...)
			return
		}
	}
}

// Ordered implements Orderer.
func (o *FCFSOrder) Ordered(now int64) []*job.Job { return o.queue }

// Len implements Orderer.
func (o *FCFSOrder) Len() int { return len(o.queue) }
