package sched

import (
	"jobsched/internal/job"
	"jobsched/internal/queue"
	"jobsched/internal/telemetry"
)

// FCFSOrder keeps waiting jobs in submission order (Section 5.1). It is
// fair — a job's completion is independent of later submissions — and
// needs no execution-time knowledge.
//
// The queue is a slice with a head index: jobs almost always leave from
// the front (FCFS starts the head, backfilling starts a small prefix),
// so head removal is O(1) and the backing array is compacted only when
// the dead prefix dominates. With 100k+ queued jobs this turns a pass's
// removals from quadratic memmove traffic into constant work.
//
// Alongside the slice it maintains a queue.Index over the same order
// (IndexedOrderer): submission order never changes under removal, so the
// index is never rebuilt — Push appends and Remove tombstones, both
// O(log Q) — and the batched passes iterate it with width pruning
// instead of scanning the slice.
type FCFSOrder struct {
	name  string
	queue []*job.Job
	head  int
	// ix mirrors queue[head:]; indexed gates its maintenance (the slice
	// path is the differential oracle and must not pay for the index).
	ix      *queue.Index
	indexed bool
}

// NewFCFSOrder returns a submission-order queue with the given display
// name (Garey&Graham reuses it under its own name).
func NewFCFSOrder(name string) *FCFSOrder {
	return &FCFSOrder{name: name, ix: queue.NewIndex(), indexed: true}
}

// Name implements Orderer.
func (o *FCFSOrder) Name() string { return o.name }

// StableUnderRemoval marks FCFS order as removal-stable: taking any job
// out never changes the relative order of the rest.
func (o *FCFSOrder) StableUnderRemoval() {}

// Push implements Orderer. The engine delivers submissions in time order,
// so appending preserves FCFS order.
func (o *FCFSOrder) Push(j *job.Job, now int64) {
	o.queue = append(o.queue, j)
	if o.indexed {
		o.ix.Push(j)
	}
}

// Remove implements Orderer.
func (o *FCFSOrder) Remove(j *job.Job, now int64) {
	if o.indexed {
		o.ix.Remove(j)
	}
	if o.head < len(o.queue) && o.queue[o.head] == j {
		o.queue[o.head] = nil // release for GC; the slot is dead
		o.head++
		if o.head == len(o.queue) {
			o.queue, o.head = o.queue[:0], 0
		} else if o.head > 64 && o.head > len(o.queue)/2 {
			n := copy(o.queue, o.queue[o.head:])
			clearTail := o.queue[n:]
			for i := range clearTail {
				clearTail[i] = nil
			}
			o.queue, o.head = o.queue[:n], 0
		}
		return
	}
	for i := o.head; i < len(o.queue); i++ {
		if o.queue[i] == j {
			copy(o.queue[i:], o.queue[i+1:])
			o.queue[len(o.queue)-1] = nil
			o.queue = o.queue[:len(o.queue)-1]
			return
		}
	}
}

// Ordered implements Orderer.
func (o *FCFSOrder) Ordered(now int64) []*job.Job { return o.queue[o.head:] }

// Len implements Orderer.
func (o *FCFSOrder) Len() int { return len(o.queue) - o.head }

// OrderedIter implements IndexedOrderer.
func (o *FCFSOrder) OrderedIter(now int64) *queue.Index { return o.ix }

// SetIndexed implements IndexedOrderer. Turning the index on
// resynchronizes it from the slice.
func (o *FCFSOrder) SetIndexed(on bool) {
	if on && !o.indexed {
		o.ix.Rebuild(o.queue[o.head:])
	}
	o.indexed = on
}

// Instrument implements Instrumented: attaches the queue-index operation
// counter.
func (o *FCFSOrder) Instrument(h telemetry.Hooks) { o.ix.SetStats(h.QueueStats) }
