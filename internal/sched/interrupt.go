package sched

import "jobsched/internal/job"

// Interruptible is implemented by policies that accept a cooperative
// cancellation hook and poll it inside their batched scheduling passes.
// The engine's per-event Interrupt poll bounds the latency *between*
// passes; on a deep backlog a single pass (one reservation walk over a
// 100k-job queue) can itself run for a long time, so the hook is
// threaded into the walk loops too. The hook must be cheap and safe for
// concurrent use with whatever sets it (typically a context check or an
// atomic flag).
type Interruptible interface {
	// SetInterrupt installs the hook (nil = never interrupt). A pass that
	// observes the hook true abandons its remaining work and returns the
	// picks made so far; the caller is expected to discard the run.
	SetInterrupt(f func() bool)
}

// interruptStride bounds the work between cancellation polls in tight
// scan loops: cheap O(1) iterations poll every interruptStride-th step,
// so the hook costs nothing on the hot path while the response latency
// stays bounded by a few hundred queue entries. Loops whose every
// iteration already pays profile queries poll more often via stopNow.
const interruptStride = 64

// stopNow polls an interrupt hook (nil = never interrupt).
func stopNow(f func() bool) bool { return f != nil && f() }

// stopAt is the strided poll for scan loops: i is the loop counter.
// Polling at i == 0 makes even short walks observe a raised hook, which
// the promptness tests rely on.
func stopAt(f func() bool, i int) bool {
	return f != nil && i%interruptStride == 0 && f()
}

var _ Interruptible = (*Composite)(nil)

// SetInterrupt implements Interruptible: the hook is polled between and
// inside batched passes. The sim engine installs Options.Interrupt here
// automatically (structurally, to avoid an import cycle); long-running
// services install a per-request context check.
func (c *Composite) SetInterrupt(f func() bool) {
	c.interrupt = f
	if ii, ok := c.start.(Interruptible); ok {
		ii.SetInterrupt(f)
	}
	if ii, ok := c.order.(Interruptible); ok {
		ii.SetInterrupt(f)
	}
}

// Withdraw removes a still-waiting job from the queue without starting
// it — deadline expiry or client cancellation in the service layer. The
// pass memo is dropped: the queue changed outside the started-jobs
// accounting the memo predicts, so the next pass must walk for real.
func (c *Composite) Withdraw(j *job.Job, now int64) {
	c.order.Remove(j, now)
	c.passDone.valid = false
}
