package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"jobsched/internal/job"
	"jobsched/internal/sim"
)

func TestNewBuildsEveryGridCell(t *testing.T) {
	cfg := Config{MachineNodes: 16}
	for _, o := range GridOrders() {
		for _, s := range GridStarts() {
			alg, err := New(o, s, cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", o, s, err)
			}
			if alg.Name() == "" {
				t.Errorf("%s/%s: empty name", o, s)
			}
		}
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(OrderFCFS, StartList, Config{}); err == nil {
		t.Error("zero machine accepted")
	}
	if _, err := New("nope", StartList, Config{MachineNodes: 4}); err == nil {
		t.Error("unknown order accepted")
	}
	if _, err := New(OrderFCFS, "nope", Config{MachineNodes: 4}); err == nil {
		t.Error("unknown starter accepted")
	}
}

func TestGareyGrahamIgnoresStartPolicy(t *testing.T) {
	cfg := Config{MachineNodes: 16}
	for _, s := range GridStarts() {
		alg, err := New(OrderGG, s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if alg.Name() != "Garey&Graham/List" {
			t.Errorf("G&G with %s named %q", s, alg.Name())
		}
	}
}

func TestCompositeName(t *testing.T) {
	alg, err := New(OrderFCFS, StartEASY, Config{MachineNodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if alg.Name() != "FCFS/EASY-Backfilling" {
		t.Errorf("Name = %q", alg.Name())
	}
}

// randomJobs builds a reproducible random workload for integration tests.
func randomJobs(r *rand.Rand, n, maxNodes int) []*job.Job {
	jobs := make([]*job.Job, n)
	var at int64
	for i := range jobs {
		at += int64(r.Intn(30))
		est := int64(1 + r.Intn(500))
		runtime := 1 + r.Int63n(est)
		jobs[i] = &job.Job{
			ID:       job.ID(i),
			Submit:   at,
			Nodes:    1 + r.Intn(maxNodes),
			Estimate: est,
			Runtime:  runtime,
		}
	}
	return jobs
}

// TestGridCellsCompleteAllJobs runs every algorithm over random
// workloads and checks the fundamental invariants: all jobs complete,
// the schedule is valid, no job starts before submission.
func TestGridCellsCompleteAllJobs(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	const nodes = 16
	jobs := randomJobs(r, 300, nodes)
	for _, o := range GridOrders() {
		for _, s := range GridStarts() {
			alg, err := New(o, s, Config{MachineNodes: nodes})
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.RunChecked(sim.Machine{Nodes: nodes}, job.CloneAll(jobs), alg,
				sim.Options{Validate: true})
			if err != nil {
				t.Fatalf("%s/%s: %v", o, s, err)
			}
			if len(res.Schedule.Allocs) != len(jobs) {
				t.Fatalf("%s/%s: %d jobs scheduled, want %d",
					o, s, len(res.Schedule.Allocs), len(jobs))
			}
		}
	}
}

// TestGridCellsPropertyRandomWorkloads is the heavier property-based
// variant: many random seeds, smaller workloads, all algorithms.
func TestGridCellsPropertyRandomWorkloads(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const nodes = 8
		jobs := randomJobs(r, 60, nodes)
		for _, o := range GridOrders() {
			for _, s := range GridStarts() {
				alg, err := New(o, s, Config{MachineNodes: nodes})
				if err != nil {
					return false
				}
				res, err := sim.RunChecked(sim.Machine{Nodes: nodes}, job.CloneAll(jobs), alg,
					sim.Options{Validate: true})
				if err != nil || len(res.Schedule.Allocs) != len(jobs) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestFCFSFairness verifies the paper's fairness property of FCFS: "the
// completion time of each job is independent of any job submitted later".
func TestFCFSFairness(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	const nodes = 8
	base := randomJobs(r, 100, nodes)

	runFCFS := func(jobs []*job.Job) map[job.ID]int64 {
		alg, err := New(OrderFCFS, StartList, Config{MachineNodes: nodes})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.RunChecked(sim.Machine{Nodes: nodes}, job.CloneAll(jobs), alg,
			sim.Options{Validate: true})
		if err != nil {
			t.Fatal(err)
		}
		out := map[job.ID]int64{}
		for _, a := range res.Schedule.Allocs {
			out[a.Job.ID] = a.End
		}
		return out
	}

	full := runFCFS(base)
	// Drop the last 30 jobs (latest submitters) and re-run: the first 70
	// completions must be identical.
	sorted := job.SortBySubmit(job.CloneAll(base))
	prefix := sorted[:70]
	partial := runFCFS(prefix)
	for _, p := range prefix {
		if full[p.ID] != partial[p.ID] {
			t.Fatalf("job %d completion changed (%d → %d) when later jobs were removed",
				p.ID, partial[p.ID], full[p.ID])
		}
	}
}

// TestGareyGrahamNeverIdlesWhenWorkFits: the defining property of G&G —
// whenever a node count sufficient for some waiting job is free, a job
// is started. We verify a weaker schedule-level consequence: at every
// allocation start time, no waiting job that fits remained unstarted
// (checked indirectly by comparing with a reference greedy packing is
// complex; instead assert G&G's makespan <= strict FCFS list makespan on
// random workloads, which holds because G&G never leaves fitting work
// idle at decision points while FCFS may).
func TestGareyGrahamBeatsBlockedFCFSOnCraftedCase(t *testing.T) {
	// FCFS blocks: the queue head needs the whole machine while a
	// 1-node job could use the idle node. G&G starts the 1-node job at
	// t=2; strict FCFS keeps it waiting behind the blocked head.
	jobs := []*job.Job{
		{ID: 0, Submit: 0, Nodes: 7, Estimate: 100, Runtime: 100},
		{ID: 1, Submit: 1, Nodes: 8, Estimate: 100, Runtime: 100},
		{ID: 2, Submit: 2, Nodes: 1, Estimate: 10, Runtime: 10},
	}
	mk := func(o OrderName) int64 {
		alg, err := New(o, StartList, Config{MachineNodes: 8})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.RunChecked(sim.Machine{Nodes: 8}, job.CloneAll(jobs), alg,
			sim.Options{Validate: true})
		if err != nil {
			t.Fatal(err)
		}
		a := res.Schedule.ByJobID(2)
		return a.Start
	}
	fcfsStart := mk(OrderFCFS)
	ggStart := mk(OrderGG)
	if ggStart >= fcfsStart {
		t.Fatalf("G&G start %d not earlier than FCFS %d for the skippable job",
			ggStart, fcfsStart)
	}
}

// shadowAssertingStarter wraps EASY and verifies its defining invariant
// at every decision: a backfill must not push out the head's shadow time
// as projected from the estimates at decision time ("EASY backfill will
// not postpone the projected execution of the next job in the list").
type shadowAssertingStarter struct {
	inner      *EASYStarter
	t          *testing.T
	backfills  int
	violations int
}

func (s *shadowAssertingStarter) Name() string { return s.inner.Name() }

func (s *shadowAssertingStarter) Pick(ordered []*job.Job, now int64, free int, running []sim.Running, m int) *job.Job {
	picked := s.inner.Pick(ordered, now, free, running, m)
	if picked == nil || len(ordered) == 0 || picked == ordered[0] {
		return picked
	}
	// A backfill happened: compare the head's shadow before and after.
	head := ordered[0]
	before, _ := shadowTime(head, now, free, running)
	after, _ := shadowTime(head, now, free-picked.Nodes,
		append(append([]sim.Running(nil), running...),
			sim.Running{Job: picked, Start: now, EstEnd: now + picked.Estimate}))
	s.backfills++
	if after > before {
		s.violations++
		s.t.Errorf("backfill of %v at t=%d pushed the head shadow %d → %d",
			picked, now, before, after)
	}
	return picked
}

// TestEASYBackfillNeverPostponesProjectedHeadStart runs FCFS order with
// the instrumented EASY starter over random workloads and asserts the
// per-decision shadow invariant, which is EASY's definition.
func TestEASYBackfillNeverPostponesProjectedHeadStart(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const nodes = 8
	jobs := randomJobs(r, 400, nodes)
	wrapper := &shadowAssertingStarter{inner: NewEASYStarter(), t: t}
	alg := Compose(NewFCFSOrder("FCFS"), wrapper, nodes)
	if _, err := sim.RunChecked(sim.Machine{Nodes: nodes}, job.CloneAll(jobs), alg,
		sim.Options{Validate: true}); err != nil {
		t.Fatal(err)
	}
	if wrapper.backfills == 0 {
		t.Fatal("workload produced no backfills; the invariant was never exercised")
	}
	t.Logf("checked %d backfill decisions", wrapper.backfills)
}
