package sched

import (
	"fmt"
	"math/rand"
	"testing"

	"jobsched/internal/job"
)

// The indexed-queue layer maintains a queue.Index mirror of every order
// policy's slice order. These tests pin the mirror op-for-op (the index
// enumerates exactly the slice order after every Push/Remove, for all
// four order policies), pin the indexed batched engine path against the
// slice batched path end to end, and gate the alloc-free width scan.

// indexedOrderers builds one instance of each order policy (both SMART
// variants) with the index enabled — the differential subjects.
func indexedOrderers(nodes int) []IndexedOrderer {
	cfg := Config{MachineNodes: nodes}.withDefaults()
	return []IndexedOrderer{
		NewFCFSOrder(string(OrderFCFS)),
		NewFCFSOrder("Garey&Graham"),
		NewPSRSOrder(cfg),
		NewSMARTOrder(FFIA, cfg),
		NewSMARTOrder(NFIW, cfg),
	}
}

// TestIndexedOrdererMatchesSlice drives every order policy through a
// long random Push/Remove sequence and checks after each operation that
// the index enumerates exactly the slice order: same jobs, same
// sequence, same length, and order statistics (Rank, Select) consistent
// with the enumeration.
func TestIndexedOrdererMatchesSlice(t *testing.T) {
	const nodes = 64
	for _, o := range indexedOrderers(nodes) {
		o := o
		t.Run(o.Name(), func(t *testing.T) {
			r := rand.New(rand.NewSource(41))
			var pending []*job.Job
			nextID := job.ID(0)
			now := int64(0)
			check := func(op string) {
				t.Helper()
				want := o.Ordered(now)
				ix := o.OrderedIter(now)
				if ix.Len() != len(want) || o.Len() != len(want) {
					t.Fatalf("%s: index len %d, orderer len %d, slice len %d",
						op, ix.Len(), o.Len(), len(want))
				}
				got := ix.AppendOrdered(nil)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s: position %d: index has job %d, slice has job %d",
							op, i, got[i].ID, want[i].ID)
					}
				}
				if len(want) > 0 {
					k := r.Intn(len(want))
					j, slot := ix.Select(k)
					if j != want[k] {
						t.Fatalf("%s: Select(%d) = job %v, want job %d", op, k, j, want[k].ID)
					}
					if rank := ix.Rank(slot); rank != k {
						t.Fatalf("%s: Rank(Select(%d)) = %d", op, k, rank)
					}
				}
			}
			for step := 0; step < 1200; step++ {
				now++
				if len(pending) == 0 || r.Intn(10) < 6 {
					j := &job.Job{
						ID:       nextID,
						Nodes:    1 + r.Intn(nodes),
						Submit:   now,
						Estimate: int64(1 + r.Intn(5000)),
					}
					j.Runtime = j.Estimate
					nextID++
					pending = append(pending, j)
					o.Push(j, now)
					check(fmt.Sprintf("step %d push %d", step, j.ID))
				} else {
					// Bias removals toward the head: that is what the engine
					// does (jobs start from the front of the order).
					k := r.Intn(len(pending))
					if r.Intn(2) == 0 {
						k = r.Intn((len(pending) + 3) / 4)
					}
					j := pending[k]
					pending = append(pending[:k], pending[k+1:]...)
					o.Remove(j, now)
					check(fmt.Sprintf("step %d remove %d", step, j.ID))
				}
			}
		})
	}
}

// TestIndexedQueueToggleResyncs pins SetIndexed round trips: disabling
// the mirror, mutating the queue, and re-enabling must rebuild an index
// that matches the slice order again.
func TestIndexedQueueToggleResyncs(t *testing.T) {
	const nodes = 32
	for _, o := range indexedOrderers(nodes) {
		o := o
		t.Run(o.Name(), func(t *testing.T) {
			r := rand.New(rand.NewSource(5))
			var pending []*job.Job
			for i := 0; i < 200; i++ {
				j := &job.Job{ID: job.ID(i), Nodes: 1 + r.Intn(nodes), Estimate: int64(1 + r.Intn(100))}
				pending = append(pending, j)
				o.Push(j, int64(i))
			}
			o.SetIndexed(false)
			// Mutate while the mirror is off.
			for i := 0; i < 80; i++ {
				k := r.Intn(len(pending))
				o.Remove(pending[k], 300)
				pending = append(pending[:k], pending[k+1:]...)
			}
			o.SetIndexed(true)
			want := o.Ordered(400)
			got := o.OrderedIter(400).AppendOrdered(nil)
			if len(got) != len(want) {
				t.Fatalf("after resync: index has %d jobs, slice %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("after resync: position %d: index job %d, slice job %d",
						i, got[i].ID, want[i].ID)
				}
			}
		})
	}
}

// TestIndexedEngineMatchesSliceBatched is the third leg of the protocol
// equivalence triangle (batchpass_test pins indexed-batched against
// sequential): the indexed engine path must produce byte-identical
// schedules and start events to the slice batched path on every grid
// configuration.
func TestIndexedEngineMatchesSliceBatched(t *testing.T) {
	const nodes = 16
	for seed := int64(1); seed <= 3; seed++ {
		jobs := randomJobs(rand.New(rand.NewSource(seed+100)), 220, nodes)
		for _, tc := range batchGridCases(nodes) {
			indexed, err := tc.mk()
			if err != nil {
				t.Fatal(err)
			}
			slicePath, err := tc.mk()
			if err != nil {
				t.Fatal(err)
			}
			slicePath.SetIndexedQueue(false)

			is, iev := runTraced(t, indexed, jobs, nodes)
			ss, sev := runTraced(t, slicePath, jobs, nodes)

			if ifp, sfp := scheduleFingerprint(is), scheduleFingerprint(ss); ifp != sfp {
				t.Fatalf("seed %d %s: indexed schedule diverged from slice path\nindexed: %s\nslice:   %s",
					seed, tc.name, ifp, sfp)
			}
			if len(iev) != len(sev) {
				t.Fatalf("seed %d %s: %d start events indexed, %d slice", seed, tc.name, len(iev), len(sev))
			}
			for i := range iev {
				if iev[i] != sev[i] {
					t.Fatalf("seed %d %s: start event %d diverged\nindexed: %+v\nslice:   %+v",
						seed, tc.name, i, iev[i], sev[i])
				}
			}
		}
	}
}

// TestIndexedScanZeroAlloc gates the width-pruned pass: a Garey&Graham
// pass over a deep queue of too-wide jobs must allocate nothing — the
// whole scan is cursor descents over the width index.
func TestIndexedScanZeroAlloc(t *testing.T) {
	o := NewFCFSOrder("Garey&Graham")
	for i := 0; i < 4096; i++ {
		o.Push(&job.Job{ID: job.ID(i), Nodes: 8, Estimate: 100}, int64(i))
	}
	s := NewGareyGrahamStarter()
	ix := o.OrderedIter(5000)
	// Warm the picked/decision buffers so steady-state capacity is measured.
	s.PickManyIndexed(ix, 5000, 4, nil, 16, 0)
	if allocs := testing.AllocsPerRun(100, func() {
		s.PickManyIndexed(ix, 5000, 4, nil, 16, 0)
	}); allocs != 0 {
		t.Fatalf("width-pruned no-fit pass allocates %v objects per run, want 0", allocs)
	}
}
