package sched

import (
	"fmt"
	"math/rand"
	"testing"

	"jobsched/internal/job"
	"jobsched/internal/sim"
)

func benchQueue(n int) []*job.Job {
	r := rand.New(rand.NewSource(7))
	jobs := make([]*job.Job, n)
	for i := range jobs {
		est := int64(1 + r.Intn(43200))
		jobs[i] = &job.Job{
			ID: job.ID(i), Nodes: 1 + r.Intn(256),
			Estimate: est, Runtime: 1 + r.Int63n(est),
		}
	}
	return jobs
}

// BenchmarkSMARTComputePlan measures one SMART replanning pass (bins,
// shelves, Smith sort) at several queue depths.
func BenchmarkSMARTComputePlan(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("queue=%d", n), func(b *testing.B) {
			o := NewSMARTOrder(FFIA, Config{MachineNodes: 256})
			q := benchQueue(n)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = o.computePlan(q)
			}
		})
	}
}

// BenchmarkPSRSComputePlan measures one PSRS replanning pass (ratio
// sort, preemptive schedule, bin conversion).
func BenchmarkPSRSComputePlan(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("queue=%d", n), func(b *testing.B) {
			o := NewPSRSOrder(Config{MachineNodes: 256})
			q := benchQueue(n)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = o.computePlan(q)
			}
		})
	}
}

// BenchmarkEASYPick measures one EASY backfilling decision over a deep
// queue with a busy machine.
func BenchmarkEASYPick(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("queue=%d", n), func(b *testing.B) {
			s := NewEASYStarter()
			q := benchQueue(n)
			q[0].Nodes = 256 // blocked head forces the backfill scan
			running := []sim.Running{
				{Job: &job.Job{ID: 90001, Nodes: 250, Estimate: 5000}, Start: 0, EstEnd: 5000},
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = s.Pick(q, 100, 6, running, 256)
			}
		})
	}
}

// BenchmarkConservativePick measures one conservative backfilling pass
// (full reservation rebuild) over a deep queue — the most expensive
// decision in the paper's grid.
func BenchmarkConservativePick(b *testing.B) {
	for _, n := range []int{100, 1000, 4000} {
		b.Run(fmt.Sprintf("queue=%d", n), func(b *testing.B) {
			s := NewConservativeStarter(0)
			q := benchQueue(n)
			q[0].Nodes = 256
			running := []sim.Running{
				{Job: &job.Job{ID: 90001, Nodes: 250, Estimate: 5000}, Start: 0, EstEnd: 5000},
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = s.Pick(q, 100, 6, running, 256)
			}
		})
	}
}

// BenchmarkEngineFCFS measures raw simulator throughput (events/op) with
// the cheapest scheduler.
func BenchmarkEngineFCFS(b *testing.B) {
	jobs := benchQueue(5000)
	var at int64
	r := rand.New(rand.NewSource(9))
	for _, j := range jobs {
		at += int64(r.Intn(60))
		j.Submit = at
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		alg, err := New(OrderFCFS, StartList, Config{MachineNodes: 256})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.RunChecked(sim.Machine{Nodes: 256}, job.CloneAll(jobs), alg, sim.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
