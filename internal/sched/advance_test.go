package sched

import (
	"math/rand"
	"strings"
	"testing"

	"jobsched/internal/job"
	"jobsched/internal/sim"
)

func TestNewCalendarValidation(t *testing.T) {
	ok := []AdvanceReservation{
		{Name: "siteA", Nodes: 4, Start: 100, End: 200},
		{Name: "siteB", Nodes: 4, Start: 150, End: 250},
	}
	if _, err := NewCalendar(8, ok); err != nil {
		t.Fatalf("valid calendar rejected: %v", err)
	}
	bad := [][]AdvanceReservation{
		{{Nodes: 0, Start: 0, End: 10}},
		{{Nodes: 9, Start: 0, End: 10}},
		{{Nodes: 1, Start: 10, End: 10}},
		{{Nodes: 1, Start: -5, End: 10}},
		// Overlapping reservations exceeding the machine.
		{{Nodes: 5, Start: 0, End: 100}, {Nodes: 5, Start: 50, End: 150}},
	}
	for i, entries := range bad {
		if _, err := NewCalendar(8, entries); err == nil {
			t.Errorf("bad calendar %d accepted", i)
		}
	}
	if _, err := NewCalendar(0, nil); err == nil {
		t.Error("zero machine accepted")
	}
}

func TestCalendarEntriesSorted(t *testing.T) {
	c, err := NewCalendar(8, []AdvanceReservation{
		{Name: "late", Nodes: 1, Start: 500, End: 600},
		{Name: "early", Nodes: 1, Start: 100, End: 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	e := c.Entries()
	if e[0].Name != "early" || e[1].Name != "late" {
		t.Errorf("entries not sorted: %v", e)
	}
}

func TestReservedStarterName(t *testing.T) {
	cal, _ := NewCalendar(8, nil)
	s := NewReservedStarter(NewEASYStarter(), cal)
	if !strings.Contains(s.Name(), "reservations") {
		t.Errorf("Name = %q", s.Name())
	}
}

func TestReservedStarterBlocksIntrudingJob(t *testing.T) {
	// Machine 8, reservation of all 8 nodes at [100, 200). A job with
	// estimate 150 at t=0 would intrude → refused; estimate 100 → ok.
	cal, err := NewCalendar(8, []AdvanceReservation{
		{Name: "course", Nodes: 8, Start: 100, End: 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := NewReservedStarter(NewListStarter(), cal)
	long := j(0, 1, 150)
	if got := s.Pick([]*job.Job{long}, 0, 8, nil, 8); got != nil {
		t.Errorf("intruding job admitted: %v", got)
	}
	short := j(1, 1, 100)
	if got := s.Pick([]*job.Job{short}, 0, 8, nil, 8); got != short {
		t.Errorf("fitting job refused")
	}
}

func TestReservedStarterPartialReservationAdmitsNarrowJobs(t *testing.T) {
	// Reservation of 6 of 8 nodes at [100, 200): a 2-node long job still
	// fits alongside; a 3-node long job does not.
	cal, err := NewCalendar(8, []AdvanceReservation{
		{Name: "siteA", Nodes: 6, Start: 100, End: 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := NewReservedStarter(NewListStarter(), cal)
	narrow := j(0, 2, 500)
	if got := s.Pick([]*job.Job{narrow}, 0, 8, nil, 8); got != narrow {
		t.Error("narrow job refused")
	}
	wide := j(1, 3, 500)
	if got := s.Pick([]*job.Job{wide}, 0, 8, nil, 8); got != nil {
		t.Errorf("wide intruding job admitted: %v", got)
	}
}

// TestReservationsHardGuarantee runs full simulations with a calendar
// and verifies the promise: during every reserved window, at least the
// reserved nodes are free in the final schedule. Kill-at-limit makes
// estimates hard caps, so the guarantee must hold exactly.
func TestReservationsHardGuarantee(t *testing.T) {
	const nodes = 16
	entries := []AdvanceReservation{
		{Name: "meta1", Nodes: 8, Start: 2000, End: 4000},
		{Name: "meta2", Nodes: 16, Start: 9000, End: 10000},
		{Name: "meta3", Nodes: 4, Start: 15000, End: 20000},
	}
	cal, err := NewCalendar(nodes, entries)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(55))
	jobs := make([]*job.Job, 250)
	var at int64
	for i := range jobs {
		at += int64(r.Intn(120))
		est := int64(1 + r.Intn(2500))
		jobs[i] = &job.Job{ID: job.ID(i), Submit: at, Nodes: 1 + r.Intn(nodes),
			Estimate: est, Runtime: 1 + r.Int63n(est)}
	}
	for _, inner := range []Starter{NewListStarter(), NewEASYStarter(), NewGareyGrahamStarter()} {
		alg := Compose(NewFCFSOrder("FCFS"), NewReservedStarter(inner, cal), nodes)
		res, err := sim.RunChecked(sim.Machine{Nodes: nodes}, job.CloneAll(jobs), alg,
			sim.Options{Validate: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Schedule.Allocs) != len(jobs) {
			t.Fatalf("%s: %d of %d jobs", inner.Name(), len(res.Schedule.Allocs), len(jobs))
		}
		for _, e := range entries {
			for _, a := range res.Schedule.Allocs {
				if a.Start < e.End && a.End > e.Start {
					// Overlapping allocations may use at most machine -
					// reserved nodes in total; check pointwise usage.
					used := usedAt(res.Schedule, maxI64(a.Start, e.Start))
					if nodes-used < e.Nodes {
						t.Fatalf("%s: reservation %q violated: %d nodes in use at %d",
							inner.Name(), e.Name, used, a.Start)
					}
				}
			}
		}
	}
}

// TestReservedStarterTransparentWithoutEntries: wrapping any policy with
// an empty calendar must not change a single placement — in particular,
// strict-list head blocking must survive the wrapping.
func TestReservedStarterTransparentWithoutEntries(t *testing.T) {
	cal, err := NewCalendar(16, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(66))
	jobs := randomJobs(r, 300, 16)
	for _, mk := range []func() Starter{
		func() Starter { return NewListStarter() },
		func() Starter { return NewEASYStarter() },
		func() Starter { return NewConservativeStarter(0) },
	} {
		plain := Compose(NewFCFSOrder("FCFS"), mk(), 16)
		wrapped := Compose(NewFCFSOrder("FCFS"), NewReservedStarter(mk(), cal), 16)
		pres, err := sim.RunChecked(sim.Machine{Nodes: 16}, job.CloneAll(jobs), plain,
			sim.Options{Validate: true})
		if err != nil {
			t.Fatal(err)
		}
		wres, err := sim.RunChecked(sim.Machine{Nodes: 16}, job.CloneAll(jobs), wrapped,
			sim.Options{Validate: true})
		if err != nil {
			t.Fatal(err)
		}
		starts := map[job.ID]int64{}
		for _, a := range pres.Schedule.Allocs {
			starts[a.Job.ID] = a.Start
		}
		for _, a := range wres.Schedule.Allocs {
			if starts[a.Job.ID] != a.Start {
				t.Fatalf("%s: job %d start changed %d → %d under empty calendar",
					plain.Name(), a.Job.ID, starts[a.Job.ID], a.Start)
			}
		}
	}
}

// TestReservedStarterKeepsHeadBlocking: with a calendar present, a job
// that merely does not fit the free nodes must NOT be filtered — the
// strict list head still blocks the queue.
func TestReservedStarterKeepsHeadBlocking(t *testing.T) {
	cal, err := NewCalendar(8, []AdvanceReservation{
		{Name: "far", Nodes: 8, Start: 1 << 40, End: 1<<40 + 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := NewReservedStarter(NewListStarter(), cal)
	head := j(0, 8, 10) // does not fit 4 free nodes
	small := j(1, 1, 10)
	if got := s.Pick([]*job.Job{head, small}, 0, 4, nil, 8); got != nil {
		t.Fatalf("list head blocking broken: picked %v", got)
	}
}

func usedAt(s *sim.Schedule, t int64) int {
	used := 0
	for _, a := range s.Allocs {
		if a.Start <= t && t < a.End {
			used += a.Job.Nodes
		}
	}
	return used
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
