package sched

import (
	"testing"

	"jobsched/internal/job"
)

// identityCompute returns jobs unchanged but counts invocations.
func identityCompute(count *int) func([]*job.Job) []*job.Job {
	return func(jobs []*job.Job) []*job.Job {
		*count++
		return append([]*job.Job(nil), jobs...)
	}
}

func TestReplannerComputesOnFirstUse(t *testing.T) {
	n := 0
	r := newReplanner(2.0/3.0, identityCompute(&n))
	r.push(j(0, 1, 10))
	r.ordered()
	if n != 1 {
		t.Fatalf("computed %d times, want 1", n)
	}
	// A second call without changes must reuse the plan.
	r.ordered()
	if n != 1 {
		t.Fatalf("computed %d times after idempotent call, want 1", n)
	}
}

func TestReplannerAppendsArrivalsWithoutRecompute(t *testing.T) {
	n := 0
	r := newReplanner(2.0/3.0, identityCompute(&n))
	for i := 0; i < 6; i++ {
		r.push(j(i, 1, 10))
	}
	r.ordered() // plan over 6 jobs
	if n != 1 {
		t.Fatalf("computed %d, want 1", n)
	}
	// One new arrival: 1/7 < 1/3 of the queue → appended, no recompute.
	extra := j(6, 1, 10)
	r.push(extra)
	got := r.ordered()
	if n != 1 {
		t.Fatalf("recomputed too eagerly (%d)", n)
	}
	if got[len(got)-1] != extra {
		t.Fatal("arrival not appended at the end")
	}
}

func TestReplannerRecomputesAfterConsumingPlan(t *testing.T) {
	n := 0
	r := newReplanner(2.0/3.0, identityCompute(&n))
	jobs := make([]*job.Job, 6)
	for i := range jobs {
		jobs[i] = j(i, 1, 10)
		r.push(jobs[i])
	}
	r.ordered()
	// Start (remove) 5 of 6 planned jobs: 5/6 > 2/3 → next ordered()
	// must recompute.
	for i := 0; i < 5; i++ {
		r.remove(jobs[i])
	}
	r.ordered()
	if n != 2 {
		t.Fatalf("computed %d times, want 2", n)
	}
}

func TestReplannerRecomputesOnArrivalFlood(t *testing.T) {
	n := 0
	r := newReplanner(2.0/3.0, identityCompute(&n))
	r.push(j(0, 1, 10))
	r.ordered()
	// Many unplanned arrivals: > 1/3 of the queue → recompute.
	for i := 1; i < 10; i++ {
		r.push(j(i, 1, 10))
	}
	r.ordered()
	if n != 2 {
		t.Fatalf("computed %d times, want 2", n)
	}
}

func TestReplannerRemoveUnplannedJob(t *testing.T) {
	n := 0
	r := newReplanner(2.0/3.0, identityCompute(&n))
	a := j(0, 1, 10)
	r.push(a)
	r.ordered()
	b := j(1, 1, 10)
	r.push(b) // unplanned
	r.remove(b)
	if r.len() != 1 {
		t.Fatalf("len = %d, want 1", r.len())
	}
	got := r.ordered()
	if len(got) != 1 || got[0] != a {
		t.Fatalf("ordered = %v", ids(got))
	}
}

func TestReplannerEmpty(t *testing.T) {
	n := 0
	r := newReplanner(2.0/3.0, identityCompute(&n))
	if got := r.ordered(); len(got) != 0 {
		t.Fatalf("ordered on empty = %v", got)
	}
	if n != 0 {
		t.Fatal("computed for empty queue")
	}
}

func TestReplannerPanicsOnBadRatio(t *testing.T) {
	for _, ratio := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for ratio %v", ratio)
				}
			}()
			newReplanner(ratio, identityCompute(new(int)))
		}()
	}
}

func TestReplannerPanicsOnJobSetChange(t *testing.T) {
	r := newReplanner(0.5, func(jobs []*job.Job) []*job.Job {
		return jobs[:0] // broken compute drops jobs
	})
	r.push(j(0, 1, 10))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic when compute changed the job set")
		}
	}()
	r.ordered()
}

func TestFCFSOrder(t *testing.T) {
	o := NewFCFSOrder("FCFS")
	a, b, c := j(0, 1, 10), j(1, 1, 10), j(2, 1, 10)
	o.Push(a, 0)
	o.Push(b, 1)
	o.Push(c, 2)
	got := o.Ordered(2)
	if got[0] != a || got[1] != b || got[2] != c {
		t.Fatalf("order = %v", ids(got))
	}
	o.Remove(b, 3)
	got = o.Ordered(3)
	if len(got) != 2 || got[0] != a || got[1] != c {
		t.Fatalf("order after remove = %v", ids(got))
	}
	o.Remove(b, 3) // removing an absent job is a no-op
	if o.Len() != 2 {
		t.Fatalf("len = %d", o.Len())
	}
	if o.Name() != "FCFS" {
		t.Error("name")
	}
}
