package sched

import (
	"math/rand"
	"testing"

	"jobsched/internal/job"
	"jobsched/internal/sim"
	"jobsched/internal/telemetry"
)

// TestAllFamiliesUnderOverlappingOutages drives every scheduler family
// through a workload with *overlapping* outages (a second failure begins
// while the first is still being repaired) and checks, via the decision
// trace, the resubmit contract: every abort is followed by exactly one
// resubmit arrival for that job (unlimited budget, no backoff), the
// checked invariants hold, and nothing is lost.
func TestAllFamiliesUnderOverlappingOutages(t *testing.T) {
	r := rand.New(rand.NewSource(202))
	const nodes = 16
	jobs := randomJobs(r, 250, nodes)
	_, last := job.Span(jobs)
	failures := []sim.Failure{
		{At: last / 8, Nodes: 8, Duration: last / 4},     // long partial outage…
		{At: last / 6, Nodes: 4, Duration: last / 8},     // …overlapped by a second
		{At: last / 5, Nodes: 2, Duration: last / 6},     // …and a third
		{At: last / 2, Nodes: 12, Duration: last / 10},   // big later dip
		{At: last/2 + 10, Nodes: 2, Duration: last / 10}, // overlapping the dip
	}

	for _, o := range GridOrders() {
		for _, s := range GridStarts() {
			var trace telemetry.Buffer
			alg, err := New(o, s, Config{
				MachineNodes: nodes,
				Hooks:        telemetry.Hooks{Recorder: &trace},
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.RunChecked(sim.Machine{Nodes: nodes}, job.CloneAll(jobs), alg,
				sim.Options{
					Validate: true,
					Failures: failures,
					Recorder: &trace,
				})
			if err != nil {
				t.Fatalf("%s/%s: %v", o, s, err)
			}
			if res.LostJobs != 0 {
				t.Errorf("%s/%s: %d jobs lost with an unlimited budget", o, s, res.LostJobs)
			}
			if res.AbortedAttempts == 0 {
				t.Fatalf("%s/%s: no aborts; outages are not exercising the engine", o, s)
			}
			if res.Resubmits != res.AbortedAttempts {
				t.Errorf("%s/%s: %d aborts but %d resubmits", o, s, res.AbortedAttempts, res.Resubmits)
			}

			// Trace-level contract: per job, aborts == resubmit arrivals,
			// and the running balance never goes negative (a resubmit
			// never precedes its abort).
			aborts := map[int64]int{}
			resubs := map[int64]int{}
			for _, ev := range trace.Events() {
				switch {
				case ev.Type == telemetry.EventAbort:
					aborts[ev.Job]++
				case ev.Type == telemetry.EventArrival && ev.Resubmit:
					resubs[ev.Job]++
					if resubs[ev.Job] > aborts[ev.Job] {
						t.Fatalf("%s/%s: job %d resubmitted before (or more often than) aborted",
							o, s, ev.Job)
					}
					if ev.Attempt != aborts[ev.Job] {
						t.Errorf("%s/%s: job %d resubmit carries attempt %d, want %d",
							o, s, ev.Job, ev.Attempt, aborts[ev.Job])
					}
				}
			}
			for id, n := range aborts {
				if resubs[id] != n {
					t.Errorf("%s/%s: job %d aborted %d times but resubmitted %d times",
						o, s, id, n, resubs[id])
				}
			}

			completed := 0
			for _, a := range res.Schedule.Allocs {
				if !a.Aborted {
					completed++
				}
			}
			if completed != len(jobs) {
				t.Errorf("%s/%s: %d of %d jobs completed", o, s, completed, len(jobs))
			}
		}
	}
}
