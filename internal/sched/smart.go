package sched

import (
	"cmp"
	"sort"

	"slices"

	"jobsched/internal/job"
	"jobsched/internal/queue"
	"jobsched/internal/telemetry"
)

// SMARTVariant selects the shelf-packing rule of SMART's step 2
// (Schwiegelshohn et al. [14]).
type SMARTVariant int

const (
	// FFIA is First Fit Increasing Area: bin jobs sorted by increasing
	// area (estimate × nodes), first-fit onto any shelf of the bin.
	FFIA SMARTVariant = iota
	// NFIW is Next Fit Increasing Width-to-Weight: bin jobs sorted by
	// increasing nodes/weight, next-fit onto the current shelf only.
	NFIW
)

func (v SMARTVariant) String() string {
	if v == FFIA {
		return "SMART-FFIA"
	}
	return "SMART-NFIW"
}

// SMARTOrder adapts the off-line SMART algorithm (Turek et al. [21]) to
// the on-line setting of the paper's Section 5.4: the algorithm is used
// only to order the jobs already submitted but not yet started; a greedy
// list schedule (possibly with backfilling) consumes that order. Job
// execution times are the user estimates; the plan is recomputed lazily
// (see replanner).
type SMARTOrder struct {
	variant SMARTVariant
	gamma   float64
	weight  job.WeightFunc
	machine int
	rp      *replanner
}

// NewSMARTOrder builds the SMART order policy from the configuration.
func NewSMARTOrder(v SMARTVariant, cfg Config) *SMARTOrder {
	cfg = cfg.withDefaults()
	if cfg.SmartGamma <= 1 {
		panic("sched: SMART gamma must be > 1")
	}
	o := &SMARTOrder{
		variant: v,
		gamma:   cfg.SmartGamma,
		weight:  cfg.Weight,
		machine: cfg.MachineNodes,
	}
	o.rp = newReplanner(cfg.RecomputeRatio, o.computePlan)
	return o
}

// Name implements Orderer.
func (o *SMARTOrder) Name() string { return o.variant.String() }

// Push implements Orderer.
func (o *SMARTOrder) Push(j *job.Job, now int64) { o.rp.push(j) }

// Remove implements Orderer.
func (o *SMARTOrder) Remove(j *job.Job, now int64) { o.rp.remove(j) }

// Ordered implements Orderer.
func (o *SMARTOrder) Ordered(now int64) []*job.Job { return o.rp.ordered() }

// OrderedIter implements IndexedOrderer.
func (o *SMARTOrder) OrderedIter(now int64) *queue.Index { return o.rp.index() }

// SetIndexed implements IndexedOrderer.
func (o *SMARTOrder) SetIndexed(on bool) { o.rp.setIndexed(on) }

// BatchWindow implements EpochOrderer: SMART order is removal-stable
// within a plan epoch (see replanner.batchWindow).
func (o *SMARTOrder) BatchWindow() int { return o.rp.batchWindow() }

// Instrument implements Instrumented: attaches the queue-index counter.
func (o *SMARTOrder) Instrument(h telemetry.Hooks) { o.rp.ix.SetStats(h.QueueStats) }

// Len implements Orderer.
func (o *SMARTOrder) Len() int { return o.rp.len() }

// Recomputations returns how often the plan was recomputed (diagnostics).
func (o *SMARTOrder) Recomputations() int { return o.rp.recomputations }

// shelf is one subschedule: all jobs on a shelf start concurrently.
type shelf struct {
	jobs      []*job.Job
	usedNodes int
	sumWeight float64
	maxTime   int64
}

func (s *shelf) add(j *job.Job, w float64) {
	s.jobs = append(s.jobs, j)
	s.usedNodes += j.Nodes
	s.sumWeight += w
	if j.Estimate > s.maxTime {
		s.maxTime = j.Estimate
	}
}

// smithRatio is the shelf ordering key of step 3: Σ weights / max time.
func (s *shelf) smithRatio() float64 {
	return s.sumWeight / float64(s.maxTime)
}

// computePlan runs the three SMART steps over a snapshot of waiting jobs
// and returns the shelf-concatenated priority order.
func (o *SMARTOrder) computePlan(jobs []*job.Job) []*job.Job {
	if len(jobs) <= 1 {
		return append([]*job.Job(nil), jobs...)
	}

	// Step 1: geometric execution-time bins ]0,1], ]1,γ], ]γ,γ²], …
	bins := make(map[int][]*job.Job)
	var binKeys []int
	for _, j := range jobs {
		k := geometricBin(j.Estimate, o.gamma)
		if _, ok := bins[k]; !ok {
			binKeys = append(binKeys, k)
		}
		bins[k] = append(bins[k], j)
	}
	sort.Ints(binKeys)

	// Step 2: pack each bin's jobs onto shelves.
	var shelves []*shelf
	for _, k := range binKeys {
		shelves = append(shelves, o.packBin(bins[k])...)
	}

	// Step 3: Smith's rule — largest Σweight/maxTime first. Stable sort
	// keeps the bin construction order deterministic on ties.
	slices.SortStableFunc(shelves, func(a, b *shelf) int {
		ra, rb := a.smithRatio(), b.smithRatio()
		if ra > rb {
			return -1
		}
		if ra < rb {
			return 1
		}
		return 0
	})

	plan := make([]*job.Job, 0, len(jobs))
	for _, s := range shelves {
		plan = append(plan, s.jobs...)
	}
	return plan
}

// geometricBin returns the smallest k >= 0 with t <= γ^k.
func geometricBin(t int64, gamma float64) int {
	if t <= 1 {
		return 0
	}
	k := 0
	bound := 1.0
	for float64(t) > bound {
		bound *= gamma
		k++
	}
	return k
}

// packBin arranges a bin's jobs on shelves per the configured variant.
func (o *SMARTOrder) packBin(jobs []*job.Job) []*shelf {
	sorted := append([]*job.Job(nil), jobs...)
	switch o.variant {
	case FFIA:
		// Smallest estimated area first; ties by ID for determinism.
		slices.SortStableFunc(sorted, func(a, b *job.Job) int {
			if c := cmp.Compare(a.EstimatedArea(), b.EstimatedArea()); c != 0 {
				return c
			}
			return cmp.Compare(a.ID, b.ID)
		})
		var shelves []*shelf
		for _, j := range sorted {
			placed := false
			for _, s := range shelves {
				if s.usedNodes+j.Nodes <= o.machine {
					s.add(j, o.weight(j))
					placed = true
					break
				}
			}
			if !placed {
				s := &shelf{}
				s.add(j, o.weight(j))
				shelves = append(shelves, s)
			}
		}
		return shelves
	case NFIW:
		// Increasing nodes/weight; ties by ID.
		slices.SortStableFunc(sorted, func(a, b *job.Job) int {
			ra := float64(a.Nodes) / o.weight(a)
			rb := float64(b.Nodes) / o.weight(b)
			if ra != rb {
				if ra < rb {
					return -1
				}
				return 1
			}
			return cmp.Compare(a.ID, b.ID)
		})
		var shelves []*shelf
		var cur *shelf
		for _, j := range sorted {
			if cur == nil || cur.usedNodes+j.Nodes > o.machine {
				cur = &shelf{}
				shelves = append(shelves, cur)
			}
			cur.add(j, o.weight(j))
		}
		return shelves
	default:
		panic("sched: unknown SMART variant")
	}
}
