package stats

import (
	"math"
	"testing"
)

func TestKSStatisticIdenticalSamples(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if got := KSStatistic(a, a); got > 1e-12 {
		t.Errorf("KS of identical samples = %v", got)
	}
}

func TestKSStatisticDisjointSamples(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 20, 30}
	if got := KSStatistic(a, b); got != 1 {
		t.Errorf("KS of disjoint samples = %v, want 1", got)
	}
}

func TestKSStatisticEmpty(t *testing.T) {
	if !math.IsNaN(KSStatistic(nil, []float64{1})) {
		t.Error("empty sample must give NaN")
	}
}

func TestKSSameDistributionAcceptsSameSource(t *testing.T) {
	r := NewRand(1)
	w := Weibull{K: 1.3, Lambda: 50}
	a := make([]float64, 5000)
	b := make([]float64, 5000)
	for i := range a {
		a[i] = w.Sample(r)
		b[i] = w.Sample(r)
	}
	if !KSSameDistribution(a, b, 0.01) {
		t.Error("same-distribution samples rejected at α=0.01")
	}
}

func TestKSSameDistributionRejectsDifferentSources(t *testing.T) {
	r := NewRand(2)
	w1 := Weibull{K: 1.3, Lambda: 50}
	w2 := Weibull{K: 1.3, Lambda: 120}
	a := make([]float64, 5000)
	b := make([]float64, 5000)
	for i := range a {
		a[i] = w1.Sample(r)
		b[i] = w2.Sample(r)
	}
	if KSSameDistribution(a, b, 0.01) {
		t.Error("clearly different distributions accepted")
	}
}

func TestKSCriticalValueShrinksWithN(t *testing.T) {
	small := KSCriticalValue(100, 100, 0.05)
	large := KSCriticalValue(10000, 10000, 0.05)
	if large >= small {
		t.Errorf("critical value must shrink with n: %v vs %v", small, large)
	}
	if !math.IsNaN(KSCriticalValue(0, 10, 0.05)) {
		t.Error("bad n must give NaN")
	}
	if !math.IsNaN(KSCriticalValue(10, 10, 0)) {
		t.Error("bad alpha must give NaN")
	}
}

func TestKSAgainstCDFWeibullFit(t *testing.T) {
	r := NewRand(3)
	w := Weibull{K: 2, Lambda: 100}
	sample := make([]float64, 10000)
	for i := range sample {
		sample[i] = w.Sample(r)
	}
	d := KSAgainstCDF(sample, w.CDF)
	// One-sample critical value at α=0.01 ≈ 1.63/sqrt(n).
	crit := 1.63 / math.Sqrt(float64(len(sample)))
	if d > crit {
		t.Errorf("KS against own CDF = %v > critical %v", d, crit)
	}
	// A wrong CDF must fail clearly.
	wrong := Weibull{K: 2, Lambda: 300}
	if KSAgainstCDF(sample, wrong.CDF) < 5*crit {
		t.Error("wrong CDF not detected")
	}
	if !math.IsNaN(KSAgainstCDF(nil, w.CDF)) {
		t.Error("empty sample must give NaN")
	}
}
