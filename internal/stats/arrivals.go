package stats

import (
	"math"
	"math/rand"
)

// RateFunc maps a time (seconds from workload start) to a relative arrival
// intensity in [0, 1]. It modulates a base rate to express daily and
// weekly submission cycles.
type RateFunc func(t int64) float64

// ConstantRate is the trivial modulation (homogeneous Poisson process).
func ConstantRate(int64) float64 { return 1 }

const (
	secondsPerHour = 3600
	secondsPerDay  = 24 * secondsPerHour
	secondsPerWeek = 7 * secondsPerDay
)

// DailyWeeklyRate returns a RateFunc with the classic supercomputer
// submission pattern: weekday peak between 7am and 8pm (the paper's
// prime-time window of Example 5 rules 5/6), reduced nights, reduced
// weekends. dayFloor and weekendFactor are in (0, 1]; peak hours get
// intensity 1.
func DailyWeeklyRate(dayFloor, weekendFactor float64) RateFunc {
	if dayFloor <= 0 || dayFloor > 1 || weekendFactor <= 0 || weekendFactor > 1 {
		panic("stats: DailyWeeklyRate factors must be in (0,1]")
	}
	return func(t int64) float64 {
		tod := t % secondsPerDay
		dow := (t % secondsPerWeek) / secondsPerDay // 0..6, day 0 = Monday
		hour := tod / secondsPerHour
		rate := dayFloor
		if hour >= 7 && hour < 20 {
			// Smooth ramp within prime time: a raised-cosine bump peaks
			// mid-afternoon, matching observed CTC submission intensity.
			x := float64(tod-7*secondsPerHour) / float64(13*secondsPerHour)
			rate = dayFloor + (1-dayFloor)*0.5*(1-math.Cos(2*math.Pi*x))
			if rate > 1 {
				rate = 1
			}
		}
		if dow >= 5 { // Saturday, Sunday
			rate *= weekendFactor
		}
		return rate
	}
}

// PoissonArrivals draws n arrival times of a nonhomogeneous Poisson
// process on [0, horizon) with peak rate peakPerSec modulated by rate,
// using Lewis-Shedler thinning. If fewer than n arrivals fit in the
// horizon at the given rate the process wraps into subsequent horizons
// (the effective trace simply becomes longer), so exactly n times are
// always returned, ascending.
func PoissonArrivals(r *rand.Rand, n int, peakPerSec float64, horizon int64, rate RateFunc) []int64 {
	if peakPerSec <= 0 {
		panic("stats: PoissonArrivals requires positive rate")
	}
	out := make([]int64, 0, n)
	t := 0.0
	for len(out) < n {
		t += r.ExpFloat64() / peakPerSec
		tt := int64(t)
		m := tt
		if horizon > 0 {
			m = tt % horizon // modulation pattern repeats past the horizon
		}
		if r.Float64() <= rate(m) {
			out = append(out, tt)
		}
	}
	return out
}

// UniformArrivals draws n interarrival gaps uniform in [0, maxGap] seconds
// and returns the cumulative arrival times. This implements the paper's
// randomized workload submission model ("at least one job per hour":
// every gap is at most one hour when maxGap = 3600).
func UniformArrivals(r *rand.Rand, n int, maxGap int64) []int64 {
	out := make([]int64, n)
	var t int64
	for i := 0; i < n; i++ {
		t += UniformInt(r, 0, maxGap)
		out[i] = t
	}
	return out
}
