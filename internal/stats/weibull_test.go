package stats

import (
	"math"
	"testing"
)

func TestWeibullMeanVar(t *testing.T) {
	// k = 1 reduces to the exponential distribution: mean = λ, var = λ².
	w := Weibull{K: 1, Lambda: 42}
	if got := w.Mean(); math.Abs(got-42) > 1e-9 {
		t.Errorf("Mean = %v, want 42", got)
	}
	if got := w.Var(); math.Abs(got-42*42) > 1e-6 {
		t.Errorf("Var = %v, want %v", got, 42*42)
	}
}

func TestWeibullCDF(t *testing.T) {
	w := Weibull{K: 2, Lambda: 10}
	if got := w.CDF(-5); got != 0 {
		t.Errorf("CDF(-5) = %v", got)
	}
	if got := w.CDF(0); got != 0 {
		t.Errorf("CDF(0) = %v", got)
	}
	// At x = λ the CDF is 1 - 1/e regardless of shape.
	want := 1 - math.Exp(-1)
	if got := w.CDF(10); math.Abs(got-want) > 1e-12 {
		t.Errorf("CDF(λ) = %v, want %v", got, want)
	}
	if got := w.CDF(1e9); got < 0.999999 {
		t.Errorf("CDF(large) = %v", got)
	}
}

func TestWeibullSampleMoments(t *testing.T) {
	r := NewRand(11)
	w := Weibull{K: 1.5, Lambda: 100}
	n := 200000
	var sum float64
	for i := 0; i < n; i++ {
		x := w.Sample(r)
		if x < 0 {
			t.Fatal("negative Weibull sample")
		}
		sum += x
	}
	mean := sum / float64(n)
	if rel := math.Abs(mean-w.Mean()) / w.Mean(); rel > 0.02 {
		t.Errorf("sample mean %v deviates %.1f%% from %v", mean, rel*100, w.Mean())
	}
}

func TestFitWeibullRecoversParameters(t *testing.T) {
	cases := []Weibull{
		{K: 0.7, Lambda: 50},
		{K: 1.0, Lambda: 500},
		{K: 2.5, Lambda: 10},
	}
	r := NewRand(5)
	for _, want := range cases {
		samples := make([]float64, 50000)
		for i := range samples {
			samples[i] = want.Sample(r)
		}
		got, err := FitWeibull(samples)
		if err != nil {
			t.Fatalf("fit %v: %v", want, err)
		}
		if rel := math.Abs(got.K-want.K) / want.K; rel > 0.05 {
			t.Errorf("K: got %v, want %v (%.1f%% off)", got.K, want.K, rel*100)
		}
		if rel := math.Abs(got.Lambda-want.Lambda) / want.Lambda; rel > 0.05 {
			t.Errorf("Lambda: got %v, want %v (%.1f%% off)", got.Lambda, want.Lambda, rel*100)
		}
	}
}

func TestFitWeibullRejectsBadInput(t *testing.T) {
	if _, err := FitWeibull(nil); err == nil {
		t.Error("nil input accepted")
	}
	if _, err := FitWeibull([]float64{1}); err == nil {
		t.Error("single sample accepted")
	}
	if _, err := FitWeibull([]float64{1, -2, 3}); err == nil {
		t.Error("negative sample accepted")
	}
	if _, err := FitWeibull([]float64{1, 0}); err == nil {
		t.Error("zero sample accepted")
	}
	if _, err := FitWeibull([]float64{1, math.NaN()}); err == nil {
		t.Error("NaN sample accepted")
	}
	if _, err := FitWeibull([]float64{1, math.Inf(1)}); err == nil {
		t.Error("Inf sample accepted")
	}
}

func TestFitWeibullDegenerateIdentical(t *testing.T) {
	// All-identical samples: an extremely peaked distribution; the fit
	// must not fail and must report a large shape near the common value.
	w, err := FitWeibull([]float64{7, 7, 7, 7})
	if err != nil {
		t.Fatalf("identical samples: %v", err)
	}
	if w.K < 100 {
		t.Errorf("identical samples should give a very large shape, got K=%v", w.K)
	}
	if math.Abs(w.Lambda-7) > 0.5 {
		t.Errorf("Lambda = %v, want near 7", w.Lambda)
	}
}
