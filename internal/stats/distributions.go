package stats

import (
	"math"
	"math/rand"
)

// Exponential samples from an exponential distribution with the given mean.
func Exponential(r *rand.Rand, mean float64) float64 {
	return r.ExpFloat64() * mean
}

// LogUniform returns a value whose logarithm is uniform in [log lo, log hi].
// Job runtimes in parallel workloads span several orders of magnitude and
// are well served by this shape. Panics if lo <= 0 or hi < lo.
func LogUniform(r *rand.Rand, lo, hi float64) float64 {
	if lo <= 0 || hi < lo {
		panic("stats: LogUniform requires 0 < lo <= hi")
	}
	return lo * math.Exp(r.Float64()*math.Log(hi/lo))
}

// Discrete is an empirical discrete distribution over arbitrary integer
// values with explicit probabilities. Used for node-count distributions
// with power-of-two spikes.
type Discrete struct {
	values []int64
	cum    []float64 // cumulative probabilities, last = 1
}

// NewDiscrete builds a discrete distribution from parallel slices of
// values and non-negative weights (not necessarily normalized). Panics on
// length mismatch, empty input, or all-zero weights.
func NewDiscrete(values []int64, weights []float64) *Discrete {
	if len(values) == 0 || len(values) != len(weights) {
		panic("stats: NewDiscrete needs equal, non-empty values/weights")
	}
	var total float64
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("stats: NewDiscrete weight must be >= 0")
		}
		total += w
	}
	if total == 0 {
		panic("stats: NewDiscrete total weight is zero")
	}
	d := &Discrete{
		values: append([]int64(nil), values...),
		cum:    make([]float64, len(weights)),
	}
	var run float64
	for i, w := range weights {
		run += w / total
		d.cum[i] = run
	}
	d.cum[len(d.cum)-1] = 1
	return d
}

// Sample draws one value.
func (d *Discrete) Sample(r *rand.Rand) int64 {
	u := r.Float64()
	// Binary search the cumulative table.
	lo, hi := 0, len(d.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if d.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return d.values[lo]
}

// Prob returns the probability of value v (0 if absent).
func (d *Discrete) Prob(v int64) float64 {
	prev := 0.0
	for i, val := range d.values {
		if val == v {
			return d.cum[i] - prev
		}
		prev = d.cum[i]
	}
	return 0
}

// Len returns the number of distinct values.
func (d *Discrete) Len() int { return len(d.values) }
