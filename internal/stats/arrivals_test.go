package stats

import (
	"math"
	"sort"
	"testing"
)

func TestConstantRate(t *testing.T) {
	if ConstantRate(0) != 1 || ConstantRate(1e9) != 1 {
		t.Fatal("ConstantRate must always be 1")
	}
}

func TestDailyWeeklyRateShape(t *testing.T) {
	rate := DailyWeeklyRate(0.2, 0.5)
	// 3am Monday: floor.
	night := rate(3 * 3600)
	if math.Abs(night-0.2) > 1e-9 {
		t.Errorf("night rate = %v, want 0.2", night)
	}
	// Midday Monday: near peak.
	noon := rate(13 * 3600)
	if noon < 0.8 {
		t.Errorf("midday rate = %v, want near 1", noon)
	}
	// Saturday midday: weekend factor applied.
	sat := rate(5*86400 + 13*3600)
	if math.Abs(sat-noon*0.5) > 1e-9 {
		t.Errorf("saturday rate = %v, want %v", sat, noon*0.5)
	}
	// Rates stay in (0, 1].
	for ts := int64(0); ts < 7*86400; ts += 977 {
		v := rate(ts)
		if v <= 0 || v > 1 {
			t.Fatalf("rate(%d) = %v out of (0,1]", ts, v)
		}
	}
}

func TestDailyWeeklyRatePanics(t *testing.T) {
	for _, c := range [][2]float64{{0, 0.5}, {1.5, 0.5}, {0.5, 0}, {0.5, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %v", c)
				}
			}()
			DailyWeeklyRate(c[0], c[1])
		}()
	}
}

func TestPoissonArrivalsCountAndOrder(t *testing.T) {
	r := NewRand(12)
	arr := PoissonArrivals(r, 5000, 0.01, 86400*7, ConstantRate)
	if len(arr) != 5000 {
		t.Fatalf("got %d arrivals", len(arr))
	}
	if !sort.SliceIsSorted(arr, func(i, j int) bool { return arr[i] < arr[j] }) {
		t.Fatal("arrivals not ascending")
	}
	// Homogeneous process at rate 0.01/s: 5000 arrivals span ~500000 s.
	span := float64(arr[len(arr)-1] - arr[0])
	if span < 350000 || span > 700000 {
		t.Errorf("span = %v, want ~500000", span)
	}
}

func TestPoissonArrivalsModulationThins(t *testing.T) {
	r := NewRand(13)
	rate := DailyWeeklyRate(0.1, 0.1)
	arr := PoissonArrivals(r, 20000, 0.05, 86400*7, ConstantRate)
	r2 := NewRand(13)
	arrMod := PoissonArrivals(r2, 20000, 0.05, 86400*7, rate)
	// Thinned process must take longer to accumulate the same count.
	if arrMod[len(arrMod)-1] <= arr[len(arr)-1] {
		t.Error("modulated arrivals did not stretch the time span")
	}
	// Night intensity must be well below day intensity.
	day, night := 0, 0
	for _, a := range arrMod {
		h := (a % 86400) / 3600
		if h >= 7 && h < 20 {
			day++
		} else {
			night++
		}
	}
	// Prime time is 13/24 of the day; with floor 0.1 the day share must
	// far exceed its time share.
	if float64(day)/float64(day+night) < 0.7 {
		t.Errorf("day fraction = %v, want > 0.7", float64(day)/float64(day+night))
	}
}

func TestPoissonArrivalsPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	PoissonArrivals(NewRand(1), 10, 0, 100, ConstantRate)
}

func TestUniformArrivals(t *testing.T) {
	r := NewRand(14)
	arr := UniformArrivals(r, 10000, 3600)
	if len(arr) != 10000 {
		t.Fatalf("got %d arrivals", len(arr))
	}
	prev := int64(0)
	for _, a := range arr {
		gap := a - prev
		if gap < 0 || gap > 3600 {
			t.Fatalf("gap %d outside [0,3600]", gap)
		}
		prev = a
	}
	// Mean gap ~1800 s ("at least one job per hour").
	mean := float64(arr[len(arr)-1]) / float64(len(arr))
	if math.Abs(mean-1800) > 60 {
		t.Errorf("mean gap = %v, want ~1800", mean)
	}
}

func TestDescribeAndPercentile(t *testing.T) {
	s := Describe([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("Describe = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("Std = %v", s.Std)
	}
	if got := Percentile([]float64{10, 20}, 50); got != 15 {
		t.Errorf("Percentile interpolation = %v", got)
	}
	if got := Percentile([]float64{3, 1, 2}, 0); got != 1 {
		t.Errorf("P0 = %v", got)
	}
	if got := Percentile([]float64{3, 1, 2}, 100); got != 3 {
		t.Errorf("P100 = %v", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile(nil) must be NaN")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) must be NaN")
	}
	if Describe(nil).N != 0 {
		t.Error("Describe(nil) must be zero")
	}
}
