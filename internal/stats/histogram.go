package stats

import (
	"fmt"
	"math/rand"
	"sort"
)

// Histogram is an empirical distribution over half-open ranges ]lo, hi]
// (the paper's bin convention for execution-time classes). It supports
// both counting observed values and sampling new ones: a sample picks a
// bin by its probability and then a uniform value inside the bin. This is
// exactly the Section 6.2 mechanism ("bins are created ... probability
// values are calculated for each bin ... randomized values are used and
// associated to the bins according to their probability").
type Histogram struct {
	bounds []int64 // bin i covers ]bounds[i], bounds[i+1]]
	counts []int64
	total  int64
}

// NewHistogram creates a histogram with the given ascending bin bounds.
// There are len(bounds)-1 bins; at least one bin is required.
func NewHistogram(bounds []int64) *Histogram {
	if len(bounds) < 2 {
		panic("stats: NewHistogram needs at least two bounds")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: NewHistogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]int64, len(bounds)-1),
	}
}

// GeometricBounds returns bounds 0, first, first·γ, first·γ², … covering
// at least max. It is used for execution-time bins (SMART uses the same
// sequence with γ = 2).
func GeometricBounds(first int64, gamma float64, max int64) []int64 {
	if first <= 0 || gamma <= 1 {
		panic("stats: GeometricBounds requires first > 0 and gamma > 1")
	}
	bounds := []int64{0, first}
	cur := float64(first)
	for bounds[len(bounds)-1] < max {
		cur *= gamma
		next := int64(cur)
		if next <= bounds[len(bounds)-1] {
			next = bounds[len(bounds)-1] + 1
		}
		bounds = append(bounds, next)
	}
	return bounds
}

// Add counts one observation. Values at or below the lowest bound go to
// the first bin; values above the highest bound go to the last bin.
func (h *Histogram) Add(v int64) {
	h.counts[h.binOf(v)]++
	h.total++
}

func (h *Histogram) binOf(v int64) int {
	// Find the first bound >= v; the value belongs to the bin ending there.
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	switch {
	case i <= 0:
		return 0
	case i >= len(h.bounds):
		return len(h.counts) - 1
	default:
		return i - 1
	}
}

// Total returns the number of observations.
func (h *Histogram) Total() int64 { return h.total }

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.counts) }

// Count returns the count of bin i.
func (h *Histogram) Count(i int) int64 { return h.counts[i] }

// BinBounds returns (lo, hi] for bin i.
func (h *Histogram) BinBounds(i int) (lo, hi int64) {
	return h.bounds[i], h.bounds[i+1]
}

// Prob returns the empirical probability of bin i.
func (h *Histogram) Prob(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[i]) / float64(h.total)
}

// Sample draws a value: pick a bin proportionally to its count, then a
// uniform integer within ]lo, hi]. Returns an error-free value; panics if
// the histogram is empty.
func (h *Histogram) Sample(r *rand.Rand) int64 {
	if h.total == 0 {
		panic("stats: Sample from empty histogram")
	}
	pick := r.Int63n(h.total)
	var run int64
	for i, c := range h.counts {
		run += c
		if pick < run {
			lo, hi := h.BinBounds(i)
			return UniformInt(r, lo+1, hi)
		}
	}
	// Unreachable: counts sum to total.
	panic("stats: histogram sampling overran bins")
}

// String renders a compact textual summary.
func (h *Histogram) String() string {
	s := fmt.Sprintf("histogram(%d obs):", h.total)
	for i := range h.counts {
		if h.counts[i] == 0 {
			continue
		}
		lo, hi := h.BinBounds(i)
		s += fmt.Sprintf(" ]%d,%d]=%d", lo, hi, h.counts[i])
	}
	return s
}

// JointHistogram models the paper's conditional bin structure: for every
// possible node count a histogram of the requested time, and for every
// (node count, requested-time bin) a histogram of the actual runtime.
// Sampling draws the node count from its empirical distribution, the
// estimate from the node count's bins, and the runtime from the bins
// conditioned on the estimate — preserving both the width/length and the
// estimate/runtime correlation of the source trace.
type JointHistogram struct {
	nodes     map[int]int64 // node count -> observations
	nodeOrder []int         // deterministic iteration order
	estimate  map[int]*Histogram
	// runtime is keyed by (node count, estimate bin index).
	runtime map[int]map[int]*Histogram
	total   int64
	bounds  []int64
}

// NewJointHistogram creates an empty joint histogram using the given time
// bin bounds for both the estimate and the runtime dimension.
func NewJointHistogram(timeBounds []int64) *JointHistogram {
	return &JointHistogram{
		nodes:    make(map[int]int64),
		estimate: make(map[int]*Histogram),
		runtime:  make(map[int]map[int]*Histogram),
		bounds:   append([]int64(nil), timeBounds...),
	}
}

// Add records one job observation.
func (jh *JointHistogram) Add(nodes int, estimate, runtime int64) {
	if _, ok := jh.nodes[nodes]; !ok {
		jh.nodeOrder = append(jh.nodeOrder, nodes)
		sort.Ints(jh.nodeOrder)
		jh.estimate[nodes] = NewHistogram(jh.bounds)
		jh.runtime[nodes] = make(map[int]*Histogram)
	}
	jh.nodes[nodes]++
	jh.estimate[nodes].Add(estimate)
	eb := jh.estimate[nodes].binOf(estimate)
	rh, ok := jh.runtime[nodes][eb]
	if !ok {
		rh = NewHistogram(jh.bounds)
		jh.runtime[nodes][eb] = rh
	}
	rh.Add(runtime)
	jh.total++
}

// Total returns the number of observations.
func (jh *JointHistogram) Total() int64 { return jh.total }

// NodeCounts returns the distinct node counts observed, ascending.
func (jh *JointHistogram) NodeCounts() []int { return jh.nodeOrder }

// Sample draws (nodes, estimate, runtime) with runtime <= estimate
// enforced (a residual within-bin violation is clamped into the bin's
// feasible part) so generated jobs are valid under kill-at-limit
// semantics.
func (jh *JointHistogram) Sample(r *rand.Rand) (nodes int, estimate, runtime int64) {
	if jh.total == 0 {
		panic("stats: Sample from empty joint histogram")
	}
	pick := r.Int63n(jh.total)
	var run int64
	for _, n := range jh.nodeOrder {
		run += jh.nodes[n]
		if pick < run {
			nodes = n
			break
		}
	}
	estimate = jh.estimate[nodes].Sample(r)
	eb := jh.estimate[nodes].binOf(estimate)
	rh := jh.runtime[nodes][eb]
	runtime = rh.Sample(r)
	if runtime > estimate {
		// Same-bin violation: the runtime bin straddles the estimate.
		// Redraw uniformly from the feasible part of that bin.
		lo, _ := rh.BinBounds(rh.binOf(runtime))
		if lo+1 <= estimate {
			runtime = UniformInt(r, lo+1, estimate)
		} else {
			runtime = UniformInt(r, 1, estimate)
		}
	}
	return nodes, estimate, runtime
}
