package stats

import (
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
}

// Describe computes descriptive statistics. An empty sample yields the
// zero Summary.
func Describe(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	s.Median = Percentile(xs, 50)
	return s
}

// Percentile returns the p-th percentile (0..100) using linear
// interpolation between closest ranks. The input need not be sorted.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
