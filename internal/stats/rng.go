// Package stats provides the statistical substrate of the workload
// generators and the evaluation harness: seeded random sources,
// parametric distributions (Weibull, exponential, log-uniform),
// empirical binned distributions, nonhomogeneous Poisson arrival
// processes and descriptive statistics.
//
// Every randomized component takes an explicit *rand.Rand so that all
// experiments are reproducible bit-for-bit from a seed.
package stats

import "math/rand"

// NewRand returns a deterministic random source for the given seed.
// All workload generators and examples derive their randomness from it.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Split derives an independent deterministic source from a parent seed and
// a stream index, so multi-stream generators (arrivals, sizes, runtimes)
// can be varied independently.
func Split(seed int64, stream int64) *rand.Rand {
	// SplitMix64-style mixing keeps the derived seeds well separated even
	// for adjacent stream indices.
	z := uint64(seed) + uint64(stream)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z)))
}

// UniformInt returns an integer uniformly distributed in [lo, hi].
// It panics if hi < lo.
func UniformInt(r *rand.Rand, lo, hi int64) int64 {
	if hi < lo {
		panic("stats: UniformInt with hi < lo")
	}
	return lo + r.Int63n(hi-lo+1)
}

// UniformFloat returns a float uniformly distributed in [lo, hi).
func UniformFloat(r *rand.Rand, lo, hi float64) float64 {
	return lo + r.Float64()*(hi-lo)
}
