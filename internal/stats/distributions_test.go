package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUniformIntBounds(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 10000; i++ {
		v := UniformInt(r, 5, 9)
		if v < 5 || v > 9 {
			t.Fatalf("UniformInt out of range: %d", v)
		}
	}
	// Degenerate range.
	if v := UniformInt(r, 7, 7); v != 7 {
		t.Fatalf("UniformInt(7,7) = %d", v)
	}
}

func TestUniformIntPanicsOnInvertedRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for hi < lo")
		}
	}()
	UniformInt(NewRand(1), 10, 5)
}

func TestUniformIntCoversRange(t *testing.T) {
	r := NewRand(4)
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		seen[UniformInt(r, 0, 3)] = true
	}
	for v := int64(0); v <= 3; v++ {
		if !seen[v] {
			t.Errorf("value %d never sampled", v)
		}
	}
}

func TestUniformFloat(t *testing.T) {
	r := NewRand(5)
	for i := 0; i < 10000; i++ {
		v := UniformFloat(r, -2, 3)
		if v < -2 || v >= 3 {
			t.Fatalf("UniformFloat out of range: %v", v)
		}
	}
}

func TestLogUniformBoundsAndShape(t *testing.T) {
	r := NewRand(6)
	lo, hi := 10.0, 10000.0
	belowGeoMean := 0
	n := 50000
	geoMean := math.Sqrt(lo * hi)
	for i := 0; i < n; i++ {
		v := LogUniform(r, lo, hi)
		if v < lo || v > hi {
			t.Fatalf("LogUniform out of range: %v", v)
		}
		if v < geoMean {
			belowGeoMean++
		}
	}
	// Log-uniform: exactly half the mass below the geometric mean.
	frac := float64(belowGeoMean) / float64(n)
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("mass below geometric mean = %.3f, want ~0.5", frac)
	}
}

func TestLogUniformPanics(t *testing.T) {
	for _, c := range [][2]float64{{0, 1}, {-1, 1}, {5, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for lo=%v hi=%v", c[0], c[1])
				}
			}()
			LogUniform(NewRand(1), c[0], c[1])
		}()
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRand(7)
	var sum float64
	n := 100000
	for i := 0; i < n; i++ {
		sum += Exponential(r, 250)
	}
	mean := sum / float64(n)
	if math.Abs(mean-250)/250 > 0.02 {
		t.Errorf("exponential mean = %v, want ~250", mean)
	}
}

func TestDiscreteProbabilities(t *testing.T) {
	d := NewDiscrete([]int64{1, 2, 4}, []float64{1, 1, 2})
	if got := d.Prob(1); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("Prob(1) = %v", got)
	}
	if got := d.Prob(4); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Prob(4) = %v", got)
	}
	if got := d.Prob(99); got != 0 {
		t.Errorf("Prob(absent) = %v", got)
	}
	if d.Len() != 3 {
		t.Errorf("Len = %d", d.Len())
	}
}

func TestDiscreteSamplingMatchesWeights(t *testing.T) {
	d := NewDiscrete([]int64{10, 20, 30}, []float64{0.2, 0.3, 0.5})
	r := NewRand(8)
	counts := map[int64]int{}
	n := 100000
	for i := 0; i < n; i++ {
		counts[d.Sample(r)]++
	}
	for v, want := range map[int64]float64{10: 0.2, 20: 0.3, 30: 0.5} {
		got := float64(counts[v]) / float64(n)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("value %d frequency %.3f, want %.3f", v, got, want)
		}
	}
}

func TestDiscretePanics(t *testing.T) {
	cases := []struct {
		name    string
		values  []int64
		weights []float64
	}{
		{"empty", nil, nil},
		{"mismatch", []int64{1}, []float64{1, 2}},
		{"negative", []int64{1, 2}, []float64{1, -1}},
		{"all zero", []int64{1, 2}, []float64{0, 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			NewDiscrete(tc.values, tc.weights)
		})
	}
}

func TestDiscreteSampleOnlyReturnsValues(t *testing.T) {
	f := func(seed int64) bool {
		d := NewDiscrete([]int64{-5, 0, 7}, []float64{1, 2, 3})
		r := NewRand(seed)
		for i := 0; i < 100; i++ {
			switch d.Sample(r) {
			case -5, 0, 7:
			default:
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitIndependence(t *testing.T) {
	a := Split(42, 1)
	b := Split(42, 2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d identical draws from split streams", same)
	}
	// Determinism: same seed/stream → same sequence.
	c, d := Split(42, 1), Split(42, 1)
	for i := 0; i < 100; i++ {
		if c.Int63() != d.Int63() {
			t.Fatal("Split is not deterministic")
		}
	}
}
