package stats

import (
	"errors"
	"math"
	"math/rand"
)

// Weibull is a two-parameter Weibull distribution with shape K and scale
// Lambda. The paper fits a Weibull to the submission times of the CTC
// trace (Section 6.2); we use it for interarrival times of the
// probability-distribution workload.
type Weibull struct {
	K      float64 // shape, > 0
	Lambda float64 // scale, > 0
}

// Mean returns the distribution mean λ·Γ(1+1/k).
func (w Weibull) Mean() float64 {
	return w.Lambda * math.Gamma(1+1/w.K)
}

// Var returns the distribution variance.
func (w Weibull) Var() float64 {
	g1 := math.Gamma(1 + 1/w.K)
	g2 := math.Gamma(1 + 2/w.K)
	return w.Lambda * w.Lambda * (g2 - g1*g1)
}

// Sample draws one value by inverse-transform sampling.
func (w Weibull) Sample(r *rand.Rand) float64 {
	// 1-U is uniform in (0,1]; avoids log(0).
	u := 1 - r.Float64()
	return w.Lambda * math.Pow(-math.Log(u), 1/w.K)
}

// CDF returns P(X <= x).
func (w Weibull) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - math.Exp(-math.Pow(x/w.Lambda, w.K))
}

// ErrFitFailed is returned when the Weibull maximum-likelihood iteration
// does not converge or the input is degenerate.
var ErrFitFailed = errors.New("stats: weibull fit failed")

// FitWeibull estimates (K, Lambda) from positive samples by maximum
// likelihood. The shape equation
//
//	Σ x^k ln x / Σ x^k − 1/k − mean(ln x) = 0
//
// is solved by Newton iteration with a bisection fallback. Non-positive
// samples are rejected.
func FitWeibull(samples []float64) (Weibull, error) {
	if len(samples) < 2 {
		return Weibull{}, ErrFitFailed
	}
	var meanLog float64
	for _, x := range samples {
		if x <= 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return Weibull{}, ErrFitFailed
		}
		meanLog += math.Log(x)
	}
	meanLog /= float64(len(samples))

	// (Nearly) identical samples: the MLE shape diverges; report a very
	// peaked distribution at the common value.
	var varLog float64
	for _, x := range samples {
		d := math.Log(x) - meanLog
		varLog += d * d
	}
	varLog /= float64(len(samples))
	if varLog < 1e-12 {
		return Weibull{K: 1e3, Lambda: math.Exp(meanLog)}, nil
	}

	// g(k) = Σ x^k ln x / Σ x^k − 1/k − meanLog. g is increasing in k.
	g := func(k float64) float64 {
		var sxk, sxkl float64
		for _, x := range samples {
			xk := math.Pow(x, k)
			sxk += xk
			sxkl += xk * math.Log(x)
		}
		if sxk == 0 || math.IsInf(sxk, 1) {
			return math.NaN()
		}
		return sxkl/sxk - 1/k - meanLog
	}

	// Bracket the root.
	lo, hi := 1e-3, 1.0
	for g(hi) < 0 {
		hi *= 2
		if hi > 1e4 {
			return Weibull{}, ErrFitFailed
		}
	}
	if v := g(lo); math.IsNaN(v) || v > 0 {
		// All samples (nearly) identical: g(lo) > 0 means an extremely
		// peaked distribution; report a large shape.
		if v > 0 {
			return Weibull{K: 1e3, Lambda: math.Exp(meanLog)}, nil
		}
		return Weibull{}, ErrFitFailed
	}
	// Bisection: robust, and 60 iterations give full float64 precision.
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		v := g(mid)
		if math.IsNaN(v) {
			return Weibull{}, ErrFitFailed
		}
		if v < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	k := (lo + hi) / 2

	// λ = (mean of x^k)^(1/k).
	var sxk float64
	for _, x := range samples {
		sxk += math.Pow(x, k)
	}
	lambda := math.Pow(sxk/float64(len(samples)), 1/k)
	if lambda <= 0 || math.IsNaN(lambda) || math.IsInf(lambda, 0) {
		return Weibull{}, ErrFitFailed
	}
	return Weibull{K: k, Lambda: lambda}, nil
}
