package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeometricBounds(t *testing.T) {
	b := GeometricBounds(1, 2, 16)
	want := []int64{0, 1, 2, 4, 8, 16}
	if len(b) != len(want) {
		t.Fatalf("bounds = %v, want %v", b, want)
	}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", b, want)
		}
	}
}

func TestGeometricBoundsNonIntegerGamma(t *testing.T) {
	b := GeometricBounds(10, 1.3, 100)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not strictly ascending: %v", b)
		}
	}
	if b[len(b)-1] < 100 {
		t.Fatalf("bounds do not cover max: %v", b)
	}
}

func TestGeometricBoundsPanics(t *testing.T) {
	for _, c := range []struct {
		first, max int64
		gamma      float64
	}{
		{0, 10, 2}, {1, 10, 1}, {1, 10, 0.5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for first=%d gamma=%v", c.first, c.gamma)
				}
			}()
			GeometricBounds(c.first, c.gamma, c.max)
		}()
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram([]int64{0, 10, 100, 1000})
	// ]0,10], ]10,100], ]100,1000]
	h.Add(1)    // bin 0
	h.Add(10)   // bin 0 (upper bound inclusive)
	h.Add(11)   // bin 1
	h.Add(100)  // bin 1
	h.Add(500)  // bin 2
	h.Add(9999) // clamps to last bin
	h.Add(-5)   // clamps to first bin
	wantCounts := []int64{3, 2, 2}
	for i, w := range wantCounts {
		if h.Count(i) != w {
			t.Errorf("bin %d count = %d, want %d", i, h.Count(i), w)
		}
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Bins() != 3 {
		t.Errorf("Bins = %d", h.Bins())
	}
	lo, hi := h.BinBounds(1)
	if lo != 10 || hi != 100 {
		t.Errorf("BinBounds(1) = %d,%d", lo, hi)
	}
	if p := h.Prob(0); math.Abs(p-3.0/7.0) > 1e-12 {
		t.Errorf("Prob(0) = %v", p)
	}
}

func TestHistogramSampleRespectsBins(t *testing.T) {
	h := NewHistogram([]int64{0, 10, 100})
	for i := 0; i < 50; i++ {
		h.Add(5)  // bin 0
		h.Add(50) // bin 1
	}
	r := NewRand(9)
	lowCount := 0
	n := 20000
	for i := 0; i < n; i++ {
		v := h.Sample(r)
		if v < 1 || v > 100 {
			t.Fatalf("sample %d outside all bins", v)
		}
		if v <= 10 {
			lowCount++
		}
	}
	frac := float64(lowCount) / float64(n)
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("low-bin fraction = %.3f, want ~0.5", frac)
	}
}

func TestHistogramEmptySamplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic sampling empty histogram")
		}
	}()
	NewHistogram([]int64{0, 1}).Sample(NewRand(1))
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	for _, bounds := range [][]int64{{}, {1}, {1, 1}, {5, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for bounds %v", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram([]int64{0, 10, 100})
	h.Add(5)
	s := h.String()
	if !strings.Contains(s, "]0,10]=1") {
		t.Errorf("String = %q", s)
	}
}

func TestHistogramProbSumsToOne(t *testing.T) {
	f := func(vals []int16) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewHistogram(GeometricBounds(1, 2, 40000))
		for _, v := range vals {
			x := int64(v)
			if x < 0 {
				x = -x
			}
			h.Add(x + 1)
		}
		var sum float64
		for i := 0; i < h.Bins(); i++ {
			sum += h.Prob(i)
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJointHistogram(t *testing.T) {
	jh := NewJointHistogram(GeometricBounds(1, 2, 1024))
	jh.Add(4, 100, 50)
	jh.Add(4, 200, 150)
	jh.Add(16, 1000, 900)
	if jh.Total() != 3 {
		t.Fatalf("Total = %d", jh.Total())
	}
	nodes := jh.NodeCounts()
	if len(nodes) != 2 || nodes[0] != 4 || nodes[1] != 16 {
		t.Fatalf("NodeCounts = %v", nodes)
	}
	r := NewRand(10)
	for i := 0; i < 5000; i++ {
		n, est, run := jh.Sample(r)
		if n != 4 && n != 16 {
			t.Fatalf("sampled unknown node count %d", n)
		}
		if run > est {
			t.Fatalf("sampled runtime %d > estimate %d", run, est)
		}
		if est <= 0 || run <= 0 {
			t.Fatalf("non-positive sample est=%d run=%d", est, run)
		}
	}
}

func TestJointHistogramEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewJointHistogram(GeometricBounds(1, 2, 4)).Sample(NewRand(1))
}
