package stats

import (
	"math"
	"sort"
)

// KSStatistic returns the two-sample Kolmogorov–Smirnov statistic: the
// maximum absolute difference between the empirical CDFs of a and b.
// The paper's Section 6.2 requires that "conformity with future real job
// data is essential and must be verified" — this is the verification
// instrument used by the workload-model tests.
func KSStatistic(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return math.NaN()
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	var (
		i, j int
		d    float64
	)
	for i < len(as) && j < len(bs) {
		// Advance both CDFs past the smaller value, consuming ties on
		// both sides before comparing (ties otherwise inflate D).
		x := as[i]
		if bs[j] < x {
			x = bs[j]
		}
		for i < len(as) && as[i] <= x {
			i++
		}
		for j < len(bs) && bs[j] <= x {
			j++
		}
		fa := float64(i) / float64(len(as))
		fb := float64(j) / float64(len(bs))
		if diff := math.Abs(fa - fb); diff > d {
			d = diff
		}
	}
	return d
}

// KSCriticalValue returns the approximate critical D for rejecting the
// null hypothesis (same distribution) at significance alpha in a
// two-sample test with sizes n and m:
//
//	c(α)·sqrt((n+m)/(n·m)),  c(α) = sqrt(-ln(α/2)/2).
func KSCriticalValue(n, m int, alpha float64) float64 {
	if n <= 0 || m <= 0 || alpha <= 0 || alpha >= 1 {
		return math.NaN()
	}
	c := math.Sqrt(-math.Log(alpha/2) / 2)
	return c * math.Sqrt(float64(n+m)/float64(n*m))
}

// KSSameDistribution reports whether the two samples pass the KS test at
// significance alpha (true = cannot reject that they share a
// distribution).
func KSSameDistribution(a, b []float64, alpha float64) bool {
	d := KSStatistic(a, b)
	if math.IsNaN(d) {
		return false
	}
	return d <= KSCriticalValue(len(a), len(b), alpha)
}

// KSAgainstCDF returns the one-sample KS statistic of a sample against a
// theoretical CDF — used to verify the Weibull fit of the submission
// process.
func KSAgainstCDF(sample []float64, cdf func(float64) float64) float64 {
	if len(sample) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	n := float64(len(s))
	var d float64
	for i, x := range s {
		f := cdf(x)
		lo := float64(i) / n
		hi := float64(i+1) / n
		if diff := math.Abs(f - lo); diff > d {
			d = diff
		}
		if diff := math.Abs(f - hi); diff > d {
			d = diff
		}
	}
	return d
}
