package cli

import (
	"fmt"
	"os"

	"jobsched/internal/job"
	"jobsched/internal/sim"
	"jobsched/internal/trace"
	"jobsched/internal/workload"
)

// StreamSource is a sim.Source with the command-line conveniences the
// streaming commands share: the width filter applied on the fly (the
// paper's preprocessing, Section 6.1) and a removed-job count for the
// final report.
type StreamSource struct {
	src     sim.Source
	max     int
	removed int
	closer  *os.File
}

// Next implements sim.Source, skipping jobs wider than the machine.
func (s *StreamSource) Next() (*job.Job, error) {
	for {
		j, err := s.src.Next()
		if err != nil || j == nil {
			return j, err
		}
		if s.max > 0 && j.Nodes > s.max {
			s.removed++
			continue
		}
		return j, nil
	}
}

// Removed returns the number of jobs skipped as wider than the machine.
func (s *StreamSource) Removed() int { return s.removed }

// Close releases the underlying file, if any.
func (s *StreamSource) Close() error {
	if s.closer == nil {
		return nil
	}
	return s.closer.Close()
}

// OpenSource builds a streaming arrival source for a command. Supported
// kinds: "swf" (incremental trace.Scanner over opt.Path — the file must
// be submit-sorted, which archive traces are) and "stream" (the
// calibrated synthetic generator: opt.Jobs jobs at the target offered
// load on opt.MachineNodes nodes). Call Close when done.
func OpenSource(opt LoadOptions, load float64) (*StreamSource, error) {
	if opt.MachineNodes <= 0 {
		return nil, fmt.Errorf("cli: machine nodes must be positive")
	}
	switch opt.Kind {
	case "swf":
		if opt.Path == "" {
			return nil, fmt.Errorf("cli: swf workload needs a file path")
		}
		f, err := os.Open(opt.Path)
		if err != nil {
			return nil, err
		}
		return &StreamSource{
			src:    trace.NewScanner(f, trace.ReadOptions{}),
			max:    opt.MachineNodes,
			closer: f,
		}, nil
	case "stream":
		if opt.Jobs <= 0 {
			return nil, fmt.Errorf("cli: stream workload needs a job count")
		}
		st, err := workload.NewStreamer(workload.CalibratedStreamConfig(
			opt.Jobs, opt.MachineNodes, load, opt.Seed))
		if err != nil {
			return nil, err
		}
		return &StreamSource{src: st, max: opt.MachineNodes}, nil
	default:
		return nil, fmt.Errorf("cli: workload kind %q has no streaming source (use swf or stream)", opt.Kind)
	}
}
