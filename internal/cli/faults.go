package cli

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"jobsched/internal/faults"
	"jobsched/internal/sim"
)

// FaultOptions collects the failure-injection flags shared by the
// simulate and evaluate commands. The zero value means "no faults".
type FaultOptions struct {
	// MTBF/MTTR are the stochastic node-failure process parameters in
	// seconds (MTBF 0 disables the stochastic process).
	MTBF, MTTR float64
	// FailShape/RepairShape are the Weibull shape parameters (0 or 1 =
	// exponential).
	FailShape, RepairShape float64
	// FailNodes is the number of nodes each stochastic failure takes.
	FailNodes int
	// MaxDownFrac caps the concurrently-down fraction of the machine.
	MaxDownFrac float64
	// Seed drives the failure process (independent of the workload seed).
	Seed int64
	// Maintenance holds "at:dur:nodes[:every[:count]]" specs, comma
	// separated. Maintenance windows are announced to the schedulers.
	Maintenance string
	// Retries bounds resubmissions per job (0 = unlimited).
	Retries int
	// Backoff/BackoffCap configure exponential resubmit backoff seconds
	// (Backoff 0 = immediate resubmit, the historical behavior).
	Backoff, BackoffCap int64
}

// AddFaultFlags registers the failure-injection flags on fs and returns
// the bound options.
func AddFaultFlags(fs *flag.FlagSet) *FaultOptions {
	o := &FaultOptions{}
	fs.Float64Var(&o.MTBF, "mtbf", 0, "mean time between node failures in seconds (0 = no stochastic failures)")
	fs.Float64Var(&o.MTTR, "mttr", 0, "mean time to repair in seconds (required with -mtbf)")
	fs.Float64Var(&o.FailShape, "failshape", 0, "Weibull shape of the failure process (0 or 1 = exponential)")
	fs.Float64Var(&o.RepairShape, "repairshape", 0, "Weibull shape of the repair process (0 or 1 = exponential)")
	fs.IntVar(&o.FailNodes, "failnodes", 1, "nodes taken down by each stochastic failure")
	fs.Float64Var(&o.MaxDownFrac, "maxdownfrac", 0, "cap on the concurrently-down machine fraction (0 = default 0.5)")
	fs.Int64Var(&o.Seed, "failseed", 1, "failure-process seed (independent of the workload seed)")
	fs.StringVar(&o.Maintenance, "maint", "", "announced maintenance windows, comma-separated at:dur:nodes[:every[:count]]")
	fs.IntVar(&o.Retries, "retries", 0, "max resubmits per failure-aborted job (0 = unlimited)")
	fs.Int64Var(&o.Backoff, "backoff", 0, "base resubmit backoff in seconds (0 = immediate resubmit)")
	fs.Int64Var(&o.BackoffCap, "backoffcap", 0, "resubmit backoff ceiling in seconds (0 = uncapped)")
	return o
}

// Enabled reports whether any fault injection was requested.
func (o *FaultOptions) Enabled() bool {
	return o.MTBF > 0 || o.Maintenance != ""
}

// Resubmit returns the configured resubmit policy.
func (o *FaultOptions) Resubmit() sim.ResubmitPolicy {
	return sim.ResubmitPolicy{
		MaxResubmits: o.Retries,
		BackoffBase:  o.Backoff,
		BackoffCap:   o.BackoffCap,
	}
}

// Plan compiles the options into a validated failure schedule over
// [0, horizon) for a machine of the given size.
func (o *FaultOptions) Plan(machineNodes int, horizon int64) (faults.Plan, error) {
	maint, err := ParseMaintenance(o.Maintenance)
	if err != nil {
		return faults.Plan{}, err
	}
	return faults.Generate(faults.Config{
		MachineNodes:    machineNodes,
		Horizon:         horizon,
		Seed:            o.Seed,
		MTBF:            o.MTBF,
		MTTR:            o.MTTR,
		FailShape:       o.FailShape,
		RepairShape:     o.RepairShape,
		NodesPerFailure: o.FailNodes,
		MaxDownFraction: o.MaxDownFrac,
		Maintenance:     maint,
	})
}

// ParseMaintenance decodes comma-separated "at:dur:nodes[:every[:count]]"
// window specs ("" parses to nil).
func ParseMaintenance(spec string) ([]faults.Window, error) {
	if spec == "" {
		return nil, nil
	}
	var out []faults.Window
	for _, entry := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(entry), ":")
		if len(fields) < 3 || len(fields) > 5 {
			return nil, fmt.Errorf("cli: maintenance window %q: want at:dur:nodes[:every[:count]]", entry)
		}
		nums := make([]int64, len(fields))
		for i, f := range fields {
			n, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("cli: maintenance window %q: %w", entry, err)
			}
			nums[i] = n
		}
		w := faults.Window{At: nums[0], Duration: nums[1], Nodes: int(nums[2])}
		if len(nums) >= 4 {
			w.Every = nums[3]
		}
		if len(nums) == 5 {
			w.Count = int(nums[4])
		}
		out = append(out, w)
	}
	return out, nil
}
