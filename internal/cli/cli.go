// Package cli holds the shared plumbing of the command-line tools:
// workload loading by name (generated or SWF), with the paper's
// preprocessing (width filtering) applied consistently.
package cli

import (
	"fmt"
	"io"
	"os"

	"jobsched/internal/job"
	"jobsched/internal/trace"
	"jobsched/internal/workload"
)

// LoadOptions selects a workload for a command.
type LoadOptions struct {
	// Kind is one of "ctc", "prob", "random", "feitelson", or "swf".
	Kind string
	// Path is the SWF input file (Kind == "swf").
	Path string
	// Jobs is the number of jobs for generated workloads.
	Jobs int
	// MachineNodes filters jobs wider than the machine (Section 6.1).
	MachineNodes int
	// Seed drives generation.
	Seed int64
}

// Load produces the workload. The returned count is the number of jobs
// deleted as wider than the machine.
func Load(opt LoadOptions) ([]*job.Job, int, error) {
	if opt.MachineNodes <= 0 {
		return nil, 0, fmt.Errorf("cli: machine nodes must be positive")
	}
	switch opt.Kind {
	case "ctc":
		if opt.Jobs <= 0 {
			return nil, 0, fmt.Errorf("cli: ctc workload needs a job count")
		}
		cfg := workload.DefaultCTCConfig()
		cfg.SpanSeconds = cfg.SpanSeconds * int64(opt.Jobs) / int64(cfg.Jobs)
		cfg.Jobs = opt.Jobs
		cfg.Seed = opt.Seed
		jobs, removed := trace.FilterMaxNodes(workload.CTC(cfg), opt.MachineNodes)
		return jobs, removed, nil
	case "prob":
		if opt.Jobs <= 0 {
			return nil, 0, fmt.Errorf("cli: prob workload needs a job count")
		}
		cfg := workload.DefaultCTCConfig()
		cfg.SpanSeconds = cfg.SpanSeconds * int64(opt.Jobs) / int64(cfg.Jobs)
		cfg.Jobs = opt.Jobs
		cfg.Seed = opt.Seed
		src, removed := trace.FilterMaxNodes(workload.CTC(cfg), opt.MachineNodes)
		jobs, err := workload.Probabilistic(src, opt.Jobs, opt.Seed+1)
		return jobs, removed, err
	case "random":
		if opt.Jobs <= 0 {
			return nil, 0, fmt.Errorf("cli: random workload needs a job count")
		}
		cfg := workload.DefaultRandomizedConfig()
		cfg.Jobs = opt.Jobs
		cfg.MaxNodes = opt.MachineNodes
		cfg.Seed = opt.Seed
		return workload.Randomized(cfg), 0, nil
	case "feitelson":
		if opt.Jobs <= 0 {
			return nil, 0, fmt.Errorf("cli: feitelson workload needs a job count")
		}
		cfg := workload.DefaultFeitelsonConfig()
		cfg.Jobs = opt.Jobs
		cfg.MaxNodes = opt.MachineNodes
		cfg.Seed = opt.Seed
		return workload.Feitelson(cfg), 0, nil
	case "swf":
		if opt.Path == "" {
			return nil, 0, fmt.Errorf("cli: swf workload needs a file path")
		}
		f, err := os.Open(opt.Path)
		if err != nil {
			return nil, 0, err
		}
		defer f.Close()
		return loadSWF(f, opt.MachineNodes)
	default:
		return nil, 0, fmt.Errorf("cli: unknown workload kind %q", opt.Kind)
	}
}

// loadSWF parses an SWF stream and applies the width filter.
func loadSWF(r io.Reader, machineNodes int) ([]*job.Job, int, error) {
	_, jobs, err := trace.Read(r)
	if err != nil {
		return nil, 0, err
	}
	filtered, removed := trace.FilterMaxNodes(jobs, machineNodes)
	return filtered, removed, nil
}
