package cli

import (
	"os"
	"path/filepath"
	"testing"

	"jobsched/internal/trace"
	"jobsched/internal/workload"
)

func TestLoadGeneratedKinds(t *testing.T) {
	for _, kind := range []string{"ctc", "prob", "random", "feitelson"} {
		jobs, _, err := Load(LoadOptions{Kind: kind, Jobs: 500, MachineNodes: 256, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(jobs) == 0 {
			t.Fatalf("%s: no jobs", kind)
		}
		for _, j := range jobs {
			if j.Nodes > 256 {
				t.Fatalf("%s: job wider than machine", kind)
			}
		}
	}
}

func TestLoadCTCFiltersWideJobs(t *testing.T) {
	jobs, removed, err := Load(LoadOptions{Kind: "ctc", Jobs: 20000, MachineNodes: 256, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Error("no wide jobs removed from the CTC model at this size")
	}
	if len(jobs)+removed != 20000 {
		t.Errorf("jobs %d + removed %d != 20000", len(jobs), removed)
	}
}

func TestLoadSWFRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.swf")
	cfg := workload.DefaultRandomizedConfig()
	cfg.Jobs = 200
	src := workload.Randomized(cfg)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(f, trace.Header{Computer: "test"}, src); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	jobs, _, err := Load(LoadOptions{Kind: "swf", Path: path, MachineNodes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 200 {
		t.Fatalf("loaded %d jobs", len(jobs))
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []LoadOptions{
		{Kind: "ctc", Jobs: 100},                             // no machine
		{Kind: "nope", Jobs: 100, MachineNodes: 4},           // unknown kind
		{Kind: "ctc", MachineNodes: 4},                       // no jobs
		{Kind: "prob", MachineNodes: 4},                      // no jobs
		{Kind: "random", MachineNodes: 4},                    // no jobs
		{Kind: "feitelson", MachineNodes: 4},                 // no jobs
		{Kind: "swf", MachineNodes: 4},                       // no path
		{Kind: "swf", Path: "/nonexistent", MachineNodes: 4}, // missing file
	}
	for _, c := range cases {
		if _, _, err := Load(c); err == nil {
			t.Errorf("no error for %+v", c)
		}
	}
}
