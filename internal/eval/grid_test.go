package eval

import (
	"bytes"
	"strings"
	"testing"

	"jobsched/internal/job"
	"jobsched/internal/sched"
	"jobsched/internal/sim"
	"jobsched/internal/workload"
)

var mockJob = job.Job{ID: 1, Nodes: 4, Estimate: 100, Runtime: 50}

func smallGrid(t *testing.T, c Case, opt Options) *Grid {
	t.Helper()
	cfg := workload.DefaultRandomizedConfig()
	cfg.Jobs = 400
	cfg.Seed = 42
	jobs := workload.Randomized(cfg)
	// Every test grid re-validates its schedules (capacity, submission,
	// kill-at-estimate — sim.Schedule.Validate): an optimized profile
	// must not be able to produce invalid-but-plausible schedules.
	opt.Validate = true
	g, err := Run("test", sim.Machine{Nodes: 256}, jobs, c, opt)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRunGridHasAllCells(t *testing.T) {
	g := smallGrid(t, Unweighted, Options{Parallel: true, Validate: true})
	// 4 orders × 3 starts + G&G list = 13 cells.
	if len(g.Cells) != 13 {
		t.Fatalf("got %d cells, want 13", len(g.Cells))
	}
	for _, o := range sched.GridOrders() {
		starts := sched.GridStarts()
		if o == sched.OrderGG {
			starts = []sched.StartName{sched.StartList}
		}
		for _, s := range starts {
			if g.Cell(o, s) == nil {
				t.Errorf("missing cell %s/%s", o, s)
			}
		}
	}
	if g.Cell(sched.OrderGG, sched.StartEASY) != nil {
		t.Error("G&G must not have an EASY cell")
	}
}

func TestRunGridReferenceIsFCFSEASY(t *testing.T) {
	g := smallGrid(t, Unweighted, Options{Parallel: true})
	if g.Ref == nil {
		t.Fatal("no reference cell")
	}
	if g.Ref.Order != sched.OrderFCFS || g.Ref.Start != sched.StartEASY {
		t.Fatalf("reference = %s/%s", g.Ref.Order, g.Ref.Start)
	}
	if g.Ref.Pct != 0 {
		t.Errorf("reference pct = %v, want 0", g.Ref.Pct)
	}
}

func TestRunGridPctConsistency(t *testing.T) {
	g := smallGrid(t, Weighted, Options{Parallel: true})
	for _, c := range g.Cells {
		want := (c.Value - g.Ref.Value) / g.Ref.Value * 100
		if diff := c.Pct - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s/%s pct = %v, want %v", c.Order, c.Start, c.Pct, want)
		}
	}
}

func TestRunGridSerialEqualsParallel(t *testing.T) {
	a := smallGrid(t, Unweighted, Options{Parallel: true})
	b := smallGrid(t, Unweighted, Options{Parallel: false})
	for i := range a.Cells {
		ca := a.Cells[i]
		cb := b.Cell(ca.Order, ca.Start)
		if cb == nil || ca.Value != cb.Value {
			t.Fatalf("%s/%s differs between serial and parallel runs", ca.Order, ca.Start)
		}
	}
}

func TestCaseAccessors(t *testing.T) {
	if Unweighted.String() != "Unweighted" || Weighted.String() != "Weighted" {
		t.Error("case names")
	}
	if Unweighted.Metric().Name() != "average response time" {
		t.Error("unweighted metric")
	}
	if Weighted.Metric().Name() != "average weighted response time" {
		t.Error("weighted metric")
	}
	mj := mockJob // copy to keep the package-level value pristine
	j := &mj
	if Unweighted.WeightFunc()(j) != 1 {
		t.Error("unweighted weight")
	}
	if Weighted.WeightFunc()(j) != j.EstimatedArea() {
		t.Error("weighted weight")
	}
}

func TestRenderContainsAllRows(t *testing.T) {
	g := smallGrid(t, Unweighted, Options{Parallel: true})
	var buf bytes.Buffer
	if err := g.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"FCFS", "PSRS", "SMART-FFIA", "SMART-NFIW",
		"Garey&Graham", "EASY-Backfilling", "0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderComputeTime(t *testing.T) {
	g := smallGrid(t, Unweighted, Options{MeasureCPU: true})
	var buf bytes.Buffer
	if err := g.RenderComputeTime(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"FCFS", "PSRS", "SMART", "Garey&Graham"} {
		if !strings.Contains(out, want) {
			t.Errorf("compute-time table missing %q:\n%s", want, out)
		}
	}
}

func TestRenderComputeTimeWithoutMeasurementFails(t *testing.T) {
	g := smallGrid(t, Unweighted, Options{Parallel: true})
	var buf bytes.Buffer
	if err := g.RenderComputeTime(&buf); err == nil {
		t.Error("missing measurement not reported")
	}
}

func TestCSVExport(t *testing.T) {
	g := smallGrid(t, Unweighted, Options{Parallel: true})
	var buf bytes.Buffer
	if err := g.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(g.Cells) {
		t.Fatalf("%d CSV lines, want %d", len(lines), 1+len(g.Cells))
	}
	if !strings.HasPrefix(lines[0], "order,start,") {
		t.Errorf("header = %q", lines[0])
	}
}

func TestFmtSci(t *testing.T) {
	if got := fmtSci(4.91e6); got != "4.91E+06" {
		t.Errorf("fmtSci = %q", got)
	}
}

func TestFmtPct(t *testing.T) {
	if got := fmtPct(12.3456, false); got != "+12.3%" {
		t.Errorf("fmtPct = %q", got)
	}
	if got := fmtPct(-5, false); got != "-5.0%" {
		t.Errorf("fmtPct = %q", got)
	}
	if got := fmtPct(99, true); got != "0%" {
		t.Errorf("reference fmtPct = %q", got)
	}
}
