package eval

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Regression: a failed merge must leave an existing journal at dst
// untouched. MergeJournals used to open dst with truncation before
// reading could fail, so merging a corrupt source destroyed the good
// journal it was meant to replace. The merge now writes a temp file and
// renames it over dst only on success.
func TestMergeJournalsFailureLeavesDstIntact(t *testing.T) {
	dir := t.TempDir()

	dst := filepath.Join(dir, "merged.jsonl")
	j, err := OpenJournal(dst, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record("precious", Unweighted, Cell{Order: "FCFS", Start: "EASY", Value: 7}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}

	// A source whose record parses but carries an unknown case name: the
	// merge fails only after it has started writing output.
	bad := filepath.Join(dir, "bad.jsonl")
	line := `{"grid":"g","case":"no-such-case","order":"FCFS","start":"EASY","value":1}` + "\n"
	if err := os.WriteFile(bad, []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}

	err = MergeJournals(dst, bad)
	if err == nil || !strings.Contains(err.Error(), "unknown case") {
		t.Fatalf("merge of corrupt source: got %v, want unknown-case error", err)
	}
	after, readErr := os.ReadFile(dst)
	if readErr != nil {
		t.Fatalf("dst journal gone after failed merge: %v", readErr)
	}
	if string(after) != string(before) {
		t.Fatalf("failed merge rewrote dst:\nbefore: %q\nafter:  %q", before, after)
	}

	// No temp litter left behind.
	matches, err := filepath.Glob(dst + "*.tmp")
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Errorf("failed merge left temp files: %v", matches)
	}
}

// A successful merge replaces dst atomically and the result is a normal
// resumable journal.
func TestMergeJournalsReplacesDst(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src.jsonl")
	j, err := OpenJournal(src, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record("g", Weighted, Cell{Order: "PSRS", Start: "LIST", Value: 3}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	dst := filepath.Join(dir, "out.jsonl")
	if err := os.WriteFile(dst, []byte("stale content, not even a journal\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := MergeJournals(dst, src); err != nil {
		t.Fatal(err)
	}
	merged, err := OpenJournal(dst, true)
	if err != nil {
		t.Fatal(err)
	}
	defer merged.Close()
	if _, ok := merged.Lookup("g", Weighted, "PSRS", "LIST"); !ok {
		t.Error("merged journal lost the source cell")
	}
}
