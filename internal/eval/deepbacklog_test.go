package eval

import (
	"runtime"
	"strings"
	"testing"

	"jobsched/internal/job"
	"jobsched/internal/profile"
	"jobsched/internal/sched"
	"jobsched/internal/sim"
)

// deepBacklogJobs builds a deterministic workload whose whole job
// population is submitted at t=0, so the waiting queue is n deep from
// the first scheduling pass. Runtimes are uniform (completions cluster
// into few distinct instants, keeping the pass count — and this test's
// wall clock, including under -race — bounded) while widths mix 1–8-node
// jobs with periodic machine-wide blockers, so conservative and EASY
// backfilling both make nontrivial reservation decisions at full depth.
func deepBacklogJobs(n int) []*job.Job {
	jobs := make([]*job.Job, n)
	for i := range jobs {
		w := 1 + (i*7)%8
		if i%199 == 198 {
			w = 256 // head blocker: forces reservations and backfill
		}
		jobs[i] = &job.Job{
			ID:       job.ID(i),
			Submit:   0,
			Nodes:    w,
			Runtime:  60,
			Estimate: 60 + int64(i%4)*30,
		}
	}
	return jobs
}

// TestDeepBacklogDeterminism is the 100k-queue gate for the batched
// scheduling passes: over a backlog at least 100_000 jobs deep, the
// rendered evaluation tables must be byte-identical across worker-pool
// sizes (1 vs GOMAXPROCS) and across profile backends (the O(log S)
// tree vs the brute-force reference oracle). It runs under -race in the
// tier-1 race-focus step, so the pass buffers and scratch profiles the
// batch path reuses are also checked for cross-goroutine sharing.
func TestDeepBacklogDeterminism(t *testing.T) {
	const n = 110_000
	jobs := deepBacklogJobs(n)
	m := sim.Machine{Nodes: 256}

	render := func(workers int, factory sched.ProfileFactory) string {
		t.Helper()
		g, err := Run("deep", m, jobs, Unweighted, Options{
			Parallel:         true,
			Workers:          workers,
			MaxBackfillDepth: 4,
			Orders:           []sched.OrderName{sched.OrderFCFS},
			Starts:           []sched.StartName{sched.StartConservative, sched.StartEASY},
			ProfileFactory:   factory,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range g.Cells {
			c := &g.Cells[i]
			if c.MaxQueue < 100_000 {
				t.Fatalf("%s/%s: backlog only reached %d jobs, want >= 100000",
					c.Order, c.Start, c.MaxQueue)
			}
		}
		var sb strings.Builder
		if err := g.Render(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}

	refFactory := func(nodes int, from int64) profile.Kernel {
		return profile.NewReference(nodes, from)
	}
	want := render(1, nil)
	for _, v := range []struct {
		name    string
		workers int
		factory sched.ProfileFactory
	}{
		{"workers=N tree", runtime.GOMAXPROCS(0), nil},
		{"workers=N reference", runtime.GOMAXPROCS(0), refFactory},
	} {
		if got := render(v.workers, v.factory); got != want {
			t.Errorf("tables diverged for %s:\n--- workers=1 tree\n%s\n--- %s\n%s",
				v.name, want, v.name, got)
		}
	}
}
