package eval

import (
	"testing"

	"jobsched/internal/sim"
	"jobsched/internal/workload"
)

// TestGridDeterminism: two grid runs over the same workload must agree
// cell by cell — the foundation of the paper's comparative methodology
// ("it is possible to compare different schedules if the same objective
// function and the same set of jobs is used").
func TestGridDeterminism(t *testing.T) {
	cfg := workload.DefaultRandomizedConfig()
	cfg.Jobs = 300
	cfg.Seed = 77
	jobs := workload.Randomized(cfg)
	run := func() *Grid {
		g, err := Run("det", sim.Machine{Nodes: 256}, jobs, Unweighted,
			Options{Parallel: true, Validate: true})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	a, b := run(), run()
	for i := range a.Cells {
		ca := a.Cells[i]
		cb := b.Cell(ca.Order, ca.Start)
		if cb == nil || ca.Value != cb.Value || ca.Makespan != cb.Makespan {
			t.Fatalf("%s/%s nondeterministic: %v vs %v", ca.Order, ca.Start, ca.Value, cb)
		}
	}
}

// TestGridLowerBoundHolds: the theoretical bound must sit below every
// cell for both cases.
func TestGridLowerBoundHolds(t *testing.T) {
	cfg := workload.DefaultRandomizedConfig()
	cfg.Jobs = 300
	cfg.Seed = 78
	jobs := workload.Randomized(cfg)
	for _, c := range []Case{Unweighted, Weighted} {
		g, err := Run("bound", sim.Machine{Nodes: 256}, jobs, c,
			Options{Parallel: true})
		if err != nil {
			t.Fatal(err)
		}
		if g.LowerBound <= 0 {
			t.Fatalf("%s: no lower bound computed", c)
		}
		for _, cell := range g.Cells {
			if cell.Value < g.LowerBound {
				t.Errorf("%s: %s/%s value %.4g below bound %.4g",
					c, cell.Order, cell.Start, cell.Value, g.LowerBound)
			}
		}
	}
}
