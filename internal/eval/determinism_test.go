package eval

import (
	"runtime"
	"strings"
	"testing"

	"jobsched/internal/sim"
	"jobsched/internal/workload"
)

// TestGridDeterminism: two grid runs over the same workload must agree
// cell by cell — the foundation of the paper's comparative methodology
// ("it is possible to compare different schedules if the same objective
// function and the same set of jobs is used").
func TestGridDeterminism(t *testing.T) {
	cfg := workload.DefaultRandomizedConfig()
	cfg.Jobs = 300
	cfg.Seed = 77
	jobs := workload.Randomized(cfg)
	run := func() *Grid {
		g, err := Run("det", sim.Machine{Nodes: 256}, jobs, Unweighted,
			Options{Parallel: true, Validate: true})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	a, b := run(), run()
	for i := range a.Cells {
		ca := a.Cells[i]
		cb := b.Cell(ca.Order, ca.Start)
		if cb == nil || ca.Value != cb.Value || ca.Makespan != cb.Makespan {
			t.Fatalf("%s/%s nondeterministic: %v vs %v", ca.Order, ca.Start, ca.Value, cb)
		}
	}
}

// TestGridDeterminismAcrossWorkers: the rendered tables must be
// byte-identical whatever the worker-pool size — cells only read the
// shared workload through deep copies and write disjoint result slots, so
// scheduling decisions cannot depend on execution interleaving. Pool
// sizes 1, 4 and GOMAXPROCS cover serial, partially overlapped and fully
// loaded execution.
func TestGridDeterminismAcrossWorkers(t *testing.T) {
	cfg := workload.DefaultRandomizedConfig()
	cfg.Jobs = 300
	cfg.Seed = 77
	jobs := workload.Randomized(cfg)
	render := func(workers int) string {
		t.Helper()
		var sb strings.Builder
		for _, c := range []Case{Unweighted, Weighted} {
			g, err := Run("workers", sim.Machine{Nodes: 256}, jobs, c,
				Options{Parallel: true, Workers: workers, Validate: true})
			if err != nil {
				t.Fatal(err)
			}
			if err := g.Render(&sb); err != nil {
				t.Fatal(err)
			}
		}
		return sb.String()
	}
	want := render(1)
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		if got := render(workers); got != want {
			t.Errorf("tables differ between 1 and %d workers:\n--- workers=1\n%s\n--- workers=%d\n%s",
				workers, want, workers, got)
		}
	}
}

// TestGridLowerBoundHolds: the theoretical bound must sit below every
// cell for both cases.
func TestGridLowerBoundHolds(t *testing.T) {
	cfg := workload.DefaultRandomizedConfig()
	cfg.Jobs = 300
	cfg.Seed = 78
	jobs := workload.Randomized(cfg)
	for _, c := range []Case{Unweighted, Weighted} {
		g, err := Run("bound", sim.Machine{Nodes: 256}, jobs, c,
			Options{Parallel: true, Validate: true})
		if err != nil {
			t.Fatal(err)
		}
		if g.LowerBound <= 0 {
			t.Fatalf("%s: no lower bound computed", c)
		}
		for _, cell := range g.Cells {
			if cell.Value < g.LowerBound {
				t.Errorf("%s: %s/%s value %.4g below bound %.4g",
					c, cell.Order, cell.Start, cell.Value, g.LowerBound)
			}
		}
	}
}
