package eval

import (
	"math"

	"jobsched/internal/job"
	"jobsched/internal/sim"
)

// Fingerprint is an incremental FNV-1a 64 hash over everything that
// determines the cell values of an evaluation run: the workload, the
// machine, and the value-affecting options. Journals are stamped with
// the sum so a -resume against a journal recorded for a different
// evaluation is refused instead of silently mixing stale cells into
// fresh tables (the cells are keyed only by grid/case/policy names,
// which do not change when the workload or the failure plan does).
type Fingerprint struct {
	h uint64
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// NewFingerprint returns an empty fingerprint.
func NewFingerprint() *Fingerprint {
	return &Fingerprint{h: fnvOffset64}
}

func (f *Fingerprint) byte(b byte) {
	f.h ^= uint64(b)
	f.h *= fnvPrime64
}

// String folds a length-prefixed string into the hash (the prefix keeps
// concatenated fields unambiguous).
func (f *Fingerprint) String(s string) {
	f.Int(int64(len(s)))
	for i := 0; i < len(s); i++ {
		f.byte(s[i])
	}
}

// Int folds an integer into the hash.
func (f *Fingerprint) Int(v int64) {
	for i := 0; i < 8; i++ {
		f.byte(byte(v >> (8 * i)))
	}
}

// Bool folds a flag into the hash.
func (f *Fingerprint) Bool(b bool) {
	if b {
		f.byte(1)
	} else {
		f.byte(0)
	}
}

// Float folds a float's exact bits into the hash.
func (f *Fingerprint) Float(v float64) {
	f.Int(int64(math.Float64bits(v)))
}

// Jobs folds the scheduling-relevant fields of a workload into the
// hash, in slice order.
func (f *Fingerprint) Jobs(jobs []*job.Job) {
	f.Int(int64(len(jobs)))
	for _, j := range jobs {
		f.Int(int64(j.ID))
		f.Int(j.Submit)
		f.Int(j.Runtime)
		f.Int(j.Estimate)
		f.Int(int64(j.Nodes))
		f.String(j.User)
	}
}

// Machine folds the machine model into the hash.
func (f *Fingerprint) Machine(m sim.Machine) {
	f.Int(int64(m.Nodes))
}

// Options folds the value-affecting grid options into the hash: grid
// shape, scheduler configuration, and the fault plan. Runtime knobs
// that cannot change any cell value (Parallel, Workers, KeepGoing,
// CellTimeout, Interrupt, Journal, Hooks, Validate, sharding) are
// deliberately excluded, so a sharded or resumed run fingerprints the
// same as a single-process one.
func (f *Fingerprint) Options(opt Options) {
	for _, o := range opt.Orders {
		f.String(string(o))
	}
	for _, s := range opt.Starts {
		f.String(string(s))
	}
	f.Int(int64(opt.MaxBackfillDepth))
	f.Bool(opt.FastConservative)
	f.Bool(opt.MeasureCPU)
	f.Int(int64(len(opt.Failures)))
	for _, fl := range opt.Failures {
		f.Int(fl.At)
		f.Int(int64(fl.Nodes))
		f.Int(fl.Duration)
	}
	f.Int(int64(len(opt.Announced)))
	for _, fl := range opt.Announced {
		f.Int(fl.At)
		f.Int(int64(fl.Nodes))
		f.Int(fl.Duration)
	}
	f.Int(int64(opt.Resubmit.MaxResubmits))
	f.Int(opt.Resubmit.BackoffBase)
	f.Int(opt.Resubmit.BackoffFactor)
	f.Int(opt.Resubmit.BackoffCap)
}

// Sum returns the current hash value.
func (f *Fingerprint) Sum() uint64 { return f.h }
