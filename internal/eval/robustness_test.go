package eval

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"jobsched/internal/faults"
	"jobsched/internal/job"
	"jobsched/internal/sched"
	"jobsched/internal/sim"
	"jobsched/internal/telemetry"
	"jobsched/internal/workload"
)

func robustnessJobs(t *testing.T, n int, seed int64) []*job.Job {
	t.Helper()
	cfg := workload.DefaultRandomizedConfig()
	cfg.Jobs = n
	cfg.Seed = seed
	return workload.Randomized(cfg)
}

// countingHooks counts how many cells were actually simulated: the Hooks
// callback fires once per constructed cell, and journaled cells never
// reach construction.
func countingHooks(n *atomic.Int64) func(sched.OrderName, sched.StartName) telemetry.Hooks {
	return func(sched.OrderName, sched.StartName) telemetry.Hooks {
		n.Add(1)
		return telemetry.Hooks{}
	}
}

func renderGrid(t *testing.T, g *Grid) string {
	t.Helper()
	var sb strings.Builder
	if err := g.Render(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestJournalResumeByteIdentical: truncating the journal mid-grid (with a
// torn final line, as a crash would leave) and resuming must re-simulate
// only the missing cells and render byte-identically to the uninterrupted
// run.
func TestJournalResumeByteIdentical(t *testing.T) {
	jobs := robustnessJobs(t, 200, 123)
	m := sim.Machine{Nodes: 256}
	path := filepath.Join(t.TempDir(), "cells.jsonl")

	want := func() string {
		g, err := Run("resume", m, jobs, Unweighted, Options{Validate: true})
		if err != nil {
			t.Fatal(err)
		}
		return renderGrid(t, g)
	}()

	// Full journaled run.
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run("resume", m, jobs, Unweighted, Options{Validate: true, Journal: j}); err != nil {
		t.Fatal(err)
	}
	total := j.Completed()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if total != 13 { // 4 orders × 3 starts + Garey&Graham/List
		t.Fatalf("journal holds %d cells, want 13", total)
	}

	// Simulate a crash: keep the first 3 complete lines plus a torn tail.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	const keep = 3
	truncated := strings.Join(lines[:keep], "") + `{"grid":"resume","case":"Unw`
	if err := os.WriteFile(path, []byte(truncated), 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Completed() != keep {
		t.Fatalf("resume loaded %d cells, want %d (torn tail must be dropped)", j2.Completed(), keep)
	}
	var simulated atomic.Int64
	g, err := Run("resume", m, jobs, Unweighted, Options{
		Validate: true, Journal: j2, Hooks: countingHooks(&simulated),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := simulated.Load(); got != int64(total-keep) {
		t.Errorf("resume simulated %d cells, want %d (journaled cells must be skipped)", got, total-keep)
	}
	if got := renderGrid(t, g); got != want {
		t.Errorf("resumed table differs from uninterrupted run:\n--- want\n%s\n--- got\n%s", want, got)
	}
}

// TestJournalInterruptMidGrid: a user interrupt fired mid-grid must abort
// with sim.ErrInterrupted; resuming from the journal completes the grid
// byte-identically without re-simulating the finished cells.
func TestJournalInterruptMidGrid(t *testing.T) {
	jobs := robustnessJobs(t, 200, 124)
	m := sim.Machine{Nodes: 256}
	path := filepath.Join(t.TempDir(), "cells.jsonl")

	want := func() string {
		g, err := Run("interrupt", m, jobs, Unweighted, Options{Validate: true})
		if err != nil {
			t.Fatal(err)
		}
		return renderGrid(t, g)
	}()

	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	// The interrupt trips once three cells have been journaled — i.e.
	// somewhere inside the fourth cell's simulation (serial run).
	_, err = Run("interrupt", m, jobs, Unweighted, Options{
		Validate: true,
		Journal:  j,
		Interrupt: func() bool {
			return j.Completed() >= 3
		},
	})
	if !errors.Is(err, sim.ErrInterrupted) {
		t.Fatalf("interrupted run returned %v, want sim.ErrInterrupted", err)
	}
	done := j.Completed()
	if done < 3 || done >= 13 {
		t.Fatalf("interrupted run journaled %d cells, want a strict mid-grid count", done)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	var simulated atomic.Int64
	g, err := Run("interrupt", m, jobs, Unweighted, Options{
		Validate: true, Journal: j2, Hooks: countingHooks(&simulated),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := simulated.Load(); got != int64(13-done) {
		t.Errorf("resume simulated %d cells, want %d", got, 13-done)
	}
	if got := renderGrid(t, g); got != want {
		t.Errorf("resumed table differs from uninterrupted run:\n--- want\n%s\n--- got\n%s", want, got)
	}
}

// TestKeepGoingRecoversCellPanic: a panicking cell must not take the grid
// down when KeepGoing is set — its error (with stack) lands in Cell.Err
// and every other cell completes. Without KeepGoing the panic surfaces as
// the run error.
func TestKeepGoingRecoversCellPanic(t *testing.T) {
	jobs := robustnessJobs(t, 100, 125)
	m := sim.Machine{Nodes: 256}
	boom := func(o sched.OrderName, s sched.StartName) telemetry.Hooks {
		if o == sched.OrderPSRS && s == sched.StartList {
			panic("boom: injected cell failure")
		}
		return telemetry.Hooks{}
	}

	g, err := Run("panic", m, jobs, Unweighted, Options{
		Validate: true, KeepGoing: true, Hooks: boom,
	})
	if err != nil {
		t.Fatalf("KeepGoing run failed: %v", err)
	}
	bad := g.Cell(sched.OrderPSRS, sched.StartList)
	if bad == nil || !strings.Contains(bad.Err, "boom: injected cell failure") {
		t.Fatalf("panicking cell not recorded: %+v", bad)
	}
	if !strings.Contains(bad.Err, "robustness_test.go") {
		t.Errorf("cell error lacks the panic stack: %q", bad.Err)
	}
	healthy := 0
	for _, c := range g.Cells {
		if c.Err == "" && c.Value > 0 {
			healthy++
		}
	}
	if healthy != 12 {
		t.Errorf("%d healthy cells, want 12", healthy)
	}

	if _, err := Run("panic", m, jobs, Unweighted, Options{Validate: true, Hooks: boom}); err == nil ||
		!strings.Contains(err.Error(), "boom: injected cell failure") {
		t.Errorf("without KeepGoing the panic must surface as the run error, got %v", err)
	}
}

// TestCellTimeoutWatchdog: a cell exceeding its wall-clock budget is
// interrupted and reported as a cell error, not as a hung process. The
// workload is a pathological conservative-backfilling case (a huge
// same-instant queue on a tiny machine) whose first pass alone exceeds
// the 1ms budget.
func TestCellTimeoutWatchdog(t *testing.T) {
	jobs := make([]*job.Job, 20000)
	for i := range jobs {
		jobs[i] = &job.Job{ID: job.ID(i), Submit: 0, Nodes: 1, Runtime: 5, Estimate: 5}
	}
	g, err := Run("watchdog", sim.Machine{Nodes: 2}, jobs, Unweighted, Options{
		Orders:      []sched.OrderName{sched.OrderFCFS},
		Starts:      []sched.StartName{sched.StartConservative},
		KeepGoing:   true,
		CellTimeout: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	cell := g.Cell(sched.OrderFCFS, sched.StartConservative)
	if cell == nil || !strings.Contains(cell.Err, "wall-clock budget") {
		t.Fatalf("overrunning cell not reported: %+v", cell)
	}
}

// TestFaultGridDeterministicAcrossWorkers: with a generated fault plan
// and resubmit backoff threaded through every cell, the rendered tables
// must stay byte-identical whatever the worker-pool size.
func TestFaultGridDeterministicAcrossWorkers(t *testing.T) {
	jobs := robustnessJobs(t, 200, 126)
	m := sim.Machine{Nodes: 256}
	_, last := job.Span(jobs)
	plan, err := faults.Generate(faults.Config{
		MachineNodes:    m.Nodes,
		Horizon:         last,
		Seed:            7,
		MTBF:            float64(last) / 20,
		MTTR:            3600,
		NodesPerFailure: 32,
		Maintenance: []faults.Window{
			{At: last / 4, Duration: 7200, Nodes: 64},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	render := func(workers int) string {
		t.Helper()
		g, err := Run("faults", m, jobs, Unweighted, Options{
			Parallel:  true,
			Workers:   workers,
			Validate:  true,
			Failures:  plan.Failures,
			Announced: plan.Announced,
			Resubmit:  sim.ResubmitPolicy{MaxResubmits: 5, BackoffBase: 60, BackoffCap: 3600},
		})
		if err != nil {
			t.Fatal(err)
		}
		aborts := 0
		for _, c := range g.Cells {
			aborts += c.Aborted
		}
		if aborts == 0 {
			t.Fatal("fault plan injected no aborts; scenario is not exercising failures")
		}
		return renderGrid(t, g)
	}
	want := render(1)
	for _, workers := range []int{4, 8} {
		if got := render(workers); got != want {
			t.Errorf("fault tables differ between 1 and %d workers:\n--- workers=1\n%s\n--- workers=%d\n%s",
				workers, want, workers, got)
		}
	}
}
