package eval

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"sync"
	"time"

	"jobsched/internal/sched"
)

// Journal is the crash-safe progress log of a grid run: one JSON line per
// completed cell, appended and fsynced before the cell is considered
// done. Reopening the journal with resume restores those cells without
// re-simulating them — because every cell is a pure function of the
// workload, seed, and options, the restored values are exactly what a
// fresh run would compute, and the resumed tables render byte-identically
// to an uninterrupted run.
//
// The format is deliberately line-oriented: a crash mid-write leaves at
// most one torn final line, which resume detects (it fails to parse) and
// drops — that cell simply re-runs. Dropping any malformed line is safe
// for the same reason: the journal is a cache, never the only copy.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	done map[string]Cell
	// stamp is the evaluation fingerprint the journal is bound to (see
	// Fingerprint); stamped reports whether one was recorded. Resuming
	// under a different fingerprint is refused by Stamp.
	stamp   uint64
	stamped bool
}

// journalRecord is the serialized form of one completed cell. The float
// fields round-trip exactly through encoding/json (shortest
// representation that parses back to the same bits), which is what makes
// resumed tables byte-identical.
type journalRecord struct {
	Grid      string  `json:"grid"`
	Case      string  `json:"case"`
	Order     string  `json:"order"`
	Start     string  `json:"start"`
	Value     float64 `json:"value"`
	SchedNS   int64   `json:"sched_ns,omitempty"`
	MaxQueue  int     `json:"max_queue,omitempty"`
	Makespan  int64   `json:"makespan,omitempty"`
	Util      float64 `json:"util,omitempty"`
	Aborted   int     `json:"aborted,omitempty"`
	Resubmits int     `json:"resubmits,omitempty"`
	Lost      int     `json:"lost,omitempty"`
}

// stampRecord is the dedicated journal line binding the file to an
// evaluation fingerprint. It is serialized as hex so the full uint64
// range survives JSON number parsing.
type stampRecord struct {
	Fingerprint string `json:"journal_fingerprint"`
}

func journalKey(grid string, c Case, o sched.OrderName, s sched.StartName) string {
	// \x00 separators keep concatenated names unambiguous.
	return grid + "\x00" + c.String() + "\x00" + string(o) + "\x00" + string(s)
}

func (r journalRecord) key() string {
	return r.Grid + "\x00" + r.Case + "\x00" + r.Order + "\x00" + r.Start
}

func (r journalRecord) cell() Cell {
	return Cell{
		Order:         sched.OrderName(r.Order),
		Start:         sched.StartName(r.Start),
		Value:         r.Value,
		SchedulerTime: time.Duration(r.SchedNS),
		MaxQueue:      r.MaxQueue,
		Makespan:      r.Makespan,
		Utilization:   r.Util,
		Aborted:       r.Aborted,
		Resubmits:     r.Resubmits,
		Lost:          r.Lost,
	}
}

// parseJournal decodes a journal file's lines into cell records and the
// stamp, dropping torn or malformed lines (the cells simply re-run).
// Conflicting stamp lines in one file are an error: the file mixes two
// evaluations and resuming from it would be wrong either way.
func parseJournal(data []byte) (recs []journalRecord, stamp uint64, stamped bool, err error) {
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var st stampRecord
		if json.Unmarshal(line, &st) == nil && st.Fingerprint != "" {
			fp, perr := strconv.ParseUint(st.Fingerprint, 16, 64)
			if perr != nil {
				continue // torn stamp line: treat as absent
			}
			if stamped && fp != stamp {
				return nil, 0, false, fmt.Errorf("eval: journal carries conflicting fingerprints %016x and %016x", stamp, fp)
			}
			stamp, stamped = fp, true
			continue
		}
		var rec journalRecord
		if json.Unmarshal(line, &rec) != nil || rec.Order == "" {
			continue // torn tail (or corruption): the cell re-runs
		}
		recs = append(recs, rec)
	}
	return recs, stamp, stamped, nil
}

// OpenJournal opens (creating if needed) the journal at path. With resume
// true, existing completed cells are loaded and later served by Lookup;
// with resume false any previous content is truncated and the run starts
// from scratch.
func OpenJournal(path string, resume bool) (*Journal, error) {
	j := &Journal{done: make(map[string]Cell)}
	if resume {
		data, err := os.ReadFile(path)
		if err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("eval: journal: %w", err)
		}
		recs, stamp, stamped, err := parseJournal(data)
		if err != nil {
			return nil, err
		}
		j.stamp, j.stamped = stamp, stamped
		for _, rec := range recs {
			j.done[rec.key()] = rec.cell()
		}
	}
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if !resume {
		flags = os.O_CREATE | os.O_WRONLY | os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("eval: journal: %w", err)
	}
	j.f = f
	return j, nil
}

// Stamp binds the journal to an evaluation fingerprint (see
// Fingerprint). On a fresh journal the stamp is appended and fsynced;
// on a resumed journal that already carries a stamp, a mismatch is an
// error — the journal was recorded for a different evaluation and its
// cells must not be mixed into this one. A resumed legacy journal
// without a stamp is adopted (stamped now) for compatibility.
func (j *Journal) Stamp(fp uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.stamped {
		if j.stamp != fp {
			return fmt.Errorf("eval: journal was recorded for a different evaluation (fingerprint %016x, this run is %016x): use a fresh -journal file or re-run without -resume", j.stamp, fp)
		}
		return nil
	}
	line, err := json.Marshal(stampRecord{Fingerprint: fmt.Sprintf("%016x", fp)})
	if err != nil {
		return err
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.stamp, j.stamped = fp, true
	return nil
}

// Fingerprint returns the journal's stamp, if any.
func (j *Journal) Fingerprint() (uint64, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stamp, j.stamped
}

// MergeJournals unions several shard journals into dst (replacing it).
// Every stamped source must carry the same fingerprint — shards of one
// evaluation by construction — and dst inherits it. Duplicate cells
// (e.g. from overlapping resumes) keep their first occurrence. The
// merged journal is a normal journal: opening it with resume and
// re-running the evaluation restores every cell without simulating and
// renders byte-identically to a single-process run.
//
// The merge is atomic: it is written to a temp file, fsynced, and
// renamed over dst only on success, so a failed or interrupted merge
// never destroys an existing journal at dst.
func MergeJournals(dst string, srcs ...string) error {
	if len(srcs) == 0 {
		return fmt.Errorf("eval: merge needs at least one source journal")
	}
	var (
		stamp   uint64
		stamped bool
		order   []journalRecord
		seen    = make(map[string]bool)
	)
	for _, src := range srcs {
		data, err := os.ReadFile(src)
		if err != nil {
			return fmt.Errorf("eval: merge: %w", err)
		}
		recs, fp, ok, err := parseJournal(data)
		if err != nil {
			return fmt.Errorf("eval: merge %s: %w", src, err)
		}
		if ok {
			if stamped && fp != stamp {
				return fmt.Errorf("eval: merge: %s has fingerprint %016x, earlier sources %016x: the journals belong to different evaluations", src, fp, stamp)
			}
			stamp, stamped = fp, true
		}
		for _, rec := range recs {
			if seen[rec.key()] {
				continue
			}
			seen[rec.key()] = true
			order = append(order, rec)
		}
	}
	tmp := dst + ".merge.tmp"
	out, err := OpenJournal(tmp, false)
	if err != nil {
		return err
	}
	err = func() error {
		if stamped {
			if err := out.Stamp(stamp); err != nil {
				return err
			}
		}
		for _, rec := range order {
			c, err := caseFromString(rec.Case)
			if err != nil {
				return fmt.Errorf("eval: merge: %w", err)
			}
			if err := out.Record(rec.Grid, c, rec.cell()); err != nil {
				return err
			}
		}
		// Record fsyncs every line, but an empty merge (all sources torn or
		// blank) writes none; sync unconditionally so the rename below never
		// publishes an undurable file.
		return out.f.Sync()
	}()
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		// The merge failed and its error wins; the temp file is garbage.
		_ = os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, dst)
}

func caseFromString(s string) (Case, error) {
	switch s {
	case Unweighted.String():
		return Unweighted, nil
	case Weighted.String():
		return Weighted, nil
	}
	return 0, fmt.Errorf("unknown case %q", s)
}

// Lookup returns the journaled result of a cell, if present.
func (j *Journal) Lookup(grid string, c Case, o sched.OrderName, s sched.StartName) (Cell, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	cell, ok := j.done[journalKey(grid, c, o, s)]
	return cell, ok
}

// Record appends a completed cell and fsyncs, so the entry survives a
// crash immediately after. Safe for concurrent use by a Parallel grid.
func (j *Journal) Record(grid string, c Case, cell Cell) error {
	line, err := json.Marshal(journalRecord{
		Grid:      grid,
		Case:      c.String(),
		Order:     string(cell.Order),
		Start:     string(cell.Start),
		Value:     cell.Value,
		SchedNS:   int64(cell.SchedulerTime),
		MaxQueue:  cell.MaxQueue,
		Makespan:  cell.Makespan,
		Util:      cell.Utilization,
		Aborted:   cell.Aborted,
		Resubmits: cell.Resubmits,
		Lost:      cell.Lost,
	})
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.done[journalKey(grid, c, cell.Order, cell.Start)] = cell
	return nil
}

// Completed returns the number of cells currently in the journal.
func (j *Journal) Completed() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Close releases the underlying file. Recorded entries are already
// synced; Close never loses data.
func (j *Journal) Close() error { return j.f.Close() }
