package eval

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"jobsched/internal/sched"
)

// Journal is the crash-safe progress log of a grid run: one JSON line per
// completed cell, appended and fsynced before the cell is considered
// done. Reopening the journal with resume restores those cells without
// re-simulating them — because every cell is a pure function of the
// workload, seed, and options, the restored values are exactly what a
// fresh run would compute, and the resumed tables render byte-identically
// to an uninterrupted run.
//
// The format is deliberately line-oriented: a crash mid-write leaves at
// most one torn final line, which resume detects (it fails to parse) and
// drops — that cell simply re-runs. Dropping any malformed line is safe
// for the same reason: the journal is a cache, never the only copy.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	done map[string]Cell
}

// journalRecord is the serialized form of one completed cell. The float
// fields round-trip exactly through encoding/json (shortest
// representation that parses back to the same bits), which is what makes
// resumed tables byte-identical.
type journalRecord struct {
	Grid      string  `json:"grid"`
	Case      string  `json:"case"`
	Order     string  `json:"order"`
	Start     string  `json:"start"`
	Value     float64 `json:"value"`
	SchedNS   int64   `json:"sched_ns,omitempty"`
	MaxQueue  int     `json:"max_queue,omitempty"`
	Makespan  int64   `json:"makespan,omitempty"`
	Util      float64 `json:"util,omitempty"`
	Aborted   int     `json:"aborted,omitempty"`
	Resubmits int     `json:"resubmits,omitempty"`
	Lost      int     `json:"lost,omitempty"`
}

func journalKey(grid string, c Case, o sched.OrderName, s sched.StartName) string {
	// \x00 separators keep concatenated names unambiguous.
	return grid + "\x00" + c.String() + "\x00" + string(o) + "\x00" + string(s)
}

// OpenJournal opens (creating if needed) the journal at path. With resume
// true, existing completed cells are loaded and later served by Lookup;
// with resume false any previous content is truncated and the run starts
// from scratch.
func OpenJournal(path string, resume bool) (*Journal, error) {
	j := &Journal{done: make(map[string]Cell)}
	if resume {
		data, err := os.ReadFile(path)
		if err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("eval: journal: %w", err)
		}
		for _, line := range bytes.Split(data, []byte("\n")) {
			if len(bytes.TrimSpace(line)) == 0 {
				continue
			}
			var rec journalRecord
			if json.Unmarshal(line, &rec) != nil {
				continue // torn tail (or corruption): the cell re-runs
			}
			j.done[rec.Grid+"\x00"+rec.Case+"\x00"+rec.Order+"\x00"+rec.Start] = Cell{
				Order:         sched.OrderName(rec.Order),
				Start:         sched.StartName(rec.Start),
				Value:         rec.Value,
				SchedulerTime: time.Duration(rec.SchedNS),
				MaxQueue:      rec.MaxQueue,
				Makespan:      rec.Makespan,
				Utilization:   rec.Util,
				Aborted:       rec.Aborted,
				Resubmits:     rec.Resubmits,
				Lost:          rec.Lost,
			}
		}
	}
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if !resume {
		flags = os.O_CREATE | os.O_WRONLY | os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("eval: journal: %w", err)
	}
	j.f = f
	return j, nil
}

// Lookup returns the journaled result of a cell, if present.
func (j *Journal) Lookup(grid string, c Case, o sched.OrderName, s sched.StartName) (Cell, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	cell, ok := j.done[journalKey(grid, c, o, s)]
	return cell, ok
}

// Record appends a completed cell and fsyncs, so the entry survives a
// crash immediately after. Safe for concurrent use by a Parallel grid.
func (j *Journal) Record(grid string, c Case, cell Cell) error {
	line, err := json.Marshal(journalRecord{
		Grid:      grid,
		Case:      c.String(),
		Order:     string(cell.Order),
		Start:     string(cell.Start),
		Value:     cell.Value,
		SchedNS:   int64(cell.SchedulerTime),
		MaxQueue:  cell.MaxQueue,
		Makespan:  cell.Makespan,
		Util:      cell.Utilization,
		Aborted:   cell.Aborted,
		Resubmits: cell.Resubmits,
		Lost:      cell.Lost,
	})
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.done[journalKey(grid, c, cell.Order, cell.Start)] = cell
	return nil
}

// Completed returns the number of cells currently in the journal.
func (j *Journal) Completed() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Close releases the underlying file. Recorded entries are already
// synced; Close never loses data.
func (j *Journal) Close() error { return j.f.Close() }
