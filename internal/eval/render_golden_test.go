package eval

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"jobsched/internal/sched"
	"jobsched/internal/sim"
)

// goldenGrid builds a grid with hand-set values so the exact rendered
// layout (the paper's table format) can be pinned.
func goldenGrid() *Grid {
	g := &Grid{
		Title:      "golden",
		Case:       Unweighted,
		Machine:    sim.Machine{Nodes: 256},
		Jobs:       1000,
		LowerBound: 1234,
	}
	add := func(o sched.OrderName, s sched.StartName, v float64, d time.Duration) {
		g.Cells = append(g.Cells, Cell{Order: o, Start: s, Value: v, SchedulerTime: d})
	}
	add(sched.OrderFCFS, sched.StartList, 4910000, 100*time.Millisecond)
	add(sched.OrderFCFS, sched.StartConservative, 670000, 150*time.Millisecond)
	add(sched.OrderFCFS, sched.StartEASY, 395000, 200*time.Millisecond)
	add(sched.OrderPSRS, sched.StartList, 159000, 300*time.Millisecond)
	add(sched.OrderPSRS, sched.StartEASY, 106000, 250*time.Millisecond)
	add(sched.OrderSMARTFFIA, sched.StartList, 157000, 120*time.Millisecond)
	add(sched.OrderSMARTFFIA, sched.StartEASY, 117000, 130*time.Millisecond)
	add(sched.OrderSMARTNFIW, sched.StartList, 182000, 110*time.Millisecond)
	add(sched.OrderSMARTNFIW, sched.StartEASY, 111000, 140*time.Millisecond)
	add(sched.OrderGG, sched.StartList, 146000, 90*time.Millisecond)
	g.Ref = &g.Cells[2]
	for i := range g.Cells {
		g.Cells[i].Pct = (g.Cells[i].Value - g.Ref.Value) / g.Ref.Value * 100
	}
	return g
}

func TestRenderGoldenLayout(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenGrid().Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Paper-style cells: scientific notation and signed percentages.
	for _, want := range []string{
		"4.91E+06", "+1143.0%", // FCFS list, the paper's exact headline pct
		"3.95E+05", "0%", // the reference cell
		"1.46E+05", "-63.0%", // Garey&Graham
		"lower bound", "1.23E+03",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	// The G&G row must show dashes in the backfilling columns.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "Garey&Graham") && !strings.Contains(line, "-    ") {
			t.Errorf("G&G row lacks placeholder dashes: %q", line)
		}
	}
}

func TestRenderComputeTimeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenGrid().RenderComputeTime(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// FCFS list = 100ms vs ref 200ms → -50.0%.
	if !strings.Contains(out, "-50.0%") {
		t.Errorf("compute table missing FCFS list pct:\n%s", out)
	}
	// SMART row merges FFIA and NFIW: list mean (120+110)/2 = 115ms →
	// -42.5%.
	if !strings.Contains(out, "-42.5%") {
		t.Errorf("compute table missing merged SMART pct:\n%s", out)
	}
	// G&G 90ms → -55.0%.
	if !strings.Contains(out, "-55.0%") {
		t.Errorf("compute table missing G&G pct:\n%s", out)
	}
}
