package eval

import (
	"path/filepath"
	"strings"
	"testing"

	"jobsched/internal/sim"
)

// fpOf hashes just the option block, the part of the journal stamp the
// resubmit-policy knobs must reach.
func fpOf(opt Options) uint64 {
	fp := NewFingerprint()
	fp.Options(opt)
	return fp.Sum()
}

// TestFingerprintCoversResubmitPolicy pins that every resubmit-policy
// knob (-retries/-backoff/-backoffcap and the backoff factor) changes
// the evaluation fingerprint: a journal recorded under one retry policy
// must not be resumable under another, because lost-job accounting —
// and through it the cell values — depends on all four fields.
func TestFingerprintCoversResubmitPolicy(t *testing.T) {
	baseline := Options{Failures: []sim.Failure{{At: 100, Nodes: 8, Duration: 50}}}
	baseline.Resubmit = sim.ResubmitPolicy{MaxResubmits: 2, BackoffBase: 30, BackoffFactor: 2, BackoffCap: 600}
	ref := fpOf(baseline)

	variants := map[string]sim.ResubmitPolicy{
		"MaxResubmits":  {MaxResubmits: 5, BackoffBase: 30, BackoffFactor: 2, BackoffCap: 600},
		"BackoffBase":   {MaxResubmits: 2, BackoffBase: 60, BackoffFactor: 2, BackoffCap: 600},
		"BackoffFactor": {MaxResubmits: 2, BackoffBase: 30, BackoffFactor: 3, BackoffCap: 600},
		"BackoffCap":    {MaxResubmits: 2, BackoffBase: 30, BackoffFactor: 2, BackoffCap: 1200},
	}
	for field, pol := range variants {
		opt := baseline
		opt.Resubmit = pol
		if fpOf(opt) == ref {
			t.Errorf("changing Resubmit.%s does not change the fingerprint: a -resume would silently mix cells from a different retry policy", field)
		}
	}
}

// TestJournalResumeRefusesDifferentResubmitPolicy is the end-to-end
// regression: a journal stamped under one -retries/-backoff setting is
// refused on resume under another, with the fingerprint mismatch named.
func TestJournalResumeRefusesDifferentResubmitPolicy(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")

	optA := Options{}
	optA.Resubmit = sim.ResubmitPolicy{MaxResubmits: 2, BackoffBase: 30}
	j1, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := j1.Stamp(fpOf(optA)); err != nil {
		t.Fatal(err)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	optB := optA
	optB.Resubmit.MaxResubmits = 5
	j2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := j2.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	err = j2.Stamp(fpOf(optB))
	if err == nil {
		t.Fatal("journal accepted a resume with a different resubmit policy")
	}
	if !strings.Contains(err.Error(), "different evaluation") {
		t.Fatalf("mismatch error does not explain itself: %v", err)
	}

	// Same policy resumes cleanly.
	if err := j2.Stamp(fpOf(optA)); err != nil {
		t.Fatalf("same-policy resume refused: %v", err)
	}
}
