package eval

import (
	"os"
	"testing"

	"jobsched/internal/sim"
	"jobsched/internal/trace"
	"jobsched/internal/workload"
)

// TestSmokeGrid runs the full grid on a small CTC-like workload and
// renders the table — an end-to-end sanity check of the whole pipeline.
func TestSmokeGrid(t *testing.T) {
	cfg := workload.DefaultCTCConfig()
	cfg.Jobs = 2000
	cfg.SpanSeconds = cfg.SpanSeconds * int64(cfg.Jobs) / workload.CTCJobs
	jobs := workload.CTC(cfg)
	filtered, removed := trace.FilterMaxNodes(jobs, 256)
	t.Logf("removed %d jobs wider than 256 nodes (%.3f%%)", removed,
		float64(removed)/float64(len(jobs))*100)

	for _, c := range []Case{Unweighted, Weighted} {
		g, err := Run("smoke", sim.Machine{Nodes: 256}, filtered, c,
			Options{Parallel: true, Validate: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Render(os.Stderr); err != nil {
			t.Fatal(err)
		}
	}
}
